#include "io/dfg_text.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "support/fault.hpp"
#include "support/strings.hpp"

namespace cvb {

void write_dfg_text(std::ostream& out, const Dfg& dfg,
                    const std::string& name) {
  out << "dfg " << name << '\n';
  for (OpId v = 0; v < dfg.num_ops(); ++v) {
    out << "op " << v << ' ' << op_type_name(dfg.type(v)) << ' '
        << dfg.name(v) << '\n';
  }
  for (OpId v = 0; v < dfg.num_ops(); ++v) {
    if (dfg.operands(v).empty()) {
      continue;
    }
    out << "args " << v;
    for (const OpId u : dfg.operands(v)) {
      if (u == kNoOp) {
        out << " in";
      } else {
        out << ' ' << u;
      }
    }
    out << '\n';
  }
}

OpType op_type_from_name(const std::string& name) {
  for (const OpType op : all_op_types()) {
    if (op_type_name(op) == name) {
      return op;
    }
  }
  throw std::invalid_argument("unknown operation type '" + name + "'");
}

ParsedDfg parse_dfg_text(std::istream& in, const DfgTextLimits& limits) {
  CVB_INJECT("parse.dfg");
  ParsedDfg result;
  bool have_header = false;
  std::string line;
  int line_number = 0;
  long long num_edges = 0;

  const auto fail = [&](const std::string& message) -> void {
    throw std::invalid_argument("dfg text, line " +
                                std::to_string(line_number) + ": " + message);
  };

  while (std::getline(in, line)) {
    ++line_number;
    if (line_number > limits.max_lines) {
      fail("too many lines (limit " + std::to_string(limits.max_lines) + ")");
    }
    if (line.size() > limits.max_line_length) {
      fail("line too long (" + std::to_string(line.size()) +
           " bytes, limit " + std::to_string(limits.max_line_length) + ")");
    }
    const std::string_view trimmed = trim(line);
    if (trimmed.empty() || trimmed.front() == '#') {
      continue;
    }
    std::istringstream fields{std::string(trimmed)};
    std::string keyword;
    fields >> keyword;

    if (keyword == "dfg") {
      if (have_header) {
        fail("duplicate header");
      }
      fields >> result.name;
      if (result.name.empty()) {
        fail("missing graph name");
      }
      have_header = true;
    } else if (keyword == "op") {
      if (!have_header) {
        fail("'op' before 'dfg' header");
      }
      long id = -1;
      std::string type_name;
      std::string op_name;
      fields >> id >> type_name >> op_name;
      if (id != result.dfg.num_ops()) {
        fail("op ids must be dense and ascending; got " + std::to_string(id) +
             ", expected " + std::to_string(result.dfg.num_ops()));
      }
      if (result.dfg.num_ops() >= limits.max_ops) {
        fail("too many ops (limit " + std::to_string(limits.max_ops) + ")");
      }
      if (type_name.empty()) {
        fail("missing operation type");
      }
      OpType type;
      try {
        type = op_type_from_name(type_name);
      } catch (const std::invalid_argument& e) {
        fail(e.what());
        throw;  // unreachable; fail always throws
      }
      (void)result.dfg.add_op(type, op_name);
    } else if (keyword == "args") {
      if (!have_header) {
        fail("'args' before 'dfg' header");
      }
      long id = -1;
      fields >> id;
      if (id < 0 || id >= result.dfg.num_ops()) {
        fail("args references undeclared op " + std::to_string(id));
      }
      std::string token;
      int count = 0;
      while (fields >> token) {
        ++count;
        if (count > limits.max_operands_per_op) {
          fail("too many operands on op " + std::to_string(id) + " (limit " +
               std::to_string(limits.max_operands_per_op) + ")");
        }
        if (++num_edges > limits.max_edges) {
          fail("too many edges (limit " + std::to_string(limits.max_edges) +
               ")");
        }
        if (token == "in") {
          result.dfg.add_operand(static_cast<OpId>(id), kNoOp);
          continue;
        }
        long producer = -1;
        try {
          producer = parse_nonnegative_int(token);
        } catch (const std::invalid_argument&) {
          fail("bad operand token '" + token + "'");
        }
        if (producer >= result.dfg.num_ops()) {
          fail("operand references undeclared op " + std::to_string(producer));
        }
        try {
          result.dfg.add_operand(static_cast<OpId>(id),
                                 static_cast<OpId>(producer));
        } catch (const std::invalid_argument& e) {
          fail(e.what());
        }
      }
      if (count == 0) {
        fail("args line lists no operands");
      }
    } else if (keyword == "edge") {
      if (!have_header) {
        fail("'edge' before 'dfg' header");
      }
      long from = -1;
      long to = -1;
      fields >> from >> to;
      if (++num_edges > limits.max_edges) {
        fail("too many edges (limit " + std::to_string(limits.max_edges) +
             ")");
      }
      if (from < 0 || from >= result.dfg.num_ops() || to < 0 ||
          to >= result.dfg.num_ops()) {
        fail("edge references undeclared op (" + std::to_string(from) +
             " -> " + std::to_string(to) + ")");
      }
      try {
        result.dfg.add_edge(static_cast<OpId>(from), static_cast<OpId>(to));
      } catch (const std::invalid_argument& e) {
        fail(e.what());
      }
    } else {
      fail("unknown keyword '" + keyword + "'");
    }
  }
  if (!have_header) {
    line_number = 0;
    fail("missing 'dfg <name>' header");
  }
  try {
    result.dfg.validate();
  } catch (const std::logic_error& e) {
    line_number = 0;
    fail(e.what());
  }
  return result;
}

}  // namespace cvb
