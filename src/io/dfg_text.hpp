// Plain-text serialization for dataflow graphs, so kernels can be
// stored in files, diffed, and fed to the tools without recompiling:
//
//   # comment / blank lines ignored
//   dfg my_kernel
//   op 0 add s0
//   op 1 mul p0
//   args 0 in in      # s0 reads two external live-ins
//   args 1 0 0        # p0 computes s0 * s0
//
// `args <id> <tok>...` lists an operation's ordered operands: `in` for
// an external live-in, or the producing op id (dependency edges are
// derived, duplicates allowed for x*x shapes). The legacy
// `edge <from> <to>` form is also accepted for hand-written files.
// Operation ids must be dense and ascending (the writer guarantees
// this; the parser enforces it). The parser validates the full graph
// (types, references, acyclicity).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>

#include "graph/dfg.hpp"

namespace cvb {

/// Writes `dfg` in the text format, with `name` on the header line.
void write_dfg_text(std::ostream& out, const Dfg& dfg,
                    const std::string& name = "dfg");

/// Parsed result: the graph plus the name from the header.
struct ParsedDfg {
  std::string name;
  Dfg dfg;
};

/// Resource guards on untrusted DFG text. The defaults are far above
/// any real kernel but bound the memory an adversarial or corrupted
/// input can make the parser allocate; every violation throws a
/// line-numbered std::invalid_argument, the same typed failure as a
/// syntax error (the service classifies both as poison faults).
struct DfgTextLimits {
  std::size_t max_line_length = 1 << 16;
  long long max_lines = 1'000'000;
  int max_ops = 200'000;
  int max_operands_per_op = 64;
  long long max_edges = 1'000'000;
};

/// Parses the text format. Throws std::invalid_argument with a
/// line-numbered message on any syntax or consistency error (unknown op
/// type, non-dense ids, edge to an undeclared op, cycle, duplicate
/// edge, missing header) or any `limits` violation.
[[nodiscard]] ParsedDfg parse_dfg_text(std::istream& in,
                                       const DfgTextLimits& limits = {});

/// Mnemonic -> OpType for the parser ("add", "mul", ...). Throws
/// std::invalid_argument for unknown names.
[[nodiscard]] OpType op_type_from_name(const std::string& name);

}  // namespace cvb
