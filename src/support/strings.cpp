#include "support/strings.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace cvb {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> fields;
  std::size_t begin = 0;
  while (true) {
    const std::size_t end = text.find(sep, begin);
    if (end == std::string_view::npos) {
      fields.emplace_back(text.substr(begin));
      return fields;
    }
    fields.emplace_back(text.substr(begin, end - begin));
    begin = end + 1;
  }
}

std::string_view trim(std::string_view text) {
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.front())) != 0) {
    text.remove_prefix(1);
  }
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.back())) != 0) {
    text.remove_suffix(1);
  }
  return text;
}

int parse_nonnegative_int(std::string_view text) {
  text = trim(text);
  if (text.empty()) {
    throw std::invalid_argument("parse_nonnegative_int: empty input");
  }
  long value = 0;
  for (const char ch : text) {
    if (std::isdigit(static_cast<unsigned char>(ch)) == 0) {
      throw std::invalid_argument("parse_nonnegative_int: non-digit in '" +
                                  std::string(text) + "'");
    }
    value = value * 10 + (ch - '0');
    if (value > 1'000'000'000L) {
      throw std::invalid_argument("parse_nonnegative_int: overflow in '" +
                                  std::string(text) + "'");
    }
  }
  return static_cast<int>(value);
}

std::string format_sig(double value, int digits) {
  if (value == 0.0) {
    return "0";
  }
  const int order = static_cast<int>(std::floor(std::log10(std::fabs(value))));
  const int decimals = std::max(0, digits - 1 - order);
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(decimals);
  out << value;
  std::string text = out.str();
  // Drop trailing zeros after a decimal point ("13.0" -> "13").
  if (text.find('.') != std::string::npos) {
    while (text.back() == '0') {
      text.pop_back();
    }
    if (text.back() == '.') {
      text.pop_back();
    }
  }
  return text;
}

std::string sparkline(const std::vector<double>& values) {
  static const char* kBars[] = {"▁", "▂", "▃", "▄", "▅", "▆", "▇", "█"};
  if (values.empty()) {
    return "";
  }
  double lo = values.front();
  double hi = values.front();
  for (const double v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  std::string line;
  for (const double v : values) {
    // A flat series has no internal scale; mid-height reads as "steady"
    // where all-minimum bars would read as a collapse.
    const double t = hi > lo ? (v - lo) / (hi - lo) : 0.5;
    line += kBars[static_cast<int>(t * 7.0 + 0.5)];
  }
  return line;
}

}  // namespace cvb
