#include "support/thread_pool.hpp"

namespace cvb {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) {
    throw std::invalid_argument("ThreadPool: num_threads must be >= 1");
  }
  workers_.reserve(static_cast<std::size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping and drained
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();  // packaged_task captures any exception into its future
  }
}

}  // namespace cvb
