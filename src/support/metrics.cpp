#include "support/metrics.hpp"

#include <algorithm>
#include <sstream>

namespace cvb {

std::vector<double> Histogram::default_latency_bounds_ms() {
  return {0.1, 0.2, 0.5, 1,   2,   5,    10,   20,   50,
          100, 200, 500, 1000, 2000, 5000, 10000};
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  bucket_counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double value) {
  const std::size_t bucket = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  const std::lock_guard<std::mutex> lock(mutex_);
  ++bucket_counts_[bucket];
  ++count_;
  sum_ += value;
  max_ = std::max(max_, value);
}

long long Histogram::count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return count_;
}

double Histogram::sum() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return sum_;
}

double Histogram::max() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return max_;
}

double Histogram::quantile(double q) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (count_ == 0) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count_);
  long long seen = 0;
  for (std::size_t b = 0; b < bucket_counts_.size(); ++b) {
    if (bucket_counts_[b] == 0) {
      continue;
    }
    const long long next = seen + bucket_counts_[b];
    if (static_cast<double>(next) >= rank) {
      // Interpolate within [lo, hi); the overflow bucket reports the
      // observed maximum (its upper bound is infinite).
      if (b == bounds_.size()) {
        return max_;
      }
      const double lo = b == 0 ? 0.0 : bounds_[b - 1];
      const double hi = bounds_[b];
      const double into =
          (rank - static_cast<double>(seen)) /
          static_cast<double>(bucket_counts_[b]);
      // Clamp to the observed maximum: bucket-upper-bound interpolation
      // must never report a value larger than anything ever observed.
      return std::min(max_, lo + (hi - lo) * std::clamp(into, 0.0, 1.0));
    }
    seen = next;
  }
  return max_;
}

JsonValue Histogram::snapshot() const {
  JsonValue out = JsonValue::object();
  out.set("count", count());
  out.set("sum", sum());
  out.set("max", max());
  out.set("p50", quantile(0.50));
  out.set("p95", quantile(0.95));
  out.set("p99", quantile(0.99));
  return out;
}

HistogramSnapshot Histogram::buckets() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.cumulative.reserve(bucket_counts_.size());
  long long running = 0;
  for (const long long bucket : bucket_counts_) {
    running += bucket;
    snap.cumulative.push_back(running);
  }
  snap.count = count_;
  snap.sum = sum_;
  return snap;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
  }
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Gauge>();
  }
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>();
  }
  return *slot;
}

namespace {

/// Prometheus metric names are [a-zA-Z_:][a-zA-Z0-9_:]*; registry names
/// use dots (service.jobs_completed), which map to underscores.
std::string prometheus_name(const std::string& prefix,
                            const std::string& name) {
  std::string out = prefix;
  out.reserve(prefix.size() + name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) {
    out.insert(out.begin(), '_');
  }
  return out;
}

void append_double(std::ostringstream& os, double value) {
  const auto old_precision = os.precision(15);
  os << value;
  os.precision(old_precision);
}

}  // namespace

std::string MetricsRegistry::prometheus_text(const std::string& prefix) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  for (const auto& [name, counter] : counters_) {
    const std::string metric = prometheus_name(prefix, name);
    os << "# TYPE " << metric << " counter\n";
    os << metric << ' ' << counter->value() << '\n';
  }
  for (const auto& [name, gauge] : gauges_) {
    const std::string metric = prometheus_name(prefix, name);
    os << "# TYPE " << metric << " gauge\n";
    os << metric << ' ' << gauge->value() << '\n';
  }
  for (const auto& [name, histogram] : histograms_) {
    const std::string metric = prometheus_name(prefix, name);
    const HistogramSnapshot snap = histogram->buckets();
    os << "# TYPE " << metric << " histogram\n";
    for (std::size_t b = 0; b < snap.bounds.size(); ++b) {
      os << metric << "_bucket{le=\"";
      append_double(os, snap.bounds[b]);
      os << "\"} " << snap.cumulative[b] << '\n';
    }
    os << metric << "_bucket{le=\"+Inf\"} "
       << (snap.cumulative.empty() ? snap.count : snap.cumulative.back())
       << '\n';
    os << metric << "_sum ";
    append_double(os, snap.sum);
    os << '\n';
    os << metric << "_count " << snap.count << '\n';
  }
  return os.str();
}

JsonValue MetricsRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  JsonValue counters = JsonValue::object();
  for (const auto& [name, counter] : counters_) {
    counters.set(name, counter->value());
  }
  JsonValue gauges = JsonValue::object();
  for (const auto& [name, gauge] : gauges_) {
    gauges.set(name, gauge->value());
  }
  JsonValue histograms = JsonValue::object();
  for (const auto& [name, histogram] : histograms_) {
    histograms.set(name, histogram->snapshot());
  }
  JsonValue out = JsonValue::object();
  out.set("counters", std::move(counters));
  out.set("gauges", std::move(gauges));
  out.set("histograms", std::move(histograms));
  return out;
}

}  // namespace cvb
