#include "support/stopwatch.hpp"

// Header-only in practice; this TU exists so the target always has at
// least one symbol per module and the header stays self-contained.
namespace cvb {}
