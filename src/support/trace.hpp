// cvb::Tracer — lightweight span recording for end-to-end request
// profiling.
//
// The paper's central trade-off is *where time goes*: B-ITER buys
// schedule quality with scheduler invocations (Section 5 costs the
// algorithm exactly by them). This layer makes that measurable on a
// live system: every layer of a binding request — service admission,
// queue wait, worker execution, retry attempts, the B-INIT sweep, each
// B-ITER hill-climbing round, each candidate batch of the evaluation
// engine, and each individual list-scheduler invocation — records one
// span with start/end timestamps, an explicit parent link, and typed
// attributes (pass index, candidates evaluated, cache hits, best L/M
// so far).
//
// Design constraints, in order:
//  1. Zero cost when disabled. Tracing is off when the Tracer pointer
//     threaded through the option structs is null; ScopedSpan's
//     constructor then reduces to one branch and records nothing —
//     no allocation, no clock read, no atomic.
//  2. Cheap when enabled. Spans are appended to *per-thread* buffers,
//     each with its own mutex that only its owning thread and a
//     drainer ever touch, so recording never contends with other
//     workers. Names and attribute keys must be string literals so
//     recording allocates only the attribute vector.
//  3. Thread-safe snapshots. drain()/snapshot() collect every thread's
//     spans under the per-buffer locks and return them sorted by start
//     time; a bounded per-thread capacity turns pathological volume
//     into a counted drop, never unbounded memory.
//
// Parenting: same-thread nesting is implicit (each thread keeps a
// stack of open spans); work handed to another thread (the evaluation
// engine's pool tasks) passes the parent span id explicitly. Exporters
// are free functions: chrome_trace_json() emits the Chrome trace_event
// JSON loadable in chrome://tracing and Perfetto (FORMATS.md "Trace
// output").
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "support/json.hpp"

namespace cvb {

namespace internal {
struct TraceThreadBuffer;
}  // namespace internal

/// One typed key/value attribute on a span. `key` must be a string
/// literal (static storage): attributes are recorded on hot paths and
/// must not copy the key.
struct TraceAttr {
  enum class Kind { kInt, kDouble, kString };
  const char* key = "";
  Kind kind = Kind::kInt;
  long long int_value = 0;
  double double_value = 0.0;
  std::string string_value;
};

/// One completed span. Timestamps are microseconds since the owning
/// tracer's epoch (its construction), so a span's interval always
/// contains its same-trace children's intervals.
struct TraceSpan {
  std::uint64_t id = 0;        ///< unique within the tracer, 1-based
  std::uint64_t parent = 0;    ///< parent span id; 0 = root
  const char* name = "";      ///< string literal (static storage)
  std::uint64_t thread = 0;    ///< dense tracer-local thread index
  std::uint64_t start_us = 0;  ///< µs since the tracer epoch
  std::uint64_t end_us = 0;    ///< µs since the tracer epoch, >= start
  std::vector<TraceAttr> attrs;
};

/// Thread-safe span recorder. Construct one per traced run (tool
/// invocation or service lifetime) and pass `&tracer` through the
/// option structs; a null pointer everywhere means tracing is off.
class Tracer {
 public:
  /// `max_spans_per_thread` bounds memory per recording thread; spans
  /// past the cap are counted in dropped() and discarded.
  explicit Tracer(std::size_t max_spans_per_thread = std::size_t{1} << 20);
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Allocates a fresh span id (never 0, never reused).
  [[nodiscard]] std::uint64_t next_span_id() {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Microseconds since this tracer's epoch.
  [[nodiscard]] std::uint64_t now_us() const;

  /// The calling thread's innermost open span (0 = none) — the implicit
  /// parent for same-thread nesting.
  [[nodiscard]] std::uint64_t current_span();
  void push_span(std::uint64_t id);
  void pop_span(std::uint64_t id);

  /// Appends a completed span to the calling thread's buffer (fills
  /// span.thread). Past the per-thread cap the span is dropped and
  /// counted instead.
  void record(TraceSpan span);

  /// Moves every buffered span out (all threads), sorted by
  /// (start_us, id). Subsequent drains return only newer spans.
  [[nodiscard]] std::vector<TraceSpan> drain();

  /// Copies every buffered span without clearing, same order.
  [[nodiscard]] std::vector<TraceSpan> snapshot() const;

  /// Spans discarded because a per-thread buffer hit its cap.
  [[nodiscard]] long long dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  internal::TraceThreadBuffer& buffer();
  [[nodiscard]] std::vector<TraceSpan> collect(bool clear) const;

  const std::size_t max_spans_per_thread_;
  const std::uint64_t uid_;  ///< never-reused key of the thread-local cache
  const std::chrono::steady_clock::time_point epoch_;
  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<long long> dropped_{0};

  mutable std::mutex registry_mutex_;  ///< guards buffers_ (the vector)
  std::vector<std::unique_ptr<internal::TraceThreadBuffer>> buffers_;
};

/// RAII span: records [construction, destruction) on `tracer`, or is a
/// complete no-op (one branch, no allocation) when `tracer` is null.
/// `name` must be a string literal. `parent` overrides the implicit
/// same-thread parent — pass it when the span runs on a different
/// thread than its logical parent (e.g. thread-pool tasks).
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, const char* name, std::uint64_t parent = 0)
      : tracer_(tracer) {
    if (tracer_ == nullptr) {
      return;  // disabled fast path: nothing else runs
    }
    name_ = name;
    id_ = tracer_->next_span_id();
    parent_ = parent != 0 ? parent : tracer_->current_span();
    tracer_->push_span(id_);
    start_us_ = tracer_->now_us();
  }

  ~ScopedSpan() { finish(); }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  [[nodiscard]] bool enabled() const { return tracer_ != nullptr; }

  /// This span's id (0 when disabled) — the explicit parent for work
  /// dispatched to other threads.
  [[nodiscard]] std::uint64_t id() const {
    return tracer_ != nullptr ? id_ : 0;
  }

  /// Attach an attribute; no-ops (without allocating) when disabled.
  /// Keys must be string literals.
  void attr(const char* key, long long value);
  void attr(const char* key, int value) {
    attr(key, static_cast<long long>(value));
  }
  void attr(const char* key, long value) {
    attr(key, static_cast<long long>(value));
  }
  void attr(const char* key, std::size_t value) {
    attr(key, static_cast<long long>(value));
  }
  void attr(const char* key, bool value) {
    attr(key, static_cast<long long>(value ? 1 : 0));
  }
  void attr(const char* key, double value);
  void attr(const char* key, std::string value);
  void attr(const char* key, const char* value) {
    attr(key, std::string(value));
  }

  /// Ends the span now (idempotent; the destructor otherwise does it).
  void finish();

 private:
  Tracer* tracer_;
  const char* name_ = "";
  std::uint64_t id_ = 0;
  std::uint64_t parent_ = 0;
  std::uint64_t start_us_ = 0;
  std::vector<TraceAttr> attrs_;
};

/// Chrome trace_event JSON ("Trace Event Format", complete events):
/// {"traceEvents":[{"ph":"X","name":...,"ts":...,"dur":...,"pid":1,
/// "tid":...,"args":{...}}],"displayTimeUnit":"ms","droppedSpans":N}.
/// Events are sorted by timestamp; span id and parent id appear in
/// "args" alongside the recorded attributes. Loadable in
/// chrome://tracing and Perfetto.
[[nodiscard]] JsonValue chrome_trace_json(const std::vector<TraceSpan>& spans,
                                          long long dropped = 0);

/// Writes chrome_trace_json(spans) to `out` (pretty-printed, trailing
/// newline).
void write_chrome_trace(std::ostream& out, const std::vector<TraceSpan>& spans,
                        long long dropped = 0);

}  // namespace cvb
