// Small string helpers shared by the datapath-config parser and the
// table printers. Kept deliberately minimal (no locale, ASCII only).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace cvb {

/// Splits `text` on `sep`, keeping empty fields.
/// split("a,,b", ',') == {"a", "", "b"}.
[[nodiscard]] std::vector<std::string> split(std::string_view text, char sep);

/// Removes leading and trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view text);

/// Parses a non-negative integer; throws std::invalid_argument on any
/// non-digit content (including empty input and overflow).
[[nodiscard]] int parse_nonnegative_int(std::string_view text);

/// Formats a double with `digits` significant digits, the way the paper
/// prints CPU times (e.g. "3.7", "13", "0.05").
[[nodiscard]] std::string format_sig(double value, int digits);

/// One-line Unicode sparkline of `values`, one glyph per entry in
/// order, scaled to the series' min..max. A flat series (all values
/// equal, including a single value) renders as mid-height bars — not
/// all-minimum, which would misread as a drop to zero. Empty input
/// yields an empty string.
[[nodiscard]] std::string sparkline(const std::vector<double>& values);

}  // namespace cvb
