// Deterministic pseudo-random number generator for the random-DAG
// kernel generator and the property-based tests. We ship our own
// SplitMix64 so random test inputs are reproducible across standard
// library implementations (std::mt19937 streams are portable, but
// distributions are not).
#pragma once

#include <cstdint>

namespace cvb {

/// SplitMix64 PRNG: tiny, fast, and fully reproducible across
/// platforms. Not cryptographic; intended for workload generation only.
class Rng {
 public:
  /// Seeds the generator. Equal seeds yield equal streams everywhere.
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi;
  /// throws std::invalid_argument otherwise.
  int uniform_int(int lo, int hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Bernoulli draw with probability `p` (clamped to [0, 1]).
  bool chance(double p);

 private:
  std::uint64_t state_;
};

}  // namespace cvb
