#include "support/cancel.hpp"

#include <limits>

namespace cvb {

CancelToken CancelToken::manual() {
  return CancelToken(std::make_shared<State>());
}

CancelToken CancelToken::at(Clock::time_point deadline) {
  auto state = std::make_shared<State>();
  state->has_deadline = true;
  state->deadline = deadline;
  return CancelToken(std::move(state));
}

CancelToken CancelToken::after_ms(double ms) {
  return at(Clock::now() +
            std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double, std::milli>(ms)));
}

void CancelToken::request_cancel() const {
  if (state_ != nullptr) {
    state_->cancelled.store(true, std::memory_order_relaxed);
  }
}

bool CancelToken::cancelled() const {
  return state_ != nullptr &&
         state_->cancelled.load(std::memory_order_relaxed);
}

bool CancelToken::has_deadline() const {
  return state_ != nullptr && state_->has_deadline;
}

bool CancelToken::deadline_expired() const {
  return state_ != nullptr && state_->has_deadline &&
         Clock::now() >= state_->deadline;
}

bool CancelToken::stop_requested() const {
  if (state_ == nullptr) {
    return false;
  }
  return state_->cancelled.load(std::memory_order_relaxed) ||
         (state_->has_deadline && Clock::now() >= state_->deadline);
}

double CancelToken::remaining_ms() const {
  if (state_ == nullptr || !state_->has_deadline) {
    return std::numeric_limits<double>::infinity();
  }
  return std::chrono::duration<double, std::milli>(state_->deadline -
                                                   Clock::now())
      .count();
}

}  // namespace cvb
