// Wall-clock stopwatch used to report algorithm CPU times in the
// benchmark harnesses (the paper's "msec"/"sec" columns).
#pragma once

#include <chrono>

namespace cvb {

/// Simple monotonic wall-clock stopwatch.
///
/// The paper reports per-algorithm runtimes (Table 1/2 "msec"/"sec"
/// columns); benches use this class so every reported time is measured
/// identically.
class Stopwatch {
 public:
  /// Starts (or restarts) timing from now.
  void restart() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last restart(), in ms.
  [[nodiscard]] double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  /// Elapsed time since construction or the last restart(), in seconds.
  [[nodiscard]] double elapsed_sec() const { return elapsed_ms() / 1000.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_ = Clock::now();
};

}  // namespace cvb
