// Fixed-size worker thread pool for the candidate-evaluation engine.
//
// Design goals, in order: deterministic result ordering (a batch's
// results always come back in submission-index order, regardless of
// which worker finished first), faithful exception propagation (the
// first failing task *by submission index* rethrows in the caller),
// and reuse (one pool serves many batches over an algorithm's
// lifetime, so thread start-up cost is paid once).
//
// The pool is intentionally minimal — a mutex/condvar task queue, no
// work stealing — because evaluation tasks (bound-DFG construction +
// list scheduling) are coarse enough (tens of microseconds to
// milliseconds) that queue contention is negligible.
//
// run_batch() must not be called from inside a pool worker: a worker
// blocking on its own pool's futures can deadlock once all workers
// wait. Consumers that nest parallelism (e.g. the design-space
// explorer running whole binder jobs) keep the inner layer serial.
#pragma once

#include <condition_variable>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <vector>

namespace cvb {

/// Fixed-size thread pool with ordered batch execution.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1; throws std::invalid_argument
  /// otherwise).
  explicit ThreadPool(int num_threads);

  /// Joins all workers; queued-but-unstarted tasks still run first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int num_threads() const {
    return static_cast<int>(workers_.size());
  }

  /// Enqueues one task and returns its future. Safe to call from any
  /// thread. Throws std::logic_error after shutdown has begun.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> result = task->get_future();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) {
        throw std::logic_error("ThreadPool::submit after shutdown");
      }
      queue_.push([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Runs every task and returns the results in submission order
  /// (tasks[i] -> results[i]), blocking until the whole batch is done.
  /// If tasks throw, the exception of the lowest-index failing task is
  /// rethrown; the rest of the batch still executes. An empty batch
  /// returns an empty vector without touching the workers.
  template <typename R>
  std::vector<R> run_batch(std::vector<std::function<R()>> tasks) {
    std::vector<std::future<R>> futures;
    futures.reserve(tasks.size());
    for (std::function<R()>& task : tasks) {
      futures.push_back(submit(std::move(task)));
    }
    std::vector<R> results;
    results.reserve(futures.size());
    for (std::future<R>& future : futures) {
      results.push_back(future.get());  // rethrows in index order
    }
    return results;
  }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace cvb
