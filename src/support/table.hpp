// Fixed-width ASCII table printer used by the benchmark harnesses to
// regenerate the paper's Tables 1 and 2 in a readable terminal form.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace cvb {

/// Accumulates rows of string cells and prints them as an aligned ASCII
/// table with a header row and column separators.
///
/// Example output:
///   DATAPATH     | PCC  L/M | msec | ...
///   -------------+----------+------+----
///   [1,1|1,1]    | 16/15    |  3.7 | ...
class TablePrinter {
 public:
  /// Creates a printer with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a data row; must have exactly as many cells as headers.
  /// Throws std::invalid_argument otherwise.
  void add_row(std::vector<std::string> cells);

  /// Appends a full-width section row (benchmark sub-headers in Table 1,
  /// e.g. "DCT-DIF: Nv=41, Ncc=2, Lcp=7").
  void add_section(std::string title);

  /// Renders the whole table.
  void print(std::ostream& out) const;

  /// Renders as RFC-4180-ish CSV: header row, then data rows; section
  /// rows become a single quoted cell. Cells containing commas or
  /// quotes are quoted with doubled inner quotes.
  void print_csv(std::ostream& out) const;

  /// Number of data rows added so far (sections excluded).
  [[nodiscard]] std::size_t row_count() const { return row_count_; }

 private:
  struct Row {
    bool is_section = false;
    std::vector<std::string> cells;  // single cell when is_section
  };

  std::vector<std::string> headers_;
  std::vector<Row> rows_;
  std::size_t row_count_ = 0;
};

}  // namespace cvb
