// Cooperative cancellation for the binding algorithms.
//
// A CancelToken is a cheap, copyable handle to shared cancellation
// state: a manual cancel flag plus an optional wall-clock deadline.
// Long-running loops (the B-ITER hill climber, PCC's improvement loop,
// the driver's L_PR sweep, the design-space explorer) poll
// stop_requested() once per round and, when it fires, return the best
// result found so far instead of running to completion — the *anytime*
// contract the binding service relies on for per-job deadlines.
//
// A default-constructed token is *empty*: it owns no state, never
// reports cancellation, and polling it costs one pointer test. All
// existing call sites therefore behave bit-identically to the
// pre-cancellation code unless a caller explicitly passes an armed
// token (see tests/cancel_test.cpp, which pins this).
#pragma once

#include <atomic>
#include <chrono>
#include <memory>

namespace cvb {

/// Copyable cancellation handle; all copies share one state.
class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  /// Empty token: never cancelled, no deadline, no allocation.
  CancelToken() = default;

  /// A token that can only be cancelled explicitly (request_cancel).
  [[nodiscard]] static CancelToken manual();

  /// A token that expires `ms` milliseconds from now (0 = already
  /// expired — useful for exercising the anytime path
  /// deterministically). It can also be cancelled manually.
  [[nodiscard]] static CancelToken after_ms(double ms);

  /// A token expiring at an absolute time point.
  [[nodiscard]] static CancelToken at(Clock::time_point deadline);

  /// True iff this token carries shared state (non-empty).
  [[nodiscard]] bool armed() const { return state_ != nullptr; }

  /// True iff this token carries a wall-clock deadline (after_ms / at).
  /// Manual tokens and empty tokens return false.
  [[nodiscard]] bool has_deadline() const;

  /// Requests cancellation; visible to every copy. No-op on an empty
  /// token. Safe to call from any thread, repeatedly.
  void request_cancel() const;

  /// True once request_cancel() has been called (manual cancellation
  /// only — deadline expiry does not set this).
  [[nodiscard]] bool cancelled() const;

  /// True once the deadline (if any) has passed.
  [[nodiscard]] bool deadline_expired() const;

  /// The polling predicate: cancelled or past the deadline.
  [[nodiscard]] bool stop_requested() const;

  /// Milliseconds until the deadline (negative once expired); +infinity
  /// for tokens without one.
  [[nodiscard]] double remaining_ms() const;

 private:
  struct State {
    std::atomic<bool> cancelled{false};
    bool has_deadline = false;
    Clock::time_point deadline{};
  };

  explicit CancelToken(std::shared_ptr<State> state)
      : state_(std::move(state)) {}

  std::shared_ptr<State> state_;
};

}  // namespace cvb
