// Process-local metrics registry: named counters, gauges, and latency
// histograms, snapshotted as JSON.
//
// This is the observability substrate of the binding service
// (src/service/): queue depth, wait/run latency, deadline-miss and
// shed rates, schedule-cache hit rate all flow through one registry so
// a single snapshot() call captures a consistent JSON document for
// dashboards or the `cvserve` `{"cmd":"metrics"}` request.
//
// Concurrency: Counter and Gauge are lock-free atomics; Histogram takes
// a short mutex per observation. Registered instruments live as long as
// the registry and are returned by reference, so hot paths resolve a
// name once and then update without any map lookup.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "support/json.hpp"

namespace cvb {

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(long long delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] long long value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<long long> value_{0};
};

/// Instantaneous level (queue depth, busy workers).
class Gauge {
 public:
  void set(long long value) { value_.store(value, std::memory_order_relaxed); }
  void add(long long delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] long long value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<long long> value_{0};
};

/// Point-in-time copy of a histogram's buckets, in the cumulative form
/// the Prometheus text format expects: cumulative[i] counts every
/// observation <= bounds[i], and cumulative.back() (the +inf bucket)
/// equals count.
struct HistogramSnapshot {
  std::vector<double> bounds;        ///< ascending upper bounds
  std::vector<long long> cumulative;  ///< bounds.size() + 1 entries
  long long count = 0;
  double sum = 0.0;
};

/// Latency histogram over fixed bucket upper bounds (plus an implicit
/// +inf overflow bucket). Percentiles are estimated by linear
/// interpolation inside the containing bucket — the standard
/// Prometheus-style estimate, exact at bucket boundaries.
class Histogram {
 public:
  /// Default bounds: 1-2-5 decades from 0.1 ms to 10 s, a useful range
  /// for binding-job latencies.
  [[nodiscard]] static std::vector<double> default_latency_bounds_ms();

  explicit Histogram(std::vector<double> bounds = default_latency_bounds_ms());

  void observe(double value);

  [[nodiscard]] long long count() const;
  [[nodiscard]] double sum() const;
  [[nodiscard]] double max() const;
  /// Estimated value at quantile `q` in [0, 1]; 0 when empty.
  [[nodiscard]] double quantile(double q) const;

  /// {"count":N,"sum":S,"max":M,"p50":..,"p95":..,"p99":..}
  [[nodiscard]] JsonValue snapshot() const;

  /// Consistent cumulative-bucket copy (one lock acquisition).
  [[nodiscard]] HistogramSnapshot buckets() const;

 private:
  std::vector<double> bounds_;          // ascending upper bounds
  mutable std::mutex mutex_;
  std::vector<long long> bucket_counts_;  // bounds_.size() + 1 (overflow)
  long long count_ = 0;
  double sum_ = 0.0;
  double max_ = 0.0;
};

/// Named instrument registry. Thread-safe; instruments are created on
/// first use and never removed.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or creates the named instrument. References stay valid for
  /// the registry's lifetime.
  [[nodiscard]] Counter& counter(const std::string& name);
  [[nodiscard]] Gauge& gauge(const std::string& name);
  [[nodiscard]] Histogram& histogram(const std::string& name);

  /// One consistent JSON document:
  /// {"counters":{...},"gauges":{...},"histograms":{name:{...}}}.
  [[nodiscard]] JsonValue snapshot() const;

  /// Prometheus text exposition (version 0.0.4) of every instrument.
  /// Instrument names are prefixed with `prefix` and sanitized to
  /// [a-zA-Z0-9_:]; histograms expand to the conventional cumulative
  /// `_bucket{le="..."}` series plus `_sum` and `_count`
  /// (FORMATS.md "Prometheus metrics").
  [[nodiscard]] std::string prometheus_text(
      const std::string& prefix = "cvb_") const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace cvb
