// Minimal JSON value, writer, and parser — enough for the binding
// service's newline-delimited request/response protocol and for
// machine-readable stats/metrics snapshots, with no external
// dependency.
//
// Deliberate scope cuts: numbers are stored as double (integral values
// round-trip exactly up to 2^53 and are printed without a fraction);
// object member order is preserved (insertion order), duplicate keys
// keep the last value on lookup; \uXXXX escapes are decoded to UTF-8
// (surrogate pairs included).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cvb {

/// One JSON document node.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<JsonValue>;
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() : kind_(Kind::kNull) {}
  JsonValue(bool value) : kind_(Kind::kBool), bool_(value) {}
  JsonValue(double value) : kind_(Kind::kNumber), number_(value) {}
  JsonValue(int value) : JsonValue(static_cast<double>(value)) {}
  JsonValue(long value) : JsonValue(static_cast<double>(value)) {}
  JsonValue(long long value) : JsonValue(static_cast<double>(value)) {}
  JsonValue(std::size_t value) : JsonValue(static_cast<double>(value)) {}
  JsonValue(const char* value) : kind_(Kind::kString), string_(value) {}
  JsonValue(std::string value)
      : kind_(Kind::kString), string_(std::move(value)) {}

  [[nodiscard]] static JsonValue array() {
    JsonValue v;
    v.kind_ = Kind::kArray;
    return v;
  }
  [[nodiscard]] static JsonValue object() {
    JsonValue v;
    v.kind_ = Kind::kObject;
    return v;
  }

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; throw std::logic_error on a kind mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  /// Appends to an array value (throws std::logic_error otherwise).
  JsonValue& push_back(JsonValue value);

  /// Sets a member on an object value, replacing an existing key.
  JsonValue& set(std::string key, JsonValue value);

  /// Looks up an object member; nullptr when absent (or not an object).
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

  /// Serializes compactly (no whitespace). `indent > 0` pretty-prints.
  void write(std::ostream& out, int indent = 0) const;
  [[nodiscard]] std::string dump(int indent = 0) const;

  /// Parses one complete JSON document; trailing non-whitespace and any
  /// syntax error throw std::invalid_argument with an offset-tagged
  /// message.
  [[nodiscard]] static JsonValue parse(std::string_view text);

  friend bool operator==(const JsonValue&, const JsonValue&) = default;

 private:
  void write_impl(std::ostream& out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Escapes `text` for inclusion inside a JSON string literal (quotes
/// not included).
[[nodiscard]] std::string json_escape(std::string_view text);

}  // namespace cvb
