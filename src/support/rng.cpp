#include "support/rng.hpp"

#include <stdexcept>

namespace cvb {

std::uint64_t Rng::next_u64() {
  // SplitMix64 (Steele, Lea, Flood 2014), public-domain reference
  // constants.
  state_ += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

int Rng::uniform_int(int lo, int hi) {
  if (lo > hi) {
    throw std::invalid_argument("Rng::uniform_int: lo > hi");
  }
  const std::uint64_t span = static_cast<std::uint64_t>(hi) - lo + 1;
  return lo + static_cast<int>(next_u64() % span);
}

double Rng::uniform01() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return uniform01() < p;
}

}  // namespace cvb
