#include "support/fault.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "support/strings.hpp"

namespace cvb {
namespace {

// FNV-1a over the site name, so each site gets its own draw stream.
std::uint64_t fnv1a(std::string_view text) {
  std::uint64_t hash = 1469598103934665603ULL;
  for (char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

// SplitMix64 finalizer: one draw per (seed, site, check-index) triple.
// No shared RNG state means the fire pattern of a site is independent
// of interleaving with other sites — deterministic even under
// concurrent checks (the per-site check counter is advanced under the
// injector lock).
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double draw01(std::uint64_t seed, std::uint64_t site_hash,
              long long check_index) {
  const std::uint64_t raw =
      mix(seed ^ mix(site_hash ^ static_cast<std::uint64_t>(check_index)));
  return static_cast<double>(raw >> 11) * 0x1.0p-53;
}

thread_local const CancelToken* t_cancel = nullptr;

}  // namespace

const char* to_string(FaultClass fault_class) {
  switch (fault_class) {
    case FaultClass::kNone:
      return "none";
    case FaultClass::kTransient:
      return "transient";
    case FaultClass::kPoison:
      return "poison";
    case FaultClass::kFatal:
      return "fatal";
  }
  return "none";
}

FaultClass fault_class_from_string(std::string_view name) {
  if (name == "none") return FaultClass::kNone;
  if (name == "transient") return FaultClass::kTransient;
  if (name == "poison") return FaultClass::kPoison;
  if (name == "fatal") return FaultClass::kFatal;
  throw std::invalid_argument("unknown fault class: \"" + std::string(name) +
                              "\" (expected none|transient|poison|fatal)");
}

FaultInjectedError::FaultInjectedError(const std::string& site,
                                       FaultClass fault_class)
    : std::runtime_error("injected " + std::string(to_string(fault_class)) +
                         " fault at site \"" + site + "\""),
      site_(site),
      class_(fault_class) {}

const std::vector<std::string>& fault_sites() {
  static const std::vector<std::string> kSites = {
      "eval.task",         // EvalEngine::evaluate_uncached entry
      "eval.cache_lookup",  // schedule-cache probe
      "eval.cache_insert",  // schedule-cache fill
      "service.admit",      // Service::admit, before queue mutation
      "service.worker",     // worker attempt, before dispatch
      "service.hang",       // worker attempt, hang-flavoured site
      "portfolio.strategy",  // racing-segment entry: drops one strategy
      "parse.dfg",          // parse_dfg_text entry
      "parse.machine",      // parse_machine_file entry
      // -- network sites (checked via CVB_INJECT_DRAW; the caller fakes
      // the syscall result instead of unwinding, so fault_class is
      // ignored for these unless noted) --
      "net.read.eintr",    // NetServer read: simulated EINTR
      "net.read.short",    // NetServer read: torn delivery (tiny chunk)
      "net.read.reset",    // NetServer read: injected ECONNRESET
      "net.write.eintr",   // NetServer flush: simulated EINTR
      "net.write.short",   // NetServer flush: torn 1-byte send
      "net.write.eagain",  // NetServer flush: spurious EAGAIN
      "net.frame_drop",    // NetServer flush: close the conn mid-frame
      "net.wakeup",        // EventLoop::wakeup — arm hang-flavoured only
      "net.frame.decode",  // frame decode — arm hang-flavoured only
      "router.connect",              // router upstream connect failure
      "router.upstream_read.eintr",  // router reader: simulated EINTR
      "router.upstream_read.eof",    // router reader: spurious EOF
      "router.upstream_write.eintr",  // router send: simulated EINTR
      "router.upstream_write.torn",   // router send: torn 1-byte writes
      "router.upstream_write.drop",   // router send: drop conn mid-frame
  };
  return kSites;
}

FaultInjector& FaultInjector::global() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::arm(const std::string& site, FaultSpec spec) {
  const auto& known = fault_sites();
  if (std::find(known.begin(), known.end(), site) == known.end()) {
    std::string message = "unknown fault site: \"" + site + "\" (known:";
    for (const auto& name : known) message += " " + name;
    throw std::invalid_argument(message + ")");
  }
  if (!(spec.rate >= 0.0 && spec.rate <= 1.0)) {
    throw std::invalid_argument("fault rate must be in [0, 1]");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sites_.find(site);
  if (spec.rate == 0.0) {
    if (it != sites_.end()) {
      sites_.erase(it);
      armed_sites_.store(static_cast<int>(sites_.size()),
                         std::memory_order_relaxed);
    }
    return;
  }
  if (it == sites_.end()) {
    sites_.emplace(site, SiteState{spec, 0, 0});
  } else {
    it->second.spec = spec;
  }
  armed_sites_.store(static_cast<int>(sites_.size()),
                     std::memory_order_relaxed);
}

void FaultInjector::arm_from_flag(const std::string& flag) {
  const std::vector<std::string> parts = split(flag, ':');
  if (parts.size() < 2 || parts.size() > 4) {
    throw std::invalid_argument(
        "bad --inject value \"" + flag +
        "\" (expected site:rate[:class[:hang_ms]])");
  }
  FaultSpec spec;
  try {
    spec.rate = std::stod(parts[1]);
  } catch (const std::exception&) {
    throw std::invalid_argument("bad --inject rate in \"" + flag + "\"");
  }
  if (parts.size() >= 3) spec.fault_class = fault_class_from_string(parts[2]);
  if (parts.size() == 4) {
    try {
      spec.hang_ms = std::stod(parts[3]);
    } catch (const std::exception&) {
      throw std::invalid_argument("bad --inject hang_ms in \"" + flag + "\"");
    }
  }
  arm(std::string(trim(parts[0])), spec);
}

void FaultInjector::disarm(const std::string& site) {
  std::lock_guard<std::mutex> lock(mutex_);
  sites_.erase(site);
  armed_sites_.store(static_cast<int>(sites_.size()),
                     std::memory_order_relaxed);
}

void FaultInjector::disarm_all() {
  std::lock_guard<std::mutex> lock(mutex_);
  sites_.clear();
  armed_sites_.store(0, std::memory_order_relaxed);
}

void FaultInjector::set_seed(std::uint64_t seed) {
  std::lock_guard<std::mutex> lock(mutex_);
  seed_ = seed;
  total_triggered_ = 0;
  for (auto& [site, state] : sites_) {
    state.checks = 0;
    state.triggered = 0;
  }
}

long long FaultInjector::triggered(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.triggered;
}

long long FaultInjector::total_triggered() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_triggered_;
}

void FaultInjector::check(std::string_view site) {
  if (!any_armed()) return;

  FaultSpec spec;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = sites_.find(site);
    if (it == sites_.end()) return;
    SiteState& state = it->second;
    const long long index = state.checks++;
    if (state.spec.max_triggers >= 0 &&
        state.triggered >= state.spec.max_triggers) {
      return;
    }
    if (draw01(seed_, fnv1a(site), index) >= state.spec.rate) return;
    ++state.triggered;
    ++total_triggered_;
    spec = it->second.spec;
  }
  // The lock is released before hanging or throwing: a hung site must
  // not wedge every other site's checks, and throwing with a held lock
  // would be outright wrong.
  if (spec.hang_ms > 0.0) {
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration<double, std::milli>(spec.hang_ms);
    while (std::chrono::steady_clock::now() < deadline) {
      if (spec.cooperative && t_cancel != nullptr &&
          t_cancel->stop_requested()) {
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return;
  }
  throw FaultInjectedError(std::string(site), spec.fault_class);
}

std::uint64_t FaultInjector::check_draw(std::string_view site) {
  if (!any_armed()) return 0;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sites_.find(site);
  if (it == sites_.end()) return 0;
  SiteState& state = it->second;
  const long long index = state.checks++;
  if (state.spec.max_triggers >= 0 &&
      state.triggered >= state.spec.max_triggers) {
    return 0;
  }
  if (draw01(seed_, fnv1a(site), index) >= state.spec.rate) return 0;
  ++state.triggered;
  ++total_triggered_;
  // | 1 guarantees a fired site never reads as "did not fire".
  return mix(seed_ ^ fnv1a(site) ^ static_cast<std::uint64_t>(index)) | 1ULL;
}

void FaultInjector::set_thread_cancel(const CancelToken* token) {
  t_cancel = token;
}

}  // namespace cvb
