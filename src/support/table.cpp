#include "support/table.hpp"

#include <algorithm>
#include <ostream>
#include <stdexcept>

namespace cvb {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw std::invalid_argument("TablePrinter: need at least one column");
  }
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("TablePrinter: row has " +
                                std::to_string(cells.size()) + " cells, want " +
                                std::to_string(headers_.size()));
  }
  rows_.push_back(Row{false, std::move(cells)});
  ++row_count_;
}

void TablePrinter::add_section(std::string title) {
  rows_.push_back(Row{true, {std::move(title)}});
}

void TablePrinter::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    widths[i] = headers_[i].size();
  }
  for (const Row& row : rows_) {
    if (row.is_section) {
      continue;
    }
    for (std::size_t i = 0; i < row.cells.size(); ++i) {
      widths[i] = std::max(widths[i], row.cells[i].size());
    }
  }

  const auto print_cells = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i != 0) {
        out << " | ";
      }
      out << cells[i];
      out << std::string(widths[i] - cells[i].size(), ' ');
    }
    out << '\n';
  };
  const auto print_rule = [&] {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      if (i != 0) {
        out << "-+-";
      }
      out << std::string(widths[i], '-');
    }
    out << '\n';
  };

  print_cells(headers_);
  print_rule();
  for (const Row& row : rows_) {
    if (row.is_section) {
      print_rule();
      out << row.cells.front() << '\n';
      print_rule();
    } else {
      print_cells(row.cells);
    }
  }
}

void TablePrinter::print_csv(std::ostream& out) const {
  const auto cell = [](const std::string& text) {
    if (text.find_first_of(",\"\n") == std::string::npos) {
      return text;
    }
    std::string quoted = "\"";
    for (const char c : text) {
      if (c == '"') {
        quoted += '"';
      }
      quoted += c;
    }
    quoted += '"';
    return quoted;
  };
  const auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i != 0) {
        out << ',';
      }
      out << cell(cells[i]);
    }
    out << '\n';
  };
  print_row(headers_);
  for (const Row& row : rows_) {
    print_row(row.cells);
  }
}

}  // namespace cvb
