// Shared non-cryptographic hash primitives.
//
// Exactly two hash functions exist in this codebase, both here so every
// subsystem agrees on them:
//
//  * fnv1a(): 64-bit FNV-1a, folded one byte at a time. The evaluation
//    engine keys its schedule cache with it (bind/eval_engine.cpp) and
//    the consistent-hash router keys requests with it (net/router.cpp),
//    which is what keeps a worker's sharded cache hot for its key
//    range: both sides hash the same request fields the same way.
//  * fmix64(): the murmur3 64-bit finalizer. FNV-1a's low bits disperse
//    poorly (the trailing multiply leaves neighbouring keys in a
//    handful of low-bit classes — PR 6 observed a direct-mapped cache
//    collapsing onto two slots because of it), so every place that
//    *indexes* with an FNV key (L1 slot tables, the router's hash
//    ring) runs it through this finalizer first.
#pragma once

#include <cstdint>
#include <string_view>

namespace cvb {

inline constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

/// Folds all 8 bytes of `value` into `hash` (FNV-1a), so nearby
/// integers diverge.
[[nodiscard]] inline std::uint64_t fnv1a(std::uint64_t hash,
                                         std::uint64_t value) {
  for (int byte = 0; byte < 8; ++byte) {
    hash ^= (value >> (8 * byte)) & 0xffU;
    hash *= kFnvPrime;
  }
  return hash;
}

/// Folds a byte string into `hash` (FNV-1a).
[[nodiscard]] inline std::uint64_t fnv1a_bytes(std::uint64_t hash,
                                               std::string_view bytes) {
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= kFnvPrime;
  }
  return hash;
}

/// murmur3's 64-bit finalizer: a bijective avalanche, so the result's
/// low bits depend on every input bit. Use before masking/modulo.
[[nodiscard]] inline std::uint64_t fmix64(std::uint64_t h) {
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

}  // namespace cvb
