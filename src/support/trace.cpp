#include "support/trace.hpp"

#include <algorithm>
#include <cstddef>
#include <ostream>
#include <utility>

namespace cvb {

namespace internal {

/// One thread's recording state for one tracer. `spans` is shared with
/// drainers and guarded by `mutex`; `stack` (the open-span stack for
/// implicit parenting) is touched only by the owning thread and needs
/// no lock.
struct TraceThreadBuffer {
  std::mutex mutex;
  std::vector<TraceSpan> spans;      // guarded by mutex
  std::vector<std::uint64_t> stack;  // owning thread only
  std::uint64_t thread_index = 0;
};

}  // namespace internal

namespace {

std::atomic<std::uint64_t> g_next_tracer_uid{1};

/// Thread-local cache mapping tracer uid -> this thread's buffer,
/// kept in LRU order (most recently used at the back). Uids are never
/// reused, so an entry for a destroyed tracer can never match a live
/// one (its dangling pointer is never dereferenced). The size cap
/// evicts the *least recently used* entry, so a long-lived tracer this
/// thread keeps recording into is never displaced by a burst of
/// short-lived ones — eviction of a live tracer's entry would split
/// its open-span stack and allocate it a fresh thread index.
struct TlsEntry {
  std::uint64_t uid = 0;
  internal::TraceThreadBuffer* buffer = nullptr;
};

thread_local std::vector<TlsEntry> t_buffers;

constexpr std::size_t kMaxTlsEntries = 32;

}  // namespace

Tracer::Tracer(std::size_t max_spans_per_thread)
    : max_spans_per_thread_(std::max<std::size_t>(1, max_spans_per_thread)),
      uid_(g_next_tracer_uid.fetch_add(1, std::memory_order_relaxed)),
      epoch_(std::chrono::steady_clock::now()) {}

Tracer::~Tracer() = default;

std::uint64_t Tracer::now_us() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

internal::TraceThreadBuffer& Tracer::buffer() {
  // Scan newest-first: the common case is one hot tracer, which LRU
  // ordering keeps at the back.
  for (std::size_t i = t_buffers.size(); i-- > 0;) {
    if (t_buffers[i].uid == uid_) {
      if (i + 1 != t_buffers.size()) {
        const TlsEntry hit = t_buffers[i];
        t_buffers.erase(t_buffers.begin() + static_cast<std::ptrdiff_t>(i));
        t_buffers.push_back(hit);
      }
      return *t_buffers.back().buffer;
    }
  }
  auto owned = std::make_unique<internal::TraceThreadBuffer>();
  internal::TraceThreadBuffer* raw = owned.get();
  {
    const std::lock_guard<std::mutex> lock(registry_mutex_);
    raw->thread_index = static_cast<std::uint64_t>(buffers_.size());
    buffers_.push_back(std::move(owned));
  }
  if (t_buffers.size() >= kMaxTlsEntries) {
    t_buffers.erase(t_buffers.begin());  // front = least recently used
  }
  t_buffers.push_back(TlsEntry{uid_, raw});
  return *raw;
}

std::uint64_t Tracer::current_span() {
  const std::vector<std::uint64_t>& stack = buffer().stack;
  return stack.empty() ? 0 : stack.back();
}

void Tracer::push_span(std::uint64_t id) { buffer().stack.push_back(id); }

void Tracer::pop_span(std::uint64_t id) {
  std::vector<std::uint64_t>& stack = buffer().stack;
  if (!stack.empty() && stack.back() == id) {
    stack.pop_back();
    return;
  }
  // Out-of-order close (possible only after a TLS cache eviction split
  // one thread's stack): drop the matching entry wherever it is.
  const auto it = std::find(stack.rbegin(), stack.rend(), id);
  if (it != stack.rend()) {
    stack.erase(std::next(it).base());
  }
}

void Tracer::record(TraceSpan span) {
  internal::TraceThreadBuffer& buf = buffer();
  span.thread = buf.thread_index;
  const std::lock_guard<std::mutex> lock(buf.mutex);
  if (buf.spans.size() >= max_spans_per_thread_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  buf.spans.push_back(std::move(span));
}

std::vector<TraceSpan> Tracer::collect(bool clear) const {
  std::vector<TraceSpan> all;
  {
    const std::lock_guard<std::mutex> lock(registry_mutex_);
    for (const std::unique_ptr<internal::TraceThreadBuffer>& buf : buffers_) {
      const std::lock_guard<std::mutex> buf_lock(buf->mutex);
      if (clear) {
        all.insert(all.end(), std::make_move_iterator(buf->spans.begin()),
                   std::make_move_iterator(buf->spans.end()));
        buf->spans.clear();
      } else {
        all.insert(all.end(), buf->spans.begin(), buf->spans.end());
      }
    }
  }
  std::sort(all.begin(), all.end(),
            [](const TraceSpan& a, const TraceSpan& b) {
              return std::pair(a.start_us, a.id) < std::pair(b.start_us, b.id);
            });
  return all;
}

std::vector<TraceSpan> Tracer::drain() { return collect(true); }

std::vector<TraceSpan> Tracer::snapshot() const { return collect(false); }

void ScopedSpan::attr(const char* key, long long value) {
  if (tracer_ == nullptr) {
    return;
  }
  TraceAttr a;
  a.key = key;
  a.kind = TraceAttr::Kind::kInt;
  a.int_value = value;
  attrs_.push_back(std::move(a));
}

void ScopedSpan::attr(const char* key, double value) {
  if (tracer_ == nullptr) {
    return;
  }
  TraceAttr a;
  a.key = key;
  a.kind = TraceAttr::Kind::kDouble;
  a.double_value = value;
  attrs_.push_back(std::move(a));
}

void ScopedSpan::attr(const char* key, std::string value) {
  if (tracer_ == nullptr) {
    return;
  }
  TraceAttr a;
  a.key = key;
  a.kind = TraceAttr::Kind::kString;
  a.string_value = std::move(value);
  attrs_.push_back(std::move(a));
}

void ScopedSpan::finish() {
  if (tracer_ == nullptr) {
    return;
  }
  TraceSpan span;
  span.id = id_;
  span.parent = parent_;
  span.name = name_;
  span.start_us = start_us_;
  span.end_us = std::max(tracer_->now_us(), start_us_);
  span.attrs = std::move(attrs_);
  tracer_->pop_span(id_);
  tracer_->record(std::move(span));
  tracer_ = nullptr;
}

JsonValue chrome_trace_json(const std::vector<TraceSpan>& spans,
                            long long dropped) {
  std::vector<const TraceSpan*> ordered;
  ordered.reserve(spans.size());
  for (const TraceSpan& span : spans) {
    ordered.push_back(&span);
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const TraceSpan* a, const TraceSpan* b) {
              return std::pair(a->start_us, a->id) <
                     std::pair(b->start_us, b->id);
            });

  JsonValue events = JsonValue::array();
  for (const TraceSpan* span : ordered) {
    JsonValue event = JsonValue::object();
    event.set("ph", "X");
    event.set("cat", "cvb");
    event.set("name", span->name);
    event.set("ts", static_cast<long long>(span->start_us));
    event.set("dur", static_cast<long long>(span->end_us - span->start_us));
    event.set("pid", 1);
    event.set("tid", static_cast<long long>(span->thread));
    JsonValue args = JsonValue::object();
    args.set("span", static_cast<long long>(span->id));
    if (span->parent != 0) {
      args.set("parent", static_cast<long long>(span->parent));
    }
    for (const TraceAttr& a : span->attrs) {
      switch (a.kind) {
        case TraceAttr::Kind::kInt:
          args.set(a.key, a.int_value);
          break;
        case TraceAttr::Kind::kDouble:
          args.set(a.key, a.double_value);
          break;
        case TraceAttr::Kind::kString:
          args.set(a.key, a.string_value);
          break;
      }
    }
    event.set("args", std::move(args));
    events.push_back(std::move(event));
  }

  JsonValue doc = JsonValue::object();
  doc.set("traceEvents", std::move(events));
  doc.set("displayTimeUnit", "ms");
  doc.set("droppedSpans", dropped);
  return doc;
}

void write_chrome_trace(std::ostream& out, const std::vector<TraceSpan>& spans,
                        long long dropped) {
  chrome_trace_json(spans, dropped).write(out, 2);
  out << '\n';
}

}  // namespace cvb
