// Deterministic fault injection and the fault taxonomy shared by the
// whole serving stack.
//
// Production binders fail in three distinct ways, and the recovery
// machinery (src/service/resilience.*) treats each differently:
//
//  * kTransient — the operation would likely succeed if repeated (a
//    worker crash, a flaky cache shard). Retried with exponential
//    backoff + decorrelated jitter.
//  * kPoison — the *input* deterministically triggers the failure (a
//    malformed graph, a request blowing a resource limit). Never
//    retried; repeated poison failures of the same job key quarantine
//    that key onto the graceful-degradation path.
//  * kFatal — an internal invariant broke (verifier rejection, logic
//    error). Never retried, surfaced immediately.
//
// `FaultInjector` is the chaos-testing half: a process-global registry
// of *named injection sites* compiled into the hot seams (evaluation
// tasks, schedule-cache lookup/insert, service admission, the worker
// loop, the text parsers). Each armed site fires deterministically: the
// n-th check of a site draws from SplitMix64(seed, site, n), so a given
// (seed, rate) reproduces the same fire/no-fire sequence per site on
// every run. Sites compile to literal no-ops unless the build enables
// -DCVB_FAULT_INJECTION=ON (see the top-level CMakeLists), so release
// binaries pay zero overhead — not even a branch.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "support/cancel.hpp"

namespace cvb {

/// How a failure should be treated by the recovery machinery.
enum class FaultClass {
  kNone,       ///< not a failure
  kTransient,  ///< retriable: likely to succeed if repeated
  kPoison,     ///< input-determined: never retry, quarantine on repeat
  kFatal,      ///< broken invariant: never retry, surface immediately
};

/// Wire/name form: "none", "transient", "poison", "fatal".
[[nodiscard]] const char* to_string(FaultClass fault_class);

/// Inverse of to_string; throws std::invalid_argument on unknown names.
[[nodiscard]] FaultClass fault_class_from_string(std::string_view name);

/// Thrown by an armed injection site. Carries the site name and the
/// fault class the site was armed with, so the recovery layer can
/// classify it without string matching.
class FaultInjectedError : public std::runtime_error {
 public:
  FaultInjectedError(const std::string& site, FaultClass fault_class);

  [[nodiscard]] const std::string& site() const noexcept { return site_; }
  [[nodiscard]] FaultClass fault_class() const noexcept { return class_; }

 private:
  std::string site_;
  FaultClass class_;
};

/// Thrown by resource guards (scheduler step budgets, and any future
/// admission-size checks) when an input exceeds a configured limit.
/// Classified kPoison by the recovery layer: the input, not the
/// system, is at fault, so retrying is pointless.
class ResourceLimitError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// What an armed site does when its draw fires.
struct FaultSpec {
  /// Per-check fire probability in [0, 1]. 0 disarms the site.
  double rate = 0.0;
  /// Class carried by the thrown FaultInjectedError.
  FaultClass fault_class = FaultClass::kTransient;
  /// > 0: instead of throwing, sleep this long (simulating a hung
  /// worker) and then continue normally.
  double hang_ms = 0.0;
  /// Hangs only: poll the current job's CancelToken (registered via
  /// set_thread_cancel) every slice and wake early once it fires — the
  /// shape of a hang the watchdog can rescue cooperatively. false
  /// sleeps the full hang_ms regardless, exercising worker abandonment.
  bool cooperative = true;
  /// Fire at most this many times (-1 = unlimited). Models a transient
  /// fault storm that subsides, letting retried jobs eventually
  /// succeed.
  long long max_triggers = -1;
};

/// Every injection site compiled into the tree. arm() rejects names
/// outside this list so a typo cannot silently never fire.
[[nodiscard]] const std::vector<std::string>& fault_sites();

/// True when the build compiled the CVB_INJECT sites in
/// (-DCVB_FAULT_INJECTION=ON).
[[nodiscard]] constexpr bool fault_injection_compiled() {
#if defined(CVB_FAULT_INJECTION)
  return true;
#else
  return false;
#endif
}

/// Process-global, thread-safe registry of armed injection sites.
class FaultInjector {
 public:
  /// The process-wide instance every CVB_INJECT site checks.
  [[nodiscard]] static FaultInjector& global();

  /// Arms (or re-arms) a site. Throws std::invalid_argument for names
  /// not in fault_sites() or rates outside [0, 1].
  void arm(const std::string& site, FaultSpec spec);

  /// Arms from the CLI flag form `site:rate[:class[:hang_ms]]`, e.g.
  /// "eval.task:0.1", "eval.task:0.5:poison",
  /// "service.hang:1:transient:50". Throws std::invalid_argument on
  /// malformed input.
  void arm_from_flag(const std::string& flag);

  void disarm(const std::string& site);
  void disarm_all();

  /// Reseeds the deterministic draw stream and resets per-site check
  /// and trigger counters.
  void set_seed(std::uint64_t seed);

  /// True when at least one site is armed (relaxed fast path).
  [[nodiscard]] bool any_armed() const {
    return armed_sites_.load(std::memory_order_relaxed) > 0;
  }

  /// Times the site fired since it was armed / last reseed.
  [[nodiscard]] long long triggered(const std::string& site) const;
  [[nodiscard]] long long total_triggered() const;

  /// The hot-path check behind CVB_INJECT: deterministic draw, then
  /// throw FaultInjectedError or hang per the armed FaultSpec. A
  /// disarmed injector returns after one relaxed atomic load.
  void check(std::string_view site);

  /// The hot-path check behind CVB_INJECT_DRAW: advances the same
  /// per-site counters as check(), but never throws or hangs — it
  /// returns 0 when the site does not fire and a nonzero deterministic
  /// value when it does. Network seams use this form because a socket
  /// fault is expressed as a faked syscall result (errno, short count),
  /// not an exception; the returned draw additionally seeds derived
  /// quantities such as torn-read chunk sizes.
  [[nodiscard]] std::uint64_t check_draw(std::string_view site);

  /// Registers the cancel token cooperative hangs poll on this thread
  /// (nullptr to clear). The service worker loop brackets each job with
  /// this so an injected hang can be rescued by the watchdog.
  static void set_thread_cancel(const CancelToken* token);

 private:
  struct SiteState {
    FaultSpec spec;
    long long checks = 0;
    long long triggered = 0;
  };

  FaultInjector() = default;

  mutable std::mutex mutex_;
  std::map<std::string, SiteState, std::less<>> sites_;
  std::uint64_t seed_ = 0x5eedf417ULL;
  long long total_triggered_ = 0;
  std::atomic<int> armed_sites_{0};
};

/// RAII helper for tests and benches: disarms every site (and
/// optionally reseeds) on construction and destruction, so one test's
/// chaos cannot leak into the next.
class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(std::uint64_t seed = 0x5eedf417ULL) {
    FaultInjector::global().disarm_all();
    FaultInjector::global().set_seed(seed);
  }
  ~ScopedFaultInjection() { FaultInjector::global().disarm_all(); }

  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;
};

}  // namespace cvb

/// A named injection site. Compiles to nothing unless the build sets
/// CVB_FAULT_INJECTION; when compiled in, costs one relaxed atomic load
/// while no site is armed.
#if defined(CVB_FAULT_INJECTION)
#define CVB_INJECT(site) ::cvb::FaultInjector::global().check(site)
#else
#define CVB_INJECT(site) ((void)0)
#endif

/// The draw-valued form used by the network seams: evaluates to 0 when
/// the site does not fire (or injection is compiled out — the constant
/// lets the compiler delete the entire fault arm), else to a nonzero
/// deterministic value derived from (seed, site, check-index).
#if defined(CVB_FAULT_INJECTION)
#define CVB_INJECT_DRAW(site) (::cvb::FaultInjector::global().check_draw(site))
#else
#define CVB_INJECT_DRAW(site) (std::uint64_t{0})
#endif
