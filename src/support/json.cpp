#include "support/json.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace cvb {

namespace {

[[noreturn]] void kind_error(const char* want, JsonValue::Kind got) {
  throw std::logic_error(std::string("JsonValue: expected ") + want +
                         ", value holds kind " +
                         std::to_string(static_cast<int>(got)));
}

}  // namespace

bool JsonValue::as_bool() const {
  if (!is_bool()) {
    kind_error("bool", kind_);
  }
  return bool_;
}

double JsonValue::as_number() const {
  if (!is_number()) {
    kind_error("number", kind_);
  }
  return number_;
}

const std::string& JsonValue::as_string() const {
  if (!is_string()) {
    kind_error("string", kind_);
  }
  return string_;
}

const JsonValue::Array& JsonValue::as_array() const {
  if (!is_array()) {
    kind_error("array", kind_);
  }
  return array_;
}

const JsonValue::Object& JsonValue::as_object() const {
  if (!is_object()) {
    kind_error("object", kind_);
  }
  return object_;
}

JsonValue& JsonValue::push_back(JsonValue value) {
  if (!is_array()) {
    kind_error("array", kind_);
  }
  array_.push_back(std::move(value));
  return *this;
}

JsonValue& JsonValue::set(std::string key, JsonValue value) {
  if (!is_object()) {
    kind_error("object", kind_);
  }
  for (auto& [existing, member] : object_) {
    if (existing == key) {
      member = std::move(value);
      return *this;
    }
  }
  object_.emplace_back(std::move(key), std::move(value));
  return *this;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (!is_object()) {
    return nullptr;
  }
  const JsonValue* found = nullptr;
  for (const auto& [existing, member] : object_) {
    if (existing == key) {
      found = &member;  // last duplicate wins, matching common parsers
    }
  }
  return found;
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char ch : text) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buf;
        } else {
          out += ch;  // UTF-8 bytes pass through verbatim
        }
    }
  }
  return out;
}

void JsonValue::write_impl(std::ostream& out, int indent, int depth) const {
  const auto newline_pad = [&](int levels) {
    if (indent > 0) {
      out << '\n' << std::string(static_cast<std::size_t>(indent * levels), ' ');
    }
  };
  switch (kind_) {
    case Kind::kNull:
      out << "null";
      break;
    case Kind::kBool:
      out << (bool_ ? "true" : "false");
      break;
    case Kind::kNumber: {
      // Integral values print without a fraction; everything else uses
      // enough digits to round-trip a double.
      if (std::isfinite(number_) && number_ == std::floor(number_) &&
          std::abs(number_) < 9.007199254740992e15) {
        out << static_cast<long long>(number_);
      } else if (std::isfinite(number_)) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.17g", number_);
        out << buf;
      } else {
        out << "null";  // JSON has no NaN/Inf
      }
      break;
    }
    case Kind::kString:
      out << '"' << json_escape(string_) << '"';
      break;
    case Kind::kArray: {
      out << '[';
      bool first = true;
      for (const JsonValue& item : array_) {
        if (!first) {
          out << ',';
        }
        first = false;
        newline_pad(depth + 1);
        item.write_impl(out, indent, depth + 1);
      }
      if (!array_.empty()) {
        newline_pad(depth);
      }
      out << ']';
      break;
    }
    case Kind::kObject: {
      out << '{';
      bool first = true;
      for (const auto& [key, member] : object_) {
        if (!first) {
          out << ',';
        }
        first = false;
        newline_pad(depth + 1);
        out << '"' << json_escape(key) << "\":";
        if (indent > 0) {
          out << ' ';
        }
        member.write_impl(out, indent, depth + 1);
      }
      if (!object_.empty()) {
        newline_pad(depth);
      }
      out << '}';
      break;
    }
  }
}

void JsonValue::write(std::ostream& out, int indent) const {
  write_impl(out, indent, 0);
}

std::string JsonValue::dump(int indent) const {
  std::ostringstream out;
  write(out, indent);
  return out.str();
}

namespace {

/// Recursive-descent JSON parser over a string_view.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing content after JSON document");
    }
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("json: " + what + " at offset " +
                                std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
    }
    return text_[pos_];
  }

  void expect(char ch) {
    if (peek() != ch) {
      fail(std::string("expected '") + ch + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) == literal) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  void append_utf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  std::uint32_t parse_hex4() {
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char ch = peek();
      value <<= 4;
      if (ch >= '0' && ch <= '9') {
        value |= static_cast<std::uint32_t>(ch - '0');
      } else if (ch >= 'a' && ch <= 'f') {
        value |= static_cast<std::uint32_t>(ch - 'a' + 10);
      } else if (ch >= 'A' && ch <= 'F') {
        value |= static_cast<std::uint32_t>(ch - 'A' + 10);
      } else {
        fail("bad \\u escape digit");
      }
      ++pos_;
    }
    return value;
  }

  std::string parse_string_body() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) {
        fail("unterminated string");
      }
      const char ch = text_[pos_];
      if (ch == '"') {
        ++pos_;
        return out;
      }
      if (static_cast<unsigned char>(ch) < 0x20) {
        fail("unescaped control character in string");
      }
      if (ch != '\\') {
        out += ch;
        ++pos_;
        continue;
      }
      ++pos_;  // consume backslash
      const char esc = peek();
      ++pos_;
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          std::uint32_t cp = parse_hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: require a following \uDC00..\uDFFF.
            if (!consume_literal("\\u")) {
              fail("unpaired surrogate");
            }
            const std::uint32_t low = parse_hex4();
            if (low < 0xDC00 || low > 0xDFFF) {
              fail("bad low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("unpaired surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default:
          fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    try {
      std::size_t used = 0;
      const double value = std::stod(token, &used);
      if (used != token.size()) {
        throw std::invalid_argument(token);
      }
      return JsonValue(value);
    } catch (const std::exception&) {
      pos_ = start;
      fail("bad number '" + token + "'");
    }
  }

  JsonValue parse_value() {
    skip_ws();
    const char ch = peek();
    if (ch == '{') {
      ++pos_;
      JsonValue obj = JsonValue::object();
      skip_ws();
      if (peek() == '}') {
        ++pos_;
        return obj;
      }
      while (true) {
        skip_ws();
        std::string key = parse_string_body();
        skip_ws();
        expect(':');
        obj.set(std::move(key), parse_value());
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect('}');
        return obj;
      }
    }
    if (ch == '[') {
      ++pos_;
      JsonValue arr = JsonValue::array();
      skip_ws();
      if (peek() == ']') {
        ++pos_;
        return arr;
      }
      while (true) {
        arr.push_back(parse_value());
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect(']');
        return arr;
      }
    }
    if (ch == '"') {
      return JsonValue(parse_string_body());
    }
    if (consume_literal("true")) {
      return JsonValue(true);
    }
    if (consume_literal("false")) {
      return JsonValue(false);
    }
    if (consume_literal("null")) {
      return JsonValue();
    }
    if (ch == '-' || (ch >= '0' && ch <= '9')) {
      return parse_number();
    }
    fail("unexpected character");
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue JsonValue::parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace cvb
