#include "graph/stats.hpp"

#include <algorithm>

#include "graph/components.hpp"

namespace cvb {

DfgStats compute_stats(const Dfg& dfg, const LatencyTable& lat) {
  DfgStats stats;
  stats.num_ops = dfg.num_ops();
  stats.num_edges = dfg.num_edges();
  stats.num_components = num_components(dfg);
  stats.critical_path = critical_path_length(dfg, lat);
  if (dfg.num_ops() == 0) {
    return stats;
  }

  const std::vector<int> asap = asap_starts(dfg, lat);
  const int levels = *std::max_element(asap.begin(), asap.end()) + 1;
  stats.ops_per_level.assign(static_cast<std::size_t>(levels), 0);
  for (OpId v = 0; v < dfg.num_ops(); ++v) {
    ++stats.ops_per_level[static_cast<std::size_t>(
        asap[static_cast<std::size_t>(v)])];
    stats.max_fanout =
        std::max(stats.max_fanout, static_cast<int>(dfg.succs(v).size()));
    if (dfg.preds(v).empty()) {
      ++stats.num_inputs;
    }
    if (dfg.succs(v).empty()) {
      ++stats.num_outputs;
    }
  }
  stats.max_width = *std::max_element(stats.ops_per_level.begin(),
                                      stats.ops_per_level.end());
  stats.avg_fanout =
      static_cast<double>(stats.num_edges) / stats.num_ops;
  return stats;
}

}  // namespace cvb
