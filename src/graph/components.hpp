// Weakly-connected-component analysis. The paper reports N_CC (number
// of connected components) for each benchmark: independent components
// give the binder freedom to place whole subgraphs on different
// clusters without any data transfers.
#pragma once

#include <vector>

#include "graph/dfg.hpp"

namespace cvb {

/// Component label (0-based, dense) for every operation, treating edges
/// as undirected.
[[nodiscard]] std::vector<int> component_labels(const Dfg& dfg);

/// Number of weakly connected components (the paper's N_CC). Zero for
/// an empty graph.
[[nodiscard]] int num_components(const Dfg& dfg);

}  // namespace cvb
