// Fluent construction helper for dataflow graphs. Kernel generators and
// tests use this instead of raw add_op/add_edge calls so graph shape
// reads close to the arithmetic it encodes:
//
//   DfgBuilder b;
//   auto x = b.input();              // placeholder value (no op)
//   auto s = b.add(x, b.input());    // ALU op consuming two values
//   auto p = b.mul(s, s_prev);
//   Dfg dfg = std::move(b).take();
//
// "Values" are either the result of an operation (a real DFG vertex) or
// an external input (basic-block live-in, carried in a register file,
// not a vertex — matching the paper's DFGs whose N_V counts operations
// only).
#pragma once

#include <string>
#include <utility>

#include "graph/dfg.hpp"

namespace cvb {

/// A dataflow value: either produced by operation `producer`, or an
/// external input when producer == kNoOp.
struct Value {
  OpId producer = kNoOp;
};

/// Incremental DFG builder; see file comment for usage.
class DfgBuilder {
 public:
  /// An external (live-in) value; creates no operation.
  [[nodiscard]] Value input() const { return Value{kNoOp}; }

  /// Adds a unary operation consuming `a`.
  Value op1(OpType type, Value a, std::string name = {});

  /// Adds a binary operation consuming `a` and `b`.
  Value op2(OpType type, Value a, Value b, std::string name = {});

  // Arithmetic conveniences (the benchmark kernels only need these).
  Value add(Value a, Value b, std::string name = {}) {
    return op2(OpType::kAdd, a, b, std::move(name));
  }
  Value sub(Value a, Value b, std::string name = {}) {
    return op2(OpType::kSub, a, b, std::move(name));
  }
  Value mul(Value a, Value b, std::string name = {}) {
    return op2(OpType::kMul, a, b, std::move(name));
  }
  Value neg(Value a, std::string name = {}) {
    return op1(OpType::kNeg, a, std::move(name));
  }
  /// Multiply by a compile-time constant: a single-operand multiplier
  /// op (the constant lives in the instruction word, not the DFG).
  Value cmul(Value a, std::string name = {}) {
    return op1(OpType::kMul, a, std::move(name));
  }

  /// Access to the graph under construction (e.g. to query ids).
  [[nodiscard]] const Dfg& graph() const { return dfg_; }

  /// Finalizes and returns the graph. The builder is left empty.
  [[nodiscard]] Dfg take() && { return std::move(dfg_); }

 private:
  void connect(Value from, OpId to);

  Dfg dfg_;
};

}  // namespace cvb
