// Aggregate DFG statistics: the numbers papers put in benchmark
// sub-headers (N_V, N_CC, L_CP) plus shape measures (level widths,
// fan-out) that explain *why* a kernel binds well or badly — wide
// levels need FUs, high fan-out makes transfers shareable, narrow deep
// graphs cluster poorly.
#pragma once

#include <vector>

#include "graph/analysis.hpp"
#include "graph/dfg.hpp"

namespace cvb {

/// Shape summary of one graph.
struct DfgStats {
  int num_ops = 0;
  int num_edges = 0;
  int num_components = 0;
  int critical_path = 0;       ///< L_CP under the given latencies
  int max_fanout = 0;          ///< largest consumer count
  double avg_fanout = 0.0;     ///< num_edges / num_ops (0 if empty)
  std::vector<int> ops_per_level;  ///< histogram over ASAP levels
  int max_width = 0;           ///< widest ASAP level (parallelism cap)
  int num_inputs = 0;          ///< source operations
  int num_outputs = 0;         ///< sink operations
};

/// Computes the summary. Works on any acyclic graph (bound graphs
/// included).
[[nodiscard]] DfgStats compute_stats(const Dfg& dfg, const LatencyTable& lat);

}  // namespace cvb
