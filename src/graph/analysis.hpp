// Standard DFG analyses used throughout the binder: topological order,
// ASAP/ALAP start times, mobility, critical path length, and basic
// statistics (paper Section 2 and footnote 2).
//
// Start-time convention: cycles are 0-based. An operation starting at
// cycle s with latency lat(v) produces its result at the *end* of cycle
// s + lat(v) - 1, i.e. consumers may start at cycle s + lat(v). A
// schedule of latency L uses start cycles 0 .. L-1 and completes after
// cycle L - 1 (so L equals the number of clock cycles, matching the
// paper's schedule latency).
#pragma once

#include <array>
#include <vector>

#include "graph/dfg.hpp"
#include "machine/isa.hpp"

namespace cvb {

/// Per-operation-type latency table, indexed by static_cast<int>(OpType).
using LatencyTable = std::array<int, kNumOpTypes>;

/// All-ones latency table (the paper's Table 1 setting: every operation,
/// including moves, takes one cycle).
[[nodiscard]] LatencyTable unit_latencies();

/// Latency lookup helper.
[[nodiscard]] inline int lat_of(const LatencyTable& lat, OpType op) {
  return lat[static_cast<std::size_t>(op)];
}

/// Topological order of the graph (Kahn). Throws std::logic_error if
/// the graph has a cycle.
[[nodiscard]] std::vector<OpId> topological_order(const Dfg& dfg);

/// ASAP start cycle of every operation.
[[nodiscard]] std::vector<int> asap_starts(const Dfg& dfg,
                                           const LatencyTable& lat);

/// Critical path length L_CP in cycles: the minimum schedule latency
/// with unbounded resources. Zero for an empty graph.
[[nodiscard]] int critical_path_length(const Dfg& dfg,
                                       const LatencyTable& lat);

/// ALAP start cycle of every operation for a target latency L_TG.
/// Throws std::invalid_argument if target_latency < L_CP.
[[nodiscard]] std::vector<int> alap_starts(const Dfg& dfg,
                                           const LatencyTable& lat,
                                           int target_latency);

/// ASAP/ALAP/mobility bundle for one target latency.
struct Timing {
  std::vector<int> asap;      ///< earliest start cycle per op
  std::vector<int> alap;      ///< latest start cycle per op (for target)
  std::vector<int> mobility;  ///< alap - asap, >= 0
  int critical_path = 0;      ///< L_CP of the graph
  int target_latency = 0;     ///< the L_TG the alap values are for
};

/// Computes the full Timing bundle. If target_latency < L_CP it is
/// raised to L_CP (convenient for callers that pass a guess).
[[nodiscard]] Timing compute_timing(const Dfg& dfg, const LatencyTable& lat,
                                    int target_latency);

/// Number of consumers (distinct successor operations) of each op; the
/// third component of the binder's ranking function (Section 3.1.1).
[[nodiscard]] std::vector<int> consumer_counts(const Dfg& dfg);

}  // namespace cvb
