#include "graph/dot.hpp"

#include <algorithm>
#include <ostream>
#include <stdexcept>

namespace cvb {

namespace {

void write_edges(std::ostream& out, const Dfg& dfg) {
  for (OpId v = 0; v < dfg.num_ops(); ++v) {
    for (const OpId s : dfg.succs(v)) {
      out << "  n" << v << " -> n" << s << ";\n";
    }
  }
}

std::string node_label(const Dfg& dfg, OpId v) {
  return dfg.name(v) + "\\n" + std::string(op_type_name(dfg.type(v)));
}

}  // namespace

void write_dot(std::ostream& out, const Dfg& dfg,
               const std::string& graph_name) {
  out << "digraph " << graph_name << " {\n  node [shape=ellipse];\n";
  for (OpId v = 0; v < dfg.num_ops(); ++v) {
    out << "  n" << v << " [label=\"" << node_label(dfg, v) << "\"];\n";
  }
  write_edges(out, dfg);
  out << "}\n";
}

void write_dot_bound(std::ostream& out, const Dfg& dfg,
                     const std::vector<int>& cluster_of,
                     const std::string& graph_name) {
  if (static_cast<int>(cluster_of.size()) != dfg.num_ops()) {
    throw std::invalid_argument(
        "write_dot_bound: cluster_of size mismatches graph");
  }
  const int num_clusters =
      cluster_of.empty()
          ? 0
          : *std::max_element(cluster_of.begin(), cluster_of.end()) + 1;
  out << "digraph " << graph_name << " {\n  node [shape=ellipse];\n";
  for (int c = 0; c < num_clusters; ++c) {
    out << "  subgraph cluster_" << c << " {\n    label=\"cluster " << c
        << "\";\n";
    for (OpId v = 0; v < dfg.num_ops(); ++v) {
      if (cluster_of[static_cast<std::size_t>(v)] == c) {
        out << "    n" << v << " [label=\"" << node_label(dfg, v) << "\"];\n";
      }
    }
    out << "  }\n";
  }
  for (OpId v = 0; v < dfg.num_ops(); ++v) {
    if (cluster_of[static_cast<std::size_t>(v)] < 0) {
      out << "  n" << v << " [label=\"" << node_label(dfg, v)
          << "\", shape=box];\n";
    }
  }
  write_edges(out, dfg);
  out << "}\n";
}

}  // namespace cvb
