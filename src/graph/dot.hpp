// Graphviz DOT export for dataflow graphs, plain or annotated with a
// cluster binding (cluster = color + subgraph). Handy for debugging
// bindings and for the examples' visual output.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "graph/dfg.hpp"

namespace cvb {

/// Writes `dfg` as a DOT digraph named `graph_name`.
void write_dot(std::ostream& out, const Dfg& dfg,
               const std::string& graph_name = "dfg");

/// Writes `dfg` as a DOT digraph with operations grouped into Graphviz
/// clusters by `cluster_of[v]` (use -1 for unbound / bus operations,
/// rendered outside any cluster). `cluster_of` must have one entry per
/// operation; throws std::invalid_argument otherwise.
void write_dot_bound(std::ostream& out, const Dfg& dfg,
                     const std::vector<int>& cluster_of,
                     const std::string& graph_name = "bound_dfg");

}  // namespace cvb
