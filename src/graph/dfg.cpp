#include "graph/dfg.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/analysis.hpp"

namespace cvb {

OpId Dfg::add_op(OpType type, std::string name) {
  const OpId id = num_ops();
  if (name.empty()) {
    name = std::string(op_type_name(type)) + std::to_string(id);
  }
  type_.push_back(type);
  name_.push_back(std::move(name));
  preds_.emplace_back();
  succs_.emplace_back();
  operands_.emplace_back();
  return id;
}

void Dfg::add_edge(OpId from, OpId to) {
  check_id(from);
  check_id(to);
  if (from == to) {
    throw std::invalid_argument("Dfg::add_edge: self loop on op " +
                                std::to_string(from));
  }
  if (has_edge(from, to)) {
    throw std::invalid_argument("Dfg::add_edge: duplicate edge " +
                                std::to_string(from) + " -> " +
                                std::to_string(to));
  }
  succs_[static_cast<std::size_t>(from)].push_back(to);
  preds_[static_cast<std::size_t>(to)].push_back(from);
  operands_[static_cast<std::size_t>(to)].push_back(from);
  ++num_edges_;
}

void Dfg::add_operand(OpId to, OpId producer) {
  check_id(to);
  if (producer == kNoOp) {
    operands_[static_cast<std::size_t>(to)].push_back(kNoOp);
    return;
  }
  check_id(producer);
  if (!has_edge(producer, to)) {
    add_edge(producer, to);  // records the operand as well
    return;
  }
  operands_[static_cast<std::size_t>(to)].push_back(producer);
}

bool Dfg::has_edge(OpId from, OpId to) const {
  check_id(from);
  check_id(to);
  const auto& out = succs_[static_cast<std::size_t>(from)];
  return std::find(out.begin(), out.end(), to) != out.end();
}

std::vector<OpId> Dfg::sources() const {
  std::vector<OpId> result;
  for (OpId v = 0; v < num_ops(); ++v) {
    if (preds(v).empty()) {
      result.push_back(v);
    }
  }
  return result;
}

std::vector<OpId> Dfg::sinks() const {
  std::vector<OpId> result;
  for (OpId v = 0; v < num_ops(); ++v) {
    if (succs(v).empty()) {
      result.push_back(v);
    }
  }
  return result;
}

int Dfg::count_fu_type(FuType fu) const {
  int count = 0;
  for (const OpType t : type_) {
    if (fu_type_of(t) == fu) {
      ++count;
    }
  }
  return count;
}

int Dfg::count_op_type(OpType op) const {
  return static_cast<int>(std::count(type_.begin(), type_.end(), op));
}

void Dfg::validate() const {
  // topological_order throws std::logic_error on a cycle.
  (void)topological_order(*this);
}

Dfg Dfg::reversed() const {
  Dfg rev;
  for (OpId v = 0; v < num_ops(); ++v) {
    rev.add_op(type(v), name(v));
  }
  for (OpId v = 0; v < num_ops(); ++v) {
    for (const OpId s : succs(v)) {
      rev.add_edge(s, v);
    }
  }
  return rev;
}

void Dfg::check_id(OpId v) const {
  if (v < 0 || v >= num_ops()) {
    throw std::invalid_argument("Dfg: invalid op id " + std::to_string(v) +
                                " (have " + std::to_string(num_ops()) +
                                " ops)");
  }
}

}  // namespace cvb
