#include "graph/analysis.hpp"

#include <algorithm>
#include <stdexcept>

namespace cvb {

LatencyTable unit_latencies() {
  LatencyTable lat{};
  lat.fill(1);
  return lat;
}

std::vector<OpId> topological_order(const Dfg& dfg) {
  const int n = dfg.num_ops();
  std::vector<int> pending(static_cast<std::size_t>(n));
  std::vector<OpId> order;
  order.reserve(static_cast<std::size_t>(n));
  std::vector<OpId> frontier;
  for (OpId v = 0; v < n; ++v) {
    pending[static_cast<std::size_t>(v)] =
        static_cast<int>(dfg.preds(v).size());
    if (pending[static_cast<std::size_t>(v)] == 0) {
      frontier.push_back(v);
    }
  }
  while (!frontier.empty()) {
    const OpId v = frontier.back();
    frontier.pop_back();
    order.push_back(v);
    for (const OpId s : dfg.succs(v)) {
      if (--pending[static_cast<std::size_t>(s)] == 0) {
        frontier.push_back(s);
      }
    }
  }
  if (static_cast<int>(order.size()) != n) {
    throw std::logic_error("topological_order: graph has a cycle");
  }
  return order;
}

std::vector<int> asap_starts(const Dfg& dfg, const LatencyTable& lat) {
  std::vector<int> asap(static_cast<std::size_t>(dfg.num_ops()), 0);
  for (const OpId v : topological_order(dfg)) {
    int start = 0;
    for (const OpId p : dfg.preds(v)) {
      start = std::max(start, asap[static_cast<std::size_t>(p)] +
                                  lat_of(lat, dfg.type(p)));
    }
    asap[static_cast<std::size_t>(v)] = start;
  }
  return asap;
}

int critical_path_length(const Dfg& dfg, const LatencyTable& lat) {
  const std::vector<int> asap = asap_starts(dfg, lat);
  int lcp = 0;
  for (OpId v = 0; v < dfg.num_ops(); ++v) {
    lcp = std::max(lcp,
                   asap[static_cast<std::size_t>(v)] + lat_of(lat, dfg.type(v)));
  }
  return lcp;
}

std::vector<int> alap_starts(const Dfg& dfg, const LatencyTable& lat,
                             int target_latency) {
  const int lcp = critical_path_length(dfg, lat);
  if (target_latency < lcp) {
    throw std::invalid_argument(
        "alap_starts: target latency " + std::to_string(target_latency) +
        " below critical path " + std::to_string(lcp));
  }
  // tail(v): longest completion path starting at v (inclusive).
  std::vector<int> tail(static_cast<std::size_t>(dfg.num_ops()), 0);
  const std::vector<OpId> order = topological_order(dfg);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const OpId v = *it;
    int longest_succ = 0;
    for (const OpId s : dfg.succs(v)) {
      longest_succ = std::max(longest_succ, tail[static_cast<std::size_t>(s)]);
    }
    tail[static_cast<std::size_t>(v)] = lat_of(lat, dfg.type(v)) + longest_succ;
  }
  std::vector<int> alap(static_cast<std::size_t>(dfg.num_ops()));
  for (OpId v = 0; v < dfg.num_ops(); ++v) {
    alap[static_cast<std::size_t>(v)] =
        target_latency - tail[static_cast<std::size_t>(v)];
  }
  return alap;
}

Timing compute_timing(const Dfg& dfg, const LatencyTable& lat,
                      int target_latency) {
  Timing t;
  t.critical_path = critical_path_length(dfg, lat);
  t.target_latency = std::max(target_latency, t.critical_path);
  t.asap = asap_starts(dfg, lat);
  t.alap = alap_starts(dfg, lat, t.target_latency);
  t.mobility.resize(t.asap.size());
  for (std::size_t i = 0; i < t.asap.size(); ++i) {
    t.mobility[i] = t.alap[i] - t.asap[i];
  }
  return t;
}

std::vector<int> consumer_counts(const Dfg& dfg) {
  std::vector<int> counts(static_cast<std::size_t>(dfg.num_ops()));
  for (OpId v = 0; v < dfg.num_ops(); ++v) {
    counts[static_cast<std::size_t>(v)] =
        static_cast<int>(dfg.succs(v).size());
  }
  return counts;
}

}  // namespace cvb
