#include "graph/components.hpp"

#include <algorithm>

namespace cvb {

std::vector<int> component_labels(const Dfg& dfg) {
  const int n = dfg.num_ops();
  std::vector<int> label(static_cast<std::size_t>(n), -1);
  int next_label = 0;
  std::vector<OpId> stack;
  for (OpId seed = 0; seed < n; ++seed) {
    if (label[static_cast<std::size_t>(seed)] != -1) {
      continue;
    }
    label[static_cast<std::size_t>(seed)] = next_label;
    stack.push_back(seed);
    while (!stack.empty()) {
      const OpId v = stack.back();
      stack.pop_back();
      const auto visit = [&](OpId u) {
        if (label[static_cast<std::size_t>(u)] == -1) {
          label[static_cast<std::size_t>(u)] = next_label;
          stack.push_back(u);
        }
      };
      for (const OpId p : dfg.preds(v)) {
        visit(p);
      }
      for (const OpId s : dfg.succs(v)) {
        visit(s);
      }
    }
    ++next_label;
  }
  return label;
}

int num_components(const Dfg& dfg) {
  const std::vector<int> labels = component_labels(dfg);
  if (labels.empty()) {
    return 0;
  }
  return *std::max_element(labels.begin(), labels.end()) + 1;
}

}  // namespace cvb
