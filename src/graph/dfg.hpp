// Dataflow graph (DFG) core: a DAG of typed operations with data
// dependency edges, representing one basic block (paper Section 2,
// "Dataflow model").
//
// A DFG appears in two forms:
//  * the *original* graph, as produced by a front end or a kernel
//    generator in src/kernels/; and
//  * the *bound* graph, which additionally contains `OpType::kMove`
//    data-transfer operations inserted between operations bound to
//    different clusters (see src/bind/bound_dfg.hpp).
// Both forms are represented by this same class.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "machine/isa.hpp"

namespace cvb {

/// Operation identifier: dense index into a Dfg, 0..num_ops()-1.
using OpId = int;

/// Sentinel for "no operation".
inline constexpr OpId kNoOp = -1;

/// A directed acyclic graph of operations.
///
/// Invariants (checked where cheap, and by validate()):
///  * edges connect valid operation ids, no self loops, no duplicates;
///  * the graph is acyclic (validate() verifies; mutation does not).
class Dfg {
 public:
  /// Adds an operation of the given type; returns its id. If `name` is
  /// empty a name of the form "<mnemonic><id>" is generated.
  OpId add_op(OpType type, std::string name = {});

  /// Adds the data-dependency edge from -> to, and records `from` as
  /// the next operand of `to`.
  /// Throws std::invalid_argument on bad ids, self loops, duplicates.
  void add_edge(OpId from, OpId to);

  /// Appends an operand to `to`'s ordered operand list: either the
  /// producing operation, or kNoOp for an external (basic-block
  /// live-in) value. Unlike add_edge, repeating the same producer is
  /// allowed (e.g. x * x) — the dependency edge is created only once.
  void add_operand(OpId to, OpId producer);

  /// Ordered operand list of `v` (kNoOp entries are external live-ins).
  /// Ops built through raw add_edge calls have their graph operands
  /// recorded in edge order; external operands are only known when the
  /// graph was built via DfgBuilder / add_operand.
  [[nodiscard]] std::span<const OpId> operands(OpId v) const {
    check_id(v);
    return operands_[static_cast<std::size_t>(v)];
  }

  /// Number of operations (the paper's N_V when called on an original
  /// graph).
  [[nodiscard]] int num_ops() const { return static_cast<int>(type_.size()); }

  /// Number of data-dependency edges.
  [[nodiscard]] int num_edges() const { return num_edges_; }

  /// Operation type of `v`.
  [[nodiscard]] OpType type(OpId v) const {
    check_id(v);
    return type_[static_cast<std::size_t>(v)];
  }

  /// All operation types, indexed by op id (contiguous view).
  [[nodiscard]] std::span<const OpType> types() const { return type_; }

  /// Human-readable name of `v`.
  [[nodiscard]] const std::string& name(OpId v) const {
    check_id(v);
    return name_[static_cast<std::size_t>(v)];
  }

  /// Direct predecessors (operand producers) of `v`.
  [[nodiscard]] std::span<const OpId> preds(OpId v) const {
    check_id(v);
    return preds_[static_cast<std::size_t>(v)];
  }

  /// Direct successors (result consumers) of `v`.
  [[nodiscard]] std::span<const OpId> succs(OpId v) const {
    check_id(v);
    return succs_[static_cast<std::size_t>(v)];
  }

  /// True if the edge from -> to exists.
  [[nodiscard]] bool has_edge(OpId from, OpId to) const;

  /// True if `v` is a valid operation id.
  [[nodiscard]] bool is_valid(OpId v) const {
    return v >= 0 && v < num_ops();
  }

  /// Operations with no predecessors (graph inputs).
  [[nodiscard]] std::vector<OpId> sources() const;

  /// Operations with no successors (graph outputs).
  [[nodiscard]] std::vector<OpId> sinks() const;

  /// Count of operations whose FU type is `fu`.
  [[nodiscard]] int count_fu_type(FuType fu) const;

  /// Count of operations of operation type `op`.
  [[nodiscard]] int count_op_type(OpType op) const;

  /// Full structural validation: acyclicity (edge-level invariants are
  /// maintained by add_edge). Throws std::logic_error on violation.
  void validate() const;

  /// The graph with every edge direction flipped. Used by the
  /// reverse-order variant of the initial binder (paper Section 3.1.4).
  [[nodiscard]] Dfg reversed() const;

 private:
  void check_id(OpId v) const;

  std::vector<OpType> type_;
  std::vector<std::string> name_;
  std::vector<std::vector<OpId>> preds_;
  std::vector<std::vector<OpId>> succs_;
  std::vector<std::vector<OpId>> operands_;
  int num_edges_ = 0;
};

}  // namespace cvb
