#include "graph/builder.hpp"

namespace cvb {

Value DfgBuilder::op1(OpType type, Value a, std::string name) {
  const OpId id = dfg_.add_op(type, std::move(name));
  connect(a, id);
  return Value{id};
}

Value DfgBuilder::op2(OpType type, Value a, Value b, std::string name) {
  const OpId id = dfg_.add_op(type, std::move(name));
  connect(a, id);
  connect(b, id);
  return Value{id};
}

void DfgBuilder::connect(Value from, OpId to) {
  // Records the operand slot (externals as kNoOp); dependency edges are
  // deduplicated inside add_operand, so x * x yields one edge but two
  // operand entries.
  dfg_.add_operand(to, from.producer);
}

}  // namespace cvb
