#include "baselines/annealing.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>
#include <vector>

#include "bind/bound_dfg.hpp"
#include "sched/list_scheduler.hpp"
#include "support/rng.hpp"
#include "support/stopwatch.hpp"

namespace cvb {

BindResult annealing_binding(const Dfg& dfg, const Datapath& dp,
                             const AnnealingParams& params,
                             AnnealingInfo* info) {
  if (dfg.num_ops() == 0) {
    throw std::invalid_argument("annealing_binding: empty DFG");
  }
  Stopwatch watch;
  Rng rng(params.seed);

  // Target sets up front; also validates feasibility.
  std::vector<std::vector<ClusterId>> targets;
  targets.reserve(static_cast<std::size_t>(dfg.num_ops()));
  for (OpId v = 0; v < dfg.num_ops(); ++v) {
    targets.push_back(dp.target_set(dfg.type(v)));
    if (targets.back().empty()) {
      throw std::invalid_argument(
          "annealing_binding: no cluster can execute " + dfg.name(v));
    }
  }
  const auto random_cluster = [&](OpId v) {
    const auto& ts = targets[static_cast<std::size_t>(v)];
    return ts[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(ts.size()) - 1))];
  };

  // Random initial binding (Leupers' starting point).
  Binding current(static_cast<std::size_t>(dfg.num_ops()));
  for (OpId v = 0; v < dfg.num_ops(); ++v) {
    current[static_cast<std::size_t>(v)] = random_cluster(v);
  }

  const auto cost = [&](const Binding& b) {
    const BoundDfg bound = build_bound_dfg(dfg, b, dp);
    const Schedule sched = list_schedule(bound, dp);
    // Latency dominates; the small move term breaks ties the way the
    // paper's Q_M does.
    return std::make_pair(sched.latency, sched.num_moves);
  };

  auto current_cost = cost(current);
  Binding best = current;
  auto best_cost = current_cost;

  const int moves_per_stage = params.moves_per_stage > 0
                                  ? params.moves_per_stage
                                  : 8 * dfg.num_ops();
  long tried = 0;
  long accepted = 0;

  for (double temp = params.initial_temp; temp > params.final_temp;
       temp *= params.cooling) {
    for (int step = 0; step < moves_per_stage; ++step) {
      const OpId v = rng.uniform_int(0, dfg.num_ops() - 1);
      const ClusterId old_cluster = current[static_cast<std::size_t>(v)];
      const ClusterId new_cluster = random_cluster(v);
      if (new_cluster == old_cluster) {
        continue;
      }
      ++tried;
      current[static_cast<std::size_t>(v)] = new_cluster;
      const auto new_cost = cost(current);
      const double delta =
          (new_cost.first - current_cost.first) +
          0.01 * (new_cost.second - current_cost.second);
      if (delta <= 0.0 || rng.uniform01() < std::exp(-delta / temp)) {
        current_cost = new_cost;
        ++accepted;
        if (current_cost < best_cost) {
          best_cost = current_cost;
          best = current;
        }
      } else {
        current[static_cast<std::size_t>(v)] = old_cluster;
      }
    }
  }

  BindResult result = evaluate_binding(dfg, dp, std::move(best));
  if (info != nullptr) {
    info->moves_tried = tried;
    info->moves_accepted = accepted;
    info->ms = watch.elapsed_ms();
  }
  return result;
}

}  // namespace cvb
