// Min-cut / load-balance binder in the style of Capitanio, Dutt &
// Nicolau (MICRO-25), the second related-work baseline in the paper's
// Section 4: treat binding as network partitioning — minimize the
// number of cross-cluster edges (the cut set) subject to balanced
// cluster sizes — on the theory that limiting communication limits the
// schedule-length increase.
//
// As the paper points out, the approach (a) requires homogeneous
// clusters (we enforce that, matching the original's documented
// limitation), and (b) its balance constraint does not actually
// guarantee latency minimization — the baseline-comparison bench
// demonstrates both.
#pragma once

#include "bind/binding.hpp"
#include "bind/driver.hpp"
#include "graph/dfg.hpp"
#include "machine/datapath.hpp"

namespace cvb {

/// Partitioner knobs.
struct MinCutParams {
  /// Allowed deviation of a cluster's op count from the perfect
  /// balance, as a fraction (0.15 = +-15%, at least +-1 op).
  double balance_tolerance = 0.15;
  /// Cap on refinement passes.
  int max_passes = 64;
};

/// Diagnostics.
struct MinCutInfo {
  int initial_cut = 0;
  int final_cut = 0;
  int passes = 0;
  double ms = 0.0;
};

/// Runs the min-cut partitioning binder. Throws std::invalid_argument
/// if the datapath's clusters are not homogeneous (identical FU
/// counts), if the graph is empty, or if some op type is unsupported.
[[nodiscard]] BindResult mincut_binding(const Dfg& dfg, const Datapath& dp,
                                        const MinCutParams& params = {},
                                        MinCutInfo* info = nullptr);

/// True if every cluster of `dp` has identical FU counts (the
/// homogeneity precondition of this baseline).
[[nodiscard]] bool is_homogeneous(const Datapath& dp);

}  // namespace cvb
