// Simulated-annealing binder in the style of Leupers (PACT 2000),
// the first related-work baseline in the paper's Section 4: start from
// a random binding and improve it by simulated annealing, with a
// detailed schedule's latency as the cost function.
//
// Faithfulness notes: Leupers targeted the two-cluster TI 'C6201 and
// used its production scheduler; we anneal over arbitrary cluster
// counts with our list scheduler (the same one every other algorithm
// here uses), and break cost ties with the move count. The paper
// remarks that SA run time "is likely to grow significantly" with more
// clusters — the baseline-comparison bench shows exactly that.
#pragma once

#include <cstdint>

#include "bind/binding.hpp"
#include "bind/driver.hpp"
#include "graph/dfg.hpp"
#include "machine/datapath.hpp"

namespace cvb {

/// Annealing schedule parameters.
struct AnnealingParams {
  std::uint64_t seed = 1;        ///< deterministic run per seed
  double initial_temp = 4.0;     ///< in cycles of latency
  double final_temp = 0.05;
  double cooling = 0.9;          ///< geometric factor per stage
  int moves_per_stage = 0;       ///< 0 -> 8 * N_V per temperature stage
};

/// Diagnostics.
struct AnnealingInfo {
  long moves_tried = 0;
  long moves_accepted = 0;
  double ms = 0.0;
};

/// Runs the SA binder; the returned result is the best binding seen
/// during the whole anneal (not the final state). Throws
/// std::invalid_argument for empty/unbindable graphs.
[[nodiscard]] BindResult annealing_binding(const Dfg& dfg, const Datapath& dp,
                                           const AnnealingParams& params = {},
                                           AnnealingInfo* info = nullptr);

}  // namespace cvb
