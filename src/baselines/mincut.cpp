#include "baselines/mincut.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>
#include <vector>

#include "graph/analysis.hpp"
#include "graph/components.hpp"
#include "support/stopwatch.hpp"

namespace cvb {

bool is_homogeneous(const Datapath& dp) {
  for (ClusterId c = 1; c < dp.num_clusters(); ++c) {
    for (int ti = 0; ti < kNumClusterFuTypes; ++ti) {
      const FuType t = static_cast<FuType>(ti);
      if (dp.fu_count(c, t) != dp.fu_count(0, t)) {
        return false;
      }
    }
  }
  return true;
}

namespace {

/// Cut delta of moving op v to cluster `to` under `binding`.
int cut_delta(const Dfg& dfg, const Binding& binding, OpId v, ClusterId to) {
  const ClusterId from = binding[static_cast<std::size_t>(v)];
  int delta = 0;
  const auto edge = [&](OpId u) {
    const ClusterId cu = binding[static_cast<std::size_t>(u)];
    if (cu == from) {
      ++delta;  // previously local edge becomes cut
    }
    if (cu == to) {
      --delta;  // previously cut edge becomes local
    }
  };
  for (const OpId u : dfg.preds(v)) {
    edge(u);
  }
  for (const OpId u : dfg.succs(v)) {
    edge(u);
  }
  return delta;
}

}  // namespace

BindResult mincut_binding(const Dfg& dfg, const Datapath& dp,
                          const MinCutParams& params, MinCutInfo* info) {
  if (dfg.num_ops() == 0) {
    throw std::invalid_argument("mincut_binding: empty DFG");
  }
  if (!is_homogeneous(dp)) {
    throw std::invalid_argument(
        "mincut_binding: requires homogeneous clusters (the documented "
        "limitation of the Capitanio-style partitioner); got " +
        dp.to_string());
  }
  for (OpId v = 0; v < dfg.num_ops(); ++v) {
    if (dp.target_set(dfg.type(v)).empty()) {
      throw std::invalid_argument("mincut_binding: no cluster can execute " +
                                  dfg.name(v));
    }
  }
  Stopwatch watch;
  const int k = dp.num_clusters();

  // Initial partition: contiguous slices of a component-major
  // topological order — keeps neighbourhoods (and whole connected
  // components) together, the usual partitioning warm start.
  Binding binding(static_cast<std::size_t>(dfg.num_ops()), 0);
  std::vector<OpId> order = topological_order(dfg);
  const std::vector<int> component = component_labels(dfg);
  std::vector<int> topo_pos(static_cast<std::size_t>(dfg.num_ops()));
  for (std::size_t i = 0; i < order.size(); ++i) {
    topo_pos[static_cast<std::size_t>(order[i])] = static_cast<int>(i);
  }
  std::sort(order.begin(), order.end(), [&](OpId a, OpId b) {
    return std::make_pair(component[static_cast<std::size_t>(a)],
                          topo_pos[static_cast<std::size_t>(a)]) <
           std::make_pair(component[static_cast<std::size_t>(b)],
                          topo_pos[static_cast<std::size_t>(b)]);
  });
  const int slice = (dfg.num_ops() + k - 1) / k;
  for (std::size_t i = 0; i < order.size(); ++i) {
    binding[static_cast<std::size_t>(order[i])] =
        std::min<int>(static_cast<int>(i) / slice, k - 1);
  }

  std::vector<int> size(static_cast<std::size_t>(k), 0);
  for (const ClusterId c : binding) {
    ++size[static_cast<std::size_t>(c)];
  }
  const double avg = static_cast<double>(dfg.num_ops()) / k;
  const int tolerance =
      std::max(1, static_cast<int>(std::ceil(avg * params.balance_tolerance)));
  const auto balanced_after = [&](ClusterId from, ClusterId to) {
    return size[static_cast<std::size_t>(to)] + 1 <=
               static_cast<int>(std::floor(avg)) + tolerance &&
           size[static_cast<std::size_t>(from)] - 1 >=
               static_cast<int>(std::ceil(avg)) - tolerance;
  };

  const int initial_cut = count_cut_edges(dfg, binding);
  int passes = 0;
  // Greedy KL-flavored refinement: per pass, apply every
  // cut-reducing balanced single move (best-first); stop when a full
  // pass makes no progress.
  for (; passes < params.max_passes; ++passes) {
    bool any = false;
    for (OpId v = 0; v < dfg.num_ops(); ++v) {
      const ClusterId from = binding[static_cast<std::size_t>(v)];
      int best_delta = 0;
      ClusterId best_to = kNoCluster;
      for (ClusterId to = 0; to < k; ++to) {
        if (to == from || !balanced_after(from, to)) {
          continue;
        }
        const int delta = cut_delta(dfg, binding, v, to);
        if (delta < best_delta) {
          best_delta = delta;
          best_to = to;
        }
      }
      if (best_to != kNoCluster) {
        binding[static_cast<std::size_t>(v)] = best_to;
        --size[static_cast<std::size_t>(from)];
        ++size[static_cast<std::size_t>(best_to)];
        any = true;
      }
    }
    if (!any) {
      break;
    }
  }

  const int final_cut = count_cut_edges(dfg, binding);
  BindResult result = evaluate_binding(dfg, dp, std::move(binding));
  if (info != nullptr) {
    info->initial_cut = initial_cut;
    info->final_cut = final_cut;
    info->passes = passes;
    info->ms = watch.elapsed_ms();
  }
  return result;
}

}  // namespace cvb
