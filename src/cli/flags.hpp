// Shared command-line parsing for the three front-ends (cvbind,
// cvserve, cvpipe). Each tool used to hand-roll the same loop — flag
// matching, "--x needs a value", unknown-option rejection — with
// slightly drifting error text. FlagSet is that loop, once: tools
// declare their flags with callbacks and get identical diagnostics.
//
//   FlagSet flags;
//   flags.on_flag("--help", [&] { opts.help = true; });
//   flags.on_value("--threads", [&](const std::string& v) { ... });
//   flags.on_positional([&](const std::string& v) { ... });
//   flags.parse(args);  // throws std::invalid_argument on bad input
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace cvb {

/// A declarative flag table. Parsing errors (unknown options, missing
/// values, handler-thrown validation failures) surface as
/// std::invalid_argument with the historical message texts:
///   "<flag> needs a value"
///   "unknown option '<arg>'"
///   "unexpected argument '<arg>'" (from positional handlers)
class FlagSet {
 public:
  using ValueHandler = std::function<void(const std::string&)>;
  using BoolHandler = std::function<void()>;

  /// Registers a flag that consumes the following argument. Register
  /// aliases (e.g. "-h" for "--help") as separate entries.
  void on_value(const std::string& name, ValueHandler handler);

  /// Registers a flag with no value.
  void on_flag(const std::string& name, BoolHandler handler);

  /// Registers the handler for non-flag arguments. Without one, every
  /// unmatched argument — dashed or not — is an unknown option (the
  /// cvserve behaviour); with one, only dashed arguments are.
  void on_positional(ValueHandler handler);

  /// Parses `args` front to back, invoking handlers in order. Throws
  /// std::invalid_argument on the first error.
  void parse(const std::vector<std::string>& args) const;

 private:
  std::map<std::string, ValueHandler> value_flags_;
  std::map<std::string, BoolHandler> bool_flags_;
  ValueHandler positional_;
};

/// Parses a non-negative integer flag value and enforces a lower
/// bound, throwing "<flag> must be >= <min>" below it.
[[nodiscard]] int parse_int_at_least(const std::string& text, int min,
                                     const std::string& flag);

/// Arms the global fault injector from repeated --inject specs exactly
/// the way all tools do it: warn on a build without
/// -DCVB_FAULT_INJECTION=ON ("<tool>: warning: --inject ignored;
/// rebuild with -DCVB_FAULT_INJECTION=ON"), disarm previous sites, set
/// the seed, then arm each spec (throws std::invalid_argument on a
/// malformed spec). No-op when `specs` is empty.
void arm_injection_flags(const char* tool,
                         const std::vector<std::string>& specs,
                         std::uint64_t seed, std::ostream& err);

}  // namespace cvb
