#include "cli/cli.hpp"

#include <fstream>
#include <ostream>
#include <stdexcept>

#include "api/api.hpp"
#include "bind/lower_bounds.hpp"
#include "bind/strategy.hpp"
#include "bind/report.hpp"
#include "cli/flags.hpp"
#include "graph/dot.hpp"
#include "io/dfg_text.hpp"
#include "kernels/kernels.hpp"
#include "machine/machine_file.hpp"
#include "machine/parser.hpp"
#include "regalloc/regalloc.hpp"
#include "sched/emit.hpp"
#include "sched/gantt.hpp"
#include "sched/reg_pressure.hpp"
#include "service/status.hpp"
#include "sim/executor.hpp"
#include "support/fault.hpp"
#include "support/strings.hpp"
#include "support/trace.hpp"

namespace cvb {

std::string cli_usage() {
  return R"(usage: cvbind [options] <kernel-name | file.dfg>

Binds a dataflow graph to a clustered VLIW datapath and prints the
result. Kernel names are the built-in paper benchmarks (see
--list-kernels); anything ending in .dfg is parsed as a DFG text file.

options:
  --datapath SPEC     cluster config, e.g. "[2,1|1,1]" (default [1,1|1,1])
  --buses N           number of buses N_B (default 2)
  --move-latency N    lat(move) in cycles (default 1)
  --topology SPEC     interconnect fabric: single_bus | ring | p2p |
                      mesh:RxC | segmented_bus:K (default single_bus;
                      every link gets --buses slots and inherits
                      lat(move); not combinable with --machine, which
                      carries its own topology/link lines)
  --machine FILE      load a .machine description instead (overrides
                      --datapath/--buses/--move-latency)
  --algorithm A       b-iter | b-init | pcc | sa | mincut | exhaustive
                      (default b-iter)
  --portfolio         race the default strategy set (b-iter, b-init,
                      pcc, sa) concurrently with incumbent exchange;
                      the best result wins (see --stats for the
                      per-strategy attribution)
  --strategies LIST   race an explicit comma list of strategies, each
                      name[:seed], e.g. "b-iter,sa:7,sa:8,mincut"
                      (implies portfolio mode; a one-entry list is
                      bit-identical to the direct --algorithm path)
  --effort E          fast | balanced | max: binder effort preset for
                      b-iter/b-init (default balanced)
  --output LIST       comma list of: summary, report, gantt, asm,
                      pressure, regalloc, check, dot, dfg
                      (default summary)
  --seed N            random seed for --algorithm sa (default 1)
  --threads N         candidate-evaluation threads for b-iter/pcc
                      (default 1 = serial; results are identical for
                      any thread count)
  --deadline-ms N     anytime bound for b-iter/b-init/pcc and portfolio
                      runs: return the best binding found within N ms
                      (0 = expire immediately, exercising the fastest
                      path; portfolio baselines run to completion and
                      are ignored when they finish late)
  --stats             print evaluation-engine statistics (candidates,
                      schedule-cache hits/misses, wall time)
  --stats-json FILE   write those statistics as JSON to FILE
                      ('-' = stdout)
  --trace-out FILE    write a Chrome trace_event JSON profile of this
                      run to FILE ('-' = stdout); open it in Perfetto
                      or chrome://tracing (see FORMATS.md)
  --inject SPEC       arm a fault-injection site for this run, as
                      site:rate[:class[:hang_ms]] (repeatable), e.g.
                      "eval.task:0.1:transient" — for local repro of
                      chaos-found failures; requires a build with
                      -DCVB_FAULT_INJECTION=ON (warns otherwise)
  --inject-seed N     seed of the deterministic injection stream
  --list-kernels      print the built-in kernel names and exit
  --help              this text

exit codes: 0 ok; 1 invalid input (usage/parse errors); 2 internal
error (including injected faults); 3 deadline exceeded (the printed
result is the verified best-so-far binding).
)";
}

namespace {

struct CliOptions {
  std::string source;
  std::string datapath = "[1,1|1,1]";
  std::string machine_file;
  std::string topology;
  int buses = 2;
  int move_latency = 1;
  std::string algorithm = "b-iter";
  bool portfolio = false;
  std::string strategies;
  std::string effort = "balanced";
  std::vector<std::string> outputs = {"summary"};
  std::uint64_t seed = 1;
  int threads = 1;
  int deadline_ms = -1;  // -1 = no deadline; 0 = already expired
  bool stats = false;
  std::string stats_json;
  std::string trace_out;
  std::vector<std::string> injects;
  std::uint64_t inject_seed = 0x5eedf417ULL;
  bool list_kernels = false;
  bool help = false;
};


CliOptions parse_args(const std::vector<std::string>& args) {
  CliOptions opts;
  FlagSet flags;
  flags.on_flag("--help", [&] { opts.help = true; });
  flags.on_flag("-h", [&] { opts.help = true; });
  flags.on_flag("--list-kernels", [&] { opts.list_kernels = true; });
  flags.on_flag("--stats", [&] { opts.stats = true; });
  flags.on_value("--datapath",
                 [&](const std::string& v) { opts.datapath = v; });
  flags.on_value("--machine",
                 [&](const std::string& v) { opts.machine_file = v; });
  flags.on_value("--buses", [&](const std::string& v) {
    opts.buses = parse_int_at_least(v, 1, "--buses");
  });
  flags.on_value("--move-latency", [&](const std::string& v) {
    opts.move_latency = parse_int_at_least(v, 1, "--move-latency");
  });
  flags.on_value("--topology",
                 [&](const std::string& v) { opts.topology = v; });
  flags.on_value("--algorithm",
                 [&](const std::string& v) { opts.algorithm = v; });
  flags.on_flag("--portfolio", [&] { opts.portfolio = true; });
  flags.on_value("--strategies",
                 [&](const std::string& v) { opts.strategies = v; });
  flags.on_value("--effort", [&](const std::string& v) { opts.effort = v; });
  flags.on_value("--output",
                 [&](const std::string& v) { opts.outputs = split(v, ','); });
  flags.on_value("--seed", [&](const std::string& v) {
    opts.seed = static_cast<std::uint64_t>(parse_nonnegative_int(v));
  });
  flags.on_value("--threads", [&](const std::string& v) {
    opts.threads = parse_int_at_least(v, 1, "--threads");
  });
  flags.on_value("--deadline-ms", [&](const std::string& v) {
    opts.deadline_ms = parse_nonnegative_int(v);
  });
  flags.on_value("--stats-json",
                 [&](const std::string& v) { opts.stats_json = v; });
  flags.on_value("--trace-out",
                 [&](const std::string& v) { opts.trace_out = v; });
  flags.on_value("--inject",
                 [&](const std::string& v) { opts.injects.push_back(v); });
  flags.on_value("--inject-seed", [&](const std::string& v) {
    opts.inject_seed = static_cast<std::uint64_t>(parse_nonnegative_int(v));
  });
  flags.on_positional([&](const std::string& arg) {
    if (!opts.source.empty()) {
      throw std::invalid_argument("unexpected argument '" + arg + "'");
    }
    opts.source = arg;
  });
  flags.parse(args);
  return opts;
}

Dfg load_source(const std::string& source, std::string& name) {
  if (source.size() > 4 && source.substr(source.size() - 4) == ".dfg") {
    std::ifstream file(source);
    if (!file) {
      throw std::invalid_argument("cannot open '" + source + "'");
    }
    ParsedDfg parsed = parse_dfg_text(file);
    name = parsed.name;
    return std::move(parsed.dfg);
  }
  name = source;
  return benchmark_by_name(source).dfg;
}

/// Writes the drained spans as one Chrome trace_event JSON document to
/// `path` ('-' = stdout).
void write_trace_output(const std::string& path, Tracer& tracer,
                        std::ostream& out) {
  if (path == "-") {
    write_chrome_trace(out, tracer.drain(), tracer.dropped());
    return;
  }
  std::ofstream file(path);
  if (!file) {
    throw std::invalid_argument("cannot write '" + path + "'");
  }
  write_chrome_trace(file, tracer.drain(), tracer.dropped());
}

}  // namespace

int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err) {
  CliOptions opts;
  try {
    opts = parse_args(args);
  } catch (const std::invalid_argument& e) {
    err << "cvbind: " << e.what() << "\n\n" << cli_usage();
    return 1;
  }
  if (opts.help) {
    out << cli_usage();
    return 0;
  }
  if (opts.list_kernels) {
    for (const BenchmarkKernel& kernel : benchmark_suite()) {
      out << kernel.name << "  (Nv=" << kernel.dfg.num_ops() << ")\n";
    }
    return 0;
  }
  if (opts.source.empty()) {
    err << "cvbind: no kernel or .dfg file given\n\n" << cli_usage();
    return 1;
  }

  try {
    arm_injection_flags("cvbind", opts.injects, opts.inject_seed, err);

    BindRequest request;
    request.dfg = load_source(opts.source, request.id);
    if (opts.machine_file.empty()) {
      request.datapath =
          parse_datapath(opts.datapath, opts.buses, opts.move_latency);
      if (!opts.topology.empty()) {
        request.datapath = request.datapath.with_topology(parse_topology_spec(
            opts.topology, request.datapath.num_clusters(), opts.buses));
      }
    } else {
      if (!opts.topology.empty()) {
        throw std::invalid_argument(
            "--topology cannot be combined with --machine (put topology/link "
            "lines in the machine file)");
      }
      std::ifstream file(opts.machine_file);
      if (!file) {
        throw std::invalid_argument("cannot open '" + opts.machine_file +
                                    "'");
      }
      request.datapath = parse_machine_file(file).datapath;
    }
    request.strategy.kind = strategy_kind_from_string(opts.algorithm);
    request.strategy.effort = bind_effort_from_string(opts.effort);
    request.strategy.seed = opts.seed;
    request.num_threads = opts.threads;
    if (!opts.strategies.empty()) {
      request.portfolio = parse_strategy_csv(
          opts.strategies, request.strategy.effort, opts.seed);
    } else if (opts.portfolio) {
      request.portfolio =
          default_portfolio(request.strategy.effort, opts.seed);
    }

    // Portfolio runs are anytime regardless of members: baselines run
    // to completion and are simply ignored when they finish late.
    const bool anytime = !request.portfolio.empty() ||
                         strategy_is_anytime(request.strategy.kind);
    if (opts.deadline_ms >= 0 && !anytime) {
      throw std::invalid_argument(
          "--deadline-ms is only supported for b-iter/b-init/pcc "
          "(or race the baseline in a --portfolio)");
    }

    Tracer tracer;
    RequestContext ctx;
    if (opts.deadline_ms >= 0) {
      ctx.cancel = CancelToken::after_ms(opts.deadline_ms);
    }
    if (!opts.trace_out.empty()) {
      ctx.tracer = &tracer;
    }

    const BindResponse response = run_bind_request(request, ctx);
    if (!opts.trace_out.empty()) {
      write_trace_output(opts.trace_out, tracer, out);
    }
    if (response.status == BindStatus::kInvalidRequest) {
      err << "cvbind: " << response.error << '\n';
      return exit_code_for(response.status);
    }
    if (response.status == BindStatus::kInternalError) {
      if (response.injected) {
        // Injected faults are internal errors by construction, not bad
        // input: keep the exit code honest for chaos-repro scripts.
        err << "cvbind: injected fault: " << response.error << '\n';
      } else {
        err << "cvbind: internal error, " << response.error << '\n';
      }
      return exit_code_for(response.status);
    }

    const Dfg& dfg = request.dfg;
    const Datapath& dp = request.datapath;
    for (const std::string& output : opts.outputs) {
      if (output == "summary") {
        const LatencyLowerBound lb = latency_lower_bound(dfg, dp);
        const std::string topo_label =
            dp.topology().is_default_single_bus(dp.num_buses())
                ? std::string()
                : ", " + dp.topology().to_string();
        out << request.id << " on " << dp.to_string() << " ("
            << dp.num_buses() << " buses, lat(move)=" << dp.move_latency()
            << topo_label << ", "
            << strategy_set_label(request.strategy, request.portfolio)
            << "): L=" << response.schedule.latency
            << " cycles, M=" << response.schedule.num_moves
            << " transfers, lower bound " << lb.combined << '\n';
      } else if (output == "report") {
        write_binding_report(
            out, make_binding_report(response.bound, dp, response.schedule),
            dp);
      } else if (output == "gantt") {
        write_gantt(out, response.bound, dp, response.schedule);
      } else if (output == "asm") {
        emit_vliw_asm(out, response.bound, dp, response.schedule);
      } else if (output == "pressure") {
        const RegPressure p =
            compute_reg_pressure(response.bound, dp, response.schedule);
        out << "register pressure: centralized " << p.centralized_max_live;
        for (ClusterId c = 0; c < dp.num_clusters(); ++c) {
          out << ", c" << c << " " << p.max_live[static_cast<std::size_t>(c)];
        }
        out << '\n';
      } else if (output == "regalloc") {
        const RegAllocation alloc =
            allocate_registers(response.bound, dp, response.schedule);
        if (const std::string aerr = verify_allocation(
                response.bound, dp, response.schedule, alloc);
            !aerr.empty()) {
          err << "cvbind: internal error, bad allocation: " << aerr << '\n';
          return exit_code_for(BindStatus::kInternalError);
        }
        out << "register files:";
        for (ClusterId c = 0; c < dp.num_clusters(); ++c) {
          out << " c" << c << "="
              << alloc.regs_used[static_cast<std::size_t>(c)];
        }
        out << " (worst " << alloc.worst_file() << ")\n";
      } else if (output == "check") {
        const std::vector<std::int64_t> inputs = {3,  -7, 11, 2,  -1, 5,
                                                  13, -4, 9,  6,  -8, 1};
        const std::string cerr_msg = check_semantics(
            dfg, response.bound, dp, response.schedule, inputs);
        if (!cerr_msg.empty()) {
          err << "cvbind: semantic check FAILED: " << cerr_msg << '\n';
          return exit_code_for(BindStatus::kInternalError);
        }
        out << "semantic check: scheduled code computes the original "
               "dataflow values\n";
      } else if (output == "dot") {
        std::vector<int> place(response.bound.place.begin(),
                               response.bound.place.end());
        write_dot_bound(out, response.bound.graph, place, "bound");
      } else if (output == "dfg") {
        write_dfg_text(out, dfg, request.id);
      } else {
        err << "cvbind: unknown output '" << output << "'\n";
        return 1;
      }
    }
    if (opts.stats) {
      const EvalStats& stats = response.eval_stats;
      const double hit_pct =
          stats.candidates > 0
              ? 100.0 * static_cast<double>(stats.cache_hits) /
                    static_cast<double>(stats.candidates)
              : 0.0;
      out << "eval stats: " << stats.candidates << " candidates in "
          << stats.batches << " batches on " << response.eval_threads
          << (response.eval_threads == 1 ? " thread" : " threads") << ", "
          << format_sig(stats.eval_ms, 3) << " ms\n"
          << "eval cache: " << stats.cache_hits << " hits ("
          << format_sig(hit_pct, 3) << "%, " << stats.l1_hits << " via L1), "
          << stats.batch_dedup << " batch-deduped, " << stats.cache_misses
          << " misses, " << stats.cache_evictions << " evictions, "
          << stats.cache_collisions << " collisions\n"
          << "eval phases: improver=" << stats.improver_candidates
          << " pcc=" << stats.pcc_candidates << "\n";
      if (response.portfolio.ran()) {
        const PortfolioStats& ps = response.portfolio;
        out << "portfolio: winner="
            << (ps.winner >= 0
                    ? ps.strategies[static_cast<std::size_t>(ps.winner)]
                          .spec.name()
                    : std::string("none"))
            << ", rounds=" << ps.rounds << ", exchanges=" << ps.exchanges
            << ", " << format_sig(ps.ms, 3) << " ms\n";
        for (const StrategyAttribution& sa : ps.strategies) {
          out << "  " << sa.spec.name() << ": ";
          if (sa.dropped) {
            out << "dropped (" << sa.error << ")";
          } else {
            out << "L=" << sa.latency << " M=" << sa.moves << ", "
                << sa.evals << " evals (" << sa.cache_hits << " cached), "
                << sa.improvements << " improvements, " << sa.restarts
                << " restarts, best at " << format_sig(sa.time_to_best_ms, 3)
                << " ms";
            if (sa.winner) {
              out << " [winner]";
            }
            if (sa.late) {
              out << " [late]";
            }
          }
          out << "\n";
        }
      }
    }
    if (!opts.stats_json.empty()) {
      JsonValue stats_doc =
          eval_stats_to_json(response.eval_stats, response.eval_threads);
      if (response.portfolio.ran()) {
        stats_doc.set("portfolio",
                      portfolio_stats_to_json(response.portfolio));
      }
      if (opts.stats_json == "-") {
        stats_doc.write(out, 2);
        out << '\n';
      } else {
        std::ofstream file(opts.stats_json);
        if (!file) {
          throw std::invalid_argument("cannot write '" + opts.stats_json +
                                      "'");
        }
        stats_doc.write(file, 2);
        file << '\n';
      }
    }
    if (response.status == BindStatus::kDeadlineExceeded) {
      // Typed, distinct from a parse failure (exit 1): the run hit its
      // deadline and the result above is the verified best-so-far.
      err << "cvbind: deadline of " << opts.deadline_ms
          << " ms exceeded; printed the best binding found in time\n";
      return exit_code_for(response.status);
    }
    return 0;
  } catch (const FaultInjectedError& e) {
    // Faults injected outside run_bind_request (e.g. while parsing
    // inputs) are still internal errors, not bad input.
    err << "cvbind: injected fault: " << e.what() << '\n';
    return exit_code_for(BindStatus::kInternalError);
  } catch (const std::exception& e) {
    err << "cvbind: " << e.what() << '\n';
    return exit_code_for(BindStatus::kInvalidRequest);
  }
}

}  // namespace cvb
