#include "cli/cli.hpp"

#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "baselines/annealing.hpp"
#include "baselines/mincut.hpp"
#include "bind/driver.hpp"
#include "bind/eval_engine.hpp"
#include "bind/exhaustive.hpp"
#include "bind/lower_bounds.hpp"
#include "bind/report.hpp"
#include "graph/analysis.hpp"
#include "graph/dot.hpp"
#include "io/dfg_text.hpp"
#include "kernels/kernels.hpp"
#include "machine/machine_file.hpp"
#include "machine/parser.hpp"
#include "pcc/pcc.hpp"
#include "regalloc/regalloc.hpp"
#include "sched/emit.hpp"
#include "sched/gantt.hpp"
#include "sched/reg_pressure.hpp"
#include "sched/verifier.hpp"
#include "service/protocol.hpp"
#include "service/status.hpp"
#include "sim/executor.hpp"
#include "support/cancel.hpp"
#include "support/fault.hpp"
#include "support/strings.hpp"

namespace cvb {

std::string cli_usage() {
  return R"(usage: cvbind [options] <kernel-name | file.dfg>

Binds a dataflow graph to a clustered VLIW datapath and prints the
result. Kernel names are the built-in paper benchmarks (see
--list-kernels); anything ending in .dfg is parsed as a DFG text file.

options:
  --datapath SPEC     cluster config, e.g. "[2,1|1,1]" (default [1,1|1,1])
  --buses N           number of buses N_B (default 2)
  --move-latency N    lat(move) in cycles (default 1)
  --machine FILE      load a .machine description instead (overrides
                      --datapath/--buses/--move-latency)
  --algorithm A       b-iter | b-init | pcc | sa | mincut | exhaustive
                      (default b-iter)
  --effort E          fast | balanced | max: binder effort preset for
                      b-iter/b-init (default balanced)
  --output LIST       comma list of: summary, report, gantt, asm,
                      pressure, regalloc, check, dot, dfg
                      (default summary)
  --seed N            random seed for --algorithm sa (default 1)
  --threads N         candidate-evaluation threads for b-iter/pcc
                      (default 1 = serial; results are identical for
                      any thread count)
  --deadline-ms N     anytime bound for b-iter/b-init/pcc: return the
                      best binding found within N ms (0 = expire
                      immediately, exercising the fastest path)
  --stats             print evaluation-engine statistics (candidates,
                      schedule-cache hits/misses, wall time)
  --stats-json FILE   write those statistics as JSON to FILE
                      ('-' = stdout)
  --inject SPEC       arm a fault-injection site for this run, as
                      site:rate[:class[:hang_ms]] (repeatable), e.g.
                      "eval.task:0.1:transient" — for local repro of
                      chaos-found failures; requires a build with
                      -DCVB_FAULT_INJECTION=ON (warns otherwise)
  --inject-seed N     seed of the deterministic injection stream
  --list-kernels      print the built-in kernel names and exit
  --help              this text

exit codes: 0 ok; 1 invalid input (usage/parse errors); 2 internal
error (including injected faults); 3 deadline exceeded (the printed
result is the verified best-so-far binding).
)";
}

namespace {

struct CliOptions {
  std::string source;
  std::string datapath = "[1,1|1,1]";
  std::string machine_file;
  int buses = 2;
  int move_latency = 1;
  std::string algorithm = "b-iter";
  std::string effort = "balanced";
  std::vector<std::string> outputs = {"summary"};
  std::uint64_t seed = 1;
  int threads = 1;
  int deadline_ms = -1;  // -1 = no deadline; 0 = already expired
  bool stats = false;
  std::string stats_json;
  std::vector<std::string> injects;
  std::uint64_t inject_seed = 0x5eedf417ULL;
  bool list_kernels = false;
  bool help = false;
};

CliOptions parse_args(const std::vector<std::string>& args) {
  CliOptions opts;
  const auto value_of = [&](std::size_t& i, const std::string& flag) {
    if (i + 1 >= args.size()) {
      throw std::invalid_argument(flag + " needs a value");
    }
    return args[++i];
  };
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--help" || arg == "-h") {
      opts.help = true;
    } else if (arg == "--list-kernels") {
      opts.list_kernels = true;
    } else if (arg == "--datapath") {
      opts.datapath = value_of(i, arg);
    } else if (arg == "--machine") {
      opts.machine_file = value_of(i, arg);
    } else if (arg == "--buses") {
      opts.buses = parse_nonnegative_int(value_of(i, arg));
    } else if (arg == "--move-latency") {
      opts.move_latency = parse_nonnegative_int(value_of(i, arg));
    } else if (arg == "--algorithm") {
      opts.algorithm = value_of(i, arg);
    } else if (arg == "--effort") {
      opts.effort = value_of(i, arg);
    } else if (arg == "--output") {
      opts.outputs = split(value_of(i, arg), ',');
    } else if (arg == "--seed") {
      opts.seed = static_cast<std::uint64_t>(
          parse_nonnegative_int(value_of(i, arg)));
    } else if (arg == "--threads") {
      opts.threads = parse_nonnegative_int(value_of(i, arg));
      if (opts.threads < 1) {
        throw std::invalid_argument("--threads must be >= 1");
      }
    } else if (arg == "--deadline-ms") {
      opts.deadline_ms = parse_nonnegative_int(value_of(i, arg));
    } else if (arg == "--stats") {
      opts.stats = true;
    } else if (arg == "--stats-json") {
      opts.stats_json = value_of(i, arg);
    } else if (arg == "--inject") {
      opts.injects.push_back(value_of(i, arg));
    } else if (arg == "--inject-seed") {
      opts.inject_seed = static_cast<std::uint64_t>(
          parse_nonnegative_int(value_of(i, arg)));
    } else if (!arg.empty() && arg.front() == '-') {
      throw std::invalid_argument("unknown option '" + arg + "'");
    } else if (opts.source.empty()) {
      opts.source = arg;
    } else {
      throw std::invalid_argument("unexpected argument '" + arg + "'");
    }
  }
  return opts;
}

Dfg load_source(const std::string& source, std::string& name) {
  if (source.size() > 4 && source.substr(source.size() - 4) == ".dfg") {
    std::ifstream file(source);
    if (!file) {
      throw std::invalid_argument("cannot open '" + source + "'");
    }
    ParsedDfg parsed = parse_dfg_text(file);
    name = parsed.name;
    return std::move(parsed.dfg);
  }
  name = source;
  return benchmark_by_name(source).dfg;
}

BindEffort effort_by_name(const std::string& name) {
  if (name == "fast") {
    return BindEffort::kFast;
  }
  if (name == "balanced") {
    return BindEffort::kBalanced;
  }
  if (name == "max") {
    return BindEffort::kMax;
  }
  throw std::invalid_argument("unknown effort '" + name + "'");
}

BindResult run_algorithm(const std::string& algorithm,
                         const std::string& effort, const Dfg& dfg,
                         const Datapath& dp, std::uint64_t seed,
                         EvalEngine& engine, const CancelToken& cancel) {
  if (algorithm == "b-iter") {
    DriverParams params = driver_params_for(effort_by_name(effort));
    params.engine = &engine;
    params.cancel = cancel;
    return bind_full(dfg, dp, params);
  }
  if (algorithm == "b-init") {
    DriverParams params = driver_params_for(effort_by_name(effort));
    params.run_iterative = false;
    params.cancel = cancel;
    return bind_initial_best(dfg, dp, params);
  }
  if (algorithm == "pcc") {
    PccParams params;
    params.cancel = cancel;
    return pcc_binding(dfg, dp, params, nullptr, &engine);
  }
  if (cancel.armed()) {
    throw std::invalid_argument("--deadline-ms is only supported for "
                                "b-iter/b-init/pcc");
  }
  if (algorithm == "sa") {
    AnnealingParams params;
    params.seed = seed;
    return annealing_binding(dfg, dp, params);
  }
  if (algorithm == "mincut") {
    return mincut_binding(dfg, dp);
  }
  if (algorithm == "exhaustive") {
    return exhaustive_binding(dfg, dp);
  }
  throw std::invalid_argument("unknown algorithm '" + algorithm + "'");
}

}  // namespace

int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err) {
  CliOptions opts;
  try {
    opts = parse_args(args);
  } catch (const std::invalid_argument& e) {
    err << "cvbind: " << e.what() << "\n\n" << cli_usage();
    return 1;
  }
  if (opts.help) {
    out << cli_usage();
    return 0;
  }
  if (opts.list_kernels) {
    for (const BenchmarkKernel& kernel : benchmark_suite()) {
      out << kernel.name << "  (Nv=" << kernel.dfg.num_ops() << ")\n";
    }
    return 0;
  }
  if (opts.source.empty()) {
    err << "cvbind: no kernel or .dfg file given\n\n" << cli_usage();
    return 1;
  }

  try {
    if (!opts.injects.empty()) {
      if (!fault_injection_compiled()) {
        err << "cvbind: warning: --inject ignored; rebuild with "
               "-DCVB_FAULT_INJECTION=ON\n";
      }
      FaultInjector& injector = FaultInjector::global();
      injector.disarm_all();
      injector.set_seed(opts.inject_seed);
      for (const std::string& spec : opts.injects) {
        injector.arm_from_flag(spec);
      }
    }
    std::string name;
    const Dfg dfg = load_source(opts.source, name);
    const Datapath dp = [&] {
      if (opts.machine_file.empty()) {
        return parse_datapath(opts.datapath, opts.buses, opts.move_latency);
      }
      std::ifstream file(opts.machine_file);
      if (!file) {
        throw std::invalid_argument("cannot open '" + opts.machine_file +
                                    "'");
      }
      return parse_machine_file(file).datapath;
    }();
    EvalEngineOptions engine_opts;
    engine_opts.num_threads = opts.threads;
    EvalEngine engine(engine_opts);
    const CancelToken cancel =
        opts.deadline_ms >= 0 ? CancelToken::after_ms(opts.deadline_ms)
                              : CancelToken();
    const BindResult result = run_algorithm(opts.algorithm, opts.effort, dfg,
                                            dp, opts.seed, engine, cancel);
    if (const std::string verr =
            verify_schedule(result.bound, dp, result.schedule);
        !verr.empty()) {
      err << "cvbind: internal error, illegal schedule: " << verr << '\n';
      return exit_code_for(BindStatus::kInternalError);
    }

    for (const std::string& output : opts.outputs) {
      if (output == "summary") {
        const LatencyLowerBound lb = latency_lower_bound(dfg, dp);
        out << name << " on " << dp.to_string() << " (" << dp.num_buses()
            << " buses, lat(move)=" << dp.move_latency() << ", "
            << opts.algorithm << "): L=" << result.schedule.latency
            << " cycles, M=" << result.schedule.num_moves
            << " transfers, lower bound " << lb.combined << '\n';
      } else if (output == "report") {
        write_binding_report(
            out, make_binding_report(result.bound, dp, result.schedule), dp);
      } else if (output == "gantt") {
        write_gantt(out, result.bound, dp, result.schedule);
      } else if (output == "asm") {
        emit_vliw_asm(out, result.bound, dp, result.schedule);
      } else if (output == "pressure") {
        const RegPressure p =
            compute_reg_pressure(result.bound, dp, result.schedule);
        out << "register pressure: centralized " << p.centralized_max_live;
        for (ClusterId c = 0; c < dp.num_clusters(); ++c) {
          out << ", c" << c << " " << p.max_live[static_cast<std::size_t>(c)];
        }
        out << '\n';
      } else if (output == "regalloc") {
        const RegAllocation alloc =
            allocate_registers(result.bound, dp, result.schedule);
        if (const std::string aerr = verify_allocation(
                result.bound, dp, result.schedule, alloc);
            !aerr.empty()) {
          err << "cvbind: internal error, bad allocation: " << aerr << '\n';
          return exit_code_for(BindStatus::kInternalError);
        }
        out << "register files:";
        for (ClusterId c = 0; c < dp.num_clusters(); ++c) {
          out << " c" << c << "="
              << alloc.regs_used[static_cast<std::size_t>(c)];
        }
        out << " (worst " << alloc.worst_file() << ")\n";
      } else if (output == "check") {
        const std::vector<std::int64_t> inputs = {3,  -7, 11, 2,  -1, 5,
                                                  13, -4, 9,  6,  -8, 1};
        const std::string cerr_msg =
            check_semantics(dfg, result.bound, dp, result.schedule, inputs);
        if (!cerr_msg.empty()) {
          err << "cvbind: semantic check FAILED: " << cerr_msg << '\n';
          return exit_code_for(BindStatus::kInternalError);
        }
        out << "semantic check: scheduled code computes the original "
               "dataflow values\n";
      } else if (output == "dot") {
        std::vector<int> place(result.bound.place.begin(),
                               result.bound.place.end());
        write_dot_bound(out, result.bound.graph, place, "bound");
      } else if (output == "dfg") {
        write_dfg_text(out, dfg, name);
      } else {
        err << "cvbind: unknown output '" << output << "'\n";
        return 1;
      }
    }
    if (opts.stats) {
      const EvalStats stats = engine.stats();
      const double hit_pct =
          stats.candidates > 0
              ? 100.0 * static_cast<double>(stats.cache_hits) /
                    static_cast<double>(stats.candidates)
              : 0.0;
      out << "eval stats: " << stats.candidates << " candidates in "
          << stats.batches << " batches on " << engine.num_threads()
          << (engine.num_threads() == 1 ? " thread" : " threads") << ", "
          << format_sig(stats.eval_ms, 3) << " ms\n"
          << "eval cache: " << stats.cache_hits << " hits ("
          << format_sig(hit_pct, 3) << "%), " << stats.cache_misses
          << " misses, " << stats.cache_evictions << " evictions\n"
          << "eval phases: improver=" << stats.improver_candidates
          << " pcc=" << stats.pcc_candidates << "\n";
    }
    if (!opts.stats_json.empty()) {
      const JsonValue stats_doc =
          eval_stats_to_json(engine.stats(), engine.num_threads());
      if (opts.stats_json == "-") {
        stats_doc.write(out, 2);
        out << '\n';
      } else {
        std::ofstream file(opts.stats_json);
        if (!file) {
          throw std::invalid_argument("cannot write '" + opts.stats_json +
                                      "'");
        }
        stats_doc.write(file, 2);
        file << '\n';
      }
    }
    if (cancel.deadline_expired()) {
      // Typed, distinct from a parse failure (exit 1): the run hit its
      // deadline and the result above is the verified best-so-far.
      err << "cvbind: deadline of " << opts.deadline_ms
          << " ms exceeded; printed the best binding found in time\n";
      return exit_code_for(BindStatus::kDeadlineExceeded);
    }
    return 0;
  } catch (const FaultInjectedError& e) {
    // Injected faults are internal errors by construction, not bad
    // input: keep the exit code honest for chaos-repro scripts.
    err << "cvbind: injected fault: " << e.what() << '\n';
    return exit_code_for(BindStatus::kInternalError);
  } catch (const std::exception& e) {
    err << "cvbind: " << e.what() << '\n';
    return exit_code_for(BindStatus::kInvalidRequest);
  }
}

}  // namespace cvb
