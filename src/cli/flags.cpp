#include "cli/flags.hpp"

#include <ostream>
#include <stdexcept>
#include <utility>

#include "support/fault.hpp"
#include "support/strings.hpp"

namespace cvb {

void FlagSet::on_value(const std::string& name, ValueHandler handler) {
  value_flags_[name] = std::move(handler);
}

void FlagSet::on_flag(const std::string& name, BoolHandler handler) {
  bool_flags_[name] = std::move(handler);
}

void FlagSet::on_positional(ValueHandler handler) {
  positional_ = std::move(handler);
}

void FlagSet::parse(const std::vector<std::string>& args) const {
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (const auto it = bool_flags_.find(arg); it != bool_flags_.end()) {
      it->second();
      continue;
    }
    if (const auto it = value_flags_.find(arg); it != value_flags_.end()) {
      if (i + 1 >= args.size()) {
        throw std::invalid_argument(arg + " needs a value");
      }
      it->second(args[++i]);
      continue;
    }
    if (positional_ && (arg.empty() || arg.front() != '-')) {
      positional_(arg);
      continue;
    }
    throw std::invalid_argument("unknown option '" + arg + "'");
  }
}

int parse_int_at_least(const std::string& text, int min,
                       const std::string& flag) {
  const int value = parse_nonnegative_int(text);
  if (value < min) {
    throw std::invalid_argument(flag + " must be >= " + std::to_string(min));
  }
  return value;
}

void arm_injection_flags(const char* tool,
                         const std::vector<std::string>& specs,
                         std::uint64_t seed, std::ostream& err) {
  if (specs.empty()) {
    return;
  }
  if (!fault_injection_compiled()) {
    err << tool << ": warning: --inject ignored; rebuild with "
           "-DCVB_FAULT_INJECTION=ON\n";
  }
  FaultInjector& injector = FaultInjector::global();
  injector.disarm_all();
  injector.set_seed(seed);
  for (const std::string& spec : specs) {
    injector.arm_from_flag(spec);
  }
}

}  // namespace cvb
