// Command-line driver for `cvrouter`, the consistent-hash request
// router (net/router.hpp). All logic lives in the library so tests can
// run a router in-process; tools/cvrouter.cpp is a thin main().
#include <fstream>
#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "cli/cli.hpp"
#include "cli/flags.hpp"
#include "net/router.hpp"
#include "support/metrics.hpp"
#include "support/strings.hpp"

namespace cvb {

std::string router_cli_usage() {
  return R"(usage: cvrouter --listen PATH --worker PATH [--worker PATH ...]

Consistent-hash request router over a fleet of `cvserve --socket`
workers. Clients connect to --listen with either protocol (NDJSON or
binary frames, auto-detected per connection); each request is hashed
by its schedule-cache key (kernel/dfg + machine/datapath/buses/
move_latency) onto a virtual-node hash ring, so the same workload
always lands on the same worker and keeps its eval cache hot.
Responses are forwarded verbatim — byte-identical to a direct worker
connection. See FORMATS.md "Router hashing contract".

Every worker sits behind a circuit breaker: request/probe failures
trip it open, the kPing prober half-opens and re-closes it, and the
ring is walked past workers whose breaker refuses traffic (when every
breaker refuses, the router fails open and routes the hash owner as
an extra trial). Job requests unanswered past the hedge budget are
re-sent to the next ring worker; the first terminal response wins and
the loser is deduplicated. Requests lost to a dying worker connection
get a typed {"status":"internal_error","fault_class":"transient"}
response. {"cmd":"shutdown"} through the router shuts down every
worker, then the router itself.

options:
  --listen PATH          Unix socket to serve clients on (required)
  --worker PATH          one worker's cvserve socket (repeatable,
                         at least one required)
  --vnodes N             virtual nodes per worker on the hash ring
                         (default 64)
  --health-interval-ms N health-probe period (default 250)
  --health-timeout-ms N  per-probe reply timeout (default 1000)
  --retries N            connect attempts per upstream before a
                         request is failed transient (default 3)
  --breaker-threshold N  consecutive failures that open a worker's
                         circuit breaker (default 3)
  --breaker-window N     rolling outcome window for the error-rate
                         trip (default 16)
  --half-open-trials N   trial successes needed to close a half-open
                         breaker (default 2)
  --hedge-budget-ms N    re-send a job unanswered for N ms to the
                         next ring worker; first terminal response
                         wins (default 250, 0 = off)
  --metrics-text FILE    at exit, write net_breaker_*/net_hedge_*/
                         net_router_* metrics as Prometheus text to
                         FILE ('-' = stdout)
  --help                 this text
)";
}

int run_router_cli(const std::vector<std::string>& args, std::ostream& out,
                   std::ostream& err) {
  net::RouterOptions opts;
  bool help = false;
  FlagSet flags;
  flags.on_flag("--help", [&] { help = true; });
  flags.on_flag("-h", [&] { help = true; });
  flags.on_value("--listen",
                 [&](const std::string& v) { opts.listen_path = v; });
  flags.on_value("--worker",
                 [&](const std::string& v) { opts.workers.push_back(v); });
  flags.on_value("--vnodes", [&](const std::string& v) {
    opts.vnodes = parse_int_at_least(v, 1, "--vnodes");
  });
  flags.on_value("--health-interval-ms", [&](const std::string& v) {
    opts.health_interval_ms = parse_int_at_least(v, 1, "--health-interval-ms");
  });
  flags.on_value("--health-timeout-ms", [&](const std::string& v) {
    opts.health_timeout_ms = parse_int_at_least(v, 1, "--health-timeout-ms");
  });
  flags.on_value("--retries", [&](const std::string& v) {
    opts.max_connect_attempts = parse_int_at_least(v, 1, "--retries");
  });
  flags.on_value("--breaker-threshold", [&](const std::string& v) {
    opts.breaker.failure_threshold =
        parse_int_at_least(v, 1, "--breaker-threshold");
  });
  flags.on_value("--breaker-window", [&](const std::string& v) {
    opts.breaker.window = parse_int_at_least(v, 1, "--breaker-window");
  });
  flags.on_value("--half-open-trials", [&](const std::string& v) {
    opts.breaker.half_open_trials =
        parse_int_at_least(v, 1, "--half-open-trials");
  });
  flags.on_value("--hedge-budget-ms", [&](const std::string& v) {
    opts.hedge_budget_ms = parse_nonnegative_int(v);
  });
  std::string metrics_text;
  flags.on_value("--metrics-text",
                 [&](const std::string& v) { metrics_text = v; });
  try {
    flags.parse(args);
    if (!help && opts.listen_path.empty()) {
      throw std::invalid_argument("--listen is required");
    }
    if (!help && opts.workers.empty()) {
      throw std::invalid_argument("at least one --worker is required");
    }
  } catch (const std::invalid_argument& e) {
    err << "cvrouter: " << e.what() << "\n\n" << router_cli_usage();
    return 1;
  }
  if (help) {
    out << router_cli_usage();
    return 0;
  }
  MetricsRegistry metrics;
  opts.metrics = &metrics;
  net::Router router(std::move(opts));
  const int rc = router.run(err);
  if (!metrics_text.empty()) {
    const std::string text = metrics.prometheus_text();
    if (metrics_text == "-") {
      out << text;
    } else {
      std::ofstream file(metrics_text);
      if (!file) {
        err << "cvrouter: cannot write '" << metrics_text << "'\n";
        return rc == 0 ? 1 : rc;
      }
      file << text;
    }
  }
  return rc;
}

}  // namespace cvb
