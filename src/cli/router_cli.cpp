// Command-line driver for `cvrouter`, the consistent-hash request
// router (net/router.hpp). All logic lives in the library so tests can
// run a router in-process; tools/cvrouter.cpp is a thin main().
#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "cli/cli.hpp"
#include "cli/flags.hpp"
#include "net/router.hpp"

namespace cvb {

std::string router_cli_usage() {
  return R"(usage: cvrouter --listen PATH --worker PATH [--worker PATH ...]

Consistent-hash request router over a fleet of `cvserve --socket`
workers. Clients connect to --listen with either protocol (NDJSON or
binary frames, auto-detected per connection); each request is hashed
by its schedule-cache key (kernel/dfg + machine/datapath/buses/
move_latency) onto a virtual-node hash ring, so the same workload
always lands on the same worker and keeps its eval cache hot.
Responses are forwarded verbatim — byte-identical to a direct worker
connection. See FORMATS.md "Router hashing contract".

Unhealthy workers (failed kPing probes) are skipped on the ring; when
every worker looks down the router fails open and routes by hash
anyway. Requests lost to a dying worker connection get a typed
{"status":"internal_error","fault_class":"transient"} response.
{"cmd":"shutdown"} through the router shuts down every worker, then
the router itself.

options:
  --listen PATH          Unix socket to serve clients on (required)
  --worker PATH          one worker's cvserve socket (repeatable,
                         at least one required)
  --vnodes N             virtual nodes per worker on the hash ring
                         (default 64)
  --health-interval-ms N health-probe period (default 250)
  --health-timeout-ms N  per-probe reply timeout (default 1000)
  --retries N            connect attempts per upstream before a
                         request is failed transient (default 3)
  --help                 this text
)";
}

int run_router_cli(const std::vector<std::string>& args, std::ostream& out,
                   std::ostream& err) {
  net::RouterOptions opts;
  bool help = false;
  FlagSet flags;
  flags.on_flag("--help", [&] { help = true; });
  flags.on_flag("-h", [&] { help = true; });
  flags.on_value("--listen",
                 [&](const std::string& v) { opts.listen_path = v; });
  flags.on_value("--worker",
                 [&](const std::string& v) { opts.workers.push_back(v); });
  flags.on_value("--vnodes", [&](const std::string& v) {
    opts.vnodes = parse_int_at_least(v, 1, "--vnodes");
  });
  flags.on_value("--health-interval-ms", [&](const std::string& v) {
    opts.health_interval_ms = parse_int_at_least(v, 1, "--health-interval-ms");
  });
  flags.on_value("--health-timeout-ms", [&](const std::string& v) {
    opts.health_timeout_ms = parse_int_at_least(v, 1, "--health-timeout-ms");
  });
  flags.on_value("--retries", [&](const std::string& v) {
    opts.max_connect_attempts = parse_int_at_least(v, 1, "--retries");
  });
  try {
    flags.parse(args);
    if (!help && opts.listen_path.empty()) {
      throw std::invalid_argument("--listen is required");
    }
    if (!help && opts.workers.empty()) {
      throw std::invalid_argument("at least one --worker is required");
    }
  } catch (const std::invalid_argument& e) {
    err << "cvrouter: " << e.what() << "\n\n" << router_cli_usage();
    return 1;
  }
  if (help) {
    out << router_cli_usage();
    return 0;
  }
  net::Router router(std::move(opts));
  return router.run(err);
}

}  // namespace cvb
