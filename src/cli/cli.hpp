// Command-line driver logic for the `cvbind` tool. The argument
// parsing and execution live in the library (run_cli) so they are unit
// testable; tools/cvbind.cpp is a thin main() wrapper.
//
//   cvbind EWF --datapath "[2,1|1,1]" --output summary,gantt
//   cvbind my_kernel.dfg --algorithm pcc --buses 1
//   cvbind --list-kernels
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace cvb {

/// Runs the cvbind command line. `args` excludes the program name.
/// Writes results to `out`, diagnostics to `err`; returns the process
/// exit code (0 success, 1 usage/input error).
int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err);

/// The usage text printed by --help.
[[nodiscard]] std::string cli_usage();

/// Runs the cvpipe (software pipelining) command line; same contract
/// as run_cli.
///
///   cvpipe biquad --datapath "[2,2|2,1]"
///   cvpipe --list-loops
int run_pipe_cli(const std::vector<std::string>& args, std::ostream& out,
                 std::ostream& err);

/// Usage text for cvpipe.
[[nodiscard]] std::string pipe_cli_usage();

/// Runs the cvserve (batched binding service) command line: reads
/// newline-delimited JSON job requests from `in` (or a Unix-domain
/// socket with --socket) and writes one JSON response line per job to
/// `out` in completion order. Same contract as run_cli.
///
///   cvserve --workers 4 --queue 128 < jobs.ndjson
///   cvserve --socket /tmp/cvb.sock --once
int run_serve_cli(const std::vector<std::string>& args, std::istream& in,
                  std::ostream& out, std::ostream& err);

/// Usage text for cvserve.
[[nodiscard]] std::string serve_cli_usage();

/// Runs the cvrouter (consistent-hash request router) command line:
/// listens on a Unix socket and fans requests out over N `cvserve
/// --socket` workers by schedule-cache key. Same contract as run_cli.
///
///   cvrouter --listen /tmp/cvb.sock --worker /tmp/w0.sock --worker /tmp/w1.sock
int run_router_cli(const std::vector<std::string>& args, std::ostream& out,
                   std::ostream& err);

/// Usage text for cvrouter.
[[nodiscard]] std::string router_cli_usage();

}  // namespace cvb
