// The cvserve transports, exposed for tests and benchmarks.
//
// run_serve_cli() picks between these; bench/net_load additionally
// drives the PR 2 blocking loop directly as the baseline the epoll
// server (net/server.hpp) is measured against.
#pragma once

#include <iosfwd>
#include <string>

namespace cvb {

class Service;
class Tracer;

/// The PR 2 NDJSON request/response loop over generic streams: reads
/// request lines from `in` until EOF or {"cmd":"quit"}, writes one
/// response line per request in completion order, returns once every
/// submitted job has been answered. Also the stdio stream mode of
/// `cvserve`.
void serve_ndjson_stream(Service& service, Tracer* tracer, std::istream& in,
                         std::ostream& out);

/// The PR 2 blocking Unix-socket transport: accepts one connection at
/// a time and serves it with serve_ndjson_stream. Kept as the
/// non-Linux fallback and as the baseline bench/net_load compares the
/// epoll server against. Only defined where Unix sockets exist.
int serve_socket_blocking(Service& service, Tracer* tracer,
                          const std::string& path, bool once,
                          std::ostream& err);

}  // namespace cvb
