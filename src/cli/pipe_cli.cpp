#include <ostream>
#include <stdexcept>

#include "cli/cli.hpp"
#include "cli/flags.hpp"
#include "machine/parser.hpp"
#include "modulo/expand.hpp"
#include "modulo/loop_kernels.hpp"
#include "modulo/mii.hpp"
#include "modulo/modulo_scheduler.hpp"
#include "sched/verifier.hpp"
#include "support/strings.hpp"

namespace cvb {

std::string pipe_cli_usage() {
  return R"(usage: cvpipe [options] <loop-name>

Software-pipelines a built-in loop kernel onto a clustered VLIW
datapath (body bound with the DAC'01 binder, then modulo scheduled)
and prints the kernel.

loops: dot, dot4, biquad, cmac, lattice2, lattice3

options:
  --datapath SPEC     cluster config (default [2,2|2,1])
  --buses N           number of buses (default 2)
  --move-latency N    lat(move) in cycles (default 1)
  --iterations N      also print the N-iteration expansion summary
  --list-loops        print loop names and exit
  --help              this text
)";
}

namespace {

CyclicDfg loop_by_name(const std::string& name) {
  if (name == "dot") {
    return make_dot_product_loop(1);
  }
  if (name == "dot4") {
    return make_dot_product_loop(4);
  }
  if (name == "biquad") {
    return make_iir_biquad_loop();
  }
  if (name == "cmac") {
    return make_complex_mac_loop();
  }
  if (name == "lattice2") {
    return make_lattice_stage_loop(2);
  }
  if (name == "lattice3") {
    return make_lattice_stage_loop(3);
  }
  throw std::invalid_argument("unknown loop '" + name + "'");
}

}  // namespace

int run_pipe_cli(const std::vector<std::string>& args, std::ostream& out,
                 std::ostream& err) {
  std::string loop_name;
  std::string datapath = "[2,2|2,1]";
  int buses = 2;
  int move_latency = 1;
  int iterations = 0;
  bool help = false;
  bool list_loops = false;
  try {
    FlagSet flags;
    flags.on_flag("--help", [&] { help = true; });
    flags.on_flag("-h", [&] { help = true; });
    flags.on_flag("--list-loops", [&] { list_loops = true; });
    flags.on_value("--datapath", [&](const std::string& v) { datapath = v; });
    flags.on_value("--buses", [&](const std::string& v) {
      buses = parse_nonnegative_int(v);
    });
    flags.on_value("--move-latency", [&](const std::string& v) {
      move_latency = parse_nonnegative_int(v);
    });
    flags.on_value("--iterations", [&](const std::string& v) {
      iterations = parse_nonnegative_int(v);
    });
    flags.on_positional([&](const std::string& arg) {
      if (!loop_name.empty()) {
        throw std::invalid_argument("unexpected argument '" + arg + "'");
      }
      loop_name = arg;
    });
    flags.parse(args);
    if (help) {
      out << pipe_cli_usage();
      return 0;
    }
    if (list_loops) {
      out << "dot dot4 biquad cmac lattice2 lattice3\n";
      return 0;
    }
    if (loop_name.empty()) {
      throw std::invalid_argument("no loop name given");
    }

    const CyclicDfg loop = loop_by_name(loop_name);
    const Datapath dp = parse_datapath(datapath, buses, move_latency);
    const ModuloResult r = software_pipeline(loop, dp);
    if (const std::string verr = verify_modulo_schedule(r, dp);
        !verr.empty()) {
      err << "cvpipe: internal error: " << verr << '\n';
      return 1;
    }

    out << loop_name << " on " << dp.to_string() << " (" << dp.num_buses()
        << " buses): ResMII=" << resource_mii(loop, dp)
        << " RecMII=" << recurrence_mii(loop, dp.latencies())
        << " -> II=" << r.ii << (r.ii == r.mii ? " (optimal)" : "") << ", "
        << r.num_moves << " moves, " << r.stages << " stages\n";
    for (int slot = 0; slot < r.ii; ++slot) {
      out << "  slot " << slot << ":";
      for (OpId v = 0; v < r.kernel.num_ops(); ++v) {
        if (r.start[static_cast<std::size_t>(v)] % r.ii == slot) {
          const ClusterId c = r.place[static_cast<std::size_t>(v)];
          out << ' ' << r.kernel.name(v)
              << (c == kNoCluster ? "@bus" : "@c" + std::to_string(c));
        }
      }
      out << '\n';
    }
    if (iterations > 0) {
      const ExpandedPipeline flat = expand_pipeline(r, dp, iterations);
      if (const std::string verr =
              verify_schedule(flat.flat, dp, flat.schedule);
          !verr.empty()) {
        err << "cvpipe: internal error in expansion: " << verr << '\n';
        return 1;
      }
      out << iterations << " iterations: " << flat.schedule.latency
          << " cycles pipelined (" << pipelined_latency(r, dp, iterations)
          << " closed-form)\n";
    }
    return 0;
  } catch (const std::exception& e) {
    err << "cvpipe: " << e.what() << "\n\n" << pipe_cli_usage();
    return 1;
  }
}

}  // namespace cvb
