// Command-line driver for the `cvserve` binding service front-end.
// Like cli.cpp, all logic lives in the library so the full request ->
// service -> response path is unit-testable over string streams;
// tools/cvserve.cpp is a thin main().
//
// Two transports:
//  * stream mode (default): NDJSON requests on stdin, responses on
//    stdout in *completion* order (the "id" field correlates them);
//  * --socket PATH: a Unix-domain stream socket serving one connection
//    at a time with the same NDJSON protocol (--once exits after the
//    first connection, which is how the tests drive it).
#include <atomic>
#include <condition_variable>
#include <istream>
#include <mutex>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "cli/cli.hpp"
#include "service/protocol.hpp"
#include "service/service.hpp"
#include "support/strings.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define CVB_HAVE_UNIX_SOCKETS 1
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

namespace cvb {

std::string serve_cli_usage() {
  return R"(usage: cvserve [options]

Batched binding service: reads newline-delimited JSON job requests
from stdin (or a Unix socket) and writes one JSON response line per
job, in completion order. See FORMATS.md "Service protocol".

options:
  --workers N         worker threads executing jobs (default 2)
  --queue N           queue capacity before shedding (default 64)
  --overflow P        reject | shed-oldest: what to shed when the
                      queue is full (default reject)
  --deadline-ms N     default per-job deadline (0 = none, default 0)
  --threads N         candidate-evaluation threads of the shared
                      engine (default 1 = evaluate on the worker)
  --retries N         execution attempts per job for transient faults
                      (default 3; 1 = no retry)
  --quarantine N      failures of one job key before it degrades to a
                      trivial verified binding (default 3; 0 = off)
  --hang-budget-ms N  watchdog: cancel jobs running longer than this
                      and recycle their worker (default 0 = off)
  --step-budget N     default scheduler step budget per job
                      (default 0 = unlimited)
  --socket PATH       serve a Unix-domain socket instead of stdio
  --once              with --socket: exit after the first connection
  --help              this text

Malformed request lines get a structured error response
({"status":"invalid_request","fault_class":...,"error":...}, with the
request id echoed when parseable) and the connection stays open.
Request lines are capped at 1 MiB.
)";
}

namespace {

struct ServeOptions {
  ServiceOptions service;
  std::string socket_path;
  bool once = false;
  bool help = false;
};

ServeOptions parse_serve_args(const std::vector<std::string>& args) {
  ServeOptions opts;
  const auto value_of = [&](std::size_t& i, const std::string& flag) {
    if (i + 1 >= args.size()) {
      throw std::invalid_argument(flag + " needs a value");
    }
    return args[++i];
  };
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--help" || arg == "-h") {
      opts.help = true;
    } else if (arg == "--workers") {
      opts.service.num_workers = parse_nonnegative_int(value_of(i, arg));
      if (opts.service.num_workers < 1) {
        throw std::invalid_argument("--workers must be >= 1");
      }
    } else if (arg == "--queue") {
      opts.service.queue_capacity = static_cast<std::size_t>(
          parse_nonnegative_int(value_of(i, arg)));
    } else if (arg == "--overflow") {
      const std::string policy = value_of(i, arg);
      if (policy == "reject") {
        opts.service.overflow = OverflowPolicy::kReject;
      } else if (policy == "shed-oldest") {
        opts.service.overflow = OverflowPolicy::kShedOldest;
      } else {
        throw std::invalid_argument("unknown overflow policy '" + policy +
                                    "'");
      }
    } else if (arg == "--deadline-ms") {
      opts.service.default_deadline_ms =
          parse_nonnegative_int(value_of(i, arg));
    } else if (arg == "--threads") {
      opts.service.engine.num_threads = parse_nonnegative_int(value_of(i, arg));
      if (opts.service.engine.num_threads < 1) {
        throw std::invalid_argument("--threads must be >= 1");
      }
    } else if (arg == "--retries") {
      opts.service.resilience.max_attempts =
          parse_nonnegative_int(value_of(i, arg));
      if (opts.service.resilience.max_attempts < 1) {
        throw std::invalid_argument("--retries must be >= 1");
      }
    } else if (arg == "--quarantine") {
      opts.service.resilience.quarantine_threshold =
          parse_nonnegative_int(value_of(i, arg));
    } else if (arg == "--hang-budget-ms") {
      opts.service.resilience.hang_budget_ms =
          parse_nonnegative_int(value_of(i, arg));
    } else if (arg == "--step-budget") {
      opts.service.resilience.step_budget =
          parse_nonnegative_int(value_of(i, arg));
    } else if (arg == "--socket") {
      opts.socket_path = value_of(i, arg);
    } else if (arg == "--once") {
      opts.once = true;
    } else {
      throw std::invalid_argument("unknown option '" + arg + "'");
    }
  }
  return opts;
}

/// Hard cap on one NDJSON request line. A peer that streams an
/// unbounded line would otherwise grow `line` without limit; past the
/// cap the rest of the line is drained (keeping the stream
/// line-aligned) and a structured error is returned instead.
constexpr std::size_t kMaxRequestLine = 1 << 20;

/// getline with the length cap: returns false at EOF, sets *overflow
/// (and discards the remainder of the line) when the cap is hit.
bool read_request_line(std::istream& in, std::string& line, bool* overflow) {
  *overflow = false;
  line.clear();
  char c;
  while (in.get(c)) {
    if (c == '\n') {
      return true;
    }
    if (line.size() >= kMaxRequestLine) {
      *overflow = true;
      while (in.get(c) && c != '\n') {
      }
      return true;
    }
    line.push_back(c);
  }
  return !line.empty();  // final unterminated line still counts
}

/// Reads requests from `in` until EOF or {"cmd":"quit"}, submitting
/// jobs asynchronously; responses are written (mutex-serialized, one
/// line each, flushed) as jobs complete. Returns once every submitted
/// job has been answered. Malformed lines produce one structured error
/// response each and never abort the stream.
void serve_stream(Service& service, std::istream& in, std::ostream& out) {
  std::mutex out_mutex;
  std::atomic<long long> outstanding{0};
  std::mutex done_mutex;
  std::condition_variable done_cv;

  const auto respond = [&](const JsonValue& response) {
    const std::lock_guard<std::mutex> lock(out_mutex);
    response.write(out);
    out << '\n';
    out.flush();
  };

  std::string line;
  bool overflow = false;
  while (read_request_line(in, line, &overflow)) {
    if (overflow) {
      respond(invalid_request_json(
          "request line exceeds " + std::to_string(kMaxRequestLine) +
          " bytes"));
      continue;
    }
    if (trim(line).empty()) {
      continue;
    }
    ServeRequest request;
    try {
      request = parse_serve_request(line);
    } catch (const std::exception& e) {
      respond(invalid_request_json(e.what(), extract_request_id(line)));
      continue;
    }
    if (request.kind == ServeRequest::Kind::kQuit) {
      break;
    }
    if (request.kind == ServeRequest::Kind::kMetrics) {
      respond(service.metrics_snapshot());
      continue;
    }
    outstanding.fetch_add(1, std::memory_order_relaxed);
    service.submit(std::move(request.job), [&](BindOutcome outcome) {
      respond(outcome_to_json(outcome));
      if (outstanding.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        const std::lock_guard<std::mutex> lock(done_mutex);
        done_cv.notify_all();
      }
    });
  }
  std::unique_lock<std::mutex> lock(done_mutex);
  done_cv.wait(lock, [&] {
    return outstanding.load(std::memory_order_acquire) == 0;
  });
}

#ifdef CVB_HAVE_UNIX_SOCKETS

/// Minimal read/write streambuf over a POSIX file descriptor, so the
/// socket transport reuses the exact same serve_stream loop as stdio.
class FdStreambuf : public std::streambuf {
 public:
  explicit FdStreambuf(int fd) : fd_(fd) {
    setg(in_buf_, in_buf_, in_buf_);
  }

 protected:
  int underflow() override {
    const ssize_t n = ::read(fd_, in_buf_, sizeof in_buf_);
    if (n <= 0) {
      return traits_type::eof();
    }
    setg(in_buf_, in_buf_, in_buf_ + n);
    return traits_type::to_int_type(in_buf_[0]);
  }

  int overflow(int ch) override {
    if (ch != traits_type::eof()) {
      const char byte = static_cast<char>(ch);
      if (::write(fd_, &byte, 1) != 1) {
        return traits_type::eof();
      }
    }
    return ch;
  }

  std::streamsize xsputn(const char* data, std::streamsize count) override {
    std::streamsize written = 0;
    while (written < count) {
      const ssize_t n = ::write(fd_, data + written,
                                static_cast<std::size_t>(count - written));
      if (n <= 0) {
        break;
      }
      written += n;
    }
    return written;
  }

 private:
  int fd_;
  char in_buf_[4096];
};

int serve_socket(Service& service, const std::string& path, bool once,
                 std::ostream& err) {
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) {
    err << "cvserve: cannot create socket\n";
    return 2;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    err << "cvserve: socket path too long\n";
    ::close(listener);
    return 1;
  }
  path.copy(addr.sun_path, path.size());
  ::unlink(path.c_str());
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listener, 8) != 0) {
    err << "cvserve: cannot bind/listen on '" << path << "'\n";
    ::close(listener);
    return 2;
  }
  while (true) {
    const int conn = ::accept(listener, nullptr, nullptr);
    if (conn < 0) {
      break;
    }
    FdStreambuf buf_in(conn);
    FdStreambuf buf_out(conn);
    std::istream in(&buf_in);
    std::ostream out(&buf_out);
    serve_stream(service, in, out);
    ::close(conn);
    if (once) {
      break;
    }
  }
  ::close(listener);
  ::unlink(path.c_str());
  return 0;
}

#endif  // CVB_HAVE_UNIX_SOCKETS

}  // namespace

int run_serve_cli(const std::vector<std::string>& args, std::istream& in,
                  std::ostream& out, std::ostream& err) {
  ServeOptions opts;
  try {
    opts = parse_serve_args(args);
  } catch (const std::invalid_argument& e) {
    err << "cvserve: " << e.what() << "\n\n" << serve_cli_usage();
    return 1;
  }
  if (opts.help) {
    out << serve_cli_usage();
    return 0;
  }

  Service service(opts.service);
  if (!opts.socket_path.empty()) {
#ifdef CVB_HAVE_UNIX_SOCKETS
    return serve_socket(service, opts.socket_path, opts.once, err);
#else
    err << "cvserve: --socket is not supported on this platform\n";
    return 1;
#endif
  }
  serve_stream(service, in, out);
  return 0;
}

}  // namespace cvb
