// Command-line driver for the `cvserve` binding service front-end.
// Like cli.cpp, all logic lives in the library so the full request ->
// service -> response path is unit-testable over string streams;
// tools/cvserve.cpp is a thin main().
//
// Two transports:
//  * stream mode (default): NDJSON requests on stdin, responses on
//    stdout in *completion* order (the "id" field correlates them);
//  * --socket PATH: a Unix-domain stream socket. On Linux this is the
//    epoll server (net/server.hpp): any number of concurrent
//    connections, NDJSON and binary-frame clients auto-detected on the
//    same socket, per-connection write-budget backpressure. Elsewhere
//    it falls back to the original one-connection-at-a-time blocking
//    loop. --once exits after the first connection fully drains in
//    both cases.
//
// Observability: --trace arms a Tracer shared by every job the
// service runs; {"cmd":"trace"} drains it over the wire, --trace-out
// writes whatever is left at exit, and --metrics-text exports the
// metrics registry as Prometheus text at exit. --warm-start seeds the
// eval cache from a {"cmd":"snapshot"} file before serving.
#include <chrono>
#include <condition_variable>
#include <fstream>
#include <istream>
#include <mutex>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "bind/strategy.hpp"
#include "cli/cli.hpp"
#include "cli/flags.hpp"
#include "cli/serve_transport.hpp"
#include "net/server.hpp"
#include "net/snapshot.hpp"
#include "service/protocol.hpp"
#include "service/service.hpp"
#include "support/strings.hpp"
#include "support/trace.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define CVB_HAVE_UNIX_SOCKETS 1
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#endif

namespace cvb {

std::string serve_cli_usage() {
  return R"(usage: cvserve [options]

Batched binding service: reads newline-delimited JSON job requests
from stdin (or a Unix socket) and writes one JSON response line per
job, in completion order. See FORMATS.md "Service protocol".

options:
  --workers N         worker threads executing jobs (default 2)
  --queue N           queue capacity before shedding (default 64)
  --overflow P        reject | shed-oldest: what to shed when the
                      queue is full (default reject)
  --deadline-ms N     default per-job deadline (0 = none, default 0)
  --portfolio         race the default strategy set (b-iter, b-init,
                      pcc, sa) for jobs that do not pick a strategy
                      themselves; responses carry per-strategy
                      attribution under "portfolio"
  --strategies LIST   default racing set as a comma list of
                      name[:seed] entries (implies --portfolio
                      semantics; explicit per-job strategy/portfolio
                      fields still win)
  --race-threads N    threads racing portfolio strategies per job
                      (default 0 = one per strategy; results are
                      identical for any value)
  --threads N         candidate-evaluation threads of the shared
                      engine (default 1 = evaluate on the worker)
  --retries N         execution attempts per job for transient faults
                      (default 3; 1 = no retry)
  --quarantine N      failures of one job key before it degrades to a
                      trivial verified binding (default 3; 0 = off)
  --hang-budget-ms N  watchdog: cancel jobs running longer than this
                      and recycle their worker (default 0 = off)
  --step-budget N     default scheduler step budget per job
                      (default 0 = unlimited)
  --trace             record spans for every job; {"cmd":"trace"}
                      returns (and drains) them as one Chrome
                      trace_event JSON response line
  --trace-out FILE    at exit, write the remaining spans as Chrome
                      trace_event JSON to FILE ('-' = stdout);
                      implies --trace
  --metrics-text FILE at exit, write the metrics registry in
                      Prometheus text format to FILE ('-' = stdout)
  --inject SPEC       arm a fault-injection site, as
                      site:rate[:class[:hang_ms]] (repeatable);
                      requires -DCVB_FAULT_INJECTION=ON (warns
                      otherwise)
  --inject-seed N     seed of the deterministic injection stream
  --socket PATH       serve a Unix-domain socket instead of stdio; on
                      Linux this multiplexes any number of concurrent
                      connections (epoll) and auto-detects NDJSON vs
                      binary-frame clients per connection (FORMATS.md
                      "Binary frame protocol")
  --once              with --socket: exit after the first connection
  --write-budget N    per-connection write-buffer bytes before a slow
                      reader is paused (default 1048576)
  --warm-start FILE   seed the eval cache from a {"cmd":"snapshot"}
                      file before serving (see FORMATS.md "Eval-cache
                      snapshot file"); a missing or corrupt file logs
                      a structured warning and serving continues with
                      a cold cache
  --snapshot-path FILE
                      destination for periodic and exit snapshots
                      (default: the --warm-start path)
  --snapshot-every-s N
                      persist the eval cache every N seconds and once
                      at exit (atomic tmp + fsync + rename; 0 = off);
                      needs --snapshot-path or --warm-start
  --help              this text

Malformed request lines get a structured error response
({"status":"invalid_request","fault_class":...,"error":...}, with the
request id echoed when parseable) and the connection stays open.
Request lines are capped at 1 MiB.
)";
}

namespace {

struct ServeOptions {
  ServiceOptions service;
  bool portfolio = false;
  std::string strategies;
  std::string socket_path;
  std::string warm_start;
  std::string snapshot_path;
  int snapshot_every_s = 0;
  std::size_t write_budget = std::size_t{1} << 20;
  bool once = false;
  bool trace = false;
  std::string trace_out;
  std::string metrics_text;
  std::vector<std::string> injects;
  std::uint64_t inject_seed = 0x5eedf417ULL;
  bool help = false;
};

ServeOptions parse_serve_args(const std::vector<std::string>& args) {
  ServeOptions opts;
  FlagSet flags;
  flags.on_flag("--help", [&] { opts.help = true; });
  flags.on_flag("-h", [&] { opts.help = true; });
  flags.on_flag("--once", [&] { opts.once = true; });
  flags.on_flag("--trace", [&] { opts.trace = true; });
  flags.on_value("--workers", [&](const std::string& v) {
    opts.service.num_workers = parse_int_at_least(v, 1, "--workers");
  });
  flags.on_value("--queue", [&](const std::string& v) {
    opts.service.queue_capacity =
        static_cast<std::size_t>(parse_nonnegative_int(v));
  });
  flags.on_value("--overflow", [&](const std::string& policy) {
    if (policy == "reject") {
      opts.service.overflow = OverflowPolicy::kReject;
    } else if (policy == "shed-oldest") {
      opts.service.overflow = OverflowPolicy::kShedOldest;
    } else {
      throw std::invalid_argument("unknown overflow policy '" + policy +
                                  "'");
    }
  });
  flags.on_value("--deadline-ms", [&](const std::string& v) {
    opts.service.default_deadline_ms = parse_nonnegative_int(v);
  });
  flags.on_flag("--portfolio", [&] { opts.portfolio = true; });
  flags.on_value("--strategies",
                 [&](const std::string& v) { opts.strategies = v; });
  flags.on_value("--race-threads", [&](const std::string& v) {
    opts.service.default_portfolio_policy.race_threads =
        parse_nonnegative_int(v);
  });
  flags.on_value("--threads", [&](const std::string& v) {
    opts.service.engine.num_threads = parse_int_at_least(v, 1, "--threads");
  });
  flags.on_value("--retries", [&](const std::string& v) {
    opts.service.resilience.max_attempts =
        parse_int_at_least(v, 1, "--retries");
  });
  flags.on_value("--quarantine", [&](const std::string& v) {
    opts.service.resilience.quarantine_threshold = parse_nonnegative_int(v);
  });
  flags.on_value("--hang-budget-ms", [&](const std::string& v) {
    opts.service.resilience.hang_budget_ms = parse_nonnegative_int(v);
  });
  flags.on_value("--step-budget", [&](const std::string& v) {
    opts.service.resilience.step_budget = parse_nonnegative_int(v);
  });
  flags.on_value("--trace-out",
                 [&](const std::string& v) { opts.trace_out = v; });
  flags.on_value("--metrics-text",
                 [&](const std::string& v) { opts.metrics_text = v; });
  flags.on_value("--inject",
                 [&](const std::string& v) { opts.injects.push_back(v); });
  flags.on_value("--inject-seed", [&](const std::string& v) {
    opts.inject_seed = static_cast<std::uint64_t>(parse_nonnegative_int(v));
  });
  flags.on_value("--socket",
                 [&](const std::string& v) { opts.socket_path = v; });
  flags.on_value("--warm-start",
                 [&](const std::string& v) { opts.warm_start = v; });
  flags.on_value("--snapshot-path",
                 [&](const std::string& v) { opts.snapshot_path = v; });
  flags.on_value("--snapshot-every-s", [&](const std::string& v) {
    opts.snapshot_every_s = parse_nonnegative_int(v);
  });
  flags.on_value("--write-budget", [&](const std::string& v) {
    opts.write_budget = static_cast<std::size_t>(
        parse_int_at_least(v, 1, "--write-budget"));
  });
  flags.parse(args);
  if (!opts.strategies.empty()) {
    opts.service.default_portfolio =
        parse_strategy_csv(opts.strategies, BindEffort::kBalanced, 1);
  } else if (opts.portfolio) {
    opts.service.default_portfolio = default_portfolio();
  }
  return opts;
}

/// Hard cap on one NDJSON request line. A peer that streams an
/// unbounded line would otherwise grow `line` without limit; past the
/// cap the rest of the line is drained (keeping the stream
/// line-aligned) and a structured error is returned instead.
constexpr std::size_t kMaxRequestLine = 1 << 20;

/// getline with the length cap: returns false at EOF, sets *overflow
/// (and discards the remainder of the line) when the cap is hit.
bool read_request_line(std::istream& in, std::string& line, bool* overflow) {
  *overflow = false;
  line.clear();
  char c;
  while (in.get(c)) {
    if (c == '\n') {
      return true;
    }
    if (line.size() >= kMaxRequestLine) {
      *overflow = true;
      while (in.get(c) && c != '\n') {
      }
      return true;
    }
    line.push_back(c);
  }
  return !line.empty();  // final unterminated line still counts
}

}  // namespace

/// Reads requests from `in` until EOF or {"cmd":"quit"}, submitting
/// jobs asynchronously; responses are written (mutex-serialized, one
/// line each, flushed) as jobs complete. Returns once every submitted
/// job has been answered. Malformed lines produce one structured error
/// response each and never abort the stream. `tracer` answers
/// {"cmd":"trace"} (null = tracing disabled, a structured error).
/// {"cmd":"shutdown"} on a plain stream is the same as quit.
void serve_ndjson_stream(Service& service, Tracer* tracer, std::istream& in,
                         std::ostream& out) {
  std::mutex out_mutex;
  // Guarded by done_mutex (including the completion callbacks'
  // decrement) so the final wait below cannot observe 0 and destroy
  // the mutex/cv while a worker is still mid-notify.
  long long outstanding = 0;
  std::mutex done_mutex;
  std::condition_variable done_cv;

  const auto respond = [&](const JsonValue& response) {
    const std::lock_guard<std::mutex> lock(out_mutex);
    response.write(out);
    out << '\n';
    out.flush();
  };

  std::string line;
  bool overflow = false;
  while (read_request_line(in, line, &overflow)) {
    if (overflow) {
      respond(invalid_request_json(
          "request line exceeds " + std::to_string(kMaxRequestLine) +
          " bytes"));
      continue;
    }
    if (trim(line).empty()) {
      continue;
    }
    ServeRequest request;
    try {
      request = parse_serve_request(line);
    } catch (const std::exception& e) {
      respond(invalid_request_json(e.what(), extract_request_id(line)));
      continue;
    }
    if (request.kind == ServeRequest::Kind::kQuit ||
        request.kind == ServeRequest::Kind::kShutdown) {
      break;
    }
    if (request.kind == ServeRequest::Kind::kMetrics) {
      respond(service.metrics_snapshot());
      continue;
    }
    if (request.kind == ServeRequest::Kind::kSnapshot) {
      // A snapshot is a barrier: it must reflect every job already
      // submitted on this stream, so drain in-flight work first.
      {
        std::unique_lock<std::mutex> lock(done_mutex);
        done_cv.wait(lock, [&] { return outstanding == 0; });
      }
      try {
        const std::vector<CacheExportEntry> entries = service.snapshot_cache();
        net::save_cache_snapshot(request.path, entries);
        JsonValue ok = JsonValue::object();
        ok.set("status", "ok");
        ok.set("cmd", "snapshot");
        ok.set("path", request.path);
        ok.set("entries", static_cast<long long>(entries.size()));
        respond(ok);
      } catch (const std::exception& e) {
        respond(invalid_request_json(e.what()));
      }
      continue;
    }
    if (request.kind == ServeRequest::Kind::kTrace) {
      if (tracer == nullptr) {
        respond(invalid_request_json(
            "tracing is not enabled; restart cvserve with --trace"));
      } else {
        respond(chrome_trace_json(tracer->drain(), tracer->dropped()));
      }
      continue;
    }
    {
      const std::lock_guard<std::mutex> lock(done_mutex);
      ++outstanding;
    }
    service.submit(std::move(request.job), [&](BindOutcome outcome) {
      respond(outcome_to_json(outcome));
      // Decrement and notify under the mutex: once the waiter sees 0
      // it holds done_mutex, which proves this callback has released
      // it, so serve_stream's locals are safe to destroy.
      const std::lock_guard<std::mutex> lock(done_mutex);
      if (--outstanding == 0) {
        done_cv.notify_all();
      }
    });
  }
  std::unique_lock<std::mutex> lock(done_mutex);
  done_cv.wait(lock, [&] { return outstanding == 0; });
}

#ifdef CVB_HAVE_UNIX_SOCKETS

namespace {

/// Minimal read/write streambuf over a POSIX file descriptor, so the
/// blocking socket transport reuses the exact same serve_ndjson_stream
/// loop as stdio.
class FdStreambuf : public std::streambuf {
 public:
  explicit FdStreambuf(int fd) : fd_(fd) {
    setg(in_buf_, in_buf_, in_buf_);
  }

 protected:
  // All three primitives retry EINTR: a signal mid-read/-write is not
  // end-of-stream, and a false EOF here silently drops the rest of a
  // client's session.
  int underflow() override {
    ssize_t n;
    do {
      n = ::read(fd_, in_buf_, sizeof in_buf_);
    } while (n < 0 && errno == EINTR);
    if (n <= 0) {
      return traits_type::eof();
    }
    setg(in_buf_, in_buf_, in_buf_ + n);
    return traits_type::to_int_type(in_buf_[0]);
  }

  int overflow(int ch) override {
    if (ch != traits_type::eof()) {
      const char byte = static_cast<char>(ch);
      ssize_t n;
      do {
        n = ::write(fd_, &byte, 1);
      } while (n < 0 && errno == EINTR);
      if (n != 1) {
        return traits_type::eof();
      }
    }
    return ch;
  }

  std::streamsize xsputn(const char* data, std::streamsize count) override {
    std::streamsize written = 0;
    while (written < count) {
      const ssize_t n = ::write(fd_, data + written,
                                static_cast<std::size_t>(count - written));
      if (n < 0 && errno == EINTR) {
        continue;
      }
      if (n <= 0) {
        break;
      }
      written += n;
    }
    return written;
  }

 private:
  int fd_;
  char in_buf_[4096];
};

}  // namespace

int serve_socket_blocking(Service& service, Tracer* tracer,
                          const std::string& path, bool once,
                          std::ostream& err) {
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) {
    err << "cvserve: cannot create socket\n";
    return 2;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    err << "cvserve: socket path too long\n";
    ::close(listener);
    return 1;
  }
  path.copy(addr.sun_path, path.size());
  ::unlink(path.c_str());
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listener, 8) != 0) {
    err << "cvserve: cannot bind/listen on '" << path << "'\n";
    ::close(listener);
    return 2;
  }
  while (true) {
    const int conn = ::accept(listener, nullptr, nullptr);
    if (conn < 0) {
      break;
    }
    FdStreambuf buf_in(conn);
    FdStreambuf buf_out(conn);
    std::istream in(&buf_in);
    std::ostream out(&buf_out);
    serve_ndjson_stream(service, tracer, in, out);
    ::close(conn);
    if (once) {
      break;
    }
  }
  ::close(listener);
  ::unlink(path.c_str());
  return 0;
}

#endif  // CVB_HAVE_UNIX_SOCKETS

namespace {

/// Writes `text` to `path` ('-' = `out`). Returns false (after a
/// message on `err`) when the file cannot be opened.
bool write_text_output(const std::string& path, const std::string& text,
                       std::ostream& out, std::ostream& err) {
  if (path == "-") {
    out << text;
    return true;
  }
  std::ofstream file(path);
  if (!file) {
    err << "cvserve: cannot write '" << path << "'\n";
    return false;
  }
  file << text;
  return true;
}

}  // namespace

int run_serve_cli(const std::vector<std::string>& args, std::istream& in,
                  std::ostream& out, std::ostream& err) {
  ServeOptions opts;
  try {
    opts = parse_serve_args(args);
  } catch (const std::invalid_argument& e) {
    err << "cvserve: " << e.what() << "\n\n" << serve_cli_usage();
    return 1;
  }
  if (opts.help) {
    out << serve_cli_usage();
    return 0;
  }
  try {
    arm_injection_flags("cvserve", opts.injects, opts.inject_seed, err);
  } catch (const std::invalid_argument& e) {
    err << "cvserve: " << e.what() << '\n';
    return 1;
  }

  Tracer tracer;
  const bool tracing = opts.trace || !opts.trace_out.empty();
  Tracer* trace_ptr = tracing ? &tracer : nullptr;
  opts.service.tracer = trace_ptr;

  Service service(opts.service);
  if (!opts.warm_start.empty()) {
    // Warm-start is crash-only (DESIGN §3.13): the snapshot is an
    // optimization, so a missing/torn/corrupt file degrades to a cold
    // cache with a structured warning — it must never abort startup.
    const auto warn = [&](const std::string& error, long long salvaged,
                          bool transient) {
      JsonValue warning = JsonValue::object();
      warning.set("status", "warning");
      warning.set("cmd", "warm-start");
      warning.set("path", opts.warm_start);
      if (transient) {
        warning.set("fault_class", "transient");
      }
      warning.set("error", error);
      warning.set("salvaged", salvaged);
      warning.write(err);
      err << '\n';
    };
    try {
      net::SnapshotRestore restored =
          net::restore_cache_snapshot_file(opts.warm_start);
      if (!restored.complete) {
        warn(restored.warning,
             static_cast<long long>(restored.entries.size()), false);
      }
      const std::size_t accepted =
          service.warm_start(std::move(restored.entries));
      err << "cvserve: warm-start: " << accepted << " cache entries from '"
          << opts.warm_start << "'\n";
    } catch (const std::exception& e) {
      warn(e.what(), 0, true);
      err << "cvserve: warm-start: continuing with a cold cache\n";
    }
  }

  // Periodic crash-safe persistence: a background thread snapshots the
  // eval cache every N seconds (atomic tmp + fsync + rename, so a
  // crash mid-save leaves the previous good file) plus once at exit.
  const std::string snap_path =
      opts.snapshot_path.empty() ? opts.warm_start : opts.snapshot_path;
  std::mutex snap_mutex;
  std::condition_variable snap_cv;
  bool snap_stop = false;
  std::thread snap_thread;
  if (opts.snapshot_every_s > 0) {
    if (snap_path.empty()) {
      err << "cvserve: --snapshot-every-s needs --snapshot-path or "
             "--warm-start\n";
      return 1;
    }
    snap_thread = std::thread([&] {
      std::unique_lock<std::mutex> lock(snap_mutex);
      while (!snap_cv.wait_for(lock,
                               std::chrono::seconds(opts.snapshot_every_s),
                               [&] { return snap_stop; })) {
        lock.unlock();
        try {
          net::save_cache_snapshot(snap_path, service.snapshot_cache());
        } catch (const std::exception&) {
          // Best-effort: a disk hiccup must not kill the serving path;
          // the next tick (and the exit save) retry.
        }
        lock.lock();
      }
    });
  }
  int rc = 0;
  if (!opts.socket_path.empty()) {
#if defined(CVB_HAVE_EPOLL)
    net::NetServerOptions net_opts;
    net_opts.socket_path = opts.socket_path;
    net_opts.once = opts.once;
    net_opts.write_budget_bytes = opts.write_budget;
    net_opts.tracer = trace_ptr;
    net::NetServer server(service, net_opts);
    rc = server.run(err);
#elif defined(CVB_HAVE_UNIX_SOCKETS)
    rc = serve_socket_blocking(service, trace_ptr, opts.socket_path,
                               opts.once, err);
#else
    err << "cvserve: --socket is not supported on this platform\n";
    return 1;
#endif
  } else {
    serve_ndjson_stream(service, trace_ptr, in, out);
  }

  if (snap_thread.joinable()) {
    {
      const std::lock_guard<std::mutex> lock(snap_mutex);
      snap_stop = true;
    }
    snap_cv.notify_all();
    snap_thread.join();
    try {
      net::save_cache_snapshot(snap_path, service.snapshot_cache());
    } catch (const std::exception& e) {
      err << "cvserve: snapshot: " << e.what() << '\n';
    }
  }

  // Exit-time exports. The service is still alive (workers idle), so
  // both reads are race-free and complete.
  if (!opts.trace_out.empty()) {
    std::ostringstream text;
    write_chrome_trace(text, tracer.drain(), tracer.dropped());
    if (!write_text_output(opts.trace_out, text.str(), out, err) &&
        rc == 0) {
      rc = 1;
    }
  }
  if (!opts.metrics_text.empty()) {
    if (!write_text_output(opts.metrics_text, service.prometheus_text(), out,
                           err) &&
        rc == 0) {
      rc = 1;
    }
  }
  return rc;
}

}  // namespace cvb
