#include "api/api.hpp"

#include <memory>
#include <stdexcept>
#include <utility>

#include "baselines/annealing.hpp"
#include "baselines/mincut.hpp"
#include "bind/driver.hpp"
#include "bind/exhaustive.hpp"
#include "pcc/pcc.hpp"
#include "sched/verifier.hpp"
#include "support/trace.hpp"

namespace cvb {

namespace {

/// Algorithm dispatch: request fields -> internal option structs ->
/// BindResult. Throws; run_bind_request owns the typed-status ladder.
BindResult dispatch(const BindRequest& request, const RequestContext& ctx,
                    EvalEngine& engine) {
  ListSchedulerOptions sched;
  sched.step_budget = request.step_budget;
  sched.tracer = ctx.tracer;

  if (request.algorithm == "b-iter" || request.algorithm == "b-init") {
    DriverParams params = driver_params_for(request.effort);
    params.engine = &engine;
    params.cancel = ctx.cancel;
    params.sched = sched;
    if (request.algorithm == "b-init") {
      params.run_iterative = false;
      return bind_initial_best(request.dfg, request.datapath, params);
    }
    return bind_full(request.dfg, request.datapath, params);
  }
  if (request.algorithm == "pcc") {
    PccParams params;
    params.cancel = ctx.cancel;
    params.step_budget = request.step_budget;
    params.tracer = ctx.tracer;
    return pcc_binding(request.dfg, request.datapath, params, nullptr,
                       &engine);
  }

  const bool known = request.algorithm == "sa" ||
                     request.algorithm == "mincut" ||
                     request.algorithm == "exhaustive";
  if (!known) {
    throw std::invalid_argument("unknown algorithm '" + request.algorithm +
                                "'");
  }
  // The baselines below run to completion without cancellation
  // polling: a deadline could never fire mid-run, which would silently
  // break the deadline contract, so deadline tokens are rejected. A
  // manual-only token (what cvb::Service arms when no deadline is
  // configured) is fine — run_bind_request polls its cancel flag after
  // the run and reports kCancelled with the completed result.
  if (ctx.cancel.has_deadline()) {
    throw std::invalid_argument("algorithm '" + request.algorithm +
                                "' does not support deadlines");
  }
  if (request.algorithm == "sa") {
    AnnealingParams params;
    params.seed = request.seed;
    return annealing_binding(request.dfg, request.datapath, params);
  }
  if (request.algorithm == "mincut") {
    return mincut_binding(request.dfg, request.datapath);
  }
  return exhaustive_binding(request.dfg, request.datapath);
}

}  // namespace

BindResponse run_bind_request(const BindRequest& request,
                              const RequestContext& ctx, EvalEngine* engine) {
  BindResponse response;
  response.id = request.id;

  std::unique_ptr<EvalEngine> private_engine;
  if (engine == nullptr) {
    EvalEngineOptions engine_opts;
    engine_opts.num_threads = request.num_threads;
    private_engine = std::make_unique<EvalEngine>(engine_opts);
    engine = private_engine.get();
  }
  response.eval_threads = engine->num_threads();
  const EvalStats before = engine->stats();

  ScopedSpan span(ctx.tracer, "bind.request");
  if (span.enabled()) {
    span.attr("algorithm", request.algorithm);
    span.attr("effort", to_string(request.effort));
    if (!request.id.empty()) {
      span.attr("id", request.id);
    }
  }

  BindResult result;
  bool dispatched = false;
  try {
    result = dispatch(request, ctx, *engine);
    dispatched = true;
  } catch (const FaultInjectedError& e) {
    // The injection site declares its own class — trust it, so chaos
    // runs exercise exactly the recovery path they intend to.
    response.status = BindStatus::kInternalError;
    response.fault = e.fault_class();
    response.error = e.what();
    response.injected = true;
  } catch (const ResourceLimitError& e) {
    // The input blew a configured guard: deterministic, never retried.
    response.status = BindStatus::kInvalidRequest;
    response.fault = FaultClass::kPoison;
    response.error = e.what();
  } catch (const std::invalid_argument& e) {
    response.status = BindStatus::kInvalidRequest;
    response.fault = FaultClass::kPoison;
    response.error = e.what();
  } catch (const std::logic_error& e) {
    response.status = BindStatus::kInternalError;
    response.fault = FaultClass::kFatal;
    response.error = e.what();
  } catch (const std::exception& e) {
    response.status = BindStatus::kInternalError;
    response.fault = FaultClass::kTransient;
    response.error = e.what();
  }

  if (dispatched) {
    // Every result leaving the api is re-verified: a scheduler or
    // cancellation bug degrades to a typed internal error, never to a
    // silently illegal binding.
    if (const std::string verr =
            verify_schedule(result.bound, request.datapath, result.schedule);
        !verr.empty()) {
      response.status = BindStatus::kInternalError;
      response.fault = FaultClass::kFatal;
      response.error = "illegal schedule: " + verr;
    } else {
      response.binding = std::move(result.binding);
      response.latency = result.schedule.latency;
      response.moves = result.schedule.num_moves;
      response.bound = std::move(result.bound);
      response.schedule = std::move(result.schedule);
      if (ctx.cancel.cancelled()) {
        response.status = BindStatus::kCancelled;
      } else if (ctx.cancel.deadline_expired()) {
        response.status = BindStatus::kDeadlineExceeded;
      } else {
        response.status = BindStatus::kOk;
      }
    }
  }

  response.eval_stats = engine->stats().since(before);
  if (span.enabled()) {
    span.attr("status", to_string(response.status));
    span.attr("latency", response.latency);
    span.attr("moves", response.moves);
    span.attr("candidates", response.eval_stats.candidates);
    span.attr("cache_hits", response.eval_stats.cache_hits);
  }
  return response;
}

JsonValue eval_stats_to_json(const EvalStats& stats, int num_threads) {
  JsonValue out = JsonValue::object();
  out.set("threads", num_threads);
  out.set("candidates", stats.candidates);
  out.set("batches", stats.batches);
  out.set("cache_hits", stats.cache_hits);
  out.set("l1_hits", stats.l1_hits);
  out.set("batch_dedup", stats.batch_dedup);
  out.set("cache_misses", stats.cache_misses);
  out.set("cache_evictions", stats.cache_evictions);
  out.set("cache_collisions", stats.cache_collisions);
  out.set("cache_contended", stats.cache_contended);
  out.set("cache_hit_rate",
          stats.candidates > 0
              ? static_cast<double>(stats.cache_hits) /
                    static_cast<double>(stats.candidates)
              : 0.0);
  out.set("improver_candidates", stats.improver_candidates);
  out.set("pcc_candidates", stats.pcc_candidates);
  out.set("explore_jobs", stats.explore_jobs);
  out.set("eval_ms", stats.eval_ms);
  return out;
}

}  // namespace cvb
