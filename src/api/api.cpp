#include "api/api.hpp"

#include <memory>
#include <stdexcept>
#include <utility>

#include "baselines/annealing.hpp"
#include "baselines/mincut.hpp"
#include "bind/driver.hpp"
#include "bind/exhaustive.hpp"
#include "bind/portfolio.hpp"
#include "pcc/pcc.hpp"
#include "sched/verifier.hpp"
#include "support/trace.hpp"

namespace cvb {

namespace {

/// Strategy dispatch: the typed request -> internal option structs ->
/// BindResult. Throws; run_bind_request owns the typed-status ladder.
/// Portfolio requests fan out through run_portfolio and fill
/// `portfolio_stats`; direct requests leave it untouched.
BindResult dispatch(const BindRequest& request, const RequestContext& ctx,
                    EvalEngine& engine, std::uint64_t parent_span,
                    PortfolioStats* portfolio_stats) {
  ListSchedulerOptions sched;
  sched.step_budget = request.step_budget;
  sched.tracer = ctx.tracer;

  if (!request.portfolio.empty()) {
    PortfolioOptions opts;
    opts.strategies = request.portfolio;
    opts.policy = request.portfolio_policy;
    opts.cancel = ctx.cancel;
    opts.tracer = ctx.tracer;
    opts.parent_span = parent_span;
    opts.sched = sched;
    opts.engine = &engine;
    PortfolioOutcome outcome =
        run_portfolio(request.dfg, request.datapath, opts);
    *portfolio_stats = std::move(outcome.stats);
    return std::move(outcome.best);
  }

  const StrategySpec& spec = request.strategy;
  switch (spec.kind) {
    case StrategyKind::kBIter:
    case StrategyKind::kBInit: {
      DriverParams params = driver_params_for(spec.effort);
      params.engine = &engine;
      params.cancel = ctx.cancel;
      params.sched = sched;
      if (spec.kind == StrategyKind::kBInit) {
        params.run_iterative = false;
        return bind_initial_best(request.dfg, request.datapath, params);
      }
      return bind_full(request.dfg, request.datapath, params);
    }
    case StrategyKind::kPcc: {
      PccParams params;
      params.cancel = ctx.cancel;
      params.step_budget = request.step_budget;
      params.tracer = ctx.tracer;
      return pcc_binding(request.dfg, request.datapath, params, nullptr,
                         &engine);
    }
    case StrategyKind::kSa:
    case StrategyKind::kMinCut:
    case StrategyKind::kExhaustive:
      break;  // the run-to-completion baselines, handled below
  }

  // The baselines run to completion without cancellation polling: a
  // deadline could never fire mid-run, which would silently break the
  // deadline contract, so deadline tokens are rejected on the direct
  // path (portfolio mode instead late-filters baseline results —
  // bind/portfolio.hpp). A manual-only token (what cvb::Service arms
  // when no deadline is configured) is fine — run_bind_request polls
  // its cancel flag after the run and reports kCancelled with the
  // completed result.
  if (ctx.cancel.has_deadline()) {
    throw std::invalid_argument(
        "strategy '" + std::string(spec.name()) +
        "' does not support deadlines (race it in a portfolio instead)");
  }
  if (spec.kind == StrategyKind::kSa) {
    AnnealingParams params;
    params.seed = spec.seed;
    return annealing_binding(request.dfg, request.datapath, params);
  }
  if (spec.kind == StrategyKind::kMinCut) {
    return mincut_binding(request.dfg, request.datapath);
  }
  return exhaustive_binding(request.dfg, request.datapath);
}

}  // namespace

BindResponse run_bind_request(const BindRequest& request,
                              const RequestContext& ctx, EvalEngine* engine) {
  BindResponse response;
  response.id = request.id;

  std::unique_ptr<EvalEngine> private_engine;
  if (engine == nullptr) {
    EvalEngineOptions engine_opts;
    engine_opts.num_threads = request.num_threads;
    private_engine = std::make_unique<EvalEngine>(engine_opts);
    engine = private_engine.get();
  }
  response.eval_threads = engine->num_threads();
  const EvalStats before = engine->stats();

  ScopedSpan span(ctx.tracer, "bind.request");
  if (span.enabled()) {
    span.attr("strategy",
              strategy_set_label(request.strategy, request.portfolio));
    span.attr("effort", to_string(request.strategy.effort));
    if (!request.id.empty()) {
      span.attr("id", request.id);
    }
  }

  BindResult result;
  bool dispatched = false;
  try {
    result = dispatch(request, ctx, *engine, span.id(), &response.portfolio);
    dispatched = true;
  } catch (const FaultInjectedError& e) {
    // The injection site declares its own class — trust it, so chaos
    // runs exercise exactly the recovery path they intend to.
    response.status = BindStatus::kInternalError;
    response.fault = e.fault_class();
    response.error = e.what();
    response.injected = true;
  } catch (const ResourceLimitError& e) {
    // The input blew a configured guard: deterministic, never retried.
    response.status = BindStatus::kInvalidRequest;
    response.fault = FaultClass::kPoison;
    response.error = e.what();
  } catch (const std::invalid_argument& e) {
    response.status = BindStatus::kInvalidRequest;
    response.fault = FaultClass::kPoison;
    response.error = e.what();
  } catch (const std::logic_error& e) {
    response.status = BindStatus::kInternalError;
    response.fault = FaultClass::kFatal;
    response.error = e.what();
  } catch (const std::exception& e) {
    response.status = BindStatus::kInternalError;
    response.fault = FaultClass::kTransient;
    response.error = e.what();
  }

  if (dispatched) {
    // Every result leaving the api is re-verified: a scheduler or
    // cancellation bug degrades to a typed internal error, never to a
    // silently illegal binding.
    if (const std::string verr =
            verify_schedule(result.bound, request.datapath, result.schedule);
        !verr.empty()) {
      response.status = BindStatus::kInternalError;
      response.fault = FaultClass::kFatal;
      response.error = "illegal schedule: " + verr;
    } else {
      response.binding = std::move(result.binding);
      response.latency = result.schedule.latency;
      response.moves = result.schedule.num_moves;
      response.bound = std::move(result.bound);
      response.schedule = std::move(result.schedule);
      if (ctx.cancel.cancelled()) {
        response.status = BindStatus::kCancelled;
      } else if (ctx.cancel.deadline_expired()) {
        response.status = BindStatus::kDeadlineExceeded;
      } else {
        response.status = BindStatus::kOk;
      }
    }
  }

  response.eval_stats = engine->stats().since(before);
  if (span.enabled()) {
    span.attr("status", to_string(response.status));
    span.attr("latency", response.latency);
    span.attr("moves", response.moves);
    span.attr("candidates", response.eval_stats.candidates);
    span.attr("cache_hits", response.eval_stats.cache_hits);
    if (response.portfolio.ran()) {
      span.attr("portfolio_winner",
                response.portfolio.winner >= 0
                    ? response.portfolio
                          .strategies[static_cast<std::size_t>(
                              response.portfolio.winner)]
                          .spec.name()
                    : "none");
      span.attr("portfolio_exchanges", response.portfolio.exchanges);
      span.attr("portfolio_rounds", response.portfolio.rounds);
    }
  }
  return response;
}

JsonValue portfolio_stats_to_json(const PortfolioStats& stats) {
  JsonValue out = JsonValue::object();
  out.set("winner", stats.winner >= 0
                        ? std::string(stats.strategies[static_cast<std::size_t>(
                                                           stats.winner)]
                                          .spec.name())
                        : std::string());
  out.set("rounds", stats.rounds);
  out.set("exchanges", stats.exchanges);
  out.set("ms", stats.ms);
  JsonValue strategies = JsonValue::array();
  for (const StrategyAttribution& at : stats.strategies) {
    JsonValue s = JsonValue::object();
    s.set("strategy", std::string(at.spec.name()));
    s.set("effort", to_string(at.spec.effort));
    s.set("seed", static_cast<long long>(at.spec.seed));
    s.set("latency", at.latency);
    s.set("moves", at.moves);
    s.set("evals", at.evals);
    s.set("cache_hits", at.cache_hits);
    s.set("improvements", at.improvements);
    s.set("restarts", at.restarts);
    s.set("time_to_best_ms", at.time_to_best_ms);
    s.set("run_ms", at.run_ms);
    s.set("winner", at.winner);
    if (at.dropped) {
      s.set("dropped", true);
      s.set("injected", at.injected);
      s.set("fault", to_string(at.fault));
      s.set("error", at.error);
    }
    if (at.late) {
      s.set("late", true);
    }
    strategies.push_back(std::move(s));
  }
  out.set("strategies", std::move(strategies));
  return out;
}

JsonValue eval_stats_to_json(const EvalStats& stats, int num_threads) {
  JsonValue out = JsonValue::object();
  out.set("threads", num_threads);
  out.set("candidates", stats.candidates);
  out.set("batches", stats.batches);
  out.set("cache_hits", stats.cache_hits);
  out.set("l1_hits", stats.l1_hits);
  out.set("batch_dedup", stats.batch_dedup);
  out.set("cache_misses", stats.cache_misses);
  out.set("cache_evictions", stats.cache_evictions);
  out.set("cache_collisions", stats.cache_collisions);
  out.set("cache_contended", stats.cache_contended);
  out.set("cache_hit_rate",
          stats.candidates > 0
              ? static_cast<double>(stats.cache_hits) /
                    static_cast<double>(stats.candidates)
              : 0.0);
  out.set("improver_candidates", stats.improver_candidates);
  out.set("pcc_candidates", stats.pcc_candidates);
  out.set("explore_jobs", stats.explore_jobs);
  out.set("eval_ms", stats.eval_ms);
  return out;
}

}  // namespace cvb
