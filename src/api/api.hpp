// cvb::api — the one documented entry point for executing a binding
// request.
//
// run_bind_request is the execution core shared by every front-end:
// cvb::Service workers (via the resilience wrapper), `cvbind`, and
// `cvserve` all funnel through it, so algorithm dispatch, the
// exception -> BindStatus/FaultClass ladder, schedule re-verification,
// and anytime deadline tagging behave identically everywhere. The
// internal option structs (DriverParams, IterImproverParams,
// InitialBinderParams, EvalEngineOptions) are constructed here from
// the request's effort preset and budgets; front-ends never touch
// them.
//
// Tracing: when RequestContext::tracer is set, the request runs under
// a root "bind.request" span and every layer below it — B-INIT sweep
// candidates, B-ITER rounds, evaluation batches, individual list-
// scheduler invocations — records child spans (DESIGN.md §3.10).
#pragma once

#include "api/request.hpp"
#include "api/response.hpp"
#include "support/json.hpp"

namespace cvb {

class EvalEngine;

/// Historical spellings: the service's job/outcome types are the api
/// types (field-layout compatible with the pre-api structs).
using BindJob = BindRequest;
using BindOutcome = BindResponse;

/// Executes one request synchronously. Never throws for request-level
/// failures: invalid algorithms, resource-guard overruns, injected
/// faults, and scheduler bugs all come back as typed statuses with a
/// FaultClass. `engine` is the shared candidate-evaluation engine to
/// use; null means a private engine with `request.num_threads` workers
/// is created for this call. The response's binding/schedule have been
/// re-verified whenever has_result(status).
[[nodiscard]] BindResponse run_bind_request(const BindRequest& request,
                                            const RequestContext& ctx,
                                            EvalEngine* engine = nullptr);

/// Machine-readable form of the evaluation-engine counters — shared by
/// the service metrics snapshot, the NDJSON protocol, and
/// `cvbind --stats-json`.
[[nodiscard]] JsonValue eval_stats_to_json(const EvalStats& stats,
                                           int num_threads);

/// Machine-readable per-strategy race attribution (winner, rounds,
/// exchanges, and one entry per strategy) — surfaced by
/// `cvbind --stats-json` and the NDJSON protocol for portfolio
/// requests. Wall-clock fields (ms, time_to_best_ms, run_ms) are the
/// only nondeterministic members.
[[nodiscard]] JsonValue portfolio_stats_to_json(const PortfolioStats& stats);

}  // namespace cvb
