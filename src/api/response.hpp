// cvb::BindResponse — the public result of one binding request.
//
// `binding` / `latency` / `moves` (and the full `bound` / `schedule`
// pair for presentation layers) are meaningful when
// has_result(status): kOk, kDegraded, or kDeadlineExceeded with the
// verifier-clean best-so-far binding. Every response leaving
// run_bind_request has been re-verified — there is no status under
// which an illegal schedule is returned.
#pragma once

#include <string>

#include "bind/binding.hpp"
#include "bind/bound_dfg.hpp"
#include "bind/eval_engine.hpp"
#include "bind/portfolio.hpp"
#include "sched/schedule.hpp"
#include "service/status.hpp"
#include "support/fault.hpp"

namespace cvb {

/// One binding response. The first ten fields are the service's
/// historical BindOutcome layout (service/service.hpp aliases
/// BindOutcome to this type).
struct BindResponse {
  std::string id;
  BindStatus status = BindStatus::kInternalError;
  std::string error;  ///< diagnostic for invalid/internal/shed outcomes
  Binding binding;
  int latency = 0;
  int moves = 0;
  double queue_ms = 0.0;  ///< submission -> start of execution (service)
  double run_ms = 0.0;    ///< execution wall time (service)
  /// Failure classification for kInvalidRequest / kInternalError
  /// responses (kNone otherwise) — drives retry and quarantine.
  FaultClass fault = FaultClass::kNone;
  /// Execution attempts consumed (> 1 after transient retries).
  int attempts = 1;

  // --- fields beyond the historical BindOutcome layout ---

  /// The bound graph (original ops + inserted moves) and its verified
  /// schedule; empty unless has_result(status).
  BoundDfg bound;
  Schedule schedule;
  /// Evaluation-engine counters for this request (candidates,
  /// schedule-cache hits, eval wall time), measured as a before/after
  /// delta on the serving engine. Exact for a private engine or a
  /// single-worker service; with several workers sharing one engine,
  /// concurrently running requests' work lands in whichever deltas
  /// overlap them, so treat the numbers as approximate attribution.
  EvalStats eval_stats;
  /// Threads of the engine that served the request.
  int eval_threads = 1;
  /// True when the failure came from an armed fault-injection site
  /// (chaos testing) rather than organic code paths.
  bool injected = false;
  /// Per-strategy race attribution; portfolio.ran() is false (and the
  /// struct empty) for direct single-strategy requests.
  PortfolioStats portfolio;
};

}  // namespace cvb
