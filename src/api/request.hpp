// cvb::BindRequest / cvb::RequestContext — the public description of
// one binding request.
//
// Everything a caller can ask of the binder is expressed here; the
// internal tuning structs (DriverParams, IterImproverParams,
// InitialBinderParams, EvalEngineOptions) are derived from these
// fields by the api layer and are an implementation detail. `cvbind`,
// `cvserve`, and cvb::Service all build one of these and hand it to
// run_bind_request (api/api.hpp).
//
// The request (BindRequest) is the *what*: graph, machine, strategy,
// budgets. The context (RequestContext) is the *how* of this
// particular execution: cancellation/deadline token, tracer, fault
// injector — the cross-cutting plumbing that previously travelled as
// five parallel parameters.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bind/strategy.hpp"
#include "graph/dfg.hpp"
#include "machine/datapath.hpp"
#include "machine/parser.hpp"
#include "support/cancel.hpp"

namespace cvb {

class Tracer;
class FaultInjector;

/// Cross-cutting execution context for one request. Copyable and
/// cheap; default-constructed means "no deadline, no tracing, default
/// injection".
struct RequestContext {
  /// Cooperative cancellation / deadline token. Armed tokens make
  /// b-iter / b-init / pcc anytime (best verified result so far).
  /// The baselines (sa | mincut | exhaustive) never poll mid-run: on
  /// the direct path deadline tokens are rejected as invalid requests,
  /// while manual cancellation is honoured after the run completes
  /// (kCancelled with the finished result). Portfolio requests accept
  /// deadlines regardless of membership — baseline members run to
  /// completion and their results are simply ignored when they land
  /// after the deadline (bind/portfolio.hpp).
  CancelToken cancel;
  /// Span recorder for this request (support/trace.hpp); null =
  /// tracing off, with a strictly one-branch fast path everywhere.
  Tracer* tracer = nullptr;
  /// The fault injector armed for this request, recorded so service
  /// layers can rearm or introspect it. Injection *sites* always
  /// consult FaultInjector::global(); null simply means the caller did
  /// not arm anything.
  FaultInjector* injector = nullptr;
};

/// One binding request. The service aliases BindJob to this type
/// (service/service.hpp); `cvbind`, `cvserve`, and cvb::Service all
/// build one and hand it to run_bind_request.
struct BindRequest {
  std::string id;  ///< echoed in the response ("" = service auto-id)
  Dfg dfg;
  Datapath datapath = parse_datapath("[1,1|1,1]");
  /// The strategy for direct (single-binder) execution — the typed
  /// replacement for the old `algorithm` string; effort preset and
  /// baseline seed live inside the spec. Ignored when `portfolio` is
  /// non-empty.
  StrategySpec strategy;
  /// Non-empty = portfolio mode: race these strategies concurrently
  /// with incumbent exchange through the shared eval cache
  /// (bind/portfolio.hpp). A one-element portfolio is bit-identical
  /// to the direct path for that spec.
  std::vector<StrategySpec> portfolio;
  /// Racing knobs for portfolio mode (ignored otherwise).
  PortfolioPolicy portfolio_policy;
  /// Set by the parse layers (protocol/CLI) when the caller explicitly
  /// chose a strategy or portfolio; requests that left the default in
  /// place may have a service-level default portfolio applied
  /// (ServiceOptions::default_portfolio).
  bool strategy_explicit = false;
  /// Admission-level deadline used by cvb::Service (0 = service
  /// default). Synchronous callers arm RequestContext::cancel instead.
  double deadline_ms = 0.0;
  /// Scheduler step budget; 0 = caller default (service: resilience
  /// policy). Overruns fail typed as poison.
  long long step_budget = 0;
  /// Candidate-evaluation threads when the api creates a private
  /// engine (ignored when the caller supplies a shared one). Results
  /// are identical for any thread count.
  int num_threads = 1;
};

}  // namespace cvb
