#include <stdexcept>
#include <vector>

#include "graph/builder.hpp"
#include "kernels/kernels.hpp"

namespace cvb {

// Extended kernels beyond the paper's suite — used by the generality
// bench and available through the library API. All are realistic
// media/DSP basic blocks with the same two-operand arithmetic model.

Dfg make_matmul(int n) {
  if (n < 1) {
    throw std::invalid_argument("make_matmul: n must be >= 1");
  }
  DfgBuilder b;
  // C = A * B, fully unrolled: n*n dot products of length n
  // (n^3 multiplies, n^2*(n-1) adds in balanced reduction trees).
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      std::vector<Value> terms;
      terms.reserve(static_cast<std::size_t>(n));
      for (int k = 0; k < n; ++k) {
        terms.push_back(b.mul(b.input(), b.input(),
                              "m" + std::to_string(i) + std::to_string(j) +
                                  std::to_string(k)));
      }
      // Balanced reduction tree.
      while (terms.size() > 1) {
        std::vector<Value> next;
        for (std::size_t t = 0; t + 1 < terms.size(); t += 2) {
          next.push_back(b.add(terms[t], terms[t + 1]));
        }
        if (terms.size() % 2 == 1) {
          next.push_back(terms.back());
        }
        terms = std::move(next);
      }
    }
  }
  return std::move(b).take();
}

Dfg make_horner(int degree) {
  if (degree < 1) {
    throw std::invalid_argument("make_horner: degree must be >= 1");
  }
  DfgBuilder b;
  // p(x) = (((c_n x + c_{n-1}) x + ...) x + c_0: strictly serial
  // mul/add chain — the worst case for clustering (no parallelism).
  Value acc = b.cmul(b.input(), "h0");
  for (int i = 0; i < degree; ++i) {
    acc = b.add(acc, b.input(), "a" + std::to_string(i));
    if (i + 1 < degree) {
      acc = b.cmul(acc, "h" + std::to_string(i + 1));
    }
  }
  return std::move(b).take();
}

Dfg make_fft_radix4() {
  DfgBuilder b;
  // One radix-4 complex butterfly with three twiddle factors:
  // 12 multiplies + 22 adds/subs, depth 4 — a denser, shallower kernel
  // than the paper's radix-2 FFT.
  struct Complex {
    Value re, im;
  };
  const auto cmul_tw = [&](Complex x, const std::string& tag) {
    const Value a = b.cmul(x.re, "twr" + tag);
    const Value c = b.cmul(x.im, "twi" + tag);
    const Value d = b.cmul(x.re, "twj" + tag);
    const Value e = b.cmul(x.im, "twk" + tag);
    return Complex{b.sub(a, c, "tr" + tag), b.add(d, e, "ti" + tag)};
  };
  const Complex x0{b.input(), b.input()};
  const Complex x1{b.input(), b.input()};
  const Complex x2{b.input(), b.input()};
  const Complex x3{b.input(), b.input()};
  const Complex w1 = cmul_tw(x1, "1");
  const Complex w2 = cmul_tw(x2, "2");
  const Complex w3 = cmul_tw(x3, "3");
  // Stage 1: (x0 +/- w2), (w1 +/- w3).
  const Complex a{b.add(x0.re, w2.re, "a_r"), b.add(x0.im, w2.im, "a_i")};
  const Complex s{b.sub(x0.re, w2.re, "s_r"), b.sub(x0.im, w2.im, "s_i")};
  const Complex t{b.add(w1.re, w3.re, "t_r"), b.add(w1.im, w3.im, "t_i")};
  const Complex u{b.sub(w1.re, w3.re, "u_r"), b.sub(w1.im, w3.im, "u_i")};
  // Stage 2: outputs (u rotated by -j for the odd pair).
  (void)b.add(a.re, t.re, "y0_r");
  (void)b.add(a.im, t.im, "y0_i");
  (void)b.sub(a.re, t.re, "y2_r");
  (void)b.sub(a.im, t.im, "y2_i");
  (void)b.add(s.re, u.im, "y1_r");
  (void)b.sub(s.im, u.re, "y1_i");
  (void)b.sub(s.re, u.im, "y3_r");
  (void)b.add(s.im, u.re, "y3_i");
  return std::move(b).take();
}

Dfg make_dct2d_rowcol() {
  // 2x2 separable 2-D transform block: row butterflies, scaling, then
  // column butterflies — a small but genuinely 2-D dependence pattern.
  DfgBuilder b;
  Value r[2][2];
  for (int row = 0; row < 2; ++row) {
    const Value s = b.add(b.input(), b.input(), "rs" + std::to_string(row));
    const Value d = b.sub(b.input(), b.input(), "rd" + std::to_string(row));
    r[row][0] = b.cmul(s, "rm" + std::to_string(row) + "0");
    r[row][1] = b.cmul(d, "rm" + std::to_string(row) + "1");
  }
  for (int col = 0; col < 2; ++col) {
    const Value s = b.add(r[0][col], r[1][col], "cs" + std::to_string(col));
    const Value d = b.sub(r[0][col], r[1][col], "cd" + std::to_string(col));
    (void)b.cmul(s, "cm" + std::to_string(col) + "0");
    (void)b.cmul(d, "cm" + std::to_string(col) + "1");
  }
  return std::move(b).take();
}

}  // namespace cvb
