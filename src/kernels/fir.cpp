#include <stdexcept>

#include "graph/builder.hpp"
#include "kernels/kernels.hpp"

namespace cvb {

Dfg make_fir(int taps) {
  if (taps < 1) {
    throw std::invalid_argument("make_fir: taps must be >= 1");
  }
  DfgBuilder b;
  // y = sum_i c_i * x_i as a multiply bank feeding an accumulate chain
  // (direct-form FIR inner loop, fully unrolled).
  Value acc = b.cmul(b.input(), "m0");
  for (int i = 1; i < taps; ++i) {
    const Value product = b.cmul(b.input(), "m" + std::to_string(i));
    acc = b.add(acc, product, "acc" + std::to_string(i));
  }
  return std::move(b).take();
}

}  // namespace cvb
