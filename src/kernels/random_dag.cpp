#include <stdexcept>
#include <vector>

#include "kernels/kernels.hpp"

namespace cvb {

Dfg make_random_layered(const RandomDagParams& params, Rng& rng) {
  if (params.num_ops < 1) {
    throw std::invalid_argument("make_random_layered: num_ops must be >= 1");
  }
  if (params.num_layers < 1 || params.num_layers > params.num_ops) {
    throw std::invalid_argument(
        "make_random_layered: need 1 <= num_layers <= num_ops");
  }

  Dfg dfg;
  // Assign each op a layer: one op per layer guaranteed (so the depth
  // is exactly num_layers), the rest spread uniformly.
  std::vector<std::vector<OpId>> layers(
      static_cast<std::size_t>(params.num_layers));
  for (int i = 0; i < params.num_ops; ++i) {
    const int layer = (i < params.num_layers)
                          ? i
                          : rng.uniform_int(0, params.num_layers - 1);
    const OpType type =
        rng.chance(params.mul_fraction) ? OpType::kMul : OpType::kAdd;
    const OpId v = dfg.add_op(type);
    layers[static_cast<std::size_t>(layer)].push_back(v);
  }

  for (int layer = 1; layer < params.num_layers; ++layer) {
    const auto& prev = layers[static_cast<std::size_t>(layer - 1)];
    for (const OpId v : layers[static_cast<std::size_t>(layer)]) {
      // First operand: someone from the immediately preceding layer,
      // which pins the op's depth and keeps the graph layered.
      const OpId p =
          prev[static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<int>(prev.size()) - 1))];
      dfg.add_edge(p, v);
      // Optional second operand from any earlier layer.
      if (rng.chance(params.extra_edge_prob)) {
        const int src_layer = rng.uniform_int(0, layer - 1);
        const auto& pool = layers[static_cast<std::size_t>(src_layer)];
        const OpId q = pool[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<int>(pool.size()) - 1))];
        if (!dfg.has_edge(q, v)) {
          dfg.add_edge(q, v);
        }
      }
    }
  }
  return dfg;
}

}  // namespace cvb
