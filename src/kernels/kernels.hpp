// Benchmark dataflow graphs (paper Section 5).
//
// The paper evaluates on basic blocks extracted from DSP codes: an
// elliptic wave filter (EWF), an auto-regression filter (ARF), the FFT
// kernel of MediaBench's RASTA, and several 8-point DCT algorithms from
// Ifeachor & Jervis, plus DCT-DIT-2, a 2x unrolled DCT-DIT. The
// authors' exact netlists were never published, so each generator here
// *reconstructs* the kernel from the published algorithm structure
// (butterfly networks, filter update equations), calibrated to the
// paper's reported graph statistics:
//
//   kernel      N_V   N_CC  L_CP (unit latencies)
//   DCT-DIF      41     2     7
//   DCT-LEE      49     2     9
//   DCT-DIT      48     1     7
//   DCT-DIT-2    96     2     7
//   FFT          38     1     6
//   EWF          34     1    14
//   ARF          28     1     8
//
// (FFT's and EWF's L_CP are not printed in the paper; 6 and 14 are
// inferred — see EXPERIMENTS.md. The binding algorithms consume only
// graph structure, so matching these statistics preserves the
// experimental behaviour the paper reports.) Tests in
// tests/kernels_test.cpp pin every generator to this table.
#pragma once

#include <string>
#include <vector>

#include "graph/dfg.hpp"
#include "support/rng.hpp"

namespace cvb {

/// 5th-order elliptic wave filter: 34 ops (26 add, 8 mul), 1 component,
/// critical path 14.
[[nodiscard]] Dfg make_ewf();

/// Auto-regression (lattice) filter: 28 ops (12 add, 16 mul),
/// 1 component, critical path 8.
[[nodiscard]] Dfg make_arf();

/// Radix-2 complex FFT kernel (RASTA's hot basic block): 38 ops,
/// 1 component, critical path 6.
[[nodiscard]] Dfg make_fft();

/// 8-point DCT, decimation in frequency: 41 ops, 2 components
/// (even/odd halves independent), critical path 7.
[[nodiscard]] Dfg make_dct_dif();

/// 8-point DCT, Lee's algorithm: 49 ops, 2 components, critical path 9.
[[nodiscard]] Dfg make_dct_lee();

/// 8-point DCT, decimation in time: 48 ops, 1 component (the output
/// recombination stage joins both halves), critical path 7.
[[nodiscard]] Dfg make_dct_dit();

/// DCT-DIT unrolled 2x (two independent iterations): 96 ops,
/// 2 components, critical path 7.
[[nodiscard]] Dfg make_dct_dit2();

/// Disjoint-union unrolling: `factor` independent copies of `dfg`
/// (loop iterations with no loop-carried dependencies, the way the
/// paper derives DCT-DIT-2 from DCT-DIT). Requires factor >= 1.
[[nodiscard]] Dfg unroll(const Dfg& dfg, int factor);

/// Direct-form FIR filter with `taps` taps: `taps` multiplies + a chain
/// of `taps - 1` accumulating adds. Used by examples and tests.
/// Requires taps >= 1.
[[nodiscard]] Dfg make_fir(int taps);

/// Fully unrolled n x n matrix multiply: n^3 multiplies feeding n^2
/// balanced reduction trees. Requires n >= 1.
[[nodiscard]] Dfg make_matmul(int n);

/// Horner polynomial evaluation of the given degree: a strictly serial
/// mul/add chain — the adversarial case for clustering. Requires
/// degree >= 1.
[[nodiscard]] Dfg make_horner(int degree);

/// One radix-4 complex FFT butterfly with three twiddle factors:
/// 34 ops, depth 4 — denser and shallower than the paper's radix-2 FFT.
[[nodiscard]] Dfg make_fft_radix4();

/// 2x2 separable 2-D transform block (row pass, scaling, column pass).
[[nodiscard]] Dfg make_dct2d_rowcol();

/// Parameters for the random layered DAG generator (property tests and
/// scaling benches).
struct RandomDagParams {
  int num_ops = 32;          ///< total operations, >= 1
  int num_layers = 6;        ///< depth, >= 1 and <= num_ops
  double mul_fraction = 0.3; ///< share of multiplier ops
  double extra_edge_prob = 0.25;  ///< chance of a second operand edge
};

/// Generates a random layered DAG: every non-first-layer op consumes at
/// least one op from the previous layer (so depth == num_layers) and
/// possibly one more from any earlier layer.
[[nodiscard]] Dfg make_random_layered(const RandomDagParams& params, Rng& rng);

/// One benchmark entry: the graph plus the paper-reported statistics it
/// is calibrated to.
struct BenchmarkKernel {
  std::string name;
  Dfg dfg;
  int paper_nv = 0;   ///< N_V from Table 1 sub-headers
  int paper_ncc = 0;  ///< N_CC from Table 1 sub-headers
  int paper_lcp = 0;  ///< L_CP (Table 1 sub-headers; inferred for FFT/EWF)
};

/// The paper's full benchmark suite in Table 1 order.
[[nodiscard]] std::vector<BenchmarkKernel> benchmark_suite();

/// Looks up one suite entry by name ("EWF", "DCT-DIF", ...). Throws
/// std::invalid_argument for unknown names.
[[nodiscard]] BenchmarkKernel benchmark_by_name(const std::string& name);

}  // namespace cvb
