#include "graph/builder.hpp"
#include "kernels/kernels.hpp"

namespace cvb {

// Auto-regression lattice filter: 28 ops (16 mul, 12 add), single
// component, unit-latency critical path 8 — matching the classic HLS
// ARF benchmark statistics. Two cross-coupled multiply/accumulate
// spines (the lattice recursions) plus reflection-coefficient taps and
// input scaling. Depth annotations give the 1-based ASAP level.
Dfg make_arf() {
  DfgBuilder b;

  // Forward spine: alternating coefficient-multiply / accumulate.
  const Value v1 = b.mul(b.input(), b.input(), "v1");  // d1
  const Value v2 = b.add(v1, b.input(), "v2");         // d2
  const Value v3 = b.mul(v2, b.input(), "v3");         // d3
  const Value v4 = b.add(v3, b.input(), "v4");         // d4
  const Value v5 = b.mul(v4, b.input(), "v5");         // d5
  const Value v6 = b.add(v5, b.input(), "v6");         // d6
  const Value v7 = b.mul(v6, b.input(), "v7");         // d7
  const Value v8 = b.add(v7, b.input(), "v8");         // d8

  // Backward spine, cross-coupled to the forward one (lattice
  // structure keeps the graph a single component).
  const Value w1 = b.mul(b.input(), b.input(), "w1");  // d1
  const Value w2 = b.add(w1, v1, "w2");                // d2
  const Value w3 = b.mul(w2, b.input(), "w3");         // d3
  const Value w4 = b.add(w3, v3, "w4");                // d4
  const Value w5 = b.mul(w4, b.input(), "w5");         // d5
  const Value w6 = b.add(w5, v5, "w6");                // d6
  const Value w7 = b.mul(w6, b.input(), "w7");         // d7
  const Value w8 = b.add(w7, v7, "w8");                // d8
  (void)v8;
  (void)w8;

  // Reflection-coefficient taps off both spines.
  const Value t1 = b.cmul(v2, "k1");  // d3
  const Value t2 = b.cmul(v4, "k2");  // d5
  const Value t3 = b.cmul(w2, "k3");  // d3
  const Value t4 = b.cmul(w4, "k4");  // d5

  // Input-scaling multiplies combined with the taps.
  const Value g1 = b.mul(b.input(), b.input(), "g1");  // d1
  const Value g2 = b.mul(b.input(), b.input(), "g2");  // d1
  const Value g3 = b.mul(b.input(), b.input(), "g3");  // d1
  const Value g4 = b.mul(b.input(), b.input(), "g4");  // d1
  (void)b.add(t1, g1, "c1");  // d4
  (void)b.add(t2, g2, "c2");  // d6
  (void)b.add(t3, g3, "c3");  // d4
  (void)b.add(t4, g4, "c4");  // d6

  return std::move(b).take();
}

}  // namespace cvb
