#include <stdexcept>

#include "kernels/kernels.hpp"

namespace cvb {

std::vector<BenchmarkKernel> benchmark_suite() {
  std::vector<BenchmarkKernel> suite;
  suite.push_back({"DCT-DIF", make_dct_dif(), 41, 2, 7});
  suite.push_back({"DCT-LEE", make_dct_lee(), 49, 2, 9});
  suite.push_back({"DCT-DIT", make_dct_dit(), 48, 1, 7});
  suite.push_back({"DCT-DIT-2", make_dct_dit2(), 96, 2, 7});
  suite.push_back({"FFT", make_fft(), 38, 1, 6});
  suite.push_back({"EWF", make_ewf(), 34, 1, 14});
  suite.push_back({"ARF", make_arf(), 28, 1, 8});
  return suite;
}

BenchmarkKernel benchmark_by_name(const std::string& name) {
  for (BenchmarkKernel& kernel : benchmark_suite()) {
    if (kernel.name == name) {
      return std::move(kernel);
    }
  }
  throw std::invalid_argument("benchmark_by_name: unknown kernel '" + name +
                              "'");
}

}  // namespace cvb
