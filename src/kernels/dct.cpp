#include "graph/builder.hpp"
#include "kernels/kernels.hpp"

namespace cvb {

// The three 8-point DCT variants from Ifeachor & Jervis used in the
// paper. All share the classic fast-DCT shape — an input butterfly
// stage splitting into an "even" half (a 4-point DCT) and an "odd"
// half (a deeper rotation network) — and differ in how the halves are
// decomposed and whether a recombination stage joins them:
//
//  * DCT-DIF  (decimation in frequency): halves stay independent,
//    so the graph has two connected components. 41 ops, L_CP 7.
//  * DCT-LEE  (Lee's algorithm): like DIF but with 1/(2cos) prescaled
//    recursive halves, giving longer multiply chains. 49 ops,
//    2 components, L_CP 9.
//  * DCT-DIT  (decimation in time): an output butterfly stage
//    recombines both halves, making the graph one component. 48 ops,
//    L_CP 7.
//
// Depth comments give 1-based ASAP levels.

Dfg make_dct_dif() {
  DfgBuilder b;

  // --- Even component: input sums + 4-point DCT (17 ops, depth 5). ---
  const Value s0 = b.add(b.input(), b.input(), "s0");  // d1: x0+x7
  const Value s1 = b.add(b.input(), b.input(), "s1");  // d1: x1+x6
  const Value s2 = b.add(b.input(), b.input(), "s2");  // d1: x2+x5
  const Value s3 = b.add(b.input(), b.input(), "s3");  // d1: x3+x4

  const Value f0 = b.add(s0, s3, "f0");  // d2
  const Value f1 = b.add(s1, s2, "f1");  // d2
  const Value f2 = b.sub(s0, s3, "f2");  // d2
  const Value f3 = b.sub(s1, s2, "f3");  // d2

  (void)b.add(f0, f1, "X0");             // d3
  const Value g0 = b.sub(f0, f1, "g0");  // d3
  const Value h0 = b.cmul(f2, "h0");     // d3
  const Value h1 = b.cmul(f3, "h1");     // d3

  (void)b.cmul(g0, "X4");                // d4
  const Value u0 = b.add(h0, h1, "u0");  // d4
  const Value u1 = b.sub(h0, h1, "u1");  // d4

  (void)b.cmul(u0, "X2");  // d5
  (void)b.cmul(u1, "X6");  // d5

  // --- Odd component: input differences + rotation network
  //     (24 ops, depth 7). ---
  const Value d0 = b.sub(b.input(), b.input(), "d0");  // d1: x0-x7
  const Value d1 = b.sub(b.input(), b.input(), "d1");  // d1: x1-x6
  const Value d2 = b.sub(b.input(), b.input(), "d2");  // d1: x2-x5
  const Value d3 = b.sub(b.input(), b.input(), "d3");  // d1: x3-x4

  const Value m0 = b.cmul(d0, "m0");  // d2
  const Value m1 = b.cmul(d1, "m1");  // d2
  const Value m2 = b.cmul(d2, "m2");  // d2
  const Value m3 = b.cmul(d3, "m3");  // d2

  const Value a0 = b.add(m0, m1, "a0");  // d3
  const Value a1 = b.add(m2, m3, "a1");  // d3
  const Value a2 = b.sub(m0, m1, "a2");  // d3
  const Value a3 = b.sub(m2, m3, "a3");  // d3

  const Value n0 = b.cmul(a0, "n0");  // d4
  const Value n1 = b.cmul(a1, "n1");  // d4
  const Value n2 = b.cmul(a2, "n2");  // d4
  const Value n3 = b.cmul(a3, "n3");  // d4

  const Value b0 = b.add(n0, n1, "b0");  // d5
  const Value b1 = b.sub(n2, n3, "b1");  // d5
  const Value b2 = b.add(n1, n2, "b2");  // d5

  const Value p0 = b.cmul(b0, "p0");  // d6
  const Value p1 = b.cmul(b1, "p1");  // d6

  (void)b.add(p0, b2, "X1");  // d7
  (void)b.sub(p0, p1, "X7");  // d7
  (void)b.add(p1, b2, "X3");  // d7

  return std::move(b).take();
}

Dfg make_dct_lee() {
  DfgBuilder b;

  // --- Even component (21 ops, depth 9): Lee's prescaled 4-point
  //     recursion adds a multiply/add tail after the 4-point core. ---
  const Value s0 = b.add(b.input(), b.input(), "s0");  // d1
  const Value s1 = b.add(b.input(), b.input(), "s1");  // d1
  const Value s2 = b.add(b.input(), b.input(), "s2");  // d1
  const Value s3 = b.add(b.input(), b.input(), "s3");  // d1

  const Value f0 = b.add(s0, s3, "f0");  // d2
  const Value f1 = b.add(s1, s2, "f1");  // d2
  const Value f2 = b.sub(s0, s3, "f2");  // d2
  const Value f3 = b.sub(s1, s2, "f3");  // d2

  (void)b.add(f0, f1, "X0");             // d3
  const Value g0 = b.sub(f0, f1, "g0");  // d3
  const Value h0 = b.cmul(f2, "h0");     // d3
  const Value h1 = b.cmul(f3, "h1");     // d3

  (void)b.cmul(g0, "X4");                // d4
  const Value u0 = b.add(h0, h1, "u0");  // d4
  const Value u1 = b.sub(h0, h1, "u1");  // d4

  const Value e0 = b.cmul(u0, "e0");     // d5
  const Value e1 = b.cmul(u1, "e1");     // d5
  const Value w0 = b.add(e0, e1, "w0");  // d6
  const Value x2 = b.cmul(w0, "X2");     // d7
  const Value x6 = b.sub(x2, e1, "x6t"); // d8
  (void)b.cmul(x6, "X6");                // d9

  // --- Odd component (28 ops, depth 9): prescale, rotate, and the
  //     Lee output-recombination chain. ---
  const Value d0 = b.sub(b.input(), b.input(), "d0");  // d1
  const Value d1 = b.sub(b.input(), b.input(), "d1");  // d1
  const Value d2 = b.sub(b.input(), b.input(), "d2");  // d1
  const Value d3 = b.sub(b.input(), b.input(), "d3");  // d1

  const Value m0 = b.cmul(d0, "m0");  // d2 (1/(2cos) prescale)
  const Value m1 = b.cmul(d1, "m1");  // d2
  const Value m2 = b.cmul(d2, "m2");  // d2
  const Value m3 = b.cmul(d3, "m3");  // d2

  const Value a0 = b.add(m0, m1, "a0");  // d3
  const Value a1 = b.add(m2, m3, "a1");  // d3
  const Value a2 = b.sub(m0, m1, "a2");  // d3
  const Value a3 = b.sub(m2, m3, "a3");  // d3

  const Value n0 = b.cmul(a0, "n0");  // d4
  const Value n1 = b.cmul(a1, "n1");  // d4
  const Value n2 = b.cmul(a2, "n2");  // d4
  const Value n3 = b.cmul(a3, "n3");  // d4

  const Value b0 = b.add(n0, n1, "b0");  // d5
  const Value b1 = b.sub(n2, n3, "b1");  // d5
  const Value b2 = b.add(n1, n2, "b2");  // d5

  const Value p0 = b.cmul(b0, "p0");  // d6
  const Value p1 = b.cmul(b1, "p1");  // d6
  const Value p2 = b.cmul(b2, "p2");  // d6

  const Value q0 = b.add(p0, p1, "q0");  // d7
  const Value q1 = b.add(p1, p2, "q1");  // d7

  const Value r0 = b.cmul(q0, "r0");  // d8
  const Value r1 = b.cmul(q1, "r1");  // d8

  (void)b.add(r0, p2, "X1");  // d9
  (void)b.sub(r0, r1, "X3");  // d9

  return std::move(b).take();
}

Dfg make_dct_dit() {
  DfgBuilder b;

  // --- Even path (17 ops, outputs at depth <= 5). ---
  const Value s0 = b.add(b.input(), b.input(), "s0");  // d1
  const Value s1 = b.add(b.input(), b.input(), "s1");  // d1
  const Value s2 = b.add(b.input(), b.input(), "s2");  // d1
  const Value s3 = b.add(b.input(), b.input(), "s3");  // d1

  const Value f0 = b.add(s0, s3, "f0");  // d2
  const Value f1 = b.add(s1, s2, "f1");  // d2
  const Value f2 = b.sub(s0, s3, "f2");  // d2
  const Value f3 = b.sub(s1, s2, "f3");  // d2

  const Value e0 = b.add(f0, f1, "e0");  // d3
  const Value g0 = b.sub(f0, f1, "g0");  // d3
  const Value h0 = b.cmul(f2, "h0");     // d3
  const Value h1 = b.cmul(f3, "h1");     // d3

  const Value e2 = b.cmul(g0, "e2");     // d4
  const Value u0 = b.add(h0, h1, "u0");  // d4
  const Value u1 = b.sub(h0, h1, "u1");  // d4

  const Value e1 = b.cmul(u0, "e1");  // d5
  const Value e3 = b.cmul(u1, "e3");  // d5

  // --- Odd path (18 ops, outputs at depth <= 5). ---
  const Value d0 = b.sub(b.input(), b.input(), "d0");  // d1
  const Value d1 = b.sub(b.input(), b.input(), "d1");  // d1
  const Value d2 = b.sub(b.input(), b.input(), "d2");  // d1
  const Value d3 = b.sub(b.input(), b.input(), "d3");  // d1

  const Value m0 = b.cmul(d0, "m0");  // d2
  const Value m1 = b.cmul(d1, "m1");  // d2
  const Value m2 = b.cmul(d2, "m2");  // d2
  const Value m3 = b.cmul(d3, "m3");  // d2

  const Value a0 = b.add(m0, m1, "a0");  // d3
  const Value a1 = b.add(m2, m3, "a1");  // d3
  const Value a2 = b.sub(m0, m1, "a2");  // d3
  const Value a3 = b.sub(m2, m3, "a3");  // d3

  const Value n0 = b.cmul(a0, "n0");  // d4
  const Value n1 = b.cmul(a1, "n1");  // d4
  const Value n2 = b.cmul(a2, "n2");  // d4

  const Value o0 = b.add(n0, n1, "o0");  // d5
  const Value o1 = b.add(n1, n2, "o1");  // d5
  const Value o2 = b.add(n2, a3, "o2");  // d5
  const Value o3 = b.sub(n0, n2, "o3");  // d5

  // --- Output recombination (joins the halves; 8 ops at d6). ---
  const Value x0 = b.add(e0, o0, "X0");  // d6
  const Value x7 = b.sub(e0, o0, "X7");  // d6
  const Value x1 = b.add(e1, o1, "X1");  // d6
  const Value x6 = b.sub(e1, o1, "X6");  // d6
  (void)b.add(e2, o2, "X2");             // d6
  (void)b.sub(e2, o2, "X5");             // d6
  (void)b.add(e3, o3, "X3");             // d6
  (void)b.sub(e3, o3, "X4");             // d6

  // --- Output scaling (4 ops at d7). ---
  (void)b.cmul(x0, "y0");
  (void)b.cmul(x1, "y1");
  (void)b.cmul(x6, "y6");
  (void)b.cmul(x7, "y7");

  return std::move(b).take();
}

Dfg make_dct_dit2() { return unroll(make_dct_dit(), 2); }

}  // namespace cvb
