#include <array>

#include "graph/builder.hpp"
#include "kernels/kernels.hpp"

namespace cvb {

namespace {

/// Complex values are (re, im) pairs of dataflow values.
struct Complex {
  Value re;
  Value im;
};

/// Radix-2 butterfly with a twiddle factor: t = w * b (complex
/// multiply, 4 muls + 2 add/sub), then a +/- t (4 add/sub). Depth 3.
std::array<Complex, 2> twiddle_butterfly(DfgBuilder& b, Complex a, Complex x,
                                         const std::string& tag) {
  const Value m1 = b.cmul(x.re, "m" + tag + "a");
  const Value m2 = b.cmul(x.im, "m" + tag + "b");
  const Value m3 = b.cmul(x.re, "m" + tag + "c");
  const Value m4 = b.cmul(x.im, "m" + tag + "d");
  const Value tr = b.sub(m1, m2, "tr" + tag);
  const Value ti = b.add(m3, m4, "ti" + tag);
  Complex top{b.add(a.re, tr, "pr" + tag), b.add(a.im, ti, "pi" + tag)};
  Complex bottom{b.sub(a.re, tr, "qr" + tag), b.sub(a.im, ti, "qi" + tag)};
  return {top, bottom};
}

}  // namespace

// Radix-2 complex FFT basic block (the RASTA hot kernel): two
// twiddle-factor butterflies in stage 1, one twiddle butterfly plus one
// trivial (w = 1) butterfly in stage 2, and output magnitude scaling.
// 38 ops (16 mul, 22 add/sub), single component (stage 2 reads from
// both stage-1 butterflies), critical path 6.
Dfg make_fft() {
  DfgBuilder b;

  const Complex in0{b.input(), b.input()};
  const Complex in1{b.input(), b.input()};
  const Complex in2{b.input(), b.input()};
  const Complex in3{b.input(), b.input()};

  // Stage 1 (depth 1..3).
  const auto bf0 = twiddle_butterfly(b, in0, in1, "0");
  const auto bf1 = twiddle_butterfly(b, in2, in3, "1");

  // Stage 2 (depth 4..6): twiddle butterfly across the two stage-1 tops.
  const auto bf2 = twiddle_butterfly(b, bf0[0], bf1[0], "2");
  (void)bf2;

  // Stage 2 trivial butterfly (w = 1) across the two stage-1 bottoms
  // (depth 4).
  const Value c0 = b.add(bf0[1].re, bf1[1].re, "c0");
  const Value c1 = b.add(bf0[1].im, bf1[1].im, "c1");
  const Value c2 = b.sub(bf0[1].re, bf1[1].re, "c2");
  const Value c3 = b.sub(bf0[1].im, bf1[1].im, "c3");

  // Output scaling of the trivial-butterfly lane (depth 5).
  (void)b.cmul(c0, "s0");
  (void)b.cmul(c1, "s1");
  (void)b.cmul(c2, "s2");
  (void)b.cmul(c3, "s3");

  return std::move(b).take();
}

}  // namespace cvb
