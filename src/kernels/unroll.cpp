#include <stdexcept>

#include "kernels/kernels.hpp"

namespace cvb {

Dfg unroll(const Dfg& dfg, int factor) {
  if (factor < 1) {
    throw std::invalid_argument("unroll: factor must be >= 1");
  }
  Dfg result;
  for (int copy = 0; copy < factor; ++copy) {
    const OpId base = result.num_ops();
    for (OpId v = 0; v < dfg.num_ops(); ++v) {
      result.add_op(dfg.type(v),
                    dfg.name(v) + "#" + std::to_string(copy));
    }
    for (OpId v = 0; v < dfg.num_ops(); ++v) {
      for (const OpId u : dfg.operands(v)) {
        result.add_operand(base + v, u == kNoOp ? kNoOp : base + u);
      }
    }
  }
  return result;
}

}  // namespace cvb
