#include "graph/builder.hpp"
#include "kernels/kernels.hpp"

namespace cvb {

// 5th-order elliptic wave digital filter. The classic HLS benchmark has
// 26 additions and 8 coefficient multiplications with a unit-latency
// critical path of 14; this reconstruction follows the wave-filter
// shape — a long adder spine (the adaptor cascade) with
// multiply-by-coefficient side branches re-entering the spine — and is
// calibrated to exactly those statistics. Depth annotations give the
// 1-based ASAP level of each operation.
Dfg make_ewf() {
  DfgBuilder b;
  const Value in = b.input();

  // Adaptor spine: a chain of 14 additions (depth 1..14). Side values
  // computed below feed v3..v13; the remaining spine slots take
  // delay-register inputs.
  // Side chain A1: sum then coefficient multiply.
  const Value sA1 = b.add(in, b.input(), "sA1");  // d1
  const Value mA1 = b.cmul(sA1, "mA1");           // d2

  const Value v1 = b.add(in, b.input(), "v1");    // d1
  const Value v2 = b.add(v1, b.input(), "v2");    // d2
  const Value v3 = b.add(v2, mA1, "v3");          // d3

  // Side chain B1: coefficient multiply of a spine tap, then bias add.
  const Value mB1 = b.cmul(v1, "mB1");            // d2
  const Value aB1 = b.add(mB1, b.input(), "aB1"); // d3
  const Value v4 = b.add(v3, aB1, "v4");          // d4

  const Value sA2 = b.add(v2, b.input(), "sA2");  // d3
  const Value mA2 = b.cmul(sA2, "mA2");           // d4
  const Value v5 = b.add(v4, mA2, "v5");          // d5
  const Value v6 = b.add(v5, b.input(), "v6");    // d6

  const Value mB2 = b.cmul(v4, "mB2");            // d5
  const Value aB2 = b.add(mB2, v2, "aB2");        // d6
  const Value v7 = b.add(v6, aB2, "v7");          // d7

  const Value sA3 = b.add(v5, b.input(), "sA3");  // d6
  const Value mA3 = b.cmul(sA3, "mA3");           // d7
  const Value v8 = b.add(v7, mA3, "v8");          // d8
  const Value v9 = b.add(v8, b.input(), "v9");    // d9

  const Value mB3 = b.cmul(v7, "mB3");            // d8
  const Value aB3 = b.add(mB3, v5, "aB3");        // d9
  const Value v10 = b.add(v9, aB3, "v10");        // d10

  const Value sA4 = b.add(v8, b.input(), "sA4");  // d9
  const Value mA4 = b.cmul(sA4, "mA4");           // d10
  const Value v11 = b.add(v10, mA4, "v11");       // d11
  const Value v12 = b.add(v11, b.input(), "v12"); // d12

  const Value mB4 = b.cmul(v10, "mB4");           // d11
  const Value aB4 = b.add(mB4, v8, "aB4");        // d12
  const Value v13 = b.add(v12, aB4, "v13");       // d13
  const Value v14 = b.add(v13, b.input(), "v14"); // d14

  // Delay-register update adds (filter state writes), tapping the
  // spine without extending the critical path.
  (void)b.add(v6, v13, "o1");                     // d14
  (void)b.add(v9, mA1, "o2");                     // d10
  (void)b.add(v12, aB1, "o3");                    // d13
  (void)b.add(v11, mA2, "o4");                    // d12
  (void)v14;

  return std::move(b).take();
}

}  // namespace cvb
