// Bound dataflow graph: the original DFG plus the data-transfer (move)
// operations implied by a binding (paper Figure 1(b)).
//
// For every value produced by operation u and consumed by at least one
// operation bound to a cluster other than bn(u), move operations are
// inserted along the interconnect route from bn(u) to each consuming
// cluster: on the paper's single shared bus every route is one hop, so
// exactly one move per (producer, destination cluster) appears — a
// single bus transfer delivers the value into the destination cluster's
// register file, where any number of local consumers can read it. On a
// multi-link topology (machine/topology.hpp) a transfer between
// non-adjacent clusters becomes a *chain* of moves, one per traversed
// link, each hop reading the previous hop's delivery and homing its
// result in the next cluster on the route; hops are shared between all
// destinations whose routes overlap (per (producer, cluster) memo).
// The paper's data-transfer count M is the number of move operations.
#pragma once

#include <vector>

#include "bind/binding.hpp"
#include "graph/dfg.hpp"
#include "machine/datapath.hpp"

namespace cvb {

/// The bound form of a DFG. Original operations keep their ids
/// (0..N_V-1); move operations are appended after them.
struct BoundDfg {
  /// Original operations + appended kMove operations.
  Dfg graph;

  /// Cluster per operation in `graph`. Regular operations carry their
  /// binding; move operations carry kNoCluster (they execute on the
  /// bus).
  std::vector<ClusterId> place;

  /// Number of inserted move operations (the paper's M).
  int num_moves = 0;

  /// For each move (indexed by id - num_original_ops): the producing
  /// original operation (the value carried — for a chain hop this is
  /// still the original producer, not the previous hop), the cluster
  /// the hop delivers into, and the topology link it occupies (always 0
  /// on a single bus).
  std::vector<OpId> move_producer;
  std::vector<ClusterId> move_dest;
  std::vector<int> move_link;

  /// Number of original (non-move) operations.
  [[nodiscard]] int num_original_ops() const {
    return graph.num_ops() - num_moves;
  }

  /// True if `v` is an inserted move.
  [[nodiscard]] bool is_move_op(OpId v) const {
    return v >= num_original_ops();
  }

  /// Topology link occupied by move `v` (must be a move). Hand-built
  /// graphs may leave `move_link` unset; absent entries mean the
  /// default single link 0.
  [[nodiscard]] int link_of(OpId v) const {
    const auto mi = static_cast<std::size_t>(v - num_original_ops());
    return mi < move_link.size() ? move_link[mi] : 0;
  }
};

/// Latency of operation `v` in the bound graph: lat(type) for regular
/// operations, the occupied link's hop latency (else lat(move)) for
/// moves. The per-op form every schedule consumer must use once
/// topologies with non-uniform hop latencies exist.
[[nodiscard]] inline int bound_op_latency(const BoundDfg& bound,
                                          const Datapath& dp, OpId v) {
  if (bound.is_move_op(v)) {
    return dp.move_latency_on(bound.link_of(v));
  }
  return dp.lat(bound.graph.type(v));
}

/// Builds the bound DFG for `binding` (which must be valid for `dfg` on
/// `dp`; throws std::logic_error otherwise).
///
/// Edge rewriting: a dependency (u, v) with bn(u) == bn(v) is kept;
/// with bn(u) != bn(v) it becomes the chain
/// u -> hop_1 -> ... -> hop_k -> v along the topology's precomputed
/// route from bn(u) to bn(v) (k == 1 on a single bus), where each hop
/// is shared among all of u's consumers whose routes traverse it.
[[nodiscard]] BoundDfg build_bound_dfg(const Dfg& dfg, const Binding& binding,
                                       const Datapath& dp);

}  // namespace cvb
