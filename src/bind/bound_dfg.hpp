// Bound dataflow graph: the original DFG plus the data-transfer (move)
// operations implied by a binding (paper Figure 1(b)).
//
// For every value produced by operation u and consumed by at least one
// operation bound to a cluster other than bn(u), one move operation is
// inserted *per destination cluster*: a single bus transfer delivers
// the value into the destination cluster's register file, where any
// number of local consumers can read it. The paper's data-transfer
// count M is the number of such move operations.
#pragma once

#include <vector>

#include "bind/binding.hpp"
#include "graph/dfg.hpp"
#include "machine/datapath.hpp"

namespace cvb {

/// The bound form of a DFG. Original operations keep their ids
/// (0..N_V-1); move operations are appended after them.
struct BoundDfg {
  /// Original operations + appended kMove operations.
  Dfg graph;

  /// Cluster per operation in `graph`. Regular operations carry their
  /// binding; move operations carry kNoCluster (they execute on the
  /// bus).
  std::vector<ClusterId> place;

  /// Number of inserted move operations (the paper's M).
  int num_moves = 0;

  /// For each move (indexed by id - num_original_ops): the producing
  /// original operation and the destination cluster.
  std::vector<OpId> move_producer;
  std::vector<ClusterId> move_dest;

  /// Number of original (non-move) operations.
  [[nodiscard]] int num_original_ops() const {
    return graph.num_ops() - num_moves;
  }

  /// True if `v` is an inserted move.
  [[nodiscard]] bool is_move_op(OpId v) const {
    return v >= num_original_ops();
  }
};

/// Builds the bound DFG for `binding` (which must be valid for `dfg` on
/// `dp`; throws std::logic_error otherwise).
///
/// Edge rewriting: a dependency (u, v) with bn(u) == bn(v) is kept;
/// with bn(u) != bn(v) it becomes u -> move(u, bn(v)) -> v, where the
/// move is shared among all of u's consumers in cluster bn(v).
[[nodiscard]] BoundDfg build_bound_dfg(const Dfg& dfg, const Binding& binding,
                                       const Datapath& dp);

}  // namespace cvb
