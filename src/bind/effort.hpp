// Effort presets — the compile-time/quality tradeoff the paper frames
// in its introduction (B-INIT alone "when compilation time is very
// critical", the full algorithm "when code performance is the major
// goal"). Split out of driver.hpp so the public api layer and the
// NDJSON protocol can name an effort without pulling in the driver's
// internal parameter structs.
#pragma once

#include <string>
#include <string_view>

namespace cvb {

/// Effort presets mapping to DriverParams (see driver_params_for).
enum class BindEffort {
  kFast,      ///< B-INIT sweep only, narrow stretch
  kBalanced,  ///< the defaults: full sweep + multi-start B-ITER
  kMax,       ///< widest sweep, most seeds, deepest plateau walking
};

/// "fast" | "balanced" | "max".
[[nodiscard]] std::string to_string(BindEffort effort);

/// Inverse of to_string; throws std::invalid_argument
/// ("unknown effort '<name>'") for anything else.
[[nodiscard]] BindEffort bind_effort_from_string(std::string_view name);

}  // namespace cvb
