// Effort presets — the compile-time/quality tradeoff the paper frames
// in its introduction (B-INIT alone "when compilation time is very
// critical", the full algorithm "when code performance is the major
// goal"). Split out of driver.hpp so the public api layer and the
// NDJSON protocol can name an effort without pulling in the driver's
// internal parameter structs.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace cvb {

/// Effort presets mapping to DriverParams (see driver_params_for).
enum class BindEffort {
  kFast,      ///< B-INIT sweep only, narrow stretch
  kBalanced,  ///< the defaults: full sweep + multi-start B-ITER
  kMax,       ///< widest sweep, most seeds, deepest plateau walking
};

/// "fast" | "balanced" | "max".
[[nodiscard]] std::string to_string(BindEffort effort);

/// Inverse of to_string; throws std::invalid_argument
/// ("unknown effort '<name>'") for anything else.
[[nodiscard]] BindEffort bind_effort_from_string(std::string_view name);

/// Per-strategy racing state the portfolio feeds the controller before
/// each incumbent-exchange round (bind/portfolio.hpp).
struct StrategyProgress {
  /// Wants a restart slot this round (restartable, not dropped, and
  /// currently behind the global incumbent).
  bool runnable = false;
  /// Global-incumbent improvements this strategy has published so far.
  int improvements = 0;
  /// Restart rounds this strategy has already consumed.
  int restarts = 0;
};

/// Deadline-aware effort controller for the racing portfolio: decides,
/// before each restart round, which strategies get pool slots and in
/// what submission order, so threads flow toward whichever strategies
/// are actually improving the incumbent.
///
/// The ranking (improvements desc, restarts asc, index asc) is a pure
/// function of deterministic round counters, so deadline-free races
/// stay reproducible. The deadline term only *shrinks* the scheduled
/// set as wall-clock budget runs out — with no deadline every runnable
/// strategy is scheduled and determinism is untouched.
class EffortController {
 public:
  /// `total_budget_ms` <= 0 means no deadline.
  explicit EffortController(double total_budget_ms = 0.0)
      : total_budget_ms_(total_budget_ms) {}

  /// Indices into `progress` to run this round, best-credit first.
  /// Empty when nothing is runnable or the budget is exhausted. With a
  /// deadline, the scheduled count scales with the remaining fraction
  /// of the budget (always >= 1 while any budget remains), focusing
  /// the final rounds on the top improvers.
  [[nodiscard]] std::vector<int> plan_round(
      const std::vector<StrategyProgress>& progress,
      double remaining_ms) const;

 private:
  double total_budget_ms_;
};

}  // namespace cvb
