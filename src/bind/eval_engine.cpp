#include "bind/eval_engine.hpp"

#include <utility>

#include "bind/bound_dfg.hpp"
#include "sched/quality.hpp"
#include "support/fault.hpp"
#include "support/stopwatch.hpp"
#include "support/trace.hpp"

namespace cvb {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv1a(std::uint64_t hash, std::uint64_t value) {
  // Mix all 8 bytes so nearby integers diverge.
  for (int byte = 0; byte < 8; ++byte) {
    hash ^= (value >> (8 * byte)) & 0xffU;
    hash *= kFnvPrime;
  }
  return hash;
}

}  // namespace

void EvalStats::merge(const EvalStats& other) {
  candidates += other.candidates;
  cache_hits += other.cache_hits;
  cache_misses += other.cache_misses;
  cache_evictions += other.cache_evictions;
  batches += other.batches;
  improver_candidates += other.improver_candidates;
  pcc_candidates += other.pcc_candidates;
  explore_jobs += other.explore_jobs;
  eval_ms += other.eval_ms;
}

EvalStats EvalStats::since(const EvalStats& baseline) const {
  EvalStats delta = *this;
  delta.candidates -= baseline.candidates;
  delta.cache_hits -= baseline.cache_hits;
  delta.cache_misses -= baseline.cache_misses;
  delta.cache_evictions -= baseline.cache_evictions;
  delta.batches -= baseline.batches;
  delta.improver_candidates -= baseline.improver_candidates;
  delta.pcc_candidates -= baseline.pcc_candidates;
  delta.explore_jobs -= baseline.explore_jobs;
  delta.eval_ms -= baseline.eval_ms;
  return delta;
}

EvalEngine::EvalEngine(EvalEngineOptions options) : options_(options) {
  if (options_.num_threads < 1) {
    throw std::invalid_argument("EvalEngine: num_threads must be >= 1");
  }
  if (options_.num_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  }
}

EvalEngine::~EvalEngine() = default;

std::uint64_t EvalEngine::context_signature(const Dfg& dfg, const Datapath& dp,
                                            const ListSchedulerOptions& sched) {
  std::uint64_t hash = kFnvOffset;
  // DFG structure: op types and operand producers (edges).
  hash = fnv1a(hash, static_cast<std::uint64_t>(dfg.num_ops()));
  for (OpId v = 0; v < dfg.num_ops(); ++v) {
    hash = fnv1a(hash, static_cast<std::uint64_t>(dfg.type(v)));
    for (const OpId u : dfg.preds(v)) {
      hash = fnv1a(hash, static_cast<std::uint64_t>(u) + 1);
    }
    hash = fnv1a(hash, 0xfeU);  // per-op terminator
  }
  // Datapath: cluster FU counts, buses, latencies, diis.
  hash = fnv1a(hash, static_cast<std::uint64_t>(dp.num_clusters()));
  for (ClusterId c = 0; c < dp.num_clusters(); ++c) {
    for (int t = 0; t < kNumClusterFuTypes; ++t) {
      hash = fnv1a(hash,
                   static_cast<std::uint64_t>(
                       dp.fu_count(c, static_cast<FuType>(t))));
    }
  }
  hash = fnv1a(hash, static_cast<std::uint64_t>(dp.num_buses()));
  for (int p = 0; p < kNumOpTypes; ++p) {
    hash = fnv1a(hash,
                 static_cast<std::uint64_t>(dp.lat(static_cast<OpType>(p))));
  }
  for (int t = 0; t < kNumFuTypes; ++t) {
    hash = fnv1a(hash,
                 static_cast<std::uint64_t>(dp.dii(static_cast<FuType>(t))));
  }
  // Scheduler options.
  hash = fnv1a(hash, sched.unbounded_bus ? 1 : 0);
  return hash;
}

std::uint64_t EvalEngine::binding_hash(const Binding& binding,
                                       std::uint64_t signature) {
  std::uint64_t hash = signature;
  for (const ClusterId c : binding) {
    hash = fnv1a(hash, static_cast<std::uint64_t>(c) + 1);
  }
  return hash;
}

EvalResult EvalEngine::evaluate_uncached(const Dfg& dfg, const Datapath& dp,
                                         const Binding& binding,
                                         const ListSchedulerOptions& sched) {
  CVB_INJECT("eval.task");
  const BoundDfg bound = build_bound_dfg(dfg, binding, dp);
  const Schedule schedule = list_schedule(bound, dp, sched);
  QualityU qu = compute_quality_u(bound, dp, schedule);
  EvalResult result;
  result.latency = schedule.latency;
  result.num_moves = schedule.num_moves;
  result.tail_counts = std::move(qu.tail_counts);
  return result;
}

bool EvalEngine::cache_lookup(std::uint64_t key, std::uint64_t signature,
                              const Binding& binding, EvalResult* out) {
  CVB_INJECT("eval.cache_lookup");  // before the lock: must not throw held
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = cache_.find(key);
  if (it == cache_.end() || it->second.signature != signature ||
      it->second.binding != binding) {
    return false;
  }
  *out = it->second.result;
  return true;
}

void EvalEngine::cache_insert(std::uint64_t key, std::uint64_t signature,
                              const Binding& binding, EvalResult result) {
  CVB_INJECT("eval.cache_insert");  // before the lock: must not throw held
  const std::lock_guard<std::mutex> lock(mutex_);
  if (cache_.contains(key)) {
    // Another thread computed it first, or a hash collision: replace so
    // the latest context wins; `order_` keeps its single key entry.
    cache_[key] = CacheEntry{signature, binding, std::move(result)};
    return;
  }
  while (cache_.size() >= options_.cache_capacity && !order_.empty()) {
    cache_.erase(order_.front());
    order_.pop_front();
    ++stats_.cache_evictions;
  }
  cache_.emplace(key, CacheEntry{signature, binding, std::move(result)});
  order_.push_back(key);
}

std::vector<EvalResult> EvalEngine::evaluate_batch(
    const Dfg& dfg, const Datapath& dp, const std::vector<Binding>& bindings,
    const ListSchedulerOptions& sched, EvalPhase phase) {
  Stopwatch watch;
  ScopedSpan span(sched.tracer, "eval.batch", sched.trace_parent);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.batches;
    stats_.candidates += static_cast<long long>(bindings.size());
    if (phase == EvalPhase::kImprover) {
      stats_.improver_candidates += static_cast<long long>(bindings.size());
    } else if (phase == EvalPhase::kPcc) {
      stats_.pcc_candidates += static_cast<long long>(bindings.size());
    }
  }

  const bool use_cache = options_.cache_capacity > 0;
  const std::uint64_t signature = context_signature(dfg, dp, sched);
  std::vector<EvalResult> results(bindings.size());
  std::vector<std::uint64_t> keys(bindings.size());
  std::vector<std::size_t> misses;  // unique representatives to compute
  // Intra-batch duplicates: (duplicate index, representative index).
  std::vector<std::pair<std::size_t, std::size_t>> duplicates;
  std::unordered_map<std::uint64_t, std::size_t> first_miss;
  long long hits = 0;
  misses.reserve(bindings.size());
  for (std::size_t i = 0; i < bindings.size(); ++i) {
    if (!use_cache) {
      misses.push_back(i);
      continue;
    }
    keys[i] = binding_hash(bindings[i], signature);
    if (cache_lookup(keys[i], signature, bindings[i], &results[i])) {
      ++hits;
      continue;
    }
    const auto it = first_miss.find(keys[i]);
    if (it != first_miss.end() && bindings[it->second] == bindings[i]) {
      // Same candidate earlier in this batch: share its computation.
      duplicates.emplace_back(i, it->second);
      ++hits;
    } else {
      first_miss.emplace(keys[i], i);
      misses.push_back(i);
    }
  }
  if (use_cache) {
    const std::lock_guard<std::mutex> lock(mutex_);
    stats_.cache_hits += hits;
    stats_.cache_misses += static_cast<long long>(misses.size());
  }
  if (span.enabled()) {
    span.attr("candidates", bindings.size());
    span.attr("cache_hits", hits);
    span.attr("misses", misses.size());
    span.attr("phase", static_cast<int>(phase));
  }

  // Scheduler invocations below are children of this batch span; pool
  // tasks run on other threads, so the link must be explicit.
  ListSchedulerOptions task_sched = sched;
  task_sched.trace_parent = span.id();

  if (pool_ != nullptr && misses.size() > 1) {
    std::vector<std::function<EvalResult()>> tasks;
    tasks.reserve(misses.size());
    for (const std::size_t i : misses) {
      tasks.push_back([&dfg, &dp, &binding = bindings[i], &task_sched] {
        return evaluate_uncached(dfg, dp, binding, task_sched);
      });
    }
    std::vector<EvalResult> computed =
        pool_->run_batch<EvalResult>(std::move(tasks));
    for (std::size_t k = 0; k < misses.size(); ++k) {
      results[misses[k]] = std::move(computed[k]);
    }
  } else {
    for (const std::size_t i : misses) {
      results[i] = evaluate_uncached(dfg, dp, bindings[i], task_sched);
    }
  }

  for (const auto& [dup, rep] : duplicates) {
    results[dup] = results[rep];
  }

  if (use_cache) {
    for (const std::size_t i : misses) {
      cache_insert(keys[i], signature, bindings[i], results[i]);
    }
  }

  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stats_.eval_ms += watch.elapsed_ms();
  }
  return results;
}

EvalResult EvalEngine::evaluate(const Dfg& dfg, const Datapath& dp,
                                const Binding& binding,
                                const ListSchedulerOptions& sched,
                                EvalPhase phase) {
  return evaluate_batch(dfg, dp, {binding}, sched, phase).front();
}

EvalStats EvalEngine::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void EvalEngine::absorb(const EvalStats& other) {
  const std::lock_guard<std::mutex> lock(mutex_);
  stats_.merge(other);
}

std::size_t EvalEngine::cache_size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return cache_.size();
}

void EvalEngine::note_jobs(long long count) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.batches;
  stats_.explore_jobs += count;
}

}  // namespace cvb
