#include "bind/eval_engine.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>
#include <utility>

#include "bind/bound_dfg.hpp"
#include "sched/quality.hpp"
#include "support/fault.hpp"
#include "support/hash.hpp"
#include "support/stopwatch.hpp"
#include "support/trace.hpp"

namespace cvb {

namespace {

std::size_t round_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) {
    p <<= 1;
  }
  return p;
}

EvalEngineOptions normalize_options(EvalEngineOptions o) {
  if (o.num_threads < 1) {
    throw std::invalid_argument("EvalEngine: num_threads must be >= 1");
  }
  o.cache_shards = round_pow2(std::max<std::size_t>(1, o.cache_shards));
  if (o.l1_capacity > 0) {
    o.l1_capacity = round_pow2(o.l1_capacity);
  }
  return o;
}

std::uint64_t next_engine_id() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

// ---- Thread-local L1 ----------------------------------------------------
//
// Each thread keeps two small direct-mapped tables, tagged by engine id
// (monotonic, never reused — a table can never serve stale entries for
// a recycled engine address). Two tables cover the common pattern of
// one run-lifetime engine plus one nested/shared engine per thread
// while keeping per-thread memory bounded no matter how many engines a
// process creates; a third engine simply steals the least recently
// used table.

struct L1Slot {
  std::uint64_t key = 0;
  std::uint64_t signature = 0;
  bool valid = false;
  Binding binding;
  EvalResult result;
};

struct L1Table {
  std::uint64_t engine = 0;  // 0 = unused
  std::uint64_t last_used = 0;
  std::vector<L1Slot> slots;
};

thread_local std::array<L1Table, 2> tl_l1_tables;
thread_local std::uint64_t tl_l1_clock = 0;

// Direct-mapped slot index. The cache key is FNV-1a, whose low bits
// disperse poorly (the trailing multiply leaves the keys of
// neighbouring bindings in a handful of low-bit classes — observed as
// a whole candidate batch collapsing onto two slots and evicting
// itself every round), so the index runs the key through the shared
// murmur3-fmix64 finalizer (support/hash.hpp) before masking.
std::size_t l1_slot_index(std::uint64_t key, std::size_t size) {
  return static_cast<std::size_t>(fmix64(key)) & (size - 1);
}

L1Table& l1_table_for(std::uint64_t engine, std::size_t slots) {
  L1Table* victim = &tl_l1_tables[0];
  for (L1Table& table : tl_l1_tables) {
    if (table.engine == engine) {
      table.last_used = ++tl_l1_clock;
      if (table.slots.size() != slots) {
        table.slots.assign(slots, L1Slot{});
      }
      return table;
    }
    if (table.last_used < victim->last_used) {
      victim = &table;
    }
  }
  victim->engine = engine;
  victim->last_used = ++tl_l1_clock;
  victim->slots.assign(slots, L1Slot{});
  return *victim;
}

}  // namespace

void EvalStats::merge(const EvalStats& other) {
  candidates += other.candidates;
  cache_hits += other.cache_hits;
  l1_hits += other.l1_hits;
  batch_dedup += other.batch_dedup;
  cache_misses += other.cache_misses;
  cache_evictions += other.cache_evictions;
  cache_collisions += other.cache_collisions;
  cache_contended += other.cache_contended;
  batches += other.batches;
  improver_candidates += other.improver_candidates;
  pcc_candidates += other.pcc_candidates;
  explore_jobs += other.explore_jobs;
  eval_ms += other.eval_ms;
}

EvalStats EvalStats::since(const EvalStats& baseline) const {
  EvalStats delta = *this;
  delta.candidates -= baseline.candidates;
  delta.cache_hits -= baseline.cache_hits;
  delta.l1_hits -= baseline.l1_hits;
  delta.batch_dedup -= baseline.batch_dedup;
  delta.cache_misses -= baseline.cache_misses;
  delta.cache_evictions -= baseline.cache_evictions;
  delta.cache_collisions -= baseline.cache_collisions;
  delta.cache_contended -= baseline.cache_contended;
  delta.batches -= baseline.batches;
  delta.improver_candidates -= baseline.improver_candidates;
  delta.pcc_candidates -= baseline.pcc_candidates;
  delta.explore_jobs -= baseline.explore_jobs;
  delta.eval_ms -= baseline.eval_ms;
  return delta;
}

EvalEngine::EvalEngine(EvalEngineOptions options)
    : options_(normalize_options(options)),
      engine_id_(next_engine_id()),
      shards_(options_.cache_shards) {
  shard_capacity_ =
      std::max<std::size_t>(1, options_.cache_capacity / shards_.size());
  if (options_.num_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  }
}

EvalEngine::~EvalEngine() = default;

std::uint64_t EvalEngine::context_signature(const Dfg& dfg, const Datapath& dp,
                                            const ListSchedulerOptions& sched) {
  std::uint64_t hash = kFnvOffset;
  // DFG structure: op types and operand producers (edges).
  hash = fnv1a(hash, static_cast<std::uint64_t>(dfg.num_ops()));
  for (OpId v = 0; v < dfg.num_ops(); ++v) {
    hash = fnv1a(hash, static_cast<std::uint64_t>(dfg.type(v)));
    for (const OpId u : dfg.preds(v)) {
      hash = fnv1a(hash, static_cast<std::uint64_t>(u) + 1);
    }
    hash = fnv1a(hash, 0xfeU);  // per-op terminator
  }
  // Datapath: cluster FU counts, buses, latencies, diis.
  hash = fnv1a(hash, static_cast<std::uint64_t>(dp.num_clusters()));
  for (ClusterId c = 0; c < dp.num_clusters(); ++c) {
    for (int t = 0; t < kNumClusterFuTypes; ++t) {
      hash = fnv1a(hash,
                   static_cast<std::uint64_t>(
                       dp.fu_count(c, static_cast<FuType>(t))));
    }
  }
  hash = fnv1a(hash, static_cast<std::uint64_t>(dp.num_buses()));
  // Interconnect topology. The default single bus is deliberately NOT
  // hashed — it is fully determined by num_buses above — so signatures
  // of legacy datapaths (and the snapshots that persist them) are
  // byte-stable across the topology generalization.
  if (!dp.topology().is_default_single_bus(dp.num_buses())) {
    const std::string topo_text = dp.topology().to_string();
    for (const char ch : topo_text) {
      hash = fnv1a(hash, static_cast<std::uint64_t>(
                             static_cast<unsigned char>(ch)));
    }
    hash = fnv1a(hash, 0x7dU);  // topology terminator
  }
  for (int p = 0; p < kNumOpTypes; ++p) {
    hash = fnv1a(hash,
                 static_cast<std::uint64_t>(dp.lat(static_cast<OpType>(p))));
  }
  for (int t = 0; t < kNumFuTypes; ++t) {
    hash = fnv1a(hash,
                 static_cast<std::uint64_t>(dp.dii(static_cast<FuType>(t))));
  }
  // Scheduler options.
  hash = fnv1a(hash, sched.unbounded_bus ? 1 : 0);
  return hash;
}

std::uint64_t EvalEngine::binding_hash(const Binding& binding,
                                       std::uint64_t signature) {
  std::uint64_t hash = signature;
  for (const ClusterId c : binding) {
    hash = fnv1a(hash, static_cast<std::uint64_t>(c) + 1);
  }
  return hash;
}

EvalResult EvalEngine::evaluate_uncached(const Dfg& dfg, const Datapath& dp,
                                         const Binding& binding,
                                         const ListSchedulerOptions& sched) {
  CVB_INJECT("eval.task");
  const BoundDfg bound = build_bound_dfg(dfg, binding, dp);
  const Schedule schedule = list_schedule(bound, dp, sched);
  QualityU qu = compute_quality_u(bound, dp, schedule);
  EvalResult result;
  result.latency = schedule.latency;
  result.num_moves = schedule.num_moves;
  result.tail_counts = std::move(qu.tail_counts);
  return result;
}

bool EvalEngine::cache_lookup(std::uint64_t key, std::uint64_t signature,
                              const Binding& binding, EvalResult* out) {
  CVB_INJECT("eval.cache_lookup");  // before the lock: must not throw held
  CacheShard& shard = shard_for(key);
  std::unique_lock<std::mutex> lock(shard.mutex, std::try_to_lock);
  if (!lock.owns_lock()) {
    shard.contended.fetch_add(1, std::memory_order_relaxed);
    lock.lock();
  }
  const auto it = shard.map.find(key);
  if (it == shard.map.end() || it->second.signature != signature ||
      it->second.binding != binding) {
    return false;
  }
  // Touch: a hit makes the entry most recently used.
  shard.lru.splice(shard.lru.end(), shard.lru, it->second.lru_it);
  *out = it->second.result;
  return true;
}

void EvalEngine::cache_insert(std::uint64_t key, std::uint64_t signature,
                              const Binding& binding, EvalResult result) {
  CVB_INJECT("eval.cache_insert");  // before the lock: must not throw held
  CacheShard& shard = shard_for(key);
  std::unique_lock<std::mutex> lock(shard.mutex, std::try_to_lock);
  if (!lock.owns_lock()) {
    shard.contended.fetch_add(1, std::memory_order_relaxed);
    lock.lock();
  }
  const auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    if (it->second.signature == signature && it->second.binding == binding) {
      // Another thread computed the same candidate first. A replace is
      // a use: refresh the entry's LRU position along with the result,
      // or a hot entry re-inserted at capacity evicts as if untouched.
      it->second.result = std::move(result);
      shard.lru.splice(shard.lru.end(), shard.lru, it->second.lru_it);
    } else {
      // Key collision between distinct bindings: keep the resident
      // entry. Lookups verify the stored binding, so overwriting would
      // silently drop a still-reachable result in favor of one the
      // resident key can no longer serve both of.
      ++shard.collisions;
    }
    return;
  }
  while (shard.map.size() >= shard_capacity_ && !shard.lru.empty()) {
    shard.map.erase(shard.lru.front());
    shard.lru.pop_front();
    ++shard.evictions;
  }
  shard.lru.push_back(key);
  const auto lru_it = std::prev(shard.lru.end());
  shard.map.emplace(key,
                    CacheEntry{signature, binding, std::move(result), lru_it});
}

bool EvalEngine::l1_lookup(std::uint64_t key, std::uint64_t signature,
                           const Binding& binding, EvalResult* out) {
  if (options_.l1_capacity == 0) {
    return false;
  }
  L1Table& table = l1_table_for(engine_id_, options_.l1_capacity);
  const L1Slot& slot = table.slots[l1_slot_index(key, table.slots.size())];
  if (!slot.valid || slot.key != key || slot.signature != signature ||
      slot.binding != binding) {
    return false;
  }
  *out = slot.result;
  return true;
}

void EvalEngine::l1_insert(std::uint64_t key, std::uint64_t signature,
                           const Binding& binding, const EvalResult& result) {
  if (options_.l1_capacity == 0) {
    return;
  }
  L1Table& table = l1_table_for(engine_id_, options_.l1_capacity);
  L1Slot& slot = table.slots[l1_slot_index(key, table.slots.size())];
  slot.key = key;
  slot.signature = signature;
  slot.binding = binding;
  slot.result = result;
  slot.valid = true;
}

std::vector<EvalResult> EvalEngine::evaluate_batch(
    const Dfg& dfg, const Datapath& dp, const std::vector<Binding>& bindings,
    const ListSchedulerOptions& sched, EvalPhase phase) {
  Stopwatch watch;
  ScopedSpan span(sched.tracer, "eval.batch", sched.trace_parent);
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.batches;
    stats_.candidates += static_cast<long long>(bindings.size());
    if (phase == EvalPhase::kImprover) {
      stats_.improver_candidates += static_cast<long long>(bindings.size());
    } else if (phase == EvalPhase::kPcc) {
      stats_.pcc_candidates += static_cast<long long>(bindings.size());
    }
  }

  const bool use_cache = options_.cache_capacity > 0;
  const std::uint64_t signature = context_signature(dfg, dp, sched);
  std::vector<EvalResult> results(bindings.size());
  std::vector<std::uint64_t> keys(bindings.size());
  std::vector<std::size_t> misses;  // unique representatives to compute
  // Intra-batch duplicates: (duplicate index, representative index).
  std::vector<std::pair<std::size_t, std::size_t>> duplicates;
  std::unordered_map<std::uint64_t, std::size_t> first_miss;
  long long hits = 0;
  long long l1 = 0;
  long long dedup = 0;
  misses.reserve(bindings.size());
  for (std::size_t i = 0; i < bindings.size(); ++i) {
    if (!use_cache) {
      misses.push_back(i);
      continue;
    }
    keys[i] = binding_hash(bindings[i], signature);
    if (l1_lookup(keys[i], signature, bindings[i], &results[i])) {
      ++hits;
      ++l1;
      continue;
    }
    if (cache_lookup(keys[i], signature, bindings[i], &results[i])) {
      ++hits;
      l1_insert(keys[i], signature, bindings[i], results[i]);
      continue;
    }
    const auto it = first_miss.find(keys[i]);
    if (it != first_miss.end() && bindings[it->second] == bindings[i]) {
      // Same candidate earlier in this batch: share its computation.
      // Not a cache hit — nothing was served from the cache — so it is
      // counted separately (batch_dedup) to keep hit rates honest.
      duplicates.emplace_back(i, it->second);
      ++dedup;
    } else {
      first_miss.emplace(keys[i], i);
      misses.push_back(i);
    }
  }
  if (use_cache) {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.cache_hits += hits;
    stats_.l1_hits += l1;
    stats_.batch_dedup += dedup;
    stats_.cache_misses += static_cast<long long>(misses.size());
  }
  if (span.enabled()) {
    span.attr("candidates", bindings.size());
    span.attr("cache_hits", hits);
    span.attr("l1_hits", l1);
    span.attr("batch_dedup", dedup);
    span.attr("misses", misses.size());
    span.attr("phase", static_cast<int>(phase));
  }

  // Scheduler invocations below are children of this batch span; pool
  // tasks run on other threads, so the link must be explicit.
  ListSchedulerOptions task_sched = sched;
  task_sched.trace_parent = span.id();

  if (pool_ != nullptr && misses.size() > 1) {
    std::vector<std::function<EvalResult()>> tasks;
    tasks.reserve(misses.size());
    for (const std::size_t i : misses) {
      tasks.push_back([&dfg, &dp, &binding = bindings[i], &task_sched] {
        return evaluate_uncached(dfg, dp, binding, task_sched);
      });
    }
    std::vector<EvalResult> computed =
        pool_->run_batch<EvalResult>(std::move(tasks));
    for (std::size_t k = 0; k < misses.size(); ++k) {
      results[misses[k]] = std::move(computed[k]);
    }
  } else {
    for (const std::size_t i : misses) {
      results[i] = evaluate_uncached(dfg, dp, bindings[i], task_sched);
    }
  }

  for (const auto& [dup, rep] : duplicates) {
    results[dup] = results[rep];
  }

  if (use_cache) {
    for (const std::size_t i : misses) {
      cache_insert(keys[i], signature, bindings[i], results[i]);
      l1_insert(keys[i], signature, bindings[i], results[i]);
    }
  }

  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.eval_ms += watch.elapsed_ms();
  }
  return results;
}

std::vector<EvalResult> EvalEngine::evaluate_batch_delta(
    const Dfg& dfg, const Datapath& dp, const Binding& incumbent,
    const std::vector<BindingDelta>& deltas, const ListSchedulerOptions& sched,
    EvalPhase phase) {
  if (static_cast<int>(incumbent.size()) != dfg.num_ops()) {
    throw std::logic_error(
        "evaluate_batch_delta: incumbent binding size mismatch");
  }
  Stopwatch watch;
  ScopedSpan span(sched.tracer, "eval.batch_delta", sched.trace_parent);
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.batches;
    stats_.candidates += static_cast<long long>(deltas.size());
    if (phase == EvalPhase::kImprover) {
      stats_.improver_candidates += static_cast<long long>(deltas.size());
    } else if (phase == EvalPhase::kPcc) {
      stats_.pcc_candidates += static_cast<long long>(deltas.size());
    }
  }

  const bool use_cache = options_.cache_capacity > 0;
  const std::uint64_t signature = context_signature(dfg, dp, sched);
  std::vector<EvalResult> results(deltas.size());
  std::vector<std::uint64_t> keys(deltas.size());
  std::vector<std::size_t> misses;         // result indices to compute
  std::vector<Binding> miss_bindings;      // parallel to `misses` (for insert)
  std::vector<std::pair<std::size_t, std::size_t>> duplicates;
  std::unordered_map<std::uint64_t, std::size_t> first_miss;  // key -> slot
  long long hits = 0;
  long long l1 = 0;
  long long dedup = 0;

  // Materialize each candidate transiently on one scratch binding: the
  // cache key and stored binding must be byte-identical to what the
  // full-binding path would produce for incumbent ⊕ delta.
  Binding scratch = incumbent;
  std::vector<ClusterId> saved;
  for (std::size_t i = 0; i < deltas.size(); ++i) {
    saved.clear();
    for (const auto& [v, c] : deltas[i]) {
      if (!dfg.is_valid(v)) {
        throw std::logic_error("evaluate_batch_delta: invalid op id " +
                               std::to_string(v));
      }
      saved.push_back(scratch[static_cast<std::size_t>(v)]);
      scratch[static_cast<std::size_t>(v)] = c;
    }
    if (use_cache) {
      keys[i] = binding_hash(scratch, signature);
      if (l1_lookup(keys[i], signature, scratch, &results[i])) {
        ++hits;
        ++l1;
      } else if (cache_lookup(keys[i], signature, scratch, &results[i])) {
        ++hits;
        l1_insert(keys[i], signature, scratch, results[i]);
      } else {
        const auto it = first_miss.find(keys[i]);
        if (it != first_miss.end() && miss_bindings[it->second] == scratch) {
          duplicates.emplace_back(i, misses[it->second]);
          ++dedup;
        } else {
          first_miss.emplace(keys[i], misses.size());
          misses.push_back(i);
          miss_bindings.push_back(scratch);
        }
      }
    } else {
      misses.push_back(i);
      miss_bindings.push_back(scratch);
    }
    for (std::size_t j = deltas[i].size(); j-- > 0;) {
      scratch[static_cast<std::size_t>(deltas[i][j].first)] = saved[j];
    }
  }

  if (use_cache) {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.cache_hits += hits;
    stats_.l1_hits += l1;
    stats_.batch_dedup += dedup;
    stats_.cache_misses += static_cast<long long>(misses.size());
  }
  if (span.enabled()) {
    span.attr("candidates", deltas.size());
    span.attr("cache_hits", hits);
    span.attr("l1_hits", l1);
    span.attr("batch_dedup", dedup);
    span.attr("misses", misses.size());
    span.attr("phase", static_cast<int>(phase));
  }

  ListSchedulerOptions task_sched = sched;
  task_sched.trace_parent = span.id();

  // Misses run on retained incremental evaluators: contiguous chunks,
  // one per worker, so set_incumbent's O(N) setup amortizes over the
  // chunk. Each result is pure, so chunking cannot change any output.
  std::vector<EvalResult> computed(misses.size());
  const auto run_chunk = [this, &dfg, &dp, &incumbent, &deltas, &misses,
                          &computed, &task_sched](std::size_t begin,
                                                  std::size_t end) {
    std::unique_ptr<DeltaEvaluator> ev = acquire_delta_evaluator();
    struct Release {  // return the evaluator even if a candidate throws
      EvalEngine* engine;
      std::unique_ptr<DeltaEvaluator>* ev;
      ~Release() { engine->release_delta_evaluator(std::move(*ev)); }
    } release{this, &ev};
    ev->set_incumbent(dfg, dp, incumbent);
    for (std::size_t k = begin; k < end; ++k) {
      computed[k] = ev->evaluate(deltas[misses[k]], task_sched);
    }
  };
  if (pool_ != nullptr && misses.size() > 1) {
    const std::size_t num_chunks = std::min<std::size_t>(
        static_cast<std::size_t>(options_.num_threads), misses.size());
    std::vector<std::function<long()>> tasks;
    tasks.reserve(num_chunks);
    for (std::size_t chunk = 0; chunk < num_chunks; ++chunk) {
      const std::size_t begin = misses.size() * chunk / num_chunks;
      const std::size_t end = misses.size() * (chunk + 1) / num_chunks;
      tasks.push_back([&run_chunk, begin, end] {
        run_chunk(begin, end);
        return static_cast<long>(end - begin);
      });
    }
    pool_->run_batch<long>(std::move(tasks));
  } else if (!misses.empty()) {
    run_chunk(0, misses.size());
  }
  for (std::size_t k = 0; k < misses.size(); ++k) {
    results[misses[k]] = std::move(computed[k]);
  }

  for (const auto& [dup, rep] : duplicates) {
    results[dup] = results[rep];
  }

  if (use_cache) {
    for (std::size_t k = 0; k < misses.size(); ++k) {
      cache_insert(keys[misses[k]], signature, miss_bindings[k],
                   results[misses[k]]);
      l1_insert(keys[misses[k]], signature, miss_bindings[k],
                results[misses[k]]);
    }
  }

  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.eval_ms += watch.elapsed_ms();
  }
  return results;
}

EvalResult EvalEngine::evaluate(const Dfg& dfg, const Datapath& dp,
                                const Binding& binding,
                                const ListSchedulerOptions& sched,
                                EvalPhase phase) {
  return evaluate_batch(dfg, dp, {binding}, sched, phase).front();
}

std::unique_ptr<DeltaEvaluator> EvalEngine::acquire_delta_evaluator() {
  {
    const std::lock_guard<std::mutex> lock(delta_mutex_);
    if (!delta_pool_.empty()) {
      std::unique_ptr<DeltaEvaluator> ev = std::move(delta_pool_.back());
      delta_pool_.pop_back();
      return ev;
    }
  }
  return std::make_unique<DeltaEvaluator>();
}

void EvalEngine::release_delta_evaluator(std::unique_ptr<DeltaEvaluator> ev) {
  if (ev == nullptr) {
    return;
  }
  const std::lock_guard<std::mutex> lock(delta_mutex_);
  delta_pool_.push_back(std::move(ev));
}

EvalStats EvalEngine::stats() const {
  EvalStats snapshot;
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    snapshot = stats_;
  }
  for (const CacheShard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    snapshot.cache_evictions += shard.evictions;
    snapshot.cache_collisions += shard.collisions;
    snapshot.cache_contended += shard.contended.load(std::memory_order_relaxed);
  }
  return snapshot;
}

void EvalEngine::absorb(const EvalStats& other) {
  const std::lock_guard<std::mutex> lock(stats_mutex_);
  stats_.merge(other);
}

std::size_t EvalEngine::cache_size() const {
  std::size_t total = 0;
  for (const CacheShard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    total += shard.map.size();
  }
  return total;
}

std::vector<EvalShardStats> EvalEngine::shard_stats() const {
  std::vector<EvalShardStats> out;
  out.reserve(shards_.size());
  for (const CacheShard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    out.push_back(EvalShardStats{
        shard.map.size(), shard.evictions, shard.collisions,
        shard.contended.load(std::memory_order_relaxed)});
  }
  return out;
}

std::vector<CacheExportEntry> EvalEngine::export_cache() const {
  std::vector<CacheExportEntry> entries;
  for (const CacheShard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    entries.reserve(entries.size() + shard.map.size());
    for (const std::uint64_t key : shard.lru) {
      const auto it = shard.map.find(key);
      entries.push_back(CacheExportEntry{key, it->second.signature,
                                         it->second.binding,
                                         it->second.result});
    }
  }
  return entries;
}

std::size_t EvalEngine::import_cache(
    const std::vector<CacheExportEntry>& entries) {
  if (options_.cache_capacity == 0) {
    return 0;
  }
  std::size_t imported = 0;
  for (const CacheExportEntry& entry : entries) {
    if (binding_hash(entry.binding, entry.signature) != entry.key) {
      continue;  // corrupt/foreign entry: lookups could never serve it
    }
    cache_insert(entry.key, entry.signature, entry.binding, entry.result);
    ++imported;
  }
  return imported;
}

void EvalEngine::note_jobs(long long count) {
  const std::lock_guard<std::mutex> lock(stats_mutex_);
  ++stats_.batches;
  stats_.explore_jobs += count;
}

}  // namespace cvb
