// Structured binding report: the per-cluster and per-resource summary a
// compiler or DSE tool wants after binding — operation counts, FU
// utilization over the schedule, transfer statistics, and boundary
// size. Consumed by examples and printable as text.
#pragma once

#include <iosfwd>
#include <vector>

#include "bind/bound_dfg.hpp"
#include "machine/datapath.hpp"
#include "sched/schedule.hpp"

namespace cvb {

/// Per-(cluster, FU type) usage statistics.
struct FuUsage {
  ClusterId cluster = 0;
  FuType fu = FuType::kAlu;
  int num_units = 0;   ///< N(c, t)
  int num_ops = 0;     ///< operations bound here of this type
  int busy_slots = 0;  ///< sum over ops of dii (unit-cycles occupied)
  /// busy_slots / (num_units * schedule latency); 0 when no units.
  double utilization = 0.0;
};

/// Whole-binding report.
struct BindingReport {
  int latency = 0;
  int num_moves = 0;
  int cut_edges = 0;       ///< cross-cluster dependency edges
  int boundary_ops = 0;    ///< ops with at least one cross-cluster edge
  int bus_busy_slots = 0;  ///< move issues x dii(BUS)
  double bus_utilization = 0.0;
  std::vector<FuUsage> fu_usage;  ///< cluster-major, FU-type-minor
  std::vector<int> ops_per_cluster;
};

/// Builds the report for a bound+scheduled result.
[[nodiscard]] BindingReport make_binding_report(const BoundDfg& bound,
                                                const Datapath& dp,
                                                const Schedule& sched);

/// Pretty-prints the report as an aligned text block.
void write_binding_report(std::ostream& out, const BindingReport& report,
                          const Datapath& dp);

}  // namespace cvb
