// The paper's "driver" algorithm (Section 3): run B-INIT over a sweep
// of load-profile latencies L_PR in [L_CP, L_CP + stretch] and both
// binding directions, keep the candidate with the best scheduled
// (L, M), then optionally hand it to B-ITER.
#pragma once

#include "bind/binding.hpp"
#include "bind/bound_dfg.hpp"
#include "bind/effort.hpp"
#include "bind/eval_engine.hpp"
#include "bind/initial_binder.hpp"
#include "bind/iterative_improver.hpp"
#include "graph/dfg.hpp"
#include "machine/datapath.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/schedule.hpp"
#include "support/cancel.hpp"

namespace cvb {

/// Configuration of the full binding driver.
struct DriverParams {
  /// L_PR sweep width: profile latencies L_CP .. L_CP + max_stretch.
  int max_stretch = 4;
  /// Also try the reverse (outputs-first) binding direction.
  bool try_reverse = true;
  /// Cost weights for B-INIT (Equation 1).
  double alpha = 1.0;
  double beta = 1.0;
  double gamma = 1.1;
  /// Run B-ITER after the initial sweep.
  bool run_iterative = true;
  /// B-ITER knobs.
  IterImproverParams iter;
  /// Number of distinct initial bindings (best-first from the sweep)
  /// that B-ITER is seeded with; the best improved result wins. 1
  /// reproduces the paper's literal description ("the best binding
  /// solution is then passed to the iterative improvement phase");
  /// small values > 1 are a natural multi-start strengthening that
  /// reuses candidates the sweep already paid for.
  int iter_starts = 6;
  /// Candidate-evaluation threads for B-ITER's batches when the driver
  /// creates its own engine (ignored when `engine` is set). 1 = serial.
  int num_threads = 1;
  /// Optional shared evaluation engine (not owned). When null, bind_full
  /// creates a private engine with `num_threads` workers. Results are
  /// identical either way; sharing an engine across calls shares its
  /// schedule cache and aggregates its statistics.
  EvalEngine* engine = nullptr;
  /// Cooperative cancellation / deadline, polled between sweep
  /// candidates, B-ITER starts, and hill-climbing rounds. When it fires
  /// the driver returns the best *complete, schedulable* result found
  /// so far (the sweep always evaluates at least one candidate). The
  /// default empty token never fires — behaviour and results are then
  /// bit-identical to a token-free run.
  CancelToken cancel;
  /// Scheduler options for every candidate evaluation (notably the
  /// `step_budget` resource guard). Defaults preserve the historical
  /// exact-scheduling behaviour.
  ListSchedulerOptions sched;
};

/// A binding together with its scheduled evaluation.
struct BindResult {
  Binding binding;           ///< bn(v) per original operation
  BoundDfg bound;            ///< original DFG + inserted moves
  Schedule schedule;         ///< list schedule of `bound`
  InitialBinderParams best_init;  ///< winning B-INIT parameters
  double init_ms = 0.0;      ///< wall time of the B-INIT sweep
  double iter_ms = 0.0;      ///< wall time of B-ITER (0 if skipped)
  IterImproverStats iter_stats;  ///< B-ITER effort counters
  EvalStats eval_stats;      ///< evaluation-engine counters (cache, batches)
};

/// The DriverParams corresponding to an effort preset (bind/effort.hpp).
[[nodiscard]] DriverParams driver_params_for(BindEffort effort);

/// B-INIT sweep only (phase 1 + parameter exploration): the paper's
/// "B-INIT" column.
[[nodiscard]] BindResult bind_initial_best(const Dfg& dfg, const Datapath& dp,
                                           const DriverParams& params = {});

/// Full algorithm (B-INIT sweep, then B-ITER if enabled): the paper's
/// "B-ITER" column.
[[nodiscard]] BindResult bind_full(const Dfg& dfg, const Datapath& dp,
                                   const DriverParams& params = {});

/// Convenience: schedule an arbitrary binding and package the result.
[[nodiscard]] BindResult evaluate_binding(const Dfg& dfg, const Datapath& dp,
                                          Binding binding,
                                          const ListSchedulerOptions& sched = {});

}  // namespace cvb
