// Incremental candidate evaluation for B-ITER-style move batches.
//
// Every candidate in a B-ITER round differs from the incumbent binding
// in one op's cluster (or two, for the pair perturbations), yet the
// baseline path re-derives the whole evaluation from scratch per
// candidate: a fresh BoundDfg (N + M heap-allocated ops with formatted
// move names, a std::map of move slots), fresh timing vectors, and a
// fresh scheduler state. DeltaEvaluator removes all of that steady-state
// allocation:
//
//  * the binding delta is applied and reverted in O(|changes|) on a
//    retained incumbent copy;
//  * the move overlay is re-derived into a retained FlatBound scratch —
//    an O(V + E) integer scan with zero allocations and no strings (the
//    overlay cannot be patched in place, because move op ids are
//    assigned in first-use order and the scheduler's priority
//    tie-breaks on op id: changing one op's cluster renumbers every
//    later move, so id-exact reconstruction of the overlay is required
//    for bit-identical results);
//  * scheduling runs through the shared template core
//    (sched/list_scheduler_core.hpp) on a retained SchedArena.
//
// Contract: evaluate() is bit-identical to
// EvalEngine::evaluate_uncached(dfg, dp, incumbent ⊕ changes, sched) —
// same (L, M), same Q_U tail vector — for every candidate, which the
// differential tests assert across all Table 1/2 benchmark DFGs.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "bind/binding.hpp"
#include "graph/dfg.hpp"
#include "machine/datapath.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/schedule.hpp"

namespace cvb {

/// One candidate as a set of (operation, new cluster) re-bindings
/// relative to an incumbent binding (B-ITER's singles and pairs).
using BindingDelta = std::vector<std::pair<OpId, ClusterId>>;

/// Arena-backed bound graph: the same structure build_bound_dfg
/// produces (original ops 0..N-1, moves appended in first-use order),
/// stored in reusable flat buffers and satisfying the scheduler core's
/// view interface. Only DeltaEvaluator writes it.
class FlatBound {
 public:
  [[nodiscard]] int num_ops() const { return num_ops_; }
  [[nodiscard]] OpType type(OpId v) const {
    return type_[static_cast<std::size_t>(v)];
  }
  [[nodiscard]] std::span<const OpId> preds(OpId v) const {
    return preds_[static_cast<std::size_t>(v)];
  }
  [[nodiscard]] std::span<const OpId> succs(OpId v) const {
    return succs_[static_cast<std::size_t>(v)];
  }
  [[nodiscard]] ClusterId place(OpId v) const {
    return place_[static_cast<std::size_t>(v)];
  }
  [[nodiscard]] int num_moves() const { return num_moves_; }
  [[nodiscard]] int num_original_ops() const { return num_original_; }
  /// Topology link of move `v` (scheduler-core view interface).
  [[nodiscard]] int link(OpId v) const {
    return link_[static_cast<std::size_t>(v - num_original_)];
  }
  [[nodiscard]] std::span<const OpType> types() const {
    return {type_.data(), static_cast<std::size_t>(num_ops_)};
  }
  /// Error-path only (scheduler diagnostics); moves synthesize "t<k>".
  [[nodiscard]] std::string op_name(OpId v) const;

 private:
  friend class DeltaEvaluator;

  int num_ops_ = 0;
  int num_original_ = 0;
  int num_moves_ = 0;
  std::vector<OpType> type_;
  std::vector<ClusterId> place_;
  std::vector<int> link_;  // per move, parallel to ids >= num_original_
  std::vector<std::vector<OpId>> preds_;
  std::vector<std::vector<OpId>> succs_;
};

struct EvalResult;

/// Reusable per-worker context for incremental candidate evaluation.
/// Not thread-safe: one evaluator per thread (EvalEngine keeps a pool).
class DeltaEvaluator {
 public:
  /// Re-targets the evaluator at (dfg, dp, incumbent). O(N) — done once
  /// per B-ITER round per worker; evaluations against the previous
  /// incumbent's scratch are discarded.
  void set_incumbent(const Dfg& dfg, const Datapath& dp,
                     const Binding& binding);

  /// Evaluates incumbent ⊕ changes. Each change must name a valid op
  /// and a cluster supporting its type (throws std::logic_error
  /// otherwise, mirroring require_valid_binding). The incumbent is
  /// restored before returning, including on exception.
  [[nodiscard]] EvalResult evaluate(const BindingDelta& changes,
                                    const ListSchedulerOptions& sched);

  /// The incumbent binding currently applied (for tests).
  [[nodiscard]] const Binding& incumbent() const { return binding_; }

  /// The retained scheduler arena (for the arena-reuse tests, which
  /// assert its grow count is stable once the evaluator is warm).
  [[nodiscard]] const SchedArena& sched_arena() const { return arena_; }

 private:
  void rebuild_overlay();

  const Dfg* dfg_ = nullptr;
  const Datapath* dp_ = nullptr;
  Binding binding_;  // incumbent; deltas applied then reverted
  std::vector<ClusterId> saved_;  // pre-delta clusters, for the revert
  FlatBound flat_;
  SchedArena arena_;
  Schedule sched_scratch_;
  // (producer, dest cluster) -> move id, generation-stamped so the
  // table never needs clearing between candidates.
  std::vector<OpId> move_slot_;
  std::vector<std::uint64_t> move_gen_;
  std::uint64_t gen_ = 0;
};

}  // namespace cvb
