// Binding representation: the paper's bn(v) function mapping every
// operation of an (original) DFG to a cluster, plus validation against
// the target sets TS(v).
#pragma once

#include <string>
#include <vector>

#include "graph/dfg.hpp"
#include "machine/datapath.hpp"

namespace cvb {

/// A binding assigns each original-DFG operation a cluster:
/// binding[v] == bn(v). Values must be valid cluster ids within TS(v).
using Binding = std::vector<ClusterId>;

/// Checks that `binding` is complete and feasible for `dfg` on `dp`:
/// one entry per operation, each a valid cluster that supports the
/// operation's type. Returns an empty string on success, otherwise a
/// human-readable description of the first violation.
[[nodiscard]] std::string check_binding(const Dfg& dfg, const Binding& binding,
                                        const Datapath& dp);

/// Like check_binding but throws std::logic_error on violation.
void require_valid_binding(const Dfg& dfg, const Binding& binding,
                           const Datapath& dp);

/// Number of cross-cluster data-dependency edges under `binding`
/// (edges (u,v) with bn(u) != bn(v)). This upper-bounds the number of
/// transfers; the actual move count after per-destination deduplication
/// is BoundDfg::num_moves.
[[nodiscard]] int count_cut_edges(const Dfg& dfg, const Binding& binding);

}  // namespace cvb
