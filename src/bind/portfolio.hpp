// cvb::PortfolioBinder — racing heterogeneous binding strategies with
// incumbent exchange.
//
// run_portfolio launches every StrategySpec of a request concurrently
// on a private racing pool; all engine-backed strategies share one
// sharded evaluation cache (bind/eval_engine.hpp), so a schedule any
// of them computes is a cache hit for the rest — the evaluation-reuse
// effect the paper's B-ITER loop is built around, exploited *across*
// strategies. Results meet on a lock-light global-incumbent board
// (atomic packed (latency, moves) key for lock-free peeking, a mutex
// only around the winning payload). A restartable strategy (b-iter)
// that falls behind the board restarts from the global best binding;
// the deadline-aware EffortController (bind/effort.hpp) decides which
// strategies get racing slots each round, so threads drift toward
// whoever is improving.
//
// Determinism contract: racing rounds are barrier-synchronized and
// merged in deterministic (submission) order, so a fixed strategy set
// + fixed seeds reproduces the same winner, result, and attribution
// for any race_threads value. A one-element portfolio is bit-identical
// to the direct run_bind_request path for that spec. Wall-clock fields
// (time_to_best_ms, run_ms) are the only nondeterministic outputs.
//
// Baselines (sa / mincut / exhaustive) never poll cancellation; the
// portfolio still accepts deadline tokens: baseline members run to
// completion and their results are ignored when they finish after the
// deadline (kept only as a last resort when no member produced a
// timely result). A member that throws — organically (e.g. mincut on
// a heterogeneous datapath) or via the "portfolio.strategy" injection
// site — is dropped with its error recorded in the attribution while
// the race continues on the healthy members.
#pragma once

#include <string>
#include <vector>

#include "bind/driver.hpp"
#include "bind/strategy.hpp"
#include "graph/dfg.hpp"
#include "machine/datapath.hpp"
#include "sched/list_scheduler.hpp"
#include "support/cancel.hpp"
#include "support/fault.hpp"

namespace cvb {

class EvalEngine;
class Tracer;

/// Per-strategy attribution of one portfolio race, surfaced through
/// BindResponse, `cvbind --stats-json`, and the cvb_portfolio_* series.
struct StrategyAttribution {
  StrategySpec spec;
  /// Best (latency, moves) this strategy reached itself; -1 = none.
  int latency = -1;
  int moves = -1;
  /// Candidate evaluations credited to this strategy. Exact algorithm
  /// counters where the strategy reports them (sa move trials, b-iter
  /// restart rounds); otherwise a shared-engine before/after delta —
  /// exact with race_threads=1, approximate attribution when segments
  /// overlap (same caveat as BindResponse::eval_stats).
  long long evals = 0;
  /// Schedule-cache hits observed during this strategy's segments
  /// (same delta caveat) — cross-strategy reuse shows up here.
  long long cache_hits = 0;
  /// Times this strategy improved the global incumbent.
  int improvements = 0;
  /// Restarts taken from the global best after being overtaken.
  int restarts = 0;
  /// Wall clock from race start to this strategy's standing best.
  double time_to_best_ms = 0.0;
  /// Total compute wall time across all of its segments.
  double run_ms = 0.0;
  bool winner = false;
  /// Threw and was dropped from the race (error holds the diagnostic).
  bool dropped = false;
  /// The drop came from an armed fault-injection site.
  bool injected = false;
  /// Classification of the drop (kNone unless dropped).
  FaultClass fault = FaultClass::kNone;
  /// Baseline member that finished after the deadline: result ignored
  /// unless no member produced a timely one.
  bool late = false;
  std::string error;
};

/// Race-level attribution.
struct PortfolioStats {
  int winner = -1;     ///< index into strategies; -1 = not a portfolio run
  int exchanges = 0;   ///< incumbent improvements published to the board
  int rounds = 0;      ///< racing rounds executed (>= 1)
  double ms = 0.0;     ///< total race wall time
  std::vector<StrategyAttribution> strategies;

  [[nodiscard]] bool ran() const { return !strategies.empty(); }
};

/// Configuration of one race.
struct PortfolioOptions {
  std::vector<StrategySpec> strategies;  ///< must be non-empty
  PortfolioPolicy policy;
  /// Cancellation/deadline for the whole race. Anytime members honour
  /// it mid-run; baselines are late-filtered (see file comment).
  CancelToken cancel;
  Tracer* tracer = nullptr;
  /// Explicit parent span id for the per-strategy "portfolio.strategy"
  /// spans (racing segments run on pool threads).
  std::uint64_t parent_span = 0;
  /// Scheduler options (step budget, tracer) for every evaluation.
  ListSchedulerOptions sched;
  /// Shared evaluation engine (not owned); null = a private serial
  /// engine for the duration of the race.
  EvalEngine* engine = nullptr;
};

/// The race outcome: the winning strategy's result plus attribution.
struct PortfolioOutcome {
  BindResult best;
  PortfolioStats stats;
};

/// Runs the race. Throws std::invalid_argument for an empty strategy
/// list; rethrows a representative member error only when *every*
/// member dropped (a FaultInjectedError when all drops were injected,
/// so chaos classification survives).
[[nodiscard]] PortfolioOutcome run_portfolio(const Dfg& dfg,
                                             const Datapath& dp,
                                             const PortfolioOptions& opts);

}  // namespace cvb
