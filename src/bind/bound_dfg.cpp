#include "bind/bound_dfg.hpp"

#include <map>
#include <utility>

namespace cvb {

BoundDfg build_bound_dfg(const Dfg& dfg, const Binding& binding,
                         const Datapath& dp) {
  require_valid_binding(dfg, binding, dp);

  BoundDfg bound;
  for (OpId v = 0; v < dfg.num_ops(); ++v) {
    bound.graph.add_op(dfg.type(v), dfg.name(v));
    bound.place.push_back(binding[static_cast<std::size_t>(v)]);
  }

  // carrier[(producer, cluster)] = the op whose result holds producer's
  // value in that cluster's register file: the final hop of the route
  // chain from the producer's home. Hops are created lazily in a
  // deterministic order (first-use order along each route), so on a
  // single bus — where every route is one hop — move ids, names, and
  // creation order are exactly the historical one-move-per-
  // (producer, destination) behavior.
  const Topology& topo = dp.topology();
  std::map<std::pair<OpId, ClusterId>, OpId> carrier;
  const auto get_carrier = [&](OpId producer, ClusterId dest) -> OpId {
    const ClusterId home = binding[static_cast<std::size_t>(producer)];
    OpId cur = producer;
    for (const RouteStep& step : topo.route(home, dest)) {
      const auto key = std::make_pair(producer, step.to);
      const auto it = carrier.find(key);
      if (it != carrier.end()) {
        cur = it->second;
        continue;
      }
      std::string move_name = "t";
      move_name += std::to_string(bound.num_moves + 1);
      const OpId m = bound.graph.add_op(OpType::kMove, std::move(move_name));
      bound.place.push_back(kNoCluster);
      bound.move_producer.push_back(producer);
      bound.move_dest.push_back(step.to);
      bound.move_link.push_back(step.link);
      ++bound.num_moves;
      bound.graph.add_edge(cur, m);
      carrier.emplace(key, m);
      cur = m;
    }
    return cur;
  };

  // Rewrite each operation's operand list in order: local producers
  // stay direct, remote producers read through the shared route-chain
  // carrier, externals stay external. Dependency edges are derived from
  // the operand entries (deduplicated inside add_operand).
  for (OpId v = 0; v < dfg.num_ops(); ++v) {
    const ClusterId cv = binding[static_cast<std::size_t>(v)];
    for (const OpId u : dfg.operands(v)) {
      if (u == kNoOp) {
        bound.graph.add_operand(v, kNoOp);
      } else if (binding[static_cast<std::size_t>(u)] == cv) {
        bound.graph.add_operand(v, u);
      } else {
        bound.graph.add_operand(v, get_carrier(u, cv));
      }
    }
  }
  return bound;
}

}  // namespace cvb
