#include "bind/bound_dfg.hpp"

#include <map>
#include <utility>

namespace cvb {

BoundDfg build_bound_dfg(const Dfg& dfg, const Binding& binding,
                         const Datapath& dp) {
  require_valid_binding(dfg, binding, dp);

  BoundDfg bound;
  for (OpId v = 0; v < dfg.num_ops(); ++v) {
    bound.graph.add_op(dfg.type(v), dfg.name(v));
    bound.place.push_back(binding[static_cast<std::size_t>(v)]);
  }

  // One move per (producer, destination cluster); created lazily in a
  // deterministic order (producers ascending, then first-use order of
  // destination clusters).
  std::map<std::pair<OpId, ClusterId>, OpId> move_of;
  const auto get_move = [&](OpId producer, ClusterId dest) -> OpId {
    const auto key = std::make_pair(producer, dest);
    const auto it = move_of.find(key);
    if (it != move_of.end()) {
      return it->second;
    }
    std::string move_name = "t";
    move_name += std::to_string(bound.num_moves + 1);
    const OpId m = bound.graph.add_op(OpType::kMove, std::move(move_name));
    bound.place.push_back(kNoCluster);
    bound.move_producer.push_back(producer);
    bound.move_dest.push_back(dest);
    ++bound.num_moves;
    bound.graph.add_edge(producer, m);
    move_of.emplace(key, m);
    return m;
  };

  // Rewrite each operation's operand list in order: local producers
  // stay direct, remote producers read through the shared per-
  // destination move, externals stay external. Dependency edges are
  // derived from the operand entries (deduplicated inside add_operand).
  for (OpId v = 0; v < dfg.num_ops(); ++v) {
    const ClusterId cv = binding[static_cast<std::size_t>(v)];
    for (const OpId u : dfg.operands(v)) {
      if (u == kNoOp) {
        bound.graph.add_operand(v, kNoOp);
      } else if (binding[static_cast<std::size_t>(u)] == cv) {
        bound.graph.add_operand(v, u);
      } else {
        bound.graph.add_operand(v, get_move(u, cv));
      }
    }
  }
  return bound;
}

}  // namespace cvb
