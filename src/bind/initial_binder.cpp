#include "bind/initial_binder.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <tuple>

#include "bind/load_profile.hpp"
#include "graph/analysis.hpp"

namespace cvb {

std::vector<OpId> binding_order(const Dfg& dfg, const std::vector<int>& alap,
                                const std::vector<int>& mobility) {
  const std::vector<int> consumers = consumer_counts(dfg);
  std::vector<OpId> order(static_cast<std::size_t>(dfg.num_ops()));
  for (OpId v = 0; v < dfg.num_ops(); ++v) {
    order[static_cast<std::size_t>(v)] = v;
  }
  std::sort(order.begin(), order.end(), [&](OpId a, OpId b) {
    const auto sa = static_cast<std::size_t>(a);
    const auto sb = static_cast<std::size_t>(b);
    return std::make_tuple(alap[sa], mobility[sa], -consumers[sa], a) <
           std::make_tuple(alap[sb], mobility[sb], -consumers[sb], b);
  });
  return order;
}

int transfer_cost_direct(const Dfg& dfg, const Binding& binding, OpId v,
                         ClusterId c) {
  int cost = 0;
  for (const OpId u : dfg.preds(v)) {
    const ClusterId cu = binding[static_cast<std::size_t>(u)];
    if (cu != kNoCluster && cu != c) {
      ++cost;
    }
  }
  return cost;
}

int transfer_cost_common_consumer(const Dfg& dfg, const Binding& binding,
                                  OpId v, ClusterId c) {
  int cost = 0;
  for (const OpId w : dfg.succs(v)) {
    for (const OpId z : dfg.preds(w)) {
      if (z == v) {
        continue;
      }
      const ClusterId cz = binding[static_cast<std::size_t>(z)];
      if (cz != kNoCluster && cz != c) {
        ++cost;
        break;  // one penalty per common consumer
      }
    }
  }
  return cost;
}

int transfer_cost_direct_cycles(const Dfg& dfg, const Binding& binding,
                                const Datapath& dp, OpId v, ClusterId c) {
  int cost = 0;
  for (const OpId u : dfg.preds(v)) {
    const ClusterId cu = binding[static_cast<std::size_t>(u)];
    if (cu != kNoCluster && cu != c) {
      cost += dp.route_latency(cu, c);
    }
  }
  return cost;
}

int transfer_cost_common_consumer_cycles(const Dfg& dfg,
                                         const Binding& binding,
                                         const Datapath& dp, OpId v,
                                         ClusterId c) {
  int cost = 0;
  for (const OpId w : dfg.succs(v)) {
    for (const OpId z : dfg.preds(w)) {
      if (z == v) {
        continue;
      }
      const ClusterId cz = binding[static_cast<std::size_t>(z)];
      if (cz != kNoCluster && cz != c) {
        cost += dp.route_latency(cz, c);
        break;  // one penalty per common consumer
      }
    }
  }
  return cost;
}

namespace {

/// One forward pass of the greedy binder over `dfg` (callers pass the
/// reversed graph to obtain the reverse-direction variant; the
/// algorithm is symmetric, per Section 3.1.4).
Binding bind_forward(const Dfg& dfg, const Datapath& dp,
                     const InitialBinderParams& params) {
  const LatencyTable& lat = dp.latencies();
  const Timing timing = compute_timing(dfg, lat, params.profile_latency);
  LoadProfileSet profiles(dfg, dp, timing);
  const std::vector<OpId> order =
      binding_order(dfg, timing.alap, timing.mobility);

  Binding binding(static_cast<std::size_t>(dfg.num_ops()), kNoCluster);

  for (const OpId v : order) {
    const std::vector<ClusterId> targets = dp.target_set(dfg.type(v));
    if (targets.empty()) {
      throw std::invalid_argument(
          "initial_binding: no cluster can execute operation " + dfg.name(v));
    }

    ClusterId best = kNoCluster;
    double best_cost = std::numeric_limits<double>::infinity();
    double best_tiebreak = 0.0;
    std::vector<LoadProfileSet::TransferFrame> best_transfers;

    for (const ClusterId c : targets) {
      // Direct data dependency transfers: predecessors already bound
      // (the binding order is topological) to a different cluster. The
      // frames route over the topology (one per traversed link); the
      // cycle-weighted trcost charges each transfer its route latency —
      // on a single bus exactly trcost * lat(move), the paper's term.
      const int trcost_dd_cycles =
          transfer_cost_direct_cycles(dfg, binding, dp, v, c);
      std::vector<LoadProfileSet::TransferFrame> transfers;
      for (const OpId u : dfg.preds(v)) {
        const ClusterId cu = binding[static_cast<std::size_t>(u)];
        if (cu != kNoCluster && cu != c) {
          profiles.transfer_frames(u, v, cu, c, transfers);
        }
      }

      // Common consumer component: a transfer will be needed no matter
      // where the affected successors end up (Figure 3).
      const int trcost_cc_cycles =
          transfer_cost_common_consumer_cycles(dfg, binding, dp, v, c);

      const int fucost = profiles.fu_serialization_cost(v, c);
      const int buscost = profiles.bus_serialization_cost(transfers);
      const double cost =
          params.alpha * fucost * dp.dii_op(dfg.type(v)) +
          params.beta * buscost * dp.dii(FuType::kBus) +
          params.gamma * (trcost_dd_cycles + trcost_cc_cycles);

      // Deterministic tie-break: prefer the cluster with the lighter
      // committed load for this FU type, then the lower id.
      const double tiebreak =
          profiles.cluster_load_total(c, fu_type_of(dfg.type(v)));
      if (cost < best_cost - 1e-12 ||
          (cost < best_cost + 1e-12 && tiebreak < best_tiebreak - 1e-12)) {
        best = c;
        best_cost = cost;
        best_tiebreak = tiebreak;
        best_transfers = std::move(transfers);
      }
    }

    binding[static_cast<std::size_t>(v)] = best;
    profiles.commit_op(v, best);
    for (const auto& frame : best_transfers) {
      profiles.commit_transfer(frame);
    }
  }
  return binding;
}

}  // namespace

Binding initial_binding(const Dfg& dfg, const Datapath& dp,
                        const InitialBinderParams& params) {
  if (dfg.num_ops() == 0) {
    return {};
  }
  if (!params.reverse) {
    return bind_forward(dfg, dp, params);
  }
  // Reverse direction: bind the mirrored graph with the same machinery.
  // Operation ids are preserved by Dfg::reversed(), so the resulting
  // binding maps back directly.
  return bind_forward(dfg.reversed(), dp, params);
}

}  // namespace cvb
