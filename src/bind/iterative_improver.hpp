// B-ITER: the paper's iterative improvement phase (Section 3.2).
//
// Each iteration enumerates *boundary perturbations*: every operation
// with an operand or result crossing a cluster boundary is temporarily
// re-bound to the cluster(s) where those operands/results reside; the
// same is done for pairs of operations (we use edge-adjacent pairs —
// swap across a cut edge and joint moves — a documented interpretation
// of the paper's "pairs of operations"). Every candidate binding is
// evaluated by building the bound DFG and list-scheduling it.
//
// Phase A climbs on the lexicographic quality vector
// Q_U = (L, U_0, U_1, ...) — latency first, then progressively thinner
// schedule tails, which gives the search a gradient even when L cannot
// improve in one step (Figure 6). Phase B then climbs on
// Q_M = (L, N_MV) to shed redundant data transfers without regressing
// latency. Both phases stop at the first iteration with no strict
// improvement.
#pragma once

#include "bind/binding.hpp"
#include "graph/dfg.hpp"
#include "machine/datapath.hpp"
#include "sched/list_scheduler.hpp"
#include "support/cancel.hpp"

namespace cvb {

class EvalEngine;

/// Parameters of the iterative improver.
struct IterImproverParams {
  /// Run the Q_U latency-minimization phase.
  bool use_qu_phase = true;
  /// Run the Q_M move-minimization phase afterwards.
  bool use_qm_phase = true;
  /// Also perturb pairs of operations (swap / joint re-bind across cut
  /// edges), not just singles.
  bool enable_pairs = true;
  /// Safety cap on hill-climbing steps per phase.
  int max_iterations = 10'000;
  /// Plateau tolerance (the paper's footnote-4 "more powerful variant"
  /// of the simple terminate-on-no-improvement loop): up to this many
  /// consecutive equal-quality steps to a not-yet-visited binding are
  /// accepted before giving up. 0 reproduces the simple variant.
  int max_plateau_steps = 8;
  /// Cooperative cancellation: polled once per hill-climbing round.
  /// When it fires the climber stops and returns the best binding found
  /// so far (never worse than the input). The default empty token never
  /// fires, so results stay bit-identical to the uncancellable code.
  CancelToken cancel;
  /// Scheduler options for candidate evaluation (step_budget guard
  /// included). Defaults reproduce the historical behaviour.
  ListSchedulerOptions sched;
};

/// Statistics of one improve_binding() run (for benches/diagnostics).
struct IterImproverStats {
  int qu_iterations = 0;       ///< accepted Q_U steps
  int qm_iterations = 0;       ///< accepted Q_M steps
  long candidates_evaluated = 0;  ///< schedules computed
};

/// Improves `start` (must be valid for dfg/dp; throws std::logic_error
/// otherwise). Returns a binding whose scheduled quality is never worse
/// than the input's under (L, then U-vector, then M).
///
/// Each hill-climbing round submits all of its candidate bindings to
/// `engine` as one batch (see bind/eval_engine.hpp) and reduces the
/// results in submission order, so the outcome is bit-identical for
/// every engine thread count. When `engine` is null a private serial
/// engine is used — the pre-engine behaviour.
[[nodiscard]] Binding improve_binding(const Dfg& dfg, const Datapath& dp,
                                      Binding start,
                                      const IterImproverParams& params = {},
                                      IterImproverStats* stats = nullptr,
                                      EvalEngine* engine = nullptr);

}  // namespace cvb
