#include "bind/exhaustive.hpp"

#include <limits>
#include <stdexcept>
#include <utility>
#include <vector>

#include "sched/list_scheduler.hpp"

namespace cvb {

std::uint64_t binding_space_size(const Dfg& dfg, const Datapath& dp) {
  std::uint64_t size = 1;
  for (OpId v = 0; v < dfg.num_ops(); ++v) {
    const std::uint64_t ts = dp.target_set(dfg.type(v)).size();
    if (ts == 0) {
      return 0;
    }
    if (size > std::numeric_limits<std::uint64_t>::max() / ts) {
      return std::numeric_limits<std::uint64_t>::max();
    }
    size *= ts;
  }
  return size;
}

BindResult exhaustive_binding(const Dfg& dfg, const Datapath& dp,
                              std::uint64_t limit) {
  if (dfg.num_ops() == 0) {
    throw std::invalid_argument("exhaustive_binding: empty DFG");
  }
  const std::uint64_t space = binding_space_size(dfg, dp);
  if (space == 0) {
    throw std::invalid_argument(
        "exhaustive_binding: some operation has an empty target set");
  }
  if (space > limit) {
    throw std::invalid_argument("exhaustive_binding: search space " +
                                std::to_string(space) + " exceeds limit " +
                                std::to_string(limit));
  }

  std::vector<std::vector<ClusterId>> targets;
  targets.reserve(static_cast<std::size_t>(dfg.num_ops()));
  for (OpId v = 0; v < dfg.num_ops(); ++v) {
    targets.push_back(dp.target_set(dfg.type(v)));
  }

  Binding current(static_cast<std::size_t>(dfg.num_ops()), 0);
  std::vector<std::size_t> index(static_cast<std::size_t>(dfg.num_ops()), 0);
  for (OpId v = 0; v < dfg.num_ops(); ++v) {
    current[static_cast<std::size_t>(v)] =
        targets[static_cast<std::size_t>(v)].front();
  }

  BindResult best;
  bool have_best = false;
  while (true) {
    BindResult candidate = evaluate_binding(dfg, dp, current);
    const auto key = [](const BindResult& r) {
      return std::make_pair(r.schedule.latency, r.schedule.num_moves);
    };
    if (!have_best || key(candidate) < key(best)) {
      best = std::move(candidate);
      have_best = true;
    }
    // Odometer increment over the per-op target sets.
    int v = 0;
    for (; v < dfg.num_ops(); ++v) {
      const auto sv = static_cast<std::size_t>(v);
      if (++index[sv] < targets[sv].size()) {
        current[sv] = targets[sv][index[sv]];
        break;
      }
      index[sv] = 0;
      current[sv] = targets[sv].front();
    }
    if (v == dfg.num_ops()) {
      break;
    }
  }
  return best;
}

}  // namespace cvb
