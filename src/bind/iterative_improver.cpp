#include "bind/iterative_improver.hpp"

#include <algorithm>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "bind/eval_engine.hpp"
#include "sched/quality.hpp"
#include "support/trace.hpp"

namespace cvb {

namespace {

/// A perturbation: one or two (operation, new cluster) re-bindings.
using Candidate = std::vector<std::pair<OpId, ClusterId>>;

/// Clusters of v's cross-cluster neighbours — the places where one of
/// its operands or results currently resides.
std::set<ClusterId> neighbor_clusters(const Dfg& dfg, const Binding& binding,
                                      OpId v) {
  std::set<ClusterId> clusters;
  const ClusterId cv = binding[static_cast<std::size_t>(v)];
  const auto consider = [&](OpId u) {
    const ClusterId cu = binding[static_cast<std::size_t>(u)];
    if (cu != cv) {
      clusters.insert(cu);
    }
  };
  for (const OpId u : dfg.preds(v)) {
    consider(u);
  }
  for (const OpId u : dfg.succs(v)) {
    consider(u);
  }
  return clusters;
}

/// Enumerates the boundary perturbations of `binding` (Section 3.2):
/// singles (re-bind a boundary op to a neighbour's cluster) and,
/// optionally, pairs across cut edges (swap and joint re-bind).
std::vector<Candidate> boundary_candidates(const Dfg& dfg, const Datapath& dp,
                                           const Binding& binding,
                                           bool enable_pairs) {
  std::vector<Candidate> candidates;
  std::set<Candidate> seen;
  const auto push = [&](Candidate cand) {
    // Normalize: drop no-op changes, sort, dedupe.
    std::erase_if(cand, [&](const auto& change) {
      return binding[static_cast<std::size_t>(change.first)] == change.second;
    });
    if (cand.empty()) {
      return;
    }
    std::sort(cand.begin(), cand.end());
    if (seen.insert(cand).second) {
      candidates.push_back(std::move(cand));
    }
  };

  for (OpId v = 0; v < dfg.num_ops(); ++v) {
    if (neighbor_clusters(dfg, binding, v).empty()) {
      continue;  // not a boundary operation
    }
    // Re-bind a boundary operation to any feasible cluster: moving to a
    // neighbour's cluster removes transfers; moving to a third cluster
    // is the paper's "horizontal" load redistribution.
    for (const ClusterId c : dp.target_set(dfg.type(v))) {
      push({{v, c}});
    }
  }
  if (candidates.empty()) {
    // Degenerate binding with no cluster boundaries (e.g. everything on
    // one cluster): fall back to single-op migrations everywhere so the
    // improver can start carving out a partition at all.
    for (OpId v = 0; v < dfg.num_ops(); ++v) {
      for (const ClusterId c : dp.target_set(dfg.type(v))) {
        push({{v, c}});
      }
    }
  }

  if (enable_pairs) {
    for (OpId u = 0; u < dfg.num_ops(); ++u) {
      for (const OpId v : dfg.succs(u)) {
        const ClusterId cu = binding[static_cast<std::size_t>(u)];
        const ClusterId cv = binding[static_cast<std::size_t>(v)];
        if (cu == cv) {
          continue;
        }
        // Swap across the cut edge.
        if (dp.supports(cv, dfg.type(u)) && dp.supports(cu, dfg.type(v))) {
          push({{u, cv}, {v, cu}});
        }
        // Joint move of both endpoints to a shared cluster.
        std::set<ClusterId> joint = neighbor_clusters(dfg, binding, u);
        const std::set<ClusterId> nv = neighbor_clusters(dfg, binding, v);
        joint.insert(nv.begin(), nv.end());
        joint.insert(cu);
        joint.insert(cv);
        for (const ClusterId c : joint) {
          if (dp.supports(c, dfg.type(u)) && dp.supports(c, dfg.type(v))) {
            push({{u, c}, {v, c}});
          }
        }
      }
    }
  }
  return candidates;
}

/// Best-improvement hill climbing with bounded plateau walking under an
/// arbitrary strict-weak-order quality (smaller is better). All of a
/// round's candidates are evaluated as one engine batch; the reduction
/// below scans the results in submission order, reproducing the serial
/// scan's tie-breaking exactly for any thread count. Returns the number
/// of strictly improving steps.
template <typename Quality, typename Extract>
int climb(const Dfg& dfg, const Datapath& dp, Binding& binding,
          EvalEngine& engine, const Extract& extract,
          const IterImproverParams& params, IterImproverStats* stats) {
  if (params.cancel.stop_requested()) {
    return 0;  // pre-expired deadline: the input is the best-so-far
  }
  int improving_steps = 0;
  int total_steps = 0;
  int plateau_steps = 0;
  Quality current =
      extract(engine.evaluate(dfg, dp, binding, params.sched,
                              EvalPhase::kImprover));
  Binding best_binding = binding;
  Quality best_quality = current;
  std::set<Binding> visited{binding};

  while (total_steps < params.max_iterations) {
    if (params.cancel.stop_requested()) {
      break;  // anytime exit: fall through to the best-so-far restore
    }
    ScopedSpan round(params.sched.tracer, "b-iter.round");
    const std::vector<Candidate> candidates =
        boundary_candidates(dfg, dp, binding, params.enable_pairs);
    // Candidates go to the engine as deltas against the incumbent: the
    // incremental path skips the per-candidate bound-DFG rebuild while
    // returning bit-identical results (and cache entries) to
    // evaluate_batch on materialized bindings.
    const std::vector<EvalResult> results = engine.evaluate_batch_delta(
        dfg, dp, binding, candidates, params.sched, EvalPhase::kImprover);
    if (stats != nullptr) {
      stats->candidates_evaluated += static_cast<long>(candidates.size());
    }
    if (round.enabled()) {
      round.attr("pass", total_steps);
      round.attr("candidates", candidates.size());
      int best_latency = 0;
      int best_moves = 0;
      for (const EvalResult& r : results) {
        if (best_latency == 0 ||
            std::pair(r.latency, r.num_moves) <
                std::pair(best_latency, best_moves)) {
          best_latency = r.latency;
          best_moves = r.num_moves;
        }
      }
      round.attr("best_latency", best_latency);
      round.attr("best_moves", best_moves);
    }

    bool have_improvement = false;
    Quality step_quality = current;
    Candidate step_candidate;
    bool have_lateral = false;
    Binding lateral_binding;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      const Quality q = extract(results[i]);
      if (q < step_quality) {
        step_quality = q;
        step_candidate = candidates[i];
        have_improvement = true;
      } else if (!have_improvement && !have_lateral && q == current) {
        // Materialize the trial binding only for this (rare) case.
        Binding trial = binding;
        for (const auto& [v, c] : candidates[i]) {
          trial[static_cast<std::size_t>(v)] = c;
        }
        if (!visited.contains(trial)) {
          have_lateral = true;
          lateral_binding = std::move(trial);
        }
      }
    }

    if (have_improvement) {
      for (const auto& [v, c] : step_candidate) {
        binding[static_cast<std::size_t>(v)] = c;
      }
      current = step_quality;
      plateau_steps = 0;
      ++improving_steps;
    } else if (have_lateral && plateau_steps < params.max_plateau_steps) {
      // Equal-quality sidestep to unexplored ground (footnote-4
      // variant): bounded, and never past a previously seen binding,
      // so the walk terminates.
      binding = std::move(lateral_binding);
      ++plateau_steps;
    } else {
      break;
    }
    visited.insert(binding);
    if (current < best_quality) {
      best_quality = current;
      best_binding = binding;
    }
    ++total_steps;
  }

  if (best_quality < current) {
    binding = best_binding;  // a plateau walk may end off the best point
  }
  return improving_steps;
}

}  // namespace

Binding improve_binding(const Dfg& dfg, const Datapath& dp, Binding start,
                        const IterImproverParams& params,
                        IterImproverStats* stats, EvalEngine* engine) {
  require_valid_binding(dfg, start, dp);

  std::unique_ptr<EvalEngine> local;
  if (engine == nullptr) {
    local = std::make_unique<EvalEngine>();
    engine = local.get();
  }

  // Both phases share one cache: a binding scheduled during the Q_U
  // phase answers Q_M queries for free (the EvalResult carries L, M,
  // and the tail vector together).
  const auto extract_qu = [](const EvalResult& r) {
    return QualityU{r.latency, r.tail_counts};
  };
  const auto extract_qm = [](const EvalResult& r) {
    return QualityM{r.latency, r.num_moves};
  };

  if (params.use_qu_phase) {
    ScopedSpan phase(params.sched.tracer, "b-iter.qu");
    const int steps = climb<QualityU>(dfg, dp, start, *engine, extract_qu,
                                      params, stats);
    phase.attr("improving_steps", steps);
    if (stats != nullptr) {
      stats->qu_iterations = steps;
    }
  }
  if (params.use_qm_phase) {
    ScopedSpan phase(params.sched.tracer, "b-iter.qm");
    const int steps = climb<QualityM>(dfg, dp, start, *engine, extract_qm,
                                      params, stats);
    phase.attr("improving_steps", steps);
    if (stats != nullptr) {
      stats->qm_iterations = steps;
    }
  }
  return start;
}

}  // namespace cvb
