// cvb::StrategySpec — the typed description of one binding strategy,
// replacing the raw `BindRequest::algorithm` string.
//
// A spec bundles the strategy's identity (StrategyKind, single-sourced
// next to BindStatus in service/status.hpp) with its per-strategy
// parameters: the effort preset driving DriverParams for b-iter /
// b-init, and the seed driving the stochastic baselines. The string
// spellings ("b-iter", "sa", ...) survive as a parsing shim
// (StrategySpec::from_name) so NDJSON and CLI callers keep working
// unchanged.
//
// PortfolioPolicy configures racing when a request carries a list of
// specs instead of one (see bind/portfolio.hpp).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "bind/effort.hpp"
#include "service/status.hpp"

namespace cvb {

/// One strategy plus its tuning. Value type; equality is used by the
/// differential tests and the service quarantine key.
struct StrategySpec {
  StrategyKind kind = StrategyKind::kBIter;
  /// Effort preset (drives DriverParams for b-iter / b-init; the other
  /// strategies ignore it).
  BindEffort effort = BindEffort::kBalanced;
  /// Random seed for the stochastic baselines (sa).
  std::uint64_t seed = 1;

  /// Parsing shim for the historical `algorithm` strings. Throws the
  /// strategy_kind_from_string error (naming the valid set) on unknown
  /// names.
  [[nodiscard]] static StrategySpec from_name(std::string_view name);

  /// The wire name of the kind ("b-iter", "sa", ...).
  [[nodiscard]] const char* name() const { return to_string(kind); }

  friend bool operator==(const StrategySpec& a, const StrategySpec& b) {
    return a.kind == b.kind && a.effort == b.effort && a.seed == b.seed;
  }
  friend bool operator!=(const StrategySpec& a, const StrategySpec& b) {
    return !(a == b);
  }
};

/// Racing policy for portfolio requests.
struct PortfolioPolicy {
  /// Threads racing strategies (one strategy task per thread at a
  /// time); 0 = one per portfolio member. Results are identical for
  /// any value — the racing rounds are barrier-synchronized.
  int race_threads = 0;
  /// Cap on incumbent-exchange restart rounds after the initial run.
  int max_rounds = 8;

  friend bool operator==(const PortfolioPolicy& a, const PortfolioPolicy& b) {
    return a.race_threads == b.race_threads && a.max_rounds == b.max_rounds;
  }
};

/// The default racing set for `--portfolio`: the paper's driver at the
/// given effort, the fast B-INIT sweep, PCC, and a seeded SA run.
/// mincut is safe to add by hand — a heterogeneous datapath just drops
/// it from the race instead of failing the request.
[[nodiscard]] std::vector<StrategySpec> default_portfolio(
    BindEffort effort = BindEffort::kBalanced, std::uint64_t seed = 1);

/// Parses the CLI racing-set spelling: a comma list of strategy names,
/// each with an optional per-entry seed ("b-iter,sa:7,sa:8"). Every
/// entry takes `effort`, and `default_seed` when it has no ":seed".
/// Throws std::invalid_argument (naming the valid strategy set) on
/// unknown names, bad seeds, or an empty list.
[[nodiscard]] std::vector<StrategySpec> parse_strategy_csv(
    const std::string& list, BindEffort effort, std::uint64_t default_seed);

/// Human label for a request's strategy choice: the single strategy's
/// name, or "portfolio(b-iter,sa,...)" for a racing set.
[[nodiscard]] std::string strategy_set_label(
    const StrategySpec& strategy, const std::vector<StrategySpec>& portfolio);

}  // namespace cvb
