#include "bind/strategy.hpp"

#include <stdexcept>

#include "support/strings.hpp"

namespace cvb {

StrategySpec StrategySpec::from_name(std::string_view name) {
  StrategySpec spec;
  spec.kind = strategy_kind_from_string(name);
  return spec;
}

std::vector<StrategySpec> default_portfolio(BindEffort effort,
                                            std::uint64_t seed) {
  std::vector<StrategySpec> specs;
  specs.push_back({StrategyKind::kBIter, effort, seed});
  specs.push_back({StrategyKind::kBInit, effort, seed});
  specs.push_back({StrategyKind::kPcc, effort, seed});
  specs.push_back({StrategyKind::kSa, effort, seed});
  return specs;
}

std::vector<StrategySpec> parse_strategy_csv(const std::string& list,
                                             BindEffort effort,
                                             std::uint64_t default_seed) {
  std::vector<StrategySpec> specs;
  for (const std::string& item : split(list, ',')) {
    StrategySpec spec;
    spec.effort = effort;
    spec.seed = default_seed;
    const std::size_t colon = item.find(':');
    if (colon == std::string::npos) {
      spec.kind = strategy_kind_from_string(item);
    } else {
      spec.kind = strategy_kind_from_string(item.substr(0, colon));
      const std::string seed_text = item.substr(colon + 1);
      try {
        spec.seed = std::stoull(seed_text);
      } catch (const std::exception&) {
        throw std::invalid_argument("bad strategy seed '" + seed_text +
                                    "' in '" + item + "'");
      }
    }
    specs.push_back(spec);
  }
  if (specs.empty()) {
    throw std::invalid_argument(
        "a strategy list needs at least one name (valid: " +
        strategy_name_list() + ")");
  }
  return specs;
}

std::string strategy_set_label(const StrategySpec& strategy,
                               const std::vector<StrategySpec>& portfolio) {
  if (portfolio.empty()) {
    return strategy.name();
  }
  std::string label = "portfolio(";
  for (std::size_t i = 0; i < portfolio.size(); ++i) {
    if (i > 0) {
      label += ',';
    }
    label += portfolio[i].name();
  }
  label += ')';
  return label;
}

}  // namespace cvb
