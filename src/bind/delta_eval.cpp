#include "bind/delta_eval.hpp"

#include <algorithm>
#include <stdexcept>

#include "bind/eval_engine.hpp"
#include "sched/list_scheduler_core.hpp"
#include "sched/quality.hpp"
#include "support/fault.hpp"

namespace cvb {

namespace {

/// Reverts the applied binding delta on scope exit (including unwinds
/// from the scheduler: step-budget overruns, injected faults), so the
/// evaluator's incumbent state can never be corrupted by a failed
/// candidate.
class ScopedRevert {
 public:
  ScopedRevert(Binding& binding, std::vector<ClusterId>& place,
               const BindingDelta& changes, std::vector<ClusterId>& saved)
      : binding_(binding), place_(place), changes_(changes), saved_(saved) {}

  ~ScopedRevert() {
    // Reverse order, so an op repeated in `changes` restores its
    // original cluster (boundary_candidates never repeats ops, but the
    // contract should not depend on that).
    for (std::size_t i = changes_.size(); i-- > 0;) {
      const auto sv = static_cast<std::size_t>(changes_[i].first);
      binding_[sv] = saved_[i];
      if (sv < place_.size()) {
        place_[sv] = saved_[i];
      }
    }
  }

 private:
  Binding& binding_;
  std::vector<ClusterId>& place_;
  const BindingDelta& changes_;
  std::vector<ClusterId>& saved_;
};

}  // namespace

std::string FlatBound::op_name(OpId v) const {
  if (v >= num_original_) {
    return "t" + std::to_string(v - num_original_ + 1);
  }
  return "op" + std::to_string(v);
}

void DeltaEvaluator::set_incumbent(const Dfg& dfg, const Datapath& dp,
                                   const Binding& binding) {
  require_valid_binding(dfg, binding, dp);
  dfg_ = &dfg;
  dp_ = &dp;
  binding_ = binding;

  const int n = dfg.num_ops();
  flat_.num_original_ = n;
  flat_.num_ops_ = n;
  flat_.num_moves_ = 0;
  flat_.type_.assign(dfg.types().begin(), dfg.types().end());
  flat_.place_.assign(binding_.begin(), binding_.end());
  if (flat_.preds_.size() < static_cast<std::size_t>(n)) {
    flat_.preds_.resize(static_cast<std::size_t>(n));
    flat_.succs_.resize(static_cast<std::size_t>(n));
  }
  const auto slots =
      static_cast<std::size_t>(n) * static_cast<std::size_t>(dp.num_clusters());
  move_slot_.assign(slots, kNoOp);
  move_gen_.assign(slots, 0);
  gen_ = 0;
}

void DeltaEvaluator::rebuild_overlay() {
  const Dfg& dfg = *dfg_;
  const int n = flat_.num_original_;
  ++gen_;
  flat_.num_ops_ = n;
  flat_.num_moves_ = 0;
  flat_.type_.resize(static_cast<std::size_t>(n));
  flat_.place_.resize(static_cast<std::size_t>(n));
  for (OpId v = 0; v < n; ++v) {
    const auto sv = static_cast<std::size_t>(v);
    flat_.preds_[sv].clear();
    flat_.succs_[sv].clear();
    flat_.place_[sv] = binding_[sv];
  }

  const auto num_clusters = static_cast<std::size_t>(dp_->num_clusters());
  const Topology& topo = dp_->topology();
  flat_.link_.clear();
  // Mirrors build_bound_dfg's lazy route-chain creation: the hops
  // carrying (producer, cluster) are created at their first use during
  // the scan below, which assigns them the same ids a fresh build
  // would. The memo slot for (producer, c) holds the op delivering the
  // producer's value into c — on a single bus, exactly the historical
  // one-move-per-destination table.
  const auto get_carrier = [&](OpId producer, ClusterId dest) -> OpId {
    const ClusterId home = binding_[static_cast<std::size_t>(producer)];
    OpId cur = producer;
    for (const RouteStep& step : topo.route(home, dest)) {
      const std::size_t slot =
          static_cast<std::size_t>(producer) * num_clusters +
          static_cast<std::size_t>(step.to);
      if (move_gen_[slot] == gen_) {
        cur = move_slot_[slot];
        continue;
      }
      const OpId m = flat_.num_ops_++;
      ++flat_.num_moves_;
      flat_.type_.push_back(OpType::kMove);
      flat_.place_.push_back(kNoCluster);
      flat_.link_.push_back(step.link);
      const auto sm = static_cast<std::size_t>(m);
      if (sm >= flat_.preds_.size()) {
        flat_.preds_.emplace_back();
        flat_.succs_.emplace_back();
      } else {
        flat_.preds_[sm].clear();
        flat_.succs_[sm].clear();
      }
      flat_.preds_[sm].push_back(cur);
      flat_.succs_[static_cast<std::size_t>(cur)].push_back(m);
      move_gen_[slot] = gen_;
      move_slot_[slot] = m;
      cur = m;
    }
    return cur;
  };

  // Operand rewrite in the same scan order as build_bound_dfg, with
  // Dfg::add_operand's dedup semantics (an edge appears once however
  // many operand slots repeat the producer).
  for (OpId v = 0; v < n; ++v) {
    const auto sv = static_cast<std::size_t>(v);
    const ClusterId cv = binding_[sv];
    for (const OpId u : dfg.operands(v)) {
      if (u == kNoOp) {
        continue;  // external live-in: no edge
      }
      const OpId p =
          binding_[static_cast<std::size_t>(u)] == cv ? u : get_carrier(u, cv);
      auto& pv = flat_.preds_[sv];
      if (std::find(pv.begin(), pv.end(), p) == pv.end()) {
        pv.push_back(p);
        flat_.succs_[static_cast<std::size_t>(p)].push_back(v);
      }
    }
  }
}

EvalResult DeltaEvaluator::evaluate(const BindingDelta& changes,
                                    const ListSchedulerOptions& sched) {
  if (dfg_ == nullptr) {
    throw std::logic_error("DeltaEvaluator: set_incumbent not called");
  }
  CVB_INJECT("eval.task");  // same chaos site as evaluate_uncached

  // Validate before touching any state (mirrors require_valid_binding).
  for (const auto& [v, c] : changes) {
    if (!dfg_->is_valid(v)) {
      throw std::logic_error("DeltaEvaluator: invalid op id " +
                             std::to_string(v));
    }
    if (c < 0 || c >= dp_->num_clusters() || !dp_->supports(c, dfg_->type(v))) {
      throw std::logic_error("DeltaEvaluator: op " + std::to_string(v) +
                             " cannot run on cluster " + std::to_string(c));
    }
  }

  saved_.clear();
  for (const auto& [v, c] : changes) {
    saved_.push_back(binding_[static_cast<std::size_t>(v)]);
    binding_[static_cast<std::size_t>(v)] = c;
  }
  const ScopedRevert revert(binding_, flat_.place_, changes, saved_);

  rebuild_overlay();
  detail::list_schedule_core(flat_, *dp_, sched, arena_, sched_scratch_);
  QualityU qu = compute_quality_u(flat_.types(), flat_.num_original_ops(),
                                  *dp_, sched_scratch_);
  EvalResult result;
  result.latency = sched_scratch_.latency;
  result.num_moves = sched_scratch_.num_moves;
  result.tail_counts = std::move(qu.tail_counts);
  return result;
}

}  // namespace cvb
