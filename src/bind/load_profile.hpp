// Force-directed-style load profiles (paper Section 3.1.2, Figure 4).
//
// The initial binder estimates serialization penalties by comparing,
// per FU type, the normalized load profile of each cluster against the
// normalized load profile of the *equivalent centralized datapath*
// (all FUs of that type pooled together). Profiles are computed on the
// original DFG for a chosen profile latency L_PR and never re-leveled
// during binding — this relaxation is what keeps B-INIT cheap.
//
// Each operation v spreads one unit of work uniformly over its time
// frame: load(v, tau) = 1 / (mobility(v) + 1) for
// tau in [asap(v), alap(v) + dii(v) - 1], zero elsewhere.
//
// Inter-cluster data transfers are approximated "on the side": a
// transfer for edge (u, v) is placed right after its producer
// completes (start frame begins at asap(u) + lat(u)) and inherits the
// consumer's mobility decreased by lat(move), clamped at zero.
#pragma once

#include <vector>

#include "graph/analysis.hpp"
#include "graph/dfg.hpp"
#include "machine/datapath.hpp"

namespace cvb {

/// Mutable profile state for one run of the initial binder.
class LoadProfileSet {
 public:
  /// Builds centralized profiles for `dfg` with the time frames in
  /// `timing` (whose target_latency is the profile latency L_PR).
  /// Cluster and bus profiles start empty and are filled through
  /// commit_op() / commit_transfer() as binding proceeds.
  LoadProfileSet(const Dfg& dfg, const Datapath& dp, const Timing& timing);

  /// Time-frame description of a data transfer for the dependency
  /// (producer -> consumer); `value` is its per-cycle load.
  struct TransferFrame {
    int begin = 0;  ///< first cycle of the frame
    int end = 0;    ///< last cycle of the frame (inclusive)
    double value = 0.0;
  };

  /// FU serialization penalty fucost(v, c): with v's load temporarily
  /// added to cluster c's profile for v's FU type, the number of cycles
  /// where the cluster's normalized load exceeds
  /// max(centralized load, 1).
  [[nodiscard]] int fu_serialization_cost(OpId v, ClusterId c) const;

  /// Bus serialization penalty: with `extra` transfer frames
  /// temporarily added to the bus profile, the number of cycles where
  /// the normalized bus load exceeds 1.
  [[nodiscard]] int bus_serialization_cost(
      const std::vector<TransferFrame>& extra) const;

  /// The transfer frame for dependency (producer -> consumer), placed
  /// right after the producer completes, with the consumer's mobility
  /// decreased by lat(move) (clamped at 0).
  [[nodiscard]] TransferFrame transfer_frame(OpId producer,
                                             OpId consumer) const;

  /// Permanently adds operation v's load to cluster c's profile.
  void commit_op(OpId v, ClusterId c);

  /// Permanently adds a transfer frame to the bus profile.
  void commit_transfer(const TransferFrame& frame);

  /// Total committed normalized load of FU type `t` on cluster `c`
  /// (used as a deterministic load-balancing tie-breaker).
  [[nodiscard]] double cluster_load_total(ClusterId c, FuType t) const;

  /// Number of profile levels tracked (>= L_PR; includes slack for
  /// dii-extended frames).
  [[nodiscard]] int horizon() const { return horizon_; }

 private:
  /// Per-cycle frame of operation v: [begin, end] inclusive and value.
  struct OpFrame {
    int begin = 0;
    int end = 0;
    double value = 0.0;
  };

  [[nodiscard]] OpFrame op_frame(OpId v) const;

  const Dfg* dfg_;
  const Datapath* dp_;
  const Timing* timing_;
  int horizon_;

  /// load_dp_[t][tau]: normalized centralized profile per FU type.
  std::vector<std::vector<double>> load_dp_;
  /// load_cl_[c][t][tau]: normalized committed cluster profiles.
  std::vector<std::vector<std::vector<double>>> load_cl_;
  /// Normalized committed bus profile.
  std::vector<double> load_bus_;
};

}  // namespace cvb
