// Force-directed-style load profiles (paper Section 3.1.2, Figure 4).
//
// The initial binder estimates serialization penalties by comparing,
// per FU type, the normalized load profile of each cluster against the
// normalized load profile of the *equivalent centralized datapath*
// (all FUs of that type pooled together). Profiles are computed on the
// original DFG for a chosen profile latency L_PR and never re-leveled
// during binding — this relaxation is what keeps B-INIT cheap.
//
// Each operation v spreads one unit of work uniformly over its time
// frame: load(v, tau) = 1 / (mobility(v) + 1) for
// tau in [asap(v), alap(v) + dii(v) - 1], zero elsewhere.
//
// Inter-cluster data transfers are approximated "on the side": a
// transfer for edge (u, v) is placed right after its producer
// completes (start frame begins at asap(u) + lat(u)) and inherits the
// consumer's mobility decreased by the route's transfer latency,
// clamped at zero. The interconnect profile is kept *per topology
// link* (machine/topology.hpp): a transfer between non-adjacent
// clusters contributes one frame per traversed link, each shifted by
// the accumulated hop latency, and each link is normalized by its own
// capacity. On the paper's single bus this collapses to one frame on
// the one link, normalized by N(BUS) — the historical behavior.
//
// Horizon sizing. Frames are clipped at `horizon()`, so the horizon
// must dominate every frame end or committed mass is silently lost:
//  * op frames: end = alap(v) + dii(v) - 1 <= L_PR - lat(v) + max_dii
//    - 1 < L_PR + max_dii;
//  * single-hop transfers: begin = asap(u) + lat(u) <= asap(v) and the
//    frame mobility is the consumer's *reduced* mobility, so end <=
//    alap(v) + dii(BUS) - 1 < L_PR + max_dii;
//  * multi-hop chains shift hop k's frame by the accumulated hop
//    latency, so the last hop can end up to max_route_latency cycles
//    past the single-hop bound.
// Hence horizon = L_PR + max_dii + max_route_latency (which is
// L_PR + max_dii + lat(move) on a single bus — the historical value,
// now proven sufficient rather than assumed). clipped() counts any
// mass dropped past the horizon anyway; regression tests assert it
// stays zero.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/analysis.hpp"
#include "graph/dfg.hpp"
#include "machine/datapath.hpp"

namespace cvb {

/// Mutable profile state for one run of the initial binder.
class LoadProfileSet {
 public:
  /// Builds centralized profiles for `dfg` with the time frames in
  /// `timing` (whose target_latency is the profile latency L_PR).
  /// Cluster and link profiles start empty and are filled through
  /// commit_op() / commit_transfer() as binding proceeds.
  LoadProfileSet(const Dfg& dfg, const Datapath& dp, const Timing& timing);

  /// Time-frame description of a data transfer for the dependency
  /// (producer -> consumer) on one interconnect link; `value` is its
  /// per-cycle load (normalized by the link's capacity on commit).
  struct TransferFrame {
    int begin = 0;  ///< first cycle of the frame
    int end = 0;    ///< last cycle of the frame (inclusive)
    double value = 0.0;
    int link = 0;  ///< topology link the frame occupies
  };

  /// FU serialization penalty fucost(v, c): with v's load temporarily
  /// added to cluster c's profile for v's FU type, the number of cycles
  /// where the cluster's normalized load exceeds
  /// max(centralized load, 1).
  [[nodiscard]] int fu_serialization_cost(OpId v, ClusterId c) const;

  /// Interconnect serialization penalty: with `extra` transfer frames
  /// temporarily added to their links' profiles, the number of
  /// (link, cycle) pairs where a normalized link load exceeds 1. On a
  /// single bus this is exactly the paper's buscost.
  [[nodiscard]] int bus_serialization_cost(
      const std::vector<TransferFrame>& extra) const;

  /// The transfer frame for dependency (producer -> consumer), placed
  /// right after the producer completes, with the consumer's mobility
  /// decreased by lat(move) (clamped at 0). Single-link form (frame on
  /// link 0) — kept for the paper's single-bus model and for tests;
  /// routed callers use transfer_frames().
  [[nodiscard]] TransferFrame transfer_frame(OpId producer,
                                             OpId consumer) const;

  /// Appends the route-aware transfer frames for dependency
  /// (producer -> consumer) carried from cluster `from` to `to`: one
  /// frame per link of the precomputed route, hop k shifted by the
  /// accumulated hop latency, all sharing the consumer's mobility
  /// decreased by the full route latency (clamped at 0). On a single
  /// bus this appends exactly transfer_frame(producer, consumer).
  void transfer_frames(OpId producer, OpId consumer, ClusterId from,
                       ClusterId to, std::vector<TransferFrame>& out) const;

  /// Permanently adds operation v's load to cluster c's profile.
  void commit_op(OpId v, ClusterId c);

  /// Permanently adds a transfer frame to its link's profile.
  void commit_transfer(const TransferFrame& frame);

  /// Total committed normalized load of FU type `t` on cluster `c`
  /// (used as a deterministic load-balancing tie-breaker).
  [[nodiscard]] double cluster_load_total(ClusterId c, FuType t) const;

  /// Number of profile levels tracked (>= L_PR; includes slack for
  /// dii-extended frames and multi-hop transfer chains).
  [[nodiscard]] int horizon() const { return horizon_; }

  /// Number of frame cycles committed past the horizon and therefore
  /// dropped. Stays 0 for every frame this class itself produces (the
  /// horizon dominates all frame ends, see file header); nonzero only
  /// if a caller commits a hand-built frame beyond it.
  [[nodiscard]] std::int64_t clipped() const { return clipped_; }

 private:
  /// Per-cycle frame of operation v: [begin, end] inclusive and value.
  struct OpFrame {
    int begin = 0;
    int end = 0;
    double value = 0.0;
  };

  [[nodiscard]] OpFrame op_frame(OpId v) const;

  const Dfg* dfg_;
  const Datapath* dp_;
  const Timing* timing_;
  int horizon_;
  std::int64_t clipped_ = 0;

  /// load_dp_[t][tau]: normalized centralized profile per FU type.
  std::vector<std::vector<double>> load_dp_;
  /// load_cl_[c][t][tau]: normalized committed cluster profiles.
  std::vector<std::vector<std::vector<double>>> load_cl_;
  /// load_link_[l][tau]: normalized committed per-link profiles (a
  /// single bus has exactly one).
  std::vector<std::vector<double>> load_link_;
};

}  // namespace cvb
