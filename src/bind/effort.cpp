#include "bind/effort.hpp"

#include <stdexcept>

namespace cvb {

std::string to_string(BindEffort effort) {
  switch (effort) {
    case BindEffort::kFast:
      return "fast";
    case BindEffort::kBalanced:
      return "balanced";
    case BindEffort::kMax:
      return "max";
  }
  return "balanced";
}

BindEffort bind_effort_from_string(std::string_view name) {
  if (name == "fast") {
    return BindEffort::kFast;
  }
  if (name == "balanced") {
    return BindEffort::kBalanced;
  }
  if (name == "max") {
    return BindEffort::kMax;
  }
  throw std::invalid_argument("unknown effort '" + std::string(name) + "'");
}

}  // namespace cvb
