#include "bind/effort.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cvb {

std::string to_string(BindEffort effort) {
  switch (effort) {
    case BindEffort::kFast:
      return "fast";
    case BindEffort::kBalanced:
      return "balanced";
    case BindEffort::kMax:
      return "max";
  }
  return "balanced";
}

BindEffort bind_effort_from_string(std::string_view name) {
  if (name == "fast") {
    return BindEffort::kFast;
  }
  if (name == "balanced") {
    return BindEffort::kBalanced;
  }
  if (name == "max") {
    return BindEffort::kMax;
  }
  throw std::invalid_argument("unknown effort '" + std::string(name) + "'");
}

std::vector<int> EffortController::plan_round(
    const std::vector<StrategyProgress>& progress, double remaining_ms) const {
  std::vector<int> ranked;
  for (int i = 0; i < static_cast<int>(progress.size()); ++i) {
    if (progress[i].runnable) {
      ranked.push_back(i);
    }
  }
  if (ranked.empty()) {
    return ranked;
  }
  std::sort(ranked.begin(), ranked.end(), [&](int a, int b) {
    const StrategyProgress& pa = progress[a];
    const StrategyProgress& pb = progress[b];
    if (pa.improvements != pb.improvements) {
      return pa.improvements > pb.improvements;
    }
    if (pa.restarts != pb.restarts) {
      return pa.restarts < pb.restarts;
    }
    return a < b;
  });
  if (total_budget_ms_ <= 0.0) {
    return ranked;  // no deadline: everyone runnable races
  }
  if (remaining_ms <= 0.0) {
    return {};  // budget gone: stop scheduling restarts entirely
  }
  const double fraction =
      std::min(1.0, remaining_ms / total_budget_ms_);
  const int keep = std::clamp(
      static_cast<int>(std::ceil(fraction * static_cast<double>(ranked.size()))),
      1, static_cast<int>(ranked.size()));
  ranked.resize(static_cast<std::size_t>(keep));
  return ranked;
}

}  // namespace cvb
