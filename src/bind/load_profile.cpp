#include "bind/load_profile.hpp"

#include <algorithm>
#include <stdexcept>

namespace cvb {

namespace {
// Strict floating-point "exceeds" with a tolerance so that exact
// equality (e.g. a perfectly balanced profile at 1.0) does not count as
// overload.
constexpr double kEps = 1e-9;
}  // namespace

LoadProfileSet::LoadProfileSet(const Dfg& dfg, const Datapath& dp,
                               const Timing& timing)
    : dfg_(&dfg), dp_(&dp), timing_(&timing) {
  if (static_cast<int>(timing.asap.size()) != dfg.num_ops()) {
    throw std::invalid_argument("LoadProfileSet: timing/graph mismatch");
  }
  int max_dii = 1;
  for (int t = 0; t < kNumFuTypes; ++t) {
    max_dii = std::max(max_dii, dp.dii(static_cast<FuType>(t)));
  }
  // max_route_latency == lat(move) on a single bus, so the horizon is
  // the historical L_PR + max_dii + lat(move) there; multi-hop
  // topologies get the extra slack their shifted chain frames need
  // (see the file header for the frame-end bounds).
  horizon_ = timing.target_latency + max_dii +
             dp.topology().max_route_latency(dp.move_latency());

  load_dp_.assign(kNumClusterFuTypes,
                  std::vector<double>(static_cast<std::size_t>(horizon_), 0.0));
  load_cl_.assign(
      static_cast<std::size_t>(dp.num_clusters()),
      std::vector<std::vector<double>>(
          kNumClusterFuTypes,
          std::vector<double>(static_cast<std::size_t>(horizon_), 0.0)));
  load_link_.assign(
      static_cast<std::size_t>(dp.topology().num_links()),
      std::vector<double>(static_cast<std::size_t>(horizon_), 0.0));

  // Centralized profile: every operation contributes, normalized by the
  // datapath-wide FU count of its type.
  for (OpId v = 0; v < dfg.num_ops(); ++v) {
    const FuType t = fu_type_of(dfg.type(v));
    if (t == FuType::kBus) {
      throw std::invalid_argument(
          "LoadProfileSet: original DFG may not contain moves");
    }
    const int n_t = dp.total_fu_count(t);
    if (n_t == 0) {
      throw std::invalid_argument(
          "LoadProfileSet: datapath has no " + std::string(fu_type_name(t)) +
          " for operation " + dfg.name(v));
    }
    const OpFrame f = op_frame(v);
    auto& profile = load_dp_[static_cast<std::size_t>(t)];
    for (int tau = f.begin; tau <= f.end && tau < horizon_; ++tau) {
      profile[static_cast<std::size_t>(tau)] += f.value / n_t;
    }
  }
}

LoadProfileSet::OpFrame LoadProfileSet::op_frame(OpId v) const {
  OpFrame f;
  const auto sv = static_cast<std::size_t>(v);
  const int mobility = timing_->mobility[sv];
  f.begin = timing_->asap[sv];
  f.end = timing_->alap[sv] + dp_->dii_op(dfg_->type(v)) - 1;
  f.value = 1.0 / (mobility + 1);
  return f;
}

int LoadProfileSet::fu_serialization_cost(OpId v, ClusterId c) const {
  const FuType t = fu_type_of(dfg_->type(v));
  const int n_ct = dp_->fu_count(c, t);
  if (n_ct == 0) {
    throw std::invalid_argument("fu_serialization_cost: cluster " +
                                std::to_string(c) + " has no " +
                                std::string(fu_type_name(t)));
  }
  const OpFrame f = op_frame(v);
  const auto& cl = load_cl_[static_cast<std::size_t>(c)]
                           [static_cast<std::size_t>(t)];
  const auto& dp_profile = load_dp_[static_cast<std::size_t>(t)];
  int cost = 0;
  for (int tau = 0; tau < horizon_; ++tau) {
    double load = cl[static_cast<std::size_t>(tau)];
    if (tau >= f.begin && tau <= f.end) {
      load += f.value / n_ct;
    }
    const double limit =
        std::max(dp_profile[static_cast<std::size_t>(tau)], 1.0);
    if (load > limit + kEps) {
      ++cost;
    }
  }
  return cost;
}

int LoadProfileSet::bus_serialization_cost(
    const std::vector<TransferFrame>& extra) const {
  int cost = 0;
  for (std::size_t li = 0; li < load_link_.size(); ++li) {
    const int capacity = dp_->topology().link(static_cast<int>(li)).capacity;
    const auto& committed = load_link_[li];
    for (int tau = 0; tau < horizon_; ++tau) {
      double load = committed[static_cast<std::size_t>(tau)];
      for (const TransferFrame& f : extra) {
        if (f.link == static_cast<int>(li) && tau >= f.begin &&
            tau <= f.end) {
          load += f.value / capacity;
        }
      }
      if (load > 1.0 + kEps) {
        ++cost;
      }
    }
  }
  return cost;
}

LoadProfileSet::TransferFrame LoadProfileSet::transfer_frame(
    OpId producer, OpId consumer) const {
  TransferFrame f;
  const auto sp = static_cast<std::size_t>(producer);
  const auto sc = static_cast<std::size_t>(consumer);
  // "Placed on the side, right after completion of the producing
  // operation."
  f.begin = timing_->asap[sp] + dp_->lat(dfg_->type(producer));
  // "The load profile mobility of the data transfer is assigned the
  // mobility of the corresponding consumer decreased by the bus latency
  // lat(move). If the data transfer does not fit, ... we assume it 0."
  const int mobility =
      std::max(0, timing_->mobility[sc] - dp_->move_latency());
  f.end = f.begin + mobility + dp_->dii(FuType::kBus) - 1;
  f.value = 1.0 / (mobility + 1);
  f.link = 0;
  return f;
}

void LoadProfileSet::transfer_frames(OpId producer, OpId consumer,
                                     ClusterId from, ClusterId to,
                                     std::vector<TransferFrame>& out) const {
  const auto sp = static_cast<std::size_t>(producer);
  const auto sc = static_cast<std::size_t>(consumer);
  // The chain starts right after the producer completes; hop k starts
  // when hop k-1's link latency has elapsed. Every hop shares the
  // consumer's mobility decreased by the full route latency (the chain
  // slides as one unit inside the consumer's slack).
  int begin = timing_->asap[sp] + dp_->lat(dfg_->type(producer));
  const int mobility =
      std::max(0, timing_->mobility[sc] - dp_->route_latency(from, to));
  const double value = 1.0 / (mobility + 1);
  for (const RouteStep& step : dp_->topology().route(from, to)) {
    TransferFrame f;
    f.begin = begin;
    f.end = begin + mobility + dp_->dii(FuType::kBus) - 1;
    f.value = value;
    f.link = step.link;
    out.push_back(f);
    begin += dp_->move_latency_on(step.link);
  }
}

void LoadProfileSet::commit_op(OpId v, ClusterId c) {
  const FuType t = fu_type_of(dfg_->type(v));
  const int n_ct = dp_->fu_count(c, t);
  if (n_ct == 0) {
    throw std::invalid_argument("commit_op: cluster " + std::to_string(c) +
                                " has no " + std::string(fu_type_name(t)));
  }
  const OpFrame f = op_frame(v);
  auto& cl =
      load_cl_[static_cast<std::size_t>(c)][static_cast<std::size_t>(t)];
  for (int tau = f.begin; tau <= f.end && tau < horizon_; ++tau) {
    cl[static_cast<std::size_t>(tau)] += f.value / n_ct;
  }
  if (f.end >= horizon_) {
    clipped_ += f.end - horizon_ + 1;
  }
}

void LoadProfileSet::commit_transfer(const TransferFrame& frame) {
  const int capacity = dp_->topology().link(frame.link).capacity;
  auto& link = load_link_[static_cast<std::size_t>(frame.link)];
  for (int tau = frame.begin; tau <= frame.end && tau < horizon_; ++tau) {
    link[static_cast<std::size_t>(tau)] += frame.value / capacity;
  }
  if (frame.end >= horizon_) {
    clipped_ += frame.end - horizon_ + 1;
  }
}

double LoadProfileSet::cluster_load_total(ClusterId c, FuType t) const {
  const auto& cl =
      load_cl_[static_cast<std::size_t>(c)][static_cast<std::size_t>(t)];
  double total = 0.0;
  for (const double x : cl) {
    total += x;
  }
  return total;
}

}  // namespace cvb
