#include "bind/lower_bounds.hpp"

#include <algorithm>

#include "graph/analysis.hpp"

namespace cvb {

LatencyLowerBound latency_lower_bound(const Dfg& dfg, const Datapath& dp) {
  LatencyLowerBound bound;
  if (dfg.num_ops() == 0) {
    return bound;
  }
  bound.dependence = critical_path_length(dfg, dp.latencies());

  for (int ti = 0; ti < kNumClusterFuTypes; ++ti) {
    const FuType t = static_cast<FuType>(ti);
    int ops = 0;
    int min_lat = 0;
    for (OpId v = 0; v < dfg.num_ops(); ++v) {
      if (fu_type_of(dfg.type(v)) == t) {
        const int l = lat_of(dp.latencies(), dfg.type(v));
        min_lat = (ops == 0) ? l : std::min(min_lat, l);
        ++ops;
      }
    }
    if (ops == 0) {
      continue;
    }
    const int units = dp.total_fu_count(t);
    if (units == 0) {
      continue;  // infeasible datapath; binding-time validation rejects it
    }
    // Issue slots: each op occupies dii(t) cycles on a unit; the last
    // issue happens no earlier than cycle ceil(ops*dii/units) - dii,
    // and its result needs at least min_lat more cycles. A simpler
    // valid floor: ceil(ops * dii / units) + (min_lat - dii) when
    // min_lat > dii, else ceil(ops * dii / units).
    const int dii = dp.dii(t);
    const int issue_span = (ops * dii + units - 1) / units;
    const int tail = std::max(0, min_lat - dii);
    bound.resource = std::max(bound.resource, issue_span + tail);
  }
  bound.combined = std::max(bound.dependence, bound.resource);
  return bound;
}

}  // namespace cvb
