#include "bind/report.hpp"

#include <ostream>

#include "bind/binding.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace cvb {

BindingReport make_binding_report(const BoundDfg& bound, const Datapath& dp,
                                  const Schedule& sched) {
  const Dfg& g = bound.graph;
  BindingReport report;
  report.latency = sched.latency;
  report.num_moves = bound.num_moves;
  report.ops_per_cluster.assign(static_cast<std::size_t>(dp.num_clusters()),
                                0);

  // FU usage skeleton.
  for (ClusterId c = 0; c < dp.num_clusters(); ++c) {
    for (int ti = 0; ti < kNumClusterFuTypes; ++ti) {
      FuUsage usage;
      usage.cluster = c;
      usage.fu = static_cast<FuType>(ti);
      usage.num_units = dp.fu_count(c, usage.fu);
      report.fu_usage.push_back(usage);
    }
  }
  const auto usage_of = [&](ClusterId c, FuType t) -> FuUsage& {
    return report.fu_usage[static_cast<std::size_t>(
        c * kNumClusterFuTypes + static_cast<int>(t))];
  };

  for (OpId v = 0; v < g.num_ops(); ++v) {
    const FuType t = fu_type_of(g.type(v));
    if (t == FuType::kBus) {
      report.bus_busy_slots += dp.dii(FuType::kBus);
      continue;
    }
    const ClusterId c = bound.place[static_cast<std::size_t>(v)];
    ++report.ops_per_cluster[static_cast<std::size_t>(c)];
    FuUsage& usage = usage_of(c, t);
    ++usage.num_ops;
    usage.busy_slots += dp.dii(t);
  }

  for (FuUsage& usage : report.fu_usage) {
    if (usage.num_units > 0 && report.latency > 0) {
      usage.utilization = static_cast<double>(usage.busy_slots) /
                          (usage.num_units * report.latency);
    }
  }
  if (report.latency > 0) {
    report.bus_utilization = static_cast<double>(report.bus_busy_slots) /
                             (dp.num_buses() * report.latency);
  }

  // Cut edges and boundary ops are properties of the original graph's
  // binding, recoverable from the bound graph's structure: an original
  // op is on the boundary iff it feeds or consumes a move.
  std::vector<bool> boundary(static_cast<std::size_t>(bound.num_original_ops()),
                             false);
  for (OpId v = bound.num_original_ops(); v < g.num_ops(); ++v) {
    for (const OpId p : g.preds(v)) {
      boundary[static_cast<std::size_t>(p)] = true;
    }
    for (const OpId s : g.succs(v)) {
      boundary[static_cast<std::size_t>(s)] = true;
      ++report.cut_edges;  // each move->consumer edge is one cut edge
    }
  }
  for (const bool b : boundary) {
    report.boundary_ops += b ? 1 : 0;
  }
  return report;
}

void write_binding_report(std::ostream& out, const BindingReport& report,
                          const Datapath& dp) {
  out << "binding report: L=" << report.latency << " cycles, M="
      << report.num_moves << " transfers, " << report.cut_edges
      << " cut edges, " << report.boundary_ops << " boundary ops\n";
  TablePrinter table({"cluster", "FU", "units", "ops", "utilization"});
  for (const FuUsage& usage : report.fu_usage) {
    if (usage.num_units == 0 && usage.num_ops == 0) {
      continue;
    }
    table.add_row({"c" + std::to_string(usage.cluster),
                   std::string(fu_type_name(usage.fu)),
                   std::to_string(usage.num_units),
                   std::to_string(usage.num_ops),
                   format_sig(100.0 * usage.utilization, 2) + "%"});
  }
  table.add_row({"-", "BUS", std::to_string(dp.num_buses()),
                 std::to_string(report.num_moves),
                 format_sig(100.0 * report.bus_utilization, 2) + "%"});
  table.print(out);
}

}  // namespace cvb
