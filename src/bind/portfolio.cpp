#include "bind/portfolio.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "baselines/annealing.hpp"
#include "baselines/mincut.hpp"
#include "bind/effort.hpp"
#include "bind/eval_engine.hpp"
#include "bind/exhaustive.hpp"
#include "pcc/pcc.hpp"
#include "support/thread_pool.hpp"
#include "support/trace.hpp"

namespace cvb {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// The global-incumbent board. The packed (latency, moves) quality key
/// is lock-free to peek — a racing strategy can cheaply ask "am I
/// behind?" — and the mutex guards only the winning payload on the
/// (rare) improving publish. Determinism does not rest on the lock:
/// the orchestrator publishes at round barriers in submission order.
class IncumbentBoard {
 public:
  static constexpr std::uint64_t kEmpty = ~std::uint64_t{0};

  /// Lexicographic (latency, moves), lower is better.
  static std::uint64_t pack(int latency, int moves) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(latency))
            << 32) |
           static_cast<std::uint64_t>(static_cast<std::uint32_t>(moves));
  }

  [[nodiscard]] std::uint64_t peek() const {
    return key_.load(std::memory_order_acquire);
  }

  [[nodiscard]] bool empty() const { return peek() == kEmpty; }

  /// Installs `result` iff strictly better than the incumbent. Ties
  /// keep the earlier owner, so merge order decides winners, not
  /// thread timing.
  bool publish(int strategy_index, BindResult result) {
    const std::uint64_t key =
        pack(result.schedule.latency, result.schedule.num_moves);
    const std::lock_guard<std::mutex> lock(mutex_);
    if (key >= key_.load(std::memory_order_relaxed)) {
      return false;
    }
    best_ = std::move(result);
    owner_ = strategy_index;
    key_.store(key, std::memory_order_release);
    return true;
  }

  [[nodiscard]] const BindResult& best() const { return best_; }
  [[nodiscard]] BindResult take() { return std::move(best_); }
  [[nodiscard]] int owner() const { return owner_; }

 private:
  std::atomic<std::uint64_t> key_{kEmpty};
  std::mutex mutex_;
  BindResult best_;
  int owner_ = -1;
};

/// One strategy's work within one racing round.
struct SegmentOutcome {
  bool ok = false;
  BindResult result;
  double done_ms = 0.0;   ///< race clock at completion (time-to-best)
  double seg_ms = 0.0;    ///< this segment's own wall time
  long long evals = 0;
  long long cache_hits = 0;
  bool deadline_late = false;
  bool injected = false;
  FaultClass fault = FaultClass::kNone;
  std::string error;
};

SegmentOutcome run_segment(const Dfg& dfg, const Datapath& dp,
                           const StrategySpec& spec, int round,
                           const Binding* incumbent,
                           const PortfolioOptions& opts, EvalEngine& engine,
                           Clock::time_point race_start) {
  SegmentOutcome out;
  const Clock::time_point seg_start = Clock::now();
  ScopedSpan span(opts.tracer, "portfolio.strategy", opts.parent_span);
  if (span.enabled()) {
    span.attr("strategy", spec.name());
    span.attr("round", round);
  }
  const EvalStats before = engine.stats();
  long long exact_evals = -1;
  try {
    CVB_INJECT("portfolio.strategy");
    switch (spec.kind) {
      case StrategyKind::kBIter: {
        if (round == 0) {
          DriverParams params = driver_params_for(spec.effort);
          params.engine = &engine;
          params.cancel = opts.cancel;
          params.sched = opts.sched;
          out.result = bind_full(dfg, dp, params);
        } else {
          // Overtaken: restart the B-ITER climber from the global
          // incumbent — the paper's improvement phase applied to the
          // best binding anyone has found.
          IterImproverParams iter = driver_params_for(spec.effort).iter;
          iter.cancel = opts.cancel;
          iter.sched = opts.sched;
          IterImproverStats stats;
          Binding improved =
              improve_binding(dfg, dp, *incumbent, iter, &stats, &engine);
          out.result =
              evaluate_binding(dfg, dp, std::move(improved), opts.sched);
        }
        break;
      }
      case StrategyKind::kBInit: {
        DriverParams params = driver_params_for(spec.effort);
        params.engine = &engine;
        params.cancel = opts.cancel;
        params.sched = opts.sched;
        params.run_iterative = false;
        out.result = bind_initial_best(dfg, dp, params);
        break;
      }
      case StrategyKind::kPcc: {
        PccParams params;
        params.cancel = opts.cancel;
        params.step_budget = opts.sched.step_budget;
        params.tracer = opts.tracer;
        out.result = pcc_binding(dfg, dp, params, nullptr, &engine);
        break;
      }
      case StrategyKind::kSa: {
        AnnealingParams params;
        params.seed = spec.seed;
        AnnealingInfo info;
        out.result = annealing_binding(dfg, dp, params, &info);
        exact_evals = info.moves_tried;
        break;
      }
      case StrategyKind::kMinCut: {
        out.result = mincut_binding(dfg, dp);
        break;
      }
      case StrategyKind::kExhaustive: {
        out.result = exhaustive_binding(dfg, dp);
        break;
      }
    }
    out.ok = true;
  } catch (const FaultInjectedError& e) {
    out.error = e.what();
    out.injected = true;
    out.fault = e.fault_class();
  } catch (const ResourceLimitError& e) {
    out.error = e.what();
    out.fault = FaultClass::kPoison;
  } catch (const std::invalid_argument& e) {
    out.error = e.what();
    out.fault = FaultClass::kPoison;
  } catch (const std::logic_error& e) {
    out.error = e.what();
    out.fault = FaultClass::kFatal;
  } catch (const std::exception& e) {
    out.error = e.what();
    out.fault = FaultClass::kTransient;
  }
  const EvalStats delta = engine.stats().since(before);
  out.evals = exact_evals >= 0 ? exact_evals : delta.candidates;
  out.cache_hits = delta.cache_hits + delta.l1_hits;
  out.done_ms = ms_since(race_start);
  out.seg_ms = ms_since(seg_start);
  // Baselines never polled the token: a result computed past the
  // deadline is late and must not win a timely race.
  out.deadline_late =
      !strategy_is_anytime(spec.kind) && opts.cancel.deadline_expired();
  if (span.enabled()) {
    span.attr("ok", out.ok);
    if (out.ok) {
      span.attr("latency", out.result.schedule.latency);
      span.attr("moves", out.result.schedule.num_moves);
      span.attr("late", out.deadline_late);
    } else {
      span.attr("error", out.error);
    }
    span.attr("evals", out.evals);
  }
  return out;
}

/// All members dropped: rethrow with the first member's classification
/// so the api's exception -> status ladder stays truthful.
[[noreturn]] void throw_all_dropped(
    const std::vector<StrategyAttribution>& strategies) {
  const StrategyAttribution* first = nullptr;
  for (const StrategyAttribution& at : strategies) {
    if (at.dropped) {
      first = &at;
      break;
    }
  }
  if (first == nullptr) {
    throw std::logic_error("portfolio: no result and no dropped strategy");
  }
  if (first->injected) {
    throw FaultInjectedError("portfolio.strategy", first->fault);
  }
  const std::string message = "portfolio: every strategy failed; first: " +
                              std::string(first->spec.name()) + ": " +
                              first->error;
  switch (first->fault) {
    case FaultClass::kPoison:
      throw std::invalid_argument(message);
    case FaultClass::kFatal:
      throw std::logic_error(message);
    default:
      throw std::runtime_error(message);
  }
}

}  // namespace

PortfolioOutcome run_portfolio(const Dfg& dfg, const Datapath& dp,
                               const PortfolioOptions& opts) {
  if (opts.strategies.empty()) {
    throw std::invalid_argument("portfolio requires at least one strategy");
  }
  const Clock::time_point race_start = Clock::now();
  const int n = static_cast<int>(opts.strategies.size());

  std::unique_ptr<EvalEngine> private_engine;
  EvalEngine* engine = opts.engine;
  if (engine == nullptr) {
    private_engine = std::make_unique<EvalEngine>(EvalEngineOptions{});
    engine = private_engine.get();
  }

  PortfolioOutcome outcome;
  PortfolioStats& stats = outcome.stats;
  stats.strategies.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    stats.strategies[static_cast<std::size_t>(i)].spec =
        opts.strategies[static_cast<std::size_t>(i)];
  }

  const double total_budget_ms =
      opts.cancel.has_deadline() ? std::max(0.0, opts.cancel.remaining_ms())
                                 : 0.0;
  const EffortController controller(total_budget_ms);

  int pool_threads = opts.policy.race_threads > 0 ? opts.policy.race_threads : n;
  pool_threads = std::clamp(pool_threads, 1, n);
  ThreadPool pool(pool_threads);

  IncumbentBoard board;
  IncumbentBoard late_board;
  std::vector<std::uint64_t> own_key(static_cast<std::size_t>(n),
                                     IncumbentBoard::kEmpty);

  for (int round = 0; round <= opts.policy.max_rounds; ++round) {
    std::vector<int> plan;
    Binding incumbent;
    if (round == 0) {
      plan.resize(static_cast<std::size_t>(n));
      std::iota(plan.begin(), plan.end(), 0);
    } else {
      if (opts.cancel.stop_requested() || board.empty()) {
        break;
      }
      std::vector<StrategyProgress> progress(static_cast<std::size_t>(n));
      for (int i = 0; i < n; ++i) {
        const StrategyAttribution& at =
            stats.strategies[static_cast<std::size_t>(i)];
        StrategyProgress& p = progress[static_cast<std::size_t>(i)];
        p.runnable = strategy_is_restartable(at.spec.kind) && !at.dropped &&
                     own_key[static_cast<std::size_t>(i)] > board.peek();
        p.improvements = at.improvements;
        p.restarts = at.restarts;
      }
      plan = controller.plan_round(
          progress,
          opts.cancel.has_deadline() ? opts.cancel.remaining_ms() : 0.0);
      if (plan.empty()) {
        break;
      }
      incumbent = board.best().binding;
    }
    ++stats.rounds;

    // Submission order is the controller's ranking: the pool serves
    // the most-improving strategies first, which is exactly the thread
    // reallocation the racing policy promises.
    std::vector<std::function<SegmentOutcome()>> tasks;
    tasks.reserve(plan.size());
    for (const int i : plan) {
      const StrategySpec spec = opts.strategies[static_cast<std::size_t>(i)];
      const Binding* start = round == 0 ? nullptr : &incumbent;
      tasks.push_back([&dfg, &dp, spec, round, start, &opts, engine,
                       race_start] {
        return run_segment(dfg, dp, spec, round, start, opts, *engine,
                           race_start);
      });
    }
    std::vector<SegmentOutcome> segments =
        pool.run_batch<SegmentOutcome>(std::move(tasks));

    // Barrier merge, in plan order: this ordering — not thread timing —
    // decides exchanges and ties, which is the determinism contract.
    bool any_improved = false;
    for (std::size_t k = 0; k < plan.size(); ++k) {
      const int i = plan[k];
      SegmentOutcome& seg = segments[k];
      StrategyAttribution& at = stats.strategies[static_cast<std::size_t>(i)];
      at.run_ms += seg.seg_ms;
      at.evals += seg.evals;
      at.cache_hits += seg.cache_hits;
      if (round > 0) {
        ++at.restarts;
      }
      if (!seg.ok) {
        at.dropped = true;
        at.error = seg.error;
        at.injected = seg.injected;
        at.fault = seg.fault;
        continue;
      }
      const int latency = seg.result.schedule.latency;
      const int moves = seg.result.schedule.num_moves;
      const std::uint64_t key = IncumbentBoard::pack(latency, moves);
      if (seg.deadline_late) {
        at.late = true;
        if (at.latency < 0 || key < IncumbentBoard::pack(at.latency, at.moves)) {
          at.latency = latency;
          at.moves = moves;
          at.time_to_best_ms = seg.done_ms;
        }
        late_board.publish(i, std::move(seg.result));
        continue;
      }
      if (key < own_key[static_cast<std::size_t>(i)]) {
        own_key[static_cast<std::size_t>(i)] = key;
        at.latency = latency;
        at.moves = moves;
        at.time_to_best_ms = seg.done_ms;
      }
      if (board.publish(i, std::move(seg.result))) {
        ++at.improvements;
        ++stats.exchanges;
        any_improved = true;
        ScopedSpan exchange(opts.tracer, "portfolio.exchange",
                            opts.parent_span);
        if (exchange.enabled()) {
          exchange.attr("strategy", at.spec.name());
          exchange.attr("round", round);
          exchange.attr("latency", latency);
          exchange.attr("moves", moves);
        }
      }
    }
    if (round > 0 && !any_improved) {
      break;  // restart round converged: nobody beat the incumbent
    }
  }

  const bool timely = !board.empty();
  IncumbentBoard& winning = timely ? board : late_board;
  if (winning.empty()) {
    throw_all_dropped(stats.strategies);
  }
  stats.winner = winning.owner();
  stats.strategies[static_cast<std::size_t>(stats.winner)].winner = true;
  outcome.best = winning.take();
  stats.ms = ms_since(race_start);
  return outcome;
}

}  // namespace cvb
