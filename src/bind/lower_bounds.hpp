// Schedule-latency lower bounds, independent of any binding:
//
//  * dependence bound: the critical path L_CP;
//  * resource (throughput) bound: for each FU type t, at least
//    ceil(|ops(t)| * dii(t) / N(t)) cycles are needed even with perfect
//    packing, plus the remaining latency of the last-issued op.
//
// Used by tests (sanity floors), by the optimality-gap bench, and by
// DSE to prune hopeless datapath candidates before running the binder.
#pragma once

#include "graph/dfg.hpp"
#include "machine/datapath.hpp"

namespace cvb {

/// Per-source breakdown of the bound.
struct LatencyLowerBound {
  int dependence = 0;  ///< critical path L_CP
  int resource = 0;    ///< max over FU types of the throughput bound
  /// max(dependence, resource): no schedule on this datapath can beat
  /// this, regardless of binding (bus traffic excluded — it only adds).
  int combined = 0;
};

/// Computes the bound for `dfg` on `dp`. Works for any latency/dii
/// configuration; returns all-zero for an empty graph.
[[nodiscard]] LatencyLowerBound latency_lower_bound(const Dfg& dfg,
                                                    const Datapath& dp);

}  // namespace cvb
