#include "bind/binding.hpp"

#include <stdexcept>

namespace cvb {

std::string check_binding(const Dfg& dfg, const Binding& binding,
                          const Datapath& dp) {
  if (static_cast<int>(binding.size()) != dfg.num_ops()) {
    return "binding has " + std::to_string(binding.size()) +
           " entries for a graph with " + std::to_string(dfg.num_ops()) +
           " operations";
  }
  for (OpId v = 0; v < dfg.num_ops(); ++v) {
    const ClusterId c = binding[static_cast<std::size_t>(v)];
    if (is_move(dfg.type(v))) {
      return "operation " + dfg.name(v) +
             " is a move; moves may not appear in an original DFG";
    }
    if (c < 0 || c >= dp.num_clusters()) {
      return "operation " + dfg.name(v) + " bound to invalid cluster " +
             std::to_string(c);
    }
    if (!dp.supports(c, dfg.type(v))) {
      return "operation " + dfg.name(v) + " (" +
             std::string(op_type_name(dfg.type(v))) + ") bound to cluster " +
             std::to_string(c) + " which has no " +
             std::string(fu_type_name(fu_type_of(dfg.type(v)))) + " unit";
    }
  }
  return {};
}

void require_valid_binding(const Dfg& dfg, const Binding& binding,
                           const Datapath& dp) {
  const std::string error = check_binding(dfg, binding, dp);
  if (!error.empty()) {
    throw std::logic_error("invalid binding: " + error);
  }
}

int count_cut_edges(const Dfg& dfg, const Binding& binding) {
  int cut = 0;
  for (OpId v = 0; v < dfg.num_ops(); ++v) {
    for (const OpId s : dfg.succs(v)) {
      if (binding[static_cast<std::size_t>(v)] !=
          binding[static_cast<std::size_t>(s)]) {
        ++cut;
      }
    }
  }
  return cut;
}

}  // namespace cvb
