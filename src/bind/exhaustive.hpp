// Exhaustive (optimal at the binding level) reference binder for tiny
// DFGs: enumerates every feasible binding, schedules each with the same
// list scheduler, and returns the best (L, M). Used by tests to check
// B-INIT / B-ITER solution quality, and by the paper's observation that
// B-INIT solutions are sometimes provably optimal at this abstraction
// level.
#pragma once

#include <cstdint>

#include "bind/binding.hpp"
#include "bind/driver.hpp"
#include "graph/dfg.hpp"
#include "machine/datapath.hpp"

namespace cvb {

/// Upper bound on the number of bindings exhaustive_binding will try.
inline constexpr std::uint64_t kDefaultExhaustiveLimit = 2'000'000;

/// Finds a binding minimizing (schedule latency, move count) by full
/// enumeration. Throws std::invalid_argument if the search space
/// exceeds `limit` combinations or the DFG is empty/unbindable.
[[nodiscard]] BindResult exhaustive_binding(
    const Dfg& dfg, const Datapath& dp,
    std::uint64_t limit = kDefaultExhaustiveLimit);

/// Number of feasible bindings (product of target-set sizes), saturated
/// at UINT64_MAX; lets callers decide whether exhaustive search is
/// affordable.
[[nodiscard]] std::uint64_t binding_space_size(const Dfg& dfg,
                                               const Datapath& dp);

}  // namespace cvb
