#include "bind/driver.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <utility>

#include "graph/analysis.hpp"
#include "sched/list_scheduler.hpp"
#include "support/stopwatch.hpp"
#include "support/trace.hpp"

namespace cvb {

DriverParams driver_params_for(BindEffort effort) {
  DriverParams params;
  switch (effort) {
    case BindEffort::kFast:
      params.run_iterative = false;
      params.max_stretch = 2;
      break;
    case BindEffort::kBalanced:
      break;  // the defaults
    case BindEffort::kMax:
      params.max_stretch = 8;
      params.iter_starts = 12;
      params.iter.max_plateau_steps = 16;
      break;
  }
  return params;
}

BindResult evaluate_binding(const Dfg& dfg, const Datapath& dp,
                            Binding binding,
                            const ListSchedulerOptions& sched) {
  BindResult result;
  result.binding = std::move(binding);
  result.bound = build_bound_dfg(dfg, result.binding, dp);
  result.schedule = list_schedule(result.bound, dp, sched);
  return result;
}

namespace {

std::pair<int, int> result_key(const BindResult& r) {
  return {r.schedule.latency, r.schedule.num_moves};
}

/// Runs the B-INIT parameter sweep and returns every evaluated
/// candidate, best-first, with exact-duplicate bindings removed.
std::vector<BindResult> initial_sweep(const Dfg& dfg, const Datapath& dp,
                                      const DriverParams& params) {
  if (dfg.num_ops() == 0) {
    throw std::invalid_argument("initial_sweep: empty DFG");
  }
  ScopedSpan sweep(params.sched.tracer, "b-init.sweep");
  const int lcp = critical_path_length(dfg, dp.latencies());

  std::vector<BindResult> candidates;
  for (int stretch = 0; stretch <= params.max_stretch; ++stretch) {
    for (const bool reverse : {false, true}) {
      if (reverse && !params.try_reverse) {
        continue;
      }
      // Anytime contract: always evaluate the first candidate so a
      // pre-expired deadline still yields a complete binding, then
      // honour cancellation between candidates.
      if (!candidates.empty() && params.cancel.stop_requested()) {
        break;
      }
      ScopedSpan candidate_span(params.sched.tracer, "b-init.candidate");
      InitialBinderParams init;
      init.profile_latency = lcp + stretch;
      init.reverse = reverse;
      init.alpha = params.alpha;
      init.beta = params.beta;
      init.gamma = params.gamma;
      BindResult candidate = evaluate_binding(
          dfg, dp, initial_binding(dfg, dp, init), params.sched);
      candidate.best_init = init;
      if (candidate_span.enabled()) {
        candidate_span.attr("profile_latency", init.profile_latency);
        candidate_span.attr("reverse", init.reverse);
        candidate_span.attr("latency", candidate.schedule.latency);
        candidate_span.attr("moves", candidate.schedule.num_moves);
      }
      candidates.push_back(std::move(candidate));
    }
  }
  if (sweep.enabled()) {
    sweep.attr("candidates", candidates.size());
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const BindResult& a, const BindResult& b) {
                     return result_key(a) < result_key(b);
                   });
  std::vector<BindResult> distinct;
  for (BindResult& candidate : candidates) {
    const bool duplicate =
        std::any_of(distinct.begin(), distinct.end(),
                    [&](const BindResult& kept) {
                      return kept.binding == candidate.binding;
                    });
    if (!duplicate) {
      distinct.push_back(std::move(candidate));
    }
  }
  return distinct;
}

}  // namespace

BindResult bind_initial_best(const Dfg& dfg, const Datapath& dp,
                             const DriverParams& params) {
  Stopwatch watch;
  std::vector<BindResult> candidates = initial_sweep(dfg, dp, params);
  BindResult best = std::move(candidates.front());
  best.init_ms = watch.elapsed_ms();
  return best;
}

BindResult bind_full(const Dfg& dfg, const Datapath& dp,
                     const DriverParams& params) {
  Stopwatch watch;
  std::vector<BindResult> candidates = initial_sweep(dfg, dp, params);
  const double init_ms = watch.elapsed_ms();
  if (!params.run_iterative) {
    BindResult best = std::move(candidates.front());
    best.init_ms = init_ms;
    return best;
  }

  // Every B-ITER start shares one engine (and therefore one schedule
  // cache — different starts explore overlapping neighborhoods).
  std::unique_ptr<EvalEngine> local;
  EvalEngine* engine = params.engine;
  if (engine == nullptr) {
    EvalEngineOptions opts;
    opts.num_threads = params.num_threads;
    local = std::make_unique<EvalEngine>(opts);
    engine = local.get();
  }
  const EvalStats before = engine->stats();

  watch.restart();
  const int starts =
      std::max(1, std::min<int>(params.iter_starts,
                                static_cast<int>(candidates.size())));
  BindResult best;
  bool have_best = false;
  IterImproverStats total_stats;
  IterImproverParams iter_params = params.iter;
  iter_params.cancel = params.cancel;  // deadline reaches the climber
  iter_params.sched = params.sched;    // so does the step budget
  for (int i = 0; i < starts; ++i) {
    if (have_best && params.cancel.stop_requested()) {
      break;  // keep the best improved start found so far
    }
    ScopedSpan start_span(params.sched.tracer, "b-iter.start");
    IterImproverStats stats;
    Binding improved = improve_binding(
        dfg, dp, std::move(candidates[static_cast<std::size_t>(i)].binding),
        iter_params, &stats, engine);
    total_stats.qu_iterations += stats.qu_iterations;
    total_stats.qm_iterations += stats.qm_iterations;
    total_stats.candidates_evaluated += stats.candidates_evaluated;
    BindResult result =
        evaluate_binding(dfg, dp, std::move(improved), params.sched);
    result.best_init = candidates[static_cast<std::size_t>(i)].best_init;
    if (start_span.enabled()) {
      start_span.attr("start", i);
      start_span.attr("candidates", stats.candidates_evaluated);
      start_span.attr("latency", result.schedule.latency);
      start_span.attr("moves", result.schedule.num_moves);
    }
    if (!have_best || result_key(result) < result_key(best)) {
      best = std::move(result);
      have_best = true;
    }
  }
  best.init_ms = init_ms;
  best.iter_ms = watch.elapsed_ms();
  best.iter_stats = total_stats;
  // Report only this run's engine activity, even on a shared engine.
  best.eval_stats = engine->stats().since(before);
  return best;
}

}  // namespace cvb
