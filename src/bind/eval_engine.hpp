// Parallel candidate-evaluation engine with a two-level memoizing
// schedule cache and an incremental (delta) evaluation path.
//
// B-ITER, PCC, and the design-space explorer spend essentially all of
// their time evaluating candidate bindings — each evaluation builds the
// bound DFG and list-schedules it (the paper's Section 5 complexity
// analysis identifies exactly this as the dominant cost). Every such
// evaluation is *pure*: the result depends only on (DFG, datapath,
// binding, scheduler options). That makes three optimizations safe:
//
//  1. Batch parallelism: a round's candidates are evaluated
//     concurrently on a fixed-size thread pool, and the results are
//     reduced strictly in submission-index order — so any consumer that
//     scans results in that order reproduces its serial tie-breaking
//     bit for bit. Thread count never changes any algorithmic output.
//
//  2. Two-level memoization. The L2 cache is sharded: each shard owns
//     its own mutex, hash map and LRU ring, and a key's shard is fixed
//     by its upper hash bits, so concurrent batches contend only when
//     they touch the same shard (try_lock failures are counted per
//     shard). In front of it, each calling thread keeps a small
//     direct-mapped L1 tagged by engine id — the hill climbers re-probe
//     the same neighborhood keys every round, and those repeats are
//     served without touching any lock. Entries at both levels store
//     the full binding and signature and verify them on lookup, so a
//     hash collision degrades to a miss rather than a wrong result;
//     on insert, a resident entry under a colliding key is kept (the
//     newcomer is dropped and counted in `cache_collisions`).
//
//  3. Incremental evaluation: evaluate_batch_delta() takes candidates
//     as (op, cluster) deltas against an incumbent binding and runs
//     them through retained per-worker DeltaEvaluator scratch (see
//     bind/delta_eval.hpp), eliminating the per-candidate BoundDfg/
//     Schedule construction cost. Results and cache keys are
//     bit-identical to the full-binding path.
//
// Determinism contract: for identical inputs, evaluate(),
// evaluate_batch() and evaluate_batch_delta() return identical results
// for every thread count, shard count, and cache capacity (including
// 0 = caching disabled). Only the wall-time and hit/miss statistics
// vary.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "bind/binding.hpp"
#include "bind/delta_eval.hpp"
#include "graph/dfg.hpp"
#include "machine/datapath.hpp"
#include "sched/list_scheduler.hpp"
#include "support/thread_pool.hpp"

namespace cvb {

/// The scheduled quality of one candidate binding: everything the
/// consumers' cost functions need (L, M, and the Q_U tail vector),
/// without the heavyweight BoundDfg/Schedule artifacts.
struct EvalResult {
  int latency = 0;    ///< schedule latency L
  int num_moves = 0;  ///< inserted data transfers M
  /// Q_U tail: tail_counts[i] = regular operations completing at cycle
  /// L - i (length == latency; see sched/quality.hpp).
  std::vector<int> tail_counts;

  friend bool operator==(const EvalResult&, const EvalResult&) = default;
};

/// Which consumer submitted a batch (for the per-phase counters).
enum class EvalPhase { kGeneric, kImprover, kPcc, kExplore };

/// Aggregate counters of one engine's lifetime (printed by
/// `cvbind --stats` and threaded through BindResult).
///
/// Invariant: candidates == cache_hits + batch_dedup + cache_misses
/// whenever the cache is enabled (l1_hits is the L1 share of
/// cache_hits, not an additional term).
struct EvalStats {
  long long candidates = 0;    ///< evaluations requested
  long long cache_hits = 0;    ///< served from the cache (L1 or L2)
  long long l1_hits = 0;       ///< subset of cache_hits served lock-free
  long long batch_dedup = 0;   ///< intra-batch duplicates (shared, not hits)
  long long cache_misses = 0;  ///< actually scheduled
  long long cache_evictions = 0;   ///< entries dropped at shard capacity
  long long cache_collisions = 0;  ///< colliding inserts dropped (kept resident)
  long long cache_contended = 0;   ///< shard lock acquisitions that waited
  long long batches = 0;           ///< evaluate_batch / run_jobs calls
  long long improver_candidates = 0;  ///< B-ITER share of `candidates`
  long long pcc_candidates = 0;       ///< PCC share of `candidates`
  long long explore_jobs = 0;         ///< design points run via run_jobs
  double eval_ms = 0.0;  ///< wall time inside the engine (all batches)

  /// Adds `other`'s counters into this (merging a sub-run's stats).
  void merge(const EvalStats& other);

  /// The counter deltas accumulated since `baseline` was snapshot from
  /// the same engine (per-run attribution on a shared engine).
  [[nodiscard]] EvalStats since(const EvalStats& baseline) const;
};

/// Point-in-time counters of one L2 cache shard (for the contention
/// sweep in bench/parallel_eval and for tests).
struct EvalShardStats {
  std::size_t size = 0;       ///< live entries
  long long evictions = 0;    ///< entries dropped at capacity
  long long collisions = 0;   ///< colliding inserts dropped
  long long contended = 0;    ///< lock acquisitions that had to wait
};

/// One exported L2 cache entry — the unit of the warm-start snapshot
/// (net/snapshot.hpp defines the on-disk form). Key and signature are
/// the engine's own hashes; the binding rides along so an import can
/// verify each entry the same way lookups do.
struct CacheExportEntry {
  std::uint64_t key = 0;
  std::uint64_t signature = 0;
  Binding binding;
  EvalResult result;
};

/// Engine configuration.
struct EvalEngineOptions {
  /// Worker threads for batch evaluation. 1 = serial (evaluations run
  /// inline on the caller's thread; no pool is created).
  int num_threads = 1;
  /// Maximum cached schedule results across all shards; 0 disables
  /// memoization entirely (both levels).
  std::size_t cache_capacity = 1 << 16;
  /// L2 shard count; rounded up to a power of two, minimum 1. Each
  /// shard holds cache_capacity / shards entries (at least 1).
  std::size_t cache_shards = 8;
  /// Per-thread L1 slots (direct-mapped); rounded up to a power of
  /// two. 0 disables the L1.
  std::size_t l1_capacity = 64;
};

/// Thread-pool-backed, memoizing evaluator of candidate bindings.
///
/// One engine instance is meant to live for a whole algorithm run (or
/// longer: the cache is keyed by DFG/datapath signatures, so a single
/// engine can serve evaluations against many datapaths, as the
/// design-space explorer does). All methods are thread-safe, but
/// evaluate_batch()/run_jobs() must not be called from inside one of
/// this engine's own pool workers (see thread_pool.hpp).
class EvalEngine {
 public:
  explicit EvalEngine(EvalEngineOptions options = {});
  ~EvalEngine();

  EvalEngine(const EvalEngine&) = delete;
  EvalEngine& operator=(const EvalEngine&) = delete;

  [[nodiscard]] int num_threads() const { return options_.num_threads; }

  /// Evaluates every binding (each must be valid for dfg/dp) and
  /// returns results[i] for bindings[i]. Cache hits are served without
  /// re-scheduling; misses are computed concurrently when the engine
  /// has more than one thread. Deterministic for any thread count.
  std::vector<EvalResult> evaluate_batch(
      const Dfg& dfg, const Datapath& dp, const std::vector<Binding>& bindings,
      const ListSchedulerOptions& sched = {},
      EvalPhase phase = EvalPhase::kGeneric);

  /// Delta form of evaluate_batch: candidate i is `incumbent` with
  /// deltas[i] applied. Results, cache keys and statistics are
  /// bit-identical to calling evaluate_batch on the materialized
  /// bindings; misses run through retained per-worker incremental
  /// evaluators instead of rebuilding a BoundDfg per candidate.
  std::vector<EvalResult> evaluate_batch_delta(
      const Dfg& dfg, const Datapath& dp, const Binding& incumbent,
      const std::vector<BindingDelta>& deltas,
      const ListSchedulerOptions& sched = {},
      EvalPhase phase = EvalPhase::kImprover);

  /// Single-candidate convenience wrapper over evaluate_batch.
  EvalResult evaluate(const Dfg& dfg, const Datapath& dp,
                      const Binding& binding,
                      const ListSchedulerOptions& sched = {},
                      EvalPhase phase = EvalPhase::kGeneric);

  /// Runs arbitrary jobs through the engine's pool, returning results
  /// in submission order (serial, in order, when num_threads == 1).
  /// Used by the design-space explorer, whose unit of work is a whole
  /// bind-and-schedule of one design point rather than one binding.
  /// Jobs must not re-enter this engine's parallel entry points.
  template <typename R>
  std::vector<R> run_jobs(std::vector<std::function<R()>> jobs) {
    note_jobs(static_cast<long long>(jobs.size()));
    if (pool_ == nullptr) {
      std::vector<R> results;
      results.reserve(jobs.size());
      for (std::function<R()>& job : jobs) {
        results.push_back(job());
      }
      return results;
    }
    return pool_->run_batch<R>(std::move(jobs));
  }

  /// Snapshot of the engine's counters so far. Shard-level counters
  /// (evictions, collisions, contention) are aggregated on demand.
  [[nodiscard]] EvalStats stats() const;

  /// Merges counters from a nested run (e.g. a per-design-point serial
  /// engine) into this engine's stats. Thread-safe.
  void absorb(const EvalStats& other);

  /// Number of live L2 cache entries across all shards (for tests).
  [[nodiscard]] std::size_t cache_size() const;

  /// Number of L2 shards after rounding (always a power of two).
  [[nodiscard]] int num_shards() const {
    return static_cast<int>(shards_.size());
  }

  /// Per-shard counters, index = shard number.
  [[nodiscard]] std::vector<EvalShardStats> shard_stats() const;

  /// Copies every live L2 entry out, per shard in LRU order (oldest
  /// first), so re-importing in file order replays each shard's
  /// recency order. Thread-safe; locks one shard at a time.
  [[nodiscard]] std::vector<CacheExportEntry> export_cache() const;

  /// Inserts exported entries through the normal insert path (LRU,
  /// capacity, collision policy all apply). Entries whose key is not
  /// binding_hash(binding, signature) are rejected — a corrupt or
  /// foreign entry can never be served, so it is never admitted.
  /// Returns the number of entries accepted (0 when caching is off).
  std::size_t import_cache(const std::vector<CacheExportEntry>& entries);

  /// Signature of an evaluation context: a 64-bit hash of the DFG
  /// structure, the datapath configuration, and the scheduler options.
  /// Two contexts with different signatures never share cache entries.
  [[nodiscard]] static std::uint64_t context_signature(
      const Dfg& dfg, const Datapath& dp, const ListSchedulerOptions& sched);

  /// 64-bit FNV-1a hash of a binding vector, seeded by the context
  /// signature — the cache key.
  [[nodiscard]] static std::uint64_t binding_hash(const Binding& binding,
                                                  std::uint64_t signature);

  /// The pure evaluation kernel: bound DFG -> list schedule -> result.
  /// Exposed so tests can differentially check cached answers.
  [[nodiscard]] static EvalResult evaluate_uncached(
      const Dfg& dfg, const Datapath& dp, const Binding& binding,
      const ListSchedulerOptions& sched = {});

  /// Test-only: direct L2 insert under an arbitrary key, bypassing the
  /// batch path. Lets tests force two distinct bindings onto one key
  /// to exercise the collision policy.
  void test_cache_insert(std::uint64_t key, std::uint64_t signature,
                         const Binding& binding, EvalResult result) {
    cache_insert(key, signature, binding, std::move(result));
  }

  /// Test-only: direct L2 lookup counterpart of test_cache_insert.
  bool test_cache_lookup(std::uint64_t key, std::uint64_t signature,
                         const Binding& binding, EvalResult* out) {
    return cache_lookup(key, signature, binding, out);
  }

 private:
  struct CacheEntry {
    std::uint64_t signature = 0;
    Binding binding;  // verified on lookup: collisions degrade to misses
    EvalResult result;
    std::list<std::uint64_t>::iterator lru_it;
  };

  /// One L2 shard: independent map + LRU ring + lock. `contended` is
  /// atomic so it can be bumped before blocking on the mutex.
  struct CacheShard {
    mutable std::mutex mutex;
    std::unordered_map<std::uint64_t, CacheEntry> map;
    std::list<std::uint64_t> lru;  // front = least recently used
    long long evictions = 0;
    long long collisions = 0;
    mutable std::atomic<long long> contended{0};
  };

  [[nodiscard]] CacheShard& shard_for(std::uint64_t key) {
    return shards_[(key >> 32) & (shards_.size() - 1)];
  }

  bool cache_lookup(std::uint64_t key, std::uint64_t signature,
                    const Binding& binding, EvalResult* out);
  void cache_insert(std::uint64_t key, std::uint64_t signature,
                    const Binding& binding, EvalResult result);
  bool l1_lookup(std::uint64_t key, std::uint64_t signature,
                 const Binding& binding, EvalResult* out);
  void l1_insert(std::uint64_t key, std::uint64_t signature,
                 const Binding& binding, const EvalResult& result);
  void note_jobs(long long count);

  [[nodiscard]] std::unique_ptr<DeltaEvaluator> acquire_delta_evaluator();
  void release_delta_evaluator(std::unique_ptr<DeltaEvaluator> ev);

  EvalEngineOptions options_;  // normalized: shard/L1 sizes power of two
  const std::uint64_t engine_id_;      // tags thread-local L1 tables
  std::size_t shard_capacity_ = 0;     // per-shard LRU capacity
  std::unique_ptr<ThreadPool> pool_;   // null when num_threads == 1
  std::vector<CacheShard> shards_;

  mutable std::mutex stats_mutex_;  // guards stats_ (batch-level counters)
  EvalStats stats_;

  std::mutex delta_mutex_;  // guards delta_pool_
  std::vector<std::unique_ptr<DeltaEvaluator>> delta_pool_;
};

}  // namespace cvb
