// Parallel candidate-evaluation engine with a memoizing schedule cache.
//
// B-ITER, PCC, and the design-space explorer spend essentially all of
// their time evaluating candidate bindings — each evaluation builds the
// bound DFG and list-schedules it (the paper's Section 5 complexity
// analysis identifies exactly this as the dominant cost). Every such
// evaluation is *pure*: the result depends only on (DFG, datapath,
// binding, scheduler options). That makes two optimizations safe:
//
//  1. Batch parallelism: a round's candidates are evaluated
//     concurrently on a fixed-size thread pool, and the results are
//     reduced strictly in submission-index order — so any consumer that
//     scans results in that order reproduces its serial tie-breaking
//     bit for bit. Thread count never changes any algorithmic output.
//
//  2. Memoization: results are cached under a 64-bit FNV-1a hash of the
//     binding vector combined with a signature of the DFG, datapath and
//     scheduler options. Hill climbers re-visit bindings constantly
//     (the Q_U and Q_M phases of B-ITER walk overlapping neighborhoods
//     of the same points), so hits are common. Entries store the full
//     binding and signature and verify them on lookup, so a hash
//     collision degrades to a miss rather than a wrong result.
//
// Determinism contract: for identical inputs, evaluate()/
// evaluate_batch() return identical results for every thread count and
// cache capacity (including 0 = caching disabled). Only the wall-time
// and hit/miss statistics vary.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "bind/binding.hpp"
#include "graph/dfg.hpp"
#include "machine/datapath.hpp"
#include "sched/list_scheduler.hpp"
#include "support/thread_pool.hpp"

namespace cvb {

/// The scheduled quality of one candidate binding: everything the
/// consumers' cost functions need (L, M, and the Q_U tail vector),
/// without the heavyweight BoundDfg/Schedule artifacts.
struct EvalResult {
  int latency = 0;    ///< schedule latency L
  int num_moves = 0;  ///< inserted data transfers M
  /// Q_U tail: tail_counts[i] = regular operations completing at cycle
  /// L - i (length == latency; see sched/quality.hpp).
  std::vector<int> tail_counts;

  friend bool operator==(const EvalResult&, const EvalResult&) = default;
};

/// Which consumer submitted a batch (for the per-phase counters).
enum class EvalPhase { kGeneric, kImprover, kPcc, kExplore };

/// Aggregate counters of one engine's lifetime (printed by
/// `cvbind --stats` and threaded through BindResult).
struct EvalStats {
  long long candidates = 0;       ///< evaluations requested
  long long cache_hits = 0;       ///< served from the cache
  long long cache_misses = 0;     ///< actually scheduled
  long long cache_evictions = 0;  ///< entries dropped at capacity
  long long batches = 0;          ///< evaluate_batch / run_jobs calls
  long long improver_candidates = 0;  ///< B-ITER share of `candidates`
  long long pcc_candidates = 0;       ///< PCC share of `candidates`
  long long explore_jobs = 0;         ///< design points run via run_jobs
  double eval_ms = 0.0;  ///< wall time inside the engine (all batches)

  /// Adds `other`'s counters into this (merging a sub-run's stats).
  void merge(const EvalStats& other);

  /// The counter deltas accumulated since `baseline` was snapshot from
  /// the same engine (per-run attribution on a shared engine).
  [[nodiscard]] EvalStats since(const EvalStats& baseline) const;
};

/// Engine configuration.
struct EvalEngineOptions {
  /// Worker threads for batch evaluation. 1 = serial (evaluations run
  /// inline on the caller's thread; no pool is created).
  int num_threads = 1;
  /// Maximum cached schedule results; 0 disables memoization entirely.
  std::size_t cache_capacity = 1 << 16;
};

/// Thread-pool-backed, memoizing evaluator of candidate bindings.
///
/// One engine instance is meant to live for a whole algorithm run (or
/// longer: the cache is keyed by DFG/datapath signatures, so a single
/// engine can serve evaluations against many datapaths, as the
/// design-space explorer does). All methods are thread-safe, but
/// evaluate_batch()/run_jobs() must not be called from inside one of
/// this engine's own pool workers (see thread_pool.hpp).
class EvalEngine {
 public:
  explicit EvalEngine(EvalEngineOptions options = {});
  ~EvalEngine();

  EvalEngine(const EvalEngine&) = delete;
  EvalEngine& operator=(const EvalEngine&) = delete;

  [[nodiscard]] int num_threads() const { return options_.num_threads; }

  /// Evaluates every binding (each must be valid for dfg/dp) and
  /// returns results[i] for bindings[i]. Cache hits are served without
  /// re-scheduling; misses are computed concurrently when the engine
  /// has more than one thread. Deterministic for any thread count.
  std::vector<EvalResult> evaluate_batch(
      const Dfg& dfg, const Datapath& dp, const std::vector<Binding>& bindings,
      const ListSchedulerOptions& sched = {},
      EvalPhase phase = EvalPhase::kGeneric);

  /// Single-candidate convenience wrapper over evaluate_batch.
  EvalResult evaluate(const Dfg& dfg, const Datapath& dp,
                      const Binding& binding,
                      const ListSchedulerOptions& sched = {},
                      EvalPhase phase = EvalPhase::kGeneric);

  /// Runs arbitrary jobs through the engine's pool, returning results
  /// in submission order (serial, in order, when num_threads == 1).
  /// Used by the design-space explorer, whose unit of work is a whole
  /// bind-and-schedule of one design point rather than one binding.
  /// Jobs must not re-enter this engine's parallel entry points.
  template <typename R>
  std::vector<R> run_jobs(std::vector<std::function<R()>> jobs) {
    note_jobs(static_cast<long long>(jobs.size()));
    if (pool_ == nullptr) {
      std::vector<R> results;
      results.reserve(jobs.size());
      for (std::function<R()>& job : jobs) {
        results.push_back(job());
      }
      return results;
    }
    return pool_->run_batch<R>(std::move(jobs));
  }

  /// Snapshot of the engine's counters so far.
  [[nodiscard]] EvalStats stats() const;

  /// Merges counters from a nested run (e.g. a per-design-point serial
  /// engine) into this engine's stats. Thread-safe.
  void absorb(const EvalStats& other);

  /// Number of live cache entries (for tests).
  [[nodiscard]] std::size_t cache_size() const;

  /// Signature of an evaluation context: a 64-bit hash of the DFG
  /// structure, the datapath configuration, and the scheduler options.
  /// Two contexts with different signatures never share cache entries.
  [[nodiscard]] static std::uint64_t context_signature(
      const Dfg& dfg, const Datapath& dp, const ListSchedulerOptions& sched);

  /// 64-bit FNV-1a hash of a binding vector, seeded by the context
  /// signature — the cache key.
  [[nodiscard]] static std::uint64_t binding_hash(const Binding& binding,
                                                  std::uint64_t signature);

  /// The pure evaluation kernel: bound DFG -> list schedule -> result.
  /// Exposed so tests can differentially check cached answers.
  [[nodiscard]] static EvalResult evaluate_uncached(
      const Dfg& dfg, const Datapath& dp, const Binding& binding,
      const ListSchedulerOptions& sched = {});

 private:
  struct CacheEntry {
    std::uint64_t signature = 0;
    Binding binding;  // verified on lookup: collisions degrade to misses
    EvalResult result;
  };

  bool cache_lookup(std::uint64_t key, std::uint64_t signature,
                    const Binding& binding, EvalResult* out);
  void cache_insert(std::uint64_t key, std::uint64_t signature,
                    const Binding& binding, EvalResult result);
  void note_jobs(long long count);

  EvalEngineOptions options_;
  std::unique_ptr<ThreadPool> pool_;  // null when num_threads == 1

  mutable std::mutex mutex_;  // guards cache_, order_, stats_
  std::unordered_map<std::uint64_t, CacheEntry> cache_;
  std::deque<std::uint64_t> order_;  // FIFO eviction order
  EvalStats stats_;
};

}  // namespace cvb
