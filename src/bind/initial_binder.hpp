// B-INIT: the paper's greedy initial binding phase (Section 3.1).
//
// Operations are bound one at a time in a lexicographic order of
// (alap, mobility, -consumer count) — critical operations first, level
// by level (Section 3.1.1, Figure 2). Each operation is placed on the
// cluster minimizing
//
//   icost(v,c) = alpha * fucost(v,c)  * dii(v)
//              + beta  * buscost(v,c) * dii(move)
//              + gamma * trcost(v,c)  * lat(move)
//
// where trcost = trcost_dd + trcost_cc (Section 3.1.2, Figure 3),
// fucost/buscost come from the force-directed load profiles
// (load_profile.hpp), and alpha = beta = 1.0, gamma = 1.1 by default —
// the paper found a slight data-transfer priority works best.
//
// Two knobs are swept by the driver (Sections 3.1.3-3.1.4): the load
// profile latency L_PR (>= L_CP) and the direction of traversal
// (forward from inputs or reverse from outputs).
#pragma once

#include "bind/binding.hpp"
#include "graph/dfg.hpp"
#include "machine/datapath.hpp"

namespace cvb {

/// Parameters of one B-INIT run.
struct InitialBinderParams {
  /// Load profile latency L_PR. Values below L_CP are raised to L_CP.
  int profile_latency = 0;

  /// Bind from outputs toward inputs (Section 3.1.4) instead of the
  /// default input-to-output direction.
  bool reverse = false;

  /// Cost weights (Equation 1).
  double alpha = 1.0;
  double beta = 1.0;
  double gamma = 1.1;
};

/// Runs the greedy initial binding. Requires every operation type used
/// by `dfg` to be executable somewhere on `dp` (throws
/// std::invalid_argument otherwise). The result is always a valid
/// binding (each op within its target set).
[[nodiscard]] Binding initial_binding(const Dfg& dfg, const Datapath& dp,
                                      const InitialBinderParams& params = {});

/// The binder's operation ordering for a given timing (exposed for
/// tests; reproduces the Figure 2 example). Returns op ids in binding
/// order.
[[nodiscard]] std::vector<OpId> binding_order(const Dfg& dfg,
                                              const std::vector<int>& alap,
                                              const std::vector<int>& mobility);

/// trcost_dd(v, c) — the direct data dependency transfer penalty
/// (Section 3.1.2, Figure 3): number of already-bound predecessors of
/// `v` residing on a cluster other than `c`. `binding` may be partial
/// (kNoCluster for unbound operations).
[[nodiscard]] int transfer_cost_direct(const Dfg& dfg, const Binding& binding,
                                       OpId v, ClusterId c);

/// trcost_cc(v, c) — the common consumer transfer penalty (Section
/// 3.1.2, Figure 3): +1 for each successor of `v` that already has a
/// bound predecessor on a cluster other than `c`; such a transfer is
/// inevitable no matter where the successor is later bound.
[[nodiscard]] int transfer_cost_common_consumer(const Dfg& dfg,
                                                const Binding& binding, OpId v,
                                                ClusterId c);

/// Distance-aware trcost_dd in *cycles*: each remote bound predecessor
/// u contributes the full route latency from bn(u) to `c` instead of a
/// flat count. On a single bus this equals
/// transfer_cost_direct(...) * lat(move).
[[nodiscard]] int transfer_cost_direct_cycles(const Dfg& dfg,
                                              const Binding& binding,
                                              const Datapath& dp, OpId v,
                                              ClusterId c);

/// Distance-aware trcost_cc in *cycles*: each common consumer with a
/// remote bound co-predecessor z contributes the route latency from
/// bn(z) to `c` (the first such z in operand order, matching the
/// counted form's early exit). On a single bus this equals
/// transfer_cost_common_consumer(...) * lat(move).
[[nodiscard]] int transfer_cost_common_consumer_cycles(const Dfg& dfg,
                                                       const Binding& binding,
                                                       const Datapath& dp,
                                                       OpId v, ClusterId c);

}  // namespace cvb
