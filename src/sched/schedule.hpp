// Schedule representation for bound DFGs.
//
// Cycle convention (see graph/analysis.hpp): starts are 0-based; an
// operation starting at cycle s with latency l occupies issue slot s
// and completes at the end of cycle s + l - 1; the schedule latency L
// is max(s + l) over all operations — the number of clock cycles
// required to complete the basic block, the paper's primary figure of
// merit.
#pragma once

#include <vector>

#include "bind/bound_dfg.hpp"
#include "graph/dfg.hpp"

namespace cvb {

/// A complete schedule of a bound DFG.
struct Schedule {
  /// Start cycle per operation of the bound graph (regular ops and
  /// moves alike).
  std::vector<int> start;

  /// Schedule latency L in clock cycles.
  int latency = 0;

  /// Number of move operations in the bound graph (copied from
  /// BoundDfg::num_moves for convenient L/M reporting).
  int num_moves = 0;
};

/// Recomputes `latency` from starts and latencies (helper for code that
/// edits a schedule). The LatencyTable form charges every move
/// lat(move); topology-aware callers use the Datapath form, which
/// charges each move its occupied link's hop latency (identical on a
/// single bus with inherited hop latency).
[[nodiscard]] int schedule_latency(const BoundDfg& bound,
                                   const std::vector<int>& start,
                                   const LatencyTable& lat);
[[nodiscard]] int schedule_latency(const BoundDfg& bound,
                                   const std::vector<int>& start,
                                   const Datapath& dp);

}  // namespace cvb
