#include "sched/list_scheduler.hpp"

#include <algorithm>
#include <stdexcept>
#include <tuple>
#include <vector>

#include "graph/analysis.hpp"
#include "support/fault.hpp"
#include "support/trace.hpp"

namespace cvb {

namespace {

/// Issue bookkeeping for one resource pool (one (cluster, FU type)
/// pair, or the bus): counts issues per cycle so the dii window
/// constraint can be checked in O(dii).
class ResourcePool {
 public:
  ResourcePool(int capacity, int dii) : capacity_(capacity), dii_(dii) {}

  /// True if one more operation may be issued at `cycle`.
  [[nodiscard]] bool can_issue(int cycle) const {
    int in_flight = 0;
    const int lo = std::max(0, cycle - dii_ + 1);
    for (int s = lo; s <= cycle; ++s) {
      if (s < static_cast<int>(issues_.size())) {
        in_flight += issues_[static_cast<std::size_t>(s)];
      }
    }
    return in_flight < capacity_;
  }

  void issue(int cycle) {
    if (cycle >= static_cast<int>(issues_.size())) {
      issues_.resize(static_cast<std::size_t>(cycle) + 1, 0);
    }
    ++issues_[static_cast<std::size_t>(cycle)];
  }

 private:
  int capacity_;
  int dii_;
  std::vector<int> issues_;
};

}  // namespace

Schedule list_schedule(const BoundDfg& bound, const Datapath& dp,
                       const ListSchedulerOptions& options) {
  ScopedSpan span(options.tracer, "sched.list", options.trace_parent);
  const Dfg& g = bound.graph;
  const int n = g.num_ops();
  const LatencyTable& lat = dp.latencies();

  // Priorities from the bound graph's own timing (target = its L_CP).
  const Timing timing = compute_timing(g, lat, 0);
  const std::vector<int> consumers = consumer_counts(g);
  const auto priority_less = [&](OpId a, OpId b) {
    const auto sa = static_cast<std::size_t>(a);
    const auto sb = static_cast<std::size_t>(b);
    return std::make_tuple(timing.alap[sa], timing.mobility[sa],
                           -consumers[sa], a) <
           std::make_tuple(timing.alap[sb], timing.mobility[sb],
                           -consumers[sb], b);
  };

  // Resource pools: per cluster per cluster-FU-type, plus the bus.
  // pool index = cluster * kNumClusterFuTypes + fu_type; bus at the end.
  const int num_cluster_pools = dp.num_clusters() * kNumClusterFuTypes;
  std::vector<ResourcePool> pools;
  pools.reserve(static_cast<std::size_t>(num_cluster_pools) + 1);
  for (ClusterId c = 0; c < dp.num_clusters(); ++c) {
    for (int t = 0; t < kNumClusterFuTypes; ++t) {
      pools.emplace_back(dp.fu_count(c, static_cast<FuType>(t)),
                         dp.dii(static_cast<FuType>(t)));
    }
  }
  const int bus_capacity = options.unbounded_bus
                               ? bound.graph.num_ops() + 1
                               : dp.num_buses();
  pools.emplace_back(bus_capacity, dp.dii(FuType::kBus));
  const auto pool_index = [&](OpId v) -> int {
    const FuType t = fu_type_of(g.type(v));
    if (t == FuType::kBus) {
      return num_cluster_pools;
    }
    const ClusterId c = bound.place[static_cast<std::size_t>(v)];
    if (c < 0 || c >= dp.num_clusters()) {
      throw std::logic_error("list_schedule: op " + g.name(v) +
                             " has no cluster placement");
    }
    if (dp.fu_count(c, t) == 0) {
      throw std::logic_error("list_schedule: op " + g.name(v) +
                             " placed on cluster without a " +
                             std::string(fu_type_name(t)));
    }
    return c * kNumClusterFuTypes + static_cast<int>(t);
  };

  Schedule sched;
  sched.start.assign(static_cast<std::size_t>(n), -1);
  sched.num_moves = bound.num_moves;

  std::vector<int> pending(static_cast<std::size_t>(n));
  std::vector<int> ready_at(static_cast<std::size_t>(n), 0);
  std::vector<OpId> ready;  // dependency-free, kept in priority order
  for (OpId v = 0; v < n; ++v) {
    pending[static_cast<std::size_t>(v)] = static_cast<int>(g.preds(v).size());
    if (pending[static_cast<std::size_t>(v)] == 0) {
      ready.push_back(v);
    }
  }
  std::sort(ready.begin(), ready.end(), priority_less);

  int scheduled = 0;
  // Upper bound on useful cycles: fully serial execution on one unit.
  long cycle_guard = 16;
  for (OpId v = 0; v < n; ++v) {
    cycle_guard += lat_of(lat, g.type(v)) + dp.dii_op(g.type(v));
  }

  long long steps = 0;
  for (int cycle = 0; scheduled < n; ++cycle) {
    if (cycle > cycle_guard) {
      throw std::logic_error("list_schedule: no progress (malformed graph?)");
    }
    std::vector<OpId> newly_ready;
    for (std::size_t i = 0; i < ready.size();) {
      if (options.step_budget > 0 && ++steps > options.step_budget) {
        throw ResourceLimitError(
            "list_schedule: step budget exhausted (" +
            std::to_string(options.step_budget) + " candidate visits)");
      }
      const OpId v = ready[i];
      if (ready_at[static_cast<std::size_t>(v)] > cycle) {
        ++i;
        continue;
      }
      const int pool = pool_index(v);
      if (!pools[static_cast<std::size_t>(pool)].can_issue(cycle)) {
        ++i;
        continue;
      }
      pools[static_cast<std::size_t>(pool)].issue(cycle);
      sched.start[static_cast<std::size_t>(v)] = cycle;
      ++scheduled;
      ready.erase(ready.begin() + static_cast<std::ptrdiff_t>(i));
      const int done = cycle + lat_of(lat, g.type(v));
      for (const OpId s : g.succs(v)) {
        const auto ss = static_cast<std::size_t>(s);
        ready_at[ss] = std::max(ready_at[ss], done);
        if (--pending[ss] == 0) {
          newly_ready.push_back(s);
        }
      }
    }
    if (!newly_ready.empty()) {
      ready.insert(ready.end(), newly_ready.begin(), newly_ready.end());
      std::sort(ready.begin(), ready.end(), priority_less);
    }
  }

  sched.latency = schedule_latency(bound, sched.start, lat);
  if (span.enabled()) {
    span.attr("latency", sched.latency);
    span.attr("moves", sched.num_moves);
    span.attr("steps", steps);
  }
  return sched;
}

}  // namespace cvb
