#include "sched/list_scheduler.hpp"

#include "sched/list_scheduler_core.hpp"

namespace cvb {

Schedule list_schedule(const BoundDfg& bound, const Datapath& dp,
                       const ListSchedulerOptions& options) {
  SchedArena arena;
  return list_schedule(bound, dp, options, arena);
}

Schedule list_schedule(const BoundDfg& bound, const Datapath& dp,
                       const ListSchedulerOptions& options, SchedArena& arena) {
  Schedule sched;
  detail::list_schedule_core(detail::BoundDfgView{&bound}, dp, options, arena,
                             sched);
  return sched;
}

void list_schedule_into(const BoundDfg& bound, const Datapath& dp,
                        const ListSchedulerOptions& options, SchedArena& arena,
                        Schedule& out) {
  detail::list_schedule_core(detail::BoundDfgView{&bound}, dp, options, arena,
                             out);
}

}  // namespace cvb
