// Fixed-width bitmask occupancy table for one scheduler resource pool
// (one (cluster, FU type) pair, or the bus).
//
// Layout: one *row* of ceil(capacity / 64) `uint64_t` words per cycle,
// stored in a single flat vector; bit u of a row means "unit u of this
// pool is busy in that cycle". Issuing an operation at cycle c claims
// the lowest free unit of row c and marks it busy across the rows
// [c, c + dii), so the legality test is a branch-free word scan of one
// row instead of the pre-rewrite O(dii) issue-count walk.
//
// Equivalence with the counted-window model the scheduler used before
// (at most `capacity` issues inside any trailing dii-cycle window):
// under the list scheduler's discipline — issues happen only at the
// current cycle, and the current cycle never decreases — a unit that is
// busy in row c' > c was issued at some s <= c with s + dii > c', hence
// it is also busy in row c. Row occupancies therefore shrink into the
// future, the lowest unit free at row c is free across the whole
// [c, c + dii) span, and `can_issue(c)` <=> "row c has a free unit" <=>
// "fewer than `capacity` issues in the window (c - dii, c]". The
// property tests (tests/occupancy_test.cpp) check this equivalence
// against the counting model on randomized traffic, and the
// differential suite checks the resulting schedules bit-for-bit.
//
// The row buffer is retained across reset() calls, so a pool that lives
// in a SchedArena performs no allocation once warmed up; `grow_count()`
// exposes buffer growths for the arena-reuse tests.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace cvb {

/// Per-cycle bitmask occupancy for one resource pool.
class BitOccupancy {
 public:
  /// Reconfigures the pool for a new scheduling run: sets capacity (>= 0
  /// units; 0 = nothing can ever issue) and dii (>= 1 cycles a unit
  /// stays busy per issue), and clears every previously touched word.
  /// The buffer is kept, so repeated runs of similar depth do not
  /// allocate.
  void reset(int capacity, int dii) {
    if (capacity < 0 || dii < 1) {
      throw std::invalid_argument("BitOccupancy: capacity >= 0, dii >= 1");
    }
    std::fill(words_.begin(),
              words_.begin() + static_cast<std::ptrdiff_t>(touched_), 0);
    touched_ = 0;
    capacity_ = capacity;
    dii_ = dii;
    words_per_row_ = (capacity + 63) / 64;
    const int tail_bits = capacity % 64;
    last_word_mask_ = tail_bits == 0 ? ~std::uint64_t{0}
                                     : (std::uint64_t{1} << tail_bits) - 1;
  }

  [[nodiscard]] int capacity() const { return capacity_; }
  [[nodiscard]] int dii() const { return dii_; }

  /// True if one more operation may be issued at `cycle` (some unit is
  /// free in row `cycle`).
  [[nodiscard]] bool can_issue(int cycle) const {
    if (capacity_ == 0) {
      return false;
    }
    const std::size_t row = row_offset(cycle);
    std::uint64_t free_bits = 0;
    for (int w = 0; w < words_per_row_; ++w) {
      const std::size_t idx = row + static_cast<std::size_t>(w);
      // Rows past the touched high-water mark are all-zero (either
      // value-initialized or cleared by reset), so an out-of-buffer
      // word is simply free.
      const std::uint64_t word = idx < words_.size() ? words_[idx] : 0;
      free_bits |= ~word & word_mask(w);
    }
    return free_bits != 0;
  }

  /// Claims the lowest free unit of row `cycle`, marking it busy for
  /// cycles [cycle, cycle + dii). Returns the unit index. Throws
  /// std::logic_error if the row is full (callers gate on can_issue).
  int issue(int cycle) {
    const int unit = try_issue(cycle);
    if (unit < 0) {
      throw std::logic_error("BitOccupancy::issue: pool full at cycle " +
                             std::to_string(cycle));
    }
    return unit;
  }

  /// Fused can_issue + issue: claims the lowest free unit of row
  /// `cycle` and returns its index, or returns -1 (claiming nothing)
  /// when the row is full. One word scan instead of the two a
  /// can_issue/issue pair costs; the accept/reject decision is
  /// identical ("some unit free in row cycle"), and a rejection is
  /// read-only exactly like can_issue (mark grows the buffer only on
  /// the success path).
  int try_issue(int cycle) {
    if (capacity_ == 0) {
      return -1;
    }
    const std::size_t row = row_offset(cycle);
    for (int w = 0; w < words_per_row_; ++w) {
      const std::size_t idx = row + static_cast<std::size_t>(w);
      const std::uint64_t word = idx < words_.size() ? words_[idx] : 0;
      const std::uint64_t free_bits = ~word & word_mask(w);
      if (free_bits != 0) {
        const int unit = w * 64 + std::countr_zero(free_bits);
        mark(cycle, unit);
        return unit;
      }
    }
    return -1;
  }

  /// Marks `unit` busy for cycles [cycle, cycle + dii). Idempotent: the
  /// per-row OR makes re-marking a busy unit a no-op.
  void mark(int cycle, int unit) {
    if (unit < 0 || unit >= capacity_) {
      throw std::invalid_argument("BitOccupancy::mark: unit out of range");
    }
    ensure_rows(cycle + dii_);
    const std::size_t word = static_cast<std::size_t>(unit / 64);
    const std::uint64_t bit = std::uint64_t{1} << (unit % 64);
    const auto wpr = static_cast<std::size_t>(words_per_row_);
    std::size_t idx = row_offset(cycle) + word;
    for (int r = 0; r < dii_; ++r, idx += wpr) {
      words_[idx] |= bit;
    }
  }

  /// True if `unit` is busy in row `cycle`.
  [[nodiscard]] bool is_busy(int cycle, int unit) const {
    if (unit < 0 || unit >= capacity_) {
      return false;
    }
    const std::size_t idx =
        row_offset(cycle) + static_cast<std::size_t>(unit / 64);
    return idx < words_.size() &&
           (words_[idx] >> (unit % 64) & std::uint64_t{1}) != 0;
  }

  /// Number of busy units in row `cycle` (popcount across the row).
  [[nodiscard]] int occupied(int cycle) const {
    int busy = 0;
    const std::size_t row = row_offset(cycle);
    for (int w = 0; w < words_per_row_; ++w) {
      const std::size_t idx = row + static_cast<std::size_t>(w);
      if (idx < words_.size()) {
        busy += std::popcount(words_[idx]);
      }
    }
    return busy;
  }

  /// Buffer growths since construction (the allocation-counting hook
  /// the arena-reuse tests assert on: stable after warm-up).
  [[nodiscard]] std::uint64_t grow_count() const { return grows_; }

 private:
  [[nodiscard]] std::size_t row_offset(int cycle) const {
    return static_cast<std::size_t>(cycle) *
           static_cast<std::size_t>(words_per_row_);
  }

  [[nodiscard]] std::uint64_t word_mask(int w) const {
    return w + 1 == words_per_row_ ? last_word_mask_ : ~std::uint64_t{0};
  }

  void ensure_rows(int rows) {
    const std::size_t needed = static_cast<std::size_t>(rows) *
                               static_cast<std::size_t>(words_per_row_);
    if (needed > words_.size()) {
      // Geometric growth so repeated one-row extensions stay amortized
      // O(1); new words are value-initialized to zero (all free).
      const std::size_t target = std::max(needed, words_.size() * 2);
      if (target > words_.capacity()) {
        ++grows_;
      }
      words_.resize(target);
    }
    touched_ = std::max(touched_, needed);
  }

  int capacity_ = 0;
  int dii_ = 1;
  int words_per_row_ = 0;
  std::uint64_t last_word_mask_ = 0;
  std::size_t touched_ = 0;  // words written since reset; cleared lazily
  std::uint64_t grows_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace cvb
