#include "sched/gantt.hpp"

#include <algorithm>
#include <map>
#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>


namespace cvb {

namespace {

/// One display row: a unit label and the op occupying it each cycle.
struct Row {
  std::string label;
  std::vector<OpId> cell;  // kNoOp when idle
};

}  // namespace

void write_gantt(std::ostream& out, const BoundDfg& bound, const Datapath& dp,
                 const Schedule& sched) {
  const Dfg& g = bound.graph;
  const int cycles = std::max(sched.latency, 1);

  // Build rows: per cluster, per FU type, per instance; then buses.
  std::vector<Row> rows;
  // row lookup: pool key -> first row index of that pool.
  std::map<std::pair<ClusterId, FuType>, std::pair<int, int>> pool_rows;
  for (ClusterId c = 0; c < dp.num_clusters(); ++c) {
    for (int ti = 0; ti < kNumClusterFuTypes; ++ti) {
      const FuType t = static_cast<FuType>(ti);
      const int first = static_cast<int>(rows.size());
      for (int unit = 0; unit < dp.fu_count(c, t); ++unit) {
        rows.push_back(Row{"c" + std::to_string(c) + "." +
                               std::string(fu_type_name(t)) +
                               std::to_string(unit),
                           std::vector<OpId>(static_cast<std::size_t>(cycles),
                                             kNoOp)});
      }
      pool_rows[{c, t}] = {first, dp.fu_count(c, t)};
    }
  }
  // One row group per interconnect link, labeled "<link><unit>" (the
  // single bus's link is named "BUS", so its rows stay "BUS0", ...).
  // Link l is keyed as cluster -1 - l, matching the verifier.
  const Topology& topo = dp.topology();
  for (int li = 0; li < topo.num_links(); ++li) {
    const TopoLink& link = topo.link(li);
    const int link_first = static_cast<int>(rows.size());
    for (int unit = 0; unit < link.capacity; ++unit) {
      rows.push_back(Row{link.name + std::to_string(unit),
                         std::vector<OpId>(static_cast<std::size_t>(cycles),
                                           kNoOp)});
    }
    pool_rows[{kNoCluster - li, FuType::kBus}] = {link_first, link.capacity};
  }

  // Place ops on instances: sort by start cycle, take the first unit of
  // the pool that is free over the op's occupancy window (dii cycles).
  std::vector<OpId> order(static_cast<std::size_t>(g.num_ops()));
  for (OpId v = 0; v < g.num_ops(); ++v) {
    order[static_cast<std::size_t>(v)] = v;
  }
  std::sort(order.begin(), order.end(), [&](OpId a, OpId b) {
    return std::make_pair(sched.start[static_cast<std::size_t>(a)], a) <
           std::make_pair(sched.start[static_cast<std::size_t>(b)], b);
  });

  for (const OpId v : order) {
    const FuType t = fu_type_of(g.type(v));
    const ClusterId c = (t == FuType::kBus)
                            ? kNoCluster - bound.link_of(v)
                            : bound.place[static_cast<std::size_t>(v)];
    const auto [first, count] = pool_rows.at({c, t});
    const int start = sched.start[static_cast<std::size_t>(v)];
    const int occupy = dp.dii(t);  // cycles the unit is busy
    bool placed = false;
    for (int unit = 0; unit < count && !placed; ++unit) {
      Row& row = rows[static_cast<std::size_t>(first + unit)];
      bool free = true;
      for (int k = 0; k < occupy && start + k < cycles; ++k) {
        free = free && row.cell[static_cast<std::size_t>(start + k)] == kNoOp;
      }
      if (free) {
        for (int k = 0; k < occupy && start + k < cycles; ++k) {
          row.cell[static_cast<std::size_t>(start + k)] = v;
        }
        placed = true;
      }
    }
    if (!placed) {
      throw std::logic_error("write_gantt: schedule oversubscribes the " +
                             std::string(fu_type_name(t)) + " pool at cycle " +
                             std::to_string(start));
    }
  }

  // Column width: longest op name, at least 3.
  std::size_t width = 3;
  for (OpId v = 0; v < g.num_ops(); ++v) {
    width = std::max(width, g.name(v).size());
  }
  std::size_t label_width = 5;  // "cycle"
  for (const Row& row : rows) {
    label_width = std::max(label_width, row.label.size());
  }

  const auto pad = [&](const std::string& text, std::size_t w) {
    return text + std::string(w - text.size(), ' ');
  };

  out << pad("cycle", label_width);
  for (int cycle = 0; cycle < cycles; ++cycle) {
    out << " " << pad(std::to_string(cycle), width + 1);
  }
  out << '\n';
  for (const Row& row : rows) {
    out << pad(row.label, label_width);
    for (int cycle = 0; cycle < cycles; ++cycle) {
      const OpId v = row.cell[static_cast<std::size_t>(cycle)];
      out << "|" << pad(v == kNoOp ? "" : g.name(v), width + 1);
    }
    out << "|\n";
  }
}

}  // namespace cvb
