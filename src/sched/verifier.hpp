// Independent legality checker for schedules. Every schedule produced
// in tests is passed through this verifier, so a scheduler bug cannot
// silently inflate result quality.
#pragma once

#include <string>

#include "bind/bound_dfg.hpp"
#include "machine/datapath.hpp"
#include "sched/schedule.hpp"

namespace cvb {

/// Verifies `sched` against `bound` and `dp`:
///  * every operation has a start cycle >= 0;
///  * dependencies: start(v) >= start(u) + lat(u) for each edge (u,v);
///  * FU capacity: per (cluster, FU type), at most N(c,t) issues in any
///    dii(t)-cycle window;
///  * bus capacity: at most N(BUS) move issues in any dii(BUS) window;
///  * recorded latency matches the starts.
/// Returns an empty string if legal, else a description of the first
/// violation found.
[[nodiscard]] std::string verify_schedule(const BoundDfg& bound,
                                          const Datapath& dp,
                                          const Schedule& sched);

}  // namespace cvb
