// Register-pressure analysis of a scheduled, bound DFG.
//
// The paper's binding model assumes unbounded register files (Section
// 2), arguing that "clustered machines distribute operations, which
// generally decreases register demand on each local register file".
// This module makes that claim measurable: given a schedule, it
// computes the per-cluster maximum number of simultaneously live values
// (the local register-file pressure) under the model
//
//  * a regular operation's result lives in its cluster's register file
//    from the cycle it completes until the last local consumer (or the
//    feeding move) has started; values with no consumers (basic-block
//    outputs) are live through the end of the schedule;
//  * a move's result lives in the *destination* cluster's register
//    file, same rule;
//  * basic-block inputs (values read from outside) are not counted —
//    they are whole-loop live-ins whose cost is identical for every
//    binding.
#pragma once

#include <vector>

#include "bind/bound_dfg.hpp"
#include "machine/datapath.hpp"
#include "sched/schedule.hpp"

namespace cvb {

/// Per-cluster pressure profile.
struct RegPressure {
  /// max_live[c]: maximum simultaneously live values in cluster c's
  /// register file over the schedule.
  std::vector<int> max_live;
  /// Pressure of the equivalent centralized machine (every value in one
  /// register file) over the same schedule — the baseline the paper's
  /// argument compares against.
  int centralized_max_live = 0;

  /// Largest per-cluster pressure.
  [[nodiscard]] int worst_cluster() const {
    int worst = 0;
    for (const int p : max_live) {
      worst = std::max(worst, p);
    }
    return worst;
  }
};

/// Computes register pressure for a scheduled bound DFG.
[[nodiscard]] RegPressure compute_reg_pressure(const BoundDfg& bound,
                                               const Datapath& dp,
                                               const Schedule& sched);

}  // namespace cvb
