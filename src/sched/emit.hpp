// Symbolic VLIW assembly emission from a scheduled, bound DFG: one
// instruction word per cycle, with one slot per cluster FU and per bus.
// The output is symbolic (virtual registers named after producing
// operations, live-ins named %in<k>) — register assignment is a later
// compilation stage, consistent with the paper's early-binding flow.
//
//   cycle 0 : c0 { add %s1 <- %in0, %in1 } | c1 { add %s3 <- %in4, %in5 }
//   cycle 2 : c0 { mul %p1 <- %s1, %s2 }   | bus { mov %t1 <- %p2 -> c0 }
#pragma once

#include <iosfwd>

#include "bind/bound_dfg.hpp"
#include "machine/datapath.hpp"
#include "sched/schedule.hpp"

namespace cvb {

/// Writes the symbolic VLIW program for `sched`. Throws
/// std::logic_error if the schedule oversubscribes a resource pool
/// (i.e. is not legal for the datapath).
void emit_vliw_asm(std::ostream& out, const BoundDfg& bound,
                   const Datapath& dp, const Schedule& sched);

}  // namespace cvb
