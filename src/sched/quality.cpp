#include "sched/quality.hpp"

#include "graph/analysis.hpp"

namespace cvb {

std::strong_ordering operator<=>(const QualityU& a, const QualityU& b) {
  if (const auto cmp = a.latency <=> b.latency; cmp != 0) {
    return cmp;
  }
  // Equal latency implies equal tail length; compare elementwise from
  // the last step downward (U_0 first).
  const std::size_t len = std::min(a.tail_counts.size(), b.tail_counts.size());
  for (std::size_t i = 0; i < len; ++i) {
    if (const auto cmp = a.tail_counts[i] <=> b.tail_counts[i]; cmp != 0) {
      return cmp;
    }
  }
  return a.tail_counts.size() <=> b.tail_counts.size();
}

QualityU compute_quality_u(const BoundDfg& bound, const Datapath& dp,
                           const Schedule& sched) {
  return compute_quality_u(bound.graph.types(), bound.num_original_ops(), dp,
                           sched);
}

QualityU compute_quality_u(std::span<const OpType> type, int num_original_ops,
                           const Datapath& dp, const Schedule& sched) {
  QualityU q;
  q.latency = sched.latency;
  q.tail_counts.assign(static_cast<std::size_t>(sched.latency), 0);
  const LatencyTable& lat = dp.latencies();
  for (OpId v = 0; v < num_original_ops; ++v) {
    const int done = sched.start[static_cast<std::size_t>(v)] +
                     lat_of(lat, type[static_cast<std::size_t>(v)]);
    const int i = sched.latency - done;  // U_i index
    if (i >= 0 && i < static_cast<int>(q.tail_counts.size())) {
      ++q.tail_counts[static_cast<std::size_t>(i)];
    }
  }
  return q;
}

QualityM compute_quality_m(const Schedule& sched) {
  return QualityM{sched.latency, sched.num_moves};
}

}  // namespace cvb
