#include "sched/bb_scheduler.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "graph/analysis.hpp"
#include "sched/list_scheduler.hpp"

namespace cvb {

namespace {

/// Search state shared across the recursion.
struct Search {
  const BoundDfg* bound = nullptr;
  const Datapath* dp = nullptr;
  std::vector<int> op_lat;      // per-op latency (moves: link hop latency)
  std::vector<OpId> order;      // fixed topological assignment order
  std::vector<int> tail;        // longest completion path from each op
  std::vector<int> pool_of;     // resource pool index per op
  std::vector<int> capacity;    // per pool
  std::vector<int> dii;         // per pool
  std::vector<std::vector<int>> issues;  // per pool per cycle
  std::vector<int> start;
  int best_latency = 0;
  std::vector<int> best_start;
  std::uint64_t nodes = 0;
  std::uint64_t max_nodes = 0;
  bool budget_exhausted = false;

  [[nodiscard]] bool pool_fits(int pool, int t) const {
    const auto& vec = issues[static_cast<std::size_t>(pool)];
    const int d = dii[static_cast<std::size_t>(pool)];
    // An issue at t occupies the unit for cycles [t, t+d). For every
    // such cycle s, all issues whose occupancy covers s — i.e. issues
    // in (s-d, s] — plus this candidate must fit the capacity. Ops
    // assigned earlier in the search may sit later in time, so cycles
    // after t matter too.
    for (int s = t; s < t + d; ++s) {
      int covering = 1;  // the candidate
      const int lo = std::max(0, s - d + 1);
      const int hi = std::min(s, static_cast<int>(vec.size()) - 1);
      for (int u = lo; u <= hi; ++u) {
        covering += vec[static_cast<std::size_t>(u)];
      }
      if (covering > capacity[static_cast<std::size_t>(pool)]) {
        return false;
      }
    }
    return true;
  }

  void dfs(std::size_t index) {
    if (budget_exhausted || ++nodes > max_nodes) {
      budget_exhausted = true;
      return;
    }
    if (index == order.size()) {
      int latency = 0;
      for (OpId v = 0; v < bound->graph.num_ops(); ++v) {
        latency = std::max(latency, start[static_cast<std::size_t>(v)] +
                                        op_lat[static_cast<std::size_t>(v)]);
      }
      if (latency < best_latency) {
        best_latency = latency;
        best_start = start;
      }
      return;
    }
    const OpId v = order[index];
    int earliest = 0;
    for (const OpId p : bound->graph.preds(v)) {
      earliest = std::max(earliest, start[static_cast<std::size_t>(p)] +
                                        op_lat[static_cast<std::size_t>(p)]);
    }
    const int pool = pool_of[static_cast<std::size_t>(v)];
    // Deadline: starting at or beyond it cannot *strictly* beat the
    // incumbent (the incumbent itself is already a valid answer).
    const int deadline =
        best_latency - tail[static_cast<std::size_t>(v)] - 1;
    for (int t = earliest; t <= deadline && !budget_exhausted; ++t) {
      if (!pool_fits(pool, t)) {
        continue;
      }
      auto& vec = issues[static_cast<std::size_t>(pool)];
      if (t >= static_cast<int>(vec.size())) {
        vec.resize(static_cast<std::size_t>(t) + 1, 0);
      }
      ++vec[static_cast<std::size_t>(t)];
      start[static_cast<std::size_t>(v)] = t;
      dfs(index + 1);
      --vec[static_cast<std::size_t>(t)];
      start[static_cast<std::size_t>(v)] = -1;
    }
  }
};

}  // namespace

Schedule optimal_schedule(const BoundDfg& bound, const Datapath& dp,
                          const BbSchedulerLimits& limits) {
  const int n = bound.graph.num_ops();
  if (n > limits.max_ops) {
    throw std::invalid_argument("optimal_schedule: graph has " +
                                std::to_string(n) + " ops, limit " +
                                std::to_string(limits.max_ops));
  }
  // Warm start: the list schedule is the incumbent (and the fallback
  // answer for empty graphs).
  Schedule incumbent = list_schedule(bound, dp);
  if (n == 0) {
    return incumbent;
  }

  Search search;
  search.bound = &bound;
  search.dp = &dp;
  search.order = topological_order(bound.graph);
  search.max_nodes = limits.max_nodes;
  search.op_lat.assign(static_cast<std::size_t>(n), 0);
  for (OpId v = 0; v < n; ++v) {
    search.op_lat[static_cast<std::size_t>(v)] = bound_op_latency(bound, dp, v);
  }

  // Longest completion path (for pruning).
  search.tail.assign(static_cast<std::size_t>(n), 0);
  for (auto it = search.order.rbegin(); it != search.order.rend(); ++it) {
    const OpId v = *it;
    int longest = 0;
    for (const OpId s : bound.graph.succs(v)) {
      longest = std::max(longest, search.tail[static_cast<std::size_t>(s)]);
    }
    search.tail[static_cast<std::size_t>(v)] =
        search.op_lat[static_cast<std::size_t>(v)] + longest;
  }

  // Pools: cluster FU pools, then one per interconnect link (same
  // layout as the list scheduler).
  for (ClusterId c = 0; c < dp.num_clusters(); ++c) {
    for (int ti = 0; ti < kNumClusterFuTypes; ++ti) {
      search.capacity.push_back(dp.fu_count(c, static_cast<FuType>(ti)));
      search.dii.push_back(dp.dii(static_cast<FuType>(ti)));
    }
  }
  const Topology& topo = dp.topology();
  for (int li = 0; li < topo.num_links(); ++li) {
    search.capacity.push_back(topo.link(li).capacity);
    search.dii.push_back(dp.dii(FuType::kBus));
  }
  search.issues.assign(search.capacity.size(), {});
  search.pool_of.assign(static_cast<std::size_t>(n), 0);
  for (OpId v = 0; v < n; ++v) {
    const FuType t = fu_type_of(bound.graph.type(v));
    search.pool_of[static_cast<std::size_t>(v)] =
        (t == FuType::kBus)
            ? dp.num_clusters() * kNumClusterFuTypes + bound.link_of(v)
            : bound.place[static_cast<std::size_t>(v)] * kNumClusterFuTypes +
                  static_cast<int>(t);
  }

  search.start.assign(static_cast<std::size_t>(n), -1);
  search.best_latency = incumbent.latency;
  search.best_start = incumbent.start;
  search.dfs(0);
  if (search.budget_exhausted) {
    throw std::runtime_error(
        "optimal_schedule: node budget exhausted before proof of "
        "optimality");
  }

  Schedule result;
  result.start = search.best_start;
  result.num_moves = bound.num_moves;
  result.latency = schedule_latency(bound, result.start, dp);
  return result;
}

}  // namespace cvb
