#include "sched/verifier.hpp"

#include <algorithm>
#include <map>
#include <vector>

#include "graph/analysis.hpp"

namespace cvb {

std::string verify_schedule(const BoundDfg& bound, const Datapath& dp,
                            const Schedule& sched) {
  const Dfg& g = bound.graph;
  const int n = g.num_ops();

  if (static_cast<int>(sched.start.size()) != n) {
    return "schedule covers " + std::to_string(sched.start.size()) +
           " ops, graph has " + std::to_string(n);
  }
  for (OpId v = 0; v < n; ++v) {
    if (sched.start[static_cast<std::size_t>(v)] < 0) {
      return "operation " + g.name(v) + " not scheduled";
    }
  }

  // Dependencies (moves are charged their occupied link's hop latency).
  for (OpId u = 0; u < n; ++u) {
    const int done = sched.start[static_cast<std::size_t>(u)] +
                     bound_op_latency(bound, dp, u);
    for (const OpId v : g.succs(u)) {
      if (sched.start[static_cast<std::size_t>(v)] < done) {
        return "dependency violated: " + g.name(v) + " starts at cycle " +
               std::to_string(sched.start[static_cast<std::size_t>(v)]) +
               " before " + g.name(u) + " completes at " +
               std::to_string(done);
      }
    }
  }

  // Resource windows: key = (cluster, fu type); interconnect link l
  // uses cluster = -1 - l, so the single bus (link 0) keeps its
  // historical key of -1 and each further link gets its own pool.
  std::map<std::pair<ClusterId, FuType>, std::vector<int>> issues;
  for (OpId v = 0; v < n; ++v) {
    const FuType t = fu_type_of(g.type(v));
    const ClusterId c = (t == FuType::kBus)
                            ? kNoCluster - bound.link_of(v)
                            : bound.place[static_cast<std::size_t>(v)];
    if (t != FuType::kBus) {
      if (c < 0 || c >= dp.num_clusters()) {
        return "operation " + g.name(v) + " has invalid placement " +
               std::to_string(c);
      }
      if (dp.fu_count(c, t) == 0) {
        return "operation " + g.name(v) + " placed on cluster " +
               std::to_string(c) + " lacking a " +
               std::string(fu_type_name(t));
      }
    }
    auto& vec = issues[{c, t}];
    const int s = sched.start[static_cast<std::size_t>(v)];
    if (s >= static_cast<int>(vec.size())) {
      vec.resize(static_cast<std::size_t>(s) + 1, 0);
    }
    ++vec[static_cast<std::size_t>(s)];
  }
  for (const auto& [key, vec] : issues) {
    const auto [c, t] = key;
    const int capacity = (t == FuType::kBus)
                             ? dp.topology().link(kNoCluster - c).capacity
                             : dp.fu_count(c, t);
    const int dii = dp.dii(t);
    for (int cycle = 0; cycle < static_cast<int>(vec.size()); ++cycle) {
      int in_flight = 0;
      for (int s = std::max(0, cycle - dii + 1); s <= cycle; ++s) {
        in_flight += vec[static_cast<std::size_t>(s)];
      }
      if (in_flight > capacity) {
        return std::string(fu_type_name(t)) + " pool of cluster " +
               std::to_string(c) + " oversubscribed at cycle " +
               std::to_string(cycle) + ": " + std::to_string(in_flight) +
               " in flight, capacity " + std::to_string(capacity);
      }
    }
  }

  const int actual_latency = schedule_latency(bound, sched.start, dp);
  if (sched.latency != actual_latency) {
    return "recorded latency " + std::to_string(sched.latency) +
           " differs from actual " + std::to_string(actual_latency);
  }
  if (sched.num_moves != bound.num_moves) {
    return "recorded move count " + std::to_string(sched.num_moves) +
           " differs from bound graph's " + std::to_string(bound.num_moves);
  }
  return {};
}

}  // namespace cvb
