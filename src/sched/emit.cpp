#include "sched/emit.hpp"

#include <algorithm>
#include <map>
#include <ostream>
#include <string>
#include <vector>


namespace cvb {

namespace {

/// Virtual-register name of an operation's result.
std::string reg(const Dfg& g, OpId v) { return "%" + g.name(v); }

}  // namespace

void emit_vliw_asm(std::ostream& out, const BoundDfg& bound,
                   const Datapath& dp, const Schedule& sched) {
  const Dfg& g = bound.graph;

  // Ops per start cycle.
  std::vector<std::vector<OpId>> by_cycle(
      static_cast<std::size_t>(std::max(sched.latency, 0)));
  for (OpId v = 0; v < g.num_ops(); ++v) {
    const int start = sched.start[static_cast<std::size_t>(v)];
    if (start < 0 || start >= sched.latency) {
      throw std::logic_error("emit_vliw_asm: op " + g.name(v) +
                             " has start cycle outside the schedule");
    }
    by_cycle[static_cast<std::size_t>(start)].push_back(v);
  }

  // Resource legality: count issues per pool per cycle window.
  std::map<std::pair<ClusterId, FuType>, std::vector<int>> issues;

  // Externals are numbered globally in (op, slot) order, so the same
  // schedule always emits the same live-in names.
  int next_livein = 0;
  std::map<std::pair<OpId, int>, std::string> livein_names;
  for (OpId v = 0; v < g.num_ops(); ++v) {
    int slot = 0;
    for (const OpId p : g.operands(v)) {
      if (p == kNoOp) {
        livein_names.emplace(std::make_pair(v, slot),
                             "%in" + std::to_string(next_livein++));
      }
      ++slot;
    }
  }
  const auto operand_names = [&](OpId v) {
    std::vector<std::string> names;
    int slot = 0;
    for (const OpId p : g.operands(v)) {
      names.push_back(p == kNoOp ? livein_names.at({v, slot}) : reg(g, p));
      ++slot;
    }
    return names;
  };

  for (int cycle = 0; cycle < sched.latency; ++cycle) {
    // Stable presentation: cluster-major, bus last.
    std::vector<OpId>& ops = by_cycle[static_cast<std::size_t>(cycle)];
    std::sort(ops.begin(), ops.end(), [&](OpId a, OpId b) {
      const bool move_a = bound.is_move_op(a);
      const bool move_b = bound.is_move_op(b);
      const ClusterId ca =
          move_a ? dp.num_clusters() : bound.place[static_cast<std::size_t>(a)];
      const ClusterId cb =
          move_b ? dp.num_clusters() : bound.place[static_cast<std::size_t>(b)];
      return std::make_pair(ca, a) < std::make_pair(cb, b);
    });

    out << "cycle " << cycle << " :";
    bool first = true;
    for (const OpId v : ops) {
      const FuType t = fu_type_of(g.type(v));
      // Interconnect link l is keyed as cluster -1 - l (verifier's
      // convention), so each link gets its own legality window.
      const ClusterId c = (t == FuType::kBus)
                              ? kNoCluster - bound.link_of(v)
                              : bound.place[static_cast<std::size_t>(v)];
      auto& pool = issues[{c, t}];
      if (cycle >= static_cast<int>(pool.size())) {
        pool.resize(static_cast<std::size_t>(cycle) + 1, 0);
      }
      ++pool[static_cast<std::size_t>(cycle)];
      int in_flight = 0;
      for (int s = std::max(0, cycle - dp.dii(t) + 1); s <= cycle; ++s) {
        if (s < static_cast<int>(pool.size())) {
          in_flight += pool[static_cast<std::size_t>(s)];
        }
      }
      const int capacity = (t == FuType::kBus)
                               ? dp.topology().link(kNoCluster - c).capacity
                               : dp.fu_count(c, t);
      if (in_flight > capacity) {
        throw std::logic_error("emit_vliw_asm: " +
                               std::string(fu_type_name(t)) +
                               " pool oversubscribed at cycle " +
                               std::to_string(cycle));
      }

      if (!first) {
        out << " |";
      }
      first = false;
      const std::vector<std::string> names = operand_names(v);
      if (t == FuType::kBus) {
        const int mi = v - bound.num_original_ops();
        out << " bus { mov " << reg(g, v) << " <- "
            << (names.empty() ? std::string("?") : names.front()) << " -> c"
            << bound.move_dest[static_cast<std::size_t>(mi)] << " }";
      } else {
        out << " c" << c << " { " << op_type_name(g.type(v)) << ' '
            << reg(g, v);
        for (std::size_t i = 0; i < names.size(); ++i) {
          out << (i == 0 ? " <- " : ", ") << names[i];
        }
        out << " }";
      }
    }
    if (first) {
      out << " nop";
    }
    out << '\n';
  }
}

}  // namespace cvb
