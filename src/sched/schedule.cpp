#include "sched/schedule.hpp"

#include <algorithm>
#include <stdexcept>

namespace cvb {

int schedule_latency(const BoundDfg& bound, const std::vector<int>& start,
                     const LatencyTable& lat) {
  if (static_cast<int>(start.size()) != bound.graph.num_ops()) {
    throw std::invalid_argument("schedule_latency: start size mismatch");
  }
  int latency = 0;
  for (OpId v = 0; v < bound.graph.num_ops(); ++v) {
    latency = std::max(latency, start[static_cast<std::size_t>(v)] +
                                    lat_of(lat, bound.graph.type(v)));
  }
  return latency;
}

int schedule_latency(const BoundDfg& bound, const std::vector<int>& start,
                     const Datapath& dp) {
  if (static_cast<int>(start.size()) != bound.graph.num_ops()) {
    throw std::invalid_argument("schedule_latency: start size mismatch");
  }
  int latency = 0;
  for (OpId v = 0; v < bound.graph.num_ops(); ++v) {
    latency = std::max(latency, start[static_cast<std::size_t>(v)] +
                                    bound_op_latency(bound, dp, v));
  }
  return latency;
}

}  // namespace cvb
