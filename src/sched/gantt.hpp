// ASCII Gantt rendering of schedules: one row per functional unit
// (and per bus), one column per clock cycle. Used by the examples and
// handy when debugging binder decisions.
//
//   cycle        0    1    2    3
//   c0.ALU0    | s1 | s2 | p1 |    |
//   c1.ALU0    | s3 | s4 |    |    |
//   BUS0       |    |    | t1 |    |
#pragma once

#include <iosfwd>

#include "bind/bound_dfg.hpp"
#include "machine/datapath.hpp"
#include "sched/schedule.hpp"

namespace cvb {

/// Renders `sched` as an ASCII Gantt chart. Operations are assigned to
/// concrete FU instances greedily (earliest-free unit of the right pool
/// in instance order); this assignment is presentation-only — the
/// schedule itself is instance-agnostic. Throws std::logic_error if the
/// schedule is not legal for (bound, dp) (more ops in a window than the
/// pool has units).
void write_gantt(std::ostream& out, const BoundDfg& bound, const Datapath& dp,
                 const Schedule& sched);

}  // namespace cvb
