// Graph-generic core of the cluster/bus-aware list scheduler, plus the
// reusable scratch arena that makes repeated invocations allocation-free.
//
// The scheduling algorithm (see list_scheduler.hpp for the contract) is
// a template over a *bound-graph view* so two representations can share
// one implementation bit for bit:
//
//  * `BoundDfg` — the canonical, self-contained form every external
//    caller uses (adapted by BoundDfgView below); and
//  * `FlatBound` (bind/delta_eval.hpp) — the arena-backed scratch form
//    the incremental candidate evaluator rebuilds per candidate without
//    allocating.
//
// A view type G must provide:
//   int num_ops();            OpType type(OpId v);
//   std::span<const OpId> preds(OpId v);  std::span<const OpId> succs(OpId v);
//   ClusterId place(OpId v);  int num_moves();
//   int link(OpId v);              // topology link of a move op
//   std::string op_name(OpId v);   // error messages only
// with the same dedup semantics as Dfg::add_operand (an edge appears
// once in preds/succs however many operand slots repeat it).
//
// Data-oriented organization (PR 6 rewrite; the pre-rewrite core lives
// on as the differential oracle in tests/reference_scheduler.hpp):
//
//  * One descriptor pass per schedule copies everything the scheduler
//    will touch into flat arena arrays: per-op latency, resource pool
//    index, indegree, and a CSR copy of the successor edges. The
//    source graphs keep one heap vector per op, so sweeping edges
//    there is pointer chasing; after the copy, the four edge sweeps
//    (topological order, ASAP by forward successor relaxation, tails,
//    and the cycle loop's successor wakeups) all stream contiguous
//    int32 data. Predecessor lists are read only for their lengths
//    (the indegrees) and never copied.
//  * Resource legality is a bitmask occupancy table per pool
//    (sched/occupancy.hpp): `uint64_t` words per cycle row, issue =
//    claim the lowest free unit bit across the dii-cycle span. This is
//    exactly equivalent to the old counted trailing-window check (see
//    occupancy.hpp for the argument) but costs a word scan instead of
//    an O(dii) loop, with no per-issue resize.
//  * The ready set is a bitmask over *priority ranks*. The candidate
//    priority (ALAP, mobility, -consumers, id) is a strict total order
//    with keys fixed before the cycle loop, so it is sorted once into
//    a rank permutation; thereafter "keep the ready vector sorted"
//    degenerates to "set bit rank_of[v]" (branchless insertion, op-id
//    tie-break baked into the rank), and scanning set bits in word
//    order visits candidates in exactly the old sorted order. The sort
//    itself runs on packed 64-bit keys (alap | mobility | ~consumers |
//    id, 16 bits each) whenever the fields fit, turning the 4-way
//    comparator into one integer compare; graphs too large for the
//    packing fall back to the comparator with identical ordering.
//  * Zero per-step allocation: every buffer is arena-owned and only
//    grows (counted in SchedArena::grows) until the arena has seen the
//    workload's largest graph.
//
// Determinism: the priority is a strict total order (the id tie-break),
// so the rank permutation is unique and the schedule is a pure function
// of the view — the incremental evaluator's results are bit-identical
// to a fresh build_bound_dfg + list_schedule of the same candidate, and
// both are bit-identical to the pre-rewrite reference core (enforced by
// tests/sched_core_diff_test.cpp and `bench/sched_core --check`).
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "machine/datapath.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/occupancy.hpp"
#include "sched/schedule.hpp"
#include "support/fault.hpp"
#include "support/trace.hpp"

namespace cvb::detail {

/// Adapter giving BoundDfg the view interface.
struct BoundDfgView {
  const BoundDfg* bound;

  [[nodiscard]] int num_ops() const { return bound->graph.num_ops(); }
  [[nodiscard]] OpType type(OpId v) const { return bound->graph.type(v); }
  [[nodiscard]] std::span<const OpId> preds(OpId v) const {
    return bound->graph.preds(v);
  }
  [[nodiscard]] std::span<const OpId> succs(OpId v) const {
    return bound->graph.succs(v);
  }
  [[nodiscard]] ClusterId place(OpId v) const {
    return bound->place[static_cast<std::size_t>(v)];
  }
  [[nodiscard]] int num_moves() const { return bound->num_moves; }
  [[nodiscard]] int link(OpId v) const { return bound->link_of(v); }
  [[nodiscard]] std::string op_name(OpId v) const {
    return bound->graph.name(v);
  }
};

/// resize() that counts reallocations into the arena's grow hook.
template <typename T>
void arena_size(std::vector<T>& v, std::size_t n, std::uint64_t& grows) {
  if (n > v.capacity()) {
    ++grows;
  }
  v.resize(n);
}

/// assign() that counts reallocations into the arena's grow hook.
template <typename T>
void arena_fill(std::vector<T>& v, std::size_t n, T value,
                std::uint64_t& grows) {
  if (n > v.capacity()) {
    ++grows;
  }
  v.assign(n, value);
}

/// The scheduling loop. Fills `out` (start/latency/num_moves); `out`'s
/// vector is reused across calls when the caller keeps the Schedule.
template <typename G>
void list_schedule_core(const G& g, const Datapath& dp,
                        const ListSchedulerOptions& options, SchedArena& arena,
                        Schedule& out) {
  ScopedSpan span(options.tracer, "sched.list", options.trace_parent);
  const int n = g.num_ops();
  const auto sn = static_cast<std::size_t>(n);
  const LatencyTable& lat = dp.latencies();

  // Descriptor pass: SoA latency / resource pool / indegree plus the
  // CSR successor copy, in ONE sweep over the view (per-op vector
  // headers are only touched once). Pool index = cluster *
  // kNumClusterFuTypes + fu_type; the interconnect pools come last, one
  // per topology link (a single bus contributes exactly one, preserving
  // the historical layout). Placement errors surface here, before any
  // scheduling state is touched, with the same messages the scheduler
  // always threw. succ_data grows geometrically while copying, so in
  // the steady state (arena warmed on the workload's largest graph) the
  // pass never allocates.
  const int num_cluster_pools = dp.num_clusters() * kNumClusterFuTypes;
  const Topology& topo = dp.topology();
  arena_size(arena.op_latency, sn, arena.grows);
  arena_size(arena.op_pool, sn, arena.grows);
  arena_fill(arena.indegree, sn, std::int32_t{0}, arena.grows);
  arena_size(arena.succ_offset, sn + 1, arena.grows);
  long cycle_guard = 16;
  std::int32_t num_succ_edges = 0;
  for (OpId v = 0; v < n; ++v) {
    const auto sv = static_cast<std::size_t>(v);
    const OpType op = g.type(v);
    arena.op_latency[sv] = lat_of(lat, op);
    const FuType t = fu_type_of(op);
    if (t == FuType::kBus) {
      const int link = g.link(v);
      arena.op_pool[sv] = num_cluster_pools + link;
      arena.op_latency[sv] = dp.move_latency_on(link);
    } else {
      const ClusterId c = g.place(v);
      if (c < 0 || c >= dp.num_clusters()) {
        throw std::logic_error("list_schedule: op " + g.op_name(v) +
                               " has no cluster placement");
      }
      if (dp.fu_count(c, t) == 0) {
        throw std::logic_error("list_schedule: op " + g.op_name(v) +
                               " placed on cluster without a " +
                               std::string(fu_type_name(t)));
      }
      arena.op_pool[sv] = c * kNumClusterFuTypes + static_cast<int>(t);
    }
    cycle_guard += arena.op_latency[sv] + dp.dii(t);
    const std::span<const OpId> succs = g.succs(v);
    arena.succ_offset[sv] = num_succ_edges;
    const auto needed =
        static_cast<std::size_t>(num_succ_edges) + succs.size();
    if (needed > arena.succ_data.size()) {
      arena_size(arena.succ_data, std::max(needed, arena.succ_data.size() * 2),
                 arena.grows);
    }
    if (!succs.empty()) {
      std::memcpy(arena.succ_data.data() + num_succ_edges, succs.data(),
                  succs.size() * sizeof(OpId));
    }
    num_succ_edges += static_cast<std::int32_t>(succs.size());
  }
  arena.succ_offset[sn] = num_succ_edges;
  // Indegrees from one contiguous sweep of the CSR copy: preds/succs
  // are two faces of the same deduped edge set, so the number of times
  // v appears in successor lists equals preds(v).size(). This is the
  // only thing the scheduler ever needed predecessor lists for, so the
  // view's preds() is never called at all.
  for (std::int32_t e = 0; e < num_succ_edges; ++e) {
    ++arena.indegree[static_cast<std::size_t>(
        arena.succ_data[static_cast<std::size_t>(e)])];
  }

  // Topological order (Kahn; `topo` doubles as the work queue — the
  // visit order does not affect the resulting ASAP/ALAP values), with
  // the ASAP forward relaxation fused into the same sweep: when the
  // queue pops v every predecessor has already been popped, so asap[v]
  // is final and pushing asap[v] + lat[v] into every successor needs
  // no predecessor lists at all (the values are identical to the
  // max-over-preds formulation). lcp accumulates the critical path.
  arena_size(arena.topo, sn, arena.grows);
  arena_size(arena.topo_pending, sn, arena.grows);
  arena_fill(arena.asap, sn, std::int32_t{0}, arena.grows);
  if (n > 0) {
    std::memcpy(arena.topo_pending.data(), arena.indegree.data(),
                sn * sizeof(std::int32_t));
  }
  int queued = 0;
  for (OpId v = 0; v < n; ++v) {
    if (arena.indegree[static_cast<std::size_t>(v)] == 0) {
      arena.topo[static_cast<std::size_t>(queued++)] = v;
    }
  }
  const int num_sources = queued;
  std::int32_t lcp = 0;
  for (int head = 0; head < queued; ++head) {
    const auto sv = static_cast<std::size_t>(arena.topo[static_cast<std::size_t>(head)]);
    const std::int32_t done = arena.asap[sv] + arena.op_latency[sv];
    lcp = std::max(lcp, done);
    const std::int32_t begin = arena.succ_offset[sv];
    const std::int32_t end = arena.succ_offset[sv + 1];
    for (std::int32_t e = begin; e < end; ++e) {
      const auto ss = static_cast<std::size_t>(arena.succ_data[static_cast<std::size_t>(e)]);
      arena.asap[ss] = std::max(arena.asap[ss], done);
      if (--arena.topo_pending[ss] == 0) {
        arena.topo[static_cast<std::size_t>(queued++)] = static_cast<OpId>(ss);
      }
    }
  }
  if (queued != n) {
    throw std::logic_error("list_schedule: graph has a cycle");
  }

  // Priority ranks: one sort per schedule over (ALAP, mobility,
  // -consumers, id) — the same lexicographic order the ready vector
  // used to be re-sorted by every cycle. ALAP = L_CP - tail(v) (the
  // longest completion path starting at v) and mobility = ALAP - ASAP
  // are folded straight into the keys during the backward tail sweep
  // instead of materialized per op. When every field fits 16 bits the
  // order is one packed uint64 per op (inverted consumer count so
  // "more consumers first" becomes an ascending field) and the sort is
  // branch-free integer compares.
  arena_size(arena.op_of_rank, sn, arena.grows);
  arena_size(arena.rank_of, sn, arena.grows);
  arena_size(arena.tail, sn, arena.grows);
  const bool packed_keys = n <= 0xFFFF && lcp <= 0xFFFF;
  if (packed_keys) {
    arena_size(arena.keys, sn, arena.grows);
  }
  for (int i = n - 1; i >= 0; --i) {
    const auto sv =
        static_cast<std::size_t>(arena.topo[static_cast<std::size_t>(i)]);
    std::int32_t longest_succ = 0;
    const std::int32_t begin = arena.succ_offset[sv];
    const std::int32_t end = arena.succ_offset[sv + 1];
    for (std::int32_t e = begin; e < end; ++e) {
      longest_succ = std::max(
          longest_succ,
          arena.tail[static_cast<std::size_t>(arena.succ_data[static_cast<std::size_t>(e)])]);
    }
    const std::int32_t tail = arena.op_latency[sv] + longest_succ;
    arena.tail[sv] = tail;
    if (packed_keys) {
      const auto alap = static_cast<std::uint64_t>(lcp - tail);
      const std::uint64_t mobility =
          alap - static_cast<std::uint64_t>(arena.asap[sv]);
      const auto consumers = static_cast<std::uint64_t>(end - begin);
      arena.keys[sv] = (alap << 48) | (mobility << 32) |
                       ((0xFFFF - consumers) << 16) |
                       static_cast<std::uint64_t>(sv);
    }
  }
  if (packed_keys) {
    std::sort(arena.keys.begin(), arena.keys.end());
    for (int r = 0; r < n; ++r) {
      const auto v = static_cast<OpId>(arena.keys[static_cast<std::size_t>(r)] &
                                       0xFFFF);
      arena.op_of_rank[static_cast<std::size_t>(r)] = v;
      arena.rank_of[static_cast<std::size_t>(v)] = r;
    }
  } else {
    for (OpId v = 0; v < n; ++v) {
      arena.op_of_rank[static_cast<std::size_t>(v)] = v;
    }
    std::sort(arena.op_of_rank.begin(), arena.op_of_rank.end(),
              [&arena, lcp](OpId a, OpId b) {
                const auto sa = static_cast<std::size_t>(a);
                const auto sb = static_cast<std::size_t>(b);
                const std::int32_t alap_a = lcp - arena.tail[sa];
                const std::int32_t alap_b = lcp - arena.tail[sb];
                if (alap_a != alap_b) {
                  return alap_a < alap_b;
                }
                const std::int32_t mob_a = alap_a - arena.asap[sa];
                const std::int32_t mob_b = alap_b - arena.asap[sb];
                if (mob_a != mob_b) {
                  return mob_a < mob_b;
                }
                const std::int32_t cons_a =
                    arena.succ_offset[sa + 1] - arena.succ_offset[sa];
                const std::int32_t cons_b =
                    arena.succ_offset[sb + 1] - arena.succ_offset[sb];
                if (cons_a != cons_b) {
                  return cons_a > cons_b;
                }
                return a < b;
              });
    for (int r = 0; r < n; ++r) {
      arena.rank_of[static_cast<std::size_t>(
          arena.op_of_rank[static_cast<std::size_t>(r)])] = r;
    }
  }

  // Bitmask occupancy tables: per cluster per cluster-FU-type, then one
  // per interconnect link (per-link legality; a single bus is one pool
  // of capacity N(BUS), exactly the historical global bus pool).
  const auto num_pools = static_cast<std::size_t>(num_cluster_pools) +
                         static_cast<std::size_t>(topo.num_links());
  if (arena.pools.size() < num_pools) {
    ++arena.grows;
    arena.pools.resize(num_pools);
  }
  std::size_t pool_idx = 0;
  for (ClusterId c = 0; c < dp.num_clusters(); ++c) {
    for (int t = 0; t < kNumClusterFuTypes; ++t) {
      arena.pools[pool_idx++].reset(dp.fu_count(c, static_cast<FuType>(t)),
                                    dp.dii(static_cast<FuType>(t)));
    }
  }
  for (int li = 0; li < topo.num_links(); ++li) {
    const int link_capacity =
        options.unbounded_bus ? n + 1 : topo.link(li).capacity;
    arena.pools[pool_idx++].reset(link_capacity, dp.dii(FuType::kBus));
  }

  out.start.assign(sn, -1);
  out.num_moves = g.num_moves();

  // pending starts as the static indegree; ready bit r = the op of
  // rank r is dependency-free and unscheduled.
  arena_size(arena.pending, sn, arena.grows);
  if (n > 0) {
    std::memcpy(arena.pending.data(), arena.indegree.data(),
                sn * sizeof(std::int32_t));
  }
  arena_fill(arena.ready_at, sn, std::int32_t{0}, arena.grows);
  const std::size_t num_words = (sn + 63) / 64;
  arena_fill(arena.ready_words, num_words, std::uint64_t{0}, arena.grows);
  // The indegree-0 ops are exactly the prefix of `topo` queued before
  // the Kahn sweep ran.
  for (int i = 0; i < num_sources; ++i) {
    const auto sv = static_cast<std::size_t>(arena.topo[static_cast<std::size_t>(i)]);
    const auto r = static_cast<std::uint32_t>(arena.rank_of[sv]);
    arena.ready_words[r >> 6] |= std::uint64_t{1} << (r & 63);
  }

  int scheduled = 0;
  long long steps = 0;
  auto& newly_ready = arena.newly_ready;
  arena_size(newly_ready, sn, arena.grows);  // pre-size: pushes never grow
  for (int cycle = 0; scheduled < n; ++cycle) {
    if (cycle > cycle_guard) {
      throw std::logic_error("list_schedule: no progress (malformed graph?)");
    }
    newly_ready.clear();
    for (std::size_t w = 0; w < num_words; ++w) {
      // Snapshot the word: bits set during this cycle (newly ready
      // successors) are buffered and inserted after the scan, exactly
      // like the old newly_ready list, so the per-cycle candidate set
      // — and the step-budget accounting — match the reference core.
      std::uint64_t bits = arena.ready_words[w];
      while (bits != 0) {
        const int bit = std::countr_zero(bits);
        bits &= bits - 1;
        if (options.step_budget > 0 && ++steps > options.step_budget) {
          throw ResourceLimitError(
              "list_schedule: step budget exhausted (" +
              std::to_string(options.step_budget) + " candidate visits)");
        }
        const OpId v = arena.op_of_rank[(w << 6) + static_cast<std::size_t>(
                                                       bit)];
        const auto sv = static_cast<std::size_t>(v);
        if (arena.ready_at[sv] > cycle) {
          continue;
        }
        BitOccupancy& pool =
            arena.pools[static_cast<std::size_t>(arena.op_pool[sv])];
        if (pool.try_issue(cycle) < 0) {
          continue;
        }
        arena.ready_words[w] &= ~(std::uint64_t{1} << bit);
        out.start[sv] = cycle;
        ++scheduled;
        const int done = cycle + arena.op_latency[sv];
        const std::int32_t begin = arena.succ_offset[sv];
        const std::int32_t end = arena.succ_offset[sv + 1];
        for (std::int32_t e = begin; e < end; ++e) {
          const auto ss = static_cast<std::size_t>(
              arena.succ_data[static_cast<std::size_t>(e)]);
          arena.ready_at[ss] =
              std::max(arena.ready_at[ss], static_cast<std::int32_t>(done));
          if (--arena.pending[ss] == 0) {
            newly_ready.push_back(static_cast<OpId>(ss));
          }
        }
      }
    }
    for (const OpId s : newly_ready) {
      const auto r =
          static_cast<std::uint32_t>(arena.rank_of[static_cast<std::size_t>(s)]);
      arena.ready_words[r >> 6] |= std::uint64_t{1} << (r & 63);
    }
  }

  std::int32_t latency = 0;
  for (std::size_t v = 0; v < sn; ++v) {
    latency = std::max(latency, out.start[v] + arena.op_latency[v]);
  }
  out.latency = latency;
  if (span.enabled()) {
    span.attr("latency", out.latency);
    span.attr("moves", out.num_moves);
    span.attr("steps", steps);
  }
}

}  // namespace cvb::detail
