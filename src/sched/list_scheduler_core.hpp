// Graph-generic core of the cluster/bus-aware list scheduler, plus the
// reusable scratch arena that makes repeated invocations allocation-free.
//
// The scheduling algorithm (see list_scheduler.hpp for the contract) is
// a template over a *bound-graph view* so two representations can share
// one implementation bit for bit:
//
//  * `BoundDfg` — the canonical, self-contained form every external
//    caller uses (adapted by BoundDfgView below); and
//  * `FlatBound` (bind/delta_eval.hpp) — the arena-backed scratch form
//    the incremental candidate evaluator rebuilds per candidate without
//    allocating.
//
// A view type G must provide:
//   int num_ops();            OpType type(OpId v);
//   std::span<const OpId> preds(OpId v);  std::span<const OpId> succs(OpId v);
//   ClusterId place(OpId v);  int num_moves();
//   std::string op_name(OpId v);   // error messages only
// with the same dedup semantics as Dfg::add_operand (an edge appears
// once in preds/succs however many operand slots repeat it).
//
// Determinism: the candidate priority (ALAP, mobility, -consumers, id)
// is a strict total order (the id tie-break), so every sort below has a
// unique result and the schedule is a pure function of the view — the
// incremental evaluator's results are bit-identical to a fresh
// build_bound_dfg + list_schedule of the same candidate.
#pragma once

#include <algorithm>
#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

#include "machine/datapath.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/schedule.hpp"
#include "support/fault.hpp"
#include "support/trace.hpp"

namespace cvb::detail {

/// Adapter giving BoundDfg the view interface.
struct BoundDfgView {
  const BoundDfg* bound;

  [[nodiscard]] int num_ops() const { return bound->graph.num_ops(); }
  [[nodiscard]] OpType type(OpId v) const { return bound->graph.type(v); }
  [[nodiscard]] std::span<const OpId> preds(OpId v) const {
    return bound->graph.preds(v);
  }
  [[nodiscard]] std::span<const OpId> succs(OpId v) const {
    return bound->graph.succs(v);
  }
  [[nodiscard]] ClusterId place(OpId v) const {
    return bound->place[static_cast<std::size_t>(v)];
  }
  [[nodiscard]] int num_moves() const { return bound->num_moves; }
  [[nodiscard]] std::string op_name(OpId v) const {
    return bound->graph.name(v);
  }
};

/// Issue bookkeeping for one resource pool (one (cluster, FU type)
/// pair, or the bus): counts issues per cycle so the dii window
/// constraint can be checked in O(dii). The per-cycle counters live in
/// an arena-owned vector so pools are allocation-free across calls.
class ResourcePool {
 public:
  ResourcePool(int capacity, int dii, std::vector<int>* issues)
      : capacity_(capacity), dii_(dii), issues_(issues) {}

  /// True if one more operation may be issued at `cycle`.
  [[nodiscard]] bool can_issue(int cycle) const {
    int in_flight = 0;
    const int lo = std::max(0, cycle - dii_ + 1);
    for (int s = lo; s <= cycle; ++s) {
      if (s < static_cast<int>(issues_->size())) {
        in_flight += (*issues_)[static_cast<std::size_t>(s)];
      }
    }
    return in_flight < capacity_;
  }

  void issue(int cycle) {
    if (cycle >= static_cast<int>(issues_->size())) {
      issues_->resize(static_cast<std::size_t>(cycle) + 1, 0);
    }
    ++(*issues_)[static_cast<std::size_t>(cycle)];
  }

 private:
  int capacity_;
  int dii_;
  std::vector<int>* issues_;
};

/// Recomputes `arena.alap/mobility/consumers` for the bound graph,
/// matching compute_timing(g, lat, 0) / consumer_counts(g) from
/// graph/analysis.hpp exactly (target latency = the graph's own L_CP).
template <typename G>
void compute_priorities(const G& g, const LatencyTable& lat,
                        SchedArena& arena) {
  const int n = g.num_ops();
  const auto sn = static_cast<std::size_t>(n);

  // Topological order (Kahn; the visit order does not affect the
  // resulting ASAP/ALAP values).
  arena.topo_pending.assign(sn, 0);
  arena.topo.clear();
  arena.topo.reserve(sn);
  arena.frontier.clear();
  for (OpId v = 0; v < n; ++v) {
    arena.topo_pending[static_cast<std::size_t>(v)] =
        static_cast<int>(g.preds(v).size());
    if (arena.topo_pending[static_cast<std::size_t>(v)] == 0) {
      arena.frontier.push_back(v);
    }
  }
  while (!arena.frontier.empty()) {
    const OpId v = arena.frontier.back();
    arena.frontier.pop_back();
    arena.topo.push_back(v);
    for (const OpId s : g.succs(v)) {
      if (--arena.topo_pending[static_cast<std::size_t>(s)] == 0) {
        arena.frontier.push_back(s);
      }
    }
  }
  if (static_cast<int>(arena.topo.size()) != n) {
    throw std::logic_error("list_schedule: graph has a cycle");
  }

  // ASAP and the critical path (the ALAP target).
  arena.asap.assign(sn, 0);
  int lcp = 0;
  for (const OpId v : arena.topo) {
    const auto sv = static_cast<std::size_t>(v);
    int start = 0;
    for (const OpId p : g.preds(v)) {
      start = std::max(start, arena.asap[static_cast<std::size_t>(p)] +
                                  lat_of(lat, g.type(p)));
    }
    arena.asap[sv] = start;
    lcp = std::max(lcp, start + lat_of(lat, g.type(v)));
  }

  // tail(v): longest completion path starting at v (inclusive);
  // ALAP = L_CP - tail, mobility = ALAP - ASAP.
  arena.tail.assign(sn, 0);
  for (auto it = arena.topo.rbegin(); it != arena.topo.rend(); ++it) {
    const OpId v = *it;
    int longest_succ = 0;
    for (const OpId s : g.succs(v)) {
      longest_succ =
          std::max(longest_succ, arena.tail[static_cast<std::size_t>(s)]);
    }
    arena.tail[static_cast<std::size_t>(v)] =
        lat_of(lat, g.type(v)) + longest_succ;
  }
  arena.alap.resize(sn);
  arena.mobility.resize(sn);
  arena.consumers.resize(sn);
  for (OpId v = 0; v < n; ++v) {
    const auto sv = static_cast<std::size_t>(v);
    arena.alap[sv] = lcp - arena.tail[sv];
    arena.mobility[sv] = arena.alap[sv] - arena.asap[sv];
    arena.consumers[sv] = static_cast<int>(g.succs(v).size());
  }
}

/// The scheduling loop. Fills `out` (start/latency/num_moves); `out`'s
/// vector is reused across calls when the caller keeps the Schedule.
template <typename G>
void list_schedule_core(const G& g, const Datapath& dp,
                        const ListSchedulerOptions& options, SchedArena& arena,
                        Schedule& out) {
  ScopedSpan span(options.tracer, "sched.list", options.trace_parent);
  const int n = g.num_ops();
  const LatencyTable& lat = dp.latencies();

  // Priorities from the bound graph's own timing (target = its L_CP).
  compute_priorities(g, lat, arena);
  const auto priority_less = [&arena](OpId a, OpId b) {
    const auto sa = static_cast<std::size_t>(a);
    const auto sb = static_cast<std::size_t>(b);
    return std::make_tuple(arena.alap[sa], arena.mobility[sa],
                           -arena.consumers[sa], a) <
           std::make_tuple(arena.alap[sb], arena.mobility[sb],
                           -arena.consumers[sb], b);
  };

  // Resource pools: per cluster per cluster-FU-type, plus the bus.
  // pool index = cluster * kNumClusterFuTypes + fu_type; bus at the end.
  const int num_cluster_pools = dp.num_clusters() * kNumClusterFuTypes;
  const auto num_pools = static_cast<std::size_t>(num_cluster_pools) + 1;
  if (arena.pool_issues.size() < num_pools) {
    arena.pool_issues.resize(num_pools);
  }
  std::vector<ResourcePool> pools;  // small; capacity/dii pairs per call
  pools.reserve(num_pools);
  for (ClusterId c = 0; c < dp.num_clusters(); ++c) {
    for (int t = 0; t < kNumClusterFuTypes; ++t) {
      auto& issues =
          arena.pool_issues[static_cast<std::size_t>(pools.size())];
      issues.clear();
      pools.emplace_back(dp.fu_count(c, static_cast<FuType>(t)),
                         dp.dii(static_cast<FuType>(t)), &issues);
    }
  }
  const int bus_capacity =
      options.unbounded_bus ? n + 1 : dp.num_buses();
  auto& bus_issues = arena.pool_issues[static_cast<std::size_t>(pools.size())];
  bus_issues.clear();
  pools.emplace_back(bus_capacity, dp.dii(FuType::kBus), &bus_issues);
  const auto pool_index = [&](OpId v) -> int {
    const FuType t = fu_type_of(g.type(v));
    if (t == FuType::kBus) {
      return num_cluster_pools;
    }
    const ClusterId c = g.place(v);
    if (c < 0 || c >= dp.num_clusters()) {
      throw std::logic_error("list_schedule: op " + g.op_name(v) +
                             " has no cluster placement");
    }
    if (dp.fu_count(c, t) == 0) {
      throw std::logic_error("list_schedule: op " + g.op_name(v) +
                             " placed on cluster without a " +
                             std::string(fu_type_name(t)));
    }
    return c * kNumClusterFuTypes + static_cast<int>(t);
  };

  out.start.assign(static_cast<std::size_t>(n), -1);
  out.num_moves = g.num_moves();

  arena.pending.assign(static_cast<std::size_t>(n), 0);
  arena.ready_at.assign(static_cast<std::size_t>(n), 0);
  auto& ready = arena.ready;  // dependency-free, kept in priority order
  ready.clear();
  for (OpId v = 0; v < n; ++v) {
    arena.pending[static_cast<std::size_t>(v)] =
        static_cast<int>(g.preds(v).size());
    if (arena.pending[static_cast<std::size_t>(v)] == 0) {
      ready.push_back(v);
    }
  }
  std::sort(ready.begin(), ready.end(), priority_less);

  int scheduled = 0;
  // Upper bound on useful cycles: fully serial execution on one unit.
  long cycle_guard = 16;
  for (OpId v = 0; v < n; ++v) {
    cycle_guard += lat_of(lat, g.type(v)) + dp.dii_op(g.type(v));
  }

  long long steps = 0;
  auto& newly_ready = arena.newly_ready;
  for (int cycle = 0; scheduled < n; ++cycle) {
    if (cycle > cycle_guard) {
      throw std::logic_error("list_schedule: no progress (malformed graph?)");
    }
    newly_ready.clear();
    for (std::size_t i = 0; i < ready.size();) {
      if (options.step_budget > 0 && ++steps > options.step_budget) {
        throw ResourceLimitError(
            "list_schedule: step budget exhausted (" +
            std::to_string(options.step_budget) + " candidate visits)");
      }
      const OpId v = ready[i];
      if (arena.ready_at[static_cast<std::size_t>(v)] > cycle) {
        ++i;
        continue;
      }
      const int pool = pool_index(v);
      if (!pools[static_cast<std::size_t>(pool)].can_issue(cycle)) {
        ++i;
        continue;
      }
      pools[static_cast<std::size_t>(pool)].issue(cycle);
      out.start[static_cast<std::size_t>(v)] = cycle;
      ++scheduled;
      ready.erase(ready.begin() + static_cast<std::ptrdiff_t>(i));
      const int done = cycle + lat_of(lat, g.type(v));
      for (const OpId s : g.succs(v)) {
        const auto ss = static_cast<std::size_t>(s);
        arena.ready_at[ss] = std::max(arena.ready_at[ss], done);
        if (--arena.pending[ss] == 0) {
          newly_ready.push_back(s);
        }
      }
    }
    if (!newly_ready.empty()) {
      ready.insert(ready.end(), newly_ready.begin(), newly_ready.end());
      std::sort(ready.begin(), ready.end(), priority_less);
    }
  }

  int latency = 0;
  for (OpId v = 0; v < n; ++v) {
    latency = std::max(latency, out.start[static_cast<std::size_t>(v)] +
                                    lat_of(lat, g.type(v)));
  }
  out.latency = latency;
  if (span.enabled()) {
    span.attr("latency", out.latency);
    span.attr("moves", out.num_moves);
    span.attr("steps", steps);
  }
}

}  // namespace cvb::detail
