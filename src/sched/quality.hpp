// Binding quality functions (paper Section 3.2, Figure 6).
//
// Q_U = (L, U_0, U_1, ...): schedule latency followed by the number of
// *regular* (non-move) operations completing at step L, L-1, ... —
// compared lexicographically, smaller is better. Q_U rewards bindings
// that thin out the tail of the schedule even when L itself has not yet
// improved, which lets the iterative improver make gradual progress.
//
// Q_M = (L, N_MV): latency then move count. Used as the second-phase
// cost to shed redundant data transfers without regressing latency.
#pragma once

#include <compare>
#include <span>
#include <vector>

#include "bind/bound_dfg.hpp"
#include "machine/datapath.hpp"
#include "sched/schedule.hpp"

namespace cvb {

/// The paper's Q_U vector. Lexicographic order; smaller is better.
struct QualityU {
  int latency = 0;
  /// tail_counts[i] = number of regular operations whose completion
  /// cycle is latency - i. Length == latency (i ranges over all steps),
  /// so two QualityU values of equal latency always have equal-length
  /// vectors.
  std::vector<int> tail_counts;

  friend std::strong_ordering operator<=>(const QualityU& a,
                                          const QualityU& b);
  friend bool operator==(const QualityU& a, const QualityU& b) = default;
};

/// The paper's Q_M vector (latency, number of moves).
struct QualityM {
  int latency = 0;
  int num_moves = 0;

  friend std::strong_ordering operator<=>(const QualityM&,
                                          const QualityM&) = default;
};

/// Computes Q_U for a schedule of `bound` (move operations are excluded
/// from the tail counts, per the paper: "U_i is the number of regular
/// operations completed at step L-i").
[[nodiscard]] QualityU compute_quality_u(const BoundDfg& bound,
                                         const Datapath& dp,
                                         const Schedule& sched);

/// Representation-free form: `type` covers every bound-graph op (ids
/// 0..type.size()-1, moves appended after the first `num_original_ops`
/// entries). The BoundDfg overload forwards here; the incremental
/// evaluator's flat scratch graphs use it directly.
[[nodiscard]] QualityU compute_quality_u(std::span<const OpType> type,
                                         int num_original_ops,
                                         const Datapath& dp,
                                         const Schedule& sched);

/// Computes Q_M for a schedule of `bound`.
[[nodiscard]] QualityM compute_quality_m(const Schedule& sched);

}  // namespace cvb
