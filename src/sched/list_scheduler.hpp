// Cluster- and bus-aware resource-constrained list scheduler.
//
// This is the scheduler the paper uses to *evaluate* bindings (Section
// 3.2: "we use a list scheduling algorithm for quality estimation").
// Given a bound DFG — regular operations placed on clusters, moves on
// the bus — it produces a legal schedule respecting:
//  * data dependencies (consumer starts after producer completes);
//  * FU capacity: at most N(c,t) type-t operations of cluster c in any
//    dii(t)-cycle issue window;
//  * bus capacity: at most N(BUS) moves in any dii(BUS)-cycle window.
//
// Ready operations are ranked by (ALAP, mobility, -consumer count, id),
// the same lexicographic priority the binder uses for its binding
// order, computed on the *bound* graph.
#pragma once

#include <cstdint>

#include "bind/bound_dfg.hpp"
#include "machine/datapath.hpp"
#include "sched/occupancy.hpp"
#include "sched/schedule.hpp"

namespace cvb {

class Tracer;

/// Scheduler accuracy knobs.
struct ListSchedulerOptions {
  /// Treat the bus as having unlimited capacity (moves still take
  /// lat(move) cycles). This is the "fast approximate scheduler"
  /// regime Desoli's PCC baseline uses inside its improvement loop;
  /// the paper's own algorithms always schedule exactly.
  bool unbounded_bus = false;
  /// Resource guard: abort with cvb::ResourceLimitError once the
  /// scheduler has visited this many ready-candidate steps (0 =
  /// unlimited). Bounds worst-case scheduling work on adversarial
  /// inputs; the service classifies the overrun as a poison fault.
  /// Does not affect results when it does not fire, so it is excluded
  /// from the EvalEngine cache signature.
  long long step_budget = 0;
  /// Span recorder for this invocation ("sched.list" spans with
  /// latency/moves/steps attributes). Null = tracing off. Like
  /// step_budget, tracing never changes results and is excluded from
  /// the EvalEngine cache signature.
  Tracer* tracer = nullptr;
  /// Parent span id for sched.list spans when the scheduler runs on a
  /// different thread than the logical parent (EvalEngine pool tasks);
  /// 0 = use the calling thread's innermost open span.
  std::uint64_t trace_parent = 0;
};

/// Reusable scratch buffers for the scheduler (and its priority
/// computation), laid out structure-of-arrays so the inner loop walks
/// flat fixed-width integer arrays. One arena serves any number of
/// sequential list_schedule calls on one thread; after the first call
/// on graphs of similar size, scheduling performs no heap allocation
/// (`total_grows()` is the hook the reuse tests assert on). The
/// incremental candidate evaluator (bind/delta_eval.hpp) keeps one
/// arena per worker so B-ITER's per-candidate evaluations stop
/// allocating entirely. Contents are scratch only — never read results
/// out of an arena.
struct SchedArena {
  // SoA op descriptors, filled once per schedule from the graph view:
  // latency, resource pool (cluster x FU class, bus last), static
  // indegree.
  std::vector<std::int32_t> op_latency;
  std::vector<std::int32_t> op_pool;
  std::vector<std::int32_t> indegree;
  // CSR copy of the bound graph's successor edges. The source graphs
  // keep one heap vector per op, so every edge sweep there is pointer
  // chasing; the core copies successors once per schedule into these
  // contiguous arrays and every later sweep (topo, ASAP relaxation,
  // tails, the cycle loop's wakeups) streams flat int32 data.
  // Predecessor lists are never copied: ASAP is computed by relaxing
  // successors in topological order.
  std::vector<std::int32_t> succ_offset;  // n + 1 entries
  std::vector<OpId> succ_data;
  // Priority ranks: the candidate order (ALAP, mobility, -consumers,
  // id) is a strict total order over ops, so it is materialized once
  // per schedule as a permutation instead of re-sorting a ready vector
  // every cycle. When every field fits 16 bits (graphs up to 65535 ops
  // and critical paths up to 65535 cycles — everything real) the order
  // is packed into one uint64 key per op and sorted with branch-free
  // integer compares; `keys` is that scratch.
  std::vector<std::uint64_t> keys;
  std::vector<std::int32_t> rank_of;   // op -> rank
  std::vector<OpId> op_of_rank;        // rank -> op
  // compute_priorities scratch (graph/analysis equivalents). `topo`
  // doubles as the Kahn work queue (appended sources, head scan).
  std::vector<OpId> topo;
  std::vector<std::int32_t> topo_pending;
  std::vector<std::int32_t> asap;
  std::vector<std::int32_t> tail;
  // Scheduling-loop scratch. The ready set is a bitmask over ranks
  // (bit r set = the op with priority rank r is dependency-free and
  // unscheduled): insertion is a branchless OR, and scanning words in
  // ascending rank order reproduces the sorted ready vector exactly.
  std::vector<std::int32_t> pending;
  std::vector<std::int32_t> ready_at;
  std::vector<std::uint64_t> ready_words;
  std::vector<OpId> newly_ready;
  // Bitmask occupancy rows, one table per resource pool (see
  // sched/occupancy.hpp); buffers persist across calls.
  std::vector<BitOccupancy> pools;

  /// Buffer growths across all arena-owned storage (including the
  /// occupancy tables): stable once the arena is warmed up on the
  /// workload's largest graph. Test hook for the zero-steady-state-
  /// allocation contract.
  std::uint64_t grows = 0;
  [[nodiscard]] std::uint64_t total_grows() const {
    std::uint64_t total = grows;
    for (const BitOccupancy& pool : pools) {
      total += pool.grow_count();
    }
    return total;
  }
};

/// Schedules `bound` on `dp`. Always succeeds for a valid bound DFG
/// (every cluster that has operations placed on it can execute them;
/// build_bound_dfg guarantees this). Throws std::logic_error if the
/// graph is malformed (cycle, or an op placed on an unsupported
/// cluster) and cvb::ResourceLimitError when `step_budget` is
/// exhausted.
[[nodiscard]] Schedule list_schedule(const BoundDfg& bound, const Datapath& dp,
                                     const ListSchedulerOptions& options = {});

/// Same, reusing `arena`'s buffers instead of allocating. Results are
/// bit-identical to the arena-free overload; only allocation behaviour
/// differs.
[[nodiscard]] Schedule list_schedule(const BoundDfg& bound, const Datapath& dp,
                                     const ListSchedulerOptions& options,
                                     SchedArena& arena);

/// Fully allocation-free form: schedules into `out`, reusing both the
/// arena and the schedule's own buffers. After one warm-up call on a
/// graph of the workload's largest size, repeated invocations perform
/// no heap allocation at all (bench/sched_core's steady-state path).
void list_schedule_into(const BoundDfg& bound, const Datapath& dp,
                        const ListSchedulerOptions& options, SchedArena& arena,
                        Schedule& out);

}  // namespace cvb
