// Cluster- and bus-aware resource-constrained list scheduler.
//
// This is the scheduler the paper uses to *evaluate* bindings (Section
// 3.2: "we use a list scheduling algorithm for quality estimation").
// Given a bound DFG — regular operations placed on clusters, moves on
// the bus — it produces a legal schedule respecting:
//  * data dependencies (consumer starts after producer completes);
//  * FU capacity: at most N(c,t) type-t operations of cluster c in any
//    dii(t)-cycle issue window;
//  * bus capacity: at most N(BUS) moves in any dii(BUS)-cycle window.
//
// Ready operations are ranked by (ALAP, mobility, -consumer count, id),
// the same lexicographic priority the binder uses for its binding
// order, computed on the *bound* graph.
#pragma once

#include <cstdint>

#include "bind/bound_dfg.hpp"
#include "machine/datapath.hpp"
#include "sched/schedule.hpp"

namespace cvb {

class Tracer;

/// Scheduler accuracy knobs.
struct ListSchedulerOptions {
  /// Treat the bus as having unlimited capacity (moves still take
  /// lat(move) cycles). This is the "fast approximate scheduler"
  /// regime Desoli's PCC baseline uses inside its improvement loop;
  /// the paper's own algorithms always schedule exactly.
  bool unbounded_bus = false;
  /// Resource guard: abort with cvb::ResourceLimitError once the
  /// scheduler has visited this many ready-candidate steps (0 =
  /// unlimited). Bounds worst-case scheduling work on adversarial
  /// inputs; the service classifies the overrun as a poison fault.
  /// Does not affect results when it does not fire, so it is excluded
  /// from the EvalEngine cache signature.
  long long step_budget = 0;
  /// Span recorder for this invocation ("sched.list" spans with
  /// latency/moves/steps attributes). Null = tracing off. Like
  /// step_budget, tracing never changes results and is excluded from
  /// the EvalEngine cache signature.
  Tracer* tracer = nullptr;
  /// Parent span id for sched.list spans when the scheduler runs on a
  /// different thread than the logical parent (EvalEngine pool tasks);
  /// 0 = use the calling thread's innermost open span.
  std::uint64_t trace_parent = 0;
};

/// Reusable scratch buffers for the scheduler (and its priority
/// computation). One arena serves any number of sequential
/// list_schedule calls on one thread; after the first call on graphs of
/// similar size, scheduling performs no heap allocation. The incremental
/// candidate evaluator (bind/delta_eval.hpp) keeps one arena per worker
/// so B-ITER's per-candidate evaluations stop allocating entirely.
/// Contents are scratch only — never read results out of an arena.
struct SchedArena {
  // compute_priorities scratch (graph/analysis equivalents).
  std::vector<int> topo_pending;
  std::vector<OpId> topo;
  std::vector<OpId> frontier;
  std::vector<int> asap;
  std::vector<int> tail;
  std::vector<int> alap;
  std::vector<int> mobility;
  std::vector<int> consumers;
  // Scheduling-loop scratch.
  std::vector<int> pending;
  std::vector<int> ready_at;
  std::vector<OpId> ready;
  std::vector<OpId> newly_ready;
  std::vector<std::vector<int>> pool_issues;  // per resource pool
};

/// Schedules `bound` on `dp`. Always succeeds for a valid bound DFG
/// (every cluster that has operations placed on it can execute them;
/// build_bound_dfg guarantees this). Throws std::logic_error if the
/// graph is malformed (cycle, or an op placed on an unsupported
/// cluster) and cvb::ResourceLimitError when `step_budget` is
/// exhausted.
[[nodiscard]] Schedule list_schedule(const BoundDfg& bound, const Datapath& dp,
                                     const ListSchedulerOptions& options = {});

/// Same, reusing `arena`'s buffers instead of allocating. Results are
/// bit-identical to the arena-free overload; only allocation behaviour
/// differs.
[[nodiscard]] Schedule list_schedule(const BoundDfg& bound, const Datapath& dp,
                                     const ListSchedulerOptions& options,
                                     SchedArena& arena);

}  // namespace cvb
