#include "sched/reg_pressure.hpp"

#include <algorithm>

#include "graph/analysis.hpp"

namespace cvb {

RegPressure compute_reg_pressure(const BoundDfg& bound, const Datapath& dp,
                                 const Schedule& sched) {
  const Dfg& g = bound.graph;

  RegPressure result;
  result.max_live.assign(static_cast<std::size_t>(dp.num_clusters()), 0);

  // live[c][tau] counters; index dp.num_clusters() = centralized view.
  const int horizon = sched.latency + 1;
  std::vector<std::vector<int>> live(
      static_cast<std::size_t>(dp.num_clusters()) + 1,
      std::vector<int>(static_cast<std::size_t>(horizon), 0));

  for (OpId v = 0; v < g.num_ops(); ++v) {
    // Home register file of v's result.
    ClusterId home;
    if (bound.is_move_op(v)) {
      home = bound.move_dest[static_cast<std::size_t>(
          v - bound.num_original_ops())];
    } else {
      home = bound.place[static_cast<std::size_t>(v)];
    }
    const int birth =
        sched.start[static_cast<std::size_t>(v)] + bound_op_latency(bound, dp, v);
    int death = sched.latency;  // outputs stay live to the end
    if (!g.succs(v).empty()) {
      death = 0;
      for (const OpId u : g.succs(v)) {
        death = std::max(death, sched.start[static_cast<std::size_t>(u)]);
      }
    }
    for (int tau = birth; tau <= death && tau < horizon; ++tau) {
      ++live[static_cast<std::size_t>(home)][static_cast<std::size_t>(tau)];
      ++live[static_cast<std::size_t>(dp.num_clusters())]
            [static_cast<std::size_t>(tau)];
    }
  }

  for (ClusterId c = 0; c < dp.num_clusters(); ++c) {
    const auto& profile = live[static_cast<std::size_t>(c)];
    result.max_live[static_cast<std::size_t>(c)] =
        profile.empty() ? 0 : *std::max_element(profile.begin(), profile.end());
  }
  const auto& central = live[static_cast<std::size_t>(dp.num_clusters())];
  result.centralized_max_live =
      central.empty() ? 0 : *std::max_element(central.begin(), central.end());
  return result;
}

}  // namespace cvb
