// Exact (optimal) resource-constrained scheduler for small bound DFGs,
// by depth-first branch and bound over start times.
//
// Used to measure how close the production list scheduler gets to the
// true optimum at the *schedule* level (the exhaustive binder already
// covers the binding level): tests assert the list scheduler matches
// the optimum on a corpus of small graphs, and the optimality bench
// reports the gap distribution.
//
// Search: operations are assigned start times in a fixed topological
// order; for each op every feasible start from its dependence-earliest
// cycle up to the current incumbent's implied deadline is tried.
// Pruning: (start + longest remaining path) >= incumbent. Complexity is
// exponential; the node budget caps runaways and a std::invalid_argument
// reports graphs that are too large.
#pragma once

#include <cstdint>

#include "bind/bound_dfg.hpp"
#include "machine/datapath.hpp"
#include "sched/schedule.hpp"

namespace cvb {

/// Search limits.
struct BbSchedulerLimits {
  int max_ops = 24;                     ///< reject larger graphs
  std::uint64_t max_nodes = 20'000'000;  ///< search-tree node budget
};

/// Finds a minimum-latency schedule of `bound` on `dp`. Throws
/// std::invalid_argument if the graph exceeds limits.max_ops, or
/// std::runtime_error if the node budget is exhausted before the search
/// completes (the incumbent would be unproven).
[[nodiscard]] Schedule optimal_schedule(const BoundDfg& bound,
                                        const Datapath& dp,
                                        const BbSchedulerLimits& limits = {});

}  // namespace cvb
