// Recovery machinery for the binding service: retry with backoff,
// quarantine, and graceful degradation.
//
// The paper's driver is already "anytime" — a deadline returns the best
// complete binding found so far. This layer extends the same
// degraded-but-correct philosophy to *failures*:
//
//  * Transient faults (FaultClass::kTransient) are retried up to
//    `max_attempts` times with exponential backoff + decorrelated
//    jitter, the standard fleet-safe retry shape (each delay is drawn
//    uniformly from [base, 3 * previous], capped) — deterministic here
//    because the jitter RNG is seeded from the job key.
//  * Poison and fatal faults are never retried. Every terminal failure
//    of a job key is counted; once a key crosses
//    `quarantine_threshold`, further submissions of that key skip the
//    real binder entirely and take the graceful-degradation path: a
//    trivial single-cluster binding (PCC's "always return something
//    legal" contract, applied service-wide), scheduled, verified, and
//    returned with BindStatus::kDegraded.
//  * A watchdog (owned by Service, configured here) detects jobs whose
//    execution exceeds `hang_budget_ms`, fires their CancelToken, and —
//    past a grace period — abandons the worker, resolves the job
//    kInternalError, and recycles the worker thread.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "api/api.hpp"
#include "bind/binding.hpp"
#include "bind/eval_engine.hpp"
#include "graph/dfg.hpp"
#include "machine/datapath.hpp"
#include "support/fault.hpp"
#include "support/metrics.hpp"
#include "support/rng.hpp"

namespace cvb {

class Tracer;

/// Recovery policy knobs (part of ServiceOptions).
struct ResilienceOptions {
  /// Total tries per job (1 = no retry). Only transient failures are
  /// retried, and never once the job's cancel token has fired.
  int max_attempts = 3;
  /// Decorrelated-jitter backoff: delay_i ~ uniform(base, 3 * delay_
  /// {i-1}), capped. Milliseconds.
  double backoff_base_ms = 1.0;
  double backoff_cap_ms = 50.0;
  /// Terminal failures of one job key before it is quarantined onto the
  /// degraded path. 0 disables quarantine.
  int quarantine_threshold = 3;
  /// Watchdog: a running job older than this is cancelled (0 = watchdog
  /// off).
  double hang_budget_ms = 0.0;
  /// Watchdog poll period.
  double watchdog_poll_ms = 2.0;
  /// Extra time past the hang budget before the worker is abandoned and
  /// recycled; 0 = 3 * hang_budget_ms.
  double abandon_grace_ms = 0.0;
  /// Scheduler step budget applied to jobs that do not set their own
  /// (0 = unlimited).
  long long step_budget = 0;
  /// Seed of the (deterministic) backoff jitter stream.
  std::uint64_t jitter_seed = 0x7e57ab1eULL;
};

/// Failure history per job key. Thread-safe; shared by all workers of
/// one Service.
class Quarantine {
 public:
  /// Records one terminal (non-retried) failure of `key`. Returns true
  /// exactly when this failure crosses `threshold` — the moment the key
  /// becomes quarantined (threshold <= 0 never quarantines).
  bool record_failure(std::uint64_t key, int threshold);

  [[nodiscard]] bool is_quarantined(std::uint64_t key, int threshold) const;
  [[nodiscard]] int failures(std::uint64_t key) const;
  [[nodiscard]] std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, int> failures_;
};

/// The key failures are aggregated under: a hash of the job's DFG
/// structure, datapath, algorithm, and effort — the inputs that
/// determine whether the binder fails deterministically. Ids and
/// deadlines are deliberately excluded so resubmissions of the same
/// poison workload share one quarantine entry.
[[nodiscard]] std::uint64_t quarantine_key(const BindJob& job);

/// One decorrelated-jitter delay: uniform in [base_ms, 3 * prev_ms],
/// capped at cap_ms. `prev_ms` should start at base_ms.
[[nodiscard]] double decorrelated_jitter_ms(double base_ms, double cap_ms,
                                            double prev_ms, Rng& rng);

/// The graceful-degradation binding: every operation on one cluster
/// that supports all operation types present in `dfg` (zero moves —
/// the communication-free fallback the paper's own cost function
/// favours at profile latency infinity); when no single cluster
/// suffices, each operation goes to the lowest-numbered cluster
/// supporting it. Throws std::invalid_argument when some operation is
/// supported nowhere.
[[nodiscard]] Binding make_degraded_binding(const Dfg& dfg,
                                            const Datapath& dp);

/// Runs the degraded path for `job`: trivial binding, exact schedule,
/// verification. Returns BindStatus::kDegraded on success (binding /
/// latency / moves filled) and a typed error outcome when even the
/// trivial binding cannot be produced.
[[nodiscard]] BindOutcome run_degraded_job(const BindJob& job);

/// The resilient execution wrapper the service workers run: quarantine
/// short-circuit, attempt loop with retry-on-transient, and failure
/// bookkeeping. `quarantine` and `metrics` may be null (both are then
/// skipped — the bare retry loop remains); `tracer` records
/// service.attempt / service.backoff / service.degraded spans when
/// set.
[[nodiscard]] BindOutcome run_bind_job_resilient(
    const BindJob& job, EvalEngine& engine, const CancelToken& cancel,
    const ResilienceOptions& options, Quarantine* quarantine,
    MetricsRegistry* metrics, Tracer* tracer = nullptr);

}  // namespace cvb
