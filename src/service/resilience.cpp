#include "service/resilience.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "bind/driver.hpp"
#include "sched/verifier.hpp"
#include "service/service.hpp"
#include "support/trace.hpp"

namespace cvb {

namespace {

std::uint64_t fnv1a_text(std::uint64_t hash, std::string_view text) {
  for (char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

/// Sleeps `ms`, waking every millisecond to honour cancellation.
void interruptible_sleep_ms(double ms, const CancelToken& cancel) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double, std::milli>(ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (cancel.stop_requested()) {
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

}  // namespace

bool Quarantine::record_failure(std::uint64_t key, int threshold) {
  if (threshold <= 0) {
    return false;
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  const int count = ++failures_[key];
  return count == threshold;
}

bool Quarantine::is_quarantined(std::uint64_t key, int threshold) const {
  if (threshold <= 0) {
    return false;
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = failures_.find(key);
  return it != failures_.end() && it->second >= threshold;
}

int Quarantine::failures(std::uint64_t key) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = failures_.find(key);
  return it == failures_.end() ? 0 : it->second;
}

std::size_t Quarantine::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return failures_.size();
}

std::uint64_t quarantine_key(const BindJob& job) {
  std::uint64_t key =
      EvalEngine::context_signature(job.dfg, job.datapath, {});
  const auto mix = [&key](const StrategySpec& spec) {
    key = fnv1a_text(key, to_string(spec.kind));
    key ^= static_cast<std::uint64_t>(spec.effort) + 0x9e3779b97f4a7c15ULL;
    key = fnv1a_text(key * 1099511628211ULL, "seed");
    key ^= spec.seed;
  };
  if (job.portfolio.empty()) {
    mix(job.strategy);
  } else {
    // A portfolio job's failure identity is its whole racing set.
    for (const StrategySpec& spec : job.portfolio) {
      mix(spec);
    }
  }
  return key;
}

double decorrelated_jitter_ms(double base_ms, double cap_ms, double prev_ms,
                              Rng& rng) {
  const double base = std::max(0.0, base_ms);
  const double hi = std::max(base, 3.0 * prev_ms);
  const double delay = base + rng.uniform01() * (hi - base);
  return std::min(std::max(0.0, cap_ms), delay);
}

Binding make_degraded_binding(const Dfg& dfg, const Datapath& dp) {
  // Operation types the binding must cover.
  std::vector<OpType> present;
  for (OpId v = 0; v < dfg.num_ops(); ++v) {
    if (std::find(present.begin(), present.end(), dfg.type(v)) ==
        present.end()) {
      present.push_back(dfg.type(v));
    }
  }
  // Preferred shape: everything on one cluster — zero inter-cluster
  // moves, trivially schedulable.
  for (ClusterId c = 0; c < dp.num_clusters(); ++c) {
    const bool covers = std::all_of(
        present.begin(), present.end(),
        [&](OpType type) { return dp.supports(c, type); });
    if (covers) {
      return Binding(static_cast<std::size_t>(dfg.num_ops()), c);
    }
  }
  // Heterogeneous datapath: no single cluster executes every type.
  // Place each op on the lowest-numbered cluster that supports it.
  Binding binding(static_cast<std::size_t>(dfg.num_ops()), kNoCluster);
  for (OpId v = 0; v < dfg.num_ops(); ++v) {
    for (ClusterId c = 0; c < dp.num_clusters(); ++c) {
      if (dp.supports(c, dfg.type(v))) {
        binding[static_cast<std::size_t>(v)] = c;
        break;
      }
    }
    if (binding[static_cast<std::size_t>(v)] == kNoCluster) {
      throw std::invalid_argument(
          "make_degraded_binding: no cluster supports op " + dfg.name(v));
    }
  }
  return binding;
}

BindOutcome run_degraded_job(const BindJob& job) {
  BindOutcome outcome;
  outcome.id = job.id;
  try {
    // Deliberately no step budget here: the trivial binding is the last
    // line of defence and must not be failed by the guard meant for the
    // expensive search paths.
    BindResult result = evaluate_binding(
        job.dfg, job.datapath, make_degraded_binding(job.dfg, job.datapath));
    if (const std::string verr = verify_schedule(
            result.bound, job.datapath, result.schedule);
        !verr.empty()) {
      outcome.status = BindStatus::kInternalError;
      outcome.fault = FaultClass::kFatal;
      outcome.error = "degraded binding failed verification: " + verr;
      return outcome;
    }
    outcome.binding = std::move(result.binding);
    outcome.latency = result.schedule.latency;
    outcome.moves = result.schedule.num_moves;
    outcome.status = BindStatus::kDegraded;
  } catch (const std::invalid_argument& e) {
    outcome.status = BindStatus::kInvalidRequest;
    outcome.fault = FaultClass::kPoison;
    outcome.error = e.what();
  } catch (const std::exception& e) {
    outcome.status = BindStatus::kInternalError;
    outcome.fault = FaultClass::kFatal;
    outcome.error = std::string("degraded path failed: ") + e.what();
  }
  return outcome;
}

BindOutcome run_bind_job_resilient(const BindJob& job, EvalEngine& engine,
                                   const CancelToken& cancel,
                                   const ResilienceOptions& options,
                                   Quarantine* quarantine,
                                   MetricsRegistry* metrics, Tracer* tracer) {
  const std::uint64_t key = quarantine_key(job);
  if (quarantine != nullptr &&
      quarantine->is_quarantined(key, options.quarantine_threshold)) {
    if (metrics != nullptr) {
      metrics->counter("jobs_quarantine_hits").inc();
    }
    ScopedSpan degraded(tracer, "service.degraded");
    BindOutcome outcome = run_degraded_job(job);
    if (outcome.status == BindStatus::kDegraded) {
      outcome.error = "job key quarantined after " +
                      std::to_string(quarantine->failures(key)) +
                      " failures; degraded single-cluster fallback";
    }
    return outcome;
  }

  BindJob effective = job;
  if (effective.step_budget == 0) {
    effective.step_budget = options.step_budget;
  }
  RequestContext ctx;
  ctx.cancel = cancel;
  ctx.tracer = tracer;

  Rng rng(options.jitter_seed ^ key);
  double prev_delay_ms = options.backoff_base_ms;
  const int max_attempts = std::max(1, options.max_attempts);
  BindOutcome outcome;
  for (int attempt = 1;; ++attempt) {
    {
      ScopedSpan attempt_span(tracer, "service.attempt");
      attempt_span.attr("attempt", attempt);
      try {
        CVB_INJECT("service.worker");
        CVB_INJECT("service.hang");
        outcome = run_bind_request(effective, ctx, &engine);
      } catch (const FaultInjectedError& e) {
        outcome = BindOutcome{};
        outcome.id = job.id;
        outcome.status = BindStatus::kInternalError;
        outcome.fault = e.fault_class();
        outcome.error = e.what();
        outcome.injected = true;
      }
    }
    outcome.attempts = attempt;
    const bool failed = outcome.status == BindStatus::kInternalError ||
                        outcome.status == BindStatus::kInvalidRequest;
    if (!failed) {
      return outcome;
    }
    const bool retriable = outcome.fault == FaultClass::kTransient &&
                           attempt < max_attempts && !cancel.stop_requested();
    if (!retriable) {
      break;
    }
    if (metrics != nullptr) {
      metrics->counter("jobs_retried").inc();
    }
    const double delay_ms = decorrelated_jitter_ms(
        options.backoff_base_ms, options.backoff_cap_ms, prev_delay_ms, rng);
    prev_delay_ms = delay_ms;
    ScopedSpan backoff(tracer, "service.backoff");
    backoff.attr("delay_ms", delay_ms);
    interruptible_sleep_ms(delay_ms, cancel);
  }

  if (quarantine != nullptr &&
      quarantine->record_failure(key, options.quarantine_threshold)) {
    if (metrics != nullptr) {
      metrics->counter("jobs_quarantined").inc();
    }
  }
  return outcome;
}

}  // namespace cvb
