// Wire protocol of the binding service front-end (`cvserve`):
// newline-delimited JSON, one request object per line in, one response
// object per line out. Documented for users in FORMATS.md ("Service
// protocol"); this header is the single implementation both the tool
// and the tests use.
//
// Job request:
//   {"id":"j1","kernel":"EWF","datapath":"[2,1|1,1]","buses":2,
//    "algorithm":"b-iter","effort":"fast","deadline_ms":50}
// or with an inline graph instead of a built-in kernel name:
//   {"id":"j2","dfg":"dfg t\nop 0 add a\n...","datapath":"[1,1|1,1]"}
// Control requests:
//   {"cmd":"metrics"}   -> one metrics-snapshot response line
//   {"cmd":"trace"}     -> one Chrome trace_event JSON line (drains the
//                          tracer; invalid_request when tracing is off)
//   {"cmd":"quit"}      -> drain and close the stream
//   {"cmd":"snapshot","path":"..."} -> persist the eval cache to a
//                          versioned snapshot file (FORMATS.md
//                          "Eval-cache snapshot file"); responds
//                          {"status":"ok","cmd":"snapshot","entries":N}
//   {"cmd":"shutdown"}  -> drain the whole server (every connection in
//                          socket mode), then exit; same as quit on a
//                          plain stdio stream
//
// Job response:
//   {"id":"j1","status":"ok","latency":18,"moves":4,
//    "binding":[0,1,...],"queue_ms":0.1,"run_ms":42.0,
//    "timings":{"queue_ms":...,"run_ms":...,"eval_ms":...,
//               "eval_candidates":...}}
// Non-ok statuses (see service/status.hpp) carry "error";
// "deadline_exceeded" still carries the anytime binding fields.
#pragma once

#include <string>

#include "bind/eval_engine.hpp"
#include "service/service.hpp"
#include "support/json.hpp"

namespace cvb {

/// One parsed request line.
struct ServeRequest {
  enum class Kind { kJob, kMetrics, kTrace, kQuit, kSnapshot, kShutdown };
  Kind kind = Kind::kJob;
  BindJob job;       // meaningful when kind == kJob
  std::string path;  // meaningful when kind == kSnapshot
};

/// Parses one request line. Throws std::invalid_argument (with a
/// message suitable for an error response) on malformed JSON, unknown
/// fields of the wrong type, unknown kernels, or bad datapath specs.
[[nodiscard]] ServeRequest parse_serve_request(const std::string& line);

/// Serializes one outcome as a single-line JSON object (no trailing
/// newline). Binding fields are included only when present.
[[nodiscard]] JsonValue outcome_to_json(const BindOutcome& outcome);

/// An error response for a line that could not even be parsed:
/// {"status":"invalid_request","fault_class":...,"error":...} (plus
/// "id" when known). The fault class tells clients whether resubmitting
/// the same line could ever help (it cannot for the default, poison).
[[nodiscard]] JsonValue invalid_request_json(
    const std::string& error, const std::string& id = "",
    FaultClass fault_class = FaultClass::kPoison);

/// Best-effort extraction of the "id" field from a (possibly
/// malformed) request line, so error responses can still echo the
/// request id whenever the JSON parses that far. Never throws; returns
/// "" when no id is recoverable.
[[nodiscard]] std::string extract_request_id(const std::string& line) noexcept;

}  // namespace cvb
