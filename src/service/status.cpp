#include "service/status.hpp"

#include <stdexcept>

namespace cvb {

const char* to_string(BindStatus status) {
  switch (status) {
    case BindStatus::kOk:
      return "ok";
    case BindStatus::kDeadlineExceeded:
      return "deadline_exceeded";
    case BindStatus::kCancelled:
      return "cancelled";
    case BindStatus::kShed:
      return "shed";
    case BindStatus::kInvalidRequest:
      return "invalid_request";
    case BindStatus::kInternalError:
      return "internal_error";
    case BindStatus::kDegraded:
      return "degraded";
  }
  return "internal_error";
}

BindStatus bind_status_from_string(std::string_view name) {
  for (const BindStatus status :
       {BindStatus::kOk, BindStatus::kDeadlineExceeded, BindStatus::kCancelled,
        BindStatus::kShed, BindStatus::kInvalidRequest,
        BindStatus::kInternalError, BindStatus::kDegraded}) {
    if (name == to_string(status)) {
      return status;
    }
  }
  throw std::invalid_argument("unknown bind status '" + std::string(name) +
                              "'");
}

int exit_code_for(BindStatus status) {
  switch (status) {
    case BindStatus::kOk:
      return 0;
    case BindStatus::kInvalidRequest:
      return 1;
    case BindStatus::kInternalError:
      return 2;
    case BindStatus::kDeadlineExceeded:
      return 3;
    case BindStatus::kCancelled:
      return 4;
    case BindStatus::kShed:
      return 5;
    case BindStatus::kDegraded:
      return 6;
  }
  return 2;
}

bool has_result(BindStatus status) {
  return status == BindStatus::kOk ||
         status == BindStatus::kDeadlineExceeded ||
         status == BindStatus::kDegraded;
}

const char* to_string(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kBIter:
      return "b-iter";
    case StrategyKind::kBInit:
      return "b-init";
    case StrategyKind::kPcc:
      return "pcc";
    case StrategyKind::kSa:
      return "sa";
    case StrategyKind::kMinCut:
      return "mincut";
    case StrategyKind::kExhaustive:
      return "exhaustive";
  }
  return "b-iter";
}

const std::vector<StrategyKind>& all_strategy_kinds() {
  static const std::vector<StrategyKind> kinds = {
      StrategyKind::kBIter, StrategyKind::kBInit,     StrategyKind::kPcc,
      StrategyKind::kSa,    StrategyKind::kMinCut,    StrategyKind::kExhaustive,
  };
  return kinds;
}

const std::string& strategy_name_list() {
  static const std::string names = [] {
    std::string out;
    for (const StrategyKind kind : all_strategy_kinds()) {
      if (!out.empty()) {
        out += ", ";
      }
      out += to_string(kind);
    }
    return out;
  }();
  return names;
}

StrategyKind strategy_kind_from_string(std::string_view name) {
  for (const StrategyKind kind : all_strategy_kinds()) {
    if (name == to_string(kind)) {
      return kind;
    }
  }
  throw std::invalid_argument("unknown strategy '" + std::string(name) +
                              "' (valid: " + strategy_name_list() + ")");
}

bool strategy_is_anytime(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kBIter:
    case StrategyKind::kBInit:
    case StrategyKind::kPcc:
      return true;
    case StrategyKind::kSa:
    case StrategyKind::kMinCut:
    case StrategyKind::kExhaustive:
      return false;
  }
  return false;
}

bool strategy_is_restartable(StrategyKind kind) {
  return kind == StrategyKind::kBIter;
}

}  // namespace cvb
