#include "service/status.hpp"

#include <stdexcept>

namespace cvb {

const char* to_string(BindStatus status) {
  switch (status) {
    case BindStatus::kOk:
      return "ok";
    case BindStatus::kDeadlineExceeded:
      return "deadline_exceeded";
    case BindStatus::kCancelled:
      return "cancelled";
    case BindStatus::kShed:
      return "shed";
    case BindStatus::kInvalidRequest:
      return "invalid_request";
    case BindStatus::kInternalError:
      return "internal_error";
    case BindStatus::kDegraded:
      return "degraded";
  }
  return "internal_error";
}

BindStatus bind_status_from_string(std::string_view name) {
  for (const BindStatus status :
       {BindStatus::kOk, BindStatus::kDeadlineExceeded, BindStatus::kCancelled,
        BindStatus::kShed, BindStatus::kInvalidRequest,
        BindStatus::kInternalError, BindStatus::kDegraded}) {
    if (name == to_string(status)) {
      return status;
    }
  }
  throw std::invalid_argument("unknown bind status '" + std::string(name) +
                              "'");
}

int exit_code_for(BindStatus status) {
  switch (status) {
    case BindStatus::kOk:
      return 0;
    case BindStatus::kInvalidRequest:
      return 1;
    case BindStatus::kInternalError:
      return 2;
    case BindStatus::kDeadlineExceeded:
      return 3;
    case BindStatus::kCancelled:
      return 4;
    case BindStatus::kShed:
      return 5;
    case BindStatus::kDegraded:
      return 6;
  }
  return 2;
}

bool has_result(BindStatus status) {
  return status == BindStatus::kOk ||
         status == BindStatus::kDeadlineExceeded ||
         status == BindStatus::kDegraded;
}

}  // namespace cvb
