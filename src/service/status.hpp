// Typed completion status shared by the binding service and the
// `cvbind` front-end, so callers (and shell scripts) can distinguish
// "your input was malformed" from "the binder hit its deadline and
// returned its best-so-far result" without parsing error prose.
#pragma once

#include <string>
#include <string_view>

namespace cvb {

/// How a binding request ended.
enum class BindStatus {
  kOk,                ///< ran to completion
  kDeadlineExceeded,  ///< deadline expired; result is the anytime best-so-far
  kCancelled,         ///< cancelled (explicitly or by service shutdown)
  kShed,              ///< rejected by admission control (queue full)
  kInvalidRequest,    ///< malformed input (parse/validation failure)
  kInternalError,     ///< unexpected failure inside the binder
  kDegraded,          ///< quarantine fallback: valid but trivial binding
};

/// Wire/name form: "ok", "deadline_exceeded", "cancelled", "shed",
/// "invalid_request", "internal_error", "degraded".
[[nodiscard]] const char* to_string(BindStatus status);

/// Inverse of to_string; throws std::invalid_argument on unknown names.
[[nodiscard]] BindStatus bind_status_from_string(std::string_view name);

/// Process exit code for the cvbind front-end: 0 ok, 1 invalid request
/// (parse/usage errors), 2 internal error, 3 deadline exceeded,
/// 4 cancelled, 5 shed, 6 degraded.
[[nodiscard]] int exit_code_for(BindStatus status);

/// True for statuses that still carry a usable (verifier-clean)
/// binding: kOk, kDeadlineExceeded, and kDegraded.
[[nodiscard]] bool has_result(BindStatus status);

}  // namespace cvb
