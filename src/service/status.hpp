// Typed completion status shared by the binding service and the
// `cvbind` front-end, so callers (and shell scripts) can distinguish
// "your input was malformed" from "the binder hit its deadline and
// returned its best-so-far result" without parsing error prose.
//
// StrategyKind lives here too: it is the same kind of wire-name <->
// enum vocabulary, and keeping the one authoritative name table next
// to BindStatus means the NDJSON protocol, the CLIs, and the api
// dispatch all agree on what a strategy is called.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace cvb {

/// How a binding request ended.
enum class BindStatus {
  kOk,                ///< ran to completion
  kDeadlineExceeded,  ///< deadline expired; result is the anytime best-so-far
  kCancelled,         ///< cancelled (explicitly or by service shutdown)
  kShed,              ///< rejected by admission control (queue full)
  kInvalidRequest,    ///< malformed input (parse/validation failure)
  kInternalError,     ///< unexpected failure inside the binder
  kDegraded,          ///< quarantine fallback: valid but trivial binding
};

/// Wire/name form: "ok", "deadline_exceeded", "cancelled", "shed",
/// "invalid_request", "internal_error", "degraded".
[[nodiscard]] const char* to_string(BindStatus status);

/// Inverse of to_string; throws std::invalid_argument on unknown names.
[[nodiscard]] BindStatus bind_status_from_string(std::string_view name);

/// Process exit code for the cvbind front-end: 0 ok, 1 invalid request
/// (parse/usage errors), 2 internal error, 3 deadline exceeded,
/// 4 cancelled, 5 shed, 6 degraded.
[[nodiscard]] int exit_code_for(BindStatus status);

/// True for statuses that still carry a usable (verifier-clean)
/// binding: kOk, kDeadlineExceeded, and kDegraded.
[[nodiscard]] bool has_result(BindStatus status);

/// The typed identity of a binding strategy — the replacement for the
/// stringly `BindRequest::algorithm` field. The paper's algorithms
/// (B-ITER, B-INIT), the PCC related-work binder, and the
/// run-to-completion baselines are all spellable here.
enum class StrategyKind {
  kBIter,       ///< B-INIT sweep + B-ITER improvement (the paper's driver)
  kBInit,       ///< B-INIT sweep only
  kPcc,         ///< partial component clustering baseline
  kSa,          ///< simulated annealing baseline (seeded)
  kMinCut,      ///< min-cut / load-balance baseline
  kExhaustive,  ///< optimal enumeration for tiny DFGs
};

/// Wire/name form: "b-iter", "b-init", "pcc", "sa", "mincut",
/// "exhaustive" — the historical `algorithm` strings, unchanged.
[[nodiscard]] const char* to_string(StrategyKind kind);

/// Inverse of to_string. Throws std::invalid_argument whose message
/// names the full valid set ("unknown strategy 'x' (valid: b-iter,
/// b-init, pcc, sa, mincut, exhaustive)").
[[nodiscard]] StrategyKind strategy_kind_from_string(std::string_view name);

/// Every kind, in enum order (for CLIs/tests that enumerate).
[[nodiscard]] const std::vector<StrategyKind>& all_strategy_kinds();

/// Comma-separated valid-name list, e.g. for usage text.
[[nodiscard]] const std::string& strategy_name_list();

/// True for strategies honouring the anytime cancel contract (polling
/// mid-run and returning a verified best-so-far): b-iter, b-init, pcc.
/// The baselines (sa, mincut, exhaustive) run to completion.
[[nodiscard]] bool strategy_is_anytime(StrategyKind kind);

/// True for strategies that can restart from an incumbent binding and
/// improve it (the portfolio's exchange contract): b-iter only — its
/// B-ITER phase is exactly "improve this binding".
[[nodiscard]] bool strategy_is_restartable(StrategyKind kind);

}  // namespace cvb
