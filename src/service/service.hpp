// cvb::Service — an embeddable asynchronous binding service.
//
// The ROADMAP's deployment model: binding requests (DFG + datapath +
// options) arrive continuously, and the system must bound both memory
// (a full queue sheds work instead of growing) and time (per-job
// deadlines produce an anytime best-so-far answer instead of an
// unbounded search). The service owns a fixed pool of worker threads
// that pop jobs FIFO from a bounded queue and run the existing binding
// drivers (B-ITER / B-INIT / PCC) against one shared EvalEngine, so
// concurrent jobs over the same kernels share the schedule cache.
//
// Production behaviours:
//  * Admission control / backpressure: `queue_capacity` bounds the
//    queue. When full, kReject sheds the *new* job and kShedOldest
//    sheds the oldest *queued* job (head drop) to admit the new one.
//    Either way the shed job's future resolves with BindStatus::kShed —
//    a typed outcome, never a lost or hung future.
//  * Deadlines + cancellation: each job gets a CancelToken, armed with
//    its deadline (measured from *submission*, covering queue wait).
//    The token is threaded into the driver loops (bind/driver.cpp,
//    iterative_improver.cpp, pcc.cpp), which poll it between rounds and
//    return the best binding found so far; the outcome is then tagged
//    kDeadlineExceeded or kCancelled. cancel(id) cancels a queued or
//    running job cooperatively.
//  * Metrics: every lifecycle edge updates a MetricsRegistry (counters
//    jobs_submitted/completed/shed/cancelled/deadline_miss/failed,
//    gauges queue_depth/busy_workers, histograms queue wait and run
//    latency, plus schedule-cache hit statistics at snapshot time).
//
// Every accepted job's promise is fulfilled exactly once; shutdown
// (drain or abort) resolves all in-flight and queued jobs. There is no
// code path that drops a future unresolved — tests/service_test.cpp
// pins this under saturation.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "api/api.hpp"
#include "bind/eval_engine.hpp"
#include "service/resilience.hpp"
#include "service/status.hpp"
#include "support/cancel.hpp"
#include "support/fault.hpp"
#include "support/json.hpp"
#include "support/metrics.hpp"

namespace cvb {

class Tracer;

/// What to do with a new job when the queue is at capacity.
enum class OverflowPolicy {
  kReject,     ///< shed the incoming job
  kShedOldest  ///< shed the oldest queued job, admit the incoming one
};

/// Service configuration.
struct ServiceOptions {
  /// Worker threads executing jobs (>= 1).
  int num_workers = 2;
  /// Maximum queued (not yet running) jobs before overflow handling.
  std::size_t queue_capacity = 64;
  OverflowPolicy overflow = OverflowPolicy::kReject;
  /// Deadline applied to jobs that do not set their own; 0 = none.
  double default_deadline_ms = 0.0;
  /// Shared candidate-evaluation engine configuration. The default
  /// (1 thread) evaluates inline on the worker running the job, which
  /// is the right shape when num_workers already saturates the cores.
  EvalEngineOptions engine;
  /// Recovery policy: retry/backoff, quarantine thresholds, watchdog
  /// hang budget, default scheduler step budget.
  ResilienceOptions resilience;
  /// Racing set applied to jobs that did not explicitly choose a
  /// strategy (cvserve --portfolio/--strategies); empty = jobs keep
  /// their direct default strategy.
  std::vector<StrategySpec> default_portfolio;
  PortfolioPolicy default_portfolio_policy;
  /// Span recorder covering the service's whole lifetime (admission,
  /// queue wait, worker runs, retries, and everything beneath); null =
  /// tracing off. Not owned; must outlive the service.
  Tracer* tracer = nullptr;
};

// The service's job/outcome types are the public api types — BindJob /
// BindOutcome are aliases of cvb::BindRequest / cvb::BindResponse
// declared in api/api.hpp. Jobs use the request's first seven fields;
// queue_ms/run_ms of the response are filled by the worker loop.

/// Asynchronous batched binding service. Thread-safe; construct once,
/// submit from any thread.
class Service {
 public:
  explicit Service(ServiceOptions options = {});

  /// Drains outstanding jobs (equivalent to shutdown(true)).
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Submits a job. Always returns a future that resolves: with the
  /// bound result, a typed shed/cancel outcome, or an error. Never
  /// blocks on a full queue (see OverflowPolicy).
  std::future<BindOutcome> submit(BindJob job);

  /// Callback flavour: `done` runs on the worker thread that finished
  /// the job (or inline on the submitter for shed jobs).
  void submit(BindJob job, std::function<void(BindOutcome)> done);

  /// Requests cooperative cancellation of a queued or running job.
  /// Returns false when no such job is live (unknown, or already done).
  bool cancel(const std::string& id);

  /// Stops the service. drain=true finishes every queued job first;
  /// drain=false resolves queued jobs with kCancelled and interrupts
  /// running jobs' tokens (they complete with their anytime result,
  /// tagged kCancelled). Idempotent.
  void shutdown(bool drain);

  /// Number of jobs waiting in the queue right now.
  [[nodiscard]] std::size_t queue_depth() const;

  /// The shared evaluation engine (for stats inspection).
  [[nodiscard]] const EvalEngine& engine() const { return *engine_; }

  /// Exports the engine's L2 schedule-cache entries for persistence
  /// ({"cmd":"snapshot"} / net::save_cache_snapshot).
  [[nodiscard]] std::vector<CacheExportEntry> snapshot_cache() const {
    return engine_->export_cache();
  }

  /// Seeds the engine's schedule cache from previously exported
  /// entries (--warm-start). Returns how many entries were accepted
  /// (entries failing the engine's key re-verification are skipped).
  std::size_t warm_start(const std::vector<CacheExportEntry>& entries) {
    return engine_->import_cache(entries);
  }

  /// Live metrics registry (counters/gauges/histograms).
  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }

  /// The service's quarantine ledger (for tests and diagnostics).
  [[nodiscard]] const Quarantine& quarantine() const { return quarantine_; }

  /// Consistent JSON snapshot: the metrics registry plus engine cache
  /// statistics ({"service":{...},"eval":{...}}).
  [[nodiscard]] JsonValue metrics_snapshot() const;

  /// Publishes the engine's evaluation/cache counters into the metrics
  /// registry as eval_* counters plus an eval_cache_entries gauge.
  /// Delta-based: each call adds only what accumulated since the last,
  /// so it is safe to call any number of times.
  void publish_eval_metrics();
  void publish_portfolio_metrics(const PortfolioStats& stats);

  /// Prometheus text exposition of the registry with the engine's
  /// eval_* series refreshed first (what scrapers should call, instead
  /// of metrics().prometheus_text() which would miss the eval stats).
  [[nodiscard]] std::string prometheus_text(const std::string& prefix = "cvb_");

 private:
  struct Pending;

  void worker_loop();
  void watchdog_loop();
  void admit(std::shared_ptr<Pending> pending);
  void finish(const std::shared_ptr<Pending>& pending, BindOutcome outcome);

  ServiceOptions options_;
  std::unique_ptr<EvalEngine> engine_;
  MetricsRegistry metrics_;
  Quarantine quarantine_;

  std::mutex eval_published_mutex_;  // guards eval_published_
  EvalStats eval_published_;  // engine stats already pushed to metrics_

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::condition_variable watchdog_cv_;
  std::deque<std::shared_ptr<Pending>> queue_;
  std::vector<std::shared_ptr<Pending>> running_;
  bool stopping_ = false;
  bool watchdog_stop_ = false;
  long long next_auto_id_ = 0;

  /// Worker threads. May grow at runtime: when the watchdog abandons a
  /// hung worker it spawns a replacement here (under mutex_); the
  /// abandoned thread stays in this vector and is joined at shutdown
  /// once its (bounded) hang resolves — never detached, so sanitizer
  /// thread accounting stays clean.
  std::vector<std::thread> workers_;
  std::thread watchdog_;
};

/// Runs one job synchronously with `engine` and `cancel` — the
/// execution core the service workers use, exposed so `cvbind` shares
/// the exact same dispatch, status classification, and anytime
/// semantics. Does not fill queue_ms.
[[nodiscard]] BindOutcome run_bind_job(const BindJob& job, EvalEngine& engine,
                                       const CancelToken& cancel);

}  // namespace cvb
