#include "service/service.hpp"

#include <stdexcept>
#include <utility>

#include "support/stopwatch.hpp"
#include "support/trace.hpp"

namespace cvb {

/// One accepted job and everything needed to resolve it. A Pending
/// lives in exactly one place at a time (queue_, running_, or a local
/// about-to-finish variable), which makes exactly-once promise
/// fulfilment structural in the common paths; the `fulfilled` flag
/// additionally covers the one genuinely concurrent resolver — the
/// watchdog abandoning a job its worker later completes.
struct Service::Pending {
  BindJob job;
  CancelToken cancel;
  std::promise<BindOutcome> promise;
  std::function<void(BindOutcome)> callback;
  Stopwatch submitted;    ///< started at admission; measures queue wait
  Stopwatch run_started;  ///< restarted when a worker picks the job up
  std::atomic<bool> fulfilled{false};       ///< promise resolved
  std::atomic<bool> watchdog_fired{false};  ///< hang budget exceeded
  std::atomic<bool> abandoned{false};       ///< worker given up on
};

BindOutcome run_bind_job(const BindJob& job, EvalEngine& engine,
                         const CancelToken& cancel) {
  // Thin compatibility wrapper: the execution core (dispatch, typed
  // status ladder, re-verification) lives in api/api.cpp.
  RequestContext ctx;
  ctx.cancel = cancel;
  return run_bind_request(job, ctx, &engine);
}

Service::Service(ServiceOptions options) : options_(std::move(options)) {
  if (options_.num_workers < 1) {
    throw std::invalid_argument("Service: num_workers must be >= 1");
  }
  engine_ = std::make_unique<EvalEngine>(options_.engine);
  workers_.reserve(static_cast<std::size_t>(options_.num_workers));
  for (int i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  if (options_.resilience.hang_budget_ms > 0) {
    watchdog_ = std::thread([this] { watchdog_loop(); });
  }
}

Service::~Service() { shutdown(true); }

void Service::finish(const std::shared_ptr<Pending>& pending,
                     BindOutcome outcome) {
  // Exactly-once: the watchdog can abandon a job whose worker later
  // completes it; whichever resolver gets here first wins, the other
  // becomes a no-op.
  if (pending->fulfilled.exchange(true)) {
    return;
  }
  switch (outcome.status) {
    case BindStatus::kOk:
      metrics_.counter("jobs_completed").inc();
      break;
    case BindStatus::kDegraded:
      metrics_.counter("jobs_completed").inc();
      metrics_.counter("jobs_degraded").inc();
      break;
    case BindStatus::kDeadlineExceeded:
      metrics_.counter("jobs_completed").inc();
      metrics_.counter("jobs_deadline_miss").inc();
      break;
    case BindStatus::kCancelled:
      metrics_.counter("jobs_cancelled").inc();
      break;
    case BindStatus::kShed:
      metrics_.counter("jobs_shed").inc();
      break;
    case BindStatus::kInvalidRequest:
    case BindStatus::kInternalError:
      metrics_.counter("jobs_failed").inc();
      break;
  }
  // Latency histograms only cover jobs that actually executed; shed
  // and never-run (shutdown-cancelled) jobs would skew them with zeros.
  if (outcome.run_ms > 0 || has_result(outcome.status)) {
    metrics_.histogram("queue_wait_ms").observe(outcome.queue_ms);
    metrics_.histogram("run_ms").observe(outcome.run_ms);
  }
  pending->promise.set_value(outcome);
  if (pending->callback) {
    pending->callback(std::move(outcome));
  }
}

std::future<BindOutcome> Service::submit(BindJob job) {
  auto pending = std::make_shared<Pending>();
  pending->job = std::move(job);
  std::future<BindOutcome> future = pending->promise.get_future();
  admit(std::move(pending));
  return future;
}

void Service::submit(BindJob job, std::function<void(BindOutcome)> done) {
  auto pending = std::make_shared<Pending>();
  pending->job = std::move(job);
  pending->callback = std::move(done);
  admit(std::move(pending));
}

void Service::admit(std::shared_ptr<Pending> pending) {
  // Jobs that did not explicitly pick a strategy inherit the service's
  // configured default racing set (cvserve --portfolio/--strategies).
  if (!pending->job.strategy_explicit &&
      !options_.default_portfolio.empty()) {
    pending->job.portfolio = options_.default_portfolio;
    pending->job.portfolio_policy = options_.default_portfolio_policy;
  }
  metrics_.counter("jobs_submitted").inc();
  ScopedSpan span(options_.tracer, "service.admit");
  if (span.enabled() && !pending->job.id.empty()) {
    span.attr("id", pending->job.id);
  }
  try {
    CVB_INJECT("service.admit");
  } catch (const FaultInjectedError& e) {
    // Even an injected admission failure resolves the promise with a
    // typed outcome — the no-lost-jobs contract has no exceptions.
    BindOutcome outcome;
    outcome.id = pending->job.id;
    outcome.status = BindStatus::kInternalError;
    outcome.fault = e.fault_class();
    outcome.error = e.what();
    finish(pending, std::move(outcome));
    return;
  }
  std::shared_ptr<Pending> shed;  // resolved outside the lock
  const char* shed_reason = nullptr;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (pending->job.id.empty()) {
      pending->job.id = "job-" + std::to_string(next_auto_id_++);
    }
    const double deadline_ms = pending->job.deadline_ms > 0
                                   ? pending->job.deadline_ms
                                   : options_.default_deadline_ms;
    pending->cancel = deadline_ms > 0 ? CancelToken::after_ms(deadline_ms)
                                      : CancelToken::manual();
    pending->submitted.restart();

    if (stopping_) {
      shed = std::move(pending);
      shed_reason = "service is shutting down";
    } else if (queue_.size() >= options_.queue_capacity) {
      if (options_.overflow == OverflowPolicy::kReject || queue_.empty()) {
        // queue_.empty() only with queue_capacity == 0: there is no
        // older job to drop, so shed-oldest degenerates to reject.
        shed = std::move(pending);
        shed_reason = "queue full (reject policy)";
      } else {
        shed = queue_.front();  // head drop: oldest queued job
        shed_reason = "queue full (shed-oldest policy)";
        queue_.pop_front();
        queue_.push_back(std::move(pending));
      }
    } else {
      queue_.push_back(std::move(pending));
    }
    metrics_.gauge("queue_depth").set(static_cast<long long>(queue_.size()));
  }
  work_cv_.notify_one();
  if (shed != nullptr) {
    BindOutcome outcome;
    outcome.id = shed->job.id;
    outcome.status = BindStatus::kShed;
    outcome.error = shed_reason;
    finish(shed, std::move(outcome));
  }
}

bool Service::cancel(const std::string& id) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const std::shared_ptr<Pending>& pending : queue_) {
    if (pending->job.id == id) {
      pending->cancel.request_cancel();
      return true;
    }
  }
  for (const std::shared_ptr<Pending>& pending : running_) {
    if (pending->job.id == id) {
      pending->cancel.request_cancel();
      return true;
    }
  }
  return false;
}

std::size_t Service::queue_depth() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

JsonValue Service::metrics_snapshot() const {
  JsonValue out = JsonValue::object();
  out.set("service", metrics_.snapshot());
  out.set("eval",
          eval_stats_to_json(engine_->stats(), engine_->num_threads()));
  return out;
}

void Service::publish_eval_metrics() {
  const EvalStats stats = engine_->stats();
  EvalStats delta;
  {
    const std::lock_guard<std::mutex> lock(eval_published_mutex_);
    delta = stats.since(eval_published_);
    eval_published_ = stats;
  }
  const auto publish = [this](const char* name, long long value) {
    if (value > 0) {
      metrics_.counter(name).inc(value);
    }
  };
  publish("eval_candidates", delta.candidates);
  publish("eval_cache_hits", delta.cache_hits);
  publish("eval_l1_hits", delta.l1_hits);
  publish("eval_batch_dedup", delta.batch_dedup);
  publish("eval_cache_misses", delta.cache_misses);
  publish("eval_cache_evictions", delta.cache_evictions);
  publish("eval_cache_collisions", delta.cache_collisions);
  publish("eval_cache_contended", delta.cache_contended);
  metrics_.gauge("eval_cache_entries")
      .set(static_cast<long long>(engine_->cache_size()));
}

void Service::publish_portfolio_metrics(const PortfolioStats& stats) {
  metrics_.counter("portfolio_runs").inc();
  if (stats.exchanges > 0) {
    metrics_.counter("portfolio_exchanges").inc(stats.exchanges);
  }
  metrics_.histogram("portfolio_rounds").observe(stats.rounds);
  for (const StrategyAttribution& at : stats.strategies) {
    // Strategy names become metric-name suffixes; '-' is not legal in
    // a Prometheus metric name.
    std::string name = at.spec.name();
    for (char& c : name) {
      if (c == '-') {
        c = '_';
      }
    }
    if (at.winner) {
      metrics_.counter("portfolio_wins_" + name).inc();
    }
    if (at.restarts > 0) {
      metrics_.counter("portfolio_restarts_" + name).inc(at.restarts);
    }
    if (at.dropped) {
      metrics_.counter("portfolio_dropped_" + name).inc();
    }
    if (at.late) {
      metrics_.counter("portfolio_late_" + name).inc();
    }
  }
}

std::string Service::prometheus_text(const std::string& prefix) {
  publish_eval_metrics();
  return metrics_.prometheus_text(prefix);
}

void Service::worker_loop() {
  while (true) {
    std::shared_ptr<Pending> pending;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping and drained
      }
      pending = queue_.front();
      queue_.pop_front();
      pending->run_started.restart();
      running_.push_back(pending);
      metrics_.gauge("queue_depth").set(static_cast<long long>(queue_.size()));
      metrics_.gauge("busy_workers").add(1);
    }

    const double queue_ms = pending->submitted.elapsed_ms();
    Stopwatch run_watch;
    ScopedSpan job_span(options_.tracer, "service.job");
    if (job_span.enabled()) {
      job_span.attr("id", pending->job.id);
      job_span.attr("strategy", strategy_set_label(pending->job.strategy,
                                                   pending->job.portfolio));
      job_span.attr("queue_ms", queue_ms);
    }
    // Register the job's token so injected cooperative hangs can be
    // rescued by the watchdog firing it.
    FaultInjector::set_thread_cancel(&pending->cancel);
    BindOutcome outcome = run_bind_job_resilient(
        pending->job, *engine_, pending->cancel, options_.resilience,
        &quarantine_, &metrics_, options_.tracer);
    FaultInjector::set_thread_cancel(nullptr);
    outcome.queue_ms = queue_ms;
    outcome.run_ms = run_watch.elapsed_ms();
    if (outcome.portfolio.ran()) {
      publish_portfolio_metrics(outcome.portfolio);
    }
    job_span.finish();
    if (pending->watchdog_fired.load() && outcome.error.empty()) {
      outcome.error = "watchdog: hang budget exceeded";
    }

    bool retired = false;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (pending->abandoned.load()) {
        // The watchdog already removed this job from running_, resolved
        // its promise, fixed the gauges, and spawned a replacement
        // worker — this thread just retires.
        retired = true;
      } else {
        std::erase(running_, pending);
        metrics_.gauge("busy_workers").add(-1);
      }
    }
    if (retired) {
      return;
    }
    finish(pending, std::move(outcome));
    idle_cv_.notify_all();
  }
}

void Service::watchdog_loop() {
  const double budget_ms = options_.resilience.hang_budget_ms;
  const double grace_ms = options_.resilience.abandon_grace_ms > 0
                              ? options_.resilience.abandon_grace_ms
                              : 3 * budget_ms;
  const auto poll = std::chrono::duration<double, std::milli>(
      std::max(0.5, options_.resilience.watchdog_poll_ms));
  while (true) {
    std::vector<std::shared_ptr<Pending>> abandoned;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      watchdog_cv_.wait_for(lock, poll, [this] { return watchdog_stop_; });
      if (watchdog_stop_) {
        return;
      }
      for (const std::shared_ptr<Pending>& pending : running_) {
        const double elapsed = pending->run_started.elapsed_ms();
        if (elapsed <= budget_ms) {
          continue;
        }
        if (!pending->watchdog_fired.exchange(true)) {
          // First line of defence: fire the token; a cooperative hang
          // (or any polling loop) unwinds with its anytime result.
          pending->cancel.request_cancel();
          metrics_.counter("watchdog_fired").inc();
        }
        if (elapsed > budget_ms + grace_ms &&
            !pending->abandoned.exchange(true)) {
          abandoned.push_back(pending);
        }
      }
      for (const std::shared_ptr<Pending>& pending : abandoned) {
        std::erase(running_, pending);
        metrics_.gauge("busy_workers").add(-1);
        metrics_.counter("watchdog_abandoned").inc();
        if (!stopping_) {
          // Recycle capacity: the stuck thread stays in workers_ (it
          // retires itself whenever its hang resolves and is joined at
          // shutdown); a fresh worker takes its slot now.
          workers_.emplace_back([this] { worker_loop(); });
        }
      }
    }
    for (const std::shared_ptr<Pending>& pending : abandoned) {
      if (quarantine_.record_failure(
              quarantine_key(pending->job),
              options_.resilience.quarantine_threshold)) {
        metrics_.counter("jobs_quarantined").inc();
      }
      BindOutcome outcome;
      outcome.id = pending->job.id;
      outcome.status = BindStatus::kInternalError;
      outcome.fault = FaultClass::kTransient;
      outcome.error = "watchdog: job exceeded hang budget (" +
                      std::to_string(budget_ms) + " ms) and grace period; "
                      "worker abandoned";
      finish(pending, std::move(outcome));
      idle_cv_.notify_all();
    }
  }
}

void Service::shutdown(bool drain) {
  std::deque<std::shared_ptr<Pending>> abandoned;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (drain) {
      // Workers empty the queue before we flag stop; running jobs are
      // left to finish naturally (their tokens stay untouched).
      idle_cv_.wait(lock, [this] { return queue_.empty(); });
      stopping_ = true;
    } else {
      stopping_ = true;
      abandoned.swap(queue_);
      for (const std::shared_ptr<Pending>& pending : running_) {
        pending->cancel.request_cancel();
      }
      metrics_.gauge("queue_depth").set(0);
    }
  }
  work_cv_.notify_all();
  for (const std::shared_ptr<Pending>& pending : abandoned) {
    BindOutcome outcome;
    outcome.id = pending->job.id;
    outcome.status = BindStatus::kCancelled;
    outcome.error = "service shut down before the job ran";
    finish(pending, std::move(outcome));
  }
  for (std::thread& worker : workers_) {
    if (worker.joinable()) {
      worker.join();
    }
  }
  // The watchdog outlives the workers: a hung worker may need its token
  // fired to unwind and join at all. Stop it only once they are down.
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    watchdog_stop_ = true;
  }
  watchdog_cv_.notify_all();
  if (watchdog_.joinable()) {
    watchdog_.join();
  }
}

}  // namespace cvb
