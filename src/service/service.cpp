#include "service/service.hpp"

#include <stdexcept>
#include <utility>

#include "pcc/pcc.hpp"
#include "sched/verifier.hpp"
#include "service/protocol.hpp"
#include "support/stopwatch.hpp"

namespace cvb {

/// One accepted job and everything needed to resolve it. A Pending
/// lives in exactly one place at a time (queue_, running_, or a local
/// about-to-finish variable), which makes exactly-once promise
/// fulfilment structural rather than flag-guarded.
struct Service::Pending {
  BindJob job;
  CancelToken cancel;
  std::promise<BindOutcome> promise;
  std::function<void(BindOutcome)> callback;
  Stopwatch submitted;  ///< started at admission; measures queue wait
};

BindOutcome run_bind_job(const BindJob& job, EvalEngine& engine,
                         const CancelToken& cancel) {
  BindOutcome outcome;
  outcome.id = job.id;
  BindResult result;
  try {
    if (job.algorithm == "b-iter" || job.algorithm == "b-init") {
      DriverParams params = driver_params_for(job.effort);
      params.engine = &engine;
      params.cancel = cancel;
      if (job.algorithm == "b-init") {
        params.run_iterative = false;
        result = bind_initial_best(job.dfg, job.datapath, params);
      } else {
        result = bind_full(job.dfg, job.datapath, params);
      }
    } else if (job.algorithm == "pcc") {
      PccParams params;
      params.cancel = cancel;
      result = pcc_binding(job.dfg, job.datapath, params, nullptr, &engine);
    } else {
      outcome.status = BindStatus::kInvalidRequest;
      outcome.error = "unknown algorithm '" + job.algorithm + "'";
      return outcome;
    }
  } catch (const std::invalid_argument& e) {
    outcome.status = BindStatus::kInvalidRequest;
    outcome.error = e.what();
    return outcome;
  } catch (const std::exception& e) {
    outcome.status = BindStatus::kInternalError;
    outcome.error = e.what();
    return outcome;
  }

  // Every result leaving the service is re-verified: a scheduler or
  // cancellation bug degrades to a typed internal error, never to a
  // silently illegal binding.
  if (const std::string verr =
          verify_schedule(result.bound, job.datapath, result.schedule);
      !verr.empty()) {
    outcome.status = BindStatus::kInternalError;
    outcome.error = "illegal schedule: " + verr;
    return outcome;
  }

  outcome.binding = std::move(result.binding);
  outcome.latency = result.schedule.latency;
  outcome.moves = result.schedule.num_moves;
  if (cancel.cancelled()) {
    outcome.status = BindStatus::kCancelled;
  } else if (cancel.deadline_expired()) {
    outcome.status = BindStatus::kDeadlineExceeded;
  } else {
    outcome.status = BindStatus::kOk;
  }
  return outcome;
}

Service::Service(ServiceOptions options) : options_(std::move(options)) {
  if (options_.num_workers < 1) {
    throw std::invalid_argument("Service: num_workers must be >= 1");
  }
  engine_ = std::make_unique<EvalEngine>(options_.engine);
  workers_.reserve(static_cast<std::size_t>(options_.num_workers));
  for (int i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Service::~Service() { shutdown(true); }

void Service::finish(const std::shared_ptr<Pending>& pending,
                     BindOutcome outcome) {
  switch (outcome.status) {
    case BindStatus::kOk:
      metrics_.counter("jobs_completed").inc();
      break;
    case BindStatus::kDeadlineExceeded:
      metrics_.counter("jobs_completed").inc();
      metrics_.counter("jobs_deadline_miss").inc();
      break;
    case BindStatus::kCancelled:
      metrics_.counter("jobs_cancelled").inc();
      break;
    case BindStatus::kShed:
      metrics_.counter("jobs_shed").inc();
      break;
    case BindStatus::kInvalidRequest:
    case BindStatus::kInternalError:
      metrics_.counter("jobs_failed").inc();
      break;
  }
  // Latency histograms only cover jobs that actually executed; shed
  // and never-run (shutdown-cancelled) jobs would skew them with zeros.
  if (outcome.run_ms > 0 || has_result(outcome.status)) {
    metrics_.histogram("queue_wait_ms").observe(outcome.queue_ms);
    metrics_.histogram("run_ms").observe(outcome.run_ms);
  }
  pending->promise.set_value(outcome);
  if (pending->callback) {
    pending->callback(std::move(outcome));
  }
}

std::future<BindOutcome> Service::submit(BindJob job) {
  auto pending = std::make_shared<Pending>();
  pending->job = std::move(job);
  std::future<BindOutcome> future = pending->promise.get_future();
  admit(std::move(pending));
  return future;
}

void Service::submit(BindJob job, std::function<void(BindOutcome)> done) {
  auto pending = std::make_shared<Pending>();
  pending->job = std::move(job);
  pending->callback = std::move(done);
  admit(std::move(pending));
}

void Service::admit(std::shared_ptr<Pending> pending) {
  metrics_.counter("jobs_submitted").inc();
  std::shared_ptr<Pending> shed;  // resolved outside the lock
  const char* shed_reason = nullptr;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (pending->job.id.empty()) {
      pending->job.id = "job-" + std::to_string(next_auto_id_++);
    }
    const double deadline_ms = pending->job.deadline_ms > 0
                                   ? pending->job.deadline_ms
                                   : options_.default_deadline_ms;
    pending->cancel = deadline_ms > 0 ? CancelToken::after_ms(deadline_ms)
                                      : CancelToken::manual();
    pending->submitted.restart();

    if (stopping_) {
      shed = std::move(pending);
      shed_reason = "service is shutting down";
    } else if (queue_.size() >= options_.queue_capacity) {
      if (options_.overflow == OverflowPolicy::kReject || queue_.empty()) {
        // queue_.empty() only with queue_capacity == 0: there is no
        // older job to drop, so shed-oldest degenerates to reject.
        shed = std::move(pending);
        shed_reason = "queue full (reject policy)";
      } else {
        shed = queue_.front();  // head drop: oldest queued job
        shed_reason = "queue full (shed-oldest policy)";
        queue_.pop_front();
        queue_.push_back(std::move(pending));
      }
    } else {
      queue_.push_back(std::move(pending));
    }
    metrics_.gauge("queue_depth").set(static_cast<long long>(queue_.size()));
  }
  work_cv_.notify_one();
  if (shed != nullptr) {
    BindOutcome outcome;
    outcome.id = shed->job.id;
    outcome.status = BindStatus::kShed;
    outcome.error = shed_reason;
    finish(shed, std::move(outcome));
  }
}

bool Service::cancel(const std::string& id) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const std::shared_ptr<Pending>& pending : queue_) {
    if (pending->job.id == id) {
      pending->cancel.request_cancel();
      return true;
    }
  }
  for (const std::shared_ptr<Pending>& pending : running_) {
    if (pending->job.id == id) {
      pending->cancel.request_cancel();
      return true;
    }
  }
  return false;
}

std::size_t Service::queue_depth() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

JsonValue Service::metrics_snapshot() const {
  JsonValue out = JsonValue::object();
  out.set("service", metrics_.snapshot());
  out.set("eval",
          eval_stats_to_json(engine_->stats(), engine_->num_threads()));
  return out;
}

void Service::worker_loop() {
  while (true) {
    std::shared_ptr<Pending> pending;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping and drained
      }
      pending = queue_.front();
      queue_.pop_front();
      running_.push_back(pending);
      metrics_.gauge("queue_depth").set(static_cast<long long>(queue_.size()));
      metrics_.gauge("busy_workers").add(1);
    }

    const double queue_ms = pending->submitted.elapsed_ms();
    Stopwatch run_watch;
    BindOutcome outcome =
        run_bind_job(pending->job, *engine_, pending->cancel);
    outcome.queue_ms = queue_ms;
    outcome.run_ms = run_watch.elapsed_ms();

    {
      const std::lock_guard<std::mutex> lock(mutex_);
      std::erase(running_, pending);
      metrics_.gauge("busy_workers").add(-1);
    }
    finish(pending, std::move(outcome));
    idle_cv_.notify_all();
  }
}

void Service::shutdown(bool drain) {
  std::deque<std::shared_ptr<Pending>> abandoned;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (drain) {
      // Workers empty the queue before we flag stop; running jobs are
      // left to finish naturally (their tokens stay untouched).
      idle_cv_.wait(lock, [this] { return queue_.empty(); });
      stopping_ = true;
    } else {
      stopping_ = true;
      abandoned.swap(queue_);
      for (const std::shared_ptr<Pending>& pending : running_) {
        pending->cancel.request_cancel();
      }
      metrics_.gauge("queue_depth").set(0);
    }
  }
  work_cv_.notify_all();
  for (const std::shared_ptr<Pending>& pending : abandoned) {
    BindOutcome outcome;
    outcome.id = pending->job.id;
    outcome.status = BindStatus::kCancelled;
    outcome.error = "service shut down before the job ran";
    finish(pending, std::move(outcome));
  }
  for (std::thread& worker : workers_) {
    if (worker.joinable()) {
      worker.join();
    }
  }
}

}  // namespace cvb
