#include "service/protocol.hpp"

#include <sstream>
#include <stdexcept>

#include "api/api.hpp"
#include "bind/effort.hpp"
#include "bind/strategy.hpp"
#include "io/dfg_text.hpp"
#include "kernels/kernels.hpp"
#include "machine/machine_file.hpp"
#include "machine/parser.hpp"

namespace cvb {

namespace {

const JsonValue* require_kind(const JsonValue& obj, std::string_view key,
                              JsonValue::Kind kind, const char* kind_name) {
  const JsonValue* value = obj.find(key);
  if (value == nullptr) {
    return nullptr;
  }
  if (value->kind() != kind) {
    throw std::invalid_argument("field '" + std::string(key) + "' must be a " +
                                kind_name);
  }
  return value;
}

const JsonValue* opt_string(const JsonValue& obj, std::string_view key) {
  return require_kind(obj, key, JsonValue::Kind::kString, "string");
}

const JsonValue* opt_number(const JsonValue& obj, std::string_view key) {
  return require_kind(obj, key, JsonValue::Kind::kNumber, "number");
}

/// One strategy in v2 form: either a bare name string ("b-iter") or an
/// object {"kind": "...", "effort": "...", "seed": N}. Unknown names
/// throw the strategy_kind_from_string error, which names the valid
/// set. `default_effort` is the request-level "effort" field, applied
/// when the spec does not carry its own.
StrategySpec parse_strategy_spec(const JsonValue& value,
                                 BindEffort default_effort) {
  StrategySpec spec;
  spec.effort = default_effort;
  if (value.is_string()) {
    spec.kind = strategy_kind_from_string(value.as_string());
    return spec;
  }
  if (!value.is_object()) {
    throw std::invalid_argument(
        "a strategy must be a name string or an object with a 'kind' field");
  }
  const JsonValue* kind = opt_string(value, "kind");
  if (kind == nullptr) {
    throw std::invalid_argument("strategy object requires a 'kind' string "
                                "(valid: " +
                                strategy_name_list() + ")");
  }
  spec.kind = strategy_kind_from_string(kind->as_string());
  if (const JsonValue* effort = opt_string(value, "effort");
      effort != nullptr) {
    spec.effort = bind_effort_from_string(effort->as_string());
  }
  if (const JsonValue* seed = opt_number(value, "seed"); seed != nullptr) {
    spec.seed = static_cast<std::uint64_t>(seed->as_number());
  }
  return spec;
}

}  // namespace

ServeRequest parse_serve_request(const std::string& line) {
  const JsonValue doc = JsonValue::parse(line);
  if (!doc.is_object()) {
    throw std::invalid_argument("request must be a JSON object");
  }

  ServeRequest request;
  if (const JsonValue* cmd = opt_string(doc, "cmd"); cmd != nullptr) {
    if (cmd->as_string() == "metrics") {
      request.kind = ServeRequest::Kind::kMetrics;
      return request;
    }
    if (cmd->as_string() == "trace") {
      request.kind = ServeRequest::Kind::kTrace;
      return request;
    }
    if (cmd->as_string() == "quit") {
      request.kind = ServeRequest::Kind::kQuit;
      return request;
    }
    if (cmd->as_string() == "shutdown") {
      request.kind = ServeRequest::Kind::kShutdown;
      return request;
    }
    if (cmd->as_string() == "snapshot") {
      request.kind = ServeRequest::Kind::kSnapshot;
      const JsonValue* path = opt_string(doc, "path");
      if (path == nullptr || path->as_string().empty()) {
        throw std::invalid_argument(
            "cmd 'snapshot' requires a non-empty 'path' string field");
      }
      request.path = path->as_string();
      return request;
    }
    throw std::invalid_argument("unknown cmd '" + cmd->as_string() + "'");
  }

  request.kind = ServeRequest::Kind::kJob;
  BindJob& job = request.job;
  if (const JsonValue* id = opt_string(doc, "id"); id != nullptr) {
    job.id = id->as_string();
  }

  const JsonValue* kernel = opt_string(doc, "kernel");
  const JsonValue* dfg_text = opt_string(doc, "dfg");
  if ((kernel != nullptr) == (dfg_text != nullptr)) {
    throw std::invalid_argument(
        "exactly one of 'kernel' or 'dfg' is required");
  }
  if (kernel != nullptr) {
    job.dfg = benchmark_by_name(kernel->as_string()).dfg;
  } else {
    std::istringstream in(dfg_text->as_string());
    job.dfg = parse_dfg_text(in).dfg;
  }

  if (const JsonValue* machine = opt_string(doc, "machine");
      machine != nullptr) {
    if (doc.find("datapath") != nullptr) {
      throw std::invalid_argument("'machine' and 'datapath' are exclusive");
    }
    std::istringstream in(machine->as_string());
    job.datapath = parse_machine_file(in).datapath;
  } else {
    std::string spec = "[1,1|1,1]";
    int buses = 2;
    int move_latency = 1;
    if (const JsonValue* dp = opt_string(doc, "datapath"); dp != nullptr) {
      spec = dp->as_string();
    }
    if (const JsonValue* b = opt_number(doc, "buses"); b != nullptr) {
      buses = static_cast<int>(b->as_number());
    }
    if (const JsonValue* ml = opt_number(doc, "move_latency");
        ml != nullptr) {
      move_latency = static_cast<int>(ml->as_number());
    }
    job.datapath = parse_datapath(spec, buses, move_latency);
  }

  // Strategy selection, both schema versions: v1 spells a name string
  // ("algorithm": "b-iter") with an optional request-level "effort";
  // v2 carries a typed spec ("strategy": {...} or a bare name) or a
  // racing set ("portfolio": [...] or {"strategies": [...], ...}).
  // The request-level "effort" keeps working in every form as the
  // default for specs that do not set their own.
  BindEffort default_effort = job.strategy.effort;
  if (const JsonValue* effort = opt_string(doc, "effort"); effort != nullptr) {
    default_effort = bind_effort_from_string(effort->as_string());
    job.strategy.effort = default_effort;
  }
  const JsonValue* algo = opt_string(doc, "algorithm");
  const JsonValue* strategy = doc.find("strategy");
  const JsonValue* portfolio = doc.find("portfolio");
  if ((algo != nullptr ? 1 : 0) + (strategy != nullptr ? 1 : 0) +
          (portfolio != nullptr ? 1 : 0) >
      1) {
    throw std::invalid_argument(
        "'algorithm', 'strategy', and 'portfolio' are exclusive");
  }
  if (algo != nullptr) {
    job.strategy.kind = strategy_kind_from_string(algo->as_string());
    job.strategy_explicit = true;
  } else if (strategy != nullptr) {
    job.strategy = parse_strategy_spec(*strategy, default_effort);
    job.strategy_explicit = true;
  } else if (portfolio != nullptr) {
    const JsonValue* list = portfolio;
    if (portfolio->is_object()) {
      list = portfolio->find("strategies");
      if (list == nullptr) {
        throw std::invalid_argument(
            "'portfolio' object requires a 'strategies' array");
      }
      if (const JsonValue* threads = opt_number(*portfolio, "race_threads");
          threads != nullptr) {
        job.portfolio_policy.race_threads =
            static_cast<int>(threads->as_number());
      }
      if (const JsonValue* rounds = opt_number(*portfolio, "max_rounds");
          rounds != nullptr) {
        job.portfolio_policy.max_rounds =
            static_cast<int>(rounds->as_number());
      }
    }
    if (!list->is_array() || list->as_array().empty()) {
      throw std::invalid_argument(
          "'portfolio' requires a non-empty array of strategies");
    }
    for (const JsonValue& entry : list->as_array()) {
      job.portfolio.push_back(parse_strategy_spec(entry, default_effort));
    }
    job.strategy_explicit = true;
  }
  if (const JsonValue* deadline = opt_number(doc, "deadline_ms");
      deadline != nullptr) {
    if (deadline->as_number() < 0) {
      throw std::invalid_argument("'deadline_ms' must be >= 0");
    }
    job.deadline_ms = deadline->as_number();
  }
  if (const JsonValue* budget = opt_number(doc, "step_budget");
      budget != nullptr) {
    if (budget->as_number() < 0) {
      throw std::invalid_argument("'step_budget' must be >= 0");
    }
    job.step_budget = static_cast<long long>(budget->as_number());
  }
  return request;
}

JsonValue outcome_to_json(const BindOutcome& outcome) {
  JsonValue out = JsonValue::object();
  if (!outcome.id.empty()) {
    out.set("id", outcome.id);
  }
  out.set("status", to_string(outcome.status));
  if (!outcome.error.empty()) {
    out.set("error", outcome.error);
  }
  if (outcome.fault != FaultClass::kNone) {
    out.set("fault_class", to_string(outcome.fault));
  }
  if (outcome.attempts > 1) {
    out.set("attempts", outcome.attempts);
  }
  if (!outcome.binding.empty()) {
    out.set("latency", outcome.latency);
    out.set("moves", outcome.moves);
    JsonValue binding = JsonValue::array();
    for (const ClusterId c : outcome.binding) {
      binding.push_back(static_cast<int>(c));
    }
    out.set("binding", std::move(binding));
  }
  out.set("queue_ms", outcome.queue_ms);
  out.set("run_ms", outcome.run_ms);
  // Per-response timing breakdown: where this request's wall time went
  // (queue wait vs execution vs scheduler evaluation inside it).
  JsonValue timings = JsonValue::object();
  timings.set("queue_ms", outcome.queue_ms);
  timings.set("run_ms", outcome.run_ms);
  timings.set("eval_ms", outcome.eval_stats.eval_ms);
  timings.set("eval_candidates", outcome.eval_stats.candidates);
  out.set("timings", std::move(timings));
  if (outcome.portfolio.ran()) {
    out.set("portfolio", portfolio_stats_to_json(outcome.portfolio));
  }
  return out;
}

JsonValue invalid_request_json(const std::string& error, const std::string& id,
                               FaultClass fault_class) {
  JsonValue out = JsonValue::object();
  if (!id.empty()) {
    out.set("id", id);
  }
  out.set("status", to_string(BindStatus::kInvalidRequest));
  out.set("fault_class", to_string(fault_class));
  out.set("error", error);
  return out;
}

std::string extract_request_id(const std::string& line) noexcept {
  try {
    const JsonValue doc = JsonValue::parse(line);
    if (!doc.is_object()) {
      return "";
    }
    const JsonValue* id = doc.find("id");
    if (id != nullptr && id->kind() == JsonValue::Kind::kString) {
      return id->as_string();
    }
  } catch (...) {
    // Malformed JSON: no id to recover.
  }
  return "";
}

}  // namespace cvb
