#include "sim/executor.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/analysis.hpp"

namespace cvb {

namespace {

/// Deterministic per-op coefficient for unary (constant) multiplies:
/// FNV-1a of the name, folded to a small odd constant so products stay
/// interesting without overflowing into indistinguishable values.
std::int64_t coefficient_of(const std::string& name) {
  std::uint64_t hash = 1469598103934665603ULL;
  for (const char c : name) {
    hash = (hash ^ static_cast<unsigned char>(c)) * 1099511628211ULL;
  }
  return static_cast<std::int64_t>(hash % 61) * 2 + 3;
}

std::int64_t apply(OpType type, const std::string& name,
                   const std::vector<std::int64_t>& args) {
  const std::int64_t a = args.empty() ? 0 : args[0];
  const std::int64_t b = args.size() > 1 ? args[1] : 0;
  // Wrap-around arithmetic via unsigned casts (well-defined).
  const auto wrap = [](std::uint64_t x) { return static_cast<std::int64_t>(x); };
  switch (type) {
    case OpType::kAdd:
      return wrap(static_cast<std::uint64_t>(a) +
                  static_cast<std::uint64_t>(b));
    case OpType::kSub:
      return wrap(static_cast<std::uint64_t>(a) -
                  static_cast<std::uint64_t>(b));
    case OpType::kNeg:
      return wrap(0ULL - static_cast<std::uint64_t>(a));
    case OpType::kShift:
      return wrap(static_cast<std::uint64_t>(a) << 1);
    case OpType::kAnd:
      return a & b;
    case OpType::kOr:
      return a | b;
    case OpType::kXor:
      return a ^ b;
    case OpType::kCmp:
      return a < b ? 1 : 0;
    case OpType::kMul:
    case OpType::kMac:
      if (args.size() == 1) {  // coefficient multiply
        return wrap(static_cast<std::uint64_t>(a) *
                    static_cast<std::uint64_t>(coefficient_of(name)));
      }
      return wrap(static_cast<std::uint64_t>(a) *
                  static_cast<std::uint64_t>(b));
    case OpType::kMove:
      return a;
  }
  return 0;
}

/// Evaluates ops of `g` in the given order. External operand values are
/// drawn from `inputs`, indexed by a global (op, slot) counter that
/// only advances over ops below `external_limit` — so the bound graph
/// (whose moves have no externals and come last) consumes exactly the
/// same input sequence as the original.
std::vector<std::int64_t> evaluate(const Dfg& g,
                                   const std::vector<OpId>& order,
                                   const std::vector<std::int64_t>& inputs,
                                   int external_limit) {
  if (inputs.empty()) {
    throw std::invalid_argument("execute: need at least one input value");
  }
  // Pre-assign external operand values in (op id, slot) order so the
  // evaluation order cannot change which input a slot receives.
  std::vector<std::vector<std::int64_t>> external_values(
      static_cast<std::size_t>(g.num_ops()));
  std::size_t next_input = 0;
  for (OpId v = 0; v < external_limit; ++v) {
    for (const OpId u : g.operands(v)) {
      if (u == kNoOp) {
        external_values[static_cast<std::size_t>(v)].push_back(
            inputs[next_input % inputs.size()]);
        ++next_input;
      }
    }
  }

  std::vector<std::int64_t> result(static_cast<std::size_t>(g.num_ops()), 0);
  std::vector<bool> computed(static_cast<std::size_t>(g.num_ops()), false);
  for (const OpId v : order) {
    if (g.operands(v).empty()) {
      throw std::invalid_argument(
          "execute: op " + g.name(v) +
          " has no operand information (build the graph via DfgBuilder "
          "or 'args' lines)");
    }
    std::vector<std::int64_t> args;
    std::size_t external_slot = 0;
    for (const OpId u : g.operands(v)) {
      if (u == kNoOp) {
        args.push_back(external_values[static_cast<std::size_t>(v)]
                                      [external_slot++]);
      } else {
        if (!computed[static_cast<std::size_t>(u)]) {
          throw std::logic_error("execute: op " + g.name(v) +
                                 " reads " + g.name(u) +
                                 " before it is computed");
        }
        args.push_back(result[static_cast<std::size_t>(u)]);
      }
    }
    result[static_cast<std::size_t>(v)] = apply(g.type(v), g.name(v), args);
    computed[static_cast<std::size_t>(v)] = true;
  }
  return result;
}

}  // namespace

std::vector<std::int64_t> execute_reference(
    const Dfg& dfg, const std::vector<std::int64_t>& inputs) {
  return evaluate(dfg, topological_order(dfg), inputs, dfg.num_ops());
}

std::vector<std::int64_t> execute_schedule(
    const BoundDfg& bound, const Datapath& dp, const Schedule& sched,
    const std::vector<std::int64_t>& inputs) {
  const Dfg& g = bound.graph;
  if (static_cast<int>(sched.start.size()) != g.num_ops()) {
    throw std::invalid_argument("execute_schedule: schedule size mismatch");
  }
  // Fire order: scheduled start cycle (a legal schedule computes every
  // operand strictly earlier; evaluate() re-checks).
  std::vector<OpId> order(static_cast<std::size_t>(g.num_ops()));
  for (OpId v = 0; v < g.num_ops(); ++v) {
    order[static_cast<std::size_t>(v)] = v;
  }
  std::sort(order.begin(), order.end(), [&](OpId a, OpId b) {
    return std::make_pair(sched.start[static_cast<std::size_t>(a)], a) <
           std::make_pair(sched.start[static_cast<std::size_t>(b)], b);
  });
  std::vector<std::int64_t> all =
      evaluate(g, order, inputs, bound.num_original_ops());
  all.resize(static_cast<std::size_t>(bound.num_original_ops()));
  (void)dp;
  return all;
}

std::string check_semantics(const Dfg& original, const BoundDfg& bound,
                            const Datapath& dp, const Schedule& sched,
                            const std::vector<std::int64_t>& inputs) {
  const std::vector<std::int64_t> reference =
      execute_reference(original, inputs);
  const std::vector<std::int64_t> scheduled =
      execute_schedule(bound, dp, sched, inputs);
  if (reference.size() != scheduled.size()) {
    return "op count mismatch between original and bound graphs";
  }
  for (std::size_t v = 0; v < reference.size(); ++v) {
    if (reference[v] != scheduled[v]) {
      return "value mismatch at op " + original.name(static_cast<OpId>(v)) +
             ": reference " + std::to_string(reference[v]) + ", scheduled " +
             std::to_string(scheduled[v]);
    }
  }
  return {};
}

}  // namespace cvb
