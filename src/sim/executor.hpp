// Functional execution of dataflow graphs and of scheduled, bound
// code — the end-to-end semantic check that binding, move insertion and
// scheduling preserve what the basic block *computes*, not just its
// dependence structure.
//
// Semantics: 64-bit two's-complement integers (wrap-around), one value
// per operation result. External operands (kNoOp entries in an op's
// operand list) draw successive values from an input vector; unary
// multiplies (coefficient muls) multiply by a per-op constant derived
// deterministically from the op name, so reference and scheduled
// executions agree on coefficients. Moves copy their operand.
//
// Requires complete operand information (graphs built via DfgBuilder /
// add_operand or parsed from `.dfg` args lines). Graphs whose ops have
// fewer operands than their natural arity are rejected, because their
// semantics would be ambiguous.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bind/bound_dfg.hpp"
#include "graph/dfg.hpp"
#include "machine/datapath.hpp"
#include "sched/schedule.hpp"

namespace cvb {

/// Reference execution: evaluates `dfg` in topological order. `inputs`
/// supplies external operand values in (op id, slot) order; missing
/// entries repeat cyclically (so a short vector is fine). Returns every
/// operation's result value. Throws std::invalid_argument if some
/// non-source operation has an empty operand list (incomplete operand
/// info) or `inputs` is empty.
[[nodiscard]] std::vector<std::int64_t> execute_reference(
    const Dfg& dfg, const std::vector<std::int64_t>& inputs);

/// Cycle-accurate execution of a scheduled bound DFG: operations fire
/// at their scheduled cycles, reading operand values produced earlier
/// (the schedule must be legal). Returns the result of every operation
/// of the *original* graph (moves excluded), in original id order.
[[nodiscard]] std::vector<std::int64_t> execute_schedule(
    const BoundDfg& bound, const Datapath& dp, const Schedule& sched,
    const std::vector<std::int64_t>& inputs);

/// Convenience: runs both executions and returns an empty string if
/// every original operation computes the same value, else a description
/// of the first mismatch.
[[nodiscard]] std::string check_semantics(const Dfg& original,
                                          const BoundDfg& bound,
                                          const Datapath& dp,
                                          const Schedule& sched,
                                          const std::vector<std::int64_t>&
                                              inputs);

}  // namespace cvb
