// Interconnect topology model (generalization of the paper's single
// shared bus, ROADMAP "Generalized interconnect scenarios").
//
// The paper's datapath moves every inter-cluster value over one shared
// bus with N(BUS) slots. Real clustered datapaths have richer fabrics:
// point-to-point neighbor links, rings, meshes, and hierarchical buses
// with per-segment bandwidth. A Topology describes such a fabric as a
// named set of *links*: each link joins a set of clusters, executes
// kMove operations, and has
//
//  * a per-slot capacity (simultaneous transfers inside one dii(BUS)
//    issue window — the per-link analogue of N(BUS)), and
//  * a hop latency (cycles one move op on this link takes; 0 = inherit
//    the datapath's lat(move), so the paper's uniform timing is the
//    default).
//
// Transfers between clusters that share no link are *routed*: a value
// travels over the shortest path in the cluster graph induced by the
// links, and bound-DFG construction materializes one bus-resident move
// operation per traversed link (a chain, each hop delivering the value
// into the next cluster's register file, where local consumers — and
// further hops — can read it).
//
// Routes are precomputed all-pairs at construction and fully
// deterministic: minimal total routing weight (hop latency, 1 per hop
// when inherited), then minimal hop count, with ties broken toward the
// lexicographically smallest (cluster, link) parent so every rebuild
// of the same topology yields byte-identical routes.
//
// The single shared bus is the one-link special case
// (Topology::single_bus), and every consumer of the topology — move
// insertion, the per-link scheduler legality pools, B-INIT's
// distance-aware cost terms — degenerates to the paper's behavior
// bit-for-bit on it (pinned by tests/topology_differential_test.cpp).
#pragma once

#include <string>
#include <vector>

namespace cvb {

/// Cluster identifier (mirrors machine/datapath.hpp; kept here to avoid
/// a circular include — Datapath owns a Topology).
using TopoClusterId = int;

/// One interconnect link: a named transfer resource joining one or more
/// clusters. Validation requires capacity >= 1 and hop_latency >= 0.
struct TopoLink {
  std::string name;
  /// Clusters this link can deliver into (sorted, unique). A shared bus
  /// lists every cluster; a point-to-point link lists two.
  std::vector<TopoClusterId> members;
  /// Simultaneous transfers per dii(BUS) issue window on this link.
  int capacity = 1;
  /// Cycles a move op on this link takes; 0 = inherit lat(move).
  int hop_latency = 0;
};

/// Builder provenance, for labels and machine-file round-trips.
enum class TopologyKind {
  kSingleBus,
  kRing,
  kMesh,
  kP2p,
  kSegmentedBus,
  kCustom,
};

/// Name of a topology kind ("single_bus", "ring", ...).
[[nodiscard]] const char* topology_kind_name(TopologyKind kind);

/// One step of a precomputed route: traverse `link`, arriving in
/// cluster `to`.
struct RouteStep {
  int link = 0;
  TopoClusterId to = 0;
};

/// Immutable interconnect description with precomputed all-pairs
/// routes. Construct through the named builders or `custom`.
class Topology {
 public:
  /// Default: a zero-cluster placeholder; Datapath always replaces it.
  Topology() = default;

  /// The paper's model: one link named "BUS" joining every cluster,
  /// capacity = `capacity` (the paper's N(BUS)), hop latency inherited.
  [[nodiscard]] static Topology single_bus(int num_clusters, int capacity);

  /// Neighbor links 0-1, 1-2, ..., (n-1)-0. Two clusters get a single
  /// link; one cluster degenerates to a bus.
  [[nodiscard]] static Topology ring(int num_clusters, int capacity,
                                     int hop_latency = 0);

  /// rows x cols grid; horizontal links "h<r>_<c>" and vertical links
  /// "v<r>_<c>". Cluster ids are row-major. Throws if rows * cols !=
  /// the implied cluster count (callers pass the datapath's).
  [[nodiscard]] static Topology mesh(int rows, int cols, int capacity,
                                     int hop_latency = 0);

  /// Full point-to-point crossbar: one link per unordered cluster pair.
  [[nodiscard]] static Topology p2p(int num_clusters, int capacity,
                                    int hop_latency = 0);

  /// `segments` contiguous bus segments of near-equal size, each a
  /// shared link over its clusters with `capacity` slots, plus bridge
  /// links joining the last cluster of each segment to the first of the
  /// next (hierarchical bus). One segment degenerates to a single bus.
  [[nodiscard]] static Topology segmented_bus(int num_clusters, int segments,
                                              int capacity,
                                              int hop_latency = 0);

  /// Arbitrary link set. Validates (throws std::invalid_argument):
  /// non-empty unique link names, members within [0, num_clusters),
  /// capacity >= 1, hop_latency >= 0, every cluster reachable from
  /// every other when num_clusters > 1.
  [[nodiscard]] static Topology custom(int num_clusters,
                                       std::vector<TopoLink> links);

  [[nodiscard]] int num_clusters() const { return num_clusters_; }
  [[nodiscard]] int num_links() const {
    return static_cast<int>(links_.size());
  }
  [[nodiscard]] const TopoLink& link(int id) const {
    return links_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] const std::vector<TopoLink>& links() const { return links_; }
  [[nodiscard]] TopologyKind kind() const { return kind_; }

  /// True when this is exactly one all-cluster link (the paper's bus).
  [[nodiscard]] bool is_single_bus() const;

  /// True when this is the topology the legacy Datapath constructor
  /// builds for `num_buses`: a single bus of that capacity with
  /// inherited hop latency. Used to keep eval-cache signatures of
  /// legacy datapaths byte-stable.
  [[nodiscard]] bool is_default_single_bus(int num_buses) const;

  /// Total transfer capacity across links (the aggregate N(BUS)).
  [[nodiscard]] int total_capacity() const;

  /// Precomputed route from `from` to `to` (empty when equal). Each
  /// step names the link traversed and the cluster reached; the last
  /// step's `to` is `to`.
  [[nodiscard]] const std::vector<RouteStep>& route(TopoClusterId from,
                                                    TopoClusterId to) const;

  /// Number of links on route(from, to); 0 when equal.
  [[nodiscard]] int hop_count(TopoClusterId from, TopoClusterId to) const {
    return static_cast<int>(route(from, to).size());
  }

  /// Sum of per-link hop latencies along route(from, to), with
  /// inherited (0) hop latencies counted as `inherited_latency` cycles
  /// (callers pass lat(move)). 0 when from == to.
  [[nodiscard]] int route_latency(TopoClusterId from, TopoClusterId to,
                                  int inherited_latency) const;

  /// Longest route_latency over all ordered cluster pairs, at least
  /// `inherited_latency` (the horizon-sizing bound for
  /// bind/load_profile.hpp).
  [[nodiscard]] int max_route_latency(int inherited_latency) const;

  /// Canonical description, e.g. "single_bus(cap=2)" or
  /// "ring(4,cap=1)"; custom topologies list their links. Stable across
  /// rebuilds — usable as a cache-key component.
  [[nodiscard]] std::string to_string() const;

 private:
  Topology(int num_clusters, std::vector<TopoLink> links, TopologyKind kind);

  void validate() const;
  void compute_routes();

  [[nodiscard]] std::size_t pair_index(TopoClusterId from,
                                       TopoClusterId to) const {
    return static_cast<std::size_t>(from) *
               static_cast<std::size_t>(num_clusters_) +
           static_cast<std::size_t>(to);
  }

  int num_clusters_ = 0;
  std::vector<TopoLink> links_;
  TopologyKind kind_ = TopologyKind::kSingleBus;
  /// routes_[from * num_clusters + to]; empty on the diagonal.
  std::vector<std::vector<RouteStep>> routes_;
};

}  // namespace cvb
