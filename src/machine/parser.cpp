#include "machine/parser.hpp"

#include <stdexcept>
#include <string>

#include "support/strings.hpp"

namespace cvb {

Datapath parse_datapath(std::string_view spec, int num_buses,
                        int move_latency) {
  std::string_view body = trim(spec);
  if (!body.empty() && body.front() == '[') {
    body.remove_prefix(1);
    if (body.empty() || body.back() != ']') {
      throw std::invalid_argument("parse_datapath: unbalanced brackets in '" +
                                  std::string(spec) + "'");
    }
    body.remove_suffix(1);
  }
  if (trim(body).empty()) {
    throw std::invalid_argument("parse_datapath: empty spec");
  }

  if (num_buses < 1) {
    throw std::invalid_argument("parse_datapath: num_buses must be >= 1 (got " +
                                std::to_string(num_buses) + ")");
  }
  if (move_latency < 1) {
    throw std::invalid_argument(
        "parse_datapath: move_latency must be >= 1 (got " +
        std::to_string(move_latency) + ")");
  }

  std::vector<Cluster> clusters;
  for (const std::string& field : split(body, '|')) {
    const std::vector<std::string> counts = split(field, ',');
    if (counts.size() != 2) {
      throw std::invalid_argument(
          "parse_datapath: cluster '" + field +
          "' must be '<#ALU>,<#MULT>' (in '" + std::string(spec) + "')");
    }
    Cluster cluster;
    cluster.fu_count[static_cast<std::size_t>(FuType::kAlu)] =
        parse_nonnegative_int(counts[0]);
    cluster.fu_count[static_cast<std::size_t>(FuType::kMult)] =
        parse_nonnegative_int(counts[1]);
    clusters.push_back(cluster);
  }
  return Datapath::uniform(std::move(clusters), num_buses, move_latency);
}

Topology parse_topology_spec(std::string_view spec, int num_clusters,
                             int capacity, int hop_latency) {
  const std::string text{trim(spec)};
  if (text.empty()) {
    throw std::invalid_argument("parse_topology_spec: empty topology spec");
  }
  std::string kind = text;
  std::string arg;
  const std::size_t colon = text.find(':');
  if (colon != std::string::npos) {
    kind = text.substr(0, colon);
    arg = text.substr(colon + 1);
  }
  const auto require_no_arg = [&]() {
    if (!arg.empty()) {
      throw std::invalid_argument("parse_topology_spec: '" + kind +
                                  "' takes no ':<arg>' (got '" + text + "')");
    }
  };
  if (kind == "single_bus" || kind == "bus") {
    require_no_arg();
    return Topology::single_bus(num_clusters, capacity);
  }
  if (kind == "ring") {
    require_no_arg();
    return Topology::ring(num_clusters, capacity, hop_latency);
  }
  if (kind == "p2p") {
    require_no_arg();
    return Topology::p2p(num_clusters, capacity, hop_latency);
  }
  if (kind == "mesh") {
    const std::size_t x = arg.find('x');
    if (arg.empty() || x == std::string::npos) {
      throw std::invalid_argument(
          "parse_topology_spec: mesh needs dimensions 'mesh:RxC' (got '" +
          text + "')");
    }
    int rows = 0;
    int cols = 0;
    try {
      rows = parse_nonnegative_int(arg.substr(0, x));
      cols = parse_nonnegative_int(arg.substr(x + 1));
    } catch (const std::invalid_argument&) {
      throw std::invalid_argument(
          "parse_topology_spec: bad mesh dimensions in '" + text + "'");
    }
    if (rows * cols != num_clusters) {
      throw std::invalid_argument(
          "parse_topology_spec: mesh " + arg + " covers " +
          std::to_string(rows * cols) + " clusters, datapath has " +
          std::to_string(num_clusters));
    }
    return Topology::mesh(rows, cols, capacity, hop_latency);
  }
  if (kind == "segmented_bus" || kind == "seg") {
    if (arg.empty()) {
      throw std::invalid_argument(
          "parse_topology_spec: segmented_bus needs a segment count "
          "'segmented_bus:K' (got '" +
          text + "')");
    }
    int segments = 0;
    try {
      segments = parse_nonnegative_int(arg);
    } catch (const std::invalid_argument&) {
      throw std::invalid_argument(
          "parse_topology_spec: bad segment count in '" + text + "'");
    }
    return Topology::segmented_bus(num_clusters, segments, capacity,
                                   hop_latency);
  }
  throw std::invalid_argument(
      "parse_topology_spec: unknown topology kind '" + kind +
      "' (expected single_bus, ring, p2p, mesh:RxC, or segmented_bus:K)");
}

}  // namespace cvb
