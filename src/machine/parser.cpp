#include "machine/parser.hpp"

#include <stdexcept>
#include <string>

#include "support/strings.hpp"

namespace cvb {

Datapath parse_datapath(std::string_view spec, int num_buses,
                        int move_latency) {
  std::string_view body = trim(spec);
  if (!body.empty() && body.front() == '[') {
    body.remove_prefix(1);
    if (body.empty() || body.back() != ']') {
      throw std::invalid_argument("parse_datapath: unbalanced brackets in '" +
                                  std::string(spec) + "'");
    }
    body.remove_suffix(1);
  }
  if (trim(body).empty()) {
    throw std::invalid_argument("parse_datapath: empty spec");
  }

  std::vector<Cluster> clusters;
  for (const std::string& field : split(body, '|')) {
    const std::vector<std::string> counts = split(field, ',');
    if (counts.size() != 2) {
      throw std::invalid_argument(
          "parse_datapath: cluster '" + field +
          "' must be '<#ALU>,<#MULT>' (in '" + std::string(spec) + "')");
    }
    Cluster cluster;
    cluster.fu_count[static_cast<std::size_t>(FuType::kAlu)] =
        parse_nonnegative_int(counts[0]);
    cluster.fu_count[static_cast<std::size_t>(FuType::kMult)] =
        parse_nonnegative_int(counts[1]);
    clusters.push_back(cluster);
  }
  return Datapath::uniform(std::move(clusters), num_buses, move_latency);
}

}  // namespace cvb
