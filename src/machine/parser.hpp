// Parser for the paper's textual datapath notation. Table 1 writes a
// datapath as "[i,j|i,j|...]" where i is the number of ALUs and j the
// number of multipliers in each cluster.
#pragma once

#include <string_view>

#include "machine/datapath.hpp"

namespace cvb {

/// Parses "[1,1|2,1]" (brackets optional, whitespace tolerated) into a
/// Datapath with `num_buses` buses, unit operation latencies, fully
/// pipelined resources, and lat(move) = `move_latency`.
/// Throws std::invalid_argument on malformed input, num_buses < 1, or
/// move_latency < 1 (the message names the offending field).
[[nodiscard]] Datapath parse_datapath(std::string_view spec, int num_buses = 2,
                                      int move_latency = 1);

/// Parses an interconnect-topology spec (the `--topology` CLI flag and
/// the machine-file `topology` keyword):
///
///   single_bus            one shared link over all clusters (default)
///   ring                  neighbor ring
///   p2p                   full point-to-point crossbar
///   mesh:RxC              R x C grid (R*C must equal the cluster count)
///   segmented_bus:K       K contiguous bus segments + bridge links
///
/// Every link gets `capacity` slots and hop latency `hop_latency`
/// (0 = inherit lat(move)). Throws std::invalid_argument naming the
/// malformed component.
[[nodiscard]] Topology parse_topology_spec(std::string_view spec,
                                           int num_clusters, int capacity,
                                           int hop_latency = 0);

}  // namespace cvb
