// Parser for the paper's textual datapath notation. Table 1 writes a
// datapath as "[i,j|i,j|...]" where i is the number of ALUs and j the
// number of multipliers in each cluster.
#pragma once

#include <string_view>

#include "machine/datapath.hpp"

namespace cvb {

/// Parses "[1,1|2,1]" (brackets optional, whitespace tolerated) into a
/// Datapath with `num_buses` buses, unit operation latencies, fully
/// pipelined resources, and lat(move) = `move_latency`.
/// Throws std::invalid_argument on malformed input.
[[nodiscard]] Datapath parse_datapath(std::string_view spec, int num_buses = 2,
                                      int move_latency = 1);

}  // namespace cvb
