// Operation and functional-unit type definitions (the paper's Section 2
// datapath/dataflow models).
//
// Every DFG operation has an *operation type* `optype(v)`; each
// operation type maps to exactly one *functional-unit type*
// `futype(p)`, so the FU types partition the operation types. The bus
// is modeled as a resource type of its own, and the inter-cluster data
// transfer ("move") is the single operation type executing on it:
// futype(move) = BUS.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace cvb {

/// Operation types appearing in dataflow graphs. The DAC'01 benchmarks
/// only use ALU ops and multiplications, but the model is generic.
enum class OpType : std::uint8_t {
  kAdd = 0,
  kSub,
  kNeg,
  kShift,
  kAnd,
  kOr,
  kXor,
  kCmp,
  kMul,
  kMac,
  kMove,  // inter-cluster data transfer; executes on the bus
};

/// Number of distinct OpType values.
inline constexpr int kNumOpTypes = 11;

/// Functional-unit types. `kBus` is the interconnect pseudo-FU that
/// executes `OpType::kMove` (paper Section 2).
enum class FuType : std::uint8_t {
  kAlu = 0,
  kMult,
  kBus,
};

/// Number of distinct FuType values.
inline constexpr int kNumFuTypes = 3;

/// Number of *datapath* FU types, i.e. FU types that live inside
/// clusters (everything except the bus).
inline constexpr int kNumClusterFuTypes = 2;

/// Maps an operation type to the FU type that executes it
/// (futype(optype) in the paper).
[[nodiscard]] constexpr FuType fu_type_of(OpType op) {
  switch (op) {
    case OpType::kAdd:
    case OpType::kSub:
    case OpType::kNeg:
    case OpType::kShift:
    case OpType::kAnd:
    case OpType::kOr:
    case OpType::kXor:
    case OpType::kCmp:
      return FuType::kAlu;
    case OpType::kMul:
    case OpType::kMac:
      return FuType::kMult;
    case OpType::kMove:
      return FuType::kBus;
  }
  return FuType::kAlu;  // unreachable; keeps GCC's -Wreturn-type happy
}

/// True for the data-transfer pseudo-operation.
[[nodiscard]] constexpr bool is_move(OpType op) { return op == OpType::kMove; }

/// Short mnemonic ("add", "mul", "mov", ...) for diagnostics and DOT.
[[nodiscard]] std::string_view op_type_name(OpType op);

/// FU type mnemonic ("ALU", "MULT", "BUS").
[[nodiscard]] std::string_view fu_type_name(FuType fu);

/// All operation types, for iteration in tests/tools.
[[nodiscard]] const std::array<OpType, kNumOpTypes>& all_op_types();

}  // namespace cvb
