#include "machine/datapath.hpp"

#include <stdexcept>

namespace cvb {

Datapath::Datapath(std::vector<Cluster> clusters, int num_buses,
                   LatencyTable lat, std::array<int, kNumFuTypes> dii)
    : Datapath(clusters,
               [&] {
                 if (clusters.empty()) {
                   throw std::invalid_argument(
                       "Datapath: need at least one cluster");
                 }
                 if (num_buses < 1) {
                   throw std::invalid_argument(
                       "Datapath: need at least one bus");
                 }
                 return Topology::single_bus(
                     static_cast<int>(clusters.size()), num_buses);
               }(),
               lat, dii) {}

Datapath::Datapath(std::vector<Cluster> clusters, Topology topo,
                   LatencyTable lat, std::array<int, kNumFuTypes> dii)
    : clusters_(std::move(clusters)),
      num_buses_(topo.total_capacity()),
      topo_(std::move(topo)),
      lat_(lat),
      dii_(dii) {
  if (clusters_.empty()) {
    throw std::invalid_argument("Datapath: need at least one cluster");
  }
  if (topo_.num_clusters() != num_clusters()) {
    throw std::invalid_argument(
        "Datapath: topology covers " + std::to_string(topo_.num_clusters()) +
        " clusters but datapath has " + std::to_string(num_clusters()));
  }
  if (num_buses_ < 1) {
    throw std::invalid_argument("Datapath: need at least one bus");
  }
  for (const Cluster& c : clusters_) {
    for (const int n : c.fu_count) {
      if (n < 0) {
        throw std::invalid_argument("Datapath: negative FU count");
      }
    }
  }
  for (const int l : lat_) {
    if (l < 1) {
      throw std::invalid_argument("Datapath: operation latency must be >= 1");
    }
  }
  for (const int d : dii_) {
    if (d < 1) {
      throw std::invalid_argument("Datapath: dii must be >= 1");
    }
  }
}

Datapath Datapath::uniform(std::vector<Cluster> clusters, int num_buses,
                           int move_latency) {
  LatencyTable lat = unit_latencies();
  lat[static_cast<std::size_t>(OpType::kMove)] = move_latency;
  std::array<int, kNumFuTypes> dii{};
  dii.fill(1);
  return Datapath(std::move(clusters), num_buses, lat, dii);
}

Datapath Datapath::uniform_topo(std::vector<Cluster> clusters, Topology topo,
                                int move_latency) {
  LatencyTable lat = unit_latencies();
  lat[static_cast<std::size_t>(OpType::kMove)] = move_latency;
  std::array<int, kNumFuTypes> dii{};
  dii.fill(1);
  return Datapath(std::move(clusters), std::move(topo), lat, dii);
}

int Datapath::fu_count(ClusterId c, FuType t) const {
  if (c < 0 || c >= num_clusters()) {
    throw std::invalid_argument("Datapath::fu_count: bad cluster id " +
                                std::to_string(c));
  }
  if (t == FuType::kBus) {
    throw std::invalid_argument(
        "Datapath::fu_count: the bus is not a cluster resource");
  }
  return clusters_[static_cast<std::size_t>(c)].count(t);
}

int Datapath::total_fu_count(FuType t) const {
  if (t == FuType::kBus) {
    return num_buses_;
  }
  int total = 0;
  for (const Cluster& c : clusters_) {
    total += c.count(t);
  }
  return total;
}

bool Datapath::supports(ClusterId c, OpType op) const {
  const FuType t = fu_type_of(op);
  if (t == FuType::kBus) {
    return false;
  }
  return fu_count(c, t) > 0;
}

std::vector<ClusterId> Datapath::target_set(OpType op) const {
  std::vector<ClusterId> ts;
  if (fu_type_of(op) == FuType::kBus) {
    return ts;
  }
  for (ClusterId c = 0; c < num_clusters(); ++c) {
    if (supports(c, op)) {
      ts.push_back(c);
    }
  }
  return ts;
}

std::string Datapath::to_string() const {
  std::string text = "[";
  for (std::size_t i = 0; i < clusters_.size(); ++i) {
    if (i != 0) {
      text += '|';
    }
    text += std::to_string(clusters_[i].count(FuType::kAlu));
    text += ',';
    text += std::to_string(clusters_[i].count(FuType::kMult));
  }
  text += ']';
  return text;
}

}  // namespace cvb
