// Machine description files: a small text format describing a full
// clustered datapath — cluster layout, buses, per-operation-type
// latencies, per-resource data introduction intervals — so experiments
// can target a machine without recompiling:
//
//   # my_dsp.machine
//   machine my_dsp
//   clusters [2,1|1,1]
//   buses 2
//   latency mul 2        # operation-type latencies (default 1)
//   latency mov 1
//   dii MULT 2           # resource dii (default 1; unpipelined = lat)
//
// Unknown keys, malformed counts and inconsistent values (dii < 1 etc.)
// are rejected with line-numbered errors.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>

#include "machine/datapath.hpp"

namespace cvb {

/// Parsed machine description.
struct ParsedMachine {
  std::string name;
  Datapath datapath;
};

/// Resource guards on untrusted machine text. Machine descriptions are
/// tiny, so the limits are tight; violations throw line-numbered
/// std::invalid_argument like any other parse error.
struct MachineFileLimits {
  std::size_t max_line_length = 1 << 12;
  long long max_lines = 10'000;
};

/// Parses the machine text format. Throws std::invalid_argument with a
/// line-numbered message on errors or `limits` violations.
[[nodiscard]] ParsedMachine parse_machine_file(
    std::istream& in, const MachineFileLimits& limits = {});

/// Writes `dp` in the machine text format (only non-default latencies
/// and dii values are emitted).
void write_machine_file(std::ostream& out, const Datapath& dp,
                        const std::string& name = "machine");

}  // namespace cvb
