#include "machine/machine_file.hpp"

#include <istream>
#include <optional>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "machine/parser.hpp"
#include "support/fault.hpp"
#include "support/strings.hpp"

namespace cvb {

namespace {

std::optional<OpType> op_type_by_name(const std::string& name) {
  for (const OpType op : all_op_types()) {
    if (op_type_name(op) == name) {
      return op;
    }
  }
  return std::nullopt;
}

std::optional<FuType> fu_type_by_name(const std::string& name) {
  for (const FuType fu : {FuType::kAlu, FuType::kMult, FuType::kBus}) {
    if (fu_type_name(fu) == name) {
      return fu;
    }
  }
  return std::nullopt;
}

}  // namespace

ParsedMachine parse_machine_file(std::istream& in,
                                 const MachineFileLimits& limits) {
  CVB_INJECT("parse.machine");
  std::string name;
  std::optional<std::vector<Cluster>> clusters;
  int buses = 2;
  LatencyTable lat = unit_latencies();
  std::array<int, kNumFuTypes> dii{};
  dii.fill(1);
  // Topology lines are collected and resolved after the whole file is
  // read (the builders need the final cluster count and bus capacity).
  std::string topo_spec;
  std::optional<int> topo_cap;
  int topo_lat = 0;
  std::vector<TopoLink> custom_links;

  std::string line;
  int line_number = 0;
  const auto fail = [&](const std::string& message) -> void {
    throw std::invalid_argument("machine file, line " +
                                std::to_string(line_number) + ": " + message);
  };

  while (std::getline(in, line)) {
    ++line_number;
    if (line_number > limits.max_lines) {
      fail("too many lines (limit " + std::to_string(limits.max_lines) + ")");
    }
    if (line.size() > limits.max_line_length) {
      fail("line too long (" + std::to_string(line.size()) +
           " bytes, limit " + std::to_string(limits.max_line_length) + ")");
    }
    // Strip comments.
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) {
      line.resize(hash);
    }
    const std::string_view trimmed = trim(line);
    if (trimmed.empty()) {
      continue;
    }
    std::istringstream fields{std::string(trimmed)};
    std::string keyword;
    fields >> keyword;
    if (keyword == "machine") {
      fields >> name;
      if (name.empty()) {
        fail("missing machine name");
      }
    } else if (keyword == "clusters") {
      std::string spec;
      fields >> spec;
      try {
        // Borrow the datapath parser for the "[i,j|...]" notation; the
        // bus/latency arguments are replaced after parsing completes.
        const Datapath parsed = parse_datapath(spec);
        std::vector<Cluster> result;
        for (ClusterId c = 0; c < parsed.num_clusters(); ++c) {
          Cluster cluster;
          cluster.fu_count[static_cast<std::size_t>(FuType::kAlu)] =
              parsed.fu_count(c, FuType::kAlu);
          cluster.fu_count[static_cast<std::size_t>(FuType::kMult)] =
              parsed.fu_count(c, FuType::kMult);
          result.push_back(cluster);
        }
        clusters = std::move(result);
      } catch (const std::invalid_argument& e) {
        fail(e.what());
      }
    } else if (keyword == "buses") {
      std::string count;
      fields >> count;
      try {
        buses = parse_nonnegative_int(count);
      } catch (const std::invalid_argument& e) {
        fail(std::string("'buses': ") + e.what());
      }
      if (buses < 1) {
        fail("'buses' must be >= 1 (got " + count + ")");
      }
    } else if (keyword == "topology") {
      if (!custom_links.empty()) {
        fail("'topology' cannot be combined with 'link' lines");
      }
      fields >> topo_spec;
      if (topo_spec.empty()) {
        fail("missing topology spec (single_bus, ring, p2p, mesh:RxC, "
             "segmented_bus:K)");
      }
      // Optional trailing "cap <n>" / "lat <m>" pairs.
      std::string option;
      while (fields >> option) {
        std::string value;
        fields >> value;
        int parsed = 0;
        try {
          parsed = parse_nonnegative_int(value);
        } catch (const std::invalid_argument& e) {
          fail("topology '" + option + "': " + e.what());
        }
        if (option == "cap") {
          if (parsed < 1) {
            fail("topology 'cap' must be >= 1 (got " + value + ")");
          }
          topo_cap = parsed;
        } else if (option == "lat") {
          if (parsed < 1) {
            fail("topology 'lat' must be >= 1 (got " + value + ")");
          }
          topo_lat = parsed;
        } else {
          fail("unknown topology option '" + option + "' (expected cap/lat)");
        }
      }
    } else if (keyword == "link") {
      if (!topo_spec.empty()) {
        fail("'link' cannot be combined with a 'topology' line");
      }
      TopoLink link;
      std::string members;
      fields >> link.name >> members;
      if (link.name.empty() || members.empty()) {
        fail("expected 'link <name> <c0>-<c1>[-...] [cap <n>] [lat <m>]'");
      }
      for (const std::string& member : split(members, '-')) {
        try {
          link.members.push_back(parse_nonnegative_int(member));
        } catch (const std::invalid_argument& e) {
          fail("link '" + link.name + "' members: " + e.what());
        }
      }
      std::string option;
      while (fields >> option) {
        std::string value;
        fields >> value;
        int parsed = 0;
        try {
          parsed = parse_nonnegative_int(value);
        } catch (const std::invalid_argument& e) {
          fail("link '" + link.name + "' '" + option + "': " + e.what());
        }
        if (option == "cap") {
          if (parsed < 1) {
            fail("link '" + link.name + "' cap must be >= 1 (got " + value +
                 ")");
          }
          link.capacity = parsed;
        } else if (option == "lat") {
          if (parsed < 1) {
            fail("link '" + link.name + "' lat must be >= 1 (got " + value +
                 ")");
          }
          link.hop_latency = parsed;
        } else {
          fail("link '" + link.name + "': unknown option '" + option +
               "' (expected cap/lat)");
        }
      }
      custom_links.push_back(std::move(link));
    } else if (keyword == "latency") {
      std::string op_name;
      std::string value;
      fields >> op_name >> value;
      const std::optional<OpType> op = op_type_by_name(op_name);
      if (!op) {
        fail("unknown operation type '" + op_name + "'");
      }
      try {
        lat[static_cast<std::size_t>(*op)] = parse_nonnegative_int(value);
      } catch (const std::invalid_argument& e) {
        fail(e.what());
      }
    } else if (keyword == "dii") {
      std::string fu_name;
      std::string value;
      fields >> fu_name >> value;
      const std::optional<FuType> fu = fu_type_by_name(fu_name);
      if (!fu) {
        fail("unknown resource type '" + fu_name + "'");
      }
      try {
        dii[static_cast<std::size_t>(*fu)] = parse_nonnegative_int(value);
      } catch (const std::invalid_argument& e) {
        fail(e.what());
      }
    } else {
      fail("unknown keyword '" + keyword + "'");
    }
  }
  if (!clusters) {
    line_number = 0;
    fail("missing 'clusters [i,j|...]' line");
  }
  try {
    const std::string machine_name = name.empty() ? "machine" : name;
    const int num_clusters = static_cast<int>(clusters->size());
    if (!topo_spec.empty()) {
      Topology topo = parse_topology_spec(topo_spec, num_clusters,
                                          topo_cap.value_or(buses), topo_lat);
      return ParsedMachine{machine_name,
                           Datapath(std::move(*clusters), std::move(topo), lat,
                                    dii)};
    }
    if (!custom_links.empty()) {
      Topology topo = Topology::custom(num_clusters, std::move(custom_links));
      return ParsedMachine{machine_name,
                           Datapath(std::move(*clusters), std::move(topo), lat,
                                    dii)};
    }
    return ParsedMachine{machine_name,
                         Datapath(std::move(*clusters), buses, lat, dii)};
  } catch (const std::invalid_argument& e) {
    line_number = 0;
    fail(e.what());
    throw;  // unreachable
  }
}

void write_machine_file(std::ostream& out, const Datapath& dp,
                        const std::string& name) {
  out << "machine " << name << '\n';
  out << "clusters " << dp.to_string() << '\n';
  out << "buses " << dp.num_buses() << '\n';
  // Non-default fabrics round-trip as explicit link lines (the builder
  // arguments are not stored; the re-read topology is an equivalent
  // custom one with identical links and routes).
  if (!dp.topology().is_default_single_bus(dp.num_buses())) {
    for (const TopoLink& link : dp.topology().links()) {
      out << "link " << link.name << ' ';
      for (std::size_t i = 0; i < link.members.size(); ++i) {
        if (i != 0) {
          out << '-';
        }
        out << link.members[i];
      }
      out << " cap " << link.capacity;
      if (link.hop_latency != 0) {
        out << " lat " << link.hop_latency;
      }
      out << '\n';
    }
  }
  for (const OpType op : all_op_types()) {
    if (dp.lat(op) != 1) {
      out << "latency " << op_type_name(op) << ' ' << dp.lat(op) << '\n';
    }
  }
  for (const FuType fu : {FuType::kAlu, FuType::kMult, FuType::kBus}) {
    if (dp.dii(fu) != 1) {
      out << "dii " << fu_type_name(fu) << ' ' << dp.dii(fu) << '\n';
    }
  }
}

}  // namespace cvb
