// Clustered VLIW datapath model (paper Section 2, "Datapath model").
//
// A datapath is a collection of clusters connected through a bus. Each
// cluster has a local register file (assumed unbounded, per the paper)
// and N(c,t) functional units of each FU type t. Every FU reads up to
// two operands from and writes one result to its local register file.
// The bus performs up to N(BUS) simultaneous inter-cluster transfers
// and is modeled as a resource of type FuType::kBus executing
// OpType::kMove operations.
//
// Timing: each operation type has a latency lat(p) (cycles from issue
// to result availability); each resource type has a data introduction
// interval dii(t) (cycles until the resource can accept a new
// operation; dii == 1 means fully pipelined, dii == lat means
// unpipelined).
#pragma once

#include <array>
#include <string>
#include <vector>

#include "graph/analysis.hpp"
#include "machine/isa.hpp"
#include "machine/topology.hpp"

namespace cvb {

/// Cluster identifier: dense index into a Datapath, 0..num_clusters()-1.
using ClusterId = int;

/// Sentinel for "not bound to any cluster" (also used for bus-resident
/// move operations, which live on the interconnect, not in a cluster).
inline constexpr ClusterId kNoCluster = -1;

/// One cluster: FU counts per cluster-resident FU type.
struct Cluster {
  /// fu_count[t] = N(c, t) for t in {kAlu, kMult}.
  std::array<int, kNumClusterFuTypes> fu_count{};

  [[nodiscard]] int count(FuType t) const {
    return fu_count[static_cast<std::size_t>(t)];
  }
};

/// Immutable clustered datapath description.
///
/// Construct directly via the constructor or from the paper's textual
/// form ("[i,j|i,j|...]") via parse_datapath() in machine/parser.hpp.
class Datapath {
 public:
  /// Builds a datapath.
  ///  * `clusters`: per-cluster (#ALU, #MULT) pairs; at least one
  ///    cluster, no negative counts, and each FU type must exist
  ///    somewhere in the datapath (N(t) >= 1 is required only for types
  ///    a DFG actually uses; that is checked at binding time).
  ///  * `num_buses`: N(BUS) >= 1.
  ///  * `lat`: per-operation-type latency table (>= 1 each).
  ///  * `dii`: per-resource-type data introduction interval (>= 1 each).
  /// Throws std::invalid_argument on violations.
  Datapath(std::vector<Cluster> clusters, int num_buses, LatencyTable lat,
           std::array<int, kNumFuTypes> dii);

  /// Generalized-interconnect form: transfers route over `topo` instead
  /// of one shared bus. `topo.num_clusters()` must match
  /// `clusters.size()`; the aggregate N(BUS) becomes the topology's
  /// total link capacity. The legacy constructor is exactly this with
  /// `Topology::single_bus(clusters.size(), num_buses)`.
  Datapath(std::vector<Cluster> clusters, Topology topo, LatencyTable lat,
           std::array<int, kNumFuTypes> dii);

  /// Convenience: unit latencies and fully pipelined resources, with
  /// the move latency overridden to `move_latency` (Table 2 varies it).
  static Datapath uniform(std::vector<Cluster> clusters, int num_buses,
                          int move_latency = 1);

  /// `uniform`, but over an explicit interconnect topology.
  static Datapath uniform_topo(std::vector<Cluster> clusters, Topology topo,
                               int move_latency = 1);

  /// This datapath with the interconnect replaced by `topo` (same
  /// clusters, latencies, and diis). `topo.num_clusters()` must match.
  [[nodiscard]] Datapath with_topology(Topology topo) const {
    return Datapath(clusters_, std::move(topo), lat_, dii_);
  }

  [[nodiscard]] int num_clusters() const {
    return static_cast<int>(clusters_.size());
  }

  /// N(c, t): FUs of type `t` in cluster `c`. `t` must be a cluster FU
  /// type (not kBus).
  [[nodiscard]] int fu_count(ClusterId c, FuType t) const;

  /// N(t): total FUs of type `t` across clusters; for kBus, N(BUS).
  [[nodiscard]] int total_fu_count(FuType t) const;

  /// N(BUS): simultaneous inter-cluster transfers, aggregated across
  /// links (on a single bus, exactly the paper's N(BUS)).
  [[nodiscard]] int num_buses() const { return num_buses_; }

  /// The interconnect fabric. Legacy construction yields
  /// Topology::single_bus(num_clusters(), num_buses()).
  [[nodiscard]] const Topology& topology() const { return topo_; }

  /// Cycles a move op on link `link` takes: the link's hop latency when
  /// set, else lat(move).
  [[nodiscard]] int move_latency_on(int link) const {
    const int hop = topo_.link(link).hop_latency;
    return hop > 0 ? hop : move_latency();
  }

  /// Total transfer latency from cluster `from` to `to` over the
  /// precomputed shortest route (0 when equal). The distance-aware
  /// generalization of lat(move) used by B-INIT's trcost.
  [[nodiscard]] int route_latency(ClusterId from, ClusterId to) const {
    return topo_.route_latency(from, to, move_latency());
  }

  /// lat(p) for an operation type.
  [[nodiscard]] int lat(OpType op) const {
    return lat_[static_cast<std::size_t>(op)];
  }

  /// Latency of the data-transfer operation, lat(move).
  [[nodiscard]] int move_latency() const { return lat(OpType::kMove); }

  /// dii(t) for a resource type.
  [[nodiscard]] int dii(FuType t) const {
    return dii_[static_cast<std::size_t>(t)];
  }

  /// dii of the resource executing operation type `op` (the paper's
  /// dii(v) shorthand, footnote 1).
  [[nodiscard]] int dii_op(OpType op) const { return dii(fu_type_of(op)); }

  /// Full latency table (for graph analyses).
  [[nodiscard]] const LatencyTable& latencies() const { return lat_; }

  /// True if cluster `c` can execute operation type `op`
  /// (N(c, futype(op)) > 0). Moves are not cluster-executable.
  [[nodiscard]] bool supports(ClusterId c, OpType op) const;

  /// Target set TS for an operation type: clusters that can execute it,
  /// in increasing id order. Empty for kMove.
  [[nodiscard]] std::vector<ClusterId> target_set(OpType op) const;

  /// The paper's textual form, e.g. "[1,1|2,1]".
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<Cluster> clusters_;
  int num_buses_;
  Topology topo_;
  LatencyTable lat_;
  std::array<int, kNumFuTypes> dii_;
};

}  // namespace cvb
