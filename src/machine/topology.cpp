#include "machine/topology.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <set>
#include <sstream>
#include <stdexcept>
#include <tuple>

namespace cvb {
namespace {

void require(bool cond, const std::string& msg) {
  if (!cond) throw std::invalid_argument(msg);
}

}  // namespace

const char* topology_kind_name(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kSingleBus:
      return "single_bus";
    case TopologyKind::kRing:
      return "ring";
    case TopologyKind::kMesh:
      return "mesh";
    case TopologyKind::kP2p:
      return "p2p";
    case TopologyKind::kSegmentedBus:
      return "segmented_bus";
    case TopologyKind::kCustom:
      return "custom";
  }
  return "?";
}

Topology::Topology(int num_clusters, std::vector<TopoLink> links,
                   TopologyKind kind)
    : num_clusters_(num_clusters), links_(std::move(links)), kind_(kind) {
  for (TopoLink& l : links_) {
    std::sort(l.members.begin(), l.members.end());
    l.members.erase(std::unique(l.members.begin(), l.members.end()),
                    l.members.end());
  }
  validate();
  compute_routes();
}

Topology Topology::single_bus(int num_clusters, int capacity) {
  require(num_clusters >= 1, "Topology: need at least one cluster");
  std::vector<TopoClusterId> all(static_cast<std::size_t>(num_clusters));
  for (int c = 0; c < num_clusters; ++c) all[static_cast<std::size_t>(c)] = c;
  return Topology(num_clusters, {TopoLink{"BUS", std::move(all), capacity, 0}},
                  TopologyKind::kSingleBus);
}

Topology Topology::ring(int num_clusters, int capacity, int hop_latency) {
  require(num_clusters >= 1, "Topology: need at least one cluster");
  if (num_clusters <= 2) {
    // One or two clusters: the ring collapses to a single shared link
    // (two parallel links between the same pair would double capacity).
    std::vector<TopoClusterId> all(static_cast<std::size_t>(num_clusters));
    for (int c = 0; c < num_clusters; ++c)
      all[static_cast<std::size_t>(c)] = c;
    return Topology(num_clusters,
                    {TopoLink{"r0", std::move(all), capacity, hop_latency}},
                    TopologyKind::kRing);
  }
  std::vector<TopoLink> links;
  links.reserve(static_cast<std::size_t>(num_clusters));
  for (int c = 0; c < num_clusters; ++c) {
    links.push_back(TopoLink{"r" + std::to_string(c),
                             {c, (c + 1) % num_clusters}, capacity,
                             hop_latency});
  }
  return Topology(num_clusters, std::move(links), TopologyKind::kRing);
}

Topology Topology::mesh(int rows, int cols, int capacity, int hop_latency) {
  require(rows >= 1 && cols >= 1, "Topology: mesh needs rows, cols >= 1");
  const int n = rows * cols;
  std::vector<TopoLink> links;
  auto id = [cols](int r, int c) { return r * cols + c; };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c + 1 < cols; ++c) {
      links.push_back(
          TopoLink{"h" + std::to_string(r) + "_" + std::to_string(c),
                   {id(r, c), id(r, c + 1)}, capacity, hop_latency});
    }
  }
  for (int r = 0; r + 1 < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      links.push_back(
          TopoLink{"v" + std::to_string(r) + "_" + std::to_string(c),
                   {id(r, c), id(r + 1, c)}, capacity, hop_latency});
    }
  }
  if (links.empty()) {
    // 1x1 mesh: a single cluster with a degenerate bus.
    links.push_back(TopoLink{"h0_0", {0}, capacity, hop_latency});
  }
  return Topology(n, std::move(links), TopologyKind::kMesh);
}

Topology Topology::p2p(int num_clusters, int capacity, int hop_latency) {
  require(num_clusters >= 1, "Topology: need at least one cluster");
  std::vector<TopoLink> links;
  for (int a = 0; a < num_clusters; ++a) {
    for (int b = a + 1; b < num_clusters; ++b) {
      links.push_back(TopoLink{"p" + std::to_string(a) + "_" +
                                   std::to_string(b),
                               {a, b}, capacity, hop_latency});
    }
  }
  if (links.empty()) links.push_back(TopoLink{"p0_0", {0}, capacity, 0});
  return Topology(num_clusters, std::move(links), TopologyKind::kP2p);
}

Topology Topology::segmented_bus(int num_clusters, int segments, int capacity,
                                 int hop_latency) {
  require(num_clusters >= 1, "Topology: need at least one cluster");
  require(segments >= 1, "Topology: segmented_bus needs segments >= 1");
  require(segments <= num_clusters,
          "Topology: segmented_bus needs segments <= clusters");
  std::vector<TopoLink> links;
  // Near-equal contiguous segments: the first (num_clusters % segments)
  // segments get one extra cluster.
  const int base = num_clusters / segments;
  const int extra = num_clusters % segments;
  int start = 0;
  std::vector<int> seg_start, seg_end;  // inclusive ranges
  for (int s = 0; s < segments; ++s) {
    const int size = base + (s < extra ? 1 : 0);
    seg_start.push_back(start);
    seg_end.push_back(start + size - 1);
    std::vector<TopoClusterId> members;
    for (int c = start; c < start + size; ++c) members.push_back(c);
    // A one-cluster segment (uneven split) has no internal transfers;
    // its bridge link is the segment's only fabric. The one-segment
    // whole-machine bus is kept even for a single cluster so the
    // datapath retains transfer capacity.
    if (size >= 2 || segments == 1) {
      links.push_back(TopoLink{"seg" + std::to_string(s), std::move(members),
                               capacity, hop_latency});
    }
    start += size;
  }
  for (int s = 0; s + 1 < segments; ++s) {
    links.push_back(TopoLink{"bridge" + std::to_string(s),
                             {seg_end[static_cast<std::size_t>(s)],
                              seg_start[static_cast<std::size_t>(s + 1)]},
                             capacity, hop_latency});
  }
  return Topology(num_clusters, std::move(links),
                  segments == 1 ? TopologyKind::kSingleBus
                                : TopologyKind::kSegmentedBus);
}

Topology Topology::custom(int num_clusters, std::vector<TopoLink> links) {
  return Topology(num_clusters, std::move(links), TopologyKind::kCustom);
}

bool Topology::is_single_bus() const {
  return num_links() == 1 &&
         static_cast<int>(links_[0].members.size()) == num_clusters_;
}

bool Topology::is_default_single_bus(int num_buses) const {
  return is_single_bus() && links_[0].capacity == num_buses &&
         links_[0].hop_latency == 0 && links_[0].name == "BUS";
}

int Topology::total_capacity() const {
  int total = 0;
  for (const TopoLink& l : links_) total += l.capacity;
  return total;
}

const std::vector<RouteStep>& Topology::route(TopoClusterId from,
                                              TopoClusterId to) const {
  return routes_[pair_index(from, to)];
}

int Topology::route_latency(TopoClusterId from, TopoClusterId to,
                            int inherited_latency) const {
  int total = 0;
  for (const RouteStep& step : route(from, to)) {
    const int hop = links_[static_cast<std::size_t>(step.link)].hop_latency;
    total += hop > 0 ? hop : inherited_latency;
  }
  return total;
}

int Topology::max_route_latency(int inherited_latency) const {
  int worst = inherited_latency;
  for (int a = 0; a < num_clusters_; ++a) {
    for (int b = 0; b < num_clusters_; ++b) {
      worst = std::max(worst, route_latency(a, b, inherited_latency));
    }
  }
  return worst;
}

std::string Topology::to_string() const {
  std::ostringstream os;
  os << topology_kind_name(kind_) << "(" << num_clusters_;
  for (const TopoLink& l : links_) {
    os << ";" << l.name << ":";
    for (std::size_t i = 0; i < l.members.size(); ++i) {
      if (i) os << "-";
      os << l.members[i];
    }
    os << ",cap=" << l.capacity;
    if (l.hop_latency > 0) os << ",lat=" << l.hop_latency;
  }
  os << ")";
  return os.str();
}

void Topology::validate() const {
  require(num_clusters_ >= 1, "Topology: need at least one cluster");
  require(!links_.empty(), "Topology: need at least one link");
  std::set<std::string> names;
  for (const TopoLink& l : links_) {
    require(!l.name.empty(), "Topology: link name must be non-empty");
    require(names.insert(l.name).second,
            "Topology: duplicate link name '" + l.name + "'");
    require(l.capacity >= 1,
            "Topology: link '" + l.name + "' capacity must be >= 1 (got " +
                std::to_string(l.capacity) + ")");
    require(l.hop_latency >= 0,
            "Topology: link '" + l.name + "' hop latency must be >= 0");
    require(!l.members.empty(),
            "Topology: link '" + l.name + "' has no member clusters");
    for (TopoClusterId c : l.members) {
      require(c >= 0 && c < num_clusters_,
              "Topology: link '" + l.name + "' references cluster " +
                  std::to_string(c) + " outside [0, " +
                  std::to_string(num_clusters_) + ")");
    }
    if (num_clusters_ > 1) {
      require(l.members.size() >= 2,
              "Topology: link '" + l.name + "' must join >= 2 clusters");
    }
  }
}

void Topology::compute_routes() {
  routes_.assign(static_cast<std::size_t>(num_clusters_) *
                     static_cast<std::size_t>(num_clusters_),
                 {});
  // Adjacency: for each cluster, the (link, neighbor) pairs, sorted by
  // (neighbor, link) so relaxation order is deterministic.
  struct Arc {
    TopoClusterId to;
    int link;
    int weight;
  };
  std::vector<std::vector<Arc>> adj(
      static_cast<std::size_t>(num_clusters_));
  for (int li = 0; li < num_links(); ++li) {
    const TopoLink& l = links_[static_cast<std::size_t>(li)];
    const int w = l.hop_latency > 0 ? l.hop_latency : 1;
    for (TopoClusterId a : l.members) {
      for (TopoClusterId b : l.members) {
        if (a == b) continue;
        adj[static_cast<std::size_t>(a)].push_back(Arc{b, li, w});
      }
    }
  }
  for (auto& arcs : adj) {
    std::sort(arcs.begin(), arcs.end(), [](const Arc& x, const Arc& y) {
      return std::tie(x.to, x.link) < std::tie(y.to, y.link);
    });
  }

  const long long kInf = std::numeric_limits<long long>::max() / 4;
  for (int src = 0; src < num_clusters_; ++src) {
    // Dijkstra with deterministic tie-breaking: minimize (weight, hops,
    // predecessor cluster, predecessor link) lexicographically.
    const auto n = static_cast<std::size_t>(num_clusters_);
    std::vector<long long> dist(n, kInf);
    std::vector<int> hops(n, std::numeric_limits<int>::max());
    std::vector<TopoClusterId> pred(n, -1);
    std::vector<int> pred_link(n, -1);
    dist[static_cast<std::size_t>(src)] = 0;
    hops[static_cast<std::size_t>(src)] = 0;
    using QItem = std::tuple<long long, int, TopoClusterId>;
    std::priority_queue<QItem, std::vector<QItem>, std::greater<QItem>> pq;
    pq.emplace(0, 0, src);
    while (!pq.empty()) {
      auto [d, h, u] = pq.top();
      pq.pop();
      const auto ui = static_cast<std::size_t>(u);
      if (d != dist[ui] || h != hops[ui]) continue;
      for (const Arc& arc : adj[ui]) {
        const auto vi = static_cast<std::size_t>(arc.to);
        const long long nd = d + arc.weight;
        const int nh = h + 1;
        const auto cand = std::make_tuple(nd, nh, u, arc.link);
        const auto cur =
            std::make_tuple(dist[vi], hops[vi], pred[vi], pred_link[vi]);
        if (cand < cur) {
          dist[vi] = nd;
          hops[vi] = nh;
          pred[vi] = u;
          pred_link[vi] = arc.link;
          pq.emplace(nd, nh, arc.to);
        }
      }
    }
    for (int dst = 0; dst < num_clusters_; ++dst) {
      if (dst == src) continue;
      require(dist[static_cast<std::size_t>(dst)] < kInf,
              "Topology: cluster " + std::to_string(dst) +
                  " unreachable from cluster " + std::to_string(src));
      std::vector<RouteStep> path;
      for (TopoClusterId v = dst; v != src;
           v = pred[static_cast<std::size_t>(v)]) {
        path.push_back(RouteStep{pred_link[static_cast<std::size_t>(v)], v});
      }
      std::reverse(path.begin(), path.end());
      routes_[pair_index(src, dst)] = std::move(path);
    }
  }
}

}  // namespace cvb
