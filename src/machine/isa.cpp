#include "machine/isa.hpp"

namespace cvb {

std::string_view op_type_name(OpType op) {
  switch (op) {
    case OpType::kAdd:
      return "add";
    case OpType::kSub:
      return "sub";
    case OpType::kNeg:
      return "neg";
    case OpType::kShift:
      return "shl";
    case OpType::kAnd:
      return "and";
    case OpType::kOr:
      return "or";
    case OpType::kXor:
      return "xor";
    case OpType::kCmp:
      return "cmp";
    case OpType::kMul:
      return "mul";
    case OpType::kMac:
      return "mac";
    case OpType::kMove:
      return "mov";
  }
  return "?";
}

std::string_view fu_type_name(FuType fu) {
  switch (fu) {
    case FuType::kAlu:
      return "ALU";
    case FuType::kMult:
      return "MULT";
    case FuType::kBus:
      return "BUS";
  }
  return "?";
}

const std::array<OpType, kNumOpTypes>& all_op_types() {
  static const std::array<OpType, kNumOpTypes> kAll = {
      OpType::kAdd,   OpType::kSub, OpType::kNeg, OpType::kShift,
      OpType::kAnd,   OpType::kOr,  OpType::kXor, OpType::kCmp,
      OpType::kMul,   OpType::kMac, OpType::kMove,
  };
  return kAll;
}

}  // namespace cvb
