// Pipeline expansion: turns a modulo-scheduled kernel into a flat,
// fully verified schedule of N overlapped iterations — the
// prologue / steady-state / epilogue structure a code generator emits.
//
// Iteration i's copy of operation v starts at cycle
// start(v) + i * II; a distance-d dependence (u -> v, d) becomes an
// ordinary edge from iteration i-d's copy of u to iteration i's copy
// of v (dependences reaching before iteration 0 read the loop's
// live-in state and disappear). The expansion is returned as a
// BoundDfg + Schedule pair, so the standard schedule verifier proves
// the pipelining correct, and the total latency follows the closed
// form (N-1)*II + makespan.
#pragma once

#include "bind/bound_dfg.hpp"
#include "machine/datapath.hpp"
#include "modulo/modulo_scheduler.hpp"
#include "sched/schedule.hpp"

namespace cvb {

/// A flattened pipelined loop.
struct ExpandedPipeline {
  BoundDfg flat;      ///< N copies of the kernel, cross-iteration edges
  Schedule schedule;  ///< starts of every copy; latency = (N-1)*II + span
  int iterations = 0;
  int ii = 0;
};

/// Expands `result` over `iterations` >= 1 copies. Throws
/// std::invalid_argument on a non-positive count.
[[nodiscard]] ExpandedPipeline expand_pipeline(const ModuloResult& result,
                                               const Datapath& dp,
                                               int iterations);

/// Closed-form latency of executing `iterations` iterations with the
/// pipelined kernel: (iterations - 1) * II + kernel makespan.
[[nodiscard]] int pipelined_latency(const ModuloResult& result,
                                    const Datapath& dp, int iterations);

}  // namespace cvb
