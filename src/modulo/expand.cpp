#include "modulo/expand.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/analysis.hpp"

namespace cvb {

namespace {

int kernel_makespan(const ModuloResult& result, const LatencyTable& lat) {
  int makespan = 0;
  for (OpId v = 0; v < result.kernel.num_ops(); ++v) {
    makespan = std::max(makespan,
                        result.start[static_cast<std::size_t>(v)] +
                            lat_of(lat, result.kernel.type(v)));
  }
  return makespan;
}

}  // namespace

int pipelined_latency(const ModuloResult& result, const Datapath& dp,
                      int iterations) {
  if (iterations < 1) {
    throw std::invalid_argument("pipelined_latency: iterations >= 1");
  }
  return (iterations - 1) * result.ii +
         kernel_makespan(result, dp.latencies());
}

ExpandedPipeline expand_pipeline(const ModuloResult& result,
                                 const Datapath& dp, int iterations) {
  if (iterations < 1) {
    throw std::invalid_argument("expand_pipeline: iterations >= 1");
  }
  const CyclicDfg& kernel = result.kernel;
  const int n = kernel.num_ops();

  ExpandedPipeline out;
  out.iterations = iterations;
  out.ii = result.ii;

  // Copies of every op per iteration: moves are appended per-iteration
  // too, but BoundDfg expects moves *after* all regular ops, so we
  // first lay out all regular copies, then all move copies.
  const int regular = n - result.num_moves;
  const auto flat_id = [&](OpId v, int iteration) -> OpId {
    if (v < regular) {
      return iteration * regular + v;
    }
    return iterations * regular + iteration * result.num_moves +
           (v - regular);
  };

  for (int i = 0; i < iterations; ++i) {
    for (OpId v = 0; v < regular; ++v) {
      out.flat.graph.add_op(kernel.type(v),
                            kernel.name(v) + "#" + std::to_string(i));
      out.flat.place.push_back(result.place[static_cast<std::size_t>(v)]);
    }
  }
  for (int i = 0; i < iterations; ++i) {
    for (OpId v = regular; v < n; ++v) {
      out.flat.graph.add_op(kernel.type(v),
                            kernel.name(v) + "#" + std::to_string(i));
      out.flat.place.push_back(kNoCluster);
      out.flat.move_producer.push_back(kNoOp);  // filled below
      out.flat.move_dest.push_back(kNoCluster);
      out.flat.move_link.push_back(0);  // modulo stays on the single bus
      ++out.flat.num_moves;
    }
  }

  // Edges: distance-d dependences connect iteration i-d to iteration i.
  for (const LoopEdge& e : kernel.edges()) {
    for (int i = 0; i < iterations; ++i) {
      const int src_iter = i - e.distance;
      if (src_iter < 0) {
        continue;  // reads pre-loop state (live-in)
      }
      out.flat.graph.add_edge(flat_id(e.from, src_iter), flat_id(e.to, i));
    }
  }
  // Move bookkeeping for the verifier: producer/destination per copy.
  for (int i = 0; i < iterations; ++i) {
    for (OpId v = regular; v < n; ++v) {
      const OpId copy = flat_id(v, i);
      const int mi = copy - iterations * regular;
      // The destination cluster is where the move's consumers live; all
      // consumers of a shared move are on one cluster by construction.
      ClusterId dest = kNoCluster;
      for (const OpId s : out.flat.graph.succs(copy)) {
        dest = out.flat.place[static_cast<std::size_t>(s)];
      }
      out.flat.move_dest[static_cast<std::size_t>(mi)] = dest;
      const auto preds = out.flat.graph.preds(copy);
      out.flat.move_producer[static_cast<std::size_t>(mi)] =
          preds.empty() ? kNoOp : preds.front();
    }
  }

  // Starts: kernel start + iteration * II.
  out.schedule.start.assign(
      static_cast<std::size_t>(out.flat.graph.num_ops()), -1);
  for (int i = 0; i < iterations; ++i) {
    for (OpId v = 0; v < n; ++v) {
      out.schedule.start[static_cast<std::size_t>(flat_id(v, i))] =
          result.start[static_cast<std::size_t>(v)] + i * result.ii;
    }
  }
  out.schedule.num_moves = out.flat.num_moves;
  out.schedule.latency = 0;
  for (OpId v = 0; v < out.flat.graph.num_ops(); ++v) {
    out.schedule.latency =
        std::max(out.schedule.latency,
                 out.schedule.start[static_cast<std::size_t>(v)] +
                     lat_of(dp.latencies(), out.flat.graph.type(v)));
  }
  return out;
}

}  // namespace cvb
