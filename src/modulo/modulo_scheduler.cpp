#include "modulo/modulo_scheduler.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <tuple>

#include "graph/analysis.hpp"
#include "modulo/mii.hpp"

namespace cvb {

namespace {

/// Modulo reservation table for one resource pool.
class Mrt {
 public:
  Mrt(int capacity, int dii, int ii)
      : capacity_(capacity), dii_(dii),
        slots_(static_cast<std::size_t>(ii), 0) {}

  /// True if an issue at absolute time `t` fits (occupying dii
  /// consecutive modulo slots).
  [[nodiscard]] bool fits(int t) const {
    const int ii = static_cast<int>(slots_.size());
    for (int k = 0; k < std::min(dii_, ii); ++k) {
      if (slots_[static_cast<std::size_t>((t + k) % ii)] >= capacity_) {
        return false;
      }
    }
    return true;
  }

  void reserve(int t) {
    const int ii = static_cast<int>(slots_.size());
    for (int k = 0; k < std::min(dii_, ii); ++k) {
      ++slots_[static_cast<std::size_t>((t + k) % ii)];
    }
  }

 private:
  int capacity_;
  int dii_;
  std::vector<int> slots_;
};

/// Builds the bound kernel: loop ops plus moves for cross-cluster
/// dependences, one move per (producer, destination cluster, distance).
struct BoundKernel {
  CyclicDfg kernel;
  std::vector<ClusterId> place;
  int num_moves = 0;
};

BoundKernel build_bound_kernel(const CyclicDfg& loop, const Datapath& dp,
                               const Binding& binding) {
  require_valid_binding(loop.body(), binding, dp);
  BoundKernel out;
  for (OpId v = 0; v < loop.num_ops(); ++v) {
    out.kernel.add_op(loop.type(v), loop.name(v));
    out.place.push_back(binding[static_cast<std::size_t>(v)]);
  }
  std::map<std::tuple<OpId, ClusterId, int>, OpId> move_of;
  for (const LoopEdge& e : loop.edges()) {
    const ClusterId cu = binding[static_cast<std::size_t>(e.from)];
    const ClusterId cv = binding[static_cast<std::size_t>(e.to)];
    if (cu == cv) {
      out.kernel.add_edge(e.from, e.to, e.distance);
      continue;
    }
    const auto key = std::make_tuple(e.from, cv, e.distance);
    auto it = move_of.find(key);
    if (it == move_of.end()) {
      const OpId m = out.kernel.add_op(
          OpType::kMove, "t" + std::to_string(out.num_moves + 1));
      out.place.push_back(kNoCluster);
      ++out.num_moves;
      out.kernel.add_edge(e.from, m, e.distance);
      it = move_of.emplace(key, m).first;
    }
    // The move may already exist; the (move -> consumer) edge can still
    // be new for this consumer.
    out.kernel.add_edge(it->second, e.to, 0);
  }
  return out;
}

}  // namespace

ModuloResult modulo_schedule(const CyclicDfg& loop, const Datapath& dp,
                             const Binding& binding,
                             const ModuloParams& params) {
  if (loop.num_ops() == 0) {
    throw std::invalid_argument("modulo_schedule: empty loop");
  }
  BoundKernel bound = build_bound_kernel(loop, dp, binding);
  const CyclicDfg& kernel = bound.kernel;
  const LatencyTable& lat = dp.latencies();
  const int n = kernel.num_ops();

  // Lower bound: the loop's MII plus the bus pressure of the moves.
  int mii = minimum_ii(loop, dp);
  const int bus_mii =
      (bound.num_moves * dp.dii(FuType::kBus) + dp.num_buses() - 1) /
      dp.num_buses();
  mii = std::max(mii, std::max(1, bus_mii));

  // Modulo-ASAP for a candidate II: longest-path earliest starts over
  // *all* edges with weight lat(from) - II*distance (Bellman-Ford).
  // This is what keeps recurrence consumers from being placed before
  // their deadline window even opens. Returns false if some cycle still
  // has positive weight (II below this kernel's recurrence bound, which
  // can exceed the loop's RecMII once moves join a recurrence).
  const auto modulo_asap = [&](int ii, std::vector<int>& estart) {
    estart.assign(static_cast<std::size_t>(n), 0);
    for (int round = 0; round <= n; ++round) {
      bool relaxed = false;
      for (const LoopEdge& e : kernel.edges()) {
        const int w = lat_of(lat, kernel.type(e.from)) - ii * e.distance;
        const int candidate = estart[static_cast<std::size_t>(e.from)] + w;
        if (candidate > estart[static_cast<std::size_t>(e.to)]) {
          estart[static_cast<std::size_t>(e.to)] = candidate;
          relaxed = true;
        }
      }
      if (!relaxed) {
        return true;
      }
    }
    return false;  // positive cycle: II infeasible for this kernel
  };

  // Incoming and outgoing edges per op: scheduled producers give a
  // lower bound on the start; scheduled consumers (reachable through
  // back edges placed earlier in ALAP order) give an upper bound, which
  // is what keeps recurrence-critical ops inside their deadline.
  std::vector<std::vector<const LoopEdge*>> in(static_cast<std::size_t>(n));
  std::vector<std::vector<const LoopEdge*>> out_edges(
      static_cast<std::size_t>(n));
  for (const LoopEdge& e : kernel.edges()) {
    in[static_cast<std::size_t>(e.to)].push_back(&e);
    out_edges[static_cast<std::size_t>(e.from)].push_back(&e);
  }

  for (int ii = mii; ii <= params.max_ii; ++ii) {
    std::vector<int> estart;
    if (!modulo_asap(ii, estart)) {
      continue;  // moves on a recurrence made this II infeasible
    }
    // Placement order: modulo-ASAP ascending (topological for
    // distance-0 edges), then id for determinism.
    std::vector<OpId> order(static_cast<std::size_t>(n));
    for (OpId v = 0; v < n; ++v) {
      order[static_cast<std::size_t>(v)] = v;
    }
    std::sort(order.begin(), order.end(), [&](OpId a, OpId b) {
      return std::make_pair(estart[static_cast<std::size_t>(a)], a) <
             std::make_pair(estart[static_cast<std::size_t>(b)], b);
    });

    // One MRT per (cluster, FU type) pool plus the bus.
    std::vector<Mrt> pools;
    for (ClusterId c = 0; c < dp.num_clusters(); ++c) {
      for (int ti = 0; ti < kNumClusterFuTypes; ++ti) {
        pools.emplace_back(dp.fu_count(c, static_cast<FuType>(ti)),
                           dp.dii(static_cast<FuType>(ti)), ii);
      }
    }
    pools.emplace_back(dp.num_buses(), dp.dii(FuType::kBus), ii);
    const auto pool_of = [&](OpId v) -> Mrt& {
      const FuType t = fu_type_of(kernel.type(v));
      if (t == FuType::kBus) {
        return pools.back();
      }
      const ClusterId c = bound.place[static_cast<std::size_t>(v)];
      return pools[static_cast<std::size_t>(c * kNumClusterFuTypes +
                                            static_cast<int>(t))];
    };

    std::vector<int> start(static_cast<std::size_t>(n), -1);
    bool placed_all = true;
    for (const OpId v : order) {
      int t0 = estart[static_cast<std::size_t>(v)];
      for (const LoopEdge* e : in[static_cast<std::size_t>(v)]) {
        const int su = start[static_cast<std::size_t>(e->from)];
        if (su >= 0) {
          t0 = std::max(t0, su + lat_of(lat, kernel.type(e->from)) -
                                ii * e->distance);
        }
      }
      t0 = std::max(t0, 0);
      int deadline = t0 + ii - 1;
      for (const LoopEdge* e : out_edges[static_cast<std::size_t>(v)]) {
        const int sw = start[static_cast<std::size_t>(e->to)];
        if (sw >= 0) {
          deadline = std::min(deadline, sw - lat_of(lat, kernel.type(v)) +
                                            ii * e->distance);
        }
      }
      Mrt& pool = pool_of(v);
      bool placed = false;
      for (int t = t0; t <= deadline; ++t) {
        if (pool.fits(t)) {
          pool.reserve(t);
          start[static_cast<std::size_t>(v)] = t;
          placed = true;
          break;
        }
      }
      if (!placed) {
        placed_all = false;
        break;
      }
    }
    if (!placed_all) {
      continue;
    }

    // Back-edge feasibility (edges into ops placed before their
    // producers were only partially constrained above).
    bool legal = true;
    for (const LoopEdge& e : kernel.edges()) {
      if (start[static_cast<std::size_t>(e.to)] <
          start[static_cast<std::size_t>(e.from)] +
              lat_of(lat, kernel.type(e.from)) - ii * e.distance) {
        legal = false;
        break;
      }
    }
    if (!legal) {
      continue;
    }

    ModuloResult result;
    result.ii = ii;
    result.mii = mii;
    result.kernel = bound.kernel;
    result.place = bound.place;
    result.start = std::move(start);
    result.num_moves = bound.num_moves;
    int makespan = 0;
    for (OpId v = 0; v < n; ++v) {
      makespan = std::max(makespan, result.start[static_cast<std::size_t>(v)] +
                                        lat_of(lat, kernel.type(v)));
    }
    result.stages = (makespan + ii - 1) / ii;
    return result;
  }
  throw std::invalid_argument("modulo_schedule: no II up to " +
                              std::to_string(params.max_ii) + " succeeded");
}

ModuloResult software_pipeline(const CyclicDfg& loop, const Datapath& dp,
                               const DriverParams& driver,
                               const ModuloParams& params) {
  const Dfg body = loop.body();
  const BindResult bound = bind_full(body, dp, driver);
  return modulo_schedule(loop, dp, bound.binding, params);
}

std::string verify_modulo_schedule(const ModuloResult& result,
                                   const Datapath& dp) {
  const CyclicDfg& kernel = result.kernel;
  const LatencyTable& lat = dp.latencies();
  const int n = kernel.num_ops();
  if (result.ii < 1) {
    return "non-positive II";
  }
  if (static_cast<int>(result.start.size()) != n ||
      static_cast<int>(result.place.size()) != n) {
    return "start/place size mismatch";
  }
  for (OpId v = 0; v < n; ++v) {
    if (result.start[static_cast<std::size_t>(v)] < 0) {
      return "op " + kernel.name(v) + " unscheduled";
    }
    const FuType t = fu_type_of(kernel.type(v));
    const ClusterId c = result.place[static_cast<std::size_t>(v)];
    if (t == FuType::kBus) {
      if (c != kNoCluster) {
        return "move " + kernel.name(v) + " placed on a cluster";
      }
    } else if (c < 0 || c >= dp.num_clusters() || dp.fu_count(c, t) == 0) {
      return "op " + kernel.name(v) + " placed infeasibly";
    }
  }
  for (const LoopEdge& e : kernel.edges()) {
    if (result.start[static_cast<std::size_t>(e.to)] <
        result.start[static_cast<std::size_t>(e.from)] +
            lat_of(lat, kernel.type(e.from)) - result.ii * e.distance) {
      return "dependence " + kernel.name(e.from) + " -> " +
             kernel.name(e.to) + " violated";
    }
  }
  // Modulo resource windows.
  std::map<std::pair<ClusterId, FuType>, std::vector<int>> slots;
  for (OpId v = 0; v < n; ++v) {
    const FuType t = fu_type_of(kernel.type(v));
    const ClusterId c =
        (t == FuType::kBus) ? kNoCluster
                            : result.place[static_cast<std::size_t>(v)];
    auto& table = slots[{c, t}];
    if (table.empty()) {
      table.assign(static_cast<std::size_t>(result.ii), 0);
    }
    const int dii = std::min(dp.dii(t), result.ii);
    for (int k = 0; k < dii; ++k) {
      ++table[static_cast<std::size_t>(
          (result.start[static_cast<std::size_t>(v)] + k) % result.ii)];
    }
  }
  for (const auto& [key, table] : slots) {
    const auto [c, t] = key;
    const int capacity =
        (t == FuType::kBus) ? dp.num_buses() : dp.fu_count(c, t);
    for (int s = 0; s < result.ii; ++s) {
      if (table[static_cast<std::size_t>(s)] > capacity) {
        return std::string(fu_type_name(t)) + " pool oversubscribed at slot " +
               std::to_string(s);
      }
    }
  }
  return {};
}

}  // namespace cvb
