#include "modulo/loop_kernels.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "kernels/kernels.hpp"

namespace cvb {

CyclicDfg make_random_loop(const RandomLoopParams& params, Rng& rng) {
  if (params.num_ops < 2) {
    throw std::invalid_argument("make_random_loop: num_ops >= 2");
  }
  RandomDagParams body_params;
  body_params.num_ops = params.num_ops;
  body_params.num_layers = std::min(params.num_layers, params.num_ops);
  body_params.mul_fraction = params.mul_fraction;
  const Dfg body = make_random_layered(body_params, rng);

  CyclicDfg loop;
  for (OpId v = 0; v < body.num_ops(); ++v) {
    loop.add_op(body.type(v), body.name(v));
  }
  for (OpId v = 0; v < body.num_ops(); ++v) {
    for (const OpId s : body.succs(v)) {
      loop.add_edge(v, s, 0);
    }
  }
  for (int i = 0; i < params.back_edges; ++i) {
    const OpId from = rng.uniform_int(0, params.num_ops - 1);
    const OpId to = rng.uniform_int(0, params.num_ops - 1);
    const int distance = rng.uniform_int(1, std::max(1, params.max_distance));
    const bool duplicate = std::any_of(
        loop.edges().begin(), loop.edges().end(), [&](const LoopEdge& e) {
          return e.from == from && e.to == to && e.distance == distance;
        });
    if (!duplicate) {
      loop.add_edge(from, to, distance);  // distance >= 1: always legal
    }
  }
  loop.validate();
  return loop;
}

CyclicDfg make_dot_product_loop(int lanes) {
  if (lanes < 1) {
    throw std::invalid_argument("make_dot_product_loop: lanes >= 1");
  }
  CyclicDfg loop;
  for (int lane = 0; lane < lanes; ++lane) {
    const std::string suffix = std::to_string(lane);
    const OpId p = loop.add_op(OpType::kMul, "p" + suffix);
    const OpId acc = loop.add_op(OpType::kAdd, "acc" + suffix);
    loop.add_edge(p, acc, 0);
    loop.add_edge(acc, acc, 1);  // carried partial sum
  }
  return loop;
}

CyclicDfg make_iir_biquad_loop() {
  CyclicDfg loop;
  const OpId m0 = loop.add_op(OpType::kMul, "b0x");
  const OpId m1 = loop.add_op(OpType::kMul, "b1x1");
  const OpId m2 = loop.add_op(OpType::kMul, "b2x2");
  const OpId m3 = loop.add_op(OpType::kMul, "a1y1");
  const OpId m4 = loop.add_op(OpType::kMul, "a2y2");
  const OpId s0 = loop.add_op(OpType::kAdd, "s0");  // b0x + b1x1
  const OpId s1 = loop.add_op(OpType::kAdd, "s1");  // s0 + b2x2
  const OpId s2 = loop.add_op(OpType::kSub, "s2");  // s1 - a1y1
  const OpId y = loop.add_op(OpType::kSub, "y");    // s2 - a2y2
  loop.add_edge(m0, s0, 0);
  loop.add_edge(m1, s0, 0);
  loop.add_edge(m2, s1, 0);
  loop.add_edge(s0, s1, 0);
  loop.add_edge(m3, s2, 0);
  loop.add_edge(s1, s2, 0);
  loop.add_edge(m4, y, 0);
  loop.add_edge(s2, y, 0);
  // Feedback: the multipliers read y delayed by one / two iterations.
  loop.add_edge(y, m3, 1);
  loop.add_edge(y, m4, 2);
  return loop;
}

CyclicDfg make_complex_mac_loop() {
  CyclicDfg loop;
  const OpId mrr = loop.add_op(OpType::kMul, "xr_yr");
  const OpId mii = loop.add_op(OpType::kMul, "xi_yi");
  const OpId mri = loop.add_op(OpType::kMul, "xr_yi");
  const OpId mir = loop.add_op(OpType::kMul, "xi_yr");
  const OpId pr = loop.add_op(OpType::kSub, "pr");  // xr*yr - xi*yi
  const OpId pi = loop.add_op(OpType::kAdd, "pi");  // xr*yi + xi*yr
  const OpId ar = loop.add_op(OpType::kAdd, "ar");  // ar += pr
  const OpId ai = loop.add_op(OpType::kAdd, "ai");  // ai += pi
  loop.add_edge(mrr, pr, 0);
  loop.add_edge(mii, pr, 0);
  loop.add_edge(mri, pi, 0);
  loop.add_edge(mir, pi, 0);
  loop.add_edge(pr, ar, 0);
  loop.add_edge(pi, ai, 0);
  loop.add_edge(ar, ar, 1);
  loop.add_edge(ai, ai, 1);
  return loop;
}

CyclicDfg make_lattice_stage_loop(int stages) {
  if (stages < 1) {
    throw std::invalid_argument("make_lattice_stage_loop: stages >= 1");
  }
  CyclicDfg loop;
  OpId prev_u = kNoOp;
  for (int s = 0; s < stages; ++s) {
    const std::string suffix = std::to_string(s);
    const OpId kw = loop.add_op(OpType::kMul, "kw" + suffix);
    const OpId u = loop.add_op(OpType::kAdd, "u" + suffix);
    const OpId ku = loop.add_op(OpType::kMul, "ku" + suffix);
    const OpId w = loop.add_op(OpType::kSub, "w" + suffix);
    loop.add_edge(kw, u, 0);
    if (prev_u != kNoOp) {
      loop.add_edge(prev_u, u, 0);  // cascade through the stages
    }
    loop.add_edge(u, ku, 0);
    loop.add_edge(ku, w, 0);
    loop.add_edge(w, kw, 1);  // w1 (delayed state) feeds k*w1
    loop.add_edge(w, w, 1);   // state register update
    prev_u = u;
  }
  return loop;
}

}  // namespace cvb
