// Minimum initiation interval (MII) bounds for modulo scheduling:
//
//  * ResMII — resource-constrained bound: for each FU type t,
//    ceil(|ops(t)| * dii(t) / N(t)); the bus is excluded because
//    transfer count depends on the binding.
//  * RecMII — recurrence-constrained bound: the smallest II such that
//    no dependence cycle C has sum(lat) over C > II * sum(distance)
//    over C. Found by scanning II upward with a positive-cycle check
//    (Bellman-Ford longest path on edge weights lat(u) - II*distance).
#pragma once

#include "machine/datapath.hpp"
#include "modulo/cyclic_dfg.hpp"

namespace cvb {

/// Resource MII (>= 1 for non-empty graphs).
[[nodiscard]] int resource_mii(const CyclicDfg& loop, const Datapath& dp);

/// Recurrence MII (>= 1). Throws std::invalid_argument if some cycle
/// has zero total distance (which validate() already rejects via the
/// acyclic-body requirement).
[[nodiscard]] int recurrence_mii(const CyclicDfg& loop,
                                 const LatencyTable& lat);

/// max(ResMII, RecMII).
[[nodiscard]] int minimum_ii(const CyclicDfg& loop, const Datapath& dp);

}  // namespace cvb
