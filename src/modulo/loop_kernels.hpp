// Cyclic loop kernels for the software-pipelining extension: classic
// DSP inner loops with genuine loop-carried dependences (accumulators,
// IIR feedback), expressed as CyclicDfg graphs.
#pragma once

#include "modulo/cyclic_dfg.hpp"

namespace cvb {

/// Dot-product / MAC loop: p = x*y; acc = acc + p, with the accumulator
/// carried across iterations (distance-1 self dependence on the add).
/// `lanes` independent accumulators (partial sums) model unrolled
/// reductions. Requires lanes >= 1.
[[nodiscard]] CyclicDfg make_dot_product_loop(int lanes = 1);

/// Biquad IIR section: y = b0*x + b1*x1 + b2*x2 - a1*y1 - a2*y2, where
/// y1/y2 are y delayed by one/two iterations (distance 1 and 2 edges
/// back from the final subtract). 5 muls, 4 adds/subs.
[[nodiscard]] CyclicDfg make_iir_biquad_loop();

/// Complex multiply-accumulate loop (radar/comms kernel):
/// (ar,ai) += (xr,xi)*(yr,yi): 4 muls, 2 add/subs, 2 carried
/// accumulators.
[[nodiscard]] CyclicDfg make_complex_mac_loop();

/// First-order lattice/AR stage with cross-coupled carried state:
/// u = x + k*w1; w = w1 - k*u  (w1 = w delayed one iteration).
[[nodiscard]] CyclicDfg make_lattice_stage_loop(int stages = 2);

}  // namespace cvb

#include "support/rng.hpp"

namespace cvb {

/// Random loop generator for property tests: a random layered acyclic
/// body plus `back_edges` random loop-carried dependences with
/// distances in [1, max_distance]. Always valid (the body stays
/// acyclic). Requires num_ops >= 2.
struct RandomLoopParams {
  int num_ops = 10;
  int num_layers = 3;
  double mul_fraction = 0.4;
  int back_edges = 2;
  int max_distance = 2;
};

[[nodiscard]] CyclicDfg make_random_loop(const RandomLoopParams& params,
                                         Rng& rng);

}  // namespace cvb
