#include "modulo/mii.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "graph/analysis.hpp"

namespace cvb {

int resource_mii(const CyclicDfg& loop, const Datapath& dp) {
  int mii = 1;
  for (int ti = 0; ti < kNumClusterFuTypes; ++ti) {
    const FuType t = static_cast<FuType>(ti);
    int ops = 0;
    for (OpId v = 0; v < loop.num_ops(); ++v) {
      if (fu_type_of(loop.type(v)) == t) {
        ++ops;
      }
    }
    if (ops == 0) {
      continue;
    }
    const int units = dp.total_fu_count(t);
    if (units == 0) {
      throw std::invalid_argument("resource_mii: datapath has no " +
                                  std::string(fu_type_name(t)));
    }
    const int dii = dp.dii(t);
    mii = std::max(mii, (ops * dii + units - 1) / units);
  }
  return mii;
}

namespace {

/// True if, for the given II, some dependence cycle has positive total
/// weight lat(u) - II * distance — i.e. the recurrence cannot close.
bool has_positive_cycle(const CyclicDfg& loop, const LatencyTable& lat,
                        int ii) {
  const int n = loop.num_ops();
  if (n == 0) {
    return false;
  }
  // Bellman-Ford longest path from a virtual source connected to all
  // ops with weight 0; relaxation still ongoing after n rounds means a
  // positive cycle exists.
  std::vector<long> dist(static_cast<std::size_t>(n), 0);
  for (int round = 0; round < n; ++round) {
    bool relaxed = false;
    for (const LoopEdge& e : loop.edges()) {
      const long w = lat_of(lat, loop.type(e.from)) -
                     static_cast<long>(ii) * e.distance;
      if (dist[static_cast<std::size_t>(e.from)] + w >
          dist[static_cast<std::size_t>(e.to)]) {
        dist[static_cast<std::size_t>(e.to)] =
            dist[static_cast<std::size_t>(e.from)] + w;
        relaxed = true;
      }
    }
    if (!relaxed) {
      return false;
    }
  }
  return true;
}

}  // namespace

int recurrence_mii(const CyclicDfg& loop, const LatencyTable& lat) {
  // II is monotone: larger II only decreases cycle weights. Binary
  // search over [1, sum of latencies].
  long hi = 1;
  for (OpId v = 0; v < loop.num_ops(); ++v) {
    hi += lat_of(lat, loop.type(v));
  }
  long lo = 1;
  if (!has_positive_cycle(loop, lat, static_cast<int>(lo))) {
    return 1;
  }
  if (has_positive_cycle(loop, lat, static_cast<int>(hi))) {
    throw std::invalid_argument(
        "recurrence_mii: dependence cycle with zero total distance");
  }
  while (lo + 1 < hi) {
    const long mid = (lo + hi) / 2;
    if (has_positive_cycle(loop, lat, static_cast<int>(mid))) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return static_cast<int>(hi);
}

int minimum_ii(const CyclicDfg& loop, const Datapath& dp) {
  return std::max(resource_mii(loop, dp),
                  recurrence_mii(loop, dp.latencies()));
}

}  // namespace cvb
