#include "modulo/cyclic_dfg.hpp"

#include <algorithm>
#include <stdexcept>

namespace cvb {

OpId CyclicDfg::add_op(OpType type, std::string name) {
  const OpId id = num_ops();
  if (name.empty()) {
    name = std::string(op_type_name(type)) + std::to_string(id);
  }
  type_.push_back(type);
  name_.push_back(std::move(name));
  return id;
}

void CyclicDfg::add_edge(OpId from, OpId to, int distance) {
  check_id(from);
  check_id(to);
  if (distance < 0) {
    throw std::invalid_argument("CyclicDfg::add_edge: negative distance");
  }
  if (from == to && distance == 0) {
    throw std::invalid_argument(
        "CyclicDfg::add_edge: distance-0 self edge on " + name(from));
  }
  const bool duplicate = std::any_of(
      edges_.begin(), edges_.end(), [&](const LoopEdge& e) {
        return e.from == from && e.to == to && e.distance == distance;
      });
  if (duplicate) {
    throw std::invalid_argument("CyclicDfg::add_edge: duplicate edge " +
                                name(from) + " -> " + name(to));
  }
  edges_.push_back(LoopEdge{from, to, distance});
}

OpType CyclicDfg::type(OpId v) const {
  check_id(v);
  return type_[static_cast<std::size_t>(v)];
}

const std::string& CyclicDfg::name(OpId v) const {
  check_id(v);
  return name_[static_cast<std::size_t>(v)];
}

Dfg CyclicDfg::body() const {
  Dfg dfg;
  for (OpId v = 0; v < num_ops(); ++v) {
    dfg.add_op(type(v), name(v));
  }
  for (const LoopEdge& e : edges_) {
    if (e.distance == 0 && !dfg.has_edge(e.from, e.to)) {
      dfg.add_edge(e.from, e.to);
    }
  }
  dfg.validate();
  return dfg;
}

void CyclicDfg::validate() const {
  (void)body();  // throws on a distance-0 cycle
}

void CyclicDfg::check_id(OpId v) const {
  if (v < 0 || v >= num_ops()) {
    throw std::invalid_argument("CyclicDfg: invalid op id " +
                                std::to_string(v));
  }
}

}  // namespace cvb
