// Cyclic dataflow graphs for loop kernels: operations plus dependence
// edges annotated with an iteration *distance* (omega). Distance 0 is
// an ordinary intra-iteration dependence; distance d >= 1 says the
// consumer reads the value produced d iterations earlier (a
// loop-carried dependence through a register).
//
// This is the input of the modulo-scheduling extension (paper Section 4
// discusses binding in the modulo-scheduling context: Nystrom &
// Eichenberger; Fernandes, Llosa & Topham; Sánchez & González). The
// distance-0 subgraph must be acyclic — it is the loop *body* the
// paper's binder runs on.
#pragma once

#include <string>
#include <vector>

#include "graph/dfg.hpp"
#include "machine/isa.hpp"

namespace cvb {

/// One dependence of a cyclic graph.
struct LoopEdge {
  OpId from = kNoOp;
  OpId to = kNoOp;
  int distance = 0;  ///< iterations between producer and consumer
};

/// A loop kernel: typed operations and distance-annotated dependences.
class CyclicDfg {
 public:
  /// Adds an operation; same semantics as Dfg::add_op.
  OpId add_op(OpType type, std::string name = {});

  /// Adds a dependence with iteration distance `distance` (>= 0).
  /// Duplicate (from, to, distance) triples and self edges with
  /// distance 0 are rejected (a distance >= 1 self edge — an
  /// accumulator — is legal and common).
  void add_edge(OpId from, OpId to, int distance = 0);

  [[nodiscard]] int num_ops() const {
    return static_cast<int>(type_.size());
  }
  [[nodiscard]] OpType type(OpId v) const;
  [[nodiscard]] const std::string& name(OpId v) const;
  [[nodiscard]] const std::vector<LoopEdge>& edges() const { return edges_; }

  /// The distance-0 subgraph as an ordinary Dfg (op ids preserved).
  /// This is what the binding algorithms consume. Throws
  /// std::logic_error if it contains a cycle.
  [[nodiscard]] Dfg body() const;

  /// Full validation: ids in range, distances >= 0, acyclic body.
  void validate() const;

 private:
  void check_id(OpId v) const;

  std::vector<OpType> type_;
  std::vector<std::string> name_;
  std::vector<LoopEdge> edges_;
};

}  // namespace cvb
