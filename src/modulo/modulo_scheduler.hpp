// Cluster-aware iterative modulo scheduler (software pipelining) built
// on top of the paper's binder — the extension direction Section 4
// discusses. The paper argues that "a final, high quality binding and
// scheduling solution should always be generated for the selected
// retiming function"; accordingly, software_pipeline() first binds the
// loop *body* (the distance-0 subgraph) with the paper's driver, then
// modulo-schedules the bound kernel:
//
//  1. cross-cluster dependences get explicit move operations (shared
//     per (producer, destination cluster, distance));
//  2. for II = MII, MII+1, ...: operations are placed in
//     ALAP/criticality order into a modulo reservation table with one
//     row per (cluster, FU type) pool and one for the bus; each op
//     scans the II consecutive slots from its dependence-earliest
//     start; back-edge feasibility is verified after placement, and
//     failure bumps II.
//
// The result is a flat schedule whose slot (start mod II) obeys all
// resource constraints — the standard kernel representation from which
// prologue/epilogue generation is mechanical.
#pragma once

#include <string>
#include <vector>

#include "bind/binding.hpp"
#include "bind/driver.hpp"
#include "machine/datapath.hpp"
#include "modulo/cyclic_dfg.hpp"

namespace cvb {

/// Modulo-scheduler knobs.
struct ModuloParams {
  int max_ii = 256;  ///< give up (throw) beyond this II
};

/// A software-pipelined loop kernel.
struct ModuloResult {
  int ii = 0;                    ///< achieved initiation interval
  int mii = 0;                   ///< lower bound that was computed
  CyclicDfg kernel;              ///< bound kernel including moves
  std::vector<ClusterId> place;  ///< per kernel op; moves -> kNoCluster
  std::vector<int> start;        ///< flat start times; slot = start % ii
  int num_moves = 0;
  int stages = 0;                ///< pipeline depth ceil(makespan / ii)
};

/// Modulo-schedules `loop` under a given body binding (must be valid
/// for loop.body() on `dp`). Throws std::invalid_argument if no II up
/// to params.max_ii works (pathological) or inputs are infeasible.
[[nodiscard]] ModuloResult modulo_schedule(const CyclicDfg& loop,
                                           const Datapath& dp,
                                           const Binding& binding,
                                           const ModuloParams& params = {});

/// Full flow: bind the loop body with the paper's driver, then modulo
/// schedule. `driver` controls binding effort.
[[nodiscard]] ModuloResult software_pipeline(const CyclicDfg& loop,
                                             const Datapath& dp,
                                             const DriverParams& driver = {},
                                             const ModuloParams& params = {});

/// Independent legality check of a ModuloResult against `dp`:
/// dependences (start[to] >= start[from] + lat - II*distance), modulo
/// resource windows, placement feasibility. Empty string when legal.
[[nodiscard]] std::string verify_modulo_schedule(const ModuloResult& result,
                                                 const Datapath& dp);

}  // namespace cvb
