// cvb::net::Router — a consistent-hash request router over a fleet of
// `cvserve` workers (the `cvrouter` tool).
//
// Why routing by cache key: a worker's throughput is dominated by its
// sharded schedule cache (bind/eval_engine.hpp), and cache hits only
// happen when the *same* DFG+machine workload keeps landing on the
// *same* worker. The router therefore hashes each job request by
// exactly the inputs that determine cache reuse — kernel/dfg text and
// machine/datapath/buses/move_latency, with the protocol's defaults
// applied so {"kernel":"EWF"} and {"kernel":"EWF","buses":2} land
// together — finalized with the murmur3 fmix64 mixer, and places it on
// a virtual-node hash ring. Adding or removing a worker remaps only
// ~1/N of the key space (the consistent-hashing property), so a fleet
// resize keeps most workers' caches hot.
//
// Topology: one router Unix socket in front, N worker Unix sockets
// behind. Clients speak either protocol (NDJSON or binary frames,
// sniffed per connection exactly like the server); the router talks
// binary frames upstream. Each client session gets its own lazy
// upstream connection per worker, so responses on an upstream belong
// to exactly one client and are forwarded verbatim — ids never need
// rewriting, and the end-to-end bytes are identical to a direct
// worker connection (the differential test pins this).
//
// Failure handling reuses the service's fault taxonomy:
//  * a dead upstream is reconnected with bounded retries and
//    decorrelated-jitter backoff (service/resilience.hpp) — connect
//    failures are transient faults;
//  * requests in flight on a connection that dies get a typed
//    {"status":"internal_error","fault_class":"transient"} response,
//    never silence — the client may resubmit;
//  * every worker has a circuit breaker (BreakerBoard): request and
//    probe failures drive closed -> open, the kPing prober drives
//    open -> half-open -> closed, and routing walks the ring past
//    workers whose breaker refuses traffic (DESIGN §3.13);
//  * bounded hedged retry: a job unanswered past the per-route latency
//    budget is re-sent to the next distinct ring worker; the first
//    terminal response wins and the loser is discarded by the
//    session's dedup ledger (exactly one response per request);
//  * fail-open: when *every* breaker refuses, the router routes the
//    hash-owner anyway as an extra trial — a wrong verdict must
//    degrade to "try it", not to a self-inflicted outage. With one
//    worker this reduces to plain pass-through.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "support/trace.hpp"

namespace cvb {
class MetricsRegistry;
}  // namespace cvb

namespace cvb::net {

/// Consistent-hash ring: `vnodes` points per worker, placed by hashing
/// the worker's socket path with each virtual-node index (FNV-1a +
/// fmix64). Immutable after construction.
class HashRing {
 public:
  HashRing(const std::vector<std::string>& workers, int vnodes);

  /// The worker owning `key`: the first ring point clockwise from the
  /// key whose worker is healthy. `healthy` is indexed like the worker
  /// list; when it is empty or all-false every worker is eligible
  /// (fail-open). Returns -1 only for an empty ring.
  [[nodiscard]] int pick(std::uint64_t key,
                         const std::vector<bool>& healthy) const;

  /// Every distinct worker in clockwise ring order starting at `key`'s
  /// owner — the preference order routing and hedging walk. The first
  /// element always equals pick(key, {}).
  [[nodiscard]] std::vector<int> pick_sequence(std::uint64_t key) const;

  [[nodiscard]] std::size_t num_workers() const { return num_workers_; }

 private:
  std::vector<std::pair<std::uint64_t, int>> points_;  ///< sorted by hash
  std::size_t num_workers_ = 0;
};

/// The routing verdict for one JSON request.
struct RouteInfo {
  /// Ring placement key: a hash over the fields that determine
  /// schedule-cache reuse (kernel|dfg, machine|datapath, buses,
  /// move_latency) with the protocol's defaults applied. Control
  /// requests and unparseable lines get key 0, which the router maps
  /// onto the ring like any other key — every cmd lands on one stable
  /// worker.
  std::uint64_t key = 0;
  /// True for {"cmd":...} requests and unparseable lines. Control
  /// requests carry side effects (snapshot writes, shutdown) and are
  /// never hedged; the flag is explicit because a legitimate job hash
  /// can collide with key 0.
  bool is_control = false;
};

[[nodiscard]] RouteInfo request_route_info(const std::string& request_json);

/// Shorthand for request_route_info(request_json).key.
[[nodiscard]] std::uint64_t request_route_key(const std::string& request_json);

/// Circuit-breaker state of one upstream worker (DESIGN §3.13).
enum class BreakerState {
  kClosed,    ///< healthy: all traffic allowed
  kOpen,      ///< tripped: no traffic until a probe succeeds
  kHalfOpen,  ///< probing recovery: a bounded number of trial requests
};

/// Wire/name form: "closed", "open", "half_open".
[[nodiscard]] const char* to_string(BreakerState state);

struct BreakerOptions {
  /// Consecutive request/probe failures that trip closed -> open.
  int failure_threshold = 3;
  /// Rolling outcome window per worker for the error-rate trip.
  int window = 16;
  /// Trip closed -> open when the full window's error fraction reaches
  /// this (belt-and-braces next to the consecutive counter: a worker
  /// failing every other request never hits the consecutive threshold).
  double error_rate_threshold = 0.5;
  /// Trial requests admitted while half-open; this many successes
  /// (trial responses or clean probes) close the breaker again.
  int half_open_trials = 2;
};

/// Per-upstream circuit breakers for the router fleet. Thread-safe:
/// session threads record request outcomes and consume half-open
/// trials while the prober reports liveness. State changes emit
/// net_breaker_* metrics and router.breaker tracer spans.
class BreakerBoard {
 public:
  BreakerBoard(std::size_t num_workers, BreakerOptions options,
               MetricsRegistry* metrics = nullptr, Tracer* tracer = nullptr);

  /// A request on worker `w` got a terminal response / failed to get
  /// one (connect failure, send failure, or upstream death).
  void record_success(std::size_t w);
  void record_failure(std::size_t w);

  /// Outcome of one kPing health probe. A clean probe half-opens an
  /// open breaker (and counts as a trial success while half-open), so
  /// a recovered worker re-enters the ring without waiting for
  /// traffic; a failed probe trips an idle worker's breaker too.
  void on_probe(std::size_t w, bool ok);

  /// May traffic go to `w` right now? Consumes one half-open trial
  /// slot when the breaker is half-open (call only when the caller
  /// will actually send).
  [[nodiscard]] bool allow(std::size_t w);

  /// Repays a half-open trial slot consumed by allow() when the
  /// caller abandoned the request before sending, so no outcome will
  /// ever be recorded for it. Without the repayment an abandoned
  /// grant leaks a slot and can pin the breaker half-open, refusing
  /// traffic until a probe rescues it. No-op outside half-open.
  void cancel_trial(std::size_t w);

  [[nodiscard]] BreakerState state(std::size_t w) const;

  /// Non-consuming routing view: true per worker iff allow() could
  /// grant it traffic right now.
  [[nodiscard]] std::vector<bool> eligibility() const;

 private:
  struct Slot {
    BreakerState state = BreakerState::kClosed;
    int consecutive_failures = 0;
    std::vector<unsigned char> window;  ///< outcome ring, 1 = failure
    std::size_t window_pos = 0;
    std::size_t window_fill = 0;
    int window_errors = 0;
    int trials_granted = 0;   ///< half-open: allow() slots handed out
    int trial_successes = 0;  ///< half-open: successes seen so far
  };

  void note_outcome(Slot& slot, std::size_t w, bool ok);
  void transition(Slot& slot, std::size_t w, BreakerState to);

  mutable std::mutex mutex_;
  BreakerOptions options_;
  std::vector<Slot> slots_;
  MetricsRegistry* metrics_;
  Tracer* tracer_;
};

struct RouterOptions {
  /// Unix socket the router listens on (required).
  std::string listen_path;
  /// Worker `cvserve --socket` paths (at least one required).
  std::vector<std::string> workers;
  /// Virtual nodes per worker on the ring.
  int vnodes = 64;
  /// Health-check probe period and per-probe reply timeout.
  double health_interval_ms = 250.0;
  double health_timeout_ms = 1000.0;
  /// Upstream connect retries (transient faults) with decorrelated
  /// jitter in [backoff_base_ms, backoff_cap_ms].
  int max_connect_attempts = 3;
  double backoff_base_ms = 1.0;
  double backoff_cap_ms = 50.0;
  std::uint64_t jitter_seed = 0x7e57ab1eULL;
  /// Cap on one request unit from a client.
  std::size_t max_request_bytes = std::size_t{1} << 20;
  /// Per-upstream circuit-breaker thresholds.
  BreakerOptions breaker;
  /// Hedged retry: a job request unanswered for this long is re-sent
  /// to the next distinct ring worker whose breaker allows it; the
  /// first terminal response wins, the loser is deduplicated away.
  /// 0 disables hedging. Control requests are never hedged.
  double hedge_budget_ms = 250.0;
  /// Destination for net_breaker_*/net_hedge_*/net_router_* series
  /// (null = a router-private registry, series still counted but not
  /// exported).
  MetricsRegistry* metrics = nullptr;
  Tracer* tracer = nullptr;  ///< router.session / router.route spans
};

/// One router instance: construct, run() on the serving thread.
/// request_shutdown() and wait_until_listening() are thread-safe.
class Router {
 public:
  explicit Router(RouterOptions options);
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Binds and serves until {"cmd":"shutdown"} or request_shutdown().
  /// Returns 0 after an orderly drain, 2 on bind failure (message on
  /// `err`).
  int run(std::ostream& err);

  /// Thread-safe graceful stop: closes the listener, unblocks every
  /// session, lets in-flight requests finish. Idempotent.
  void request_shutdown();

  /// Thread-safe: blocks until run() is accepting (true) or failed /
  /// finished (false).
  bool wait_until_listening();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace cvb::net
