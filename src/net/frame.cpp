#include "net/frame.hpp"

#include <stdexcept>

#include "support/fault.hpp"

namespace cvb::net {

bool is_known_frame_type(std::uint8_t type) {
  switch (static_cast<FrameType>(type)) {
    case FrameType::kRequest:
    case FrameType::kResponse:
    case FrameType::kError:
    case FrameType::kPing:
    case FrameType::kPong:
    case FrameType::kSnapshotHeader:
    case FrameType::kSnapshotEntry:
    case FrameType::kSnapshotTrailer:
      return true;
  }
  return false;
}

bool is_decode_error(DecodeStatus status) {
  return status != DecodeStatus::kFrame && status != DecodeStatus::kNeedMore;
}

const char* decode_status_message(DecodeStatus status) {
  switch (status) {
    case DecodeStatus::kFrame:
    case DecodeStatus::kNeedMore:
      return "";
    case DecodeStatus::kBadMagic:
      return "bad frame magic";
    case DecodeStatus::kBadVersion:
      return "unsupported frame protocol version";
    case DecodeStatus::kBadType:
      return "unknown frame type";
    case DecodeStatus::kOversized:
      return "frame payload exceeds the 1 MiB cap";
  }
  return "";
}

DecodeResult decode_frame(std::string_view buffer) {
  // Chaos site for the decode hot path. Only the hang flavour is
  // supported (decode is called inside event-loop dispatch, where an
  // exception would tear down the whole server rather than one
  // connection); it models a stalled parser / scheduling hiccup.
  CVB_INJECT("net.frame.decode");
  DecodeResult result;
  const auto* bytes = reinterpret_cast<const unsigned char*>(buffer.data());
  // Validate the header prefix byte by byte, so garbage is rejected as
  // soon as it can be (a 1-byte buffer with the wrong first byte is
  // kBadMagic, not kNeedMore — NDJSON auto-detection depends on that).
  if (buffer.empty()) {
    return result;  // kNeedMore
  }
  if (bytes[0] != kFrameMagic0) {
    result.status = DecodeStatus::kBadMagic;
    return result;
  }
  if (buffer.size() >= 2 && bytes[1] != kFrameMagic1) {
    result.status = DecodeStatus::kBadMagic;
    return result;
  }
  if (buffer.size() >= 3 && bytes[2] != kFrameVersion) {
    result.status = DecodeStatus::kBadVersion;
    return result;
  }
  if (buffer.size() >= 4 && !is_known_frame_type(bytes[3])) {
    result.status = DecodeStatus::kBadType;
    return result;
  }
  if (buffer.size() < kFrameHeaderSize) {
    return result;  // kNeedMore: header prefix is valid so far
  }
  const std::uint32_t length = static_cast<std::uint32_t>(bytes[4]) |
                               (static_cast<std::uint32_t>(bytes[5]) << 8) |
                               (static_cast<std::uint32_t>(bytes[6]) << 16) |
                               (static_cast<std::uint32_t>(bytes[7]) << 24);
  if (length > kMaxFramePayload) {
    result.status = DecodeStatus::kOversized;
    return result;
  }
  const std::size_t total = kFrameHeaderSize + length;
  if (buffer.size() < total) {
    return result;  // kNeedMore: payload still in flight
  }
  result.status = DecodeStatus::kFrame;
  result.frame.type = static_cast<FrameType>(bytes[3]);
  result.frame.payload = buffer.substr(kFrameHeaderSize, length);
  result.consumed = total;
  return result;
}

void append_frame(std::string& out, FrameType type, std::string_view payload) {
  if (payload.size() > kMaxFramePayload) {
    throw std::invalid_argument("frame payload exceeds the 1 MiB cap");
  }
  const auto length = static_cast<std::uint32_t>(payload.size());
  out.reserve(out.size() + kFrameHeaderSize + payload.size());
  out.push_back(static_cast<char>(kFrameMagic0));
  out.push_back(static_cast<char>(kFrameMagic1));
  out.push_back(static_cast<char>(kFrameVersion));
  out.push_back(static_cast<char>(type));
  out.push_back(static_cast<char>(length & 0xffU));
  out.push_back(static_cast<char>((length >> 8) & 0xffU));
  out.push_back(static_cast<char>((length >> 16) & 0xffU));
  out.push_back(static_cast<char>((length >> 24) & 0xffU));
  out.append(payload);
}

std::string encode_frame(FrameType type, std::string_view payload) {
  std::string out;
  append_frame(out, type, payload);
  return out;
}

}  // namespace cvb::net
