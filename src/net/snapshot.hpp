// Eval-cache snapshot files: warm-starting a restarted worker.
//
// A `cvserve` worker's value to the fleet is its hot sharded schedule
// cache for its key range (the router sends it the same DFG+machine
// keys every time). A restart used to throw that away; this format
// lets `{"cmd":"snapshot","path":...}` persist the L2 entries and
// `--warm-start PATH` reload them before serving.
//
// The file is a sequence of binary frames in the PR 7 wire codec
// (net/frame.hpp) — one kSnapshotHeader frame followed by exactly the
// declared number of kSnapshotEntry frames. All integers are
// little-endian fixed width. See FORMATS.md "Eval-cache snapshot
// file" for the byte-level layout.
//
// Reading is strict: a wrong snapshot version, a truncated file, an
// entry-count mismatch, trailing bytes, or a malformed entry all throw
// std::invalid_argument — a restarted worker must refuse a snapshot it
// cannot fully trust (entries additionally re-verify against the
// engine's own key scheme on import, see EvalEngine::import_cache).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "bind/eval_engine.hpp"

namespace cvb::net {

/// Schema version of the snapshot *payloads* (the frame codec has its
/// own wire version byte). Bump when the entry layout changes.
inline constexpr std::uint32_t kSnapshotVersion = 1;

/// Writes header + entries to `out`. Throws std::invalid_argument when
/// an entry is too large for one frame (1 MiB payload cap — a binding
/// would need >100k operations to hit it).
void write_cache_snapshot(std::ostream& out,
                          const std::vector<CacheExportEntry>& entries);

/// Parses a complete snapshot stream; throws std::invalid_argument on
/// any structural problem (version mismatch, truncation, count
/// mismatch, trailing bytes).
[[nodiscard]] std::vector<CacheExportEntry> read_cache_snapshot(
    std::istream& in);

/// File convenience wrappers; throw std::invalid_argument on I/O
/// failure too ("cannot open ...").
void save_cache_snapshot(const std::string& path,
                         const std::vector<CacheExportEntry>& entries);
[[nodiscard]] std::vector<CacheExportEntry> load_cache_snapshot(
    const std::string& path);

}  // namespace cvb::net
