// Eval-cache snapshot files: warm-starting a restarted worker.
//
// A `cvserve` worker's value to the fleet is its hot sharded schedule
// cache for its key range (the router sends it the same DFG+machine
// keys every time). A restart used to throw that away; this format
// lets `{"cmd":"snapshot","path":...}` persist the L2 entries and
// `--warm-start PATH` reload them before serving.
//
// The file is a sequence of binary frames in the PR 7 wire codec
// (net/frame.hpp) — one kSnapshotHeader frame, exactly the declared
// number of kSnapshotEntry frames, then one kSnapshotTrailer frame
// carrying an fmix64-finalized FNV-1a checksum over every preceding
// file byte. All integers are little-endian fixed width. See
// FORMATS.md "Eval-cache snapshot file" for the byte-level layout.
//
// Crash-only persistence (DESIGN §3.13): save_cache_snapshot writes to
// a unique staging file (`path.tmp.<pid>.<n>`, so concurrent savers
// never truncate each other's half-written bytes), fsyncs, renames
// over `path`, and fsyncs the directory — a crash at any point leaves
// either the old complete file or the new complete file, never a torn
// mix. Restoring is two-tier:
//  * read_cache_snapshot is strict — any structural problem (version
//    mismatch, truncation, count mismatch, checksum mismatch, trailing
//    bytes, malformed entry) throws std::invalid_argument;
//  * restore_cache_snapshot is crash-tolerant — a torn tail (the
//    signature a crash mid-write leaves when rename was bypassed)
//    salvages the complete entry prefix and reports it, while silent
//    corruption (a present-but-wrong trailer checksum) still throws.
// Entries additionally re-verify against the engine's own key scheme
// on import (EvalEngine::import_cache), so even a salvaged prefix
// cannot poison the cache.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "bind/eval_engine.hpp"

namespace cvb::net {

/// Schema version of the snapshot *payloads* (the frame codec has its
/// own wire version byte). Bump when the entry layout changes.
/// Version 2 added the kSnapshotTrailer checksum frame.
inline constexpr std::uint32_t kSnapshotVersion = 2;

/// Writes header + entries + checksum trailer to `out`. Throws
/// std::invalid_argument when an entry is too large for one frame
/// (1 MiB payload cap — a binding would need >100k operations to hit
/// it).
void write_cache_snapshot(std::ostream& out,
                          const std::vector<CacheExportEntry>& entries);

/// Result of a crash-tolerant restore.
struct SnapshotRestore {
  std::vector<CacheExportEntry> entries;  ///< complete parsed prefix
  bool complete = true;   ///< false: torn tail salvaged, warning set
  std::uint64_t dropped = 0;  ///< declared entries lost to the torn tail
  std::string warning;    ///< human-readable reason when !complete
};

/// Crash-tolerant parse: salvages the complete entry prefix of a
/// torn-tail file (complete=false + warning), but still throws
/// std::invalid_argument on anything that cannot be a crash artifact —
/// garbage/short header, version mismatch, a trailer whose checksum
/// does not match (silent corruption), or trailing bytes.
[[nodiscard]] SnapshotRestore restore_cache_snapshot(std::istream& in);
[[nodiscard]] SnapshotRestore restore_cache_snapshot_file(
    const std::string& path);

/// Strict parse: like restore_cache_snapshot but a torn tail also
/// throws. Used where a snapshot must be fully trusted.
[[nodiscard]] std::vector<CacheExportEntry> read_cache_snapshot(
    std::istream& in);

/// File convenience wrappers; throw std::invalid_argument on I/O
/// failure too ("cannot open ..."). save_cache_snapshot is atomic:
/// tmp + fsync + rename (+ directory fsync).
void save_cache_snapshot(const std::string& path,
                         const std::vector<CacheExportEntry>& entries);
[[nodiscard]] std::vector<CacheExportEntry> load_cache_snapshot(
    const std::string& path);

}  // namespace cvb::net
