#include "net/router.hpp"

#include <algorithm>
#include <stdexcept>

#include "support/hash.hpp"
#include "support/json.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define CVB_ROUTER_HAVE_SOCKETS 1
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <ostream>
#include <set>
#include <string_view>
#include <thread>

#include "net/frame.hpp"
#include "service/protocol.hpp"
#include "service/resilience.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"
#endif

namespace cvb::net {

// ---- Hash ring ----------------------------------------------------------

HashRing::HashRing(const std::vector<std::string>& workers, int vnodes) {
  num_workers_ = workers.size();
  if (vnodes < 1) {
    vnodes = 1;
  }
  points_.reserve(workers.size() * static_cast<std::size_t>(vnodes));
  for (std::size_t w = 0; w < workers.size(); ++w) {
    const std::uint64_t base = fnv1a_bytes(kFnvOffset, workers[w]);
    for (int v = 0; v < vnodes; ++v) {
      points_.emplace_back(fmix64(fnv1a(base, static_cast<std::uint64_t>(v))),
                           static_cast<int>(w));
    }
  }
  std::sort(points_.begin(), points_.end());
}

int HashRing::pick(std::uint64_t key, const std::vector<bool>& healthy) const {
  if (points_.empty()) {
    return -1;
  }
  const bool any_healthy =
      std::find(healthy.begin(), healthy.end(), true) != healthy.end();
  const auto eligible = [&](int worker) {
    if (!any_healthy) {
      return true;  // fail-open: a wrong health verdict must not 404
    }
    return static_cast<std::size_t>(worker) < healthy.size() &&
           healthy[static_cast<std::size_t>(worker)];
  };
  auto it = std::lower_bound(
      points_.begin(), points_.end(), key,
      [](const std::pair<std::uint64_t, int>& p, std::uint64_t k) {
        return p.first < k;
      });
  for (std::size_t step = 0; step < points_.size(); ++step) {
    if (it == points_.end()) {
      it = points_.begin();
    }
    if (eligible(it->second)) {
      return it->second;
    }
    ++it;
  }
  return points_.begin()->second;  // all ineligible: fail-open anyway
}

std::uint64_t request_route_key(const std::string& request_json) {
  try {
    const JsonValue doc = JsonValue::parse(request_json);
    if (!doc.is_object() || doc.find("cmd") != nullptr) {
      return 0;
    }
    std::uint64_t h = kFnvOffset;
    const auto fold = [&h](std::string_view tag, std::string_view value) {
      h = fnv1a_bytes(h, tag);
      h = fnv1a_bytes(h, value);
    };
    const auto str_field = [&doc](const char* key) -> const JsonValue* {
      const JsonValue* v = doc.find(key);
      return (v != nullptr && v->kind() == JsonValue::Kind::kString) ? v
                                                                     : nullptr;
    };
    const auto num_field = [&doc](const char* key, int fallback) {
      const JsonValue* v = doc.find(key);
      return (v != nullptr && v->kind() == JsonValue::Kind::kNumber)
                 ? static_cast<int>(v->as_number())
                 : fallback;
    };
    if (const JsonValue* kernel = str_field("kernel"); kernel != nullptr) {
      fold("kernel", kernel->as_string());
    } else if (const JsonValue* dfg = str_field("dfg"); dfg != nullptr) {
      fold("dfg", dfg->as_string());
    }
    if (const JsonValue* machine = str_field("machine"); machine != nullptr) {
      fold("machine", machine->as_string());
    } else {
      // Apply the protocol's defaults so spelled-out defaults hash the
      // same as omitted ones (service/protocol.cpp).
      const JsonValue* dp = str_field("datapath");
      fold("datapath", dp != nullptr ? dp->as_string() : "[1,1|1,1]");
      h = fnv1a(h, static_cast<std::uint64_t>(num_field("buses", 2)));
      h = fnv1a(h, static_cast<std::uint64_t>(num_field("move_latency", 1)));
    }
    return fmix64(h);
  } catch (const std::exception&) {
    return 0;
  }
}

#if defined(CVB_ROUTER_HAVE_SOCKETS)

namespace {

constexpr std::size_t kReadChunk = 16 * 1024;

/// Blocking connect to a Unix socket; -1 on failure.
int connect_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return -1;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    ::close(fd);
    return -1;
  }
  path.copy(addr.sun_path, path.size());
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool send_all(int fd, std::string_view bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// Blocking read of the next complete frame from `fd`, buffering
/// partial data in `buf` across calls. Returns false on EOF, a socket
/// error, or a framing error (the stream is then unusable).
bool read_frame_blocking(int fd, std::string& buf, FrameType* type,
                         std::string* payload) {
  while (true) {
    const DecodeResult decoded = decode_frame(buf);
    if (decoded.status == DecodeStatus::kFrame) {
      *type = decoded.frame.type;
      payload->assign(decoded.frame.payload);
      buf.erase(0, decoded.consumed);
      return true;
    }
    if (decoded.status != DecodeStatus::kNeedMore) {
      return false;
    }
    char chunk[kReadChunk];
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n <= 0) {
      return false;
    }
    buf.append(chunk, static_cast<std::size_t>(n));
  }
}

/// The typed answer for a request the router accepted but could not
/// get answered by its worker: transient, so the client may resubmit.
std::string worker_lost_json(const std::string& id,
                             const std::string& worker) {
  return invalid_request_json("worker '" + worker + "' unavailable", id,
                              FaultClass::kTransient)
      .dump();
}

}  // namespace

struct Router::Impl {
  explicit Impl(RouterOptions opts) : options(std::move(opts)) {}

  RouterOptions options;
  HashRing ring{options.workers, options.vnodes};

  std::mutex mutex;
  std::condition_variable cv;
  bool listening = false;
  bool run_done = false;
  bool stopping = false;
  int listener = -1;
  std::vector<int> session_fds;          // live client fds (for shutdown)
  std::vector<bool> health;              // guarded by mutex
  std::vector<std::thread> sessions;

  std::thread health_thread;

  // ---- health ----------------------------------------------------------

  [[nodiscard]] std::vector<bool> health_snapshot() {
    const std::lock_guard<std::mutex> lock(mutex);
    return health;
  }

  /// One kPing round trip on a fresh connection, bounded by
  /// health_timeout_ms.
  [[nodiscard]] bool probe(const std::string& path) const {
    const int fd = connect_unix(path);
    if (fd < 0) {
      return false;
    }
    bool ok = false;
    if (send_all(fd, encode_frame(FrameType::kPing, "hc"))) {
      std::string buf;
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::milliseconds(
              static_cast<long long>(options.health_timeout_ms));
      while (std::chrono::steady_clock::now() < deadline) {
        pollfd pfd{fd, POLLIN, 0};
        const int ready = ::poll(&pfd, 1, 10);
        if (ready < 0) {
          break;
        }
        if (ready == 0) {
          continue;
        }
        char chunk[256];
        const ssize_t n = ::read(fd, chunk, sizeof chunk);
        if (n <= 0) {
          break;
        }
        buf.append(chunk, static_cast<std::size_t>(n));
        const DecodeResult decoded = decode_frame(buf);
        if (decoded.status == DecodeStatus::kFrame) {
          ok = decoded.frame.type == FrameType::kPong;
          break;
        }
        if (decoded.status != DecodeStatus::kNeedMore) {
          break;
        }
      }
    }
    ::close(fd);
    return ok;
  }

  void health_loop() {
    while (true) {
      for (std::size_t w = 0; w < options.workers.size(); ++w) {
        {
          const std::lock_guard<std::mutex> lock(mutex);
          if (stopping) {
            return;
          }
        }
        const bool up = probe(options.workers[w]);
        const std::lock_guard<std::mutex> lock(mutex);
        health[w] = up;
      }
      std::unique_lock<std::mutex> lock(mutex);
      cv.wait_for(lock,
                  std::chrono::milliseconds(static_cast<long long>(
                      options.health_interval_ms)),
                  [&] { return stopping; });
      if (stopping) {
        return;
      }
    }
  }

  // ---- per-session upstream state -------------------------------------

  struct Upstream {
    int fd = -1;
    std::thread reader;
    /// Ids of requests sent and not yet answered; multiset because ids
    /// may repeat (or be empty). Guarded by Session::mutex.
    std::multiset<std::string> pending;
    bool dead = false;  ///< reader saw EOF/error; guarded by Session::mutex
  };

  struct Session {
    int client_fd = -1;
    bool client_binary = false;
    std::mutex mutex;  ///< guards client writes, pending sets, dead flags
    std::vector<Upstream> upstreams;
  };

  /// Serializes one response to the client in its own protocol.
  /// Returns false when the client is gone (callers just keep
  /// draining; the session loop notices EOF itself).
  bool send_to_client(Session& session, const std::string& json) {
    std::string wire;
    if (session.client_binary) {
      try {
        append_frame(wire, FrameType::kResponse, json);
      } catch (const std::invalid_argument&) {
        return false;
      }
    } else {
      wire = json;
      wire += '\n';
    }
    return send_all(session.client_fd, wire);
  }

  /// Forwards every kResponse/kError frame from worker `w` to the
  /// client until the upstream dies; then answers whatever is still
  /// pending with a typed transient error.
  void upstream_reader(Session& session, std::size_t w) {
    Upstream& up = session.upstreams[w];
    std::string buf;
    FrameType type = FrameType::kResponse;
    std::string payload;
    while (read_frame_blocking(up.fd, buf, &type, &payload)) {
      if (type == FrameType::kPong) {
        continue;
      }
      if (type != FrameType::kResponse && type != FrameType::kError) {
        break;  // a worker never sends anything else; stream is corrupt
      }
      const std::lock_guard<std::mutex> lock(session.mutex);
      const auto it = up.pending.find(extract_request_id(payload));
      if (it != up.pending.end()) {
        up.pending.erase(it);
      }
      send_to_client(session, payload);
    }
    // Upstream gone: every request still pending gets a typed answer.
    const std::lock_guard<std::mutex> lock(session.mutex);
    up.dead = true;
    for (const std::string& id : up.pending) {
      send_to_client(session, worker_lost_json(id, options.workers[w]));
    }
    up.pending.clear();
  }

  /// Connects (or reconnects) session's upstream to worker `w`, with
  /// bounded transient retries and decorrelated-jitter backoff.
  /// Returns false when every attempt failed.
  bool ensure_upstream(Session& session, std::size_t w) {
    Upstream& up = session.upstreams[w];
    {
      const std::lock_guard<std::mutex> lock(session.mutex);
      if (up.fd >= 0 && !up.dead) {
        return true;
      }
    }
    // A dead previous connection: reap its reader before reconnecting.
    if (up.reader.joinable()) {
      up.reader.join();
    }
    if (up.fd >= 0) {
      ::close(up.fd);
      up.fd = -1;
    }
    Rng rng(options.jitter_seed ^ fmix64(w + 1));
    double delay_ms = options.backoff_base_ms;
    for (int attempt = 0; attempt < std::max(1, options.max_connect_attempts);
         ++attempt) {
      if (attempt > 0) {
        delay_ms = decorrelated_jitter_ms(options.backoff_base_ms,
                                          options.backoff_cap_ms, delay_ms,
                                          rng);
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(delay_ms));
      }
      const int fd = connect_unix(options.workers[w]);
      if (fd >= 0) {
        {
          const std::lock_guard<std::mutex> lock(session.mutex);
          up.fd = fd;
          up.dead = false;
        }
        up.reader = std::thread([this, &session, w] {
          upstream_reader(session, w);
        });
        return true;
      }
    }
    return false;
  }

  /// Routes one JSON request unit from the client.
  void route_request(Session& session, const std::string& text) {
    ScopedSpan span(options.tracer, "router.route");
    const std::uint64_t key = request_route_key(text);
    const int picked = ring.pick(key, health_snapshot());
    span.attr("key", static_cast<long long>(key));
    span.attr("worker", picked);
    const std::string id = extract_request_id(text);
    if (picked < 0) {
      send_to_client_locked(session, worker_lost_json(id, "(none)"));
      return;
    }
    const auto w = static_cast<std::size_t>(picked);
    if (!ensure_upstream(session, w)) {
      const std::lock_guard<std::mutex> lock(session.mutex);
      send_to_client(session, worker_lost_json(id, options.workers[w]));
      return;
    }
    Upstream& up = session.upstreams[w];
    {
      const std::lock_guard<std::mutex> lock(session.mutex);
      up.pending.insert(id);
    }
    if (!send_all(up.fd, encode_frame(FrameType::kRequest, text))) {
      const std::lock_guard<std::mutex> lock(session.mutex);
      // The reader will answer pending ids when it notices the death;
      // answer this one only if the reader has not already done so.
      if (!up.dead) {
        const auto it = up.pending.find(id);
        if (it != up.pending.end()) {
          up.pending.erase(it);
          send_to_client(session, worker_lost_json(id, options.workers[w]));
        }
      }
    }
  }

  void send_to_client_locked(Session& session, const std::string& json) {
    const std::lock_guard<std::mutex> lock(session.mutex);
    send_to_client(session, json);
  }

  /// Best-effort {"cmd":"shutdown"} to every worker (used when a
  /// client asks the *fleet* to shut down through the router).
  void broadcast_shutdown() {
    for (const std::string& path : options.workers) {
      const int fd = connect_unix(path);
      if (fd < 0) {
        continue;
      }
      send_all(fd, encode_frame(FrameType::kRequest, "{\"cmd\":\"shutdown\"}"));
      ::close(fd);
    }
  }

  /// Handles one request unit; returns false when the session must end
  /// (quit / shutdown).
  bool handle_unit(Session& session, const std::string& text) {
    // Only quit/shutdown change the router's own behaviour; every
    // other request (jobs, metrics, trace, snapshot) is routed.
    try {
      const JsonValue doc = JsonValue::parse(text);
      if (doc.is_object()) {
        if (const JsonValue* cmd = doc.find("cmd");
            cmd != nullptr && cmd->kind() == JsonValue::Kind::kString) {
          if (cmd->as_string() == "quit") {
            return false;
          }
          if (cmd->as_string() == "shutdown") {
            broadcast_shutdown();
            JsonValue ok = JsonValue::object();
            ok.set("status", "ok");
            ok.set("cmd", "shutdown");
            send_to_client_locked(session, ok.dump());
            request_shutdown_impl();
            return false;
          }
        }
      }
    } catch (const std::exception&) {
      // Unparseable: still routed — the worker owns error reporting,
      // so direct and routed clients get byte-identical diagnostics.
    }
    route_request(session, text);
    return true;
  }

  void session_loop(int client_fd) {
    Session session;
    session.client_fd = client_fd;
    session.upstreams = std::vector<Upstream>(options.workers.size());
    ScopedSpan span(options.tracer, "router.session");

    std::string buf;
    bool sniffed = false;
    bool running = true;
    while (running) {
      // Extract complete units from buf, then refill.
      if (sniffed && session.client_binary) {
        const DecodeResult decoded = decode_frame(buf);
        if (decoded.status == DecodeStatus::kFrame) {
          if (decoded.frame.type == FrameType::kPing) {
            const std::lock_guard<std::mutex> lock(session.mutex);
            send_all(client_fd,
                     encode_frame(FrameType::kPong, decoded.frame.payload));
          } else if (decoded.frame.type == FrameType::kRequest) {
            running = handle_unit(session, std::string(decoded.frame.payload));
          } else {
            running = false;  // unexpected type: drop the session
          }
          buf.erase(0, decoded.consumed);
          continue;
        }
        if (decoded.status != DecodeStatus::kNeedMore) {
          const std::lock_guard<std::mutex> lock(session.mutex);
          std::string err_frame;
          append_frame(err_frame, FrameType::kError,
                       invalid_request_json(
                           decode_status_message(decoded.status))
                           .dump());
          send_all(client_fd, err_frame);
          break;
        }
      } else if (sniffed) {
        const std::size_t nl = buf.find('\n');
        if (nl != std::string::npos) {
          const std::string line = buf.substr(0, nl);
          buf.erase(0, nl + 1);
          if (!trim(line).empty()) {
            running = handle_unit(session, line);
          }
          continue;
        }
        if (buf.size() > options.max_request_bytes) {
          send_to_client_locked(
              session, invalid_request_json("request line exceeds " +
                                            std::to_string(
                                                options.max_request_bytes) +
                                            " bytes")
                           .dump());
          break;
        }
      }
      char chunk[kReadChunk];
      const ssize_t n = ::read(client_fd, chunk, sizeof chunk);
      if (n <= 0) {
        // EOF: a final unterminated NDJSON line still counts.
        if (sniffed && !session.client_binary && !trim(buf).empty()) {
          handle_unit(session, buf);
        }
        break;
      }
      buf.append(chunk, static_cast<std::size_t>(n));
      if (!sniffed && !buf.empty()) {
        session.client_binary =
            looks_binary(static_cast<unsigned char>(buf.front()));
        sniffed = true;
      }
    }

    // Drain: half-close every upstream so workers finish in-flight
    // jobs and respond; readers forward those responses, then exit.
    for (Upstream& up : session.upstreams) {
      if (up.fd >= 0) {
        ::shutdown(up.fd, SHUT_WR);
      }
    }
    for (Upstream& up : session.upstreams) {
      if (up.reader.joinable()) {
        up.reader.join();
      }
      if (up.fd >= 0) {
        ::close(up.fd);
      }
    }
    ::close(client_fd);
    const std::lock_guard<std::mutex> lock(mutex);
    session_fds.erase(
        std::remove(session_fds.begin(), session_fds.end(), client_fd),
        session_fds.end());
  }

  // ---- lifecycle -------------------------------------------------------

  void request_shutdown_impl() {
    const std::lock_guard<std::mutex> lock(mutex);
    if (stopping) {
      return;
    }
    stopping = true;
    if (listener >= 0) {
      ::shutdown(listener, SHUT_RDWR);
    }
    for (const int fd : session_fds) {
      ::shutdown(fd, SHUT_RD);  // unblock session reads; writes drain
    }
    cv.notify_all();
  }

  int run(std::ostream& err) {
    const auto fail = [&](const std::string& message) {
      err << "cvrouter: " << message << '\n';
      const std::lock_guard<std::mutex> lock(mutex);
      run_done = true;
      cv.notify_all();
      return 2;
    };
    if (options.workers.empty()) {
      return fail("at least one --worker is required");
    }
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
      return fail("cannot create socket");
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options.listen_path.size() >= sizeof addr.sun_path) {
      ::close(fd);
      return fail("socket path too long");
    }
    options.listen_path.copy(addr.sun_path, options.listen_path.size());
    ::unlink(options.listen_path.c_str());
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
            0 ||
        ::listen(fd, 64) != 0) {
      ::close(fd);
      return fail("cannot bind/listen on '" + options.listen_path + "'");
    }
    bool already_stopping = false;
    {
      const std::lock_guard<std::mutex> lock(mutex);
      listener = fd;
      listening = true;
      // Workers start presumed-healthy: until the first probe lands,
      // routing must follow the pure hash verdict, or early requests
      // skip not-yet-probed workers and break cache affinity.
      health.assign(options.workers.size(), true);
      already_stopping = stopping;
    }
    cv.notify_all();

    health_thread = std::thread([this] { health_loop(); });

    while (!already_stopping) {
      const int client = ::accept(listener, nullptr, nullptr);
      if (client < 0) {
        break;  // listener shut down (or a fatal accept error)
      }
      const std::lock_guard<std::mutex> lock(mutex);
      if (stopping) {
        ::close(client);
        break;
      }
      session_fds.push_back(client);
      sessions.emplace_back([this, client] { session_loop(client); });
    }

    request_shutdown_impl();
    for (std::thread& t : sessions) {
      if (t.joinable()) {
        t.join();
      }
    }
    if (health_thread.joinable()) {
      health_thread.join();
    }
    std::unique_lock<std::mutex> lock(mutex);
    if (listener >= 0) {
      ::close(listener);
      listener = -1;
    }
    ::unlink(options.listen_path.c_str());
    listening = false;
    run_done = true;
    cv.notify_all();
    return 0;
  }
};

Router::Router(RouterOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

Router::~Router() = default;

int Router::run(std::ostream& err) { return impl_->run(err); }

void Router::request_shutdown() { impl_->request_shutdown_impl(); }

bool Router::wait_until_listening() {
  std::unique_lock<std::mutex> lock(impl_->mutex);
  impl_->cv.wait(lock, [&] { return impl_->listening || impl_->run_done; });
  return impl_->listening;
}

#else  // !CVB_ROUTER_HAVE_SOCKETS

struct Router::Impl {
  RouterOptions options;
};

Router::Router(RouterOptions options)
    : impl_(std::make_unique<Impl>(Impl{std::move(options)})) {}

Router::~Router() = default;

int Router::run(std::ostream& err) {
  err << "cvrouter: Unix sockets are not supported on this platform\n";
  return 1;
}

void Router::request_shutdown() {}

bool Router::wait_until_listening() { return false; }

#endif  // CVB_ROUTER_HAVE_SOCKETS

}  // namespace cvb::net
