#include "net/router.hpp"

#include <algorithm>
#include <stdexcept>

#include "support/fault.hpp"
#include "support/hash.hpp"
#include "support/json.hpp"
#include "support/metrics.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define CVB_ROUTER_HAVE_SOCKETS 1
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <list>
#include <mutex>
#include <ostream>
#include <string_view>
#include <thread>

#include "net/frame.hpp"
#include "service/protocol.hpp"
#include "service/resilience.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"
#endif

namespace cvb::net {

// ---- Hash ring ----------------------------------------------------------

HashRing::HashRing(const std::vector<std::string>& workers, int vnodes) {
  num_workers_ = workers.size();
  if (vnodes < 1) {
    vnodes = 1;
  }
  points_.reserve(workers.size() * static_cast<std::size_t>(vnodes));
  for (std::size_t w = 0; w < workers.size(); ++w) {
    const std::uint64_t base = fnv1a_bytes(kFnvOffset, workers[w]);
    for (int v = 0; v < vnodes; ++v) {
      points_.emplace_back(fmix64(fnv1a(base, static_cast<std::uint64_t>(v))),
                           static_cast<int>(w));
    }
  }
  std::sort(points_.begin(), points_.end());
}

int HashRing::pick(std::uint64_t key, const std::vector<bool>& healthy) const {
  if (points_.empty()) {
    return -1;
  }
  const bool any_healthy =
      std::find(healthy.begin(), healthy.end(), true) != healthy.end();
  const auto eligible = [&](int worker) {
    if (!any_healthy) {
      return true;  // fail-open: a wrong health verdict must not 404
    }
    return static_cast<std::size_t>(worker) < healthy.size() &&
           healthy[static_cast<std::size_t>(worker)];
  };
  auto it = std::lower_bound(
      points_.begin(), points_.end(), key,
      [](const std::pair<std::uint64_t, int>& p, std::uint64_t k) {
        return p.first < k;
      });
  for (std::size_t step = 0; step < points_.size(); ++step) {
    if (it == points_.end()) {
      it = points_.begin();
    }
    if (eligible(it->second)) {
      return it->second;
    }
    ++it;
  }
  return points_.begin()->second;  // all ineligible: fail-open anyway
}

std::vector<int> HashRing::pick_sequence(std::uint64_t key) const {
  std::vector<int> order;
  if (points_.empty()) {
    return order;
  }
  order.reserve(num_workers_);
  std::vector<bool> seen(num_workers_, false);
  auto it = std::lower_bound(
      points_.begin(), points_.end(), key,
      [](const std::pair<std::uint64_t, int>& p, std::uint64_t k) {
        return p.first < k;
      });
  for (std::size_t step = 0;
       step < points_.size() && order.size() < num_workers_; ++step) {
    if (it == points_.end()) {
      it = points_.begin();
    }
    const auto w = static_cast<std::size_t>(it->second);
    if (!seen[w]) {
      seen[w] = true;
      order.push_back(it->second);
    }
    ++it;
  }
  return order;
}

// ---- Circuit breakers ---------------------------------------------------

const char* to_string(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half_open";
  }
  return "closed";
}

BreakerBoard::BreakerBoard(std::size_t num_workers, BreakerOptions options,
                           MetricsRegistry* metrics, Tracer* tracer)
    : options_(options), metrics_(metrics), tracer_(tracer) {
  options_.failure_threshold = std::max(1, options_.failure_threshold);
  options_.window = std::max(1, options_.window);
  options_.half_open_trials = std::max(1, options_.half_open_trials);
  slots_.resize(num_workers);
  for (Slot& slot : slots_) {
    slot.window.assign(static_cast<std::size_t>(options_.window), 0);
  }
}

void BreakerBoard::transition(Slot& slot, std::size_t w, BreakerState to) {
  if (slot.state == to) {
    return;
  }
  {
    ScopedSpan span(tracer_, "router.breaker");
    span.attr("worker", static_cast<long long>(w));
    span.attr("from", to_string(slot.state));
    span.attr("to", to_string(to));
  }
  if (metrics_ != nullptr) {
    switch (to) {
      case BreakerState::kOpen:
        metrics_->counter("net_breaker_open_total").inc();
        break;
      case BreakerState::kHalfOpen:
        metrics_->counter("net_breaker_half_open_total").inc();
        break;
      case BreakerState::kClosed:
        metrics_->counter("net_breaker_close_total").inc();
        break;
    }
    metrics_->gauge("net_breaker_state_w" + std::to_string(w))
        .set(to == BreakerState::kClosed ? 0
                                         : (to == BreakerState::kHalfOpen ? 1
                                                                          : 2));
  }
  slot.state = to;
  slot.consecutive_failures = 0;
  std::fill(slot.window.begin(), slot.window.end(),
            static_cast<unsigned char>(0));
  slot.window_pos = 0;
  slot.window_fill = 0;
  slot.window_errors = 0;
  slot.trials_granted = 0;
  slot.trial_successes = 0;
}

void BreakerBoard::note_outcome(Slot& slot, std::size_t w, bool ok) {
  // Closed-state bookkeeping: the consecutive counter catches a hard
  // outage, the rolling window catches a worker failing a fraction of
  // everything it touches.
  slot.consecutive_failures = ok ? 0 : slot.consecutive_failures + 1;
  slot.window_errors -= slot.window[slot.window_pos];
  slot.window[slot.window_pos] = ok ? 0 : 1;
  slot.window_errors += slot.window[slot.window_pos];
  slot.window_pos = (slot.window_pos + 1) % slot.window.size();
  slot.window_fill = std::min(slot.window_fill + 1, slot.window.size());
  const bool window_trips =
      slot.window_fill == slot.window.size() &&
      static_cast<double>(slot.window_errors) >=
          options_.error_rate_threshold *
              static_cast<double>(slot.window.size());
  if (slot.consecutive_failures >= options_.failure_threshold ||
      window_trips) {
    transition(slot, w, BreakerState::kOpen);
  }
}

void BreakerBoard::record_success(std::size_t w) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (w >= slots_.size()) {
    return;
  }
  Slot& slot = slots_[w];
  switch (slot.state) {
    case BreakerState::kClosed:
      note_outcome(slot, w, true);
      break;
    case BreakerState::kHalfOpen:
      slot.trials_granted = std::max(0, slot.trials_granted - 1);
      if (++slot.trial_successes >= options_.half_open_trials) {
        transition(slot, w, BreakerState::kClosed);
      }
      break;
    case BreakerState::kOpen:
      // A straggler response from before the trip; the probe owns the
      // open -> half-open edge.
      break;
  }
}

void BreakerBoard::record_failure(std::size_t w) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (w >= slots_.size()) {
    return;
  }
  Slot& slot = slots_[w];
  switch (slot.state) {
    case BreakerState::kClosed:
      note_outcome(slot, w, false);
      break;
    case BreakerState::kHalfOpen:
      transition(slot, w, BreakerState::kOpen);  // trial failed
      break;
    case BreakerState::kOpen:
      break;
  }
}

void BreakerBoard::on_probe(std::size_t w, bool ok) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (w >= slots_.size()) {
    return;
  }
  Slot& slot = slots_[w];
  if (ok) {
    switch (slot.state) {
      case BreakerState::kOpen:
        transition(slot, w, BreakerState::kHalfOpen);
        break;
      case BreakerState::kHalfOpen:
        // Probes count as trial successes so a recovered worker closes
        // its breaker even with zero client traffic.
        if (++slot.trial_successes >= options_.half_open_trials) {
          transition(slot, w, BreakerState::kClosed);
        }
        break;
      case BreakerState::kClosed:
        slot.consecutive_failures = 0;  // liveness proven
        break;
    }
  } else {
    switch (slot.state) {
      case BreakerState::kClosed:
        note_outcome(slot, w, false);  // trips idle dead workers too
        break;
      case BreakerState::kHalfOpen:
        transition(slot, w, BreakerState::kOpen);
        break;
      case BreakerState::kOpen:
        break;
    }
  }
}

bool BreakerBoard::allow(std::size_t w) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (w >= slots_.size()) {
    return false;
  }
  Slot& slot = slots_[w];
  switch (slot.state) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      return false;
    case BreakerState::kHalfOpen:
      if (slot.trials_granted < options_.half_open_trials) {
        ++slot.trials_granted;
        return true;
      }
      return false;
  }
  return false;
}

void BreakerBoard::cancel_trial(std::size_t w) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (w >= slots_.size()) {
    return;
  }
  Slot& slot = slots_[w];
  if (slot.state == BreakerState::kHalfOpen) {
    slot.trials_granted = std::max(0, slot.trials_granted - 1);
  }
}

BreakerState BreakerBoard::state(std::size_t w) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return w < slots_.size() ? slots_[w].state : BreakerState::kOpen;
}

std::vector<bool> BreakerBoard::eligibility() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<bool> out(slots_.size(), false);
  for (std::size_t w = 0; w < slots_.size(); ++w) {
    const Slot& slot = slots_[w];
    out[w] = slot.state == BreakerState::kClosed ||
             (slot.state == BreakerState::kHalfOpen &&
              slot.trials_granted < options_.half_open_trials);
  }
  return out;
}

RouteInfo request_route_info(const std::string& request_json) {
  try {
    const JsonValue doc = JsonValue::parse(request_json);
    if (!doc.is_object() || doc.find("cmd") != nullptr) {
      return {0, true};
    }
    std::uint64_t h = kFnvOffset;
    const auto fold = [&h](std::string_view tag, std::string_view value) {
      h = fnv1a_bytes(h, tag);
      h = fnv1a_bytes(h, value);
    };
    const auto str_field = [&doc](const char* key) -> const JsonValue* {
      const JsonValue* v = doc.find(key);
      return (v != nullptr && v->kind() == JsonValue::Kind::kString) ? v
                                                                     : nullptr;
    };
    const auto num_field = [&doc](const char* key, int fallback) {
      const JsonValue* v = doc.find(key);
      return (v != nullptr && v->kind() == JsonValue::Kind::kNumber)
                 ? static_cast<int>(v->as_number())
                 : fallback;
    };
    if (const JsonValue* kernel = str_field("kernel"); kernel != nullptr) {
      fold("kernel", kernel->as_string());
    } else if (const JsonValue* dfg = str_field("dfg"); dfg != nullptr) {
      fold("dfg", dfg->as_string());
    }
    if (const JsonValue* machine = str_field("machine"); machine != nullptr) {
      fold("machine", machine->as_string());
    } else {
      // Apply the protocol's defaults so spelled-out defaults hash the
      // same as omitted ones (service/protocol.cpp).
      const JsonValue* dp = str_field("datapath");
      fold("datapath", dp != nullptr ? dp->as_string() : "[1,1|1,1]");
      h = fnv1a(h, static_cast<std::uint64_t>(num_field("buses", 2)));
      h = fnv1a(h, static_cast<std::uint64_t>(num_field("move_latency", 1)));
    }
    return {fmix64(h), false};
  } catch (const std::exception&) {
    return {0, true};
  }
}

std::uint64_t request_route_key(const std::string& request_json) {
  return request_route_info(request_json).key;
}

#if defined(CVB_ROUTER_HAVE_SOCKETS)

namespace {

constexpr std::size_t kReadChunk = 16 * 1024;

/// Blocking connect to a Unix socket; -1 on failure.
int connect_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return -1;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    ::close(fd);
    return -1;
  }
  path.copy(addr.sun_path, path.size());
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool send_all(int fd, std::string_view bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) {
      continue;  // interrupted, nothing sent: retry
    }
    if (n <= 0) {
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// send_all for the router -> worker direction, with the upstream
/// fault sites compiled in. The injected mid-frame drop shuts the
/// socket down after a partial send: leaving it open would desync the
/// frame stream (the worker would swallow the next frame's header as
/// payload), which no real kernel failure can cause — a torn send is
/// always followed by the connection dying.
bool send_all_upstream(int fd, std::string_view bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    if (CVB_INJECT_DRAW("router.upstream_write.eintr") != 0) {
      continue;  // exactly a real EINTR: retry with nothing consumed
    }
    if (CVB_INJECT_DRAW("router.upstream_write.drop") != 0) {
      const std::size_t half = (bytes.size() - sent + 1) / 2;
      (void)::send(fd, bytes.data() + sent, half, MSG_NOSIGNAL);
      ::shutdown(fd, SHUT_RDWR);
      return false;
    }
    std::size_t len = bytes.size() - sent;
    if (CVB_INJECT_DRAW("router.upstream_write.torn") != 0) {
      len = 1;  // torn write: one byte per syscall
    }
    const ssize_t n = ::send(fd, bytes.data() + sent, len, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n <= 0) {
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// Blocking read of the next complete frame from `fd`, buffering
/// partial data in `buf` across calls. Returns false on EOF, a socket
/// error, or a framing error (the stream is then unusable).
bool read_frame_blocking(int fd, std::string& buf, FrameType* type,
                         std::string* payload) {
  while (true) {
    const DecodeResult decoded = decode_frame(buf);
    if (decoded.status == DecodeStatus::kFrame) {
      *type = decoded.frame.type;
      payload->assign(decoded.frame.payload);
      buf.erase(0, decoded.consumed);
      return true;
    }
    if (decoded.status != DecodeStatus::kNeedMore) {
      return false;
    }
    char chunk[kReadChunk];
    ssize_t n;
    if (CVB_INJECT_DRAW("router.upstream_read.eintr") != 0) {
      n = -1;
      errno = EINTR;
    } else if (CVB_INJECT_DRAW("router.upstream_read.eof") != 0) {
      n = 0;  // spurious EOF: the upstream connection looks dropped
    } else {
      n = ::read(fd, chunk, sizeof chunk);
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n <= 0) {
      return false;
    }
    buf.append(chunk, static_cast<std::size_t>(n));
  }
}

/// The typed answer for a request the router accepted but could not
/// get answered by its worker: transient, so the client may resubmit.
std::string worker_lost_json(const std::string& id,
                             const std::string& worker) {
  return invalid_request_json("worker '" + worker + "' unavailable", id,
                              FaultClass::kTransient)
      .dump();
}

}  // namespace

struct Router::Impl {
  explicit Impl(RouterOptions opts) : options(std::move(opts)) {}

  RouterOptions options;
  HashRing ring{options.workers, options.vnodes};
  /// Private fallback registry so breaker/hedge accounting always has
  /// somewhere to go; options.metrics overrides it for export.
  MetricsRegistry owned_metrics;
  MetricsRegistry* metrics =
      options.metrics != nullptr ? options.metrics : &owned_metrics;
  BreakerBoard breakers{options.workers.size(), options.breaker, metrics,
                        options.tracer};

  std::mutex mutex;
  std::condition_variable cv;
  bool listening = false;
  bool run_done = false;
  bool stopping = false;
  int listener = -1;
  std::vector<int> session_fds;          // live client fds (for shutdown)
  std::vector<std::thread> sessions;

  std::thread health_thread;

  // ---- health ----------------------------------------------------------

  /// One kPing round trip on a fresh connection, bounded by
  /// health_timeout_ms.
  [[nodiscard]] bool probe(const std::string& path) const {
    const int fd = connect_unix(path);
    if (fd < 0) {
      return false;
    }
    bool ok = false;
    if (send_all(fd, encode_frame(FrameType::kPing, "hc"))) {
      std::string buf;
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::milliseconds(
              static_cast<long long>(options.health_timeout_ms));
      while (std::chrono::steady_clock::now() < deadline) {
        pollfd pfd{fd, POLLIN, 0};
        const int ready = ::poll(&pfd, 1, 10);
        if (ready < 0) {
          if (errno == EINTR) {
            continue;  // interrupted poll is not a failed probe
          }
          break;
        }
        if (ready == 0) {
          continue;
        }
        char chunk[256];
        const ssize_t n = ::read(fd, chunk, sizeof chunk);
        if (n < 0 && errno == EINTR) {
          continue;
        }
        if (n <= 0) {
          break;
        }
        buf.append(chunk, static_cast<std::size_t>(n));
        const DecodeResult decoded = decode_frame(buf);
        if (decoded.status == DecodeStatus::kFrame) {
          ok = decoded.frame.type == FrameType::kPong;
          break;
        }
        if (decoded.status != DecodeStatus::kNeedMore) {
          break;
        }
      }
    }
    ::close(fd);
    return ok;
  }

  void health_loop() {
    while (true) {
      for (std::size_t w = 0; w < options.workers.size(); ++w) {
        {
          const std::lock_guard<std::mutex> lock(mutex);
          if (stopping) {
            return;
          }
        }
        breakers.on_probe(w, probe(options.workers[w]));
      }
      std::unique_lock<std::mutex> lock(mutex);
      cv.wait_for(lock,
                  std::chrono::milliseconds(static_cast<long long>(
                      options.health_interval_ms)),
                  [&] { return stopping; });
      if (stopping) {
        return;
      }
    }
  }

  // ---- per-session upstream state -------------------------------------

  struct Upstream {
    int fd = -1;        ///< mutated only under Session::mutex
    std::thread reader;
    bool dead = false;  ///< reader saw EOF/error; guarded by Session::mutex
    /// Held across every send_all_upstream on this fd. Two writers
    /// (session thread, hedge thread) sharing one stream socket must
    /// not interleave: a partial send from one inside the other's
    /// frame desyncs the worker's frame stream. ensure_upstream also
    /// takes it before closing a dead fd, so the fd number can never
    /// be recycled under a sender mid-send. Acquired before
    /// Session::mutex, after Session::connect_mutex.
    std::mutex write_mutex;
  };

  /// One request the session accepted and has not fully resolved. The
  /// per-session ledger (insertion == arrival order) is what makes
  /// hedging safe: `answered` flips exactly once, so however many
  /// workers eventually respond, the client sees exactly one terminal
  /// response, and the loser is counted and dropped.
  struct PendingReq {
    std::uint64_t seq = 0;     ///< session-unique handle (list-scan key)
    std::string id;            ///< request id (may be empty / repeated)
    std::string text;          ///< original request JSON (for hedging)
    std::uint64_t key = 0;     ///< route key (for the hedge ring walk)
    std::chrono::steady_clock::time_point enqueued;
    std::size_t primary = 0;   ///< worker the request was routed to
    std::vector<std::size_t> waiting_on;  ///< workers yet to answer
    bool answered = false;     ///< a terminal response was forwarded
    bool hedged = false;       ///< hedge decision made (fired or not)
  };

  struct Session {
    int client_fd = -1;
    bool client_binary = false;
    /// Guards client writes, the ledger, and upstream dead flags.
    std::mutex mutex;
    /// Serializes ensure_upstream between the session thread and the
    /// hedge thread (connect+backoff must not run twice for one slot;
    /// it sleeps, so it cannot hold `mutex`).
    std::mutex connect_mutex;
    std::vector<Upstream> upstreams;
    std::list<PendingReq> ledger;
    std::uint64_t next_seq = 1;
    bool closing = false;  ///< hedge thread exit flag, guarded by mutex
    std::condition_variable hedge_cv;
    std::thread hedge_thread;
  };

  /// Ledger entry by seq, or end(). Callers hold Session::mutex.
  static std::list<PendingReq>::iterator find_seq(Session& session,
                                                  std::uint64_t seq) {
    auto it = session.ledger.begin();
    while (it != session.ledger.end() && it->seq != seq) {
      ++it;
    }
    return it;
  }

  /// Serializes one response to the client in its own protocol.
  /// Returns false when the client is gone (callers just keep
  /// draining; the session loop notices EOF itself).
  bool send_to_client(Session& session, const std::string& json) {
    std::string wire;
    if (session.client_binary) {
      try {
        append_frame(wire, FrameType::kResponse, json);
      } catch (const std::invalid_argument&) {
        return false;
      }
    } else {
      wire = json;
      wire += '\n';
    }
    return send_all(session.client_fd, wire);
  }

  /// Forwards every kResponse/kError frame from worker `w` to the
  /// client until the upstream dies; then resolves whatever was still
  /// waiting on `w` (typed transient answer unless a hedge already
  /// answered or another worker is still racing).
  void upstream_reader(Session& session, std::size_t w) {
    Upstream& up = session.upstreams[w];
    std::string buf;
    FrameType type = FrameType::kResponse;
    std::string payload;
    while (read_frame_blocking(up.fd, buf, &type, &payload)) {
      if (type == FrameType::kPong) {
        continue;
      }
      if (type != FrameType::kResponse && type != FrameType::kError) {
        break;  // a worker never sends anything else; stream is corrupt
      }
      const std::string rid = extract_request_id(payload);
      const std::lock_guard<std::mutex> lock(session.mutex);
      // Oldest unresolved entry with this id that is waiting on us.
      auto match = session.ledger.end();
      for (auto it = session.ledger.begin(); it != session.ledger.end();
           ++it) {
        if (it->id == rid &&
            std::find(it->waiting_on.begin(), it->waiting_on.end(), w) !=
                it->waiting_on.end()) {
          match = it;
          break;
        }
      }
      if (match == session.ledger.end()) {
        // A response nothing is waiting for (e.g. the request's entry
        // was resolved by a send-failure path): count it, drop it —
        // forwarding it would duplicate a terminal response.
        metrics->counter("net_router_unmatched_responses").inc();
        continue;
      }
      match->waiting_on.erase(std::find(match->waiting_on.begin(),
                                        match->waiting_on.end(), w));
      breakers.record_success(w);
      if (!match->answered) {
        match->answered = true;
        if (w != match->primary) {
          metrics->counter("net_hedge_wins_total").inc();
        }
        send_to_client(session, payload);
      } else {
        // The race's loser: proven-deduplicated, never forwarded.
        metrics->counter("net_hedge_dedup_dropped_total").inc();
      }
      if (match->waiting_on.empty()) {
        session.ledger.erase(match);
      }
    }
    // Upstream gone: resolve everything still waiting on this worker.
    const std::lock_guard<std::mutex> lock(session.mutex);
    up.dead = true;
    bool had_pending = false;
    for (auto it = session.ledger.begin(); it != session.ledger.end();) {
      const auto pos =
          std::find(it->waiting_on.begin(), it->waiting_on.end(), w);
      if (pos == it->waiting_on.end()) {
        ++it;
        continue;
      }
      had_pending = true;
      it->waiting_on.erase(pos);
      if (it->waiting_on.empty()) {
        if (!it->answered) {
          metrics->counter("net_router_transient_total").inc();
          send_to_client(session,
                         worker_lost_json(it->id, options.workers[w]));
        }
        it = session.ledger.erase(it);
      } else {
        ++it;  // a hedge is still racing; it owns the final verdict
      }
    }
    if (had_pending) {
      breakers.record_failure(w);
    }
  }

  /// Connects (or reconnects) session's upstream to worker `w`, with
  /// bounded transient retries and decorrelated-jitter backoff.
  /// Returns false when every attempt failed. Thread-safe between the
  /// session thread and the hedge thread via Session::connect_mutex.
  bool ensure_upstream(Session& session, std::size_t w) {
    const std::lock_guard<std::mutex> connect_lock(session.connect_mutex);
    Upstream& up = session.upstreams[w];
    {
      const std::lock_guard<std::mutex> lock(session.mutex);
      if (up.fd >= 0 && !up.dead) {
        return true;
      }
    }
    // A dead previous connection: reap its reader before reconnecting.
    if (up.reader.joinable()) {
      up.reader.join();
    }
    {
      // write_mutex excludes a sender still mid-send on the old fd —
      // closing it out from under them would let the reconnect below
      // recycle the fd number into their stalled write. The fd store
      // itself is guarded by session.mutex like every other fd read.
      const std::lock_guard<std::mutex> write_lock(up.write_mutex);
      const std::lock_guard<std::mutex> lock(session.mutex);
      if (up.fd >= 0) {
        ::close(up.fd);
        up.fd = -1;
      }
    }
    Rng rng(options.jitter_seed ^ fmix64(w + 1));
    double delay_ms = options.backoff_base_ms;
    for (int attempt = 0; attempt < std::max(1, options.max_connect_attempts);
         ++attempt) {
      if (attempt > 0) {
        delay_ms = decorrelated_jitter_ms(options.backoff_base_ms,
                                          options.backoff_cap_ms, delay_ms,
                                          rng);
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(delay_ms));
      }
      int fd = -1;
      if (CVB_INJECT_DRAW("router.connect") == 0) {
        fd = connect_unix(options.workers[w]);
      }
      if (fd >= 0) {
        {
          const std::lock_guard<std::mutex> lock(session.mutex);
          up.fd = fd;
          up.dead = false;
        }
        up.reader = std::thread([this, &session, w] {
          upstream_reader(session, w);
        });
        return true;
      }
    }
    return false;
  }

  /// Routes one JSON request unit from the client: walk the ring from
  /// the key's owner, take the first worker whose breaker allows
  /// traffic (fail-open to the owner when none does), enter it in the
  /// dedup ledger, send.
  void route_request(Session& session, const std::string& text) {
    ScopedSpan span(options.tracer, "router.route");
    metrics->counter("net_router_requests_total").inc();
    const RouteInfo route = request_route_info(text);
    const std::uint64_t key = route.key;
    const std::string id = extract_request_id(text);
    const std::vector<int> order = ring.pick_sequence(key);
    if (order.empty()) {
      metrics->counter("net_router_transient_total").inc();
      send_to_client_locked(session, worker_lost_json(id, "(none)"));
      return;
    }
    int picked = -1;
    for (const int candidate : order) {
      if (breakers.allow(static_cast<std::size_t>(candidate))) {
        picked = candidate;
        break;
      }
    }
    if (picked < 0) {
      // Every breaker refuses: fail-open through the hash owner as an
      // extra trial — a wrong verdict must degrade to "try it".
      picked = order.front();
      metrics->counter("net_breaker_fail_open_total").inc();
    }
    span.attr("key", static_cast<long long>(key));
    span.attr("worker", picked);
    const auto w = static_cast<std::size_t>(picked);
    if (!ensure_upstream(session, w)) {
      breakers.record_failure(w);
      metrics->counter("net_router_transient_total").inc();
      send_to_client_locked(session, worker_lost_json(id, options.workers[w]));
      return;
    }
    Upstream& up = session.upstreams[w];
    // Serialize writers on this upstream for the whole send: a
    // concurrent hedge send on the same socket must not interleave
    // its frame bytes with ours (a partial send would desync the
    // worker's frame stream).
    const std::lock_guard<std::mutex> write_lock(up.write_mutex);
    std::uint64_t seq = 0;
    int up_fd = -1;
    {
      const std::lock_guard<std::mutex> lock(session.mutex);
      PendingReq entry;
      entry.seq = seq = session.next_seq++;
      entry.id = id;
      entry.text = text;
      entry.key = key;
      entry.enqueued = std::chrono::steady_clock::now();
      entry.primary = w;
      entry.waiting_on.push_back(w);
      // Control requests carry side effects — snapshot writes, metric
      // reads — that must not run twice; pre-marking them hedged
      // keeps the hedge thread away.
      entry.hedged = route.is_control;
      session.ledger.push_back(std::move(entry));
      // Re-read under the locks: ensure_upstream may have closed and
      // reconnected (or failed to) between returning and our
      // write_mutex acquisition.
      up_fd = up.fd;
    }
    if (up_fd < 0 ||
        !send_all_upstream(up_fd, encode_frame(FrameType::kRequest, text))) {
      breakers.record_failure(w);
      const std::lock_guard<std::mutex> lock(session.mutex);
      // The reader resolves the ledger when it notices the death;
      // resolve here only if it has not already done so.
      const auto it = find_seq(session, seq);
      if (it != session.ledger.end()) {
        const auto pos =
            std::find(it->waiting_on.begin(), it->waiting_on.end(), w);
        if (pos != it->waiting_on.end()) {
          it->waiting_on.erase(pos);
        }
        if (it->waiting_on.empty()) {
          if (!it->answered) {
            metrics->counter("net_router_transient_total").inc();
            send_to_client(session, worker_lost_json(id, options.workers[w]));
          }
          session.ledger.erase(it);
        }
      }
    }
  }

  /// The per-session hedge clock: wakes a few times per budget, fires
  /// each over-budget unanswered job to the next distinct ring worker
  /// whose breaker allows it (at most one hedge per request).
  void hedge_loop(Session& session) {
    const auto budget =
        std::chrono::duration<double, std::milli>(options.hedge_budget_ms);
    const auto poll_ms = std::chrono::milliseconds(std::clamp(
        static_cast<long long>(options.hedge_budget_ms / 4.0), 1LL, 50LL));
    struct Fire {
      std::uint64_t seq;
      std::string id;
      std::string text;
      std::size_t target;
    };
    std::unique_lock<std::mutex> lock(session.mutex);
    while (!session.closing) {
      session.hedge_cv.wait_for(lock, poll_ms);
      if (session.closing) {
        return;
      }
      const auto now = std::chrono::steady_clock::now();
      std::vector<Fire> fires;
      for (PendingReq& entry : session.ledger) {
        if (entry.answered || entry.hedged || now - entry.enqueued < budget) {
          continue;
        }
        entry.hedged = true;  // one hedge decision per request, ever
        for (const int candidate : ring.pick_sequence(entry.key)) {
          const auto target = static_cast<std::size_t>(candidate);
          if (target == entry.primary || !breakers.allow(target)) {
            continue;
          }
          fires.push_back({entry.seq, entry.id, entry.text, target});
          break;
        }
      }
      if (fires.empty()) {
        continue;
      }
      lock.unlock();
      for (const Fire& fire : fires) {
        if (!ensure_upstream(session, fire.target)) {
          breakers.record_failure(fire.target);
          continue;  // primary still owes the answer; nothing is lost
        }
        Upstream& up = session.upstreams[fire.target];
        // Same writer discipline as route_request: hold the upstream's
        // write mutex across the whole send so hedge bytes never
        // interleave with a session-thread frame on this socket.
        const std::lock_guard<std::mutex> write_lock(up.write_mutex);
        int up_fd = -1;
        {
          const std::lock_guard<std::mutex> relock(session.mutex);
          const auto it = find_seq(session, fire.seq);
          if (it == session.ledger.end() || it->answered) {
            // Resolved while we connected: abandon the hedge. The
            // fire scan's allow() may have consumed a half-open trial
            // slot that will now never see an outcome — repay it.
            breakers.cancel_trial(fire.target);
            continue;
          }
          it->waiting_on.push_back(fire.target);
          up_fd = up.fd;
        }
        metrics->counter("net_hedge_fired_total").inc();
        {
          ScopedSpan span(options.tracer, "router.hedge");
          span.attr("worker", static_cast<long long>(fire.target));
          span.attr("id", fire.id);
        }
        if (up_fd < 0 ||
            !send_all_upstream(
                up_fd, encode_frame(FrameType::kRequest, fire.text))) {
          breakers.record_failure(fire.target);
          const std::lock_guard<std::mutex> relock(session.mutex);
          const auto it = find_seq(session, fire.seq);
          if (it != session.ledger.end()) {
            const auto pos = std::find(it->waiting_on.begin(),
                                       it->waiting_on.end(), fire.target);
            if (pos != it->waiting_on.end()) {
              it->waiting_on.erase(pos);
            }
            // Usually the primary leg still owes the answer — but if
            // its reader died while this hedge was connecting, the
            // failed hedge was the last leg and owes the transient.
            if (it->waiting_on.empty()) {
              if (!it->answered) {
                metrics->counter("net_router_transient_total").inc();
                send_to_client(session,
                               worker_lost_json(
                                   it->id, options.workers[fire.target]));
              }
              session.ledger.erase(it);
            }
          }
        }
      }
      lock.lock();
    }
  }

  void send_to_client_locked(Session& session, const std::string& json) {
    const std::lock_guard<std::mutex> lock(session.mutex);
    send_to_client(session, json);
  }

  /// Best-effort {"cmd":"shutdown"} to every worker (used when a
  /// client asks the *fleet* to shut down through the router).
  void broadcast_shutdown() {
    for (const std::string& path : options.workers) {
      const int fd = connect_unix(path);
      if (fd < 0) {
        continue;
      }
      send_all(fd, encode_frame(FrameType::kRequest, "{\"cmd\":\"shutdown\"}"));
      ::close(fd);
    }
  }

  /// Handles one request unit; returns false when the session must end
  /// (quit / shutdown).
  bool handle_unit(Session& session, const std::string& text) {
    // Only quit/shutdown change the router's own behaviour; every
    // other request (jobs, metrics, trace, snapshot) is routed.
    try {
      const JsonValue doc = JsonValue::parse(text);
      if (doc.is_object()) {
        if (const JsonValue* cmd = doc.find("cmd");
            cmd != nullptr && cmd->kind() == JsonValue::Kind::kString) {
          if (cmd->as_string() == "quit") {
            return false;
          }
          if (cmd->as_string() == "shutdown") {
            broadcast_shutdown();
            JsonValue ok = JsonValue::object();
            ok.set("status", "ok");
            ok.set("cmd", "shutdown");
            send_to_client_locked(session, ok.dump());
            request_shutdown_impl();
            return false;
          }
        }
      }
    } catch (const std::exception&) {
      // Unparseable: still routed — the worker owns error reporting,
      // so direct and routed clients get byte-identical diagnostics.
    }
    route_request(session, text);
    return true;
  }

  void session_loop(int client_fd) {
    Session session;
    session.client_fd = client_fd;
    session.upstreams = std::vector<Upstream>(options.workers.size());
    ScopedSpan span(options.tracer, "router.session");
    if (options.hedge_budget_ms > 0 && options.workers.size() > 1) {
      session.hedge_thread =
          std::thread([this, &session] { hedge_loop(session); });
    }

    std::string buf;
    bool sniffed = false;
    bool running = true;
    while (running) {
      // Extract complete units from buf, then refill.
      if (sniffed && session.client_binary) {
        const DecodeResult decoded = decode_frame(buf);
        if (decoded.status == DecodeStatus::kFrame) {
          if (decoded.frame.type == FrameType::kPing) {
            const std::lock_guard<std::mutex> lock(session.mutex);
            send_all(client_fd,
                     encode_frame(FrameType::kPong, decoded.frame.payload));
          } else if (decoded.frame.type == FrameType::kRequest) {
            running = handle_unit(session, std::string(decoded.frame.payload));
          } else {
            running = false;  // unexpected type: drop the session
          }
          buf.erase(0, decoded.consumed);
          continue;
        }
        if (decoded.status != DecodeStatus::kNeedMore) {
          const std::lock_guard<std::mutex> lock(session.mutex);
          std::string err_frame;
          append_frame(err_frame, FrameType::kError,
                       invalid_request_json(
                           decode_status_message(decoded.status))
                           .dump());
          send_all(client_fd, err_frame);
          break;
        }
      } else if (sniffed) {
        const std::size_t nl = buf.find('\n');
        if (nl != std::string::npos) {
          const std::string line = buf.substr(0, nl);
          buf.erase(0, nl + 1);
          if (!trim(line).empty()) {
            running = handle_unit(session, line);
          }
          continue;
        }
        if (buf.size() > options.max_request_bytes) {
          send_to_client_locked(
              session, invalid_request_json("request line exceeds " +
                                            std::to_string(
                                                options.max_request_bytes) +
                                            " bytes")
                           .dump());
          break;
        }
      }
      char chunk[kReadChunk];
      const ssize_t n = ::read(client_fd, chunk, sizeof chunk);
      if (n <= 0) {
        // EOF: a final unterminated NDJSON line still counts.
        if (sniffed && !session.client_binary && !trim(buf).empty()) {
          handle_unit(session, buf);
        }
        break;
      }
      buf.append(chunk, static_cast<std::size_t>(n));
      if (!sniffed && !buf.empty()) {
        session.client_binary =
            looks_binary(static_cast<unsigned char>(buf.front()));
        sniffed = true;
      }
    }

    // Stop the hedge clock first: once joined it can no longer open
    // fresh upstream connections behind the drain below.
    {
      const std::lock_guard<std::mutex> lock(session.mutex);
      session.closing = true;
    }
    session.hedge_cv.notify_all();
    if (session.hedge_thread.joinable()) {
      session.hedge_thread.join();
    }
    // Drain: half-close every upstream so workers finish in-flight
    // jobs and respond; readers forward those responses, then exit.
    for (Upstream& up : session.upstreams) {
      if (up.fd >= 0) {
        ::shutdown(up.fd, SHUT_WR);
      }
    }
    for (Upstream& up : session.upstreams) {
      if (up.reader.joinable()) {
        up.reader.join();
      }
      if (up.fd >= 0) {
        ::close(up.fd);
      }
    }
    ::close(client_fd);
    const std::lock_guard<std::mutex> lock(mutex);
    session_fds.erase(
        std::remove(session_fds.begin(), session_fds.end(), client_fd),
        session_fds.end());
  }

  // ---- lifecycle -------------------------------------------------------

  void request_shutdown_impl() {
    const std::lock_guard<std::mutex> lock(mutex);
    if (stopping) {
      return;
    }
    stopping = true;
    if (listener >= 0) {
      ::shutdown(listener, SHUT_RDWR);
    }
    for (const int fd : session_fds) {
      ::shutdown(fd, SHUT_RD);  // unblock session reads; writes drain
    }
    cv.notify_all();
  }

  int run(std::ostream& err) {
    const auto fail = [&](const std::string& message) {
      err << "cvrouter: " << message << '\n';
      const std::lock_guard<std::mutex> lock(mutex);
      run_done = true;
      cv.notify_all();
      return 2;
    };
    if (options.workers.empty()) {
      return fail("at least one --worker is required");
    }
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
      return fail("cannot create socket");
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options.listen_path.size() >= sizeof addr.sun_path) {
      ::close(fd);
      return fail("socket path too long");
    }
    options.listen_path.copy(addr.sun_path, options.listen_path.size());
    ::unlink(options.listen_path.c_str());
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
            0 ||
        ::listen(fd, 64) != 0) {
      ::close(fd);
      return fail("cannot bind/listen on '" + options.listen_path + "'");
    }
    bool already_stopping = false;
    {
      const std::lock_guard<std::mutex> lock(mutex);
      listener = fd;
      listening = true;
      // Breakers start closed (the analogue of presumed-healthy):
      // until evidence arrives, routing follows the pure hash verdict,
      // or early requests would skip not-yet-probed workers and break
      // cache affinity.
      already_stopping = stopping;
    }
    cv.notify_all();

    health_thread = std::thread([this] { health_loop(); });

    while (!already_stopping) {
      const int client = ::accept(listener, nullptr, nullptr);
      if (client < 0) {
        if (errno == EINTR) {
          continue;  // a signal must not take down the accept loop
        }
        break;  // listener shut down (or a fatal accept error)
      }
      const std::lock_guard<std::mutex> lock(mutex);
      if (stopping) {
        ::close(client);
        break;
      }
      session_fds.push_back(client);
      sessions.emplace_back([this, client] { session_loop(client); });
    }

    request_shutdown_impl();
    for (std::thread& t : sessions) {
      if (t.joinable()) {
        t.join();
      }
    }
    if (health_thread.joinable()) {
      health_thread.join();
    }
    std::unique_lock<std::mutex> lock(mutex);
    if (listener >= 0) {
      ::close(listener);
      listener = -1;
    }
    ::unlink(options.listen_path.c_str());
    listening = false;
    run_done = true;
    cv.notify_all();
    return 0;
  }
};

Router::Router(RouterOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

Router::~Router() = default;

int Router::run(std::ostream& err) { return impl_->run(err); }

void Router::request_shutdown() { impl_->request_shutdown_impl(); }

bool Router::wait_until_listening() {
  std::unique_lock<std::mutex> lock(impl_->mutex);
  impl_->cv.wait(lock, [&] { return impl_->listening || impl_->run_done; });
  return impl_->listening;
}

#else  // !CVB_ROUTER_HAVE_SOCKETS

struct Router::Impl {
  RouterOptions options;
};

Router::Router(RouterOptions options)
    : impl_(std::make_unique<Impl>(Impl{std::move(options)})) {}

Router::~Router() = default;

int Router::run(std::ostream& err) {
  err << "cvrouter: Unix sockets are not supported on this platform\n";
  return 1;
}

void Router::request_shutdown() {}

bool Router::wait_until_listening() { return false; }

#endif  // CVB_ROUTER_HAVE_SOCKETS

}  // namespace cvb::net
