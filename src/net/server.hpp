// cvb::net::NetServer — the asynchronous socket front-end of the
// binding service.
//
// PR 2's `--socket` transport accepted one connection at a time and
// served it with blocking reads, so a fleet router could not fan
// requests across workers. This server multiplexes any number of
// Unix-domain connections onto one epoll loop (net/event_loop.hpp) and
// one shared cvb::Service, speaking both wire protocols on the same
// port:
//
//  * NDJSON (PR 2): one JSON request per line, one JSON response line
//    per job, completion order.
//  * Binary frames (net/frame.hpp): the same JSON payloads wrapped in
//    length-prefixed frames — no line scanning, payloads may contain
//    newlines, and kPing/kPong frames give routers a health probe that
//    never touches the job queue.
//
// The protocol is sniffed per connection from its first byte (0xC5 is
// never valid leading JSON), so old NDJSON clients keep working
// unchanged next to binary ones.
//
// Concurrency model: every connection object is owned by the loop
// thread alone. Service workers finish jobs on their own threads and
// only append {connection, response-JSON} pairs to a mutex-guarded
// completion queue, then wake the loop via eventfd; the loop thread
// encodes the response in the connection's own protocol and writes it.
// No connection state is ever touched off-loop, so none of it is
// locked.
//
// Backpressure: each connection has a bounded write buffer
// (`write_budget_bytes`). A slow reader whose buffer exceeds the
// budget stops being *read* (its fd drops out of the EPOLLIN set)
// until the buffer drains below half the budget — so a stalled client
// holds at most budget + one read chunk of memory, and overload beyond
// that surfaces as the service's own typed shed/reject responses,
// never as unbounded buffering.
#pragma once

#include "net/event_loop.hpp"

#if defined(CVB_HAVE_EPOLL)

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace cvb {
class Service;
class Tracer;
}  // namespace cvb

namespace cvb::net {

struct NetServerOptions {
  /// Unix-domain socket path to bind (required). An existing file at
  /// the path is unlinked first, like the PR 2 transport.
  std::string socket_path;
  /// Exit after the first accepted connection fully drains (the
  /// original --once contract; later connects are refused because the
  /// listener closes as soon as the first connection arrives).
  bool once = false;
  /// Per-connection write-buffer budget before the reader is paused.
  std::size_t write_budget_bytes = std::size_t{1} << 20;
  /// Cap on one request unit (NDJSON line or binary frame payload).
  /// Must not exceed kMaxFramePayload.
  std::size_t max_request_bytes = std::size_t{1} << 20;
  int listen_backlog = 64;
  /// Span recorder for net.accept / net.frame / net.flush (null = off).
  Tracer* tracer = nullptr;
};

/// One server instance: construct, then run() on the serving thread.
/// request_shutdown() and wait_until_listening() are thread-safe;
/// everything else belongs to the run() thread.
class NetServer {
 public:
  NetServer(Service& service, NetServerOptions options);
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Binds, listens, and serves until --once completion, a
  /// {"cmd":"shutdown"} request, or request_shutdown(). Returns the
  /// process exit code (0 = served and drained; 2 = could not bind,
  /// message on `err`). Does not return until every submitted job's
  /// completion callback has finished, so the server may be destroyed
  /// immediately afterwards.
  int run(std::ostream& err);

  /// Thread-safe: begins a graceful drain (stop accepting, finish
  /// in-flight jobs, flush, close). Idempotent; safe before run().
  void request_shutdown();

  /// Thread-safe: blocks until run() is listening (true) or failed to
  /// bind / already returned (false). Lets tests start client threads
  /// without racing the bind.
  bool wait_until_listening();

 private:
  enum class Proto { kUnknown, kNdjson, kBinary };

  struct Connection {
    int fd = -1;
    std::uint64_t id = 0;
    Proto proto = Proto::kUnknown;
    std::string read_buf;
    std::string write_buf;   ///< unsent bytes (front = next to send)
    std::size_t write_pos = 0;  ///< sent prefix of write_buf
    long long inflight = 0;  ///< jobs submitted, not yet responded
    bool paused = false;     ///< EPOLLIN off: write budget exceeded
    bool closing = false;    ///< no more reads; close once drained
    bool discarding = false;  ///< NDJSON overlong line: drop to newline
    std::uint32_t interest = 0;  ///< current epoll mask
    /// Snapshot requests deferred until inflight drains (snapshot is a
    /// barrier over the jobs this connection already sent).
    std::vector<std::string> pending_snapshots;
  };

  void on_accept();
  void on_conn_event(std::uint64_t id, std::uint32_t events);
  void on_wakeup();
  void consume_input(Connection& conn);
  void consume_ndjson(Connection& conn);
  void consume_binary(Connection& conn);
  void handle_request_text(Connection& conn, const std::string& text);
  void take_snapshot(Connection& conn, const std::string& path);
  void send_text(Connection& conn, const std::string& json_text);
  void protocol_error(Connection& conn, const std::string& message);
  /// Returns false when the flush closed the connection (dead peer).
  bool flush_writes(Connection& conn);
  void apply_backpressure(Connection& conn);
  void update_interest(Connection& conn);
  void maybe_close(Connection& conn);
  void close_conn(std::uint64_t id);
  void begin_shutdown();
  /// Tracks the high-water write backlog across all connections in the
  /// `net_write_backlog_peak_bytes` gauge — the observable the chaos
  /// harness uses to prove the write budget is never violated. Loop
  /// thread only.
  void note_backlog_peak(const Connection& conn);

  [[nodiscard]] std::size_t write_backlog(const Connection& conn) const {
    return conn.write_buf.size() - conn.write_pos;
  }

  Service& service_;
  NetServerOptions options_;
  EventLoop loop_;
  int listener_ = -1;
  bool listener_open_ = false;
  bool shutting_down_ = false;
  bool once_served_ = false;  ///< --once: the one connection arrived
  std::uint64_t next_conn_id_ = 1;
  std::size_t write_backlog_peak_ = 0;
  std::map<std::uint64_t, std::unique_ptr<Connection>> conns_;

  // Cross-thread state: completion queue + lifecycle flags. Everything
  // a Service worker callback touches is guarded by mutex_; the final
  // wait in run() acquires it too, which proves no callback still
  // holds a reference to this server once run() returns.
  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<std::pair<std::uint64_t, std::string>> completions_;
  long long inflight_jobs_ = 0;
  bool shutdown_requested_ = false;
  bool listening_ = false;
  bool run_done_ = false;
};

}  // namespace cvb::net

#endif  // CVB_HAVE_EPOLL
