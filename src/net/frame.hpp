// Binary wire framing for the binding service (FORMATS.md "Binary
// frame protocol").
//
// The NDJSON protocol spends a measurable share of every request on
// line scanning and forces the reader to touch each byte twice (once
// to find the newline, once to parse). Frames replace the newline with
// an 8-byte length-prefixed header so the receiver knows exactly how
// many bytes to wait for, hands the payload out as a zero-copy
// std::string_view into the receive buffer, and can carry payloads
// that themselves contain newlines (the snapshot format relies on
// this).
//
//   offset  size  field
//   0       1     magic0 = 0xC5   (never a valid NDJSON first byte)
//   1       1     magic1 = 0x76   ('v')
//   2       1     version = 0x01
//   3       1     type            (FrameType)
//   4       4     payload length, little-endian u32, <= 1 MiB
//   8       len   payload
//
// Decoding is strict: wrong magic, unknown version, unknown type, or a
// length beyond the 1 MiB cap are typed, unrecoverable errors (there
// is no reliable way to resynchronize a byte stream after a corrupt
// header). A short buffer is simply kNeedMore — the decoder never
// reads past the view it is given and never allocates.
//
// Protocol auto-detection: the first byte of a connection decides the
// transport. 0xC5 (magic0) is binary; anything else — '{', whitespace,
// any ASCII — is NDJSON. 0xC5 is not valid UTF-8 JSON start and not
// whitespace, so no legal NDJSON request can be mistaken for a frame.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace cvb::net {

inline constexpr unsigned char kFrameMagic0 = 0xC5;
inline constexpr unsigned char kFrameMagic1 = 0x76;
inline constexpr unsigned char kFrameVersion = 0x01;
inline constexpr std::size_t kFrameHeaderSize = 8;
/// Payload cap, matching the NDJSON 1 MiB request-line cap.
inline constexpr std::size_t kMaxFramePayload = std::size_t{1} << 20;

/// Frame types on the wire and in snapshot files.
enum class FrameType : std::uint8_t {
  kRequest = 0x01,   ///< JSON request object (same schema as one NDJSON line)
  kResponse = 0x02,  ///< JSON response object
  kError = 0x03,     ///< JSON error object (invalid_request / protocol errors)
  kPing = 0x04,      ///< liveness probe (empty payload)
  kPong = 0x05,      ///< liveness reply (payload echoed from the ping)
  kSnapshotHeader = 0x10,  ///< eval-cache snapshot file header record
  kSnapshotEntry = 0x11,   ///< one eval-cache entry record
  kSnapshotTrailer = 0x12,  ///< snapshot whole-file checksum trailer
};

/// True for the byte values decode_frame() accepts as a type.
[[nodiscard]] bool is_known_frame_type(std::uint8_t type);

/// One decoded frame; `payload` is a view into the caller's buffer and
/// is valid only until that buffer is mutated.
struct FrameView {
  FrameType type = FrameType::kRequest;
  std::string_view payload;
};

enum class DecodeStatus {
  kFrame,       ///< one complete frame decoded
  kNeedMore,    ///< buffer holds only a frame prefix; read more bytes
  kBadMagic,    ///< first bytes are not the frame magic
  kBadVersion,  ///< unsupported protocol version
  kBadType,     ///< unknown frame type
  kOversized,   ///< declared payload length exceeds kMaxFramePayload
};

/// True for the statuses that poison the stream (everything except
/// kFrame / kNeedMore).
[[nodiscard]] bool is_decode_error(DecodeStatus status);

/// Human-readable reason for an error status ("" for kFrame/kNeedMore).
[[nodiscard]] const char* decode_status_message(DecodeStatus status);

struct DecodeResult {
  DecodeStatus status = DecodeStatus::kNeedMore;
  FrameView frame;           ///< meaningful only when status == kFrame
  std::size_t consumed = 0;  ///< bytes of `buffer` this frame occupied
};

/// Decodes the frame at the start of `buffer`. Never reads outside
/// `buffer`, never allocates. On kFrame, `frame.payload` points into
/// `buffer` and `consumed` is kFrameHeaderSize + payload size; on
/// kNeedMore nothing was consumed; on an error status the stream is
/// unrecoverable and must be closed.
[[nodiscard]] DecodeResult decode_frame(std::string_view buffer);

/// Appends one encoded frame to `out`. Throws std::invalid_argument
/// when `payload` exceeds kMaxFramePayload.
void append_frame(std::string& out, FrameType type, std::string_view payload);

/// One encoded frame as a fresh string.
[[nodiscard]] std::string encode_frame(FrameType type,
                                       std::string_view payload);

/// Transport sniff on the first byte of a connection: binary iff the
/// byte is kFrameMagic0.
[[nodiscard]] inline bool looks_binary(unsigned char first_byte) {
  return first_byte == kFrameMagic0;
}

}  // namespace cvb::net
