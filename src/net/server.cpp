#include "net/server.hpp"

#if defined(CVB_HAVE_EPOLL)

#include <fcntl.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "net/frame.hpp"
#include "net/snapshot.hpp"
#include "service/protocol.hpp"
#include "service/service.hpp"
#include "support/fault.hpp"
#include "support/strings.hpp"
#include "support/trace.hpp"

namespace cvb::net {

namespace {

/// Bytes read per EPOLLIN dispatch. Level-triggered epoll re-arms when
/// more data is pending, so one bounded chunk per dispatch keeps every
/// connection's share of the loop fair.
constexpr std::size_t kReadChunk = 16 * 1024;

}  // namespace

NetServer::NetServer(Service& service, NetServerOptions options)
    : service_(service), options_(std::move(options)) {
  if (options_.max_request_bytes > kMaxFramePayload) {
    options_.max_request_bytes = kMaxFramePayload;
  }
}

NetServer::~NetServer() = default;

void NetServer::request_shutdown() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    shutdown_requested_ = true;
  }
  loop_.wakeup();
}

bool NetServer::wait_until_listening() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return listening_ || run_done_; });
  return listening_;
}

int NetServer::run(std::ostream& err) {
  const auto fail = [&](const std::string& message) {
    err << "cvserve: " << message << '\n';
    const std::lock_guard<std::mutex> lock(mutex_);
    run_done_ = true;
    cv_.notify_all();
    return 2;
  };

  listener_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listener_ < 0) {
    return fail("cannot create socket");
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.size() >= sizeof addr.sun_path) {
    ::close(listener_);
    return fail("socket path too long");
  }
  options_.socket_path.copy(addr.sun_path, options_.socket_path.size());
  ::unlink(options_.socket_path.c_str());
  if (::bind(listener_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listener_, options_.listen_backlog) != 0) {
    ::close(listener_);
    return fail("cannot bind/listen on '" + options_.socket_path + "'");
  }
  listener_open_ = true;

  loop_.set_wakeup_handler([this] { on_wakeup(); });
  loop_.add(listener_, EPOLLIN, [this](std::uint32_t) { on_accept(); });

  bool start = true;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    listening_ = true;
    if (shutdown_requested_) {
      start = false;  // shut down before we ever served
    }
  }
  cv_.notify_all();

  int rc = 0;
  if (start) {
    try {
      loop_.run();
    } catch (const std::exception& e) {
      err << "cvserve: event loop failed: " << e.what() << '\n';
      rc = 2;
    }
  }

  // Loop is done: tear down fds (normal exits already drained every
  // connection; this only matters on the error path).
  for (auto& [id, conn] : conns_) {
    ::close(conn->fd);
  }
  conns_.clear();
  if (listener_open_) {
    ::close(listener_);
    listener_open_ = false;
  }
  ::unlink(options_.socket_path.c_str());

  // Wait for every outstanding job's completion callback to finish.
  // The callbacks touch this object (queue, eventfd) and the predicate
  // is checked under the same mutex they release last, so once this
  // wait returns no callback can still reference the server.
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return inflight_jobs_ == 0; });
  completions_.clear();
  listening_ = false;
  run_done_ = true;
  cv_.notify_all();
  return rc;
}

void NetServer::on_accept() {
  while (listener_open_) {
    const int fd =
        ::accept4(listener_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) {
        continue;  // interrupted mid-burst: the pending peer is still there
      }
      break;  // EAGAIN: burst drained (or a transient accept error)
    }
    if (shutting_down_) {
      ::close(fd);
      continue;
    }
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->id = next_conn_id_++;
    conn->interest = EPOLLIN;
    const std::uint64_t id = conn->id;
    {
      ScopedSpan span(options_.tracer, "net.accept");
      span.attr("conn", id);
    }
    service_.metrics().counter("net_accepted").inc();
    service_.metrics().gauge("net_open_connections").add(1);
    loop_.add(fd, EPOLLIN,
              [this, id](std::uint32_t events) { on_conn_event(id, events); });
    conns_.emplace(id, std::move(conn));
    if (options_.once) {
      // --once: this is the one connection we serve. Closing the
      // listener now preserves the PR 2 contract (exit after it
      // drains) under epoll.
      once_served_ = true;
      loop_.remove(listener_);
      ::close(listener_);
      listener_open_ = false;
      break;
    }
  }
}

void NetServer::on_conn_event(std::uint64_t id, std::uint32_t events) {
  const auto it = conns_.find(id);
  if (it == conns_.end()) {
    return;
  }
  Connection& conn = *it->second;
  if ((events & EPOLLERR) != 0) {
    close_conn(id);
    return;
  }
  if ((events & (EPOLLIN | EPOLLHUP)) != 0 && !conn.paused && !conn.closing) {
    char chunk[kReadChunk];
    std::size_t want = sizeof chunk;
    ssize_t n;
    if (CVB_INJECT_DRAW("net.read.eintr") != 0) {
      n = -1;
      errno = EINTR;
    } else if (CVB_INJECT_DRAW("net.read.reset") != 0) {
      n = -1;
      errno = ECONNRESET;
    } else {
      if (const std::uint64_t draw = CVB_INJECT_DRAW("net.read.short");
          draw != 0) {
        want = 1 + static_cast<std::size_t>(draw % 7);  // torn delivery
      }
      n = ::read(conn.fd, chunk, want);
    }
    if (n > 0) {
      service_.metrics().counter("net_bytes_in").inc(n);
      conn.read_buf.append(chunk, static_cast<std::size_t>(n));
      consume_input(conn);
      if (conns_.find(id) == conns_.end()) {
        return;  // consume_input closed it (protocol error)
      }
    } else if (n < 0 &&
               (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) {
      // Nothing consumed. EINTR is NOT a dead peer: level-triggered
      // epoll re-raises EPOLLIN for the still-pending bytes, so simply
      // returning retries the read on the next dispatch.
    } else {
      // EOF (or a dead peer): stop reading. An NDJSON stream's final
      // unterminated line still counts as a request, matching the
      // blocking transport's getline semantics.
      conn.closing = true;
      if (conn.proto == Proto::kNdjson && !conn.discarding &&
          !trim(conn.read_buf).empty()) {
        const std::string line = std::move(conn.read_buf);
        conn.read_buf.clear();
        if (line.size() > options_.max_request_bytes) {
          send_text(conn, invalid_request_json(
                              "request line exceeds " +
                              std::to_string(options_.max_request_bytes) +
                              " bytes")
                              .dump());
        } else {
          handle_request_text(conn, line);
        }
      } else if (conn.proto == Proto::kBinary && !conn.read_buf.empty()) {
        service_.metrics().counter("net_protocol_errors").inc();
      }
      if (conns_.find(id) == conns_.end()) {
        return;
      }
      conn.read_buf.clear();
      update_interest(conn);
      maybe_close(conn);
      return;
    }
  }
  if ((events & EPOLLOUT) != 0) {
    flush_writes(conn);
  }
}

void NetServer::consume_input(Connection& conn) {
  if (conn.proto == Proto::kUnknown) {
    if (conn.read_buf.empty()) {
      return;
    }
    conn.proto =
        looks_binary(static_cast<unsigned char>(conn.read_buf.front()))
            ? Proto::kBinary
            : Proto::kNdjson;
    service_.metrics()
        .counter(conn.proto == Proto::kBinary ? "net_conns_binary"
                                              : "net_conns_ndjson")
        .inc();
  }
  if (conn.proto == Proto::kBinary) {
    consume_binary(conn);
  } else {
    consume_ndjson(conn);
  }
}

void NetServer::consume_ndjson(Connection& conn) {
  const std::uint64_t id = conn.id;
  std::size_t start = 0;
  while (start < conn.read_buf.size()) {
    const std::size_t nl = conn.read_buf.find('\n', start);
    if (nl == std::string::npos) {
      break;
    }
    if (conn.discarding) {
      conn.discarding = false;  // the overlong line finally ended
      start = nl + 1;
      continue;
    }
    const std::string line = conn.read_buf.substr(start, nl - start);
    start = nl + 1;
    if (trim(line).empty()) {
      continue;
    }
    if (line.size() > options_.max_request_bytes) {
      service_.metrics().counter("net_overlong_lines").inc();
      send_text(conn, invalid_request_json(
                          "request line exceeds " +
                          std::to_string(options_.max_request_bytes) +
                          " bytes")
                          .dump());
    } else {
      service_.metrics().counter("net_lines_in").inc();
      handle_request_text(conn, line);
    }
    if (conns_.find(id) == conns_.end()) {
      return;  // request closed the connection (quit/shutdown drain)
    }
    if (conn.closing) {
      break;  // quit: ignore anything pipelined after it
    }
  }
  conn.read_buf.erase(0, start);
  // A partial line beyond the cap: answer once, then drop bytes until
  // its newline arrives (keeps the stream line-aligned, bounds memory).
  if (!conn.discarding && !conn.closing &&
      conn.read_buf.size() > options_.max_request_bytes) {
    service_.metrics().counter("net_overlong_lines").inc();
    conn.discarding = true;
    conn.read_buf.clear();
    send_text(conn, invalid_request_json(
                        "request line exceeds " +
                        std::to_string(options_.max_request_bytes) + " bytes")
                        .dump());
  } else if (conn.discarding) {
    conn.read_buf.clear();
  }
}

void NetServer::consume_binary(Connection& conn) {
  const std::uint64_t id = conn.id;
  std::size_t start = 0;
  while (true) {
    const DecodeResult decoded =
        decode_frame(std::string_view(conn.read_buf).substr(start));
    if (decoded.status == DecodeStatus::kNeedMore) {
      break;
    }
    if (is_decode_error(decoded.status)) {
      conn.read_buf.erase(0, start);
      protocol_error(conn, decode_status_message(decoded.status));
      return;
    }
    service_.metrics().counter("net_frames_in").inc();
    switch (decoded.frame.type) {
      case FrameType::kRequest:
        if (decoded.frame.payload.size() > options_.max_request_bytes) {
          conn.read_buf.erase(0, start);
          protocol_error(conn, "frame payload exceeds request cap");
          return;
        }
        handle_request_text(conn, std::string(decoded.frame.payload));
        break;
      case FrameType::kPing: {
        // Health probe: answered on the loop thread, never queued
        // behind jobs — a busy worker still reports alive.
        service_.metrics().counter("net_pings").inc();
        std::string pong;
        append_frame(pong, FrameType::kPong, decoded.frame.payload);
        conn.write_buf += pong;
        break;
      }
      default:
        conn.read_buf.erase(0, start);
        protocol_error(conn, "unexpected frame type from client");
        return;
    }
    if (conns_.find(id) == conns_.end()) {
      return;
    }
    start += decoded.consumed;
    if (conn.closing) {
      break;
    }
  }
  conn.read_buf.erase(0, start);
  if (flush_writes(conn)) {
    // Pongs bypass send_text, so a ping flood against a slow reader
    // must hit the same budget check here.
    apply_backpressure(conn);
  }
}

void NetServer::handle_request_text(Connection& conn,
                                    const std::string& text) {
  ScopedSpan span(options_.tracer, "net.frame");
  span.attr("conn", conn.id);
  span.attr("proto", conn.proto == Proto::kBinary ? "binary" : "ndjson");
  span.attr("bytes", text.size());

  ServeRequest request;
  try {
    request = parse_serve_request(text);
  } catch (const std::exception& e) {
    send_text(conn, invalid_request_json(e.what(), extract_request_id(text))
                        .dump());
    return;
  }
  switch (request.kind) {
    case ServeRequest::Kind::kQuit:
      conn.closing = true;
      update_interest(conn);
      maybe_close(conn);
      return;
    case ServeRequest::Kind::kShutdown: {
      JsonValue ok = JsonValue::object();
      ok.set("status", "ok");
      ok.set("cmd", "shutdown");
      send_text(conn, ok.dump());
      begin_shutdown();
      return;
    }
    case ServeRequest::Kind::kMetrics:
      send_text(conn, service_.metrics_snapshot().dump());
      return;
    case ServeRequest::Kind::kTrace:
      if (options_.tracer == nullptr) {
        send_text(conn,
                  invalid_request_json(
                      "tracing is not enabled; restart cvserve with --trace")
                      .dump());
      } else {
        send_text(conn, chrome_trace_json(options_.tracer->drain(),
                                          options_.tracer->dropped())
                            .dump());
      }
      return;
    case ServeRequest::Kind::kSnapshot:
      // A snapshot is a barrier: it must reflect every job this
      // connection already sent, so defer it until they all complete.
      if (conn.inflight > 0) {
        conn.pending_snapshots.push_back(request.path);
      } else {
        take_snapshot(conn, request.path);
      }
      return;
    case ServeRequest::Kind::kJob:
      break;
  }

  ++conn.inflight;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++inflight_jobs_;
  }
  service_.submit(
      std::move(request.job), [this, id = conn.id](BindOutcome outcome) {
        // Runs on a Service worker thread (or inline on the loop
        // thread for shed jobs). Only this queue and the eventfd are
        // touched; the loop thread does all per-connection work.
        std::string json = outcome_to_json(outcome).dump();
        const std::lock_guard<std::mutex> lock(mutex_);
        completions_.emplace_back(id, std::move(json));
        loop_.wakeup();
        if (--inflight_jobs_ == 0) {
          cv_.notify_all();
        }
      });
}

void NetServer::on_wakeup() {
  std::vector<std::pair<std::uint64_t, std::string>> done;
  bool want_shutdown = false;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    done.swap(completions_);
    want_shutdown = shutdown_requested_;
  }
  for (auto& [id, json] : done) {
    const auto it = conns_.find(id);
    if (it == conns_.end()) {
      // The connection died while its job ran; the outcome has nowhere
      // to go (the service already counted the job itself).
      service_.metrics().counter("net_orphaned_responses").inc();
      continue;
    }
    Connection& conn = *it->second;
    --conn.inflight;
    send_text(conn, json);
    // send_text can close the connection (dead peer), so re-resolve it
    // before draining any snapshot barrier that was waiting on this job.
    while (true) {
      const auto again = conns_.find(id);
      if (again == conns_.end()) {
        break;
      }
      Connection& drained = *again->second;
      if (drained.inflight != 0 || drained.pending_snapshots.empty()) {
        break;
      }
      const std::string path = drained.pending_snapshots.front();
      drained.pending_snapshots.erase(drained.pending_snapshots.begin());
      take_snapshot(drained, path);
    }
  }
  if (want_shutdown) {
    begin_shutdown();
  }
}

void NetServer::take_snapshot(Connection& conn, const std::string& path) {
  try {
    const std::vector<CacheExportEntry> entries = service_.snapshot_cache();
    save_cache_snapshot(path, entries);
    JsonValue ok = JsonValue::object();
    ok.set("status", "ok");
    ok.set("cmd", "snapshot");
    ok.set("path", path);
    ok.set("entries", static_cast<long long>(entries.size()));
    send_text(conn, ok.dump());
  } catch (const std::exception& e) {
    send_text(conn, invalid_request_json(e.what()).dump());
  }
}

void NetServer::send_text(Connection& conn, const std::string& json_text) {
  service_.metrics().counter("net_responses_out").inc();
  if (conn.proto == Proto::kBinary) {
    try {
      append_frame(conn.write_buf, FrameType::kResponse, json_text);
    } catch (const std::invalid_argument&) {
      protocol_error(conn, "response exceeds frame payload cap");
      return;
    }
  } else {
    conn.write_buf += json_text;
    conn.write_buf += '\n';
  }
  if (!flush_writes(conn)) {
    return;
  }
  apply_backpressure(conn);
}

void NetServer::apply_backpressure(Connection& conn) {
  if (!conn.paused && !conn.closing &&
      write_backlog(conn) > options_.write_budget_bytes) {
    // Slow reader: stop reading (and thus admitting) from this client
    // until it drains below half the budget. Memory stays bounded;
    // overload turns into typed shed responses upstream, not growth.
    conn.paused = true;
    service_.metrics().counter("net_backpressure_pauses").inc();
    update_interest(conn);
  }
}

void NetServer::protocol_error(Connection& conn, const std::string& message) {
  service_.metrics().counter("net_protocol_errors").inc();
  const std::string json =
      invalid_request_json(message).dump();
  if (conn.proto == Proto::kBinary) {
    // A framing violation is unrecoverable (no resync point): send one
    // typed error frame, then close once it flushes.
    try {
      append_frame(conn.write_buf, FrameType::kError, json);
    } catch (const std::invalid_argument&) {
    }
  } else {
    conn.write_buf += json;
    conn.write_buf += '\n';
  }
  conn.closing = true;
  if (!flush_writes(conn)) {
    return;
  }
  update_interest(conn);
  maybe_close(conn);
}

bool NetServer::flush_writes(Connection& conn) {
  note_backlog_peak(conn);
  if (write_backlog(conn) == 0) {
    maybe_close(conn);
    return conns_.find(conn.id) != conns_.end();
  }
  ScopedSpan span(options_.tracer, "net.flush");
  span.attr("conn", conn.id);
  std::size_t written = 0;
  while (conn.write_pos < conn.write_buf.size()) {
    if (CVB_INJECT_DRAW("net.frame_drop") != 0) {
      // Mid-frame connection drop: the peer vanishes with part of a
      // frame (backlog is nonzero here) never delivered.
      span.attr("bytes", written);
      const std::uint64_t id = conn.id;
      close_conn(id);
      return false;
    }
    std::size_t len = conn.write_buf.size() - conn.write_pos;
    ssize_t n;
    if (CVB_INJECT_DRAW("net.write.eintr") != 0) {
      n = -1;
      errno = EINTR;
    } else if (CVB_INJECT_DRAW("net.write.eagain") != 0) {
      n = -1;
      errno = EAGAIN;
    } else {
      if (CVB_INJECT_DRAW("net.write.short") != 0) {
        len = 1;  // torn write: one byte per syscall
      }
      n = ::send(conn.fd, conn.write_buf.data() + conn.write_pos, len,
                 MSG_NOSIGNAL);
    }
    if (n > 0) {
      conn.write_pos += static_cast<std::size_t>(n);
      written += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;  // interrupted, nothing sent: retry immediately
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      break;  // kernel buffer full; EPOLLOUT will resume us
    }
    span.attr("bytes", written);
    const std::uint64_t id = conn.id;
    close_conn(id);  // peer is gone (EPIPE/ECONNRESET)
    return false;
  }
  span.attr("bytes", written);
  if (written > 0) {
    service_.metrics().counter("net_bytes_out").inc(
        static_cast<long long>(written));
  }
  if (conn.write_pos == conn.write_buf.size()) {
    conn.write_buf.clear();
    conn.write_pos = 0;
  } else if (conn.write_pos > options_.write_budget_bytes) {
    // Reclaim the sent prefix so a long-lived slow conn can't pin 2x
    // the budget.
    conn.write_buf.erase(0, conn.write_pos);
    conn.write_pos = 0;
  }
  if (conn.paused && write_backlog(conn) <= options_.write_budget_bytes / 2) {
    conn.paused = false;
    service_.metrics().counter("net_backpressure_resumes").inc();
  }
  update_interest(conn);
  // maybe_close can erase (and free) the connection — grab the id
  // first; reading conn.id afterwards would be a use-after-free.
  const std::uint64_t id = conn.id;
  maybe_close(conn);
  return conns_.find(id) != conns_.end();
}

void NetServer::note_backlog_peak(const Connection& conn) {
  const std::size_t backlog = write_backlog(conn);
  if (backlog > write_backlog_peak_) {
    write_backlog_peak_ = backlog;
    service_.metrics().gauge("net_write_backlog_peak_bytes").set(
        static_cast<long long>(backlog));
  }
}

void NetServer::update_interest(Connection& conn) {
  std::uint32_t mask = 0;
  if (!conn.paused && !conn.closing) {
    mask |= EPOLLIN;
  }
  if (write_backlog(conn) > 0) {
    mask |= EPOLLOUT;
  }
  if (mask != conn.interest) {
    loop_.modify(conn.fd, mask);
    conn.interest = mask;
  }
}

void NetServer::maybe_close(Connection& conn) {
  if (conn.closing && conn.inflight == 0 && write_backlog(conn) == 0) {
    close_conn(conn.id);
  }
}

void NetServer::close_conn(std::uint64_t id) {
  const auto it = conns_.find(id);
  if (it == conns_.end()) {
    return;
  }
  loop_.remove(it->second->fd);
  ::close(it->second->fd);
  conns_.erase(it);
  service_.metrics().counter("net_closed").inc();
  service_.metrics().gauge("net_open_connections").add(-1);
  if (conns_.empty() && !listener_open_) {
    // --once drained, or a graceful shutdown finished its last
    // connection: the loop has nothing left to wait for.
    loop_.stop();
  }
}

void NetServer::begin_shutdown() {
  if (shutting_down_) {
    return;
  }
  shutting_down_ = true;
  if (listener_open_) {
    loop_.remove(listener_);
    ::close(listener_);
    listener_open_ = false;
    ::unlink(options_.socket_path.c_str());
  }
  // Graceful drain: stop reading everywhere, let in-flight jobs finish
  // and their responses flush, then close each connection.
  std::vector<std::uint64_t> ids;
  ids.reserve(conns_.size());
  for (const auto& [id, conn] : conns_) {
    ids.push_back(id);
  }
  for (const std::uint64_t id : ids) {
    const auto it = conns_.find(id);
    if (it == conns_.end()) {
      continue;
    }
    Connection& conn = *it->second;
    conn.closing = true;
    update_interest(conn);
    maybe_close(conn);
  }
  if (conns_.empty()) {
    loop_.stop();
  }
}

}  // namespace cvb::net

#endif  // CVB_HAVE_EPOLL
