// Thin epoll wrapper for the async serving loop (Linux only; the
// CVB_HAVE_EPOLL guard lets callers fall back to the blocking
// transport elsewhere).
//
// Scope: level-triggered fd callbacks on one thread, plus a
// thread-safe wakeup channel (an eventfd) so other threads — the
// service's worker pool completing jobs — can hand results back to the
// loop thread without touching any connection state themselves. That
// single-threaded ownership rule is the whole concurrency design of
// the net server: every Connection is only ever read or written on the
// loop thread, so none of it needs locks.
#pragma once

#if defined(__linux__)
#define CVB_HAVE_EPOLL 1

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

namespace cvb::net {

/// One epoll instance + eventfd. Not thread-safe except where noted
/// (wakeup()); everything else must run on the thread calling run().
class EventLoop {
 public:
  using FdCallback = std::function<void(std::uint32_t events)>;

  /// Throws std::runtime_error when the kernel refuses epoll/eventfd.
  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Registers `fd` (non-blocking, caller-owned) for `events`
  /// (EPOLLIN/EPOLLOUT/...). The callback runs on the loop thread and
  /// may add/modify/remove fds, including its own.
  void add(int fd, std::uint32_t events, FdCallback callback);

  /// Changes the interest mask of a registered fd.
  void modify(int fd, std::uint32_t events);

  /// Unregisters `fd`. Does not close it. Safe to call from the fd's
  /// own callback (the in-flight callback object stays alive).
  void remove(int fd);

  /// Dispatches events until stop(). Returns after the current batch
  /// when stopped.
  void run();

  /// Ends run() (call from a callback or the wakeup handler).
  void stop() { stopped_ = true; }

  /// Thread-safe: signals the eventfd; the loop thread then invokes
  /// the wakeup handler. Coalesces (N wakeups may yield one handler
  /// call), so handlers must drain queues, not count signals.
  void wakeup();

  /// Handler run on the loop thread after wakeup() (set before run()).
  void set_wakeup_handler(std::function<void()> handler) {
    wakeup_handler_ = std::move(handler);
  }

 private:
  int epoll_fd_ = -1;
  int event_fd_ = -1;
  bool stopped_ = false;
  std::function<void()> wakeup_handler_;
  // shared_ptr so dispatch can pin the callback it is invoking while
  // the callback itself remove()s the fd (erasing the map entry).
  std::unordered_map<int, std::shared_ptr<FdCallback>> callbacks_;
};

}  // namespace cvb::net

#endif  // __linux__
