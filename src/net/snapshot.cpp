#include "net/snapshot.hpp"

#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "net/frame.hpp"

namespace cvb::net {

namespace {

// ---- Little-endian scalar encoding --------------------------------------

void put_u32(std::string& out, std::uint32_t value) {
  for (int byte = 0; byte < 4; ++byte) {
    out.push_back(static_cast<char>((value >> (8 * byte)) & 0xffU));
  }
}

void put_u64(std::string& out, std::uint64_t value) {
  for (int byte = 0; byte < 8; ++byte) {
    out.push_back(static_cast<char>((value >> (8 * byte)) & 0xffU));
  }
}

void put_i32(std::string& out, std::int32_t value) {
  put_u32(out, static_cast<std::uint32_t>(value));
}

/// Bounds-checked read cursor over one frame payload. Every getter
/// throws rather than read past the payload, so a truncated or
/// corrupted entry can never cause an out-of-bounds read.
struct Cursor {
  std::string_view data;
  std::size_t pos = 0;

  void need(std::size_t bytes) const {
    if (data.size() - pos < bytes) {
      throw std::invalid_argument("snapshot: truncated record");
    }
  }

  std::uint32_t u32() {
    need(4);
    std::uint32_t value = 0;
    for (int byte = 0; byte < 4; ++byte) {
      value |= static_cast<std::uint32_t>(
                   static_cast<unsigned char>(data[pos + byte]))
               << (8 * byte);
    }
    pos += 4;
    return value;
  }

  std::uint64_t u64() {
    need(8);
    std::uint64_t value = 0;
    for (int byte = 0; byte < 8; ++byte) {
      value |= static_cast<std::uint64_t>(
                   static_cast<unsigned char>(data[pos + byte]))
               << (8 * byte);
    }
    pos += 8;
    return value;
  }

  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }

  [[nodiscard]] bool done() const { return pos == data.size(); }
};

std::string encode_entry(const CacheExportEntry& entry) {
  std::string payload;
  put_u64(payload, entry.key);
  put_u64(payload, entry.signature);
  put_i32(payload, entry.result.latency);
  put_i32(payload, entry.result.num_moves);
  put_u32(payload, static_cast<std::uint32_t>(entry.result.tail_counts.size()));
  for (const int count : entry.result.tail_counts) {
    put_i32(payload, count);
  }
  put_u32(payload, static_cast<std::uint32_t>(entry.binding.size()));
  for (const ClusterId cluster : entry.binding) {
    put_i32(payload, cluster);
  }
  return payload;
}

CacheExportEntry decode_entry(std::string_view payload) {
  Cursor cursor{payload};
  CacheExportEntry entry;
  entry.key = cursor.u64();
  entry.signature = cursor.u64();
  entry.result.latency = cursor.i32();
  entry.result.num_moves = cursor.i32();
  const std::uint32_t tail_len = cursor.u32();
  cursor.need(std::size_t{tail_len} * 4);  // reject bogus lengths up front
  entry.result.tail_counts.reserve(tail_len);
  for (std::uint32_t i = 0; i < tail_len; ++i) {
    entry.result.tail_counts.push_back(cursor.i32());
  }
  const std::uint32_t binding_len = cursor.u32();
  cursor.need(std::size_t{binding_len} * 4);
  entry.binding.reserve(binding_len);
  for (std::uint32_t i = 0; i < binding_len; ++i) {
    entry.binding.push_back(cursor.i32());
  }
  if (!cursor.done()) {
    throw std::invalid_argument("snapshot: trailing bytes in entry record");
  }
  return entry;
}

}  // namespace

void write_cache_snapshot(std::ostream& out,
                          const std::vector<CacheExportEntry>& entries) {
  std::string header;
  put_u32(header, kSnapshotVersion);
  put_u64(header, static_cast<std::uint64_t>(entries.size()));
  std::string frame;
  append_frame(frame, FrameType::kSnapshotHeader, header);
  out.write(frame.data(), static_cast<std::streamsize>(frame.size()));
  for (const CacheExportEntry& entry : entries) {
    frame.clear();
    append_frame(frame, FrameType::kSnapshotEntry, encode_entry(entry));
    out.write(frame.data(), static_cast<std::streamsize>(frame.size()));
  }
}

std::vector<CacheExportEntry> read_cache_snapshot(std::istream& in) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string bytes = buffer.str();
  std::string_view rest = bytes;

  const auto next_frame = [&rest](FrameType expected) -> std::string_view {
    const DecodeResult decoded = decode_frame(rest);
    if (decoded.status == DecodeStatus::kNeedMore) {
      throw std::invalid_argument("snapshot: truncated file");
    }
    if (is_decode_error(decoded.status)) {
      throw std::invalid_argument(std::string("snapshot: ") +
                                  decode_status_message(decoded.status));
    }
    if (decoded.frame.type != expected) {
      throw std::invalid_argument("snapshot: unexpected frame type");
    }
    rest = rest.substr(decoded.consumed);
    return decoded.frame.payload;
  };

  Cursor header{next_frame(FrameType::kSnapshotHeader)};
  const std::uint32_t version = header.u32();
  if (version != kSnapshotVersion) {
    throw std::invalid_argument(
        "snapshot: unsupported version " + std::to_string(version) +
        " (this build reads version " + std::to_string(kSnapshotVersion) +
        ")");
  }
  const std::uint64_t count = header.u64();
  if (!header.done()) {
    throw std::invalid_argument("snapshot: trailing bytes in header record");
  }

  // Each entry occupies at least one frame header, so a count beyond
  // rest.size() / kFrameHeaderSize cannot be honest — reject before
  // reserving anything (a hostile header must not size an allocation).
  if (count > rest.size() / kFrameHeaderSize) {
    throw std::invalid_argument("snapshot: truncated file");
  }
  std::vector<CacheExportEntry> entries;
  entries.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    entries.push_back(decode_entry(next_frame(FrameType::kSnapshotEntry)));
  }
  if (!rest.empty()) {
    throw std::invalid_argument("snapshot: trailing bytes after last entry");
  }
  return entries;
}

void save_cache_snapshot(const std::string& path,
                         const std::vector<CacheExportEntry>& entries) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::invalid_argument("cannot write '" + path + "'");
  }
  write_cache_snapshot(out, entries);
  out.flush();
  if (!out) {
    throw std::invalid_argument("write to '" + path + "' failed");
  }
}

std::vector<CacheExportEntry> load_cache_snapshot(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::invalid_argument("cannot open '" + path + "'");
  }
  return read_cache_snapshot(in);
}

}  // namespace cvb::net
