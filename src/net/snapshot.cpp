#include "net/snapshot.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "net/frame.hpp"
#include "support/hash.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define CVB_SNAPSHOT_HAVE_FSYNC 1
#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#endif

namespace cvb::net {

namespace {

// ---- Little-endian scalar encoding --------------------------------------

void put_u32(std::string& out, std::uint32_t value) {
  for (int byte = 0; byte < 4; ++byte) {
    out.push_back(static_cast<char>((value >> (8 * byte)) & 0xffU));
  }
}

void put_u64(std::string& out, std::uint64_t value) {
  for (int byte = 0; byte < 8; ++byte) {
    out.push_back(static_cast<char>((value >> (8 * byte)) & 0xffU));
  }
}

void put_i32(std::string& out, std::int32_t value) {
  put_u32(out, static_cast<std::uint32_t>(value));
}

/// Bounds-checked read cursor over one frame payload. Every getter
/// throws rather than read past the payload, so a truncated or
/// corrupted entry can never cause an out-of-bounds read.
struct Cursor {
  std::string_view data;
  std::size_t pos = 0;

  void need(std::size_t bytes) const {
    if (data.size() - pos < bytes) {
      throw std::invalid_argument("snapshot: truncated record");
    }
  }

  std::uint32_t u32() {
    need(4);
    std::uint32_t value = 0;
    for (int byte = 0; byte < 4; ++byte) {
      value |= static_cast<std::uint32_t>(
                   static_cast<unsigned char>(data[pos + byte]))
               << (8 * byte);
    }
    pos += 4;
    return value;
  }

  std::uint64_t u64() {
    need(8);
    std::uint64_t value = 0;
    for (int byte = 0; byte < 8; ++byte) {
      value |= static_cast<std::uint64_t>(
                   static_cast<unsigned char>(data[pos + byte]))
               << (8 * byte);
    }
    pos += 8;
    return value;
  }

  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }

  [[nodiscard]] bool done() const { return pos == data.size(); }
};

std::string encode_entry(const CacheExportEntry& entry) {
  std::string payload;
  put_u64(payload, entry.key);
  put_u64(payload, entry.signature);
  put_i32(payload, entry.result.latency);
  put_i32(payload, entry.result.num_moves);
  put_u32(payload, static_cast<std::uint32_t>(entry.result.tail_counts.size()));
  for (const int count : entry.result.tail_counts) {
    put_i32(payload, count);
  }
  put_u32(payload, static_cast<std::uint32_t>(entry.binding.size()));
  for (const ClusterId cluster : entry.binding) {
    put_i32(payload, cluster);
  }
  return payload;
}

CacheExportEntry decode_entry(std::string_view payload) {
  Cursor cursor{payload};
  CacheExportEntry entry;
  entry.key = cursor.u64();
  entry.signature = cursor.u64();
  entry.result.latency = cursor.i32();
  entry.result.num_moves = cursor.i32();
  const std::uint32_t tail_len = cursor.u32();
  cursor.need(std::size_t{tail_len} * 4);  // reject bogus lengths up front
  entry.result.tail_counts.reserve(tail_len);
  for (std::uint32_t i = 0; i < tail_len; ++i) {
    entry.result.tail_counts.push_back(cursor.i32());
  }
  const std::uint32_t binding_len = cursor.u32();
  cursor.need(std::size_t{binding_len} * 4);
  entry.binding.reserve(binding_len);
  for (std::uint32_t i = 0; i < binding_len; ++i) {
    entry.binding.push_back(cursor.i32());
  }
  if (!cursor.done()) {
    throw std::invalid_argument("snapshot: trailing bytes in entry record");
  }
  return entry;
}

/// A collision-free staging path next to `path`. Two concurrent
/// savers (another thread, or another process sharing the snapshot
/// file) must never stage into the same tmp name: the second open
/// would truncate the first's half-written bytes and the rename could
/// publish a torn file. pid + a process-local counter make the name
/// unique; only the final rename target is shared.
std::string unique_tmp_path(const std::string& path) {
  static std::atomic<std::uint64_t> counter{0};
  std::string tmp = path + ".tmp.";
#if defined(CVB_SNAPSHOT_HAVE_FSYNC)
  tmp += std::to_string(static_cast<long long>(::getpid()));
  tmp += '.';
#endif
  tmp += std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
  return tmp;
}

}  // namespace

void write_cache_snapshot(std::ostream& out,
                          const std::vector<CacheExportEntry>& entries) {
  // The trailer checksum covers every file byte before it (frame
  // headers included), accumulated as the frames are written.
  std::uint64_t hash = kFnvOffset;
  const auto emit = [&](const std::string& frame) {
    hash = fnv1a_bytes(hash, frame);
    out.write(frame.data(), static_cast<std::streamsize>(frame.size()));
  };
  std::string header;
  put_u32(header, kSnapshotVersion);
  put_u64(header, static_cast<std::uint64_t>(entries.size()));
  std::string frame;
  append_frame(frame, FrameType::kSnapshotHeader, header);
  emit(frame);
  for (const CacheExportEntry& entry : entries) {
    frame.clear();
    append_frame(frame, FrameType::kSnapshotEntry, encode_entry(entry));
    emit(frame);
  }
  std::string checksum;
  put_u64(checksum, fmix64(hash));
  frame.clear();
  append_frame(frame, FrameType::kSnapshotTrailer, checksum);
  out.write(frame.data(), static_cast<std::streamsize>(frame.size()));
}

SnapshotRestore restore_cache_snapshot(std::istream& in) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string bytes = buffer.str();
  std::string_view rest = bytes;
  std::uint64_t hash = kFnvOffset;

  // The header is held to the strict standard: a crash during an
  // atomic save never produces a file with a good magic but a torn
  // header (rename is all-or-nothing), so a bad header means the file
  // is not a snapshot at all.
  DecodeResult decoded = decode_frame(rest);
  if (decoded.status == DecodeStatus::kNeedMore) {
    throw std::invalid_argument("snapshot: truncated file");
  }
  if (is_decode_error(decoded.status)) {
    throw std::invalid_argument(std::string("snapshot: ") +
                                decode_status_message(decoded.status));
  }
  if (decoded.frame.type != FrameType::kSnapshotHeader) {
    throw std::invalid_argument("snapshot: unexpected frame type");
  }
  Cursor header{decoded.frame.payload};
  const std::uint32_t version = header.u32();
  if (version != kSnapshotVersion) {
    throw std::invalid_argument(
        "snapshot: unsupported version " + std::to_string(version) +
        " (this build reads version " + std::to_string(kSnapshotVersion) +
        ")");
  }
  const std::uint64_t count = header.u64();
  if (!header.done()) {
    throw std::invalid_argument("snapshot: trailing bytes in header record");
  }
  hash = fnv1a_bytes(hash, rest.substr(0, decoded.consumed));
  rest = rest.substr(decoded.consumed);

  SnapshotRestore out;
  // Clamp the reservation by what the remaining bytes could honestly
  // hold — a hostile count must not size an allocation.
  out.entries.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(count, rest.size() / kFrameHeaderSize)));
  const auto torn = [&](std::uint64_t parsed, const std::string& why) {
    out.complete = false;
    out.dropped = count - parsed;
    out.warning = why + " (salvaged " + std::to_string(parsed) + " of " +
                  std::to_string(count) + " entries)";
  };
  for (std::uint64_t i = 0; i < count; ++i) {
    decoded = decode_frame(rest);
    if (decoded.status != DecodeStatus::kFrame ||
        decoded.frame.type != FrameType::kSnapshotEntry) {
      torn(i, "truncated file");
      return out;
    }
    try {
      out.entries.push_back(decode_entry(decoded.frame.payload));
    } catch (const std::exception&) {
      torn(i, "malformed entry record");
      return out;
    }
    hash = fnv1a_bytes(hash, rest.substr(0, decoded.consumed));
    rest = rest.substr(decoded.consumed);
  }
  decoded = decode_frame(rest);
  if (decoded.status != DecodeStatus::kFrame ||
      decoded.frame.type != FrameType::kSnapshotTrailer) {
    torn(count, "missing or torn checksum trailer");
    return out;
  }
  Cursor trailer{decoded.frame.payload};
  const std::uint64_t expected = trailer.u64();
  if (!trailer.done()) {
    torn(count, "malformed checksum trailer");
    return out;
  }
  if (expected != fmix64(hash)) {
    // A complete trailer with the wrong sum is silent corruption, not
    // a crash artifact — the entries cannot be trusted either.
    throw std::invalid_argument("snapshot: checksum mismatch");
  }
  rest = rest.substr(decoded.consumed);
  if (!rest.empty()) {
    throw std::invalid_argument("snapshot: trailing bytes after trailer");
  }
  return out;
}

SnapshotRestore restore_cache_snapshot_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::invalid_argument("cannot open '" + path + "'");
  }
  return restore_cache_snapshot(in);
}

std::vector<CacheExportEntry> read_cache_snapshot(std::istream& in) {
  SnapshotRestore restored = restore_cache_snapshot(in);
  if (!restored.complete) {
    throw std::invalid_argument("snapshot: " + restored.warning);
  }
  return std::move(restored.entries);
}

void save_cache_snapshot(const std::string& path,
                         const std::vector<CacheExportEntry>& entries) {
  std::ostringstream buffer;
  write_cache_snapshot(buffer, entries);
  const std::string bytes = buffer.str();
  const std::string tmp = unique_tmp_path(path);
#if defined(CVB_SNAPSHOT_HAVE_FSYNC)
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    throw std::invalid_argument("cannot write '" + tmp + "'");
  }
  std::size_t done = 0;
  while (done < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + done, bytes.size() - done);
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n <= 0) {
      ::close(fd);
      ::unlink(tmp.c_str());
      throw std::invalid_argument("write to '" + tmp + "' failed");
    }
    done += static_cast<std::size_t>(n);
  }
  const bool synced = ::fsync(fd) == 0;
  ::close(fd);
  if (!synced) {
    ::unlink(tmp.c_str());
    throw std::invalid_argument("fsync of '" + tmp + "' failed");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    throw std::invalid_argument("rename to '" + path + "' failed");
  }
  // Persist the rename itself: fsync the containing directory (best
  // effort — some filesystems refuse directory fds).
  const std::size_t slash = path.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? "." : (slash == 0 ? "/" : path.substr(0, slash));
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    (void)::fsync(dfd);
    ::close(dfd);
  }
#else
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::invalid_argument("cannot write '" + tmp + "'");
    }
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      throw std::invalid_argument("write to '" + tmp + "' failed");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::invalid_argument("rename to '" + path + "' failed");
  }
#endif
}

std::vector<CacheExportEntry> load_cache_snapshot(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::invalid_argument("cannot open '" + path + "'");
  }
  return read_cache_snapshot(in);
}

}  // namespace cvb::net
