#include "net/event_loop.hpp"

#if defined(__linux__)

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "support/fault.hpp"

namespace cvb::net {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::runtime_error(std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

EventLoop::EventLoop() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    throw_errno("epoll_create1");
  }
  event_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (event_fd_ < 0) {
    const int saved = errno;
    ::close(epoll_fd_);
    errno = saved;
    throw_errno("eventfd");
  }
  ::epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = event_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, event_fd_, &ev) != 0) {
    const int saved = errno;
    ::close(event_fd_);
    ::close(epoll_fd_);
    errno = saved;
    throw_errno("epoll_ctl(eventfd)");
  }
}

EventLoop::~EventLoop() {
  if (event_fd_ >= 0) {
    ::close(event_fd_);
  }
  if (epoll_fd_ >= 0) {
    ::close(epoll_fd_);
  }
}

void EventLoop::add(int fd, std::uint32_t events, FdCallback callback) {
  ::epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    throw_errno("epoll_ctl(add)");
  }
  callbacks_[fd] = std::make_shared<FdCallback>(std::move(callback));
}

void EventLoop::modify(int fd, std::uint32_t events) {
  ::epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    throw_errno("epoll_ctl(mod)");
  }
}

void EventLoop::remove(int fd) {
  // The fd may already be gone from the kernel set (peer closed); only
  // surface errors other than "not registered".
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr) != 0 &&
      errno != ENOENT && errno != EBADF) {
    throw_errno("epoll_ctl(del)");
  }
  callbacks_.erase(fd);
}

void EventLoop::run() {
  stopped_ = false;
  std::array<::epoll_event, 64> events{};
  while (!stopped_) {
    const int ready = ::epoll_wait(epoll_fd_, events.data(),
                                   static_cast<int>(events.size()), -1);
    if (ready < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw_errno("epoll_wait");
    }
    for (int i = 0; i < ready && !stopped_; ++i) {
      const int fd = events[static_cast<std::size_t>(i)].data.fd;
      const std::uint32_t mask = events[static_cast<std::size_t>(i)].events;
      if (fd == event_fd_) {
        std::uint64_t drained = 0;
        while (::read(event_fd_, &drained, sizeof(drained)) ==
               static_cast<ssize_t>(sizeof(drained))) {
        }
        if (wakeup_handler_) {
          wakeup_handler_();
        }
        continue;
      }
      const auto it = callbacks_.find(fd);
      if (it == callbacks_.end()) {
        continue;  // removed by an earlier callback in this same batch
      }
      // Pin the callback: it may remove(fd) (erasing the map entry)
      // while running.
      const std::shared_ptr<FdCallback> callback = it->second;
      (*callback)(mask);
    }
  }
}

void EventLoop::wakeup() {
  // Chaos site for delayed cross-thread wakeups. Arm the hang flavour
  // only: callers (worker completion callbacks) may hold server state
  // locks, so a delay is safe but an exception here would be a lost
  // wakeup — a liveness bug this site exists to prove we don't have.
  CVB_INJECT("net.wakeup");
  const std::uint64_t one = 1;
  // A full eventfd counter (EAGAIN) already guarantees a pending
  // wakeup, so the write result only matters for real failures, which
  // have no recovery here anyway.
  [[maybe_unused]] const ssize_t rc = ::write(event_fd_, &one, sizeof(one));
}

}  // namespace cvb::net

#endif  // __linux__
