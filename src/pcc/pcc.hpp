// Baseline binder: Partial Component Clustering (G. Desoli,
// "Instruction assignment for clustered VLIW DSP compilers: a new
// approach", HP Labs TR HPL-98-13), reconstructed from the TR's
// published description as summarized in Section 4 of the DAC'01
// paper:
//
//  1. Partition the DFG into *partial components* by a depth-first
//     traversal from the graph outputs (BUG-like), capping each
//     component at a maximum size Phi. Several partitions are created
//     by sweeping Phi.
//  2. Assign components to clusters greedily, balancing load and
//     minimizing inter-cluster communication.
//  3. Iteratively improve the assignment with single-operation moves
//     driven by a (latency, moves) cost — the Q_M-style cost the DAC'01
//     paper attributes to PCC — with latency measured by a scheduler.
//
// Fairness note: our PCC evaluates candidates with the *same* list
// scheduler used for B-INIT/B-ITER (Desoli used a fast approximate
// scheduler), so the baseline is, if anything, slightly stronger than
// the original.
#pragma once

#include <vector>

#include "bind/binding.hpp"
#include "bind/driver.hpp"
#include "graph/dfg.hpp"
#include "machine/datapath.hpp"
#include "support/cancel.hpp"

namespace cvb {

class EvalEngine;
class Tracer;

/// PCC configuration.
struct PccParams {
  /// Maximum-component-size sweep; empty selects an automatic ladder
  /// {2, 4, 8, ...} capped at the DFG size.
  std::vector<int> component_caps;
  /// Relative weight of projected cluster load vs. communication cut in
  /// the initial component-assignment cost.
  double load_weight = 1.0;
  /// Safety cap on improvement steps per partition.
  int max_iterations = 10'000;
  /// Cooperative cancellation, polled between improvement rounds and
  /// between component-cap partitions. The first partition is always
  /// completed (greedy phases 1-2 are fast and the improvement loop
  /// honours the token), so even a pre-expired deadline returns a
  /// valid scheduled binding. Empty token = run to completion.
  CancelToken cancel;
  /// Resource guard forwarded to every schedule evaluation (both the
  /// approximate in-loop scheduler and the exact final one); 0 =
  /// unlimited. Overruns surface as cvb::ResourceLimitError.
  long long step_budget = 0;
  /// Span recorder ("pcc.partition" per component cap, plus the
  /// scheduler/eval spans underneath); null = tracing off.
  Tracer* tracer = nullptr;
};

/// Diagnostics of a PCC run.
struct PccInfo {
  int best_cap = 0;          ///< component cap of the winning partition
  int partitions_tried = 0;  ///< number of Phi values evaluated
  double ms = 0.0;           ///< total wall time
};

/// Runs the PCC baseline and returns the best scheduled binding found
/// across the component-size sweep.
///
/// The phase-3 improvement loop submits each round's single-operation
/// move candidates to `engine` as one batch (reduced in submission
/// order, so results are thread-count-invariant); a private serial
/// engine is used when `engine` is null.
[[nodiscard]] BindResult pcc_binding(const Dfg& dfg, const Datapath& dp,
                                     const PccParams& params = {},
                                     PccInfo* info = nullptr,
                                     EvalEngine* engine = nullptr);

/// Phase 1 exposed for tests: component label per operation for one
/// size cap (labels dense, 0-based; every op labeled; each component
/// has at most `cap` ops and is connected in the undirected sense
/// unless forced otherwise by the cap).
[[nodiscard]] std::vector<int> pcc_partial_components(const Dfg& dfg, int cap);

}  // namespace cvb
