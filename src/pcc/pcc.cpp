#include "pcc/pcc.hpp"

#include <algorithm>
#include <limits>
#include <memory>
#include <stdexcept>
#include <utility>

#include "bind/eval_engine.hpp"
#include "graph/analysis.hpp"
#include "support/stopwatch.hpp"
#include "support/trace.hpp"

namespace cvb {

std::vector<int> pcc_partial_components(const Dfg& dfg, int cap) {
  if (cap < 1) {
    throw std::invalid_argument("pcc_partial_components: cap must be >= 1");
  }
  const int n = dfg.num_ops();
  std::vector<int> label(static_cast<std::size_t>(n), -1);
  int current = -1;
  int current_size = cap;  // force a fresh component on first use

  // Depth-first upward traversal from the outputs, deepest chains
  // first, so dependence chains stay within one component (BUG-like).
  const std::vector<int> asap = asap_starts(dfg, unit_latencies());
  std::vector<OpId> sinks = dfg.sinks();
  std::sort(sinks.begin(), sinks.end(), [&](OpId a, OpId b) {
    return std::make_pair(-asap[static_cast<std::size_t>(a)], a) <
           std::make_pair(-asap[static_cast<std::size_t>(b)], b);
  });

  // Iterative DFS to keep stack depth independent of graph shape.
  const auto dfs = [&](OpId root) {
    std::vector<OpId> stack{root};
    while (!stack.empty()) {
      const OpId v = stack.back();
      stack.pop_back();
      if (label[static_cast<std::size_t>(v)] != -1) {
        continue;
      }
      if (current_size >= cap) {
        ++current;
        current_size = 0;
      }
      label[static_cast<std::size_t>(v)] = current;
      ++current_size;
      // Visit predecessors, latest (deepest) first so the critical
      // chain is followed before side inputs.
      std::vector<OpId> preds(dfg.preds(v).begin(), dfg.preds(v).end());
      std::sort(preds.begin(), preds.end(), [&](OpId a, OpId b) {
        return asap[static_cast<std::size_t>(a)] <
               asap[static_cast<std::size_t>(b)];
      });
      for (const OpId p : preds) {  // pushed shallow-first, popped deep-first
        if (label[static_cast<std::size_t>(p)] == -1) {
          stack.push_back(p);
        }
      }
    }
  };
  for (const OpId sink : sinks) {
    dfs(sink);
  }
  return label;
}

namespace {

/// PCC phase 3: best-improvement hill climbing with single-operation
/// moves under a (latency, moves) cost, where latency comes from the
/// *approximate* scheduler (bus contention ignored) — Desoli's TR uses
/// a fast approximate scheduler inside the loop; exact evaluation
/// happens only on the final result.
Binding pcc_improve(const Dfg& dfg, const Datapath& dp, Binding binding,
                    int max_iterations, const CancelToken& cancel,
                    long long step_budget, Tracer* tracer,
                    EvalEngine& engine) {
  if (cancel.stop_requested()) {
    return binding;  // anytime: the greedy assignment is the result
  }
  ListSchedulerOptions approx;
  approx.unbounded_bus = true;
  approx.step_budget = step_budget;
  approx.tracer = tracer;
  const auto key = [](const EvalResult& r) {
    return std::make_pair(r.latency, r.num_moves);
  };

  auto current = key(engine.evaluate(dfg, dp, binding, approx,
                                     EvalPhase::kPcc));
  for (int iteration = 0; iteration < max_iterations; ++iteration) {
    if (cancel.stop_requested()) {
      break;  // hill climbing only ever improves: best-so-far is current
    }
    // Enumerate the round's single-operation moves in the serial scan
    // order (op id ascending, destinations in discovery order), then
    // evaluate them as one batch.
    std::vector<std::pair<OpId, ClusterId>> moves;
    std::vector<Binding> trials;
    for (OpId v = 0; v < dfg.num_ops(); ++v) {
      const ClusterId cv = binding[static_cast<std::size_t>(v)];
      // Candidate destinations: clusters of cross-cluster neighbours.
      std::vector<ClusterId> destinations;
      const auto consider = [&](OpId u) {
        const ClusterId cu = binding[static_cast<std::size_t>(u)];
        if (cu != cv && dp.supports(cu, dfg.type(v)) &&
            std::find(destinations.begin(), destinations.end(), cu) ==
                destinations.end()) {
          destinations.push_back(cu);
        }
      };
      for (const OpId u : dfg.preds(v)) {
        consider(u);
      }
      for (const OpId u : dfg.succs(v)) {
        consider(u);
      }
      for (const ClusterId c : destinations) {
        moves.emplace_back(v, c);
        Binding trial = binding;
        trial[static_cast<std::size_t>(v)] = c;
        trials.push_back(std::move(trial));
      }
    }
    const std::vector<EvalResult> results =
        engine.evaluate_batch(dfg, dp, trials, approx, EvalPhase::kPcc);

    // Strict-improvement reduction in submission order: identical
    // tie-breaking to the serial nested loop.
    bool improved = false;
    auto best = current;
    OpId best_op = kNoOp;
    ClusterId best_cluster = kNoCluster;
    for (std::size_t i = 0; i < moves.size(); ++i) {
      const auto quality = key(results[i]);
      if (quality < best) {
        best = quality;
        best_op = moves[i].first;
        best_cluster = moves[i].second;
        improved = true;
      }
    }
    if (!improved) {
      break;
    }
    binding[static_cast<std::size_t>(best_op)] = best_cluster;
    current = best;
  }
  return binding;
}

/// Greedy assignment of partial components to clusters, balancing
/// per-FU-type load and minimizing the communication cut (PCC phase 2).
Binding assign_components(const Dfg& dfg, const Datapath& dp,
                          const std::vector<int>& label, double load_weight) {
  const int num_components =
      label.empty() ? 0
                    : *std::max_element(label.begin(), label.end()) + 1;
  std::vector<std::vector<OpId>> members(
      static_cast<std::size_t>(num_components));
  for (OpId v = 0; v < dfg.num_ops(); ++v) {
    members[static_cast<std::size_t>(label[static_cast<std::size_t>(v)])]
        .push_back(v);
  }
  // Largest components first: the classic bin-packing order.
  std::vector<int> order(static_cast<std::size_t>(num_components));
  for (int i = 0; i < num_components; ++i) {
    order[static_cast<std::size_t>(i)] = i;
  }
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return std::make_pair(-static_cast<int>(
                              members[static_cast<std::size_t>(a)].size()),
                          a) <
           std::make_pair(-static_cast<int>(
                              members[static_cast<std::size_t>(b)].size()),
                          b);
  });

  Binding binding(static_cast<std::size_t>(dfg.num_ops()), kNoCluster);
  // ops_on[c][t]: operations of FU type t already packed on cluster c.
  std::vector<std::array<int, kNumClusterFuTypes>> ops_on(
      static_cast<std::size_t>(dp.num_clusters()),
      std::array<int, kNumClusterFuTypes>{});

  const auto assign_ops = [&](const std::vector<OpId>& ops) {
    ClusterId best = kNoCluster;
    double best_cost = std::numeric_limits<double>::infinity();
    for (ClusterId c = 0; c < dp.num_clusters(); ++c) {
      bool feasible = true;
      std::array<int, kNumClusterFuTypes> extra{};
      int cut = 0;
      for (const OpId v : ops) {
        if (!dp.supports(c, dfg.type(v))) {
          feasible = false;
          break;
        }
        ++extra[static_cast<std::size_t>(fu_type_of(dfg.type(v)))];
        const auto count_cut = [&](OpId u) {
          const ClusterId cu = binding[static_cast<std::size_t>(u)];
          if (cu != kNoCluster && cu != c) {
            ++cut;
          }
        };
        for (const OpId u : dfg.preds(v)) {
          count_cut(u);
        }
        for (const OpId u : dfg.succs(v)) {
          count_cut(u);
        }
      }
      if (!feasible) {
        continue;
      }
      // Projected normalized load of the fullest FU type on c.
      double load = 0.0;
      for (int t = 0; t < kNumClusterFuTypes; ++t) {
        const int fu = dp.fu_count(c, static_cast<FuType>(t));
        if (fu > 0) {
          load = std::max(
              load, static_cast<double>(
                        ops_on[static_cast<std::size_t>(c)]
                              [static_cast<std::size_t>(t)] +
                        extra[static_cast<std::size_t>(t)]) /
                        fu);
        }
      }
      const double cost = cut + load_weight * load;
      if (cost < best_cost - 1e-12) {
        best_cost = cost;
        best = c;
      }
    }
    if (best == kNoCluster) {
      return false;
    }
    for (const OpId v : ops) {
      binding[static_cast<std::size_t>(v)] = best;
      ++ops_on[static_cast<std::size_t>(best)]
              [static_cast<std::size_t>(fu_type_of(dfg.type(v)))];
    }
    return true;
  };

  for (const int comp : order) {
    const std::vector<OpId>& ops = members[static_cast<std::size_t>(comp)];
    if (assign_ops(ops)) {
      continue;
    }
    // No single cluster can host the whole component (heterogeneous
    // datapath): fall back to op-by-op placement.
    for (const OpId v : ops) {
      if (!assign_ops({v})) {
        throw std::invalid_argument(
            "pcc_binding: no cluster can execute operation " + dfg.name(v));
      }
    }
  }
  return binding;
}

}  // namespace

BindResult pcc_binding(const Dfg& dfg, const Datapath& dp,
                       const PccParams& params, PccInfo* info,
                       EvalEngine* engine) {
  if (dfg.num_ops() == 0) {
    throw std::invalid_argument("pcc_binding: empty DFG");
  }
  Stopwatch watch;
  std::unique_ptr<EvalEngine> local;
  if (engine == nullptr) {
    local = std::make_unique<EvalEngine>();
    engine = local.get();
  }

  std::vector<int> caps = params.component_caps;
  if (caps.empty()) {
    for (int cap = 2; cap < dfg.num_ops(); cap *= 2) {
      caps.push_back(cap);
    }
    caps.push_back(dfg.num_ops());
  }

  BindResult best;
  bool have_best = false;
  int best_cap = 0;
  int tried = 0;
  for (const int cap : caps) {
    if (have_best && params.cancel.stop_requested()) {
      break;  // keep the best completed partition
    }
    ScopedSpan partition(params.tracer, "pcc.partition");
    const std::vector<int> label = pcc_partial_components(dfg, cap);
    Binding binding = assign_components(dfg, dp, label, params.load_weight);
    binding = pcc_improve(dfg, dp, std::move(binding), params.max_iterations,
                          params.cancel, params.step_budget, params.tracer,
                          *engine);
    ListSchedulerOptions exact;
    exact.step_budget = params.step_budget;
    exact.tracer = params.tracer;
    BindResult candidate =
        evaluate_binding(dfg, dp, std::move(binding), exact);
    ++tried;
    if (partition.enabled()) {
      partition.attr("cap", cap);
      partition.attr("latency", candidate.schedule.latency);
      partition.attr("moves", candidate.schedule.num_moves);
    }
    const auto key = [](const BindResult& r) {
      return std::make_pair(r.schedule.latency, r.schedule.num_moves);
    };
    if (!have_best || key(candidate) < key(best)) {
      best = std::move(candidate);
      best_cap = cap;
      have_best = true;
    }
  }
  if (info != nullptr) {
    info->best_cap = best_cap;
    info->partitions_tried = tried;
    info->ms = watch.elapsed_ms();
  }
  best.eval_stats = engine->stats();
  return best;
}

}  // namespace cvb
