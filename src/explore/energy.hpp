// First-order energy model for bound, scheduled basic blocks.
//
// The paper's motivation (via Rixner et al.) is that many-ported
// central register files are prohibitively costly; clustering trades
// some explicit transfer energy for much cheaper register file
// accesses. This model makes the tradeoff explicit:
//
//   E_total = sum over ops of E_fu(type)                (computation)
//           + M * e_bus                                 (transfers)
//           + sum over RF accesses of e_rf * f(ports)   (storage)
//
// where every regular operation makes up to 2 reads + 1 write to its
// cluster's file, every move makes 1 read (source file) + 1 write
// (destination file), and f(ports) = 1 + port_penalty * (ports - 3)
// models the superlinear cost of multiported files (3 ports is the
// single-FU baseline). Units are arbitrary "energy units"; only ratios
// across datapaths are meaningful.
#pragma once

#include "bind/bound_dfg.hpp"
#include "machine/datapath.hpp"

namespace cvb {

/// Model coefficients (defaults give plausible relative magnitudes:
/// a multiply costs ~4 adds, a bus hop ~2 adds, an RF access ~1/2 add).
struct EnergyModel {
  double e_alu_op = 1.0;
  double e_mult_op = 4.0;
  double e_bus_transfer = 2.0;
  double e_rf_access = 0.5;
  /// Per-extra-port multiplier on RF access energy.
  double port_penalty = 0.25;
};

/// Itemized estimate.
struct EnergyEstimate {
  double fu = 0.0;
  double bus = 0.0;
  double rf = 0.0;
  [[nodiscard]] double total() const { return fu + bus + rf; }
};

/// Estimates the energy of executing `bound` once on `dp`.
[[nodiscard]] EnergyEstimate estimate_energy(const BoundDfg& bound,
                                             const Datapath& dp,
                                             const EnergyModel& model = {});

}  // namespace cvb
