#include "explore/explore.hpp"

#include <algorithm>
#include <functional>
#include <stdexcept>
#include <tuple>

#include "bind/eval_engine.hpp"
#include "bind/lower_bounds.hpp"
#include "explore/energy.hpp"
#include "support/stopwatch.hpp"

namespace cvb {

int max_rf_ports(const Datapath& dp) {
  int worst = 0;
  for (ClusterId c = 0; c < dp.num_clusters(); ++c) {
    int fus = 0;
    for (int ti = 0; ti < kNumClusterFuTypes; ++ti) {
      fus += dp.fu_count(c, static_cast<FuType>(ti));
    }
    worst = std::max(worst, 3 * fus);
  }
  return worst;
}

namespace {

/// Canonical cluster order: more FUs first, then more ALUs.
bool cluster_leq(const Cluster& a, const Cluster& b) {
  const int fa = a.count(FuType::kAlu) + a.count(FuType::kMult);
  const int fb = b.count(FuType::kAlu) + b.count(FuType::kMult);
  return std::make_tuple(-fa, -a.count(FuType::kAlu), -a.count(FuType::kMult)) <=
         std::make_tuple(-fb, -b.count(FuType::kAlu), -b.count(FuType::kMult));
}

void enumerate_rec(const DseConstraints& cons, std::vector<Cluster>& current,
                   int fus_used, std::vector<Datapath>& out) {
  const int clusters = static_cast<int>(current.size());
  if (clusters >= cons.min_clusters && !current.empty()) {
    out.push_back(
        Datapath::uniform(current, cons.num_buses, cons.move_latency));
  }
  if (clusters == cons.max_clusters) {
    return;
  }
  for (int alus = 0; alus <= cons.max_fus_per_cluster; ++alus) {
    for (int muls = 0; alus + muls <= cons.max_fus_per_cluster; ++muls) {
      const int fus = alus + muls;
      if (fus == 0 || fus_used + fus > cons.max_total_fus) {
        continue;
      }
      Cluster next;
      next.fu_count[static_cast<std::size_t>(FuType::kAlu)] = alus;
      next.fu_count[static_cast<std::size_t>(FuType::kMult)] = muls;
      // Canonical (non-ascending) order kills permutations of the same
      // multiset of clusters.
      if (!current.empty() && !cluster_leq(current.back(), next)) {
        continue;
      }
      current.push_back(next);
      enumerate_rec(cons, current, fus_used + fus, out);
      current.pop_back();
    }
  }
}

}  // namespace

std::vector<Datapath> enumerate_datapaths(const DseConstraints& constraints) {
  if (constraints.max_total_fus < 1 || constraints.max_clusters < 1 ||
      constraints.min_clusters < 1 ||
      constraints.min_clusters > constraints.max_clusters ||
      constraints.max_fus_per_cluster < 1) {
    throw std::invalid_argument("enumerate_datapaths: bad constraints");
  }
  std::vector<Datapath> out;
  std::vector<Cluster> current;
  enumerate_rec(constraints, current, 0, out);
  return out;
}

std::vector<DsePoint> explore_design_space(const Dfg& dfg,
                                           const DseConstraints& constraints,
                                           const DriverParams& driver,
                                           EvalEngine* engine) {
  // Feasible candidates first (every op type used by the kernel must
  // run somewhere), in enumeration order — the output order.
  std::vector<Datapath> feasible_dps;
  for (Datapath& dp : enumerate_datapaths(constraints)) {
    bool feasible = true;
    for (OpId v = 0; v < dfg.num_ops() && feasible; ++v) {
      feasible = !dp.target_set(dfg.type(v)).empty();
    }
    if (feasible) {
      feasible_dps.push_back(std::move(dp));
    }
  }

  // One job evaluates one design point end to end. The inner binder
  // always runs with its own serial evaluator (engine reset to null):
  // jobs already saturate the pool, and a job blocking on nested
  // batches of the same pool could deadlock.
  DriverParams inner = driver;
  inner.engine = nullptr;
  inner.num_threads = 1;
  const auto eval_point = [&dfg, &inner, engine](const Datapath& dp) {
    DsePoint point{dp};
    point.total_fus = dp.total_fu_count(FuType::kAlu) +
                      dp.total_fu_count(FuType::kMult);
    point.max_rf_ports = max_rf_ports(dp);
    point.lower_bound = latency_lower_bound(dfg, dp).combined;

    Stopwatch watch;
    const BindResult r = bind_full(dfg, dp, inner);
    point.bind_ms = watch.elapsed_ms();
    point.latency = r.schedule.latency;
    point.moves = r.schedule.num_moves;
    point.energy = estimate_energy(r.bound, dp).total();
    if (engine != nullptr) {
      engine->absorb(r.eval_stats);
    }
    return point;
  };

  if (engine == nullptr) {
    std::vector<DsePoint> points;
    points.reserve(feasible_dps.size());
    for (const Datapath& dp : feasible_dps) {
      if (!points.empty() && driver.cancel.stop_requested()) {
        break;  // anytime: return the points evaluated so far
      }
      points.push_back(eval_point(dp));
    }
    return points;
  }
  std::vector<std::function<DsePoint()>> jobs;
  jobs.reserve(feasible_dps.size());
  for (const Datapath& dp : feasible_dps) {
    jobs.push_back([&eval_point, &dp] { return eval_point(dp); });
  }
  return engine->run_jobs<DsePoint>(std::move(jobs));
}

std::vector<DsePoint> pareto_front(std::vector<DsePoint> points) {
  std::vector<DsePoint> front;
  const auto dominates = [](const DsePoint& a, const DsePoint& b) {
    const bool no_worse = a.latency <= b.latency &&
                          a.max_rf_ports <= b.max_rf_ports &&
                          a.moves <= b.moves;
    const bool better = a.latency < b.latency ||
                        a.max_rf_ports < b.max_rf_ports || a.moves < b.moves;
    return no_worse && better;
  };
  for (const DsePoint& candidate : points) {
    bool dominated = false;
    for (const DsePoint& other : points) {
      if (dominates(other, candidate)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) {
      front.push_back(candidate);
    }
  }
  std::sort(front.begin(), front.end(), [](const DsePoint& a,
                                           const DsePoint& b) {
    return std::make_tuple(a.latency, a.max_rf_ports, a.moves) <
           std::make_tuple(b.latency, b.max_rf_ports, b.moves);
  });
  // Drop exact duplicates on the objective vector (different datapaths
  // with identical objectives add noise to the front).
  front.erase(std::unique(front.begin(), front.end(),
                          [](const DsePoint& a, const DsePoint& b) {
                            return a.latency == b.latency &&
                                   a.max_rf_ports == b.max_rf_ports &&
                                   a.moves == b.moves;
                          }),
              front.end());
  return front;
}

}  // namespace cvb
