#include "explore/energy.hpp"

#include <algorithm>

namespace cvb {

namespace {

/// RF ports of one cluster: 3 per FU (2 read + 1 write).
int cluster_ports(const Datapath& dp, ClusterId c) {
  int fus = 0;
  for (int ti = 0; ti < kNumClusterFuTypes; ++ti) {
    fus += dp.fu_count(c, static_cast<FuType>(ti));
  }
  return 3 * fus;
}

double access_cost(const EnergyModel& model, int ports) {
  return model.e_rf_access *
         (1.0 + model.port_penalty * std::max(0, ports - 3));
}

}  // namespace

EnergyEstimate estimate_energy(const BoundDfg& bound, const Datapath& dp,
                               const EnergyModel& model) {
  const Dfg& g = bound.graph;
  EnergyEstimate estimate;

  for (OpId v = 0; v < g.num_ops(); ++v) {
    const FuType t = fu_type_of(g.type(v));
    if (t == FuType::kBus) {
      estimate.bus += model.e_bus_transfer;
      // A transfer reads the source file and writes the destination
      // file.
      const int mi = v - bound.num_original_ops();
      const OpId producer = bound.move_producer[static_cast<std::size_t>(mi)];
      const ClusterId src =
          bound.place[static_cast<std::size_t>(producer)];
      const ClusterId dst = bound.move_dest[static_cast<std::size_t>(mi)];
      estimate.rf += access_cost(model, cluster_ports(dp, src));
      estimate.rf += access_cost(model, cluster_ports(dp, dst));
      continue;
    }
    estimate.fu += (t == FuType::kMult) ? model.e_mult_op : model.e_alu_op;
    // Reads per operand (externals included: they arrive through the
    // local file too), one result write.
    const ClusterId c = bound.place[static_cast<std::size_t>(v)];
    const double per_access = access_cost(model, cluster_ports(dp, c));
    const int reads =
        std::max<int>(1, static_cast<int>(g.operands(v).size()));
    estimate.rf += per_access * (reads + 1);
  }
  return estimate;
}

}  // namespace cvb
