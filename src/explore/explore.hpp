// Design-space exploration for application-specific clustered VLIW
// datapaths — the application the paper's conclusion motivates: "the
// flexibility and efficiency of this algorithm make it a very good
// candidate for use within a design space exploration framework for
// application-specific VLIW processors."
//
// Given a kernel and an FU budget, this module enumerates candidate
// datapaths (canonical up to cluster reordering), prunes hopeless ones
// with the binding-independent latency lower bound, binds the kernel to
// each survivor with the paper's algorithm, and reports the Pareto
// front over (schedule latency, worst-case register-file ports, data
// transfers) — the latency/cost tradeoff clustering is all about.
#pragma once

#include <vector>

#include "bind/driver.hpp"
#include "graph/dfg.hpp"
#include "machine/datapath.hpp"

namespace cvb {

class EvalEngine;

/// Enumeration constraints for candidate datapaths.
struct DseConstraints {
  int max_total_fus = 6;        ///< total ALUs + MULTs across clusters
  int min_clusters = 1;
  int max_clusters = 4;
  int max_fus_per_cluster = 4;  ///< per-cluster ALU + MULT cap
  int num_buses = 2;
  int move_latency = 1;
};

/// One evaluated design point.
struct DsePoint {
  Datapath datapath;
  int latency = 0;        ///< bound+scheduled latency of the kernel
  int moves = 0;          ///< data transfers
  int max_rf_ports = 0;   ///< worst per-cluster 3*FUs (2R+1W per FU)
  int total_fus = 0;
  int lower_bound = 0;    ///< binding-independent latency floor
  double bind_ms = 0.0;   ///< binder wall time for this point
  double energy = 0.0;    ///< first-order energy estimate (energy.hpp)
};

/// All candidate datapaths satisfying `constraints`, in canonical form
/// (clusters sorted descending), regardless of any kernel. Every
/// cluster has at least one FU. Throws std::invalid_argument on
/// non-positive budgets.
[[nodiscard]] std::vector<Datapath> enumerate_datapaths(
    const DseConstraints& constraints);

/// Binds `dfg` onto every feasible candidate (skipping datapaths that
/// cannot execute some op type) and returns all evaluated points.
/// `driver` controls binding effort (B-INIT only vs full B-ITER).
///
/// Design points are mutually independent, so when `engine` has more
/// than one thread they are bound concurrently (one whole bind per
/// job, results assembled in enumeration order — the returned vector is
/// identical for every thread count). Each point's binder runs with a
/// private serial evaluator to keep the parallelism single-level; its
/// cache/eval counters are absorbed into `engine`'s statistics.
///
/// Cancellation: `driver.cancel` is honoured as an anytime bound. In
/// serial mode the exploration stops after the in-flight point and
/// returns the points finished so far; in parallel mode every job's
/// inner binder degrades to its fastest (sweep-first) path, so the
/// full-length result vector still returns promptly with valid, if
/// unimproved, points.
[[nodiscard]] std::vector<DsePoint> explore_design_space(
    const Dfg& dfg, const DseConstraints& constraints,
    const DriverParams& driver = {}, EvalEngine* engine = nullptr);

/// The subset of `points` not dominated under minimization of
/// (latency, max_rf_ports, moves), sorted by latency then ports.
[[nodiscard]] std::vector<DsePoint> pareto_front(std::vector<DsePoint> points);

/// Worst-case register-file port count of a datapath (3 ports per
/// cluster FU: two reads, one write — the cost driver of Rixner et al.
/// the paper cites).
[[nodiscard]] int max_rf_ports(const Datapath& dp);

}  // namespace cvb
