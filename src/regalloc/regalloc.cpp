#include "regalloc/regalloc.hpp"

#include <algorithm>
#include <queue>
#include <tuple>
#include <vector>

#include "graph/analysis.hpp"

namespace cvb {

namespace {

/// Value lifetime: live at every cycle tau with birth <= tau <= death
/// (same model as compute_reg_pressure).
struct Lifetime {
  OpId value = kNoOp;
  ClusterId home = kNoCluster;
  int birth = 0;
  int death = 0;
};

std::vector<Lifetime> lifetimes(const BoundDfg& bound, const Datapath& dp,
                                const Schedule& sched) {
  const Dfg& g = bound.graph;
  std::vector<Lifetime> result;
  result.reserve(static_cast<std::size_t>(g.num_ops()));
  for (OpId v = 0; v < g.num_ops(); ++v) {
    Lifetime life;
    life.value = v;
    life.home = bound.is_move_op(v)
                    ? bound.move_dest[static_cast<std::size_t>(
                          v - bound.num_original_ops())]
                    : bound.place[static_cast<std::size_t>(v)];
    life.birth =
        sched.start[static_cast<std::size_t>(v)] + bound_op_latency(bound, dp, v);
    life.death = sched.latency;
    if (!g.succs(v).empty()) {
      life.death = 0;
      for (const OpId u : g.succs(v)) {
        life.death =
            std::max(life.death, sched.start[static_cast<std::size_t>(u)]);
      }
    }
    result.push_back(life);
  }
  return result;
}

}  // namespace

RegAllocation allocate_registers(const BoundDfg& bound, const Datapath& dp,
                                 const Schedule& sched) {
  const int n = bound.graph.num_ops();
  RegAllocation alloc;
  alloc.reg_of.assign(static_cast<std::size_t>(n), -1);
  alloc.home_of.assign(static_cast<std::size_t>(n), kNoCluster);
  alloc.regs_used.assign(static_cast<std::size_t>(dp.num_clusters()), 0);

  std::vector<Lifetime> lives = lifetimes(bound, dp, sched);
  for (const Lifetime& life : lives) {
    alloc.home_of[static_cast<std::size_t>(life.value)] = life.home;
  }
  std::sort(lives.begin(), lives.end(), [](const Lifetime& a,
                                           const Lifetime& b) {
    return std::make_tuple(a.birth, a.death, a.value) <
           std::make_tuple(b.birth, b.death, b.value);
  });

  // Linear scan per cluster: active list ordered by death, min-heap of
  // free registers so the lowest index is reused first.
  struct ClusterState {
    // (death, reg) of values still occupying a register.
    std::priority_queue<std::pair<int, int>,
                        std::vector<std::pair<int, int>>, std::greater<>>
        active;
    std::priority_queue<int, std::vector<int>, std::greater<>> free;
    int next_reg = 0;
  };
  std::vector<ClusterState> state(
      static_cast<std::size_t>(dp.num_clusters()));

  for (const Lifetime& life : lives) {
    ClusterState& cluster = state[static_cast<std::size_t>(life.home)];
    // Expire values dead strictly before this birth.
    while (!cluster.active.empty() &&
           cluster.active.top().first < life.birth) {
      cluster.free.push(cluster.active.top().second);
      cluster.active.pop();
    }
    int reg;
    if (!cluster.free.empty()) {
      reg = cluster.free.top();
      cluster.free.pop();
    } else {
      reg = cluster.next_reg++;
    }
    alloc.reg_of[static_cast<std::size_t>(life.value)] = reg;
    cluster.active.emplace(life.death, reg);
  }
  for (ClusterId c = 0; c < dp.num_clusters(); ++c) {
    alloc.regs_used[static_cast<std::size_t>(c)] =
        state[static_cast<std::size_t>(c)].next_reg;
  }
  return alloc;
}

std::string verify_allocation(const BoundDfg& bound, const Datapath& dp,
                              const Schedule& sched,
                              const RegAllocation& alloc) {
  const int n = bound.graph.num_ops();
  if (static_cast<int>(alloc.reg_of.size()) != n ||
      static_cast<int>(alloc.home_of.size()) != n) {
    return "allocation size mismatch";
  }
  const std::vector<Lifetime> lives = lifetimes(bound, dp, sched);
  for (const Lifetime& life : lives) {
    const auto sv = static_cast<std::size_t>(life.value);
    if (alloc.home_of[sv] != life.home) {
      return "value " + bound.graph.name(life.value) + " homed incorrectly";
    }
    const int reg = alloc.reg_of[sv];
    if (reg < 0 ||
        reg >= alloc.regs_used[static_cast<std::size_t>(life.home)]) {
      return "value " + bound.graph.name(life.value) +
             " has no register in its file";
    }
  }
  // Pairwise interference: same file + same register => disjoint lives.
  for (std::size_t i = 0; i < lives.size(); ++i) {
    for (std::size_t j = i + 1; j < lives.size(); ++j) {
      const Lifetime& a = lives[i];
      const Lifetime& b = lives[j];
      if (a.home != b.home ||
          alloc.reg_of[static_cast<std::size_t>(a.value)] !=
              alloc.reg_of[static_cast<std::size_t>(b.value)]) {
        continue;
      }
      if (a.birth <= b.death && b.birth <= a.death) {
        return "values " + bound.graph.name(a.value) + " and " +
               bound.graph.name(b.value) + " share register r" +
               std::to_string(alloc.reg_of[static_cast<std::size_t>(a.value)]) +
               " while both live";
      }
    }
  }
  return {};
}

}  // namespace cvb
