// Per-cluster register allocation for scheduled, bound DFGs.
//
// The paper binds *before* register allocation and assumes unbounded
// register files (Section 2), predicting that spills will be rare
// because clustering spreads values across local files. This module
// closes the loop: a linear-scan allocator assigns each value a
// physical register in its home cluster's file (moves allocate in the
// destination cluster), using the same liveness model as
// sched/reg_pressure.hpp. The resulting per-file register counts are
// exactly the numbers a datapath designer needs to size the files —
// and they equal the max-live pressure, since local lifetimes admit an
// optimal interval coloring.
#pragma once

#include <string>
#include <vector>

#include "bind/bound_dfg.hpp"
#include "machine/datapath.hpp"
#include "sched/schedule.hpp"

namespace cvb {

/// A complete register assignment.
struct RegAllocation {
  /// Physical register index of each operation's result, within its
  /// home cluster's file (dense from 0 per cluster).
  std::vector<int> reg_of;
  /// Home cluster of each value (moves -> destination cluster).
  std::vector<ClusterId> home_of;
  /// Registers used per cluster file.
  std::vector<int> regs_used;

  /// Largest register file across clusters.
  [[nodiscard]] int worst_file() const {
    int worst = 0;
    for (const int n : regs_used) {
      worst = std::max(worst, n);
    }
    return worst;
  }
};

/// Allocates registers for `sched` by linear scan over value lifetimes.
/// Never fails (files are sized as needed); the interesting output is
/// how small the files stay.
[[nodiscard]] RegAllocation allocate_registers(const BoundDfg& bound,
                                               const Datapath& dp,
                                               const Schedule& sched);

/// Independent check that `alloc` is a valid assignment: every value
/// has a register in its home file and no two simultaneously-live
/// values of one file share a register. Empty string when valid.
[[nodiscard]] std::string verify_allocation(const BoundDfg& bound,
                                            const Datapath& dp,
                                            const Schedule& sched,
                                            const RegAllocation& alloc);

}  // namespace cvb
