// Unit tests for the Q_U and Q_M binding quality vectors, including the
// paper's Figure 6 scenario: two bindings of equal latency where Q_U
// must prefer the one with the thinner schedule tail.
#include <gtest/gtest.h>

#include "bind/bound_dfg.hpp"
#include "graph/builder.hpp"
#include "machine/parser.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/quality.hpp"

namespace cvb {
namespace {

TEST(QualityU, LatencyDominates) {
  const QualityU fast{3, {1, 1, 1}};
  const QualityU slow{4, {0, 0, 0, 0}};
  EXPECT_LT(fast, slow);
  EXPECT_GT(slow, fast);
}

TEST(QualityU, TailCountsBreakLatencyTies) {
  // Figure 6: binding (b) has fewer operations completing at the last
  // step than binding (a); at equal L it must compare smaller.
  const QualityU a{5, {2, 1, 0, 0, 0}};  // two ops finish at step L
  const QualityU b{5, {1, 2, 0, 0, 0}};  // one op finishes at step L
  EXPECT_LT(b, a);
}

TEST(QualityU, ComparesDeeperLevelsOnTie) {
  const QualityU a{5, {1, 3, 0, 0, 0}};
  const QualityU b{5, {1, 2, 1, 0, 0}};
  EXPECT_LT(b, a);
}

TEST(QualityU, EqualVectorsAreEquivalent) {
  const QualityU a{4, {1, 2, 0, 1}};
  const QualityU b{4, {1, 2, 0, 1}};
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a < b);
  EXPECT_FALSE(b < a);
}

TEST(QualityM, LexicographicLatencyThenMoves) {
  EXPECT_LT((QualityM{5, 9}), (QualityM{6, 0}));
  EXPECT_LT((QualityM{5, 3}), (QualityM{5, 4}));
  EXPECT_EQ((QualityM{5, 3}), (QualityM{5, 3}));
}

TEST(QualityCompute, CountsRegularOpCompletionsOnly) {
  // Chain a -> b on separate clusters: move completes at cycle 2, b at
  // cycle 3. The move must not appear in the tail counts.
  DfgBuilder bld;
  const Value a = bld.add(bld.input(), bld.input(), "a");
  (void)bld.add(a, bld.input(), "b");
  const Dfg g = std::move(bld).take();
  const Datapath dp = parse_datapath("[1,1|1,1]");
  const BoundDfg bound = build_bound_dfg(g, {0, 1}, dp);
  const Schedule s = list_schedule(bound, dp);
  ASSERT_EQ(s.latency, 3);

  const QualityU q = compute_quality_u(bound, dp, s);
  EXPECT_EQ(q.latency, 3);
  ASSERT_EQ(q.tail_counts.size(), 3u);
  EXPECT_EQ(q.tail_counts[0], 1);  // b at step L
  EXPECT_EQ(q.tail_counts[1], 0);  // only the move completes at L-1
  EXPECT_EQ(q.tail_counts[2], 1);  // a at step L-2
}

TEST(QualityCompute, QmReflectsScheduleFields) {
  DfgBuilder bld;
  const Value a = bld.add(bld.input(), bld.input());
  (void)bld.add(a, bld.input());
  const Dfg g = std::move(bld).take();
  const Datapath dp = parse_datapath("[1,1|1,1]");
  const BoundDfg bound = build_bound_dfg(g, {0, 1}, dp);
  const Schedule s = list_schedule(bound, dp);
  const QualityM q = compute_quality_m(s);
  EXPECT_EQ(q.latency, s.latency);
  EXPECT_EQ(q.num_moves, 1);
}

TEST(QualityCompute, TailSumsToRegularOpCount) {
  DfgBuilder bld;
  Value acc = bld.add(bld.input(), bld.input());
  for (int i = 0; i < 6; ++i) {
    acc = bld.mul(acc, bld.input());
  }
  const Dfg g = std::move(bld).take();
  const Datapath dp = parse_datapath("[1,1|1,1]");
  Binding alternating;
  for (OpId v = 0; v < g.num_ops(); ++v) {
    alternating.push_back(v % 2);
  }
  const BoundDfg bound = build_bound_dfg(g, alternating, dp);
  const Schedule s = list_schedule(bound, dp);
  const QualityU q = compute_quality_u(bound, dp, s);
  int total = 0;
  for (const int u : q.tail_counts) {
    total += u;
  }
  EXPECT_EQ(total, g.num_ops());
}

}  // namespace
}  // namespace cvb
