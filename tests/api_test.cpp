// Unit tests for the cvb::api facade (api/api.hpp): run_bind_request
// dispatch, the exception -> typed-status ladder, anytime deadline
// tagging, per-request eval-stat deltas on a shared engine, and the
// root bind.request span.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <type_traits>
#include <vector>

#include "api/api.hpp"
#include "bind/eval_engine.hpp"
#include "bind/strategy.hpp"
#include "kernels/kernels.hpp"
#include "service/status.hpp"
#include "support/trace.hpp"

namespace cvb {
namespace {

BindRequest ewf_request(const std::string& algorithm) {
  BindRequest request;
  request.id = "t1";
  request.dfg = benchmark_by_name("EWF").dfg;
  request.datapath = parse_datapath("[2,1|1,1]");
  request.strategy = StrategySpec::from_name(algorithm);
  request.strategy.effort = BindEffort::kFast;
  return request;
}

TEST(Api, EveryAlgorithmDispatches) {
  for (const std::string algorithm :
       {"b-iter", "b-init", "pcc", "sa", "mincut"}) {
    BindRequest request = ewf_request(algorithm);
    if (algorithm == "mincut") {
      // The Capitanio-style partitioner only handles homogeneous
      // clusters.
      request.datapath = parse_datapath("[1,1|1,1]");
    }
    const BindResponse response = run_bind_request(request, RequestContext{});
    EXPECT_EQ(response.status, BindStatus::kOk) << algorithm << ": "
                                                << response.error;
    EXPECT_TRUE(has_result(response.status));
    EXPECT_EQ(response.id, "t1");
    EXPECT_FALSE(response.binding.empty()) << algorithm;
    EXPECT_GT(response.latency, 0) << algorithm;
    EXPECT_EQ(response.schedule.latency, response.latency) << algorithm;
  }
}

TEST(Api, UnknownStrategyNameThrowsNamingValidSet) {
  // With the typed StrategySpec a bad name can no longer reach
  // run_bind_request: the parsing shim rejects it up front, and the
  // error names the valid set so callers can self-correct.
  try {
    (void)StrategySpec::from_name("bogus");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown strategy 'bogus'"), std::string::npos)
        << what;
    EXPECT_NE(what.find("b-iter"), std::string::npos) << what;
    EXPECT_NE(what.find("exhaustive"), std::string::npos) << what;
  }
}

TEST(Api, BaselinesRejectDeadlineTokens) {
  RequestContext ctx;
  ctx.cancel = CancelToken::after_ms(10'000);
  const BindResponse response = run_bind_request(ewf_request("sa"), ctx);
  EXPECT_EQ(response.status, BindStatus::kInvalidRequest);
  EXPECT_NE(response.error.find("does not support deadlines"),
            std::string::npos)
      << response.error;
}

TEST(Api, BaselinesAcceptManualTokens) {
  // cvb::Service arms a manual token when no deadline is configured;
  // baselines must still run in that case (the guard rejects only
  // tokens that carry a deadline).
  RequestContext ctx;
  ctx.cancel = CancelToken::manual();
  const BindResponse response = run_bind_request(ewf_request("sa"), ctx);
  EXPECT_EQ(response.status, BindStatus::kOk) << response.error;
  EXPECT_FALSE(response.binding.empty());
}

TEST(Api, BaselineManualCancelReportsCancelledWithResult) {
  RequestContext ctx;
  ctx.cancel = CancelToken::manual();
  ctx.cancel.request_cancel();
  const BindResponse response = run_bind_request(ewf_request("sa"), ctx);
  // Baselines never poll mid-run: the flag is honoured afterwards, so
  // the completed (verified) result comes back tagged kCancelled.
  EXPECT_EQ(response.status, BindStatus::kCancelled);
  EXPECT_FALSE(response.binding.empty());
}

TEST(Api, ExpiredDeadlineStillReturnsVerifiedAnytimeResult) {
  RequestContext ctx;
  ctx.cancel = CancelToken::after_ms(0);
  const BindResponse response = run_bind_request(ewf_request("b-iter"), ctx);
  EXPECT_EQ(response.status, BindStatus::kDeadlineExceeded);
  EXPECT_TRUE(has_result(response.status));
  // The anytime contract: a real (re-verified) binding came back.
  EXPECT_FALSE(response.binding.empty());
  EXPECT_GT(response.latency, 0);
}

TEST(Api, SharedEngineStatsArePerRequestDeltas) {
  // kFast skips the iterative pass (and with it the eval engine), so
  // this test needs the balanced preset.
  BindRequest request = ewf_request("b-iter");
  request.strategy.effort = BindEffort::kBalanced;
  EvalEngine engine;
  const BindResponse first =
      run_bind_request(request, RequestContext{}, &engine);
  const BindResponse second =
      run_bind_request(request, RequestContext{}, &engine);
  ASSERT_EQ(first.status, BindStatus::kOk) << first.error;
  ASSERT_EQ(second.status, BindStatus::kOk) << second.error;
  EXPECT_GT(first.eval_stats.candidates, 0);
  EXPECT_GT(second.eval_stats.candidates, 0);
  // Deltas, not cumulative: the engine's total covers both requests.
  EXPECT_EQ(engine.stats().candidates,
            first.eval_stats.candidates + second.eval_stats.candidates);
  // Identical back-to-back requests hit the shared schedule cache.
  EXPECT_GT(second.eval_stats.cache_hits, 0);
}

TEST(Api, TracerRecordsRequestHierarchy) {
  BindRequest request = ewf_request("b-iter");
  request.strategy.effort = BindEffort::kBalanced;  // kFast skips the eval engine
  Tracer tracer;
  RequestContext ctx;
  ctx.tracer = &tracer;
  const BindResponse response = run_bind_request(request, ctx);
  ASSERT_EQ(response.status, BindStatus::kOk) << response.error;
  const std::vector<TraceSpan> spans = tracer.drain();
  ASSERT_FALSE(spans.empty());
  const auto named = [&](const char* name) {
    return std::count_if(spans.begin(), spans.end(), [&](const TraceSpan& s) {
      return std::string(s.name) == name;
    });
  };
  EXPECT_EQ(named("bind.request"), 1);
  EXPECT_GT(named("eval.batch"), 0);
  EXPECT_GT(named("sched.list"), 0);
  // The root span carries the request summary attributes.
  const auto root = std::find_if(
      spans.begin(), spans.end(),
      [](const TraceSpan& s) { return std::string(s.name) == "bind.request"; });
  ASSERT_NE(root, spans.end());
  EXPECT_EQ(root->parent, 0u);
  bool saw_status = false;
  for (const TraceAttr& attr : root->attrs) {
    if (std::string(attr.key) == "status") {
      saw_status = true;
      EXPECT_EQ(attr.string_value, "ok");
    }
  }
  EXPECT_TRUE(saw_status);
}

TEST(Api, PccRecordsPartitionSpans) {
  Tracer tracer;
  RequestContext ctx;
  ctx.tracer = &tracer;
  const BindResponse response = run_bind_request(ewf_request("pcc"), ctx);
  ASSERT_EQ(response.status, BindStatus::kOk) << response.error;
  const std::vector<TraceSpan> spans = tracer.drain();
  EXPECT_NE(std::find_if(spans.begin(), spans.end(),
                         [](const TraceSpan& s) {
                           return std::string(s.name) == "pcc.partition";
                         }),
            spans.end());
}

TEST(Api, ServiceAliasesStayLayoutCompatible) {
  // The service spells these BindJob / BindOutcome; both must be the
  // api types so the two layers cannot drift apart.
  static_assert(std::is_same_v<BindJob, BindRequest>);
  static_assert(std::is_same_v<BindOutcome, BindResponse>);
  BindJob job = ewf_request("b-init");
  const BindOutcome outcome = run_bind_request(job, RequestContext{});
  EXPECT_EQ(outcome.status, BindStatus::kOk) << outcome.error;
}

TEST(Api, EvalStatsJsonShape) {
  BindRequest request = ewf_request("b-iter");
  request.strategy.effort = BindEffort::kBalanced;  // kFast skips the eval engine
  EvalEngine engine;
  const BindResponse response =
      run_bind_request(request, RequestContext{}, &engine);
  ASSERT_EQ(response.status, BindStatus::kOk);
  const JsonValue doc =
      eval_stats_to_json(response.eval_stats, response.eval_threads);
  for (const char* key :
       {"threads", "candidates", "batches", "cache_hits", "cache_misses",
        "cache_evictions", "cache_hit_rate", "improver_candidates",
        "pcc_candidates", "explore_jobs", "eval_ms"}) {
    EXPECT_NE(doc.find(key), nullptr) << key;
  }
  EXPECT_EQ(doc.find("threads")->as_number(), 1.0);
  EXPECT_GT(doc.find("candidates")->as_number(), 0.0);
}

}  // namespace
}  // namespace cvb
