// Tests of the racing portfolio binder (bind/portfolio.hpp) and the
// typed StrategySpec API (bind/strategy.hpp): the one-strategy
// differential contract (a 1-element portfolio is bit-identical to the
// direct dispatch path), determinism of the incumbent exchange for any
// thread count (this suite also runs under TSan in CI), the
// baseline-deadline regression (a portfolio with sa/mincut members
// accepts deadlines), and poisoned-strategy drops — organic and via
// the "portfolio.strategy" injection site.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "api/api.hpp"
#include "bind/portfolio.hpp"
#include "bind/strategy.hpp"
#include "kernels/kernels.hpp"
#include "machine/parser.hpp"
#include "sched/verifier.hpp"
#include "service/status.hpp"
#include "support/fault.hpp"

namespace cvb {
namespace {

BindRequest kernel_request(const std::string& kernel,
                           const std::string& dp_spec) {
  BindRequest request;
  request.id = kernel;
  request.dfg = benchmark_by_name(kernel).dfg;
  request.datapath = parse_datapath(dp_spec);
  return request;
}

// --- StrategySpec: the typed replacement of the algorithm string ---

TEST(StrategySpec, NameRoundTripsForEveryKind) {
  for (const StrategyKind kind : all_strategy_kinds()) {
    StrategySpec spec;
    spec.kind = kind;
    EXPECT_EQ(StrategySpec::from_name(spec.name()).kind, kind)
        << spec.name();
  }
}

TEST(StrategySpec, UnknownNameThrowsNamingValidSet) {
  try {
    (void)StrategySpec::from_name("anneal");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("'anneal'"), std::string::npos) << what;
    EXPECT_NE(what.find("mincut"), std::string::npos) << what;
  }
}

TEST(StrategySpec, CsvParsesPerEntrySeeds) {
  const std::vector<StrategySpec> specs =
      parse_strategy_csv("b-iter,sa:7,sa:8", BindEffort::kMax, 3);
  ASSERT_EQ(specs.size(), 3u);
  EXPECT_EQ(specs[0], (StrategySpec{StrategyKind::kBIter, BindEffort::kMax, 3}));
  EXPECT_EQ(specs[1], (StrategySpec{StrategyKind::kSa, BindEffort::kMax, 7}));
  EXPECT_EQ(specs[2], (StrategySpec{StrategyKind::kSa, BindEffort::kMax, 8}));
  EXPECT_THROW((void)parse_strategy_csv("b-iter,sa:x", BindEffort::kFast, 1),
               std::invalid_argument);
  EXPECT_THROW((void)parse_strategy_csv("", BindEffort::kFast, 1),
               std::invalid_argument);
}

TEST(StrategySpec, DefaultPortfolioAndLabel) {
  const std::vector<StrategySpec> specs =
      default_portfolio(BindEffort::kFast, 9);
  ASSERT_EQ(specs.size(), 4u);
  for (const StrategySpec& spec : specs) {
    EXPECT_EQ(spec.effort, BindEffort::kFast);
    EXPECT_EQ(spec.seed, 9u);
  }
  EXPECT_EQ(strategy_set_label(specs[0], {}), "b-iter");
  EXPECT_EQ(strategy_set_label(specs[0], specs),
            "portfolio(b-iter,b-init,pcc,sa)");
}

// --- The differential contract: a one-strategy portfolio must be
// byte-identical to the direct dispatch path, on every kernel ×
// datapath of the suite. ---

TEST(Portfolio, OneStrategyPortfolioMatchesDirectEverywhere) {
  for (const BenchmarkKernel& kernel : benchmark_suite()) {
    for (const std::string dp_spec : {"[1,1|1,1]", "[2,1|1,1]"}) {
      BindRequest direct = kernel_request(kernel.name, dp_spec);
      direct.strategy.effort = BindEffort::kFast;
      BindRequest raced = direct;
      raced.portfolio = {direct.strategy};

      const BindResponse a = run_bind_request(direct, RequestContext{});
      const BindResponse b = run_bind_request(raced, RequestContext{});
      ASSERT_EQ(a.status, BindStatus::kOk)
          << kernel.name << " " << dp_spec << ": " << a.error;
      ASSERT_EQ(b.status, BindStatus::kOk)
          << kernel.name << " " << dp_spec << ": " << b.error;
      EXPECT_EQ(a.binding, b.binding) << kernel.name << " " << dp_spec;
      EXPECT_EQ(a.latency, b.latency) << kernel.name << " " << dp_spec;
      EXPECT_EQ(a.moves, b.moves) << kernel.name << " " << dp_spec;
      // Only the raced run carries attribution.
      EXPECT_FALSE(a.portfolio.ran());
      ASSERT_TRUE(b.portfolio.ran());
      EXPECT_EQ(b.portfolio.winner, 0);
      ASSERT_EQ(b.portfolio.strategies.size(), 1u);
      EXPECT_TRUE(b.portfolio.strategies[0].winner);
    }
  }
}

// --- Incumbent-exchange determinism: a fixed strategy set + seeds
// reproduces the same winner and result for any race_threads value and
// across reruns. (CI also runs this under TSan: the board publish /
// barrier merge must be race-free.) ---

TEST(Portfolio, DeterministicForAnyThreadCountAndRerun) {
  const BenchmarkKernel kernel = benchmark_by_name("ARF");
  const Datapath dp = parse_datapath("[2,1|1,1]");

  PortfolioOptions base;
  base.strategies = default_portfolio(BindEffort::kBalanced, 5);

  Binding binding;
  int latency = -1;
  int winner = -1;
  int exchanges = -1;
  int rounds = -1;
  bool first = true;
  for (const int race_threads : {1, 2, 8, 1}) {  // trailing 1 = rerun
    PortfolioOptions opts = base;
    opts.policy.race_threads = race_threads;
    const PortfolioOutcome outcome =
        run_portfolio(kernel.dfg, dp, opts);
    ASSERT_GE(outcome.stats.winner, 0) << "race_threads=" << race_threads;
    EXPECT_EQ(verify_schedule(outcome.best.bound, dp, outcome.best.schedule),
              "");
    if (first) {
      binding = outcome.best.binding;
      latency = outcome.best.schedule.latency;
      winner = outcome.stats.winner;
      exchanges = outcome.stats.exchanges;
      rounds = outcome.stats.rounds;
      first = false;
      continue;
    }
    EXPECT_EQ(outcome.best.binding, binding)
        << "race_threads=" << race_threads;
    EXPECT_EQ(outcome.best.schedule.latency, latency);
    EXPECT_EQ(outcome.stats.winner, winner);
    EXPECT_EQ(outcome.stats.exchanges, exchanges);
    EXPECT_EQ(outcome.stats.rounds, rounds);
  }
}

// --- The baseline-deadline regression (ISSUE 9): direct sa/mincut
// requests reject deadline tokens, but a portfolio containing them
// must not — baselines run to completion and late results are simply
// ignored. ---

TEST(Portfolio, BaselineMembersDoNotRejectDeadlines) {
  BindRequest request = kernel_request("EWF", "[1,1|1,1]");
  request.strategy.effort = BindEffort::kFast;
  request.portfolio = parse_strategy_csv("b-iter,sa,mincut",
                                         BindEffort::kFast, 1);
  RequestContext ctx;
  ctx.cancel = CancelToken::after_ms(10'000);
  const BindResponse response = run_bind_request(request, ctx);
  EXPECT_EQ(response.status, BindStatus::kOk) << response.error;
  EXPECT_FALSE(response.binding.empty());
  ASSERT_TRUE(response.portfolio.ran());
  // No member was rejected for the deadline: every attribution either
  // produced a result or was dropped for a *non*-deadline reason.
  for (const StrategyAttribution& sa : response.portfolio.strategies) {
    EXPECT_FALSE(sa.dropped) << sa.spec.name() << ": " << sa.error;
  }
}

TEST(Portfolio, ExpiredDeadlineStillYieldsVerifiedResult) {
  BindRequest request = kernel_request("EWF", "[1,1|1,1]");
  request.strategy.effort = BindEffort::kFast;
  request.portfolio = parse_strategy_csv("b-iter,sa", BindEffort::kFast, 1);
  RequestContext ctx;
  ctx.cancel = CancelToken::after_ms(0);
  const BindResponse response = run_bind_request(request, ctx);
  EXPECT_EQ(response.status, BindStatus::kDeadlineExceeded)
      << response.error;
  EXPECT_TRUE(has_result(response.status));
  EXPECT_FALSE(response.binding.empty());
  EXPECT_GT(response.latency, 0);
}

// --- Poisoned members: a strategy that throws is dropped with its
// error attributed while the race continues on the healthy members. ---

TEST(Portfolio, OrganicPoisonMemberIsDroppedNotFatal) {
  // mincut rejects heterogeneous clusters with invalid_argument: in a
  // portfolio that is a drop, not a request failure.
  const BenchmarkKernel kernel = benchmark_by_name("EWF");
  const Datapath dp = parse_datapath("[2,1|1,1]");
  PortfolioOptions opts;
  opts.strategies = parse_strategy_csv("b-iter,mincut", BindEffort::kFast, 1);
  const PortfolioOutcome outcome = run_portfolio(kernel.dfg, dp, opts);
  EXPECT_EQ(outcome.stats.winner, 0);
  ASSERT_EQ(outcome.stats.strategies.size(), 2u);
  const StrategyAttribution& dropped = outcome.stats.strategies[1];
  EXPECT_TRUE(dropped.dropped);
  EXPECT_FALSE(dropped.injected);
  EXPECT_EQ(dropped.fault, FaultClass::kPoison);
  EXPECT_NE(dropped.error.find("homogeneous"), std::string::npos)
      << dropped.error;
  EXPECT_EQ(verify_schedule(outcome.best.bound, dp, outcome.best.schedule),
            "");
}

TEST(Portfolio, AllMembersDroppedRethrowsTypedError) {
  const BenchmarkKernel kernel = benchmark_by_name("EWF");
  const Datapath dp = parse_datapath("[2,1|1,1]");  // heterogeneous
  PortfolioOptions opts;
  opts.strategies = parse_strategy_csv("mincut,mincut:2",
                                       BindEffort::kFast, 1);
  EXPECT_THROW((void)run_portfolio(kernel.dfg, dp, opts),
               std::invalid_argument);
}

class PortfolioFaults : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!fault_injection_compiled()) {
      GTEST_SKIP() << "build has -DCVB_FAULT_INJECTION=OFF";
    }
  }
};

TEST_F(PortfolioFaults, InjectedStrategyDropIsAttributedAndSurvivable) {
  ScopedFaultInjection scoped;
  FaultSpec spec;
  spec.rate = 1.0;
  spec.fault_class = FaultClass::kPoison;
  spec.max_triggers = 1;
  FaultInjector::global().arm("portfolio.strategy", spec);

  const BenchmarkKernel kernel = benchmark_by_name("ARF");
  const Datapath dp = parse_datapath("[1,1|1,1]");
  PortfolioOptions opts;
  opts.strategies = parse_strategy_csv("b-iter,b-init", BindEffort::kFast, 1);
  const PortfolioOutcome outcome = run_portfolio(kernel.dfg, dp, opts);

  int drops = 0;
  for (const StrategyAttribution& sa : outcome.stats.strategies) {
    if (sa.dropped) {
      ++drops;
      EXPECT_TRUE(sa.injected);
      EXPECT_EQ(sa.fault, FaultClass::kPoison);
      EXPECT_FALSE(sa.error.empty());
      EXPECT_FALSE(sa.winner);
    }
  }
  EXPECT_EQ(drops, 1);  // max_triggers=1: exactly one member poisoned
  ASSERT_GE(outcome.stats.winner, 0);
  EXPECT_FALSE(outcome.stats
                   .strategies[static_cast<std::size_t>(outcome.stats.winner)]
                   .dropped);
  EXPECT_EQ(verify_schedule(outcome.best.bound, dp, outcome.best.schedule),
            "");
}

TEST_F(PortfolioFaults, AllInjectedDropsRethrowAsFaultInjectedError) {
  ScopedFaultInjection scoped;
  FaultSpec spec;
  spec.rate = 1.0;
  spec.fault_class = FaultClass::kTransient;
  FaultInjector::global().arm("portfolio.strategy", spec);

  const BenchmarkKernel kernel = benchmark_by_name("ARF");
  PortfolioOptions opts;
  opts.strategies = parse_strategy_csv("b-iter,sa", BindEffort::kFast, 1);
  EXPECT_THROW(
      (void)run_portfolio(kernel.dfg, parse_datapath("[1,1|1,1]"), opts),
      FaultInjectedError);
}

}  // namespace
}  // namespace cvb
