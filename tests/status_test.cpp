// Table-driven tests of the BindStatus module (service/status.hpp):
// the single source of truth for status names, cvbind exit codes, and
// the has-result predicate shared by cvbind, cvserve, and the service.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "service/status.hpp"

namespace cvb {
namespace {

struct StatusRow {
  BindStatus status;
  const char* name;
  int exit_code;
  bool has_result;
};

// One row per enumerator; exit codes 0-6 are a stable shell contract.
constexpr StatusRow kStatusTable[] = {
    {BindStatus::kOk, "ok", 0, true},
    {BindStatus::kInvalidRequest, "invalid_request", 1, false},
    {BindStatus::kInternalError, "internal_error", 2, false},
    {BindStatus::kDeadlineExceeded, "deadline_exceeded", 3, true},
    {BindStatus::kCancelled, "cancelled", 4, false},
    {BindStatus::kShed, "shed", 5, false},
    {BindStatus::kDegraded, "degraded", 6, true},
};

TEST(Status, TableCoversEveryEnumerator) {
  // 7 statuses, exit codes exactly {0,...,6}, each used once.
  bool seen[7] = {};
  for (const StatusRow& row : kStatusTable) {
    ASSERT_GE(row.exit_code, 0);
    ASSERT_LE(row.exit_code, 6);
    EXPECT_FALSE(seen[row.exit_code]) << row.name;
    seen[row.exit_code] = true;
  }
  for (int code = 0; code < 7; ++code) {
    EXPECT_TRUE(seen[code]) << code;
  }
}

TEST(Status, ExitCodesMatchTable) {
  for (const StatusRow& row : kStatusTable) {
    EXPECT_EQ(exit_code_for(row.status), row.exit_code) << row.name;
  }
}

TEST(Status, NamesRoundTrip) {
  for (const StatusRow& row : kStatusTable) {
    EXPECT_STREQ(to_string(row.status), row.name);
    EXPECT_EQ(bind_status_from_string(row.name), row.status) << row.name;
  }
}

TEST(Status, HasResultMatchesTable) {
  for (const StatusRow& row : kStatusTable) {
    EXPECT_EQ(has_result(row.status), row.has_result) << row.name;
  }
}

TEST(Status, UnknownNameThrows) {
  EXPECT_THROW((void)bind_status_from_string("not_a_status"),
               std::invalid_argument);
  EXPECT_THROW((void)bind_status_from_string(""), std::invalid_argument);
}

}  // namespace
}  // namespace cvb
