// ThreadPool contract tests: deterministic result ordering, exception
// propagation out of tasks, zero-task batches, and pool reuse across
// many batches (the evaluation engine keeps one pool alive for a whole
// algorithm run).
#include "support/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>

namespace cvb {
namespace {

TEST(ThreadPool, RejectsNonPositiveThreadCounts) {
  EXPECT_THROW(ThreadPool(0), std::invalid_argument);
  EXPECT_THROW(ThreadPool(-3), std::invalid_argument);
}

TEST(ThreadPool, ReportsThreadCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_threads(), 3);
}

TEST(ThreadPool, BatchResultsComeBackInSubmissionOrder) {
  ThreadPool pool(4);
  constexpr int kTasks = 200;
  std::vector<std::function<int()>> tasks;
  for (int i = 0; i < kTasks; ++i) {
    tasks.push_back([i] { return i * i; });
  }
  const std::vector<int> results = pool.run_batch<int>(std::move(tasks));
  ASSERT_EQ(results.size(), static_cast<std::size_t>(kTasks));
  for (int i = 0; i < kTasks; ++i) {
    EXPECT_EQ(results[static_cast<std::size_t>(i)], i * i);
  }
}

TEST(ThreadPool, EmptyBatchReturnsEmpty) {
  ThreadPool pool(2);
  const std::vector<int> results = pool.run_batch<int>({});
  EXPECT_TRUE(results.empty());
}

TEST(ThreadPool, TaskExceptionPropagatesToCaller) {
  ThreadPool pool(2);
  std::vector<std::function<int()>> tasks;
  tasks.push_back([] { return 1; });
  tasks.push_back([]() -> int { throw std::runtime_error("task 1 boom"); });
  tasks.push_back([] { return 3; });
  try {
    (void)pool.run_batch<int>(std::move(tasks));
    FAIL() << "expected run_batch to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task 1 boom");
  }
}

TEST(ThreadPool, FirstFailingIndexWinsWhenSeveralThrow) {
  ThreadPool pool(4);
  std::vector<std::function<int()>> tasks;
  for (int i = 0; i < 8; ++i) {
    tasks.push_back([i]() -> int {
      if (i >= 2) {
        throw std::runtime_error("boom " + std::to_string(i));
      }
      return i;
    });
  }
  try {
    (void)pool.run_batch<int>(std::move(tasks));
    FAIL() << "expected run_batch to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom 2");  // lowest failing submission index
  }
}

TEST(ThreadPool, UsableAgainAfterAFailedBatch) {
  ThreadPool pool(2);
  std::vector<std::function<int()>> failing;
  failing.push_back([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW((void)pool.run_batch<int>(std::move(failing)),
               std::runtime_error);

  std::vector<std::function<int()>> fine;
  fine.push_back([] { return 42; });
  EXPECT_EQ(pool.run_batch<int>(std::move(fine)).front(), 42);
}

TEST(ThreadPool, ReusableAcrossManyBatches) {
  ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::vector<std::function<int()>> tasks;
    for (int i = 0; i < 10; ++i) {
      tasks.push_back([round, i] { return round * 100 + i; });
    }
    const std::vector<int> results = pool.run_batch<int>(std::move(tasks));
    for (int i = 0; i < 10; ++i) {
      ASSERT_EQ(results[static_cast<std::size_t>(i)], round * 100 + i);
    }
  }
}

TEST(ThreadPool, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  std::atomic<int> executions{0};
  std::vector<std::function<int()>> tasks;
  for (int i = 0; i < 100; ++i) {
    tasks.push_back([&executions] { return ++executions; });
  }
  const std::vector<int> results = pool.run_batch<int>(std::move(tasks));
  EXPECT_EQ(executions.load(), 100);
  // Every execution ticket 1..100 appears exactly once (order is up to
  // the scheduler; completeness is not).
  const std::set<int> tickets(results.begin(), results.end());
  EXPECT_EQ(tickets.size(), 100u);
  EXPECT_EQ(*tickets.begin(), 1);
  EXPECT_EQ(*tickets.rbegin(), 100);
}

TEST(ThreadPool, SubmitReturnsAWorkingFuture) {
  ThreadPool pool(2);
  std::future<std::string> future =
      pool.submit([] { return std::string("hello"); });
  EXPECT_EQ(future.get(), "hello");
}

TEST(ThreadPool, ManyMoreTasksThanWorkersAllComplete) {
  ThreadPool pool(2);
  std::vector<std::function<int()>> tasks;
  for (int i = 0; i < 500; ++i) {
    tasks.push_back([i] { return i; });
  }
  const std::vector<int> results = pool.run_batch<int>(std::move(tasks));
  for (int i = 0; i < 500; ++i) {
    ASSERT_EQ(results[static_cast<std::size_t>(i)], i);
  }
}

}  // namespace
}  // namespace cvb
