// Tests for the generalized interconnect model (machine/topology.hpp):
// builder shapes, validation errors, deterministic routing against a
// brute-force BFS oracle, chain move insertion, per-link scheduler
// occupancy, and end-to-end bind/schedule/verify on multi-link fabrics.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <queue>
#include <set>
#include <vector>

#include "bind/bound_dfg.hpp"
#include "bind/driver.hpp"
#include "bind/load_profile.hpp"
#include "graph/analysis.hpp"
#include "graph/builder.hpp"
#include "kernels/kernels.hpp"
#include "machine/parser.hpp"
#include "machine/topology.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/verifier.hpp"
#include "sim/executor.hpp"

namespace cvb {
namespace {

// ---------------------------------------------------------------------
// Builder shapes.

TEST(Topology, SingleBusJoinsEveryCluster) {
  const Topology t = Topology::single_bus(4, 2);
  ASSERT_EQ(t.num_links(), 1);
  EXPECT_EQ(t.link(0).name, "BUS");
  EXPECT_EQ(t.link(0).capacity, 2);
  EXPECT_EQ(t.total_capacity(), 2);
  EXPECT_TRUE(t.is_single_bus());
  EXPECT_TRUE(t.is_default_single_bus(2));
  EXPECT_FALSE(t.is_default_single_bus(3));
  // Every transfer is exactly one hop over the one link.
  for (int from = 0; from < 4; ++from) {
    for (int to = 0; to < 4; ++to) {
      if (from == to) {
        EXPECT_EQ(t.hop_count(from, to), 0);
      } else {
        ASSERT_EQ(t.hop_count(from, to), 1);
        EXPECT_EQ(t.route(from, to).front().link, 0);
        EXPECT_EQ(t.route(from, to).front().to, to);
      }
    }
  }
}

TEST(Topology, RingHasOneLinkPerCluster) {
  const Topology t = Topology::ring(5, 1);
  EXPECT_EQ(t.num_links(), 5);
  EXPECT_EQ(t.kind(), TopologyKind::kRing);
  EXPECT_FALSE(t.is_single_bus());
  // Two clusters collapse to one link (no doubled capacity).
  EXPECT_EQ(Topology::ring(2, 3).num_links(), 1);
  EXPECT_EQ(Topology::ring(2, 3).total_capacity(), 3);
}

TEST(Topology, P2pHasOneLinkPerPair) {
  const Topology t = Topology::p2p(4, 1);
  EXPECT_EQ(t.num_links(), 6);  // C(4,2)
  for (int from = 0; from < 4; ++from) {
    for (int to = 0; to < 4; ++to) {
      EXPECT_EQ(t.hop_count(from, to), from == to ? 0 : 1);
    }
  }
}

TEST(Topology, MeshGridLinks) {
  const Topology t = Topology::mesh(2, 3, 1);
  // 2x3 grid: 2 rows x 2 horizontal + 1 row of 3 vertical = 4 + 3.
  EXPECT_EQ(t.num_links(), 7);
  EXPECT_EQ(t.num_clusters(), 6);
  // Opposite corners (0 and 5) are 3 hops apart (row-major ids).
  EXPECT_EQ(t.hop_count(0, 5), 3);
}

TEST(Topology, SegmentedBusBridges) {
  const Topology t = Topology::segmented_bus(4, 2, 2);
  // Two 2-cluster segments + one bridge.
  EXPECT_EQ(t.num_links(), 3);
  EXPECT_EQ(t.hop_count(0, 1), 1);   // intra-segment
  EXPECT_EQ(t.hop_count(0, 3), 3);   // seg0 -> bridge -> seg1
  // Uneven split: a one-cluster segment contributes only its bridge.
  const Topology uneven = Topology::segmented_bus(3, 2, 1);
  EXPECT_EQ(uneven.num_links(), 2);  // seg0 {0,1} + bridge 1-2
  EXPECT_EQ(uneven.hop_count(0, 2), 2);
  // One segment is the single bus.
  EXPECT_TRUE(Topology::segmented_bus(3, 1, 2).is_single_bus());
}

// ---------------------------------------------------------------------
// Validation.

TEST(Topology, RejectsNonPositiveCapacity) {
  try {
    (void)Topology::custom(2, {TopoLink{"L", {0, 1}, 0, 0}});
    FAIL() << "capacity 0 accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("capacity"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("'L'"), std::string::npos);
  }
  EXPECT_THROW((void)Topology::custom(2, {TopoLink{"L", {0, 1}, -1, 0}}),
               std::invalid_argument);
}

TEST(Topology, RejectsBadMembersAndNames) {
  // Out-of-range member.
  EXPECT_THROW((void)Topology::custom(2, {TopoLink{"L", {0, 2}, 1, 0}}),
               std::invalid_argument);
  // Duplicate link names.
  EXPECT_THROW((void)Topology::custom(2, {TopoLink{"L", {0, 1}, 1, 0},
                                          TopoLink{"L", {0, 1}, 1, 0}}),
               std::invalid_argument);
  // Negative hop latency.
  EXPECT_THROW((void)Topology::custom(2, {TopoLink{"L", {0, 1}, 1, -1}}),
               std::invalid_argument);
}

TEST(Topology, RejectsDisconnectedFabric) {
  // Three clusters, one link joining only {0,1}: cluster 2 unreachable.
  EXPECT_THROW((void)Topology::custom(3, {TopoLink{"L", {0, 1}, 1, 0}}),
               std::invalid_argument);
}

// ---------------------------------------------------------------------
// Routing vs a brute-force BFS oracle.

/// Minimal hop count between clusters by BFS over the link graph —
/// independent of the Dijkstra implementation under test.
int bfs_hops(const Topology& t, int from, int to) {
  if (from == to) {
    return 0;
  }
  std::vector<int> dist(static_cast<std::size_t>(t.num_clusters()), -1);
  std::queue<int> queue;
  dist[static_cast<std::size_t>(from)] = 0;
  queue.push(from);
  while (!queue.empty()) {
    const int u = queue.front();
    queue.pop();
    for (const TopoLink& link : t.links()) {
      if (std::find(link.members.begin(), link.members.end(), u) ==
          link.members.end()) {
        continue;
      }
      for (const int v : link.members) {
        if (dist[static_cast<std::size_t>(v)] == -1) {
          dist[static_cast<std::size_t>(v)] =
              dist[static_cast<std::size_t>(u)] + 1;
          queue.push(v);
        }
      }
    }
  }
  return dist[static_cast<std::size_t>(to)];
}

TEST(Routing, HopCountsMatchBfsOracle) {
  const std::vector<Topology> fabrics = {
      Topology::single_bus(4, 2), Topology::ring(5, 1),
      Topology::ring(3, 2),       Topology::mesh(2, 3, 1),
      Topology::p2p(4, 1),        Topology::segmented_bus(5, 2, 2),
      Topology::segmented_bus(6, 3, 1),
  };
  for (const Topology& t : fabrics) {
    for (int from = 0; from < t.num_clusters(); ++from) {
      for (int to = 0; to < t.num_clusters(); ++to) {
        EXPECT_EQ(t.hop_count(from, to), bfs_hops(t, from, to))
            << t.to_string() << " " << from << "->" << to;
      }
    }
  }
}

TEST(Routing, RouteStepsAreWellFormed) {
  const Topology t = Topology::ring(5, 1);
  for (int from = 0; from < 5; ++from) {
    for (int to = 0; to < 5; ++to) {
      int at = from;
      for (const RouteStep& step : t.route(from, to)) {
        // Each step traverses a link that contains both endpoints.
        const TopoLink& link = t.link(step.link);
        EXPECT_NE(std::find(link.members.begin(), link.members.end(), at),
                  link.members.end());
        EXPECT_NE(std::find(link.members.begin(), link.members.end(),
                            step.to),
                  link.members.end());
        at = step.to;
      }
      EXPECT_EQ(at, to);
    }
  }
}

TEST(Routing, RoutesFormShortestPathTree) {
  // All routes out of one source must agree on shared prefixes (the
  // chain-sharing memo in build_bound_dfg relies on this): the route to
  // the hop-before-last cluster is exactly the current route minus its
  // last step.
  const std::vector<Topology> fabrics = {
      Topology::ring(6, 1), Topology::mesh(2, 3, 1),
      Topology::segmented_bus(6, 3, 1)};
  for (const Topology& t : fabrics) {
    for (int from = 0; from < t.num_clusters(); ++from) {
      for (int to = 0; to < t.num_clusters(); ++to) {
        const std::vector<RouteStep>& route = t.route(from, to);
        if (route.size() < 2) {
          continue;
        }
        const int prev = route[route.size() - 2].to;
        const std::vector<RouteStep>& prefix = t.route(from, prev);
        ASSERT_EQ(prefix.size(), route.size() - 1);
        for (std::size_t i = 0; i < prefix.size(); ++i) {
          EXPECT_EQ(prefix[i].link, route[i].link);
          EXPECT_EQ(prefix[i].to, route[i].to);
        }
      }
    }
  }
}

TEST(Routing, DeterministicAcrossRebuilds) {
  const Topology a = Topology::mesh(2, 3, 1);
  const Topology b = Topology::mesh(2, 3, 1);
  for (int from = 0; from < a.num_clusters(); ++from) {
    for (int to = 0; to < a.num_clusters(); ++to) {
      const auto& ra = a.route(from, to);
      const auto& rb = b.route(from, to);
      ASSERT_EQ(ra.size(), rb.size());
      for (std::size_t i = 0; i < ra.size(); ++i) {
        EXPECT_EQ(ra[i].link, rb[i].link);
        EXPECT_EQ(ra[i].to, rb[i].to);
      }
    }
  }
}

TEST(Routing, HopLatencyWeightsRoutes) {
  // Two routes 0->2: direct slow link (lat 5) vs two fast hops
  // (lat 1 each). The weighted route must take the two-hop path.
  const Topology t = Topology::custom(
      3, {TopoLink{"slow", {0, 2}, 1, 5}, TopoLink{"f0", {0, 1}, 1, 1},
          TopoLink{"f1", {1, 2}, 1, 1}});
  EXPECT_EQ(t.hop_count(0, 2), 2);
  EXPECT_EQ(t.route_latency(0, 2, 1), 2);
  // With equal weights the direct link wins (fewer hops).
  const Topology u = Topology::custom(
      3, {TopoLink{"direct", {0, 2}, 1, 0}, TopoLink{"f0", {0, 1}, 1, 0},
          TopoLink{"f1", {1, 2}, 1, 0}});
  EXPECT_EQ(u.hop_count(0, 2), 1);
  EXPECT_EQ(u.max_route_latency(3), 3);
}

// ---------------------------------------------------------------------
// parse_topology_spec.

TEST(Topology, ParseSpecForms) {
  EXPECT_TRUE(parse_topology_spec("single_bus", 3, 2).is_single_bus());
  EXPECT_EQ(parse_topology_spec("ring", 4, 1).kind(), TopologyKind::kRing);
  EXPECT_EQ(parse_topology_spec("p2p", 4, 1).kind(), TopologyKind::kP2p);
  EXPECT_EQ(parse_topology_spec("mesh:2x2", 4, 1).kind(),
            TopologyKind::kMesh);
  EXPECT_EQ(parse_topology_spec("segmented_bus:2", 4, 1).kind(),
            TopologyKind::kSegmentedBus);
}

TEST(Topology, ParseSpecErrorsNameTheProblem) {
  try {
    (void)parse_topology_spec("mesh:2x3", 4, 1);
    FAIL() << "mismatched mesh accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("mesh"), std::string::npos);
  }
  EXPECT_THROW((void)parse_topology_spec("mesh", 4, 1),
               std::invalid_argument);
  EXPECT_THROW((void)parse_topology_spec("torus", 4, 1),
               std::invalid_argument);
  EXPECT_THROW((void)parse_topology_spec("ring:3", 3, 1),
               std::invalid_argument);
  EXPECT_THROW((void)parse_topology_spec("segmented_bus", 4, 1),
               std::invalid_argument);
}

// ---------------------------------------------------------------------
// Chain move insertion.

/// a -> b, with `a` bound to cluster `from` and `b` to cluster `to`.
Dfg two_op_chain() {
  DfgBuilder b;
  const Value a = b.add(b.input(), b.input(), "a");
  (void)b.add(a, b.input(), "b");
  return std::move(b).take();
}

TEST(Topology, MultiHopTransferBecomesMoveChain) {
  // Ring of 4 unit clusters: 0 -> 2 is two hops; the bound DFG must
  // carry one move per traversed link, chained through the route.
  const Dfg g = two_op_chain();
  const Datapath dp = parse_datapath("[1,1|1,1|1,1|1,1]")
                          .with_topology(Topology::ring(4, 1));
  const Binding binding = {0, 2};
  const BoundDfg bound = build_bound_dfg(g, binding, dp);
  ASSERT_EQ(bound.num_moves, dp.topology().hop_count(0, 2));
  ASSERT_EQ(bound.num_moves, 2);
  const OpId m0 = bound.num_original_ops();
  const OpId m1 = m0 + 1;
  // Both hops carry the original producer; destinations walk the route.
  EXPECT_EQ(bound.move_producer[0], 0);
  EXPECT_EQ(bound.move_producer[1], 0);
  const auto& route = dp.topology().route(0, 2);
  EXPECT_EQ(bound.move_dest[0], route[0].to);
  EXPECT_EQ(bound.move_dest[1], route[1].to);
  EXPECT_EQ(bound.link_of(m0), route[0].link);
  EXPECT_EQ(bound.link_of(m1), route[1].link);
  // The chain is wired hop-to-hop: m0 reads the producer, m1 reads m0,
  // and the consumer reads the final hop.
  const auto as_vector = [](const auto& ops) {
    return std::vector<OpId>(ops.begin(), ops.end());
  };
  EXPECT_EQ(as_vector(bound.graph.operands(m0)), (std::vector<OpId>{0}));
  EXPECT_EQ(as_vector(bound.graph.operands(m1)), (std::vector<OpId>{m0}));
  const auto consumer_ops = bound.graph.operands(1);
  EXPECT_NE(std::find(consumer_ops.begin(), consumer_ops.end(), m1),
            consumer_ops.end());
}

TEST(Topology, ChainHopsSharedAcrossConsumers) {
  // One producer on cluster 0, consumers on clusters 1 and 2 of a ring:
  // the 0->1 hop is shared (routes agree on prefixes), so three hops
  // total become two moves.
  DfgBuilder b;
  const Value a = b.add(b.input(), b.input(), "a");
  (void)b.add(a, b.input(), "c1");
  (void)b.add(a, b.input(), "c2");
  const Dfg g = std::move(b).take();
  const Datapath dp = parse_datapath("[1,1|1,1|1,1|1,1]")
                          .with_topology(Topology::ring(4, 1));
  // Ring 0-1-2-3: route(0,2) goes through 1 (tie broken to the lower
  // predecessor), sharing its first hop with route(0,1).
  const BoundDfg bound = build_bound_dfg(g, {0, 1, 2}, dp);
  EXPECT_EQ(bound.num_moves, 2);
}

TEST(Topology, SingleBusRoutesAreSingleHop) {
  // Property pinning the paper's model: on the default bus every
  // cross-cluster edge inserts exactly one move, regardless of the
  // cluster pair.
  for (const std::string spec : {"[1,1|1,1]", "[1,1|1,1|1,1]",
                                 "[1,1|1,1|1,1|1,1]"}) {
    const Datapath dp = parse_datapath(spec);
    const Dfg g = two_op_chain();
    for (ClusterId from = 0; from < dp.num_clusters(); ++from) {
      for (ClusterId to = 0; to < dp.num_clusters(); ++to) {
        if (from == to) {
          continue;
        }
        const BoundDfg bound = build_bound_dfg(g, {from, to}, dp);
        EXPECT_EQ(bound.num_moves, 1);
        EXPECT_EQ(bound.link_of(bound.num_original_ops()), 0);
      }
    }
  }
}

// ---------------------------------------------------------------------
// Per-link scheduler legality and end-to-end runs.

TEST(Topology, SchedulerRespectsPerLinkCapacity) {
  // p2p(2) has one 0-1 link of capacity 1; two transfers in the same
  // direction must serialize even though a 2-bus datapath would allow
  // both at once.
  DfgBuilder b;
  const Value a0 = b.add(b.input(), b.input(), "a0");
  const Value a1 = b.sub(b.input(), b.input(), "a1");
  (void)b.add(a0, b.input(), "c0");
  (void)b.sub(a1, b.input(), "c1");
  const Dfg g = std::move(b).take();

  const Datapath wide = parse_datapath("[2,2|2,2]", 2);
  const Datapath narrow = wide.with_topology(Topology::p2p(2, 1));
  const Binding binding = {0, 0, 1, 1};

  const BoundDfg bound_wide = build_bound_dfg(g, binding, wide);
  const Schedule wide_sched = list_schedule(bound_wide, wide);
  const BoundDfg bound_narrow = build_bound_dfg(g, binding, narrow);
  const Schedule narrow_sched = list_schedule(bound_narrow, narrow);
  EXPECT_TRUE(verify_schedule(bound_narrow, narrow, narrow_sched).empty())
      << verify_schedule(bound_narrow, narrow, narrow_sched);

  // Same moves; the narrow fabric can never start both in one cycle.
  ASSERT_EQ(bound_wide.num_moves, 2);
  ASSERT_EQ(bound_narrow.num_moves, 2);
  const OpId m0 = bound_narrow.num_original_ops();
  EXPECT_NE(narrow_sched.start[static_cast<std::size_t>(m0)],
            narrow_sched.start[static_cast<std::size_t>(m0 + 1)]);
}

TEST(Topology, PerLinkOccupancyNeverExceedsCapacity) {
  // End-to-end on a ring of 3 with capacity-1 links: at most one move
  // may start per link per dii window (dii(BUS) = 1 here).
  const BenchmarkKernel kernel = benchmark_by_name("FFT");
  const Datapath dp = parse_datapath("[2,1|2,1|1,2]")
                          .with_topology(Topology::ring(3, 1));
  const BindResult r = bind_full(kernel.dfg, dp);
  ASSERT_TRUE(verify_schedule(r.bound, dp, r.schedule).empty())
      << verify_schedule(r.bound, dp, r.schedule);
  std::map<std::pair<int, int>, int> per_link_cycle;
  for (OpId v = r.bound.num_original_ops(); v < r.bound.graph.num_ops();
       ++v) {
    const int link = r.bound.link_of(v);
    const int start = r.schedule.start[static_cast<std::size_t>(v)];
    const int count = ++per_link_cycle[{link, start}];
    EXPECT_LE(count, dp.topology().link(link).capacity);
  }
}

TEST(Topology, RingBindsSchedulesAndExecutes) {
  // The acceptance scenario: a >= 3 cluster ring binds, schedules,
  // verifies, and computes the right values for several kernels.
  for (const std::string name : {"EWF", "FFT", "DCT-DIT-2"}) {
    const BenchmarkKernel kernel = benchmark_by_name(name);
    const Datapath dp = parse_datapath("[1,1|1,1|1,1]")
                            .with_topology(Topology::ring(3, 1));
    const BindResult r = bind_full(kernel.dfg, dp);
    EXPECT_TRUE(verify_schedule(r.bound, dp, r.schedule).empty()) << name;
    std::vector<std::int64_t> inputs;
    for (int i = 0; i < 64; ++i) {
      inputs.push_back(3 * i - 31);
    }
    EXPECT_EQ(check_semantics(kernel.dfg, r.bound, dp, r.schedule, inputs),
              "")
        << name;
  }
}

TEST(Topology, NonUniformHopLatencyIsHonored) {
  // A 2-cluster custom fabric whose only link takes 3 cycles: the
  // consumer of a transferred value cannot start before the producer's
  // latency plus the hop latency.
  const Dfg g = two_op_chain();
  const Datapath dp =
      parse_datapath("[1,1|1,1]")
          .with_topology(
              Topology::custom(2, {TopoLink{"slow", {0, 1}, 1, 3}}));
  EXPECT_EQ(dp.move_latency_on(0), 3);
  EXPECT_EQ(dp.route_latency(0, 1), 3);
  const BoundDfg bound = build_bound_dfg(g, {0, 1}, dp);
  const Schedule sched = list_schedule(bound, dp);
  ASSERT_TRUE(verify_schedule(bound, dp, sched).empty())
      << verify_schedule(bound, dp, sched);
  const OpId move = bound.num_original_ops();
  EXPECT_GE(sched.start[1],
            sched.start[static_cast<std::size_t>(move)] + 3);
}

// ---------------------------------------------------------------------
// Load-profile horizon (the truncation audit regression).

TEST(Topology, LoadProfileHorizonCoversAllFrames) {
  // Frames committed at maximal ALAP (including multi-hop transfer
  // chains and non-unit lat(move)) must fit the horizon: clipped() == 0
  // across kernels x fabrics x move latencies.
  for (const std::string name : {"EWF", "FFT"}) {
    const BenchmarkKernel kernel = benchmark_by_name(name);
    for (const int move_latency : {1, 2, 3}) {
      const Datapath base =
          parse_datapath("[1,1|1,1|1,1|1,1]", 2, move_latency);
      for (const Topology& topo :
           {Topology::single_bus(4, 2), Topology::ring(4, 1),
            Topology::segmented_bus(4, 2, 1)}) {
        const Datapath dp = base.with_topology(topo);
        const Timing timing = compute_timing(kernel.dfg, dp.latencies(), 0);
        LoadProfileSet profiles(kernel.dfg, dp, timing);
        std::vector<LoadProfileSet::TransferFrame> frames;
        for (OpId v = 0; v < kernel.dfg.num_ops(); ++v) {
          profiles.commit_op(v, 0);
          for (const OpId u : kernel.dfg.preds(v)) {
            frames.clear();
            // Worst-case route in this fabric: corner to corner.
            profiles.transfer_frames(u, v, 0, dp.num_clusters() - 1,
                                     frames);
            for (const auto& frame : frames) {
              profiles.commit_transfer(frame);
            }
          }
        }
        EXPECT_EQ(profiles.clipped(), 0)
            << name << " lat(move)=" << move_latency << " "
            << topo.to_string();
      }
    }
  }
}

}  // namespace
}  // namespace cvb
