// Differential pin: the generalized interconnect path on an explicit
// single-bus Topology must be bit-identical to the legacy bus datapath
// on every bundled kernel x datapath — same B-INIT binding, same bound
// graph (move ids, names, operand order), same schedule starts — and
// the scheduler core must match the frozen pre-rewrite reference on
// multi-link fabrics too (the reference core is single-bus only in its
// pool model, so it is compared via the per-link view's aggregate
// equivalence on single-bus graphs).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bind/bound_dfg.hpp"
#include "bind/driver.hpp"
#include "bind/initial_binder.hpp"
#include "kernels/kernels.hpp"
#include "machine/parser.hpp"
#include "machine/topology.hpp"
#include "sched/list_scheduler.hpp"
#include "tests/reference_scheduler.hpp"

namespace cvb {
namespace {

const std::vector<std::string> kDatapaths = {
    "[1,1|1,1]", "[2,1|1,1]", "[2,1|2,1]", "[1,1|1,1|1,1]",
    "[3,1|2,2|1,3]", "[1,1|1,1|1,1|1,1]"};

void expect_same_bound(const BoundDfg& a, const BoundDfg& b,
                       const std::string& label) {
  ASSERT_EQ(a.graph.num_ops(), b.graph.num_ops()) << label;
  EXPECT_EQ(a.num_moves, b.num_moves) << label;
  EXPECT_EQ(a.place, b.place) << label;
  EXPECT_EQ(a.move_producer, b.move_producer) << label;
  EXPECT_EQ(a.move_dest, b.move_dest) << label;
  EXPECT_EQ(a.move_link, b.move_link) << label;
  for (OpId v = 0; v < a.graph.num_ops(); ++v) {
    EXPECT_EQ(a.graph.type(v), b.graph.type(v)) << label << " op " << v;
    EXPECT_EQ(a.graph.name(v), b.graph.name(v)) << label << " op " << v;
    const auto ops_a = a.graph.operands(v);
    const auto ops_b = b.graph.operands(v);
    EXPECT_EQ(std::vector<OpId>(ops_a.begin(), ops_a.end()),
              std::vector<OpId>(ops_b.begin(), ops_b.end()))
        << label << " op " << v;
  }
}

TEST(TopologyDifferential, ExplicitSingleBusIsBitIdentical) {
  for (const BenchmarkKernel& kernel : benchmark_suite()) {
    for (const std::string& spec : kDatapaths) {
      const Datapath legacy = parse_datapath(spec);
      const Datapath explicit_bus = legacy.with_topology(
          Topology::single_bus(legacy.num_clusters(), legacy.num_buses()));
      const std::string label = kernel.name + " on " + spec;

      // B-INIT alone (the distance-aware trcost path).
      const Binding init_a = initial_binding(kernel.dfg, legacy);
      const Binding init_b = initial_binding(kernel.dfg, explicit_bus);
      EXPECT_EQ(init_a, init_b) << label;

      // Full driver: binding, bound graph, and schedule must all match.
      const BindResult a = bind_full(kernel.dfg, legacy);
      const BindResult b = bind_full(kernel.dfg, explicit_bus);
      EXPECT_EQ(a.binding, b.binding) << label;
      expect_same_bound(a.bound, b.bound, label);
      EXPECT_EQ(a.schedule.latency, b.schedule.latency) << label;
      EXPECT_EQ(a.schedule.num_moves, b.schedule.num_moves) << label;
      EXPECT_EQ(a.schedule.start, b.schedule.start) << label;
    }
  }
}

TEST(TopologyDifferential, NewCoreMatchesReferenceOnExplicitSingleBus) {
  // The frozen reference scheduler predates the topology model; on an
  // explicit single bus the per-link pools must collapse to exactly its
  // one-bus behavior.
  for (const BenchmarkKernel& kernel : benchmark_suite()) {
    for (const std::string& spec : kDatapaths) {
      const Datapath legacy = parse_datapath(spec);
      const Datapath explicit_bus = legacy.with_topology(
          Topology::single_bus(legacy.num_clusters(), legacy.num_buses()));
      DriverParams init_only;
      init_only.run_iterative = false;
      const BindResult seed =
          bind_initial_best(kernel.dfg, explicit_bus, init_only);
      const Schedule ours = list_schedule(seed.bound, explicit_bus);
      const Schedule ref =
          testref::ref_list_schedule(seed.bound, legacy);
      EXPECT_EQ(ours.latency, ref.latency) << kernel.name << " " << spec;
      EXPECT_EQ(ours.start, ref.start) << kernel.name << " " << spec;
      EXPECT_EQ(ours.num_moves, ref.num_moves) << kernel.name << " " << spec;
    }
  }
}

TEST(TopologyDifferential, SummaryQualityUnchangedAcrossBusCounts) {
  // The bus-count axis (N(BUS) = capacity of the one link) must behave
  // identically through the topology path: sweep 1..3 buses.
  const BenchmarkKernel kernel = benchmark_by_name("EWF");
  for (int buses = 1; buses <= 3; ++buses) {
    const Datapath legacy = parse_datapath("[2,1|1,1]", buses);
    const Datapath explicit_bus =
        legacy.with_topology(Topology::single_bus(2, buses));
    const BindResult a = bind_full(kernel.dfg, legacy);
    const BindResult b = bind_full(kernel.dfg, explicit_bus);
    EXPECT_EQ(a.schedule.latency, b.schedule.latency) << buses;
    EXPECT_EQ(a.schedule.start, b.schedule.start) << buses;
  }
}

}  // namespace
}  // namespace cvb
