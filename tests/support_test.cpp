// Unit tests for the support utilities (strings, tables, RNG,
// stopwatch).
#include <gtest/gtest.h>

#include <sstream>

#include "support/rng.hpp"
#include "support/stopwatch.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace cvb {
namespace {

// ---------------------------------------------------------------- split

TEST(Split, SplitsOnSeparator) {
  const std::vector<std::string> fields = split("a,b,c", ',');
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "b");
  EXPECT_EQ(fields[2], "c");
}

TEST(Split, KeepsEmptyFields) {
  const std::vector<std::string> fields = split("a,,b", ',');
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[1], "");
}

TEST(Split, SingleFieldWhenSeparatorAbsent) {
  const std::vector<std::string> fields = split("abc", '|');
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "abc");
}

TEST(Split, EmptyInputYieldsOneEmptyField) {
  const std::vector<std::string> fields = split("", ',');
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "");
}

TEST(Split, TrailingSeparatorYieldsTrailingEmpty) {
  const std::vector<std::string> fields = split("x|", '|');
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[1], "");
}

// ----------------------------------------------------------------- trim

TEST(Trim, RemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  hello \t"), "hello");
}

TEST(Trim, PreservesInnerWhitespace) {
  EXPECT_EQ(trim(" a b "), "a b");
}

TEST(Trim, AllWhitespaceBecomesEmpty) { EXPECT_EQ(trim(" \t\n "), ""); }

TEST(Trim, EmptyStaysEmpty) { EXPECT_EQ(trim(""), ""); }

// --------------------------------------------------- parse_nonnegative_int

TEST(ParseInt, ParsesPlainNumbers) {
  EXPECT_EQ(parse_nonnegative_int("0"), 0);
  EXPECT_EQ(parse_nonnegative_int("42"), 42);
  EXPECT_EQ(parse_nonnegative_int(" 7 "), 7);
}

TEST(ParseInt, RejectsNonDigits) {
  EXPECT_THROW((void)parse_nonnegative_int("4a"), std::invalid_argument);
  EXPECT_THROW((void)parse_nonnegative_int("-3"), std::invalid_argument);
  EXPECT_THROW((void)parse_nonnegative_int("3.5"), std::invalid_argument);
}

TEST(ParseInt, RejectsEmpty) {
  EXPECT_THROW((void)parse_nonnegative_int(""), std::invalid_argument);
  EXPECT_THROW((void)parse_nonnegative_int("  "), std::invalid_argument);
}

TEST(ParseInt, RejectsOverflow) {
  EXPECT_THROW((void)parse_nonnegative_int("99999999999"),
               std::invalid_argument);
}

// ------------------------------------------------------------ format_sig

TEST(FormatSig, MatchesPaperStyle) {
  EXPECT_EQ(format_sig(3.7, 2), "3.7");
  EXPECT_EQ(format_sig(13.0, 2), "13");
  EXPECT_EQ(format_sig(0.05, 1), "0.05");
  EXPECT_EQ(format_sig(0.0, 2), "0");
}

TEST(FormatSig, DropsTrailingZeros) {
  EXPECT_EQ(format_sig(2.50, 2), "2.5");
  EXPECT_EQ(format_sig(10.0, 3), "10");
}

TEST(FormatSig, HandlesNegativeValues) {
  EXPECT_EQ(format_sig(-7.4, 2), "-7.4");
}

// ---------------------------------------------------------- TablePrinter

TEST(TablePrinter, AlignsColumns) {
  TablePrinter table({"a", "bb"});
  table.add_row({"xxx", "y"});
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("a   | bb"), std::string::npos);
  EXPECT_NE(text.find("xxx | y"), std::string::npos);
}

TEST(TablePrinter, RejectsWrongCellCount) {
  TablePrinter table({"a", "b"});
  EXPECT_THROW(table.add_row({"only one"}), std::invalid_argument);
}

TEST(TablePrinter, RejectsZeroColumns) {
  EXPECT_THROW(TablePrinter({}), std::invalid_argument);
}

TEST(TablePrinter, CountsOnlyDataRows) {
  TablePrinter table({"c"});
  table.add_section("header");
  table.add_row({"1"});
  table.add_row({"2"});
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(TablePrinter, SectionsSpanFullWidth) {
  TablePrinter table({"col"});
  table.add_section("SECTION TITLE");
  table.add_row({"x"});
  std::ostringstream out;
  table.print(out);
  EXPECT_NE(out.str().find("SECTION TITLE"), std::string::npos);
}

// ------------------------------------------------------------------- Rng

TEST(Rng, IsDeterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformIntStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const int x = rng.uniform_int(-3, 5);
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 5);
  }
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(7);
  EXPECT_EQ(rng.uniform_int(4, 4), 4);
}

TEST(Rng, UniformIntRejectsInvertedRange) {
  Rng rng(7);
  EXPECT_THROW((void)rng.uniform_int(2, 1), std::invalid_argument);
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform01();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(5);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
  EXPECT_FALSE(rng.chance(-1.0));
  EXPECT_TRUE(rng.chance(2.0));
}

TEST(Rng, ChanceRoughlyCalibrated) {
  Rng rng(2024);
  int hits = 0;
  const int trials = 10000;
  for (int i = 0; i < trials; ++i) {
    if (rng.chance(0.3)) {
      ++hits;
    }
  }
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.03);
}

// ------------------------------------------------------------- Stopwatch

TEST(Stopwatch, ReportsNonNegativeMonotoneTime) {
  Stopwatch watch;
  const double t1 = watch.elapsed_ms();
  const double t2 = watch.elapsed_ms();
  EXPECT_GE(t1, 0.0);
  EXPECT_GE(t2, t1);
}

TEST(Stopwatch, RestartResets) {
  Stopwatch watch;
  // Burn a little time.
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) {
    sink = sink + i;
  }
  const double before = watch.elapsed_ms();
  watch.restart();
  EXPECT_LE(watch.elapsed_ms(), before + 1.0);
}

TEST(Stopwatch, SecondsAreMilliseconds) {
  Stopwatch watch;
  const double ms = watch.elapsed_ms();
  const double sec = watch.elapsed_sec();
  EXPECT_NEAR(sec * 1000.0, ms, 5.0);
}

}  // namespace
}  // namespace cvb

namespace cvb {
namespace {

TEST(TablePrinterCsv, EmitsHeaderAndRows) {
  TablePrinter table({"a", "b"});
  table.add_row({"1", "2"});
  std::ostringstream out;
  table.print_csv(out);
  EXPECT_EQ(out.str(), "a,b\n1,2\n");
}

TEST(TablePrinterCsv, QuotesSpecialCells) {
  TablePrinter table({"x"});
  table.add_row({"a,b"});
  table.add_row({"say \"hi\""});
  std::ostringstream out;
  table.print_csv(out);
  EXPECT_EQ(out.str(), "x\n\"a,b\"\n\"say \"\"hi\"\"\"\n");
}

TEST(TablePrinterCsv, SectionBecomesSingleCell) {
  TablePrinter table({"c1", "c2"});
  table.add_section("SECTION");
  table.add_row({"1", "2"});
  std::ostringstream out;
  table.print_csv(out);
  EXPECT_EQ(out.str(), "c1,c2\nSECTION\n1,2\n");
}

TEST(Sparkline, ScalesToSeriesRange) {
  // min -> lowest bar, max -> highest bar, midpoint -> middle.
  EXPECT_EQ(sparkline({0.0, 1.0}), "▁█");
  EXPECT_EQ(sparkline({0.0, 0.5, 1.0}), "▁▅█");
}

TEST(Sparkline, FlatSeriesRendersMidHeight) {
  // A constant series has no internal scale: all-minimum bars would
  // misread as a collapse to zero, so it renders at mid-height. The
  // value itself is irrelevant — only the shape of the series matters.
  EXPECT_EQ(sparkline({1.0, 1.0, 1.0}), "▅▅▅");
  EXPECT_EQ(sparkline({0.0, 0.0}), "▅▅");
  EXPECT_EQ(sparkline({42.0}), "▅");
}

TEST(Sparkline, EmptySeriesYieldsEmptyString) {
  EXPECT_EQ(sparkline({}), "");
}

}  // namespace
}  // namespace cvb
