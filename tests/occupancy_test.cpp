// Property tests for the bitmask occupancy tables
// (src/sched/occupancy.hpp): per-cycle occupancy never exceeds
// capacity, mark() is idempotent, word-boundary capacities (63/64/65
// units) behave exactly like interior ones, and the bitmask legality
// check is equivalent to the pre-rewrite counted trailing-window model
// under the scheduler's issue discipline.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sched/occupancy.hpp"
#include "support/rng.hpp"

namespace cvb {
namespace {

TEST(Occupancy, SingleCycleCapacityBound) {
  // 63/64/65 straddle the word boundary; 1/2 exercise the tiny masks;
  // 127/128/130 need two or three words per row.
  for (const int capacity : {1, 2, 63, 64, 65, 127, 128, 130}) {
    BitOccupancy pool;
    pool.reset(capacity, /*dii=*/1);
    std::vector<int> units;
    for (int k = 0; k < capacity; ++k) {
      ASSERT_TRUE(pool.can_issue(0)) << "capacity " << capacity << " k " << k;
      units.push_back(pool.issue(0));
      EXPECT_EQ(pool.occupied(0), k + 1) << "capacity " << capacity;
    }
    EXPECT_FALSE(pool.can_issue(0)) << "capacity " << capacity;
    EXPECT_THROW((void)pool.issue(0), std::logic_error);
    // Units are claimed lowest-first and never repeat.
    std::vector<int> expected(units.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      expected[i] = static_cast<int>(i);
    }
    EXPECT_EQ(units, expected) << "capacity " << capacity;
    // Occupancy never exceeds capacity, and other cycles are untouched.
    EXPECT_EQ(pool.occupied(0), capacity);
    EXPECT_EQ(pool.occupied(1), 0);
    EXPECT_TRUE(pool.can_issue(1));
  }
}

TEST(Occupancy, WordBoundaryCyclesAcrossDiiSpans) {
  // Word-boundary capacities with a multi-cycle dii: the claimed unit
  // must be busy across the whole [c, c + dii) span, including when
  // the unit's bit lives in the last (partial) word.
  for (const int capacity : {63, 64, 65}) {
    BitOccupancy pool;
    pool.reset(capacity, /*dii=*/3);
    // Fill cycle 5 completely.
    for (int k = 0; k < capacity; ++k) {
      ASSERT_TRUE(pool.can_issue(5));
      const int unit = pool.issue(5);
      for (int cycle = 5; cycle < 8; ++cycle) {
        EXPECT_TRUE(pool.is_busy(cycle, unit))
            << "capacity " << capacity << " unit " << unit;
      }
    }
    for (int cycle = 5; cycle < 8; ++cycle) {
      EXPECT_EQ(pool.occupied(cycle), capacity) << "capacity " << capacity;
      EXPECT_FALSE(pool.can_issue(cycle)) << "capacity " << capacity;
    }
    EXPECT_TRUE(pool.can_issue(8)) << "capacity " << capacity;
    EXPECT_EQ(pool.occupied(8), 0) << "capacity " << capacity;
  }
}

TEST(Occupancy, DiiWindowBlocksFollowingCycles) {
  BitOccupancy pool;
  pool.reset(/*capacity=*/2, /*dii=*/3);
  EXPECT_EQ(pool.issue(0), 0);
  EXPECT_EQ(pool.issue(0), 1);
  for (int cycle = 0; cycle < 3; ++cycle) {
    EXPECT_FALSE(pool.can_issue(cycle)) << "cycle " << cycle;
    EXPECT_EQ(pool.occupied(cycle), 2) << "cycle " << cycle;
  }
  ASSERT_TRUE(pool.can_issue(3));
  EXPECT_EQ(pool.issue(3), 0);  // lowest unit free again
  EXPECT_TRUE(pool.can_issue(3));
  EXPECT_EQ(pool.occupied(4), 1);
}

TEST(Occupancy, MarkIsIdempotent) {
  BitOccupancy pool;
  pool.reset(/*capacity=*/65, /*dii=*/2);
  for (const int unit : {0, 63, 64}) {  // both words of the row
    pool.mark(7, unit);
    const int once = pool.occupied(7);
    const int once_next = pool.occupied(8);
    pool.mark(7, unit);  // re-marking a busy unit must change nothing
    EXPECT_EQ(pool.occupied(7), once) << "unit " << unit;
    EXPECT_EQ(pool.occupied(8), once_next) << "unit " << unit;
    EXPECT_TRUE(pool.is_busy(7, unit));
    EXPECT_TRUE(pool.is_busy(8, unit));
    EXPECT_FALSE(pool.is_busy(9, unit));
  }
  EXPECT_EQ(pool.occupied(7), 3);
  EXPECT_THROW(pool.mark(0, 65), std::invalid_argument);
  EXPECT_THROW(pool.mark(0, -1), std::invalid_argument);
}

/// The pre-rewrite model: count issues inside the trailing dii-window.
class CountedWindowModel {
 public:
  CountedWindowModel(int capacity, int dii) : capacity_(capacity), dii_(dii) {}

  [[nodiscard]] bool can_issue(int cycle) const {
    int in_flight = 0;
    const int lo = std::max(0, cycle - dii_ + 1);
    for (int s = lo; s <= cycle; ++s) {
      if (s < static_cast<int>(issues_.size())) {
        in_flight += issues_[static_cast<std::size_t>(s)];
      }
    }
    return in_flight < capacity_;
  }

  void issue(int cycle) {
    if (cycle >= static_cast<int>(issues_.size())) {
      issues_.resize(static_cast<std::size_t>(cycle) + 1, 0);
    }
    ++issues_[static_cast<std::size_t>(cycle)];
  }

 private:
  int capacity_;
  int dii_;
  std::vector<int> issues_;
};

TEST(Occupancy, MatchesCountedWindowModelOnRandomTraffic) {
  // Random issue traffic under the scheduler's discipline (issues only
  // at the current, non-decreasing cycle): the bitmask table must agree
  // with the counted-window model on every legality query, and its
  // per-cycle occupancy must never exceed capacity anywhere.
  Rng rng(61001);
  for (int trial = 0; trial < 40; ++trial) {
    const int capacity =
        std::vector<int>{1, 2, 3, 5, 63, 64, 65}[static_cast<std::size_t>(
            rng.uniform_int(0, 6))];
    const int dii = rng.uniform_int(1, 4);
    BitOccupancy pool;
    pool.reset(capacity, dii);
    CountedWindowModel model(capacity, dii);
    int max_cycle = 0;
    for (int cycle = 0; cycle < 30; ++cycle) {
      const int attempts = rng.uniform_int(0, capacity + 2);
      for (int a = 0; a < attempts; ++a) {
        const bool bitmask_ok = pool.can_issue(cycle);
        const bool model_ok = model.can_issue(cycle);
        ASSERT_EQ(bitmask_ok, model_ok)
            << "trial " << trial << " cycle " << cycle << " capacity "
            << capacity << " dii " << dii;
        if (bitmask_ok) {
          (void)pool.issue(cycle);
          model.issue(cycle);
          max_cycle = std::max(max_cycle, cycle + dii);
        }
      }
    }
    for (int cycle = 0; cycle <= max_cycle + 1; ++cycle) {
      EXPECT_LE(pool.occupied(cycle), capacity)
          << "trial " << trial << " cycle " << cycle;
    }
  }
}

TEST(Occupancy, ResetReusesBufferWithoutGrowth) {
  BitOccupancy pool;
  const auto run = [&pool] {
    pool.reset(/*capacity=*/65, /*dii=*/2);
    for (int cycle = 0; cycle < 12; ++cycle) {
      for (int k = 0; k < 65 && pool.can_issue(cycle); ++k) {
        (void)pool.issue(cycle);
      }
    }
  };
  run();
  const std::uint64_t warm_grows = pool.grow_count();
  EXPECT_GT(warm_grows, 0u);  // the first run had to allocate
  run();
  EXPECT_EQ(pool.grow_count(), warm_grows);  // steady state: no growth
  // And reset really cleared the rows: a fresh reset sees empty cycles.
  pool.reset(65, 2);
  for (int cycle = 0; cycle < 14; ++cycle) {
    EXPECT_EQ(pool.occupied(cycle), 0) << "cycle " << cycle;
  }
  // Reconfiguring to a different geometry reuses the same buffer.
  pool.reset(3, 4);
  EXPECT_EQ(pool.grow_count(), warm_grows);
  EXPECT_TRUE(pool.can_issue(0));
  EXPECT_EQ(pool.occupied(0), 0);
}

TEST(Occupancy, ZeroCapacityNeverIssues) {
  BitOccupancy pool;
  pool.reset(/*capacity=*/0, /*dii=*/1);
  EXPECT_FALSE(pool.can_issue(0));
  EXPECT_FALSE(pool.can_issue(100));
  EXPECT_EQ(pool.occupied(0), 0);
}

}  // namespace
}  // namespace cvb
