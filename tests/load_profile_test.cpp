// Unit tests for the force-directed load profiles (paper Section 3.1.2,
// Figure 4): operation time frames, centralized vs cluster
// normalization, fucost/buscost thresholds, and transfer frames.
#include <gtest/gtest.h>

#include "bind/load_profile.hpp"
#include "graph/analysis.hpp"
#include "graph/builder.hpp"
#include "machine/parser.hpp"

namespace cvb {
namespace {

/// Two independent adds: both get the full [0, L_PR) frame spread.
Dfg two_adds() {
  DfgBuilder b;
  (void)b.add(b.input(), b.input(), "a0");
  (void)b.add(b.input(), b.input(), "a1");
  return std::move(b).take();
}

TEST(LoadProfile, FucostZeroWhenClusterMatchesCentralized) {
  // Datapath [1,1|1,1]: centralized has 2 ALUs, each cluster 1. Two
  // independent adds, L_PR = 1: centralized load = 2 * 1.0 / 2 = 1.0;
  // binding one add to a cluster gives cluster load 1.0 which does NOT
  // exceed max(load_dp, 1) = 1 -> no penalty.
  const Dfg g = two_adds();
  const Datapath dp = parse_datapath("[1,1|1,1]");
  const Timing t = compute_timing(g, dp.latencies(), 1);
  const LoadProfileSet profiles(g, dp, t);
  EXPECT_EQ(profiles.fu_serialization_cost(0, 0), 0);
}

TEST(LoadProfile, FucostPositiveWhenClusterOverloaded) {
  // Same setup but the first add is already committed to cluster 0;
  // adding the second there doubles the cluster load to 2.0 > 1.
  const Dfg g = two_adds();
  const Datapath dp = parse_datapath("[1,1|1,1]");
  const Timing t = compute_timing(g, dp.latencies(), 1);
  LoadProfileSet profiles(g, dp, t);
  profiles.commit_op(0, 0);
  EXPECT_GT(profiles.fu_serialization_cost(1, 0), 0);
  EXPECT_EQ(profiles.fu_serialization_cost(1, 1), 0);
}

TEST(LoadProfile, MobilitySpreadsLoad) {
  // With L_PR = 2 each add has mobility 1, load 1/2 per level over two
  // levels; two adds on one cluster give 1.0 per level: no overload.
  const Dfg g = two_adds();
  const Datapath dp = parse_datapath("[1,1|1,1]");
  const Timing t = compute_timing(g, dp.latencies(), 2);
  LoadProfileSet profiles(g, dp, t);
  profiles.commit_op(0, 0);
  EXPECT_EQ(profiles.fu_serialization_cost(1, 0), 0);
}

TEST(LoadProfile, ClusterNormalizationUsesLocalFuCount) {
  // Cluster 0 has 2 ALUs: two unit-frame adds load it to 1.0 -> fine.
  const Dfg g = two_adds();
  const Datapath dp = parse_datapath("[2,1|1,1]");
  const Timing t = compute_timing(g, dp.latencies(), 1);
  LoadProfileSet profiles(g, dp, t);
  profiles.commit_op(0, 0);
  EXPECT_EQ(profiles.fu_serialization_cost(1, 0), 0);
}

TEST(LoadProfile, CentralizedProfileRaisesThreshold) {
  // Datapath [1,1|1,1] with 4 independent adds at L_PR = 1: centralized
  // load is 4/2 = 2.0 per level, so a cluster loaded to 2.0 is *not*
  // penalized (it matches the centralized equivalent).
  DfgBuilder b;
  for (int i = 0; i < 4; ++i) {
    (void)b.add(b.input(), b.input());
  }
  const Dfg g = std::move(b).take();
  const Datapath dp = parse_datapath("[1,1|1,1]");
  const Timing t = compute_timing(g, dp.latencies(), 1);
  LoadProfileSet profiles(g, dp, t);
  profiles.commit_op(0, 0);
  EXPECT_EQ(profiles.fu_serialization_cost(1, 0), 0);  // load 2.0 == dp 2.0
  profiles.commit_op(1, 0);
  EXPECT_GT(profiles.fu_serialization_cost(2, 0), 0);  // load 3.0 > 2.0
}

TEST(LoadProfile, TransferFramePlacedAfterProducer) {
  DfgBuilder b;
  const Value x = b.add(b.input(), b.input(), "x");
  (void)b.add(x, b.input(), "y");
  const Dfg g = std::move(b).take();
  const Datapath dp = parse_datapath("[1,1|1,1]");
  const Timing t = compute_timing(g, dp.latencies(), 4);  // mobility 2 each
  const LoadProfileSet profiles(g, dp, t);
  const auto frame = profiles.transfer_frame(0, 1);
  EXPECT_EQ(frame.begin, 1);  // right after x completes (asap 0, lat 1)
  // consumer mobility 2 minus lat(move) 1 -> transfer mobility 1.
  EXPECT_EQ(frame.end, 2);
  EXPECT_DOUBLE_EQ(frame.value, 0.5);
}

TEST(LoadProfile, TransferMobilityClampsAtZero) {
  DfgBuilder b;
  const Value x = b.add(b.input(), b.input(), "x");
  (void)b.add(x, b.input(), "y");
  const Dfg g = std::move(b).take();
  const Datapath dp = parse_datapath("[1,1|1,1]");
  const Timing t = compute_timing(g, dp.latencies(), 2);  // zero mobility
  const LoadProfileSet profiles(g, dp, t);
  const auto frame = profiles.transfer_frame(0, 1);
  EXPECT_EQ(frame.begin, 1);
  EXPECT_EQ(frame.end, 1);
  EXPECT_DOUBLE_EQ(frame.value, 1.0);
}

TEST(LoadProfile, BusCostCountsOverloadedCyclesOnly) {
  DfgBuilder b;
  const Value x = b.add(b.input(), b.input(), "x");
  (void)b.add(x, b.input(), "y");
  const Dfg g = std::move(b).take();
  const Datapath dp = parse_datapath("[1,1|1,1]", /*num_buses=*/1);
  const Timing t = compute_timing(g, dp.latencies(), 2);
  LoadProfileSet profiles(g, dp, t);

  const auto frame = profiles.transfer_frame(0, 1);
  // One zero-mobility transfer on one bus: exactly 1.0, not overloaded.
  EXPECT_EQ(profiles.bus_serialization_cost({frame}), 0);
  // A second identical transfer pushes the level to 2.0 > 1.
  profiles.commit_transfer(frame);
  EXPECT_EQ(profiles.bus_serialization_cost({frame}), 1);
}

TEST(LoadProfile, BusNormalizationByBusCount) {
  DfgBuilder b;
  const Value x = b.add(b.input(), b.input(), "x");
  (void)b.add(x, b.input(), "y");
  const Dfg g = std::move(b).take();
  const Datapath dp = parse_datapath("[1,1|1,1]", /*num_buses=*/2);
  const Timing t = compute_timing(g, dp.latencies(), 2);
  LoadProfileSet profiles(g, dp, t);
  const auto frame = profiles.transfer_frame(0, 1);
  profiles.commit_transfer(frame);
  // Two transfers on two buses: level 1.0, no overload.
  EXPECT_EQ(profiles.bus_serialization_cost({frame}), 0);
}

TEST(LoadProfile, ClusterLoadTotalTracksCommits) {
  const Dfg g = two_adds();
  const Datapath dp = parse_datapath("[1,1|1,1]");
  const Timing t = compute_timing(g, dp.latencies(), 1);
  LoadProfileSet profiles(g, dp, t);
  EXPECT_DOUBLE_EQ(profiles.cluster_load_total(0, FuType::kAlu), 0.0);
  profiles.commit_op(0, 0);
  EXPECT_DOUBLE_EQ(profiles.cluster_load_total(0, FuType::kAlu), 1.0);
  EXPECT_DOUBLE_EQ(profiles.cluster_load_total(1, FuType::kAlu), 0.0);
}

TEST(LoadProfile, DiiExtendsOpFrames) {
  // Unpipelined multiplier (dii = 2): a mul's load frame extends one
  // cycle past its ALAP level, creating overlap (and penalty) with a
  // second mul even at L_PR = 2.
  DfgBuilder b;
  (void)b.mul(b.input(), b.input());
  (void)b.mul(b.input(), b.input());
  const Dfg g = std::move(b).take();
  LatencyTable lat = unit_latencies();
  lat[static_cast<std::size_t>(OpType::kMul)] = 2;
  std::array<int, kNumFuTypes> dii{1, 2, 1};
  const Datapath dp({Cluster{{1, 1}}, Cluster{{1, 1}}}, 2, lat, dii);
  const Timing t = compute_timing(g, lat, 2);
  LoadProfileSet profiles(g, dp, t);
  profiles.commit_op(0, 0);
  EXPECT_GT(profiles.fu_serialization_cost(1, 0), 0);
}

TEST(LoadProfile, RejectsMoveOpsInOriginalGraph) {
  Dfg g;
  g.add_op(OpType::kMove);
  const Datapath dp = parse_datapath("[1,1]");
  const Timing t{{0}, {0}, {0}, 1, 1};
  EXPECT_THROW((LoadProfileSet{g, dp, t}), std::invalid_argument);
}

TEST(LoadProfile, RejectsUnsupportedOpType) {
  DfgBuilder b;
  (void)b.mul(b.input(), b.input());
  const Dfg g = std::move(b).take();
  const Datapath dp = parse_datapath("[1,0]");  // no multiplier anywhere
  const Timing t = compute_timing(g, dp.latencies(), 1);
  EXPECT_THROW((LoadProfileSet{g, dp, t}), std::invalid_argument);
}

TEST(LoadProfile, FucostRejectsInfeasibleCluster) {
  DfgBuilder b;
  (void)b.mul(b.input(), b.input());
  const Dfg g = std::move(b).take();
  const Datapath dp = parse_datapath("[1,0|1,1]");
  const Timing t = compute_timing(g, dp.latencies(), 1);
  const LoadProfileSet profiles(g, dp, t);
  EXPECT_THROW((void)profiles.fu_serialization_cost(0, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace cvb
