// Unit tests for the Binding type, validation and cut counting.
#include <gtest/gtest.h>

#include "bind/binding.hpp"
#include "graph/builder.hpp"
#include "machine/parser.hpp"

namespace cvb {
namespace {

Dfg chain3() {
  DfgBuilder b;
  const Value x = b.add(b.input(), b.input(), "x");
  const Value y = b.mul(x, b.input(), "y");
  (void)b.add(y, b.input(), "z");
  return std::move(b).take();
}

TEST(Binding, ValidBindingPasses) {
  const Dfg g = chain3();
  const Datapath dp = parse_datapath("[1,1|1,1]");
  EXPECT_EQ(check_binding(g, {0, 1, 0}, dp), "");
  EXPECT_NO_THROW(require_valid_binding(g, {1, 1, 1}, dp));
}

TEST(Binding, SizeMismatchReported) {
  const Dfg g = chain3();
  const Datapath dp = parse_datapath("[1,1|1,1]");
  EXPECT_NE(check_binding(g, {0, 1}, dp), "");
  EXPECT_THROW(require_valid_binding(g, {0, 1}, dp), std::logic_error);
}

TEST(Binding, OutOfRangeClusterReported) {
  const Dfg g = chain3();
  const Datapath dp = parse_datapath("[1,1|1,1]");
  EXPECT_NE(check_binding(g, {0, 2, 0}, dp), "");
  EXPECT_NE(check_binding(g, {0, -1, 0}, dp), "");
}

TEST(Binding, UnsupportedFuTypeReported) {
  const Dfg g = chain3();
  // Cluster 1 has no multiplier; op "y" is a mul.
  const Datapath dp = parse_datapath("[1,1|1,0]");
  EXPECT_EQ(check_binding(g, {1, 0, 1}, dp), "");
  const std::string err = check_binding(g, {0, 1, 0}, dp);
  EXPECT_NE(err.find("MULT"), std::string::npos);
}

TEST(Binding, MoveOpsRejectedInOriginalGraph) {
  Dfg g;
  g.add_op(OpType::kMove);
  const Datapath dp = parse_datapath("[1,1]");
  EXPECT_NE(check_binding(g, {0}, dp), "");
}

TEST(Binding, CutEdgeCounting) {
  const Dfg g = chain3();  // edges x->y, y->z
  EXPECT_EQ(count_cut_edges(g, {0, 0, 0}), 0);
  EXPECT_EQ(count_cut_edges(g, {0, 1, 1}), 1);
  EXPECT_EQ(count_cut_edges(g, {0, 1, 0}), 2);
}

TEST(Binding, CutEdgesCountFanoutPerEdge) {
  DfgBuilder b;
  const Value x = b.add(b.input(), b.input());
  (void)b.add(x, b.input());
  (void)b.add(x, b.input());
  const Dfg g = std::move(b).take();
  EXPECT_EQ(count_cut_edges(g, {0, 1, 1}), 2);  // both consumers remote
}

}  // namespace
}  // namespace cvb
